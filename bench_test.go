package colmr

import (
	"testing"

	"colmr/internal/bench"
	"colmr/internal/compress"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// One testing.B benchmark per table/figure in the paper's evaluation. Each
// iteration regenerates the experiment end to end at reduced scale:
// dataset synthesis, format encoding into the simulated HDFS, real scans
// or MapReduce jobs, and cost-model pricing. Run the full-scale versions
// with cmd/colbench.

func benchCfg() bench.Config {
	return bench.Config{Scale: 0.05, Seed: 2011}
}

// BenchmarkFigure7 regenerates the Section 6.2 scan microbenchmark
// (TXT vs SEQ vs CIF vs RCFile across five projections).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure7(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the Section 6.3 crawl-job comparison over
// eleven storage-format variants.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColocation regenerates the Section 6.4 placement-policy
// ablation.
func BenchmarkColocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Colocation(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 regenerates the Appendix B.1 deserialization-rate
// microbenchmark.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure8(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 regenerates the Appendix B.2 RCFile row-group tuning
// sweep.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure9(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the Appendix B.3 load-time comparison.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 regenerates the Appendix B.4 selectivity sweep.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure10(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11 regenerates the Appendix B.5 record-width sweep.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure11(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVectorized regenerates the vectorized-execution sweep (batch
// evaluation + vector cache vs the record-at-a-time loop).
func BenchmarkVectorized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Vectorized(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestVectorizedCPUGuard is the repo-level perf regression gate on the
// batch execution path: on every layout and selectivity arm, the vectorized
// run's modeled decode CPU must not exceed the scalar run's (the two read
// identical bytes, so a regression here is pure execution-loop cost). The
// stronger >= 2x floor on the selective string-equality arm lives in the
// bench package's shape test; this guard runs in -short too, so any tier-1
// run catches a vectorized slowdown.
func TestVectorizedCPUGuard(t *testing.T) {
	res, err := bench.Vectorized(benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.VectorCPU > c.ScalarCPU {
			t.Errorf("%s/%s: vectorized CPU %.5fs exceeds scalar %.5fs",
				c.Layout, c.Arm, c.VectorCPU, c.ScalarCPU)
		}
	}
}

// Component microbenchmarks: the hot paths the experiments exercise.

func BenchmarkSerdeEncodeRecord(b *testing.B) {
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: 1})
	rec := gen.Record(0)
	b.ReportAllocs()
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = serde.AppendRecord(buf[:0], rec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkSerdeDecodeRecord(b *testing.B) {
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: 1})
	buf, err := serde.EncodeRecord(gen.Record(0))
	if err != nil {
		b.Fatal(err)
	}
	schema := gen.Schema()
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := serde.NewDecoder(buf, nil).Record(schema); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerdeScanRecord(b *testing.B) {
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: 1})
	buf, err := serde.EncodeRecord(gen.Record(0))
	if err != nil {
		b.Fatal(err)
	}
	schema := gen.Schema()
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := serde.NewDecoder(buf, nil).Scan(schema); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkCodec(b *testing.B, name string) {
	codec, err := compress.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: 1})
	var data []byte
	for i := int64(0); i < 16; i++ {
		enc, _ := serde.EncodeRecord(gen.Record(i))
		data = append(data, enc...)
	}
	comp, err := codec.Compress(nil, data)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compress", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := codec.Compress(nil, data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decompress", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := codec.Decompress(nil, comp, len(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCodecLZO(b *testing.B)  { benchmarkCodec(b, "lzo") }
func BenchmarkCodecZLIB(b *testing.B) { benchmarkCodec(b, "zlib") }

// BenchmarkCrawlJobCIFLazy runs the paper's example job end to end over a
// CIF dataset with lazy records — the full stack in one number.
func BenchmarkCrawlJobCIFLazy(b *testing.B) {
	fs := NewFileSystem(DefaultCluster(), 1)
	fs.SetPlacementPolicy(NewColumnPlacementPolicy())
	gen := NewCrawl(CrawlOptions{Seed: 1, ContentBytes: 2000})
	w, err := NewColumnWriter(fs, "/bench/crawl", gen.Schema(), LoadOptions{SplitRecords: 256}, nil)
	if err != nil {
		b.Fatal(err)
	}
	const n = 2048
	for i := int64(0); i < n; i++ {
		if err := w.Append(gen.Record(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	conf := JobConf{InputPaths: []string{"/bench/crawl"}, NumReducers: 4}
	SetColumns(&conf, "url", "metadata")
	SetLazy(&conf, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job := &Job{
			Conf:  conf,
			Input: &ColumnInputFormat{},
			Mapper: MapperFunc(func(key, value any, emit Emit) error {
				rec := value.(Record)
				url, err := rec.Get("url")
				if err != nil {
					return err
				}
				if len(url.(string)) == 0 {
					return nil
				}
				return nil
			}),
			Output: NullOutput{},
		}
		if _, err := RunJob(fs, job); err != nil {
			b.Fatal(err)
		}
	}
	_ = sim.DefaultModel()
}
