// Colbench regenerates the paper's evaluation tables and figures
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// results).
//
// Usage:
//
//	colbench [-experiment all|<name>] [-scale F] [-seed N] [-list]
//
// The -experiment help and -list enumerate the experiment table; names are
// never repeated here, so adding an experiment cannot leave the usage text
// behind.
//
// Scale multiplies the laptop-scale record counts each experiment measures
// before extrapolating to the paper's dataset sizes; 1.0 takes a few
// seconds per experiment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"colmr/internal/bench"
)

var experiments = []struct {
	name string
	desc string
	run  func(bench.Config) error
}{
	{"figure7", "Section 6.2 scan microbenchmark: TXT vs SEQ vs CIF vs RCFile",
		func(c bench.Config) error { _, err := bench.Figure7(c); return err }},
	{"table1", "Section 6.3 crawl job over 11 storage-format variants",
		func(c bench.Config) error { _, err := bench.Table1(c); return err }},
	{"colocation", "Section 6.4 ColumnPlacementPolicy vs default placement",
		func(c bench.Config) error { _, err := bench.Colocation(c); return err }},
	{"figure8", "Appendix B.1 deserialization read bandwidth",
		func(c bench.Config) error { _, err := bench.Figure8(c); return err }},
	{"figure9", "Appendix B.2 RCFile row-group size tuning",
		func(c bench.Config) error { _, err := bench.Figure9(c); return err }},
	{"table2", "Appendix B.3 load times",
		func(c bench.Config) error { _, err := bench.Table2(c); return err }},
	{"figure10", "Appendix B.4 selectivity sweep (lazy materialization)",
		func(c bench.Config) error { _, err := bench.Figure10(c); return err }},
	{"figure11", "Appendix B.5 record-width sweep",
		func(c bench.Config) error { _, err := bench.Figure11(c); return err }},
	{"selectivity", "selectivity sweep: predicate pushdown + zone maps vs scan-then-filter",
		func(c bench.Config) error { _, err := bench.Selectivity(c); return err }},
	{"elision", "split elision sweep: scheduler-tier pruning vs group-tier-only baseline",
		func(c bench.Config) error { _, err := bench.Elision(c); return err }},
	{"bloom", "bloom pruning sweep: string-equality filters vs zone-maps-only on unsorted data",
		func(c bench.Config) error { _, err := bench.Bloom(c); return err }},
	{"sharedscan", "shared scan sweep: co-scheduled batches vs independent runs (1/2/4/8 jobs)",
		func(c bench.Config) error { _, err := bench.SharedScan(c); return err }},
	{"cachereuse", "cache reuse sweep: one session resubmitting a job vs cold runs",
		func(c bench.Config) error { _, err := bench.CacheReuse(c); return err }},
	{"vectorized", "vectorized execution sweep: batch eval + vector cache vs scalar (writes BENCH_vectorized.json)",
		func(c bench.Config) error {
			res, err := bench.Vectorized(c)
			if err != nil {
				return err
			}
			return writeJSON("BENCH_vectorized.json", res)
		}},
	{"agg", "aggregation pushdown sweep: in-scan folding vs materialize-then-fold, plus dictionary-id evaluation (writes BENCH_agg.json)",
		func(c bench.Config) error {
			res, err := bench.Aggregation(c)
			if err != nil {
				return err
			}
			return writeJSON("BENCH_agg.json", res)
		}},
	{"planning", "cost-based planning sweep: histogram estimates vs truth, chosen vs forced materialization across skew (writes BENCH_planning.json)",
		func(c bench.Config) error {
			res, err := bench.Planning(c)
			if err != nil {
				return err
			}
			return writeJSON("BENCH_planning.json", res)
		}},
	{"serve", "scan server sweep: sharing window vs continuous arrivals (rate x overlap x window)",
		func(c bench.Config) error { _, err := bench.Serve(c); return err }},
	{"ingest", "streaming ingest sweep: arrival rate x compaction cadence x recrawl vs bulk load (writes BENCH_ingest.json)",
		func(c bench.Config) error {
			res, err := bench.Ingest(c)
			if err != nil {
				return err
			}
			return writeJSON("BENCH_ingest.json", res)
		}},
	{"skiplevels", "ablation: skip-list level configuration",
		func(c bench.Config) error { _, err := bench.AblationSkipLevels(c); return err }},
	{"parallelism", "ablation: split granularity vs cluster parallelism (§4.3)",
		func(c bench.Config) error { _, err := bench.AblationParallelism(c); return err }},
	{"blocksize", "ablation: compression block size",
		func(c bench.Config) error { _, err := bench.AblationBlockSize(c); return err }},
	{"recovery", "ablation: datanode failure and re-replication (§4.3 future work)",
		func(c bench.Config) error { _, err := bench.AblationRecovery(c); return err }},
}

// writeJSON records an experiment's result struct as a machine-readable
// artifact in the working directory, the perf-trajectory baseline later
// changes are compared against.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// experimentNames renders the -experiment flag's value set from the
// experiments table, so the usage string cannot drift from what runs.
func experimentNames() string {
	names := make([]string, 0, len(experiments)+1)
	names = append(names, "all")
	for _, e := range experiments {
		names = append(names, e.name)
	}
	return strings.Join(names, ", ")
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (one of: "+experimentNames()+")")
		scale      = flag.Float64("scale", 1.0, "record-count multiplier for the measured sample")
		seed       = flag.Int64("seed", 2011, "generator and placement seed")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Out: os.Stdout}
	want := strings.ToLower(*experiment)
	ran := 0
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		start := time.Now()
		if err := e.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "colbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs wall time]\n\n", e.name, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "colbench: unknown experiment %q (use -list)\n", *experiment)
		os.Exit(2)
	}
}
