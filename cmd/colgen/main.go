// Colgen generates one of the paper's datasets into a simulated HDFS and
// reports its storage profile per format — a quick way to inspect how the
// workloads and formats behave before running full experiments.
//
// The arrival workload is different in kind: instead of a static dataset it
// profiles the continuous crawl stream that feeds colingest — arrivals at a
// configurable mean rate, a fraction of them recrawls of already-seen URLs,
// with optional content-size skew.
//
// Usage:
//
//	colgen [-workload synthetic|crawl|wide|arrival] [-records N] [-columns N] [-seed N]
//	       [-rate R] [-recrawl F] [-skew S]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/formats/seq"
	"colmr/internal/formats/txt"
	"colmr/internal/hdfs"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

type generator interface {
	Schema() *serde.Schema
	Record(i int64) *serde.GenericRecord
}

func main() {
	var (
		kind    = flag.String("workload", "synthetic", "dataset to generate (synthetic, crawl, wide)")
		records = flag.Int64("records", 20000, "number of records")
		columns = flag.Int("columns", 40, "columns for the wide workload")
		seed    = flag.Int64("seed", 2011, "generator seed")
		rate    = flag.Float64("rate", 100, "arrival mode: mean arrivals per second")
		recrawl = flag.Float64("recrawl", 0.2, "arrival mode: fraction of arrivals revisiting a seen URL")
		skew    = flag.Float64("skew", 0, "arrival mode: content-size skew exponent (0 = none)")
	)
	flag.Parse()

	var gen generator
	switch *kind {
	case "synthetic":
		gen = workload.NewSynthetic(*seed)
	case "crawl":
		gen = workload.NewCrawl(workload.CrawlOptions{Seed: *seed})
	case "wide":
		gen = workload.NewWide(*seed, *columns)
	case "arrival":
		profileArrivals(*records, *seed, *rate, *recrawl, *skew)
		return
	default:
		fmt.Fprintf(os.Stderr, "colgen: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	fs := hdfs.New(sim.SingleNode(), *seed)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())

	fmt.Printf("workload %s, %d records\nschema:\n%s\n\n", *kind, *records, gen.Schema())

	sizes := map[string]int64{}

	// TXT.
	{
		f, err := fs.Create("/g/data.txt", hdfs.AnyNode)
		check(err)
		w := txt.NewWriter(f)
		for i := int64(0); i < *records; i++ {
			check(w.Write(gen.Record(i)))
		}
		check(f.Close())
		sizes["TXT"] = fs.TotalSize("/g/data.txt")
	}
	// SEQ.
	{
		f, err := fs.Create("/g/data.seq", hdfs.AnyNode)
		check(err)
		w, err := seq.NewWriter(f, "/g/data.seq", gen.Schema(), seq.Options{}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
		check(f.Close())
		sizes["SEQ"] = fs.TotalSize("/g/data.seq")
	}
	// RCFile (plain and compressed).
	for _, v := range []struct {
		name  string
		codec string
	}{{"RCFile", "none"}, {"RCFile-zlib", "zlib"}} {
		p := "/g/" + v.name + ".rc"
		f, err := fs.Create(p, hdfs.AnyNode)
		check(err)
		w, err := rcfile.NewWriter(f, p, gen.Schema(), rcfile.Options{Codec: v.codec}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
		check(f.Close())
		sizes[v.name] = fs.TotalSize(p)
	}
	// CIF.
	{
		w, err := core.NewWriter(fs, "/g/cif", gen.Schema(), core.LoadOptions{SplitRecords: *records/4 + 1}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
		sizes["CIF"] = fs.TreeSize("/g/cif")
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "format\tbytes\tbytes/record")
	for _, name := range []string{"TXT", "SEQ", "RCFile", "RCFile-zlib", "CIF"} {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\n", name, sizes[name], float64(sizes[name])/float64(*records))
	}
	tw.Flush()

	// Per-column profile of the CIF dataset.
	fmt.Println("\nCIF column files (first split-directory):")
	infos, err := fs.List("/g/cif/s0")
	check(err)
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "column\tbytes\tshare")
	for _, fi := range infos {
		if fi.IsDir || fi.Name() == core.SchemaFile {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\n", fi.Name(), fi.Size, 100*float64(fi.Size)/float64(sizes["CIF"]))
	}
	tw.Flush()
}

// profileArrivals replays n arrivals of the streaming crawl workload and
// reports the stream's shape: how hot the recrawl traffic is, how long the
// stream spans in simulated time, and how skew stretches the content column.
func profileArrivals(n, seed int64, rate, recrawl, skew float64) {
	stream := workload.NewArrivalStream(workload.ArrivalOptions{
		Crawl:           workload.CrawlOptions{Seed: seed},
		Seed:            seed,
		RatePerSec:      rate,
		RecrawlFraction: recrawl,
		ContentSkew:     skew,
	})
	ci := stream.Crawl().Schema().FieldIndex("content")
	var recrawls, totalContent int64
	minContent, maxContent := int64(math.MaxInt64), int64(0)
	var firstMs, lastMs int64
	for i := int64(0); i < n; i++ {
		a := stream.Next()
		if i == 0 {
			firstMs = a.Millis
		}
		lastMs = a.Millis
		if a.Version > 0 {
			recrawls++
		}
		sz := int64(len(a.Rec.GetAt(ci).([]byte)))
		totalContent += sz
		if sz < minContent {
			minContent = sz
		}
		if sz > maxContent {
			maxContent = sz
		}
	}
	span := float64(lastMs-firstMs) / 1000
	fmt.Printf("arrival stream: %d arrivals, rate %.0f/s, recrawl %.2f, skew %.2f\n\n", n, rate, recrawl, skew)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "distinct URLs\t%d\n", stream.Seen())
	fmt.Fprintf(tw, "recrawls\t%d (%.1f%%)\n", recrawls, 100*float64(recrawls)/float64(n))
	fmt.Fprintf(tw, "stream span\t%.1fs (effective %.1f arrivals/s)\n", span, float64(n-1)/span)
	fmt.Fprintf(tw, "content bytes\tmin %d / mean %d / max %d\n", minContent, totalContent/n, maxContent)
	tw.Flush()
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "colgen: %v\n", err)
		os.Exit(1)
	}
}
