// Colingest drives the streaming write path end to end: a colgen arrival
// stream (crawl pages arriving at a configurable mean rate, some fraction
// recrawls of already-seen URLs) feeds an ingest.Ingester, which buffers a
// memtable, flushes time-partitioned generations, resolves upserts with
// position deletes, and periodically compacts via a MapReduce job over the
// engine itself. A colserve server answers count(*) queries over the same
// dataset while it is being written — every query is planned against a
// committed manifest generation, so merge-on-read and cache invalidation
// run live against the writer.
//
// Usage:
//
//	colingest [-records N] [-rate R] [-recrawl F] [-skew S] [-memtable N]
//	          [-bucket-ms MS] [-compact-every N] [-query-every N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/ingest"
	"colmr/internal/scan"
	"colmr/internal/serve"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

func main() {
	var (
		records      = flag.Int64("records", 5000, "arrivals to ingest")
		rate         = flag.Float64("rate", 200, "mean arrivals per second")
		recrawl      = flag.Float64("recrawl", 0.25, "fraction of arrivals revisiting a seen URL")
		skew         = flag.Float64("skew", 0.5, "content-size skew exponent (0 = none)")
		memtable     = flag.Int("memtable", 256, "memtable records before auto-flush")
		bucketMs     = flag.Int64("bucket-ms", 60_000, "time-partition bucket width in fetchTime ms")
		compactEvery = flag.Int("compact-every", 4, "flushes per compaction (0 = manual only)")
		queryEvery   = flag.Int64("query-every", 1000, "live count(*) query every N arrivals (0 = never)")
		seed         = flag.Int64("seed", 2011, "stream seed")
	)
	flag.Parse()

	fs := hdfs.New(sim.DefaultCluster(), *seed)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())
	srv := serve.New(fs, serve.Options{CacheBytes: 64 << 20})
	defer srv.Close()

	stream := workload.NewArrivalStream(workload.ArrivalOptions{
		Crawl:           workload.CrawlOptions{Seed: *seed},
		Seed:            *seed,
		RatePerSec:      *rate,
		RecrawlFraction: *recrawl,
		ContentSkew:     *skew,
	})

	const dataset = "/live/crawl"
	var stats sim.TaskStats
	ing, err := ingest.New(fs, ingest.Options{
		Dataset:         dataset,
		Schema:          stream.Crawl().Schema(),
		Key:             "url",
		TimeColumn:      "fetchTime",
		BucketMillis:    *bucketMs,
		MemtableRecords: *memtable,
		CompactEvery:    *compactEvery,
		Load:            core.LoadOptions{SplitRecords: 4096},
		Session:         srv.Session(),
		Stats:           &stats,
	})
	check(err)
	srv.ServeLive(ing)

	agg, err := scan.ParseAggregate("count, min(fetchTime), max(fetchTime)")
	check(err)
	query := func(label string) {
		tk, err := srv.Enqueue("colingest", core.ScanDataset(dataset).Aggregate(agg).AggJob())
		check(err)
		res, err := tk.Wait()
		check(err)
		vals := res.Agg.Rows()[0].Values
		fmt.Printf("  [%s] gen %d: live rows %v, fetchTime span [%v, %v], fresh partitions scanned %d\n",
			label, ing.Generation(), vals[0], vals[1], vals[2], res.Total.FreshPartitionsScanned)
	}

	fmt.Printf("ingesting %d arrivals at %.0f/s (recrawl %.2f, skew %.2f) into %s\n",
		*records, *rate, *recrawl, *skew, dataset)
	for i := int64(0); i < *records; i++ {
		a := stream.Next()
		check(ing.Append(a.Rec))
		if *queryEvery > 0 && (i+1)%*queryEvery == 0 && ing.Generation() > 0 {
			query(fmt.Sprintf("%d arrivals", i+1))
		}
	}
	check(ing.Flush())
	query("flushed")
	check(ing.Compact())
	check(ing.GC())
	query("compacted")

	cacheBytes, regions := srv.Session().CacheUsage()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "\narrivals\t%d\n", *records)
	fmt.Fprintf(tw, "distinct URLs\t%d\n", stream.Seen())
	fmt.Fprintf(tw, "upserts resolved\t%d\n", stats.UpsertsResolved)
	fmt.Fprintf(tw, "manifest generation\t%d\n", ing.Generation())
	fmt.Fprintf(tw, "flushed files\t%d\n", stats.FlushedFiles)
	fmt.Fprintf(tw, "compaction bytes\t%d\n", stats.CompactionBytes)
	fmt.Fprintf(tw, "dataset bytes on disk\t%d\n", fs.TreeSize(dataset))
	fmt.Fprintf(tw, "scan cache\t%d bytes in %d regions\n", cacheBytes, regions)
	tw.Flush()
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "colingest: %v\n", err)
		os.Exit(1)
	}
}
