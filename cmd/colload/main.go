// Colload converts a generated dataset from SequenceFile form into CIF
// with configurable per-column layouts — the paper's parallel loader — and
// reports load work and the modeled load time (Appendix B.3).
//
// Usage:
//
//	colload [-workload crawl|synthetic] [-records N]
//	        [-layout plain|skiplist|dcsl] [-codec none|lzo|zlib] [-seed N]
//
// The layout flag applies to map-typed columns; -codec wraps every column
// in compressed blocks instead.
package main

import (
	"flag"
	"fmt"
	"os"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/formats/seq"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

type generator interface {
	Schema() *serde.Schema
	Record(i int64) *serde.GenericRecord
}

func main() {
	var (
		kind    = flag.String("workload", "crawl", "dataset (synthetic, crawl)")
		records = flag.Int64("records", 10000, "number of records")
		layout  = flag.String("layout", "skiplist", "layout for map columns (plain, skiplist, dcsl)")
		codec   = flag.String("codec", "", "wrap all columns in compressed blocks with this codec (lzo, zlib)")
		seed    = flag.Int64("seed", 2011, "generator seed")
	)
	flag.Parse()

	var gen generator
	switch *kind {
	case "synthetic":
		gen = workload.NewSynthetic(*seed)
	case "crawl":
		gen = workload.NewCrawl(workload.CrawlOptions{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "colload: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	cluster := sim.DefaultCluster()
	model := sim.DefaultModelFor(cluster)
	fs := hdfs.New(cluster, *seed)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())

	// Source SequenceFile.
	f, err := fs.Create("/load/src.seq", hdfs.AnyNode)
	check(err)
	w, err := seq.NewWriter(f, "/load/src.seq", gen.Schema(), seq.Options{}, nil)
	check(err)
	for i := int64(0); i < *records; i++ {
		check(w.Append(gen.Record(i)))
	}
	check(w.Close())
	check(f.Close())
	srcBytes := fs.TotalSize("/load/src.seq")

	// Column layouts.
	mapLayout, err := colfile.ParseLayout(*layout)
	check(err)
	opts := core.LoadOptions{
		SplitRecords: *records/16 + 1,
		PerColumn:    map[string]colfile.Options{},
	}
	if *codec != "" {
		opts.Default = colfile.Options{Layout: colfile.Block, Codec: *codec}
	}
	for _, fld := range gen.Schema().Fields {
		if fld.Type.Kind == serde.KindMap {
			opts.PerColumn[fld.Name] = colfile.Options{Layout: mapLayout}
		}
	}

	var stats sim.TaskStats
	conf := &mapred.JobConf{InputPaths: []string{"/load/src.seq"}}
	n, err := core.Load(fs, &seq.InputFormat{}, conf, gen.Schema(), "/load/cif", opts, &stats)
	check(err)

	dstBytes := fs.TreeSize("/load/cif")
	fmt.Printf("loaded %d records: SEQ %.2f MB -> CIF %.2f MB (map columns as %s", n,
		float64(srcBytes)/(1<<20), float64(dstBytes)/(1<<20), mapLayout)
	if *codec != "" {
		fmt.Printf(", blocks %s", *codec)
	}
	fmt.Println(")")
	fmt.Printf("read: %.2f MB charged, wrote: %.2f MB (before replication)\n",
		float64(stats.IO.TotalChargedBytes())/(1<<20), float64(stats.IO.BytesWritten)/(1<<20))
	fmt.Printf("modeled cluster load time at this size: %.1fs\n", model.LoadSeconds(stats))

	dirs := 0
	infos, err := fs.List("/load/cif")
	check(err)
	for _, fi := range infos {
		if fi.IsDir {
			dirs++
		}
	}
	fmt.Printf("split-directories: %d\n", dirs)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "colload: %v\n", err)
		os.Exit(1)
	}
}
