// Colscan builds a dataset in each storage format and scans it with a
// column projection, reporting logical/charged bytes, seeks, per-type
// deserialization work, and the modeled single-node scan time — the
// paper's Section 6.2 methodology on demand.
//
// Usage:
//
//	colscan [-workload synthetic|crawl] [-records N] [-columns url,metadata]
//	        [-lazy] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/formats/seq"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

type generator interface {
	Schema() *serde.Schema
	Record(i int64) *serde.GenericRecord
}

func main() {
	var (
		kind    = flag.String("workload", "synthetic", "dataset (synthetic, crawl)")
		records = flag.Int64("records", 20000, "number of records")
		columns = flag.String("columns", "", "comma-separated projection (empty = all columns)")
		lazy    = flag.Bool("lazy", false, "use lazy record construction for CIF")
		seed    = flag.Int64("seed", 2011, "generator seed")
	)
	flag.Parse()

	var gen generator
	switch *kind {
	case "synthetic":
		gen = workload.NewSynthetic(*seed)
	case "crawl":
		gen = workload.NewCrawl(workload.CrawlOptions{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "colscan: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := hdfs.New(cluster, *seed)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())

	// Build SEQ, RCFile, CIF copies.
	{
		f, err := fs.Create("/s/data.seq", hdfs.AnyNode)
		check(err)
		w, err := seq.NewWriter(f, "/s/data.seq", gen.Schema(), seq.Options{}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
		check(f.Close())
	}
	{
		f, err := fs.Create("/s/data.rc", hdfs.AnyNode)
		check(err)
		w, err := rcfile.NewWriter(f, "/s/data.rc", gen.Schema(), rcfile.Options{}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
		check(f.Close())
	}
	{
		w, err := core.NewWriter(fs, "/s/cif", gen.Schema(), core.LoadOptions{SplitRecords: *records/4 + 1}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
	}

	var proj []string
	if *columns != "" {
		proj = strings.Split(*columns, ",")
	}

	type result struct {
		name string
		st   sim.TaskStats
	}
	var results []result

	scan := func(name string, in mapred.InputFormat, conf *mapred.JobConf) {
		splits, err := in.Splits(fs, conf)
		check(err)
		var total sim.TaskStats
		for _, sp := range splits {
			var st sim.TaskStats
			rr, err := in.Open(fs, conf, sp, 0, &st)
			check(err)
			for {
				_, v, ok, err := rr.Next()
				check(err)
				if !ok {
					break
				}
				if rec, isRec := v.(serde.Record); isRec && len(proj) > 0 {
					// Touch the projected fields, as a map function would.
					for _, c := range proj {
						if _, err := rec.Get(c); err != nil {
							check(err)
						}
					}
				}
				st.RecordsProcessed++
			}
			check(rr.Close())
			total.Add(st)
		}
		results = append(results, result{name, total})
	}

	scan("SEQ", &seq.InputFormat{}, &mapred.JobConf{InputPaths: []string{"/s/data.seq"}})
	rconf := &mapred.JobConf{InputPaths: []string{"/s/data.rc"}}
	if proj != nil {
		rcfile.SetColumns(rconf, proj...)
	}
	scan("RCFile", &rcfile.InputFormat{}, rconf)
	cconf := &mapred.JobConf{InputPaths: []string{"/s/cif"}}
	if proj != nil {
		core.SetColumns(cconf, proj...)
	}
	core.SetLazy(cconf, *lazy)
	scan("CIF", &core.InputFormat{}, cconf)

	fmt.Printf("scan of %d %s records, projection=%v, lazy=%v\n\n", *records, *kind, proj, *lazy)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "format\tlogical MB\tcharged MB\tseeks\tmap KB\tvalues\tmodeled scan")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%d\t%.1f\t%d\t%.3fs\n",
			r.name,
			float64(r.st.IO.LogicalBytes)/(1<<20),
			float64(r.st.IO.TotalChargedBytes())/(1<<20),
			r.st.IO.Seeks,
			float64(r.st.CPU.MapBytes)/(1<<10),
			r.st.CPU.ValuesMaterialized,
			model.ScanSeconds(r.st))
	}
	tw.Flush()
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "colscan: %v\n", err)
		os.Exit(1)
	}
}
