// Colscan builds a dataset in each storage format and scans it with a
// column projection, reporting logical/charged bytes, seeks, per-type
// deserialization work, and the modeled single-node scan time — the
// paper's Section 6.2 methodology on demand.
//
// A -where expression adds a selection predicate: CIF pushes it into the
// scan (zone-map pruning plus filter-column evaluation), while SEQ and
// RCFile scan every record and filter afterwards — the comparison the
// selectivity benchmark systematizes.
//
// Usage:
//
//	colscan [-workload synthetic|crawl] [-records N] [-columns url,metadata]
//	        [-where 'prefix(url, "http://ibm.com")'] [-lazy] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/formats/seq"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

type generator interface {
	Schema() *serde.Schema
	Record(i int64) *serde.GenericRecord
}

func main() {
	var (
		kind    = flag.String("workload", "synthetic", "dataset (synthetic, crawl)")
		records = flag.Int64("records", 20000, "number of records")
		columns = flag.String("columns", "", "comma-separated projection (empty = all columns)")
		where   = flag.String("where", "", `selection predicate, e.g. 'int0 <= 100 && prefix(str0, "ab")'`)
		lazy    = flag.Bool("lazy", false, "use lazy record construction for CIF")
		elide   = flag.Bool("elide", true, "let CIF drop split-directories from footer statistics before scheduling")
		seed    = flag.Int64("seed", 2011, "generator seed")
	)
	flag.Parse()

	var pred scan.Predicate
	if *where != "" {
		var err error
		if pred, err = scan.Parse(*where); err != nil {
			fmt.Fprintf(os.Stderr, "colscan: %v\n", err)
			os.Exit(2)
		}
	}

	var gen generator
	switch *kind {
	case "synthetic":
		gen = workload.NewSynthetic(*seed)
	case "crawl":
		gen = workload.NewCrawl(workload.CrawlOptions{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "colscan: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := hdfs.New(cluster, *seed)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())

	// Build SEQ, RCFile, CIF copies.
	{
		f, err := fs.Create("/s/data.seq", hdfs.AnyNode)
		check(err)
		w, err := seq.NewWriter(f, "/s/data.seq", gen.Schema(), seq.Options{}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
		check(f.Close())
	}
	{
		f, err := fs.Create("/s/data.rc", hdfs.AnyNode)
		check(err)
		w, err := rcfile.NewWriter(f, "/s/data.rc", gen.Schema(), rcfile.Options{}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
		check(f.Close())
	}
	{
		w, err := core.NewWriter(fs, "/s/cif", gen.Schema(), core.LoadOptions{SplitRecords: *records/4 + 1}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
	}

	var proj []string
	if *columns != "" {
		proj = strings.Split(*columns, ",")
	}

	type result struct {
		name    string
		st      sim.TaskStats
		matched int64
	}
	var results []result

	// pushdown formats carry the predicate inside the reader; the others
	// scan every record and filter here, after materialization.
	runScan := func(name string, in mapred.InputFormat, conf *mapred.JobConf, pushdown bool) {
		var splits []mapred.Split
		var total sim.TaskStats
		var err error
		if pf, ok := in.(mapred.PlannedInputFormat); ok {
			var report scan.PruneReport
			splits, report, err = pf.PlannedSplits(fs, conf)
			if err == nil && pred != nil {
				fmt.Printf("%s plan: %s\n", name, report)
			}
			// Fold the scheduler tier into the totals, as the engine does:
			// the pruned column then covers every tier.
			total.SplitsPruned = int64(report.SplitsPruned)
			total.RecordsPruned = report.RecordsPruned
		} else {
			splits, err = in.Splits(fs, conf)
		}
		check(err)
		var matched int64
		for _, sp := range splits {
			var st sim.TaskStats
			rr, err := in.Open(fs, conf, sp, 0, &st)
			check(err)
			for {
				_, v, ok, err := rr.Next()
				check(err)
				if !ok {
					break
				}
				rec, isRec := v.(serde.Record)
				if isRec && pred != nil && !pushdown {
					ok, err := pred.Eval(scan.Getter(func(col string) (any, error) { return rec.Get(col) }))
					check(err)
					if !ok {
						st.RecordsProcessed++
						continue
					}
				}
				matched++
				if isRec && len(proj) > 0 {
					// Touch the projected fields, as a map function would.
					for _, c := range proj {
						if _, err := rec.Get(c); err != nil {
							check(err)
						}
					}
				}
				st.RecordsProcessed++
			}
			check(rr.Close())
			total.Add(st)
		}
		results = append(results, result{name, total, matched})
	}

	// Scan-then-filter formats must project the filter columns too; CIF
	// opens them below the projection on its own. Columns dedups against
	// the slice it extends.
	filterProj := proj
	if pred != nil && proj != nil {
		filterProj = pred.Columns(append([]string(nil), proj...))
	}

	runScan("SEQ", &seq.InputFormat{}, &mapred.JobConf{InputPaths: []string{"/s/data.seq"}}, false)
	rconf := &mapred.JobConf{InputPaths: []string{"/s/data.rc"}}
	if filterProj != nil {
		rcfile.SetColumns(rconf, filterProj...)
	}
	runScan("RCFile", &rcfile.InputFormat{}, rconf, false)
	cconf := &mapred.JobConf{InputPaths: []string{"/s/cif"}}
	if proj != nil {
		core.SetColumns(cconf, proj...)
	}
	core.SetLazy(cconf, *lazy)
	if pred != nil {
		scan.SetPredicate(cconf, pred)
	}
	scan.SetElision(cconf, *elide)
	runScan("CIF", &core.InputFormat{}, cconf, true)

	fmt.Printf("scan of %d %s records, projection=%v, where=%q, lazy=%v\n\n", *records, *kind, proj, *where, *lazy)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "format\tmatched\tlogical MB\tcharged MB\tseeks\tmap KB\tvalues\tpruned\tmodeled scan")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%d\t%.1f\t%d\t%d\t%.3fs\n",
			r.name,
			r.matched,
			float64(r.st.IO.LogicalBytes)/(1<<20),
			float64(r.st.IO.TotalChargedBytes())/(1<<20),
			r.st.IO.Seeks,
			float64(r.st.CPU.MapBytes)/(1<<10),
			r.st.CPU.ValuesMaterialized,
			r.st.RecordsPruned,
			model.ScanSeconds(r.st))
	}
	tw.Flush()
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "colscan: %v\n", err)
		os.Exit(1)
	}
}
