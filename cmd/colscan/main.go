// Colscan builds a dataset in each storage format and scans it with a
// column projection, reporting logical/charged bytes, seeks, per-type
// deserialization work, and the modeled single-node scan time — the
// paper's Section 6.2 methodology on demand.
//
// A -where expression adds a selection predicate: CIF pushes it into the
// scan (zone-map pruning plus filter-column evaluation), while SEQ and
// RCFile scan every record and filter afterwards — the comparison the
// selectivity benchmark systematizes.
//
// Repeating -where runs every clause as one shared CIF batch — one job per
// clause, co-scheduled behind one cursor set per split-directory
// (mapred.RunBatch) — and prints per-job and shared-read statistics next to
// the cost of running each job solo.
//
// A -cache budget additionally runs the clauses through one long-lived
// mapred.Session, one Submit/Wait round per clause: later rounds reuse the
// column regions earlier rounds charged, and the table reports
// CacheHits/BytesFromCache per round next to the shared-read stats.
//
// Usage:
//
//	colscan [-workload synthetic|crawl] [-records N] [-columns url,metadata]
//	        [-where 'prefix(url, "http://ibm.com")' [-where ...]] [-lazy]
//	        [-cache BYTES] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/formats/seq"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

type generator interface {
	Schema() *serde.Schema
	Record(i int64) *serde.GenericRecord
}

// multiFlag accumulates repeated flag occurrences.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }

func (m *multiFlag) Set(v string) error {
	// An empty clause means "no predicate", as the single -where flag
	// always treated it (scripts pass -where "$WHERE" with WHERE unset).
	if v != "" {
		*m = append(*m, v)
	}
	return nil
}

func main() {
	var wheres multiFlag
	var (
		kind    = flag.String("workload", "synthetic", "dataset (synthetic, crawl)")
		records = flag.Int64("records", 20000, "number of records")
		columns = flag.String("columns", "", "comma-separated projection (empty = all columns)")
		lazy    = flag.Bool("lazy", false, "use lazy record construction for CIF")
		elide   = flag.Bool("elide", true, "let CIF drop split-directories from footer statistics before scheduling")
		vect    = flag.Bool("vectorize", true, "evaluate CIF predicates batch-at-a-time over decoded column vectors")
		cache   = flag.Int64("cache", 0, "session scan-cache budget in bytes; runs the -where clauses as rounds of one cache-backed session")
		agg     = flag.String("agg", "", `aggregation pushed into the CIF scan, e.g. 'count,min(int0) group by str0'; answered from zone stats and vectors, no records materialized`)
		explain = flag.Bool("explain", false, "print the cost-based CIF plan (EXPLAIN), run it, and report estimated vs actual pruning per tier")
		seed    = flag.Int64("seed", 2011, "generator seed")
	)
	flag.Var(&wheres, "where", `selection predicate, e.g. 'int0 <= 100 && prefix(str0, "ab")'; repeat to run a shared batch`)
	flag.Parse()

	preds := make([]scan.Predicate, len(wheres))
	for i, w := range wheres {
		var err error
		if preds[i], err = scan.Parse(w); err != nil {
			fmt.Fprintf(os.Stderr, "colscan: %v\n", err)
			os.Exit(2)
		}
	}
	var pred scan.Predicate
	if len(preds) > 0 {
		pred = preds[0]
	}

	var gen generator
	switch *kind {
	case "synthetic":
		gen = workload.NewSynthetic(*seed)
	case "crawl":
		gen = workload.NewCrawl(workload.CrawlOptions{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "colscan: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := hdfs.New(cluster, *seed)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())

	// Build SEQ, RCFile, CIF copies.
	{
		f, err := fs.Create("/s/data.seq", hdfs.AnyNode)
		check(err)
		w, err := seq.NewWriter(f, "/s/data.seq", gen.Schema(), seq.Options{}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
		check(f.Close())
	}
	{
		f, err := fs.Create("/s/data.rc", hdfs.AnyNode)
		check(err)
		w, err := rcfile.NewWriter(f, "/s/data.rc", gen.Schema(), rcfile.Options{}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
		check(f.Close())
	}
	{
		w, err := core.NewWriter(fs, "/s/cif", gen.Schema(), core.LoadOptions{SplitRecords: *records/4 + 1}, nil)
		check(err)
		for i := int64(0); i < *records; i++ {
			check(w.Append(gen.Record(i)))
		}
		check(w.Close())
	}

	var proj []string
	if *columns != "" {
		proj = strings.Split(*columns, ",")
	}

	type result struct {
		name    string
		st      sim.TaskStats
		matched int64
	}
	var results []result

	// pushdown formats carry the predicate inside the reader; the others
	// scan every record and filter here, after materialization.
	runScan := func(name string, in mapred.InputFormat, conf *mapred.JobConf, pushdown bool) {
		var splits []mapred.Split
		var total sim.TaskStats
		var err error
		if pf, ok := in.(mapred.PlannedInputFormat); ok {
			var report scan.PruneReport
			splits, report, err = pf.PlannedSplits(fs, conf)
			if err == nil && pred != nil {
				fmt.Printf("%s plan: %s\n", name, report)
			}
			// Fold the scheduler tier into the totals, as the engine does:
			// the pruned column then covers every tier.
			total.SplitsPruned = int64(report.SplitsPruned)
			total.RecordsPruned = report.RecordsPruned
		} else {
			splits, err = in.Splits(fs, conf)
		}
		check(err)
		var matched int64
		for _, sp := range splits {
			var st sim.TaskStats
			rr, err := in.Open(fs, conf, sp, 0, &st)
			check(err)
			for {
				_, v, ok, err := rr.Next()
				check(err)
				if !ok {
					break
				}
				rec, isRec := v.(serde.Record)
				if isRec && pred != nil && !pushdown {
					ok, err := pred.Eval(scan.Getter(func(col string) (any, error) { return rec.Get(col) }))
					check(err)
					if !ok {
						st.RecordsProcessed++
						continue
					}
				}
				matched++
				if isRec && len(proj) > 0 {
					// Touch the projected fields, as a map function would.
					for _, c := range proj {
						if _, err := rec.Get(c); err != nil {
							check(err)
						}
					}
				}
				st.RecordsProcessed++
			}
			check(rr.Close())
			total.Add(st)
		}
		results = append(results, result{name, total, matched})
	}

	// Scan-then-filter formats must project the filter columns too; CIF
	// opens them below the projection on its own. Columns dedups against
	// the slice it extends.
	filterProj := proj
	if pred != nil && proj != nil {
		filterProj = pred.Columns(append([]string(nil), proj...))
	}

	runScan("SEQ", &seq.InputFormat{}, &mapred.JobConf{InputPaths: []string{"/s/data.seq"}}, false)
	rconf := &mapred.JobConf{InputPaths: []string{"/s/data.rc"}}
	if filterProj != nil {
		rcfile.SetColumns(rconf, filterProj...)
	}
	runScan("RCFile", &rcfile.InputFormat{}, rconf, false)
	cconf := &mapred.JobConf{InputPaths: []string{"/s/cif"}}
	if proj != nil {
		core.SetColumns(cconf, proj...)
	}
	core.SetLazy(cconf, *lazy)
	if pred != nil {
		scan.SetPredicate(cconf, pred)
	}
	scan.SetElision(cconf, *elide)
	scan.SetVectorize(cconf, *vect)
	runScan("CIF", &core.InputFormat{}, cconf, true)

	// The per-format table compares one predicate; additional clauses run
	// only in the shared batch section below.
	whereLabel := wheres.String()
	if len(preds) > 1 {
		whereLabel = fmt.Sprintf("%s (+%d more in the shared batch below)", wheres[0], len(preds)-1)
	}
	fmt.Printf("scan of %d %s records, projection=%v, where=%q, lazy=%v\n\n", *records, *kind, proj, whereLabel, *lazy)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "format\tmatched\tlogical MB\tcharged MB\tseeks\tmap KB\tvalues\tvec rows\tpruned\tmodeled scan")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%d\t%.1f\t%d\t%d\t%d\t%.3fs\n",
			r.name,
			r.matched,
			float64(r.st.IO.LogicalBytes)/(1<<20),
			float64(r.st.IO.TotalChargedBytes())/(1<<20),
			r.st.IO.Seeks,
			float64(r.st.CPU.MapBytes)/(1<<10),
			r.st.CPU.ValuesMaterialized,
			r.st.RowsVectorized,
			r.st.RecordsPruned,
			model.ScanSeconds(r.st))
	}
	tw.Flush()

	// With -explain, plan the CIF scan cost-based, run the chosen plan, and
	// hold the estimates to account against the run.
	if *explain {
		explainScan(fs, model, "/s/cif", proj, pred, *elide, *vect)
	}

	// With several -where clauses, run them as one shared CIF batch and
	// compare against each clause scanning solo.
	if len(preds) > 1 {
		batchScan(fs, model, "/s/cif", proj, preds, *lazy, *elide, *vect)
	}

	// With a cache budget, run the clauses again as successive rounds of
	// one long-lived session — cross-batch reuse instead of co-submission.
	if *cache > 0 && len(preds) > 0 {
		sessionScan(fs, model, "/s/cif", proj, preds, *lazy, *elide, *vect, *cache)
	}

	// With -agg, push the aggregation into the CIF scan and compare against
	// answering it from materialized records.
	if *agg != "" {
		aggScan(fs, model, "/s/cif", *agg, pred, *elide, *vect)
	}
}

// aggScan runs the aggregation pushed into the scan, prints its rows, and
// compares the modeled cost against a materializing scan that folds the
// same records after the reader surfaces them.
func aggScan(fs *hdfs.FileSystem, model sim.CostModel, dataset, aggSrc string, pred scan.Predicate, elide, vect bool) {
	a, err := scan.ParseAggregate(aggSrc)
	check(err)

	res, err := mapred.Run(fs, core.ScanDataset(dataset).
		Where(pred).Elide(elide).Vectorize(vect).Aggregate(a).AggJob())
	check(err)

	// The materializing baseline: same projection and predicate, records
	// surfaced to a map function that folds the same state by hand.
	base := scan.NewAggState(a)
	baseRes, err := mapred.Run(fs, core.ScanDataset(dataset).
		Columns(a.Columns(nil)...).Where(pred).Elide(elide).Vectorize(vect).
		Job(mapred.MapperFunc(func(_, v any, _ mapred.Emit) error {
			rec := v.(serde.Record)
			return base.FoldRecord(scan.Getter(func(col string) (any, error) { return rec.Get(col) }))
		})))
	check(err)

	fmt.Printf("\naggregation %q pushed into the scan:\n\n", a)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "group"
	for _, f := range a.Funcs {
		header += "\t" + f.String()
	}
	fmt.Fprintln(tw, header)
	for _, row := range res.Agg.Rows() {
		line := fmt.Sprintf("%v", row.Group)
		if a.GroupBy == "" {
			line = "(all)"
		}
		for _, v := range row.Values {
			line += fmt.Sprintf("\t%v", v)
		}
		fmt.Fprintln(tw, line)
	}
	tw.Flush()

	st := res.Total
	fmt.Printf("\nfolded %d rows in %d batches, %d zone-stat shortcuts, %d dict-id compares, %d values materialized\n",
		st.RowsAggregated, st.AggBatches, st.AggGroupsShortcut, st.DictIdCompares, st.CPU.ValuesMaterialized)
	pushSec, matSec := model.ScanSeconds(st), model.ScanSeconds(baseRes.Total)
	speedup := "equal"
	if pushSec > 0 && matSec > pushSec {
		speedup = fmt.Sprintf("%.1fx faster", matSec/pushSec)
	}
	fmt.Printf("modeled: pushdown %.4fs vs materializing fold %.4fs (%s)\n", pushSec, matSec, speedup)
}

// explainScan is `colscan -explain`: build the cost-based plan without
// pinning materialization or sizing, print it, install its choices, run the
// job, and print the estimated-vs-actual account per pruning tier.
func explainScan(fs *hdfs.FileSystem, model sim.CostModel, dataset string, proj []string, p scan.Predicate, elide, vect bool) {
	job := core.ScanDataset(dataset).
		Columns(proj...).
		Where(p).
		Elide(elide).
		Vectorize(vect).
		Job(mapred.MapperFunc(func(_, _ any, _ mapred.Emit) error { return nil }))
	cif, ok := job.Input.(*core.InputFormat)
	if !ok {
		check(fmt.Errorf("explain: job input is %T, not CIF", job.Input))
	}
	plan, err := cif.Explain(fs, &job.Conf, model)
	check(err)
	fmt.Printf("\n%s\n", plan)
	plan.Apply(&job.Conf)
	res, err := mapred.Run(fs, job)
	check(err)
	fmt.Printf("%s\n", plan.Report(res, model))
}

// cifJob builds one map-only CIF job over the dataset through the typed
// builder.
func cifJob(dataset string, proj []string, p scan.Predicate, lazy, elide, vect bool) *mapred.Job {
	return core.ScanDataset(dataset).
		Columns(proj...).
		Where(p).
		Lazy(lazy).
		Elide(elide).
		Vectorize(vect).
		Job(mapred.MapperFunc(func(_, _ any, _ mapred.Emit) error { return nil }))
}

// batchScan runs one map-only CIF job per predicate, solo and co-scheduled,
// printing per-job logical accounting and the batch's shared-read savings.
func batchScan(fs *hdfs.FileSystem, model sim.CostModel, dataset string, proj []string, preds []scan.Predicate, lazy, elide, vect bool) {
	job := func(p scan.Predicate) *mapred.Job { return cifJob(dataset, proj, p, lazy, elide, vect) }

	var soloCharged int64
	var soloSeconds float64
	soloMatches := make([]int64, len(preds))
	for i, p := range preds {
		res, err := mapred.Run(fs, job(p))
		check(err)
		soloCharged += res.Total.IO.TotalChargedBytes()
		soloSeconds += model.ScanSeconds(res.Total)
		soloMatches[i] = res.Total.RecordsProcessed
	}

	jobs := make([]*mapred.Job, len(preds))
	for i, p := range preds {
		jobs[i] = job(p)
	}
	br, err := mapred.RunBatch(fs, jobs...)
	check(err)

	fmt.Printf("\nshared CIF batch: %d jobs, %d co-scheduled tasks (%d shared)\n\n", len(preds), br.Tasks, br.SharedTasks)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "job\twhere\tmatched\tpruned\tfiltered\tsplits scheduled")
	for i, res := range br.Results {
		if res.Total.RecordsProcessed != soloMatches[i] {
			fmt.Fprintf(os.Stderr, "colscan: job %d matched %d batched but %d solo\n", i, res.Total.RecordsProcessed, soloMatches[i])
			os.Exit(1)
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d/%d\n",
			i, preds[i], res.Total.RecordsProcessed, res.Total.RecordsPruned, res.Total.RecordsFiltered,
			res.Plan.SplitsTotal-res.Plan.SplitsPruned, res.Plan.SplitsTotal)
	}
	tw.Flush()

	batchStats := br.Shared
	for _, res := range br.Results {
		batchStats.Add(res.Total)
	}
	fmt.Printf("\nsolo:  charged %.2f MB, modeled %.3fs (sum of %d independent runs)\n",
		float64(soloCharged)/(1<<20), soloSeconds, len(preds))
	reduction := "nothing charged in either mode"
	if charged := br.ChargedBytes(); charged > 0 {
		reduction = fmt.Sprintf("%.1fx charged reduction", float64(soloCharged)/float64(charged))
	}
	fmt.Printf("batch: charged %.2f MB, modeled %.3fs — %d cursor opens avoided, %.2f MB saved (%s)\n",
		float64(br.ChargedBytes())/(1<<20), model.ScanSeconds(batchStats),
		br.Shared.SharedReads, float64(br.Shared.BytesSaved)/(1<<20), reduction)
}

// sessionScan runs each predicate as one Submit/Wait round of a long-lived
// session with the given cache budget — cross-batch reuse, no co-submission
// — printing per-round cache statistics next to the cost of a cold run.
func sessionScan(fs *hdfs.FileSystem, model sim.CostModel, dataset string, proj []string, preds []scan.Predicate, lazy, elide, vect bool, cacheBytes int64) {
	// The vector cache rides the same budget: a round whose batches are all
	// resident decodes (and reads) nothing at all.
	session := mapred.NewSession(fs, mapred.SessionOptions{CacheBytes: cacheBytes, VecCacheBytes: cacheBytes})

	fmt.Printf("\ncached CIF session: %d rounds, %d MB cache budget\n\n", len(preds), cacheBytes>>20)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "round\twhere\tmatched\tcold charged MB\twarm charged MB\tcache hits\tfrom cache MB\tvec hits\tdecode saved\tmodeled")
	var coldTotal, warmTotal int64
	for i, p := range preds {
		cold, err := mapred.Run(fs, cifJob(dataset, proj, p, lazy, elide, vect))
		check(err)
		pend := session.Submit(cifJob(dataset, proj, p, lazy, elide, vect))
		br, err := session.Wait()
		check(err)
		warm, err := pend.Result()
		check(err)
		if warm.Total.RecordsProcessed != cold.Total.RecordsProcessed {
			fmt.Fprintf(os.Stderr, "colscan: round %d matched %d cached but %d cold\n",
				i, warm.Total.RecordsProcessed, cold.Total.RecordsProcessed)
			os.Exit(1)
		}
		hits, fromCache := mapred.CacheStats(br)
		_, vecHits, decodeSaved := mapred.VecStats(br)
		coldTotal += cold.Total.IO.TotalChargedBytes()
		warmTotal += warm.Total.IO.TotalChargedBytes()
		fmt.Fprintf(tw, "%d\t%s\t%d\t%.2f\t%.2f\t%d\t%.2f\t%d\t%d\t%.3fs\n",
			i, p, warm.Total.RecordsProcessed,
			float64(cold.Total.IO.TotalChargedBytes())/(1<<20),
			float64(warm.Total.IO.TotalChargedBytes())/(1<<20),
			hits, float64(fromCache)/(1<<20),
			vecHits, decodeSaved,
			model.ScanSeconds(warm.Total))
	}
	tw.Flush()
	resident, regions := session.CacheUsage()
	reduction := "nothing charged in either mode"
	if warmTotal > 0 {
		reduction = fmt.Sprintf("%.1fx charged reduction", float64(coldTotal)/float64(warmTotal))
	} else if coldTotal > 0 {
		reduction = "every warm byte served from cache"
	}
	vecResident, vectors := session.VecCacheUsage()
	fmt.Printf("\nsession: cold %.2f MB vs warm %.2f MB (%s); cache resident %.2f MB in %d regions; vectors resident %.2f MB in %d vectors\n",
		float64(coldTotal)/(1<<20), float64(warmTotal)/(1<<20), reduction,
		float64(resident)/(1<<20), regions,
		float64(vecResident)/(1<<20), vectors)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "colscan: %v\n", err)
		os.Exit(1)
	}
}
