// Colserve runs the scan server as a network service: it loads a workload
// dataset into the simulated HDFS, then serves HTTP/JSON queries over one
// long-lived session behind a sharing window — concurrent clients whose
// predicates overlap inside the window share one scan.
//
// Endpoints:
//
//	POST /query   {"tenant": "web", "where": "int0 <= 100", "columns": ["str0"], "limit": 5}
//	GET  /stats   live server statistics (tenants, batches, modeled latencies)
//	GET  /healthz liveness and draining state
//
// The where clause is the scan expression language, the same one colscan
// -where speaks. SIGINT/SIGTERM drain gracefully: in-flight and window-held
// queries finish, new ones get 503.
//
// Usage:
//
//	colserve [-addr :8087] [-window MS] [-maxbatches N] [-quota N]
//	         [-cache BYTES] [-workload synthetic|crawl] [-records N]
//	         [-splits N] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/serde"
	"colmr/internal/serve"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

type generator interface {
	Schema() *serde.Schema
	Record(i int64) *serde.GenericRecord
}

func main() {
	var (
		addr       = flag.String("addr", ":8087", "listen address")
		windowMS   = flag.Float64("window", 50, "sharing window in milliseconds of modeled time (0 disables batching)")
		maxBatches = flag.Int("maxbatches", 2, "batches in flight concurrently")
		quota      = flag.Int("quota", 0, "max in-flight queries per tenant (0 = unlimited)")
		cache      = flag.Int64("cache", 64<<20, "session scan-cache budget in bytes (0 disables)")
		kind       = flag.String("workload", "synthetic", "dataset (synthetic, crawl)")
		records    = flag.Int64("records", 100000, "number of records to load")
		splits     = flag.Int64("splits", 16, "split-directories to load them into")
		seed       = flag.Int64("seed", 2011, "generator and placement seed")
		explain    = flag.Bool("explain", false, "attach the cost-based EXPLAIN report to every query response")
	)
	flag.Parse()

	var gen generator
	switch *kind {
	case "synthetic":
		gen = workload.NewSynthetic(*seed)
	case "crawl":
		gen = workload.NewCrawl(workload.CrawlOptions{Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "colserve: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	fs := hdfs.New(sim.SingleNode(), *seed)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())
	const dataset = "/serve/cif"
	fmt.Printf("colserve: loading %d %s records into %s (%d splits)...\n", *records, *kind, dataset, *splits)
	w, err := core.NewWriter(fs, dataset, gen.Schema(), core.LoadOptions{
		SplitRecords: (*records + *splits - 1) / *splits,
	}, nil)
	check(err)
	for i := int64(0); i < *records; i++ {
		check(w.Append(gen.Record(i)))
	}
	check(w.Close())

	srv := serve.New(fs, serve.Options{
		Window:      *windowMS / 1e3,
		MaxBatches:  *maxBatches,
		TenantQuota: *quota,
		CacheBytes:  *cache,
	})
	handler := serve.NewHandler(srv, serve.HandlerOptions{
		Datasets:      map[string]string{*kind: dataset},
		Default:       *kind,
		AlwaysExplain: *explain,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Printf("colserve: serving dataset %q on %s (window %.0fms, %d batch slots, quota %d)\n",
		*kind, *addr, *windowMS, *maxBatches, *quota)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("colserve: %v — draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		httpSrv.Shutdown(ctx)
		cancel()
		srv.Drain()
		st := srv.Stats()
		fmt.Printf("colserve: served %d queries in %d batches (%d shared), %.2f MB charged, %.2f MB saved by sharing\n",
			st.Completed, st.Batches, st.SharedBatches,
			float64(st.ChargedBytes)/(1<<20), float64(st.BytesSaved)/(1<<20))
	case err := <-done:
		check(err)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "colserve: %v\n", err)
		os.Exit(1)
	}
}
