// Package colmr is a Go implementation of the column-oriented storage
// techniques for MapReduce described in Floratou, Patel, Shekita and Tata,
// "Column-Oriented Storage Techniques for MapReduce", PVLDB 4(7), 2011 —
// the CIF/COF design that preceded the Parquet/ORC generation of columnar
// Hadoop formats.
//
// The module contains a complete, self-contained stack:
//
//   - a simulated HDFS with block replication and pluggable block placement
//     (including the paper's co-locating ColumnPlacementPolicy);
//   - a MapReduce engine with Hadoop's InputFormat/OutputFormat extension
//     points, locality-aware scheduling, and shuffle/sort/reduce;
//   - an Avro-like serialization framework with schemas, generic records,
//     and complex types (arrays, maps, nested records);
//   - the storage formats: delimited text, SequenceFiles (four variants),
//     RCFile, and the paper's CIF/COF column format with plain, skip-list,
//     compressed-block, and dictionary-compressed-skip-list column layouts
//     plus lazy record construction;
//   - workload generators and benchmark harnesses that regenerate every
//     table and figure of the paper's evaluation (see EXPERIMENTS.md).
//
// This package re-exports the user-facing API; implementation lives under
// internal/. The quickstart in examples/quickstart/main.go shows the full
// write-load-query cycle in ~60 lines.
package colmr

import (
	"io"

	"colmr/internal/bench"
	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Cluster and filesystem.
type (
	// ClusterConfig describes the modeled cluster (nodes, slots, disks,
	// network, block size).
	ClusterConfig = sim.ClusterConfig
	// CostModel prices measured work counters into simulated seconds.
	CostModel = sim.CostModel
	// TaskStats accumulates a task's I/O and CPU work counters.
	TaskStats = sim.TaskStats
	// FileSystem is the simulated HDFS namenode + datanodes.
	FileSystem = hdfs.FileSystem
	// NodeID identifies a datanode.
	NodeID = hdfs.NodeID
	// BlockPlacementPolicy chooses replica locations for new blocks.
	BlockPlacementPolicy = hdfs.BlockPlacementPolicy
)

// AnyNode is the node id used when locality does not matter.
const AnyNode = hdfs.AnyNode

// DefaultCluster returns the paper's 40-node cluster configuration.
func DefaultCluster() ClusterConfig { return sim.DefaultCluster() }

// SingleNode returns a one-node configuration for microbenchmarks.
func SingleNode() ClusterConfig { return sim.SingleNode() }

// DefaultModel returns the calibrated cost model for the default cluster.
func DefaultModel() CostModel { return sim.DefaultModel() }

// NewFileSystem creates a simulated HDFS over the given cluster. The seed
// makes block placement deterministic.
func NewFileSystem(cfg ClusterConfig, seed int64) *FileSystem { return hdfs.New(cfg, seed) }

// NewColumnPlacementPolicy returns the paper's co-locating block placement
// policy (install with FileSystem.SetPlacementPolicy).
func NewColumnPlacementPolicy() BlockPlacementPolicy { return hdfs.NewColumnPlacementPolicy() }

// Schemas and records.
type (
	// Schema is a column/record type descriptor.
	Schema = serde.Schema
	// Field is a named record field.
	Field = serde.Field
	// Record is the generic record abstraction map functions consume;
	// both eager and lazy records implement it.
	Record = serde.Record
	// GenericRecord is an eagerly materialized record.
	GenericRecord = serde.GenericRecord
)

// ParseSchema parses the paper's schema DSL (see serde.Parse for the
// grammar):
//
//	URLInfo { string url, time fetchTime, map<string> metadata, bytes content }
func ParseSchema(src string) (*Schema, error) { return serde.Parse(src) }

// MustParseSchema is ParseSchema that panics on error.
func MustParseSchema(src string) *Schema { return serde.MustParse(src) }

// NewRecord returns an empty record of the given schema.
func NewRecord(s *Schema) *GenericRecord { return serde.NewRecord(s) }

// Primitive and composite schema constructors, for building schemas
// programmatically (AddColumn and tests).
func BoolSchema() *Schema          { return serde.Bool() }
func IntSchema() *Schema           { return serde.Int() }
func LongSchema() *Schema          { return serde.Long() }
func DoubleSchema() *Schema        { return serde.Double() }
func StringSchema() *Schema        { return serde.String() }
func BytesSchema() *Schema         { return serde.Bytes() }
func TimeSchema() *Schema          { return serde.Time() }
func ArrayOf(elem *Schema) *Schema { return serde.ArrayOf(elem) }
func MapOf(value *Schema) *Schema  { return serde.MapOf(value) }
func RecordOf(name string, fields ...Field) *Schema {
	return serde.RecordOf(name, fields...)
}

// MapReduce.
type (
	// Job is a configured MapReduce job.
	Job = mapred.Job
	// JobConf carries job configuration.
	JobConf = mapred.JobConf
	// JobResult reports a finished job's work counters.
	JobResult = mapred.Result
	// InputFormat generates splits and record readers.
	InputFormat = mapred.InputFormat
	// OutputFormat writes job output.
	OutputFormat = mapred.OutputFormat
	// Emit passes a pair out of a map or reduce function.
	Emit = mapred.Emit
	// MapperFunc adapts a function to the Mapper interface.
	MapperFunc = mapred.MapperFunc
	// ReducerFunc adapts a function to the Reducer interface.
	ReducerFunc = mapred.ReducerFunc
	// TextOutput writes key<TAB>value lines.
	TextOutput = mapred.TextOutput
	// NullOutput discards output (for measurement-only jobs).
	NullOutput = mapred.NullOutput
)

// RunJob executes a MapReduce job and returns its work counters.
func RunJob(fs *FileSystem, job *Job) (*JobResult, error) { return mapred.Run(fs, job) }

// The typed query API. A ScanSpec carries a job's whole scan contract —
// projection, predicate, materialization mode, elision, task sizing — as
// one first-class value on JobConf.Scan; the planner and readers consume it
// directly. ScanDataset starts the fluent builder:
//
//	job := colmr.ScanDataset("/data/visits").
//		Columns("url", "fetchTime").
//		Where(colmr.HasPrefix("url", "http://www.ibm.com")).
//		Lazy(true).
//		Job(mapper)
//
// The SetColumns/SetPredicate/SetLazy/SetElision/SetBloom free functions
// below are compatibility wrappers that populate the same spec.
type (
	// ScanSpec is the typed scan specification (scan.Spec).
	ScanSpec = scan.Spec
	// ScanBuilder fluently assembles a ScanSpec, JobConf, or Job.
	ScanBuilder = core.ScanBuilder
)

// ScanDataset starts a typed scan over one or more CIF datasets.
func ScanDataset(paths ...string) *ScanBuilder { return core.ScanDataset(paths...) }

// Shared scans — the batch engine. Co-submitted jobs over the same CIF
// datasets are planned together: one map task runs per shared
// split-directory group, a single cursor set reads the union of the jobs'
// columns at the union predicate's selectivity, and per-job residual
// predicates demultiplex the stream. Each job receives exactly the records
// and per-job accounting of a solo run; physical I/O is charged once, to
// BatchResult.Shared.
type (
	// Engine is the session-style batch front end: Submit queues jobs,
	// Wait co-schedules everything queued as one batch.
	Engine = mapred.Engine
	// PendingJob is a submitted job's handle; resolved by Engine.Wait.
	PendingJob = mapred.PendingJob
	// BatchResult is a batch run's outcome: per-job results plus the
	// once-charged shared-scan accounting.
	BatchResult = mapred.BatchResult
)

// NewEngine returns a batch engine over the filesystem.
func NewEngine(fs *FileSystem) *Engine { return mapred.NewEngine(fs) }

// Long-lived sessions — the engine plus cross-batch scan caching. A
// Session retains an LRU-bounded cache of column-file regions keyed by
// (file, generation, region) across Submit/Wait rounds, so a steady stream
// of jobs over the same datasets reuses hot reads without co-submission;
// TaskStats.CacheHits and BytesFromCache report the reuse. With CacheBytes
// 0 a Session is byte-for-byte an Engine. Generations make stale hits
// impossible: reloading a dataset orphans its old cache entries, and
// AddColumn (new files beside untouched ones) invalidates nothing.
type (
	// Session is the long-lived query front end (mapred.Session).
	Session = mapred.Session
	// SessionOptions configures a session's cache budget.
	SessionOptions = mapred.SessionOptions
)

// NewSession returns a session over the filesystem.
func NewSession(fs *FileSystem, opts SessionOptions) *Session { return mapred.NewSession(fs, opts) }

// RunBatch executes the jobs as one batch, sharing scans where their
// planned split sets intersect.
func RunBatch(fs *FileSystem, jobs ...*Job) (*BatchResult, error) {
	return mapred.RunBatch(fs, jobs...)
}

// AutoDirsPerSplit, assigned to ColumnInputFormat.DirsPerSplit, sizes map
// tasks from estimated predicate selectivity: few surviving, sparsely
// matching split-directories merge into fewer tasks.
const AutoDirsPerSplit = core.AutoDirsPerSplit

// CIF / COF — the paper's contribution.
type (
	// ColumnInputFormat (CIF) reads CIF datasets with projection pushdown
	// and lazy record construction.
	ColumnInputFormat = core.InputFormat
	// ColumnWriter (COF) loads records into split-directories of column
	// files.
	ColumnWriter = core.Writer
	// LoadOptions configures a COF load (split sizing, per-column
	// layouts).
	LoadOptions = core.LoadOptions
	// ColumnOptions selects a column file's physical layout.
	ColumnOptions = colfile.Options
	// ColumnLayout enumerates the physical layouts.
	ColumnLayout = colfile.Layout
)

// Column layouts (paper Sections 4.2, 5.2, 5.3).
const (
	// LayoutPlain stores concatenated values; skipping walks each record.
	LayoutPlain = colfile.Plain
	// LayoutSkipList interleaves skip blocks at 10/100/1000-record
	// boundaries for cheap skipping.
	LayoutSkipList = colfile.SkipList
	// LayoutBlock stores LZO- or ZLIB-compressed blocks with lazy
	// decompression.
	LayoutBlock = colfile.Block
	// LayoutDCSL is the dictionary compressed skip list for map columns.
	LayoutDCSL = colfile.DCSL
)

// NewColumnWriter starts a COF load into the dataset directory.
func NewColumnWriter(fs *FileSystem, dataset string, schema *Schema, opts LoadOptions, stats *TaskStats) (*ColumnWriter, error) {
	return core.NewWriter(fs, dataset, schema, opts, stats)
}

// SetColumns pushes a column projection into CIF for a job — the paper's
// ColumnInputFormat.setColumns. Compatibility wrapper over
// ScanSpec.Columns; prefer ScanDataset(...).Columns(...).
func SetColumns(conf *JobConf, columns ...string) { core.SetColumns(conf, columns...) }

// SetLazy selects lazy record construction for a CIF job. Compatibility
// wrapper over ScanSpec.Lazy; prefer ScanDataset(...).Lazy(...).
func SetLazy(conf *JobConf, lazy bool) { core.SetLazy(conf, lazy) }

// Selection pushdown — the scan subsystem (internal/scan). A Predicate
// travels into CIF alongside the projection: zone-map statistics prune
// whole record groups without touching their bytes, filter columns decide
// the remaining records, and projected columns materialize only for
// matches.
// Predicate is a pushdown filter over records. The statistics backing
// group pruning (min/max/null-count/distinct/key-universe/Bloom-filter
// per record group) are internal to the column files; see
// internal/colfile.StatsSource and docs/FORMAT.md.
type Predicate = scan.Predicate

// SetPredicate pushes a selection predicate into CIF for a job — the
// selection analogue of SetColumns. Compatibility wrapper over
// ScanSpec.Predicate; prefer ScanDataset(...).Where(...).
func SetPredicate(conf *JobConf, p Predicate) { scan.SetPredicate(conf, p) }

// PruneReport summarizes the scheduler tier's split-elision decisions for
// a job: split-directories dropped from column-file footer statistics
// before any map task existed. JobResult.Plan carries it.
type PruneReport = scan.PruneReport

// SetElision enables or disables scheduler-tier split elision for a job
// (default on). Elision never changes which records qualify — only how
// many splits are scheduled; disabling it restores reader-side
// group pruning alone, which is useful for comparisons and debugging.
// Compatibility wrapper over ScanSpec.NoElide; prefer
// ScanDataset(...).Elide(...).
func SetElision(conf *JobConf, on bool) { scan.SetElision(conf, on) }

// SetBloom enables or disables Bloom-filter consultation at every pruning
// tier (default on). Filters answer string/bytes equality and map-key
// existence where zone maps cannot (unsorted high-cardinality data); a
// negative probe is a proof, so toggling never changes which records
// qualify. Compatibility wrapper over ScanSpec.NoBloom; prefer
// ScanDataset(...).Bloom(...). See docs/PRUNING.md.
func SetBloom(conf *JobConf, on bool) { scan.SetBloom(conf, on) }

// ParsePredicate reads a predicate from the scan expression language,
// e.g. `prefix(url, "http://www.ibm.com") && fetchTime > 1293840000000`.
func ParsePredicate(expr string) (Predicate, error) { return scan.Parse(expr) }

// Predicate builders. Comparison literals may be any Go integer or float
// type, string, bool, or []byte; numeric literals compare across the
// column's native width.
func Eq(col string, lit any) Predicate         { return scan.Eq(col, lit) }
func Ne(col string, lit any) Predicate         { return scan.Ne(col, lit) }
func Lt(col string, lit any) Predicate         { return scan.Lt(col, lit) }
func Le(col string, lit any) Predicate         { return scan.Le(col, lit) }
func Gt(col string, lit any) Predicate         { return scan.Gt(col, lit) }
func Ge(col string, lit any) Predicate         { return scan.Ge(col, lit) }
func Between(col string, lo, hi any) Predicate { return scan.Between(col, lo, hi) }
func HasPrefix(col, prefix string) Predicate   { return scan.HasPrefix(col, prefix) }
func KeyExists(col, key string) Predicate      { return scan.KeyExists(col, key) }
func IsNull(col string) Predicate              { return scan.IsNull(col) }
func NotNull(col string) Predicate             { return scan.NotNull(col) }
func And(kids ...Predicate) Predicate          { return scan.And(kids...) }
func Or(kids ...Predicate) Predicate           { return scan.Or(kids...) }
func Not(p Predicate) Predicate                { return scan.Not(p) }

// ReadDatasetSchema returns a CIF dataset's schema.
func ReadDatasetSchema(fs *FileSystem, dataset string) (*Schema, error) {
	return core.ReadSchema(fs, dataset)
}

// AddColumn appends a derived column to an existing CIF dataset — cheap
// schema evolution, one new file per split-directory (Section 4.3).
func AddColumn(fs *FileSystem, dataset, name string, colSchema *Schema, layout ColumnOptions, inputCols []string, compute func(rec Record) (any, error), stats *TaskStats) error {
	return core.AddColumn(fs, dataset, name, colSchema, layout, inputCols, compute, stats)
}

// LoadDataset converts any InputFormat-readable dataset into a CIF dataset.
func LoadDataset(fs *FileSystem, in InputFormat, conf *JobConf, schema *Schema, dest string, opts LoadOptions, stats *TaskStats) (int64, error) {
	return core.Load(fs, in, conf, schema, dest, opts, stats)
}

// Workload generators.
type (
	// CrawlOptions parameterizes the intranet-crawl generator.
	CrawlOptions = workload.CrawlOptions
	// Crawl generates URLInfo records (the paper's Figure 2 schema).
	Crawl = workload.Crawl
	// Synthetic generates the Section 6.2 microbenchmark records.
	Synthetic = workload.Synthetic
)

// NewCrawl returns a crawl-dataset generator.
func NewCrawl(opts CrawlOptions) *Crawl { return workload.NewCrawl(opts) }

// NewSynthetic returns the synthetic-dataset generator.
func NewSynthetic(seed int64) *Synthetic { return workload.NewSynthetic(seed) }

// Experiments.
type (
	// ExperimentConfig controls experiment scale, seed, and output.
	ExperimentConfig = bench.Config
)

// Experiment results, re-exported for programmatic use.
type (
	Figure7Result    = bench.Figure7Result
	Table1Result     = bench.Table1Result
	ColocationResult = bench.ColocationResult
	Figure8Result    = bench.Figure8Result
	Figure9Result    = bench.Figure9Result
	Table2Result     = bench.Table2Result
	Figure10Result   = bench.Figure10Result
	Figure11Result   = bench.Figure11Result
	// SelectivityResult is the pushdown-vs-scan-then-filter sweep (beyond
	// the paper; see internal/bench/selectivity.go).
	SelectivityResult = bench.SelectivityResult
	// ElisionResult is the split-elision sweep: scheduler-tier pruning vs
	// the group-tier-only baseline (internal/bench/elision.go).
	ElisionResult = bench.ElisionResult
	// SharedScanResult is the shared-scan sweep: co-scheduled batches vs
	// independent runs (internal/bench/sharedscan.go).
	SharedScanResult = bench.SharedScanResult
	// CacheReuseResult is the cross-batch caching sweep: one session
	// resubmitting a job vs cold runs (internal/bench/cachereuse.go).
	CacheReuseResult = bench.CacheReuseResult
)

// DefaultExperimentConfig returns the standard experiment configuration;
// set Out to receive formatted tables.
func DefaultExperimentConfig(out io.Writer) ExperimentConfig {
	cfg := bench.DefaultConfig()
	cfg.Out = out
	return cfg
}

// The experiment entry points regenerate the paper's tables and figures.
func RunFigure7(cfg ExperimentConfig) (*Figure7Result, error)       { return bench.Figure7(cfg) }
func RunTable1(cfg ExperimentConfig) (*Table1Result, error)         { return bench.Table1(cfg) }
func RunColocation(cfg ExperimentConfig) (*ColocationResult, error) { return bench.Colocation(cfg) }
func RunFigure8(cfg ExperimentConfig) (*Figure8Result, error)       { return bench.Figure8(cfg) }
func RunFigure9(cfg ExperimentConfig) (*Figure9Result, error)       { return bench.Figure9(cfg) }
func RunTable2(cfg ExperimentConfig) (*Table2Result, error)         { return bench.Table2(cfg) }
func RunFigure10(cfg ExperimentConfig) (*Figure10Result, error)     { return bench.Figure10(cfg) }
func RunFigure11(cfg ExperimentConfig) (*Figure11Result, error)     { return bench.Figure11(cfg) }

// RunSelectivity sweeps predicate selectivity 0.01%-100% and compares
// pushdown against scan-then-filter across the four column layouts.
func RunSelectivity(cfg ExperimentConfig) (*SelectivityResult, error) { return bench.Selectivity(cfg) }

// RunElision sweeps predicate selectivity over a many-split clustered
// dataset and compares scheduler-tier split elision against the
// group-tier-only baseline.
func RunElision(cfg ExperimentConfig) (*ElisionResult, error) { return bench.Elision(cfg) }

// RunSharedScan sweeps batch concurrency (1/2/4/8 jobs, overlapping vs
// disjoint predicates) and compares co-scheduled shared scans against
// independent runs.
func RunSharedScan(cfg ExperimentConfig) (*SharedScanResult, error) { return bench.SharedScan(cfg) }

// RunCacheReuse resubmits one job round after round to a long-lived Session
// and compares its charged bytes against cold runs — the cross-batch scan
// cache at work.
func RunCacheReuse(cfg ExperimentConfig) (*CacheReuseResult, error) { return bench.CacheReuse(cfg) }

// Ablation results for the design choices and for the paper's deferred
// future work (re-replication after failures, split-granularity
// parallelism).
type (
	SkipLevelsResult  = bench.SkipLevelsResult
	ParallelismResult = bench.ParallelismResult
	BlockSizeResult   = bench.BlockSizeResult
	RecoveryResult    = bench.RecoveryResult
)

func RunAblationSkipLevels(cfg ExperimentConfig) (*SkipLevelsResult, error) {
	return bench.AblationSkipLevels(cfg)
}
func RunAblationParallelism(cfg ExperimentConfig) (*ParallelismResult, error) {
	return bench.AblationParallelism(cfg)
}
func RunAblationBlockSize(cfg ExperimentConfig) (*BlockSizeResult, error) {
	return bench.AblationBlockSize(cfg)
}
func RunAblationRecovery(cfg ExperimentConfig) (*RecoveryResult, error) {
	return bench.AblationRecovery(cfg)
}
