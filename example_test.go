package colmr_test

import (
	"fmt"
	"log"
	"strings"

	"colmr"
)

// Example demonstrates the core workflow: load records through COF, then
// run a projected, lazy MapReduce job through CIF.
func Example() {
	fs := colmr.NewFileSystem(colmr.DefaultCluster(), 1)
	fs.SetPlacementPolicy(colmr.NewColumnPlacementPolicy())

	schema := colmr.MustParseSchema(`Page { string url, map<string> meta }`)
	w, err := colmr.NewColumnWriter(fs, "/pages", schema, colmr.LoadOptions{SplitRecords: 64}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		rec := colmr.NewRecord(schema)
		rec.Set("url", fmt.Sprintf("http://site/%d", i))
		rec.Set("meta", map[string]any{"lang": "en"})
		if err := w.Append(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	conf := colmr.JobConf{InputPaths: []string{"/pages"}}
	colmr.SetColumns(&conf, "url") // the meta column is never read
	colmr.SetLazy(&conf, true)

	count := 0
	job := &colmr.Job{
		Conf:  conf,
		Input: &colmr.ColumnInputFormat{},
		Mapper: colmr.MapperFunc(func(key, value any, emit colmr.Emit) error {
			url, err := value.(colmr.Record).Get("url")
			if err != nil {
				return err
			}
			if strings.HasSuffix(url.(string), "/7") {
				count++
			}
			return nil
		}),
		Output: colmr.NullOutput{},
	}
	if _, err := colmr.RunJob(fs, job); err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:", count)
	// Output: matches: 1
}

// ExampleParseSchema shows the paper's schema DSL, including complex types.
func ExampleParseSchema() {
	s, err := colmr.ParseSchema(`
		URLInfo {
		  string url,
		  time fetchTime,
		  string[] inlink,
		  map<string> metadata,
		  bytes content
		}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Name, len(s.Fields), s.Field("metadata").Kind)
	// Output: URLInfo 5 map
}

// ExampleAddColumn evolves a dataset's schema in place — one new file per
// split-directory, no rewrite of existing columns (paper Section 4.3).
func ExampleAddColumn() {
	fs := colmr.NewFileSystem(colmr.DefaultCluster(), 2)
	schema := colmr.MustParseSchema(`T { string url }`)
	w, _ := colmr.NewColumnWriter(fs, "/t", schema, colmr.LoadOptions{SplitRecords: 10}, nil)
	for i := 0; i < 20; i++ {
		rec := colmr.NewRecord(schema)
		rec.Set("url", fmt.Sprintf("http://h%d/x", i%3))
		w.Append(rec)
	}
	w.Close()

	err := colmr.AddColumn(fs, "/t", "urlLen", colmr.IntSchema(), colmr.ColumnOptions{},
		[]string{"url"}, func(rec colmr.Record) (any, error) {
			u, err := rec.Get("url")
			if err != nil {
				return nil, err
			}
			return int32(len(u.(string))), nil
		}, nil)
	if err != nil {
		log.Fatal(err)
	}
	s, _ := colmr.ReadDatasetSchema(fs, "/t")
	fmt.Println(s.FieldNames())
	// Output: [url urlLen]
}
