// Crawlquery runs the paper's motivating job (Figure 1): over a crawled
// document collection, find every distinct content-type reported by pages
// whose URL contains "ibm.com/jp" — using lazy record construction so the
// metadata map is deserialized only for the ~6% of records that match.
package main

import (
	"fmt"
	"log"
	"strings"

	"colmr"
)

func main() {
	fs := colmr.NewFileSystem(colmr.DefaultCluster(), 7)
	fs.SetPlacementPolicy(colmr.NewColumnPlacementPolicy())

	// Generate and load a slice of the intranet crawl (Figure 2's URLInfo
	// schema: url, srcUrl, fetchTime, inlink[], metadata, annotations,
	// content).
	crawl := colmr.NewCrawl(colmr.CrawlOptions{Seed: 7, ContentBytes: 2000})
	w, err := colmr.NewColumnWriter(fs, "/data/crawl", crawl.Schema(), colmr.LoadOptions{
		SplitRecords: 512,
		PerColumn: map[string]colmr.ColumnOptions{
			// The metadata column as a dictionary compressed skip list —
			// the paper's best-performing layout (CIF-DCSL).
			"metadata": {Layout: colmr.LayoutDCSL},
		},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	const n = 4096
	for i := int64(0); i < n; i++ {
		if err := w.Append(crawl.Record(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// The job of Figure 1, verbatim in Go: project url + metadata, lazy
	// records, filter on url, emit metadata["content-type"], reduce to
	// distinct values.
	conf := colmr.JobConf{
		InputPaths:  []string{"/data/crawl"},
		OutputPath:  "/out/content-types",
		NumReducers: 4,
	}
	colmr.SetColumns(&conf, "url", "metadata")
	colmr.SetLazy(&conf, true)

	job := &colmr.Job{
		Conf:  conf,
		Input: &colmr.ColumnInputFormat{},
		Mapper: colmr.MapperFunc(func(key, value any, emit colmr.Emit) error {
			rec := value.(colmr.Record)
			url, err := rec.Get("url")
			if err != nil {
				return err
			}
			if !strings.Contains(url.(string), "ibm.com/jp") {
				return nil // metadata never deserialized for this record
			}
			md, err := rec.Get("metadata")
			if err != nil {
				return err
			}
			return emit(md.(map[string]any)["content-type"].(string), nil)
		}),
		Reducer: colmr.ReducerFunc(func(key any, values []any, emit colmr.Emit) error {
			return emit(key, nil) // distinct
		}),
		Output: colmr.TextOutput{},
	}

	res, err := colmr.RunJob(fs, job)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("distinct content-types on ibm.com/jp pages: %d\n", res.OutputRecords)
	for p := 0; p < conf.NumReducers; p++ {
		data, err := fs.ReadFile(fmt.Sprintf("/out/content-types/part-%05d", p))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line != "" {
				fmt.Printf("  %s\n", strings.TrimSpace(line))
			}
		}
	}
	matched := int64(0)
	for i := int64(0); i < n; i++ {
		if crawl.Matches(i) {
			matched++
		}
	}
	colBytes := fs.TotalSize("/data/crawl/s0/metadata")
	fmt.Printf("\nlazy construction at work:\n")
	fmt.Printf("  records scanned:              %d\n", res.Total.RecordsProcessed)
	fmt.Printf("  records matching predicate:   %d (%.1f%%)\n", matched, 100*float64(matched)/float64(n))
	fmt.Printf("  metadata bytes deserialized:  %.1f KB (dictionary-decoded)\n",
		float64(res.Total.CPU.DictBytes)/1024)
	fmt.Printf("  one metadata column file is:  %.1f KB\n", float64(colBytes)/1024)
}
