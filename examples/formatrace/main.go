// Formatrace regenerates a compact version of the paper's Figure 7 through
// the public experiment API and prints a winner analysis: which storage
// format to use for which access pattern.
package main

import (
	"fmt"
	"log"
	"os"

	"colmr"
)

func main() {
	cfg := colmr.DefaultExperimentConfig(os.Stdout)
	cfg.Scale = 0.25 // quarter-scale sample keeps this under ~5 seconds

	res, err := colmr.RunFigure7(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("what to take away:")

	txt := res.Get("TXT", "AllColumns").Seconds
	seq := res.Get("SEQ", "AllColumns").Seconds
	fmt.Printf("  - text files cost %.1fx a binary format on full scans: always use a binary format\n", txt/seq)

	cifInt := res.Get("CIF", "1 Integer")
	rcInt := res.Get("RCFile", "1 Integer")
	fmt.Printf("  - projecting one integer column: CIF reads %.2f GB where RCFile reads %.2f GB (%.0fx)\n",
		cifInt.ChargedGB, rcInt.ChargedGB, rcInt.ChargedGB/cifInt.ChargedGB)
	fmt.Printf("    because RCFile interleaves all columns in each row group and prefetch drags them in\n")

	cifAll := res.Get("CIF", "AllColumns").Seconds
	fmt.Printf("  - full-record scans: SEQ wins by %.0f%% (CIF pays seeks across its column files)\n",
		100*(cifAll/seq-1))

	fmt.Printf("  - verdict: for analytical workloads that touch a few columns of wide records,\n")
	fmt.Printf("    true column files win by 10-100x; keep row formats for whole-record pipelines\n")
}
