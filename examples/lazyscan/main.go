// Lazyscan contrasts eager and lazy record construction (paper Section 5)
// on the same selective query, printing the work counters that explain the
// difference: with lazy records and a skip-list column layout, the map
// column is deserialized only where the predicate matched.
package main

import (
	"fmt"
	"hash/fnv"
	"log"

	"colmr"
)

func main() {
	fs := colmr.NewFileSystem(colmr.SingleNode(), 3)
	fs.SetPlacementPolicy(colmr.NewColumnPlacementPolicy())

	// The Section 6.2 synthetic dataset: 6 strings, 6 ints, one map.
	gen := colmr.NewSynthetic(3)
	w, err := colmr.NewColumnWriter(fs, "/data/syn", gen.Schema(), colmr.LoadOptions{
		SplitRecords: 4000,
		PerColumn: map[string]colmr.ColumnOptions{
			"map0": {Layout: colmr.LayoutSkipList},
		},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	const n = 8000
	for i := int64(0); i < n; i++ {
		if err := w.Append(gen.Record(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// A ~5%-selective predicate on the string column; matching records
	// aggregate their map values.
	match := func(s string) bool {
		h := fnv.New32a()
		h.Write([]byte(s))
		return h.Sum32()%100 < 5
	}

	run := func(lazy bool) colmr.TaskStats {
		conf := colmr.JobConf{InputPaths: []string{"/data/syn"}}
		colmr.SetColumns(&conf, "str0", "map0")
		colmr.SetLazy(&conf, lazy)
		var sum int64
		job := &colmr.Job{
			Conf:  conf,
			Input: &colmr.ColumnInputFormat{},
			Mapper: colmr.MapperFunc(func(key, value any, emit colmr.Emit) error {
				rec := value.(colmr.Record)
				s, err := rec.Get("str0")
				if err != nil {
					return err
				}
				if !match(s.(string)) {
					return nil
				}
				m, err := rec.Get("map0")
				if err != nil {
					return err
				}
				for _, v := range m.(map[string]any) {
					sum += int64(v.(int32))
				}
				return nil
			}),
			Output: colmr.NullOutput{},
		}
		res, err := colmr.RunJob(fs, job)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  aggregate = %d\n", sum)
		return res.Total
	}

	fmt.Println("eager record construction:")
	eager := run(false)
	fmt.Println("lazy record construction:")
	lazy := run(true)

	fmt.Printf("\n%-34s %12s %12s\n", "", "eager", "lazy")
	fmt.Printf("%-34s %12d %12d\n", "map-typed bytes deserialized", eager.CPU.MapBytes, lazy.CPU.MapBytes)
	fmt.Printf("%-34s %12d %12d\n", "bytes skipped via skip lists", eager.CPU.SkippedBytes, lazy.CPU.SkippedBytes)
	fmt.Printf("%-34s %12d %12d\n", "values materialized", eager.CPU.ValuesMaterialized, lazy.CPU.ValuesMaterialized)
	fmt.Printf("%-34s %12d %12d\n", "logical bytes read", eager.IO.LogicalBytes, lazy.IO.LogicalBytes)
	fmt.Printf("\nthe aggregates match, but lazy construction deserialized %.1f%% of the map column\n",
		100*float64(lazy.CPU.MapBytes)/float64(eager.CPU.MapBytes))
}
