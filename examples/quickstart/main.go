// Quickstart: the full CIF/COF cycle in one file — define a schema, load
// records into column-oriented storage on a simulated HDFS cluster with
// co-located placement, and query it with the typed builder API
// (projection + predicate pushdown) through a long-lived cached session.
package main

import (
	"fmt"
	"log"
	"strings"

	"colmr"
)

func main() {
	// A 40-node cluster (the paper's setup) with the co-locating
	// ColumnPlacementPolicy installed.
	fs := colmr.NewFileSystem(colmr.DefaultCluster(), 42)
	fs.SetPlacementPolicy(colmr.NewColumnPlacementPolicy())

	// Schemas use the paper's DSL, complex types included.
	schema := colmr.MustParseSchema(`
		Visit {
		  string url,
		  int status,
		  map<string> headers
		}`)

	// Load records through COF: split-directories of per-column files.
	w, err := colmr.NewColumnWriter(fs, "/data/visits", schema, colmr.LoadOptions{SplitRecords: 250}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		rec := colmr.NewRecord(schema)
		rec.Set("url", fmt.Sprintf("http://example.com/page/%d", i))
		status := int32(200)
		if i%7 == 0 {
			status = 404
		}
		rec.Set("status", status)
		rec.Set("headers", map[string]any{
			"content-type": "text/html",
			"server":       "httpd",
		})
		if err := w.Append(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// Query through the typed builder: the projection means only the url
	// and status files are opened (the headers column is never touched),
	// and the predicate is pushed below record materialization — zone-map
	// statistics prune whole record groups of non-404 rows.
	job := colmr.ScanDataset("/data/visits").
		Columns("url", "status").
		Where(colmr.Eq("status", int32(404))).
		Job(colmr.MapperFunc(func(key, value any, emit colmr.Emit) error {
			url, err := value.(colmr.Record).Get("url")
			if err != nil {
				return err
			}
			return emit(url, nil)
		}))
	job.Conf.OutputPath = "/out/errors"
	job.Conf.NumReducers = 1
	job.Reducer = colmr.ReducerFunc(func(key any, values []any, emit colmr.Emit) error {
		return emit(key, nil)
	})
	job.Output = colmr.TextOutput{}

	// The pre-builder spelling still works and produces the identical
	// typed ScanSpec on the conf:
	//
	//	conf := colmr.JobConf{InputPaths: []string{"/data/visits"}}
	//	colmr.SetColumns(&conf, "url", "status")
	//	colmr.SetPredicate(&conf, colmr.Eq("status", int32(404)))

	// For a steady stream of queries, run jobs through a long-lived
	// Session instead of RunJob: an LRU-bounded cache keeps hot column
	// regions resident across rounds (TaskStats.CacheHits reports reuse).
	session := colmr.NewSession(fs, colmr.SessionOptions{CacheBytes: 64 << 20})
	res, err := session.Run(job)
	if err != nil {
		log.Fatal(err)
	}

	out, err := fs.ReadFile("/out/errors/part-00000")
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.Count(string(out), "\n")
	fmt.Printf("found %d pages with status 404 (expected 143)\n", lines)
	fmt.Printf("records scanned: %d, bytes read: %.2f MB (all local: %v)\n",
		res.Total.RecordsProcessed,
		float64(res.Total.IO.LogicalBytes)/(1<<20),
		res.Total.IO.RemoteBytes == 0)
}
