// Schemaevolution demonstrates the CIF advantage Section 4.3 highlights:
// adding a derived column to an existing dataset is one new file per
// split-directory — the existing column files are untouched. (With RCFile
// the entire dataset would be read and rewritten.)
package main

import (
	"fmt"
	"log"
	"strings"

	"colmr"
)

func main() {
	fs := colmr.NewFileSystem(colmr.DefaultCluster(), 11)
	fs.SetPlacementPolicy(colmr.NewColumnPlacementPolicy())

	// Load a crawl dataset.
	crawl := colmr.NewCrawl(colmr.CrawlOptions{Seed: 11, ContentBytes: 1500})
	w, err := colmr.NewColumnWriter(fs, "/data/crawl", crawl.Schema(), colmr.LoadOptions{SplitRecords: 300}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < 1200; i++ {
		if err := w.Append(crawl.Record(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("schema before:", mustSchema(fs, "/data/crawl").FieldNames())
	before := fs.TreeSize("/data/crawl")

	// Business needs evolved: reports now need the page's host. Derive it
	// from the url column — the only column the evolution job reads.
	var stats colmr.TaskStats
	err = colmr.AddColumn(fs, "/data/crawl", "host", colmr.StringSchema(),
		colmr.ColumnOptions{Layout: colmr.LayoutSkipList},
		[]string{"url"},
		func(rec colmr.Record) (any, error) {
			u, err := rec.Get("url")
			if err != nil {
				return nil, err
			}
			host := strings.TrimPrefix(u.(string), "http://")
			if i := strings.IndexByte(host, '/'); i >= 0 {
				host = host[:i]
			}
			return host, nil
		}, &stats)
	if err != nil {
		log.Fatal(err)
	}

	after := fs.TreeSize("/data/crawl")
	fmt.Println("schema after: ", mustSchema(fs, "/data/crawl").FieldNames())
	fmt.Printf("bytes read to evolve:    %.2f MB (just the url column)\n",
		float64(stats.IO.LogicalBytes)/(1<<20))
	fmt.Printf("dataset grew by:         %.2f MB of %.2f MB total\n",
		float64(after-before)/(1<<20), float64(after)/(1<<20))

	// The new column queries like any other.
	conf := colmr.JobConf{InputPaths: []string{"/data/crawl"}, NumReducers: 1, OutputPath: "/out/hosts"}
	colmr.SetColumns(&conf, "host")
	job := &colmr.Job{
		Conf:  conf,
		Input: &colmr.ColumnInputFormat{},
		Mapper: colmr.MapperFunc(func(key, value any, emit colmr.Emit) error {
			h, err := value.(colmr.Record).Get("host")
			if err != nil {
				return err
			}
			return emit(h, int64(1))
		}),
		Reducer: colmr.ReducerFunc(func(key any, values []any, emit colmr.Emit) error {
			return emit(key, int64(len(values)))
		}),
		Output: colmr.TextOutput{},
	}
	res, err := colmr.RunJob(fs, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct hosts counted via the new column: %d\n", res.ReduceGroups)
}

func mustSchema(fs *colmr.FileSystem, dataset string) *colmr.Schema {
	s, err := colmr.ReadDatasetSchema(fs, dataset)
	if err != nil {
		log.Fatal(err)
	}
	return s
}
