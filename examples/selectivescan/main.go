// Selectivescan demonstrates the scan subsystem: predicate pushdown with
// zone-map statistics. The same selective aggregation runs twice over a
// skip-list CIF dataset — once the classic way (project the filter column,
// test it in the map function) and once with the predicate pushed into the
// storage layer (colmr.SetPredicate) — and the work counters show where
// the order of magnitude goes: whole record groups pruned from min/max
// zone maps alone, filter columns deciding the rest, and the expensive
// map column materialized only for qualifying records.
package main

import (
	"fmt"
	"log"

	"colmr"
)

func main() {
	fs := colmr.NewFileSystem(colmr.SingleNode(), 7)
	fs.SetPlacementPolicy(colmr.NewColumnPlacementPolicy())

	// The Section 6.2 synthetic dataset: 6 strings, 6 ints, one map. Every
	// column file carries a zone-map stats footer (written by default).
	gen := colmr.NewSynthetic(7)
	w, err := colmr.NewColumnWriter(fs, "/data/syn", gen.Schema(), colmr.LoadOptions{
		SplitRecords: 10000,
		Default:      colmr.ColumnOptions{Layout: colmr.LayoutSkipList},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	const n = 20000
	for i := int64(0); i < n; i++ {
		if err := w.Append(gen.Record(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// int0 is uniform over [1, 10000]: "int0 <= 50" selects ~0.5% of the
	// records. The same predicate drives both runs — built with the typed
	// builders here; `colmr.ParsePredicate("int0 <= 50")` is equivalent.
	pred := colmr.Le("int0", 50)

	sumMap := func(rec colmr.Record, sum *int64) error {
		m, err := rec.Get("map0")
		if err != nil {
			return err
		}
		for _, v := range m.(map[string]any) {
			*sum += int64(v.(int32))
		}
		return nil
	}

	// Classic scan-then-filter: int0 joins the projection and every record
	// reaches the map function.
	scanFilter := func() (int64, int64, colmr.TaskStats) {
		conf := colmr.JobConf{InputPaths: []string{"/data/syn"}}
		colmr.SetColumns(&conf, "int0", "map0")
		colmr.SetLazy(&conf, true)
		var sum, matches int64
		job := &colmr.Job{
			Conf:  conf,
			Input: &colmr.ColumnInputFormat{},
			Mapper: colmr.MapperFunc(func(_, value any, emit colmr.Emit) error {
				rec := value.(colmr.Record)
				v, err := rec.Get("int0")
				if err != nil {
					return err
				}
				if v.(int32) > 50 {
					return nil
				}
				matches++
				return sumMap(rec, &sum)
			}),
			Output: colmr.NullOutput{},
		}
		res, err := colmr.RunJob(fs, job)
		if err != nil {
			log.Fatal(err)
		}
		return sum, matches, res.Total
	}

	// Pushdown: the predicate travels below record construction; the map
	// function sees only qualifying records and never mentions int0.
	pushdown := func() (int64, int64, colmr.TaskStats) {
		conf := colmr.JobConf{InputPaths: []string{"/data/syn"}}
		colmr.SetColumns(&conf, "map0")
		colmr.SetLazy(&conf, true)
		colmr.SetPredicate(&conf, pred)
		var sum, matches int64
		job := &colmr.Job{
			Conf:  conf,
			Input: &colmr.ColumnInputFormat{},
			Mapper: colmr.MapperFunc(func(_, value any, emit colmr.Emit) error {
				matches++
				return sumMap(value.(colmr.Record), &sum)
			}),
			Output: colmr.NullOutput{},
		}
		res, err := colmr.RunJob(fs, job)
		if err != nil {
			log.Fatal(err)
		}
		return sum, matches, res.Total
	}

	fSum, fMatches, fStats := scanFilter()
	pSum, pMatches, pStats := pushdown()

	fmt.Printf("scan-then-filter: %d matches, aggregate %d\n", fMatches, fSum)
	fmt.Printf("pushdown:         %d matches, aggregate %d\n\n", pMatches, pSum)
	if fSum != pSum || fMatches != pMatches {
		log.Fatal("pushdown and scan-then-filter disagree")
	}

	fmt.Printf("%-40s %14s %14s\n", "", "scan+filter", "pushdown")
	fmt.Printf("%-40s %14d %14d\n", "records pruned via zone maps", fStats.RecordsPruned, pStats.RecordsPruned)
	fmt.Printf("%-40s %14d %14d\n", "records rejected by evaluation", fStats.RecordsFiltered, pStats.RecordsFiltered)
	fmt.Printf("%-40s %14d %14d\n", "int values deserialized (bytes)", fStats.CPU.IntBytes, pStats.CPU.IntBytes)
	fmt.Printf("%-40s %14d %14d\n", "map-typed bytes deserialized", fStats.CPU.MapBytes, pStats.CPU.MapBytes)
	fmt.Printf("%-40s %14d %14d\n", "values materialized", fStats.CPU.ValuesMaterialized, pStats.CPU.ValuesMaterialized)
	fmt.Printf("%-40s %14d %14d\n", "bytes skipped via skip lists", fStats.CPU.SkippedBytes, pStats.CPU.SkippedBytes)
	fmt.Printf("\nzone maps proved %d of %d records irrelevant without reading any column value\n",
		pStats.RecordsPruned, int64(n))
}
