module colmr

go 1.22
