package colmr_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"colmr"
	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/formats/seq"
	"colmr/internal/formats/txt"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// The integration suite runs whole-stack scenarios through the public API
// and across format boundaries: the same records must produce identical
// query answers no matter which storage format holds them, jobs must
// survive datanode failures, and re-replication must restore co-location.

func smallCluster(nodes int) sim.ClusterConfig {
	cfg := sim.DefaultCluster()
	cfg.Nodes = nodes
	cfg.BlockSize = 1 << 16
	cfg.TransferUnit = 1 << 12
	return cfg
}

// distinctContentTypes runs the paper's job over the given input format
// and returns the sorted distinct content-types found.
func distinctContentTypes(t *testing.T, fs *hdfs.FileSystem, in mapred.InputFormat, conf mapred.JobConf) []string {
	t.Helper()
	conf.NumReducers = 2
	conf.OutputPath = "/out/" + fmt.Sprintf("%p", in)
	job := &mapred.Job{
		Conf:  conf,
		Input: in,
		Mapper: mapred.MapperFunc(func(key, value any, emit mapred.Emit) error {
			rec := value.(serde.Record)
			url, err := rec.Get("url")
			if err != nil {
				return err
			}
			if !strings.Contains(url.(string), workload.MatchPattern) {
				return nil
			}
			md, err := rec.Get("metadata")
			if err != nil {
				return err
			}
			return emit(md.(map[string]any)["content-type"].(string), nil)
		}),
		Reducer: mapred.ReducerFunc(func(key any, values []any, emit mapred.Emit) error {
			return emit(key, nil)
		}),
		Output: mapred.TextOutput{},
	}
	res, err := mapred.Run(fs, job)
	if err != nil {
		t.Fatalf("job over %T: %v", in, err)
	}
	var out []string
	for p := 0; p < conf.NumReducers; p++ {
		data, err := fs.ReadFile(fmt.Sprintf("%s/part-%05d", conf.OutputPath, p))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line = strings.TrimSuffix(strings.TrimSpace(line), "\t"); line != "" {
				out = append(out, line)
			}
		}
	}
	sort.Strings(out)
	if int64(len(out)) != res.OutputRecords {
		t.Fatalf("output records %d != lines %d", res.OutputRecords, len(out))
	}
	return out
}

// TestFormatEquivalenceMatrix: one dataset, four storage formats, one job,
// identical answers.
func TestFormatEquivalenceMatrix(t *testing.T) {
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: 99, ContentBytes: 800})
	const n = 600
	fs := hdfs.New(smallCluster(8), 1)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())

	// TXT.
	{
		f, err := fs.Create("/m/data.txt", hdfs.AnyNode)
		if err != nil {
			t.Fatal(err)
		}
		w := txt.NewWriter(f)
		for i := int64(0); i < n; i++ {
			rec := gen.Record(i)
			// Text cannot hold raw bytes of arbitrary content cheaply, but
			// the format supports it via hex; write as-is.
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
	}
	// SEQ (block compressed, to cross a codec boundary too).
	{
		f, err := fs.Create("/m/data.seq", hdfs.AnyNode)
		if err != nil {
			t.Fatal(err)
		}
		w, err := seq.NewWriter(f, "/m/data.seq", gen.Schema(), seq.Options{Mode: seq.ModeBlock, Codec: "lzo", BlockBytes: 8 << 10}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < n; i++ {
			if err := w.Append(gen.Record(i)); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		f.Close()
	}
	// RCFile (zlib).
	{
		f, err := fs.Create("/m/data.rc", hdfs.AnyNode)
		if err != nil {
			t.Fatal(err)
		}
		w, err := rcfile.NewWriter(f, "/m/data.rc", gen.Schema(), rcfile.Options{Codec: "zlib", RowGroupBytes: 32 << 10}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < n; i++ {
			if err := w.Append(gen.Record(i)); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		f.Close()
	}
	// CIF (DCSL metadata, block-compressed content, lazy).
	{
		w, err := core.NewWriter(fs, "/m/cif", gen.Schema(), core.LoadOptions{
			SplitRecords: 128,
			PerColumn: map[string]colfileOptions{
				"metadata": {Layout: colmr.LayoutDCSL},
				"content":  {Layout: colmr.LayoutBlock, Codec: "lzo"},
			},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < n; i++ {
			if err := w.Append(gen.Record(i)); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
	}

	txtAns := distinctContentTypes(t, fs, &txt.InputFormat{Schema: gen.Schema()}, mapred.JobConf{InputPaths: []string{"/m/data.txt"}})
	seqAns := distinctContentTypes(t, fs, &seq.InputFormat{}, mapred.JobConf{InputPaths: []string{"/m/data.seq"}})

	rcConf := mapred.JobConf{InputPaths: []string{"/m/data.rc"}}
	rcfile.SetColumns(&rcConf, "url", "metadata")
	rcAns := distinctContentTypes(t, fs, &rcfile.InputFormat{}, rcConf)

	cifConf := mapred.JobConf{InputPaths: []string{"/m/cif"}}
	core.SetColumns(&cifConf, "url", "metadata")
	core.SetLazy(&cifConf, true)
	cifAns := distinctContentTypes(t, fs, &core.InputFormat{}, cifConf)

	want := strings.Join(txtAns, "|")
	if want == "" {
		t.Fatal("no answers at all; predicate never matched")
	}
	for name, got := range map[string][]string{"SEQ": seqAns, "RCFile": rcAns, "CIF": cifAns} {
		if strings.Join(got, "|") != want {
			t.Errorf("%s answer %v != TXT answer %v", name, got, txtAns)
		}
	}
}

// TestJobSurvivesNodeFailure: kill a datanode after load; the job must
// still produce the right answer from surviving replicas.
func TestJobSurvivesNodeFailure(t *testing.T) {
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: 5, ContentBytes: 500})
	fs := hdfs.New(smallCluster(8), 2)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())
	w, err := core.NewWriter(fs, "/f/cif", gen.Schema(), core.LoadOptions{SplitRecords: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := int64(0); i < n; i++ {
		if err := w.Append(gen.Record(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	conf := mapred.JobConf{InputPaths: []string{"/f/cif"}}
	core.SetColumns(&conf, "url", "metadata")
	before := distinctContentTypes(t, fs, &core.InputFormat{}, conf)

	fs.KillNode(0)
	fs.KillNode(1)
	after := distinctContentTypes(t, fs, &core.InputFormat{}, conf)
	if strings.Join(before, "|") != strings.Join(after, "|") {
		t.Errorf("answers diverged after node failures: %v vs %v", before, after)
	}
}

// TestReReplicationRestoresCoLocation: after a node dies and the namenode
// re-replicates, split-directories must be fully co-located again (the
// paper's §4.3 "re-replication after failures" future-work item).
func TestReReplicationRestoresCoLocation(t *testing.T) {
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: 6, ContentBytes: 300})
	fs := hdfs.New(smallCluster(10), 3)
	cpp := hdfs.NewColumnPlacementPolicy()
	fs.SetPlacementPolicy(cpp)
	w, err := core.NewWriter(fs, "/r/cif", gen.Schema(), core.LoadOptions{SplitRecords: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 256; i++ {
		if err := w.Append(gen.Record(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Pick a victim that actually holds data.
	anchors := cpp.Anchors()
	if len(anchors) == 0 {
		t.Fatal("no anchored split directories")
	}
	var victim hdfs.NodeID = -1
	for _, nodes := range anchors {
		if len(nodes) > 0 {
			victim = nodes[0]
			break
		}
	}
	fs.KillNode(victim)
	created := fs.ReReplicate()
	if created == 0 {
		t.Fatal("re-replication created nothing")
	}
	fs.ReviveNode(victim) // victim returns empty; data moved on

	// Every split-directory must again have at least one node holding all
	// its (projected) files — scheduler-visible co-location.
	infos, err := fs.List("/r/cif")
	if err != nil {
		t.Fatal(err)
	}
	for _, fi := range infos {
		if !fi.IsDir {
			continue
		}
		files := []string{fi.Path + "/url", fi.Path + "/metadata", fi.Path + "/content"}
		hosts := fs.HostsFor(files)
		if len(hosts) == 0 {
			t.Errorf("split %s lost co-location after re-replication", fi.Path)
		}
		for _, h := range hosts {
			if h == victim {
				t.Errorf("split %s still counts dead-then-empty node %d as host", fi.Path, victim)
			}
		}
	}
}

// TestPublicAPIEndToEnd drives the whole workflow through the colmr facade
// only — what a downstream user sees.
func TestPublicAPIEndToEnd(t *testing.T) {
	fs := colmr.NewFileSystem(colmr.DefaultCluster(), 42)
	fs.SetPlacementPolicy(colmr.NewColumnPlacementPolicy())

	schema := colmr.MustParseSchema(`Event { string kind, long ts, map<string> attrs }`)
	w, err := colmr.NewColumnWriter(fs, "/api/events", schema, colmr.LoadOptions{SplitRecords: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{"click", "view", "purchase"}
	for i := 0; i < 1000; i++ {
		rec := colmr.NewRecord(schema)
		rec.Set("kind", kinds[i%3])
		rec.Set("ts", int64(i))
		rec.Set("attrs", map[string]any{"source": "web"})
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	if s, err := colmr.ReadDatasetSchema(fs, "/api/events"); err != nil || !s.Equal(schema) {
		t.Fatalf("ReadDatasetSchema = %v, %v", s, err)
	}

	conf := colmr.JobConf{InputPaths: []string{"/api/events"}, NumReducers: 1, OutputPath: "/api/out"}
	colmr.SetColumns(&conf, "kind")
	job := &colmr.Job{
		Conf:  conf,
		Input: &colmr.ColumnInputFormat{},
		Mapper: colmr.MapperFunc(func(k, v any, emit colmr.Emit) error {
			kind, err := v.(colmr.Record).Get("kind")
			if err != nil {
				return err
			}
			return emit(kind, int64(1))
		}),
		Reducer: colmr.ReducerFunc(func(k any, vs []any, emit colmr.Emit) error {
			return emit(k, int64(len(vs)))
		}),
		Output: colmr.TextOutput{},
	}
	res, err := colmr.RunJob(fs, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceGroups != 3 {
		t.Errorf("ReduceGroups = %d, want 3", res.ReduceGroups)
	}
	out, err := fs.ReadFile("/api/out/part-00000")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kinds {
		if !strings.Contains(string(out), k) {
			t.Errorf("output missing kind %q:\n%s", k, out)
		}
	}

	// Evolve the schema through the facade.
	if err := colmr.AddColumn(fs, "/api/events", "bucket", colmr.IntSchema(), colmr.ColumnOptions{},
		[]string{"ts"}, func(rec colmr.Record) (any, error) {
			ts, err := rec.Get("ts")
			if err != nil {
				return nil, err
			}
			return int32(ts.(int64) % 10), nil
		}, nil); err != nil {
		t.Fatal(err)
	}
	s, err := colmr.ReadDatasetSchema(fs, "/api/events")
	if err != nil || s.FieldIndex("bucket") < 0 {
		t.Fatalf("bucket column missing after AddColumn: %v, %v", s.FieldNames(), err)
	}
}

// colfileOptions aliases the column options type for composite literals in
// this external test package.
type colfileOptions = colmr.ColumnOptions
