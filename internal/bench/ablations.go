package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out, plus the paper's
// explicitly-deferred future work (Section 4.3: "A deeper analysis of
// load-balancing and re-replication after failures are important avenues
// for future work").

// SkipLevelsRow is one skip-level configuration's costs.
type SkipLevelsRow struct {
	Name      string
	FileBytes int64   // column file size (skip blocks + prefixes add up)
	LoadSec   float64 // modeled load time
	ScanSec   float64 // modeled selective-scan time at 5% selectivity
}

// SkipLevelsResult compares skip-level configurations.
type SkipLevelsResult struct{ Rows []SkipLevelsRow }

// Get returns the row with the given name.
func (r *SkipLevelsResult) Get(name string) SkipLevelsRow {
	for _, row := range r.Rows {
		if row.Name == name {
			return row
		}
	}
	return SkipLevelsRow{}
}

// AblationSkipLevels sweeps the skip-list level configuration (the paper
// fixes 10/100/1000 without justification): more levels cost load-time
// double-buffering and file bytes, fewer levels make long skips walk.
func AblationSkipLevels(cfg Config) (*SkipLevelsResult, error) {
	n := cfg.records(60_000)
	gen := workload.NewSynthetic(cfg.Seed)
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)

	configs := []struct {
		name   string
		layout colfile.Options
	}{
		{"plain (no skip list)", colfile.Options{Layout: colfile.Plain}},
		{"levels 10", colfile.Options{Layout: colfile.SkipList, Levels: []int{10}}},
		{"levels 100/10", colfile.Options{Layout: colfile.SkipList, Levels: []int{100, 10}}},
		{"levels 1000/100/10", colfile.Options{Layout: colfile.SkipList, Levels: []int{1000, 100, 10}}},
		{"levels 10000/1000/100/10", colfile.Options{Layout: colfile.SkipList, Levels: []int{10000, 1000, 100, 10}}},
	}

	res := &SkipLevelsResult{}
	for _, c := range configs {
		fs := newFS(cluster, cfg.Seed, true)
		var loadStats sim.TaskStats
		opts := core.LoadOptions{
			SplitRecords: n/4 + 1,
			PerColumn:    map[string]colfile.Options{"map0": c.layout},
		}
		size, err := writeCIF(fs, "/a/cif", gen, n, opts, &loadStats)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}

		// 5%-selective scan: predicate on str0, aggregate map0.
		conf := &mapred.JobConf{InputPaths: []string{"/a/cif"}}
		core.SetColumns(conf, "str0", "map0")
		core.SetLazy(conf, true)
		scan, _, err := scanSplits(fs, &core.InputFormat{}, conf, 0, func(rec serde.Record) error {
			s, err := rec.Get("str0")
			if err != nil {
				return err
			}
			if !selMatch(s.(string), 0.05) {
				return nil
			}
			_, err = rec.Get("map0")
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		k := float64(Figure7Target) / float64(size)
		loadStats.Scale(k)
		scan.Scale(k)
		res.Rows = append(res.Rows, SkipLevelsRow{
			Name:      c.name,
			FileBytes: size,
			LoadSec:   model.LoadSeconds(loadStats),
			ScanSec:   model.ScanSeconds(scan),
		})
	}

	cfg.printf("Ablation: skip-list level configuration (5%% selective scan)\n")
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "configuration\tfile bytes\tload (s)\tscan (s)")
		for _, row := range res.Rows {
			fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\n", row.Name, row.FileBytes, row.LoadSec, row.ScanSec)
		}
	})
	cfg.printf("\n")
	return res, nil
}

// ParallelismRow reports split counts for one dataset size.
type ParallelismRow struct {
	Blocks         int64 // dataset size in HDFS blocks
	CIFSplits      int
	RCFileSplits   int
	CIFUtilization float64 // min(1, splits/slots)
	RCUtilization  float64
}

// ParallelismResult is the Section 4.3 split-granularity analysis.
type ParallelismResult struct {
	Slots int
	Rows  []ParallelismRow
}

// AblationParallelism quantifies Section 4.3's discussion: CIF reaches
// full cluster parallelism only once the dataset exceeds m x c blocks
// (m map slots, c columns), while RCFile's fine-grained row groups reach
// it much earlier — the price CIF pays for true column files.
func AblationParallelism(cfg Config) (*ParallelismResult, error) {
	// Geometry experiment: shrink blocks (and row groups by the same
	// factor, keeping the paper's r = 16 groups per block) so datasets
	// stay laptop-sized; only split counts matter. A 10-node cluster
	// keeps the m x c crossover inside the sweep.
	cluster := sim.DefaultCluster()
	cluster.Nodes = 10
	cluster.BlockSize = 32 << 10
	rowGroup := int(cluster.BlockSize) / 16
	slots := cluster.MapSlots()
	gen := workload.NewSynthetic(cfg.Seed)
	cols := int64(len(gen.Schema().Fields))

	res := &ParallelismResult{Slots: slots}
	for _, blocks := range []int64{15, 120, 780, 1560} {
		targetBytes := blocks * cluster.BlockSize
		// ~300 encoded bytes per synthetic record.
		n := targetBytes / 300
		fs := newFS(cluster, cfg.Seed, true)

		// CIF: split-directories sized at c blocks (one block per column),
		// the paper's geometry.
		opts := core.LoadOptions{SplitBytes: cols * cluster.BlockSize}
		if _, err := writeCIF(fs, "/p/cif", gen, n, opts, nil); err != nil {
			return nil, err
		}
		cifSplits, err := (&core.InputFormat{}).Splits(fs, &mapred.JobConf{InputPaths: []string{"/p/cif"}})
		if err != nil {
			return nil, err
		}

		// RCFile: sync markers permit splits at row-group granularity,
		// the fine-grained splitting Section 4.3 credits it with.
		if _, err := writeRC(fs, "/p/data.rc", gen, n, rcfile.Options{RowGroupBytes: rowGroup}, nil); err != nil {
			return nil, err
		}
		rcSplits, err := (&rcfile.InputFormat{SplitSize: int64(rowGroup)}).Splits(fs, &mapred.JobConf{InputPaths: []string{"/p/data.rc"}})
		if err != nil {
			return nil, err
		}

		res.Rows = append(res.Rows, ParallelismRow{
			Blocks:         blocks,
			CIFSplits:      len(cifSplits),
			RCFileSplits:   len(rcSplits),
			CIFUtilization: utilization(len(cifSplits), slots),
			RCUtilization:  utilization(len(rcSplits), slots),
		})
	}

	cfg.printf("Ablation: split granularity vs cluster parallelism (%d map slots, %d columns)\n", slots, cols)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "dataset (blocks)\tCIF splits\tRCFile splits\tCIF slot use\tRCFile slot use")
		for _, row := range res.Rows {
			fmt.Fprintf(w, "%d\t%d\t%d\t%.0f%%\t%.0f%%\n",
				row.Blocks, row.CIFSplits, row.RCFileSplits,
				100*row.CIFUtilization, 100*row.RCUtilization)
		}
	})
	cfg.printf("\n")
	return res, nil
}

func utilization(splits, slots int) float64 {
	u := float64(splits) / float64(slots)
	if u > 1 {
		return 1
	}
	return u
}

// BlockSizeRow is one compression-block-size setting.
type BlockSizeRow struct {
	BlockBytes int
	MapTime    float64
	DataReadGB float64
}

// BlockSizeResult is the compression block size sweep.
type BlockSizeResult struct{ Rows []BlockSizeRow }

// AblationBlockSize sweeps the CIF-LZO compression block size on the
// Table 1 job. The paper: "We also repeated the experiment with different
// compression block sizes but did not observe a significant difference."
func AblationBlockSize(cfg Config) (*BlockSizeResult, error) {
	n := cfg.records(6000)
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: cfg.Seed})
	cluster := sim.DefaultCluster()
	model := sim.DefaultModelFor(cluster)

	res := &BlockSizeResult{}
	var scale float64
	for _, bs := range []int{32 << 10, 128 << 10, 512 << 10, 2 << 20} {
		fs := newFS(cluster, cfg.Seed, true)
		opts := core.LoadOptions{
			SplitRecords: n/16 + 1,
			PerColumn: map[string]colfile.Options{
				"metadata": {Layout: colfile.Block, Codec: "lzo", BlockBytes: bs},
			},
		}
		size, err := writeCIF(fs, "/b/cif", gen, n, opts, nil)
		if err != nil {
			return nil, err
		}
		if scale == 0 {
			scale = float64(Table1Target) / float64(size)
		}
		conf := mapred.JobConf{InputPaths: []string{"/b/cif"}}
		core.SetColumns(&conf, "url", "metadata")
		jr, err := mapred.Run(fs, crawlJob(&core.InputFormat{}, conf))
		if err != nil {
			return nil, err
		}
		total := jr.Total
		total.Scale(scale)
		res.Rows = append(res.Rows, BlockSizeRow{
			BlockBytes: bs,
			MapTime:    model.MapTime(total),
			DataReadGB: gb(total.IO.TotalChargedBytes()),
		})
	}

	cfg.printf("Ablation: CIF-LZO compression block size (Table 1 job)\n")
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "block size\tmap time (s)\tdata read (GB)")
		for _, row := range res.Rows {
			fmt.Fprintf(w, "%dK\t%.1f\t%.1f\n", row.BlockBytes>>10, row.MapTime, row.DataReadGB)
		}
	})
	cfg.printf("\n")
	return res, nil
}

// RecoveryResult is the failure-recovery experiment.
type RecoveryResult struct {
	// Map times (modeled, laptop scale x factor) for the crawl job at
	// three moments: before failures, after failures without
	// re-replication, and after re-replication.
	Healthy        float64
	Degraded       float64
	Recovered      float64
	RemoteDegraded float64 // remote-byte fraction while degraded
	RemoteAfter    float64 // remote-byte fraction after re-replication
}

// AblationRecovery implements the paper's deferred future-work analysis:
// what happens to CIF's co-location when datanodes die, and does
// CPP-driven re-replication restore it?
func AblationRecovery(cfg Config) (*RecoveryResult, error) {
	n := cfg.records(6000)
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: cfg.Seed})
	cluster := sim.DefaultCluster()
	model := sim.DefaultModelFor(cluster)

	fs := newFS(cluster, cfg.Seed, true)
	opts := core.LoadOptions{SplitRecords: n/40 + 1}
	size, err := writeCIF(fs, "/rec/cif", gen, n, opts, nil)
	if err != nil {
		return nil, err
	}
	k := float64(Table1Target) / float64(size)

	run := func() (float64, float64, error) {
		conf := mapred.JobConf{InputPaths: []string{"/rec/cif"}}
		core.SetColumns(&conf, "url", "metadata")
		jr, err := mapred.Run(fs, crawlJob(&core.InputFormat{}, conf))
		if err != nil {
			return 0, 0, err
		}
		total := jr.Total
		remote := ratio(float64(total.IO.RemoteBytes), float64(total.IO.TotalChargedBytes()))
		total.Scale(k)
		return model.MapTime(total), remote, nil
	}

	res := &RecoveryResult{}
	if res.Healthy, _, err = run(); err != nil {
		return nil, err
	}
	// Kill three datanodes: some splits lose their local replicas.
	for _, n := range []hdfs.NodeID{1, 7, 23} {
		fs.KillNode(n)
	}
	if res.Degraded, res.RemoteDegraded, err = run(); err != nil {
		return nil, err
	}
	fs.ReReplicate()
	if res.Recovered, res.RemoteAfter, err = run(); err != nil {
		return nil, err
	}

	cfg.printf("Ablation: datanode failure and re-replication (3 of 40 nodes lost)\n")
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "state\tmap time (s)\tremote bytes")
		fmt.Fprintf(w, "healthy\t%.1f\t0.0%%\n", res.Healthy)
		fmt.Fprintf(w, "after failures\t%.1f\t%.1f%%\n", res.Degraded, 100*res.RemoteDegraded)
		fmt.Fprintf(w, "after re-replication\t%.1f\t%.1f%%\n", res.Recovered, 100*res.RemoteAfter)
	})
	cfg.printf("\n")
	return res, nil
}
