package bench

import "testing"

func TestAblationSkipLevels(t *testing.T) {
	skipIfShort(t)
	res, err := AblationSkipLevels(testCfg(0.2))
	if err != nil {
		t.Fatal(err)
	}
	plain := res.Get("plain (no skip list)")
	paper := res.Get("levels 1000/100/10")
	deep := res.Get("levels 10000/1000/100/10")
	if plain.Name == "" || paper.Name == "" {
		t.Fatal("missing configurations")
	}
	// Any skip-list configuration scans substantially faster than plain
	// at 5% selectivity (the fixed cost of scanning the predicate column
	// is common to both arms).
	if paper.ScanSec*1.5 > plain.ScanSec {
		t.Errorf("skip lists scan %.0fs vs plain %.0fs; want >1.5x", paper.ScanSec, plain.ScanSec)
	}
	// Skip blocks cost bytes: files grow with level count.
	if paper.FileBytes <= plain.FileBytes {
		t.Error("skip-list file not larger than plain file")
	}
	if deep.FileBytes < paper.FileBytes {
		t.Error("deeper levels should not shrink the file")
	}
	// Load overhead stays minor (the Table 2 claim generalizes).
	if paper.LoadSec > plain.LoadSec*1.3 {
		t.Errorf("skip-list load %.0fs vs plain %.0fs; want < 30%% overhead", paper.LoadSec, plain.LoadSec)
	}
}

func TestAblationParallelism(t *testing.T) {
	skipIfShort(t)
	res, err := AblationParallelism(testCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatal("too few rows")
	}
	// RCFile reaches full utilization no later than CIF at every size.
	for _, row := range res.Rows {
		if row.RCUtilization < row.CIFUtilization {
			t.Errorf("%d blocks: RCFile utilization %.2f < CIF %.2f", row.Blocks, row.RCUtilization, row.CIFUtilization)
		}
	}
	// Small dataset: CIF underutilizes the cluster; large: both saturate —
	// the Section 4.3 crossover.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.CIFUtilization >= 1 {
		t.Errorf("smallest dataset already saturates CIF (%d splits)", first.CIFSplits)
	}
	if last.CIFUtilization < 1 {
		t.Errorf("largest dataset does not saturate CIF (%d splits for %d slots)", last.CIFSplits, res.Slots)
	}
	if first.RCUtilization < 0.9 {
		t.Errorf("RCFile should nearly saturate even on the small dataset (%.2f)", first.RCUtilization)
	}
}

func TestAblationBlockSize(t *testing.T) {
	skipIfShort(t)
	res, err := AblationBlockSize(testCfg(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's observation: no significant difference across block
	// sizes. Allow 35% spread.
	lo, hi := res.Rows[0].MapTime, res.Rows[0].MapTime
	for _, row := range res.Rows {
		if row.MapTime < lo {
			lo = row.MapTime
		}
		if row.MapTime > hi {
			hi = row.MapTime
		}
	}
	if hi > lo*1.35 {
		t.Errorf("block-size sweep spread %.0f%%; paper observed no significant difference", 100*(hi/lo-1))
	}
}

func TestAblationRecovery(t *testing.T) {
	skipIfShort(t)
	res, err := AblationRecovery(testCfg(0.3))
	if err != nil {
		t.Fatal(err)
	}
	// Failures cost locality; re-replication restores it.
	if res.RemoteDegraded == 0 {
		t.Error("node failures produced no remote reads; experiment vacuous")
	}
	if res.Degraded <= res.Healthy {
		t.Errorf("degraded map time %.2f not worse than healthy %.2f", res.Degraded, res.Healthy)
	}
	if res.RemoteAfter >= res.RemoteDegraded {
		t.Errorf("re-replication did not reduce remote reads: %.2f -> %.2f", res.RemoteDegraded, res.RemoteAfter)
	}
	if res.Recovered > res.Healthy*1.25 {
		t.Errorf("recovered map time %.2f not near healthy %.2f", res.Recovered, res.Healthy)
	}
}
