package bench

import (
	"fmt"
	"sync"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Aggregation measures the aggregation-pushdown path against the
// materializing alternative: the same aggregate computed (a) inside the
// scan — zone-stats shortcuts, batch folds over selection bitmaps, never a
// record object — and (b) the classic way, records constructed and folded
// in a map function. Both sides share one dataset, one predicate, and one
// pruning trajectory per cell; results must agree exactly or the
// experiment fails, so the numbers always describe two routes to the same
// answer.
//
// The dataset is the synthetic microbenchmark with two planted columns:
// str1 cycles through aggTagCycle values (unprunable by statistics — every
// window contains every needle), and int5 is the record index (perfectly
// clustered — zone maps prune non-matching windows wholesale and matching
// windows are MatchAll, the stats shortcut's home turf). The arm set walks
// the regimes between those poles:
//
//	count clustered   COUNT under a selective clustered range: pruning
//	                  removes most windows, the shortcut answers the rest
//	                  from statistics — the pushdown decodes nothing.
//	                  This is the headline >= 5x acceptance arm.
//	count cyclic      COUNT under the unprunable equality: both sides
//	                  decode the filter column in full; the win narrows
//	                  to fold-vs-materialize on the matches.
//	fold cyclic       MIN/MAX/SUM under the inverted equality (63/64 of
//	                  rows kept): value folding from vectors vs from
//	                  record objects, with the decode fully used.
//	group by          full-scan GROUP BY over the cyclic column: group
//	                  keys must be decoded row by row on both sides.
//	stats full scan   COUNT/MIN/MAX over everything, no predicate: every
//	                  window is stats-answerable.
//
// A second sweep isolates dictionary-id evaluation on a DCSL string
// column: the same COUNT-under-equality job with the id path on vs off
// (vectorization disabled). Charged bytes and pruning counters must be
// identical — the id path reads the same stream — so the delta is purely
// string decode + compare replaced by integer id compares.

// aggTagCycle is the cyclic filter column's cardinality (same role as
// vecTagCycle in the vectorized sweep).
const aggTagCycle = 64

// aggSplits caps the number of split-directories in the swept dataset;
// scaled-down runs use proportionally fewer so each split still holds a
// few thousand records and fixed per-batch overhead doesn't swamp the
// per-row effects being measured.
const aggSplits = 16

// aggGen plants the two benchmark columns in the synthetic schema: str1
// cyclic (unprunable), int5 monotone (perfectly clustered).
type aggGen struct {
	*workload.Synthetic
	strIdx, intIdx int
}

func (g aggGen) Record(i int64) *serde.GenericRecord {
	rec := g.Synthetic.Record(i)
	rec.SetAt(g.strIdx, vecTag(i%aggTagCycle))
	rec.SetAt(g.intIdx, int32(i))
	return rec
}

// AggCell is one (layout, arm) pushdown-vs-materializing comparison.
type AggCell struct {
	Layout string
	Arm    string
	// Rows is the number of records the aggregate folded (equal on both
	// sides by construction).
	Rows int64
	// Groups is the number of output rows.
	Groups int
	// Push and Mat are the pushdown and materializing scan costs.
	Push ScanCost
	Mat  ScanCost
	// PushCPU and MatCPU are modeled CPU seconds (decode + vectorized
	// bookkeeping + fold; I/O excluded), the acceptance ratio's terms.
	PushCPU float64
	MatCPU  float64
	// CPURatio is MatCPU / PushCPU — how many times cheaper the pushdown is.
	CPURatio float64
	// AggBatches / GroupsShortcut are the pushdown's fold-site counters:
	// vector batches folded and record groups answered from statistics.
	AggBatches     int64
	GroupsShortcut int64
}

// AggDictCell is one dictionary-id vs string-decode comparison on the
// DCSL-string dataset (both sides are pushdown COUNT jobs; only the
// evaluation representation differs).
type AggDictCell struct {
	Arm  string
	Rows int64
	// ID and Str are the dictionary-id (vectorized) and string-decode
	// (scalar) costs.
	ID  ScanCost
	Str ScanCost
	// IDCPU / StrCPU / CPURatio mirror AggCell.
	IDCPU    float64
	StrCPU   float64
	CPURatio float64
	// DictIdCompares is the id path's integer comparisons (zero on the
	// string side by definition).
	DictIdCompares int64
}

// AggResult holds both sweeps.
type AggResult struct {
	Cells   []AggCell
	Dict    []AggDictCell
	Records int64
}

// Get returns the cell for a layout and arm.
func (r *AggResult) Get(layout, arm string) AggCell {
	for _, c := range r.Cells {
		if c.Layout == layout && c.Arm == arm {
			return c
		}
	}
	return AggCell{}
}

// GetDict returns the dictionary cell for an arm.
func (r *AggResult) GetDict(arm string) AggDictCell {
	for _, c := range r.Dict {
		if c.Arm == arm {
			return c
		}
	}
	return AggDictCell{}
}

// aggRowsSame compares two aggregate outputs exactly (the benchmark folds
// integers only, so no float tolerance is needed).
func aggRowsSame(a, b []scan.AggRow) bool {
	eq := func(x, y any) bool {
		if x == nil || y == nil {
			return x == nil && y == nil
		}
		c, ok := scan.CompareValues(x, y)
		return ok && c == 0
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !eq(a[i].Group, b[i].Group) || len(a[i].Values) != len(b[i].Values) {
			return false
		}
		for j := range a[i].Values {
			if !eq(a[i].Values[j], b[i].Values[j]) {
				return false
			}
		}
	}
	return true
}

// aggMatJob builds the materializing side: a plain map job projecting
// exactly the columns the pushdown reads, folding each record into st.
// Map tasks run concurrently, so the fold is serialized by mu.
func aggMatJob(dataset string, pred scan.Predicate, agg *scan.Aggregate, st *scan.AggState, mu *sync.Mutex) *mapred.Job {
	cols := agg.Columns(nil)
	if len(cols) == 0 {
		if pred != nil {
			if fc := scan.NewPlanner(pred).FilterColumns(); len(fc) > 0 {
				cols = fc[:1]
			}
		}
		if len(cols) == 0 {
			cols = []string{"int0"}
		}
	}
	return core.ScanDataset(dataset).
		Columns(cols...).
		Where(pred).
		Job(mapred.MapperFunc(func(_, v any, _ mapred.Emit) error {
			rec, ok := v.(serde.Record)
			if !ok {
				return fmt.Errorf("bench: map input is %T, not a record", v)
			}
			mu.Lock()
			defer mu.Unlock()
			return st.FoldRecord(scan.Getter(func(col string) (any, error) { return rec.Get(col) }))
		}))
}

// Aggregation runs both sweeps.
func Aggregation(cfg Config) (*AggResult, error) {
	n := cfg.records(100_000)
	syn := workload.NewSynthetic(cfg.Seed)
	strIdx, intIdx := syn.Schema().FieldIndex("str1"), syn.Schema().FieldIndex("int5")
	if strIdx < 0 || intIdx < 0 {
		return nil, fmt.Errorf("bench: synthetic schema lacks str1/int5")
	}
	gen := aggGen{syn, strIdx, intIdx}
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)

	splits := n / 5000
	if splits < 1 {
		splits = 1
	}
	if splits > aggSplits {
		splits = aggSplits
	}

	layouts := []struct {
		name string
		opts core.LoadOptions
	}{
		{"skiplist", core.LoadOptions{
			Default:      colfile.Options{Layout: colfile.SkipList, StatsEvery: 256},
			SplitRecords: (n + splits - 1) / splits,
		}},
		// str1's zone windows are coarse on the DCSL layout: a x64-cyclic
		// column's statistics can never prune (every window holds every
		// needle), and the window extent bounds vector batches — fine
		// windows would just shred the id stream into tiny batches and pay
		// the fixed batch overhead for stats nobody can use.
		{"dcsl-str1", core.LoadOptions{
			Default:      colfile.Options{Layout: colfile.SkipList, StatsEvery: 256},
			PerColumn:    map[string]colfile.Options{"str1": {Layout: colfile.DCSL, StatsEvery: 2048}},
			SplitRecords: (n + splits - 1) / splits,
		}},
	}
	// The clustered range keeps 1/4 of the records — dozens of whole zone
	// windows for the stats shortcut, with one partial window at the
	// boundary to keep the batch tier honest.
	clustered := scan.Between("int5", int32(0), int32(n/4-1))
	arms := []struct {
		name string
		agg  string
		pred scan.Predicate
	}{
		{"count clustered", "count", clustered},
		{"count cyclic", "count", scan.Eq("str1", vecTag(7))},
		{"fold cyclic", "count,min(int0),max(int0),sum(int0)", scan.Ne("str1", vecTag(7))},
		{"group by", "count group by str1", nil},
		{"stats full scan", "count,count(int0),min(int0),max(int0)", nil},
	}

	res := &AggResult{Records: n}
	cpu := func(st sim.TaskStats) float64 {
		return model.CPUSeconds(st.CPU) + model.VecSeconds(st) + model.AggSeconds(st)
	}
	for _, lay := range layouts {
		dir := "/agg/" + lay.name
		if _, err := writeCIF(fs, dir, gen, n, lay.opts, nil); err != nil {
			return nil, fmt.Errorf("loading %s: %w", lay.name, err)
		}
		for _, arm := range arms {
			agg, err := scan.ParseAggregate(arm.agg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", arm.name, err)
			}
			push, err := mapred.Run(fs, core.ScanDataset(dir).Where(arm.pred).Aggregate(agg).AggJob())
			if err != nil {
				return nil, fmt.Errorf("%s %s (pushdown): %w", lay.name, arm.name, err)
			}
			var mu sync.Mutex
			matState := scan.NewAggState(agg)
			mat, err := mapred.Run(fs, aggMatJob(dir, arm.pred, agg, matState, &mu))
			if err != nil {
				return nil, fmt.Errorf("%s %s (materializing): %w", lay.name, arm.name, err)
			}
			if !aggRowsSame(push.Agg.Rows(), matState.Rows()) {
				return nil, fmt.Errorf("%s %s: pushdown result diverges from materializing fold:\npush %v\nmat  %v",
					lay.name, arm.name, push.Agg.Rows(), matState.Rows())
			}
			if push.Total.RowsAggregated != mat.Total.RecordsProcessed {
				return nil, fmt.Errorf("%s %s: pushdown folded %d rows, materializing saw %d records",
					lay.name, arm.name, push.Total.RowsAggregated, mat.Total.RecordsProcessed)
			}
			cell := AggCell{
				Layout:         lay.name,
				Arm:            arm.name,
				Rows:           push.Total.RowsAggregated,
				Groups:         len(push.Agg.Rows()),
				Push:           scanCost(push.Total, model),
				Mat:            scanCost(mat.Total, model),
				PushCPU:        cpu(push.Total),
				MatCPU:         cpu(mat.Total),
				AggBatches:     push.Total.AggBatches,
				GroupsShortcut: push.Total.AggGroupsShortcut,
			}
			cell.CPURatio = ratio(cell.MatCPU, cell.PushCPU)
			res.Cells = append(res.Cells, cell)
		}
	}

	// Dictionary-id sweep: pushdown COUNT on the DCSL dataset, id path
	// (vectorized) vs string decode (scalar). Same stream, same pruning —
	// enforced, not assumed.
	dictDir := "/agg/dcsl-str1"
	count, err := scan.ParseAggregate("count")
	if err != nil {
		return nil, err
	}
	dictArms := []struct {
		name string
		pred scan.Predicate
	}{
		{"eq present", scan.Eq("str1", vecTag(7))},
		{"eq absent", scan.Eq("str1", "tag-absent")},
		{"ne present", scan.Ne("str1", vecTag(7))},
	}
	for _, arm := range dictArms {
		run := func(vect bool) (*mapred.Result, error) {
			return mapred.Run(fs, core.ScanDataset(dictDir).Where(arm.pred).Vectorize(vect).Aggregate(count).AggJob())
		}
		id, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("dict %s (id): %w", arm.name, err)
		}
		str, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("dict %s (string): %w", arm.name, err)
		}
		if !aggRowsSame(id.Agg.Rows(), str.Agg.Rows()) {
			return nil, fmt.Errorf("dict %s: id path answers %v, string path %v",
				arm.name, id.Agg.Rows(), str.Agg.Rows())
		}
		if id.Total.GroupsPruned != str.Total.GroupsPruned ||
			id.Total.RecordsPruned != str.Total.RecordsPruned ||
			id.Total.BloomPruned != str.Total.BloomPruned ||
			id.Total.SplitsPruned != str.Total.SplitsPruned ||
			id.Total.RecordsFiltered != str.Total.RecordsFiltered {
			return nil, fmt.Errorf("dict %s: pruning trajectories diverge", arm.name)
		}
		cell := AggDictCell{
			Arm:            arm.name,
			Rows:           id.Total.RowsAggregated,
			ID:             scanCost(id.Total, model),
			Str:            scanCost(str.Total, model),
			IDCPU:          cpu(id.Total),
			StrCPU:         cpu(str.Total),
			DictIdCompares: id.Total.DictIdCompares,
		}
		cell.CPURatio = ratio(cell.StrCPU, cell.IDCPU)
		res.Dict = append(res.Dict, cell)
	}

	cfg.printf("Aggregation pushdown sweep: scan-side folding vs materialize-then-fold (%d records, %d split-directories; int5 clustered, str1 cyclic x%d)\n",
		n, splits, aggTagCycle)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "layout\tarm\trows\tgroups\tpush CPU\tmat CPU\tratio\tbatches\tshortcuts\tpush MB\tmat MB")
		for _, c := range res.Cells {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.4fs\t%.4fs\t%.1fx\t%d\t%d\t%.2f\t%.2f\n",
				c.Layout, c.Arm, c.Rows, c.Groups,
				c.PushCPU, c.MatCPU, c.CPURatio,
				c.AggBatches, c.GroupsShortcut,
				float64(c.Push.ChargedBytes)/(1<<20), float64(c.Mat.ChargedBytes)/(1<<20))
		}
	})
	cfg.printf("\nDictionary-id evaluation on DCSL str1 (pushdown COUNT, id path vs string decode; identical bytes and pruning by construction)\n")
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "arm\trows\tid CPU\tstring CPU\tratio\tid compares\tcharged MB")
		for _, c := range res.Dict {
			fmt.Fprintf(w, "%s\t%d\t%.4fs\t%.4fs\t%.1fx\t%d\t%.2f\n",
				c.Arm, c.Rows, c.IDCPU, c.StrCPU, c.CPURatio, c.DictIdCompares,
				float64(c.ID.ChargedBytes)/(1<<20))
		}
	})
	cfg.printf("\n")
	return res, nil
}
