package bench

import "testing"

// TestAggregationShape is the acceptance gate of aggregation pushdown: the
// in-scan fold must never cost more modeled CPU than materializing records
// and folding them in a mapper, must beat it by >= 5x for COUNT under the
// selective clustered predicate (pruning plus stats shortcut answer almost
// everything without decoding), and the dictionary-id sweep must show the
// id path winning at exactly equal charged bytes with integer compares
// doing the work. The experiment itself enforces that both sides of every
// cell produce identical aggregate rows and identical pruning trajectories
// — reaching the assertions below means the answers already agreed.
func TestAggregationShape(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.02
	}
	res, err := Aggregation(testCfg(scale))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 10 {
		t.Fatalf("got %d cells, want 10 (2 layouts x 5 arms)", len(res.Cells))
	}
	if len(res.Dict) != 3 {
		t.Fatalf("got %d dictionary cells, want 3", len(res.Dict))
	}

	for _, c := range res.Cells {
		ctx := c.Layout + "/" + c.Arm
		if c.Groups <= 0 {
			t.Errorf("%s: no aggregate rows produced", ctx)
		}
		// Folding in the scan is never more expensive than building record
		// objects just to fold them.
		if c.PushCPU > c.MatCPU {
			t.Errorf("%s: pushdown CPU %.5fs exceeds materializing %.5fs",
				ctx, c.PushCPU, c.MatCPU)
		}
		// Pushdown never reads more than the materializing side — the
		// pruning trajectory is shared and shortcuts only subtract.
		if c.Push.ChargedBytes > c.Mat.ChargedBytes {
			t.Errorf("%s: pushdown charged %d bytes, materializing %d",
				ctx, c.Push.ChargedBytes, c.Mat.ChargedBytes)
		}
		// The pushdown side never constructs a record.
		if c.Push.ValuesMaterialized != 0 {
			t.Errorf("%s: pushdown materialized %d values", ctx, c.Push.ValuesMaterialized)
		}
	}

	for _, layout := range []string{"skiplist", "dcsl-str1"} {
		// The headline acceptance arm: COUNT under a clustered selective
		// predicate. Zone pruning drops non-matching windows, the stats
		// shortcut answers matching ones — the materializing side still has
		// to decode and build every surviving record.
		c := res.Get(layout, "count clustered")
		if c.Rows <= 0 || c.Rows >= res.Records {
			t.Fatalf("%s/count clustered: %d of %d rows — arm is degenerate",
				layout, c.Rows, res.Records)
		}
		if c.GroupsShortcut <= 0 {
			t.Errorf("%s/count clustered: stats shortcut never fired", layout)
		}
		if c.CPURatio < 5 {
			t.Errorf("%s/count clustered: pushdown only %.1fx cheaper, want >= 5x",
				layout, c.CPURatio)
		}
		// The full-scan stats arm: every window answered from statistics,
		// nothing decoded at all.
		s := res.Get(layout, "stats full scan")
		if s.Rows != res.Records {
			t.Errorf("%s/stats full scan: folded %d rows, want all %d", layout, s.Rows, res.Records)
		}
		if s.GroupsShortcut <= 0 {
			t.Errorf("%s/stats full scan: stats shortcut never fired", layout)
		}
		if s.Push.DecodedBytes != 0 {
			t.Errorf("%s/stats full scan: pushdown decoded %d bytes, want 0",
				layout, s.Push.DecodedBytes)
		}
		// GROUP BY keys must be decoded row by row — no shortcut applies.
		g := res.Get(layout, "group by")
		if g.GroupsShortcut != 0 {
			t.Errorf("%s/group by: stats shortcut fired on a grouped aggregate", layout)
		}
		if g.Groups != aggTagCycle {
			t.Errorf("%s/group by: %d groups, want %d", layout, g.Groups, aggTagCycle)
		}
	}

	for _, d := range res.Dict {
		// Identical reads: switching the evaluation representation moves no
		// bytes (the experiment already verified pruning counters match).
		if d.ID.ChargedBytes != d.Str.ChargedBytes {
			t.Errorf("dict %s: id path charged %d bytes, string path %d",
				d.Arm, d.ID.ChargedBytes, d.Str.ChargedBytes)
		}
		if d.IDCPU > d.StrCPU {
			t.Errorf("dict %s: id path CPU %.5fs exceeds string path %.5fs",
				d.Arm, d.IDCPU, d.StrCPU)
		}
	}
	// Present needles are resolved to an id and compared per row; the
	// absent needle is answered by the dictionary probe alone — whole
	// windows decided without a single per-row compare.
	for _, arm := range []string{"eq present", "ne present"} {
		if d := res.GetDict(arm); d.DictIdCompares <= 0 {
			t.Errorf("dict %s: no dictionary-id compares recorded", arm)
		}
	}
	if d := res.GetDict("eq absent"); d.DictIdCompares != 0 {
		t.Errorf("dict eq absent: %d id compares, want 0 (probe answers the window)", d.DictIdCompares)
	}
	if d := res.GetDict("eq absent"); d.Rows != 0 {
		t.Errorf("dict eq absent: counted %d rows, want 0", d.Rows)
	}
}
