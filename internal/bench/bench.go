// Package bench regenerates every table and figure in the paper's
// evaluation (Section 6 and Appendix B). Each experiment:
//
//  1. generates a laptop-scale sample of the paper's dataset,
//  2. executes the real storage-format code paths (encode, write to the
//     simulated HDFS, scan/job with real decoding), collecting
//     sim.TaskStats counters,
//  3. linearly extrapolates the counters to the paper's dataset size, and
//  4. prices them with the calibrated cluster cost model.
//
// Absolute seconds come from the model; the reproduction target is the
// paper's shape — orderings, crossovers, and rough speedup factors — which
// emerge from measured bytes, seeks, and per-type decode work rather than
// from hardcoded ratios. See EXPERIMENTS.md for paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Scale multiplies each experiment's default laptop-scale record
	// count. 1.0 gives defaults tuned for a few seconds per experiment;
	// tests use smaller values.
	Scale float64
	// Seed drives all generators and placement decisions.
	Seed int64
	// Out receives the formatted result tables (nil: stdout suppressed).
	Out io.Writer
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 2011} }

func (c Config) records(base int64) int64 {
	n := int64(float64(base) * c.Scale)
	if n < 64 {
		n = 64
	}
	return n
}

func (c Config) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

func (c Config) table(write func(w *tabwriter.Writer)) {
	if c.Out == nil {
		return
	}
	w := tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', 0)
	write(w)
	w.Flush()
}

// newFS builds a simulated HDFS for an experiment.
func newFS(cfg sim.ClusterConfig, seed int64, cpp bool) *hdfs.FileSystem {
	fs := hdfs.New(cfg, seed)
	if cpp {
		fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())
	}
	return fs
}

// scanSplits opens every split of the input and drains it on one node,
// returning aggregated stats. It is the single-node scan harness used by
// the microbenchmarks (Sections 6.2, B.2, B.5).
func scanSplits(fs *hdfs.FileSystem, in mapred.InputFormat, conf *mapred.JobConf, node hdfs.NodeID, visit func(rec serde.Record) error) (sim.TaskStats, int64, error) {
	var total sim.TaskStats
	splits, err := in.Splits(fs, conf)
	if err != nil {
		return total, 0, err
	}
	var records int64
	for _, sp := range splits {
		var st sim.TaskStats
		rr, err := in.Open(fs, conf, sp, node, &st)
		if err != nil {
			return total, 0, err
		}
		for {
			_, v, ok, err := rr.Next()
			if err != nil {
				rr.Close()
				return total, 0, err
			}
			if !ok {
				break
			}
			records++
			st.RecordsProcessed++
			if visit != nil {
				if err := visit(v.(serde.Record)); err != nil {
					rr.Close()
					return total, 0, err
				}
			}
		}
		if err := rr.Close(); err != nil {
			return total, 0, err
		}
		total.Add(st)
	}
	return total, records, nil
}

// ratio guards division display.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// gb formats bytes as gigabytes.
func gb(b int64) float64 { return float64(b) / float64(sim.GB) }

// mbps formats a bytes-per-second rate as MB/s.
func mbps(bytesPerSec float64) float64 { return bytesPerSec / float64(sim.MB) }
