package bench

import (
	"testing"

	"colmr/internal/workload"
)

// The tests below are the reproduction criteria: each asserts the *shape*
// of a paper result — who wins, in what order, by roughly what factor —
// at reduced scale. Absolute values are recorded in EXPERIMENTS.md.

func testCfg(scale float64) Config {
	return Config{Scale: scale, Seed: 2011}
}

// skipIfShort keeps the tier-1 loop fast: every experiment regenerates a
// dataset and runs real scans (the package takes ~35s in full), so the
// shape tests only run in full (non -short) mode.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment regeneration skipped in -short mode")
	}
}

func TestFigure7Shape(t *testing.T) {
	skipIfShort(t)
	res, err := Figure7(testCfg(0.1))
	if err != nil {
		t.Fatal(err)
	}
	txt := res.Get("TXT", "AllColumns").Seconds
	seq := res.Get("SEQ", "AllColumns").Seconds

	// "simply switching to a binary storage format can improve Hadoop's
	// scan performance by 3x"
	if r := txt / seq; r < 2 || r > 6 {
		t.Errorf("TXT/SEQ = %.2fx, want ~3x (2-6)", r)
	}

	// "times for scanning a single integer, string, or map were 2.5x to
	// 95x faster than SEQ" — the map column is the paper's low end.
	for _, proj := range []string{"1 Integer", "1 String", "1 Map"} {
		if r := seq / res.Get("CIF", proj).Seconds; r < 2.2 {
			t.Errorf("SEQ/CIF[%s] = %.2fx, want > 2.2x", proj, r)
		}
	}
	if r := seq / res.Get("CIF", "1 Integer").Seconds; r < 20 {
		t.Errorf("SEQ/CIF[1 Integer] = %.2fx, want > 20x", r)
	}

	// "When scanning all the columns ... CIF took about 25% longer than
	// SEQ" — allow 5%..100%.
	if r := res.Get("CIF", "AllColumns").Seconds / seq; r < 1.02 || r > 2.2 {
		t.Errorf("CIF/SEQ all-columns = %.2fx, want ~1.25x", r)
	}

	// "CIF was nearly 38x faster than the uncompressed RCFile" (1 int).
	if r := res.Get("RCFile", "1 Integer").Seconds / res.Get("CIF", "1 Integer").Seconds; r < 5 {
		t.Errorf("RCFile/CIF 1-int = %.2fx, want > 5x", r)
	}
	// "RCFile read 20x more bytes than CIF" (1 int) — allow > 5x.
	if r := res.Get("RCFile", "1 Integer").ChargedGB / res.Get("CIF", "1 Integer").ChargedGB; r < 5 {
		t.Errorf("RCFile/CIF 1-int bytes = %.2fx, want > 5x", r)
	}
	// CIF must beat the compressed RCFile too ("CIF was still faster in
	// all cases").
	for _, proj := range []string{"1 Integer", "1 String", "1 Map"} {
		if res.Get("CIF", proj).Seconds >= res.Get("RCFile-comp", proj).Seconds {
			t.Errorf("CIF[%s] not faster than compressed RCFile", proj)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	skipIfShort(t)
	res, err := Table1(testCfg(0.25))
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) Table1Row { return res.Get(name) }

	// Ordering of the SEQ family: compressed variants beat uncompressed.
	if !(get("SEQ-record").MapTime < get("SEQ-uncomp").MapTime) {
		t.Error("SEQ-record should beat SEQ-uncomp")
	}
	if !(get("SEQ-custom").MapTime <= get("SEQ-record").MapTime*1.1) {
		t.Error("SEQ-custom should be fastest SEQ variant (within 10%)")
	}

	// RCFile beats SEQ-custom modestly; compressed RCFile more.
	if get("RCFile").MapRatio < 1.0 {
		t.Errorf("RCFile map ratio %.2f, want >= 1.0", get("RCFile").MapRatio)
	}
	if !(get("RCFile-comp").MapTime < get("RCFile").MapTime) {
		t.Error("RCFile-comp should beat RCFile")
	}

	// The CIF family is an order of magnitude beyond RCFile-comp.
	for _, v := range []string{"CIF", "CIF-ZLIB", "CIF-LZO", "CIF-SL", "CIF-DCSL"} {
		if r := get(v).MapRatio; r < 15 {
			t.Errorf("%s map speedup %.1fx, want > 15x (paper: 59-108x)", v, r)
		}
	}

	// CIF-SL beats plain CIF (lazy construction), CIF-DCSL best overall.
	if !(get("CIF-SL").MapTime < get("CIF").MapTime) {
		t.Error("CIF-SL should beat CIF")
	}
	best := get("CIF-DCSL").MapTime
	for _, v := range []string{"SEQ-uncomp", "SEQ-record", "SEQ-block", "SEQ-custom", "RCFile", "RCFile-comp", "CIF", "CIF-ZLIB", "CIF-LZO", "CIF-SL"} {
		if get(v).MapTime < best {
			t.Errorf("CIF-DCSL (%.2fs) not the best map time (%s = %.2fs)", best, v, get(v).MapTime)
		}
	}

	// Bytes read ordering: compression and skip lists reduce CIF's reads.
	if !(get("CIF-ZLIB").DataReadGB < get("CIF").DataReadGB) {
		t.Error("CIF-ZLIB should read fewer bytes than CIF")
	}
	if !(get("CIF-LZO").DataReadGB < get("CIF").DataReadGB) {
		t.Error("CIF-LZO should read fewer bytes than CIF")
	}
	if !(get("CIF-DCSL").DataReadGB < get("CIF").DataReadGB) {
		t.Error("CIF-DCSL should read fewer bytes than CIF")
	}
	// All CIF variants read a tiny fraction of what SEQ reads (the paper:
	// 6400 GB -> 36..96 GB).
	if r := get("SEQ-uncomp").DataReadGB / get("CIF").DataReadGB; r < 10 {
		t.Errorf("SEQ-uncomp/CIF bytes = %.1fx, want > 10x", r)
	}

	// Total time improves by over an order of magnitude for the best CIF.
	if r := get("CIF-DCSL").TotalRatio; r < 5 {
		t.Errorf("CIF-DCSL total speedup %.1fx, want > 5x (paper: 12.8x)", r)
	}
}

func TestColocationShape(t *testing.T) {
	skipIfShort(t)
	res, err := Colocation(testCfg(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteFractionCPP != 0 {
		t.Errorf("CPP remote fraction = %.2f, want 0", res.RemoteFractionCPP)
	}
	if res.RemoteFractionDefault < 0.2 {
		t.Errorf("default-placement remote fraction = %.2f, want substantial", res.RemoteFractionDefault)
	}
	// Paper: 5.1x. Accept > 1.8x as shape-preserving.
	if res.Speedup < 1.8 {
		t.Errorf("CPP speedup = %.2fx, want > 1.8x", res.Speedup)
	}
}

func TestFigure8Shape(t *testing.T) {
	skipIfShort(t)
	res, err := Figure8(testCfg(0.25))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []workload.TypedKind{workload.TypedInts, workload.TypedDoubles, workload.TypedMaps} {
		// Bandwidth decreases as the typed fraction grows.
		prev := res.Get(kind, 0).BoxedMBps
		for _, f := range Fig8Fractions[1:] {
			cur := res.Get(kind, f).BoxedMBps
			if cur > prev*1.05 {
				t.Errorf("%v boxed bandwidth rose from %.0f to %.0f at f=%.1f", kind, prev, cur, f)
			}
			prev = cur
		}
		// The view (C++) path is strictly faster at full typed fraction.
		if res.Get(kind, 1.0).ViewMBps <= res.Get(kind, 1.0).BoxedMBps {
			t.Errorf("%v view path not faster than boxed at f=1", kind)
		}
	}
	// The paper's headline: boxed map decoding can drop below a SATA
	// disk's bandwidth (~75 MB/s) past f = 60%.
	if bw := res.Get(workload.TypedMaps, 0.6).BoxedMBps; bw >= 90 {
		t.Errorf("boxed maps at f=0.6 = %.0f MB/s, want < 90", bw)
	}
	// Ints and doubles stay well above it.
	if bw := res.Get(workload.TypedInts, 1.0).BoxedMBps; bw < 100 {
		t.Errorf("boxed ints at f=1 = %.0f MB/s, want > 100", bw)
	}
}

func TestFigure9Shape(t *testing.T) {
	skipIfShort(t)
	res, err := Figure9(testCfg(0.1))
	if err != nil {
		t.Fatal(err)
	}
	// Larger row groups eliminate more I/O on a 1-integer scan.
	b1 := res.Get("1M RCFile", "1 Integer").ChargedGB
	b4 := res.Get("4M RCFile", "1 Integer").ChargedGB
	b16 := res.Get("16M RCFile", "1 Integer").ChargedGB
	cif := res.Get("CIF", "1 Integer").ChargedGB
	if !(b1 > b4 && b4 > b16) {
		t.Errorf("row-group I/O not monotone: 1M=%.2f 4M=%.2f 16M=%.2f GB", b1, b4, b16)
	}
	if !(cif < b16/3) {
		t.Errorf("CIF 1-int bytes %.2f GB not ≪ 16M RCFile %.2f GB", cif, b16)
	}
	// And CIF is fastest on every projected scan.
	for _, proj := range []string{"1 Integer", "1 String", "1 Map", "1 String+1 Map"} {
		for _, rg := range []string{"1M RCFile", "4M RCFile", "16M RCFile"} {
			if res.Get("CIF", proj).Seconds > res.Get(rg, proj).Seconds {
				t.Errorf("CIF slower than %s on %s", rg, proj)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	skipIfShort(t)
	res, err := Table2(testCfg(0.1))
	if err != nil {
		t.Fatal(err)
	}
	cif := res.Get("CIF").Minutes
	cifSL := res.Get("CIF-SL").Minutes
	rc := res.Get("RCFile").Minutes
	// Skip lists add minor overhead (paper: 89 -> 93 min, ~4.5%).
	if cifSL < cif {
		t.Errorf("CIF-SL load (%.1f) cheaper than CIF (%.1f)?", cifSL, cif)
	}
	if cifSL > cif*1.3 {
		t.Errorf("CIF-SL load overhead %.0f%%, want minor (< 30%%)", 100*(cifSL/cif-1))
	}
	// CIF loads cost about the same as RCFile loads (paper: 89 vs 89).
	if r := cif / rc; r < 0.5 || r > 2 {
		t.Errorf("CIF/RCFile load ratio %.2f, want within 2x", r)
	}
}

func TestFigure10Shape(t *testing.T) {
	skipIfShort(t)
	res, err := Figure10(testCfg(0.15))
	if err != nil {
		t.Fatal(err)
	}
	// At low selectivity CIF-SL wins.
	if !(res.Get("CIF-SL", 0).Seconds < res.Get("CIF", 0).Seconds) {
		t.Errorf("CIF-SL at 0%% (%.1f) not faster than CIF (%.1f)",
			res.Get("CIF-SL", 0).Seconds, res.Get("CIF", 0).Seconds)
	}
	// They converge at 100% (within 15%).
	a, b := res.Get("CIF-SL", 1).Seconds, res.Get("CIF", 1).Seconds
	if r := a / b; r < 0.85 || r > 1.15 {
		t.Errorf("CIF-SL/CIF at 100%% = %.2f, want ~1", r)
	}
	// CIF-SL's advantage shrinks as selectivity rises.
	gapLow := res.Get("CIF", 0).Seconds - res.Get("CIF-SL", 0).Seconds
	gapHigh := res.Get("CIF", 1).Seconds - res.Get("CIF-SL", 1).Seconds
	if gapLow <= gapHigh {
		t.Errorf("skip-list benefit did not shrink with selectivity: %.1f vs %.1f", gapLow, gapHigh)
	}
}

func TestFigure11Shape(t *testing.T) {
	skipIfShort(t)
	res, err := Figure11(testCfg(0.25))
	if err != nil {
		t.Fatal(err)
	}
	// RCFile single-column bandwidth degrades as records widen; CIF's
	// stays roughly stable.
	rc20 := res.Get("RCFile_1", 20).MBps
	rc80 := res.Get("RCFile_1", 80).MBps
	if !(rc80 < rc20*0.8) {
		t.Errorf("RCFile_1 bandwidth %.1f -> %.1f MB/s; want clear degradation", rc20, rc80)
	}
	cif20 := res.Get("CIF_1", 20).MBps
	cif80 := res.Get("CIF_1", 80).MBps
	if r := cif20 / cif80; r < 0.6 || r > 1.7 {
		t.Errorf("CIF_1 bandwidth %.1f -> %.1f MB/s; want roughly stable", cif20, cif80)
	}
	for _, cols := range Fig11Widths {
		// Projecting a small number of columns: CIF beats RCFile.
		if !(res.Get("CIF_1", cols).MBps > res.Get("RCFile_1", cols).MBps) {
			t.Errorf("%d cols: CIF_1 not faster than RCFile_1", cols)
		}
		// Scanning everything: SEQ beats CIF (column-storage overhead).
		if !(res.Get("SEQ", cols).MBps > res.Get("CIF_all", cols).MBps) {
			t.Errorf("%d cols: SEQ not faster than CIF_all", cols)
		}
	}
}
