package bench

import (
	"fmt"
	"math"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Bloom sweeps string-equality predicates over a many-split dataset whose
// filter column (str0: random 20-40 char strings) is unsorted and
// high-cardinality — the regime where zone maps are useless, because every
// record group's [Min, Max] spans essentially the whole domain. Each arm
// compares the full pruning pipeline with Bloom filters consulted against
// the zone-maps-only baseline (scan.SetBloom(conf, false)):
//
//	bloom     file-aggregate filters elide whole split-directories at the
//	          scheduler tier, and per-group filters prune record groups
//	          the zone maps cannot (sim.TaskStats.BloomPruned);
//	baseline  the PR 2 pipeline unchanged: Min/Max, key universes, and
//	          the value tier do all the work.
//
// The two runs must return identical records. Shapes the filter cannot
// decide — ranges, prefixes — must cost byte-for-byte the same in both
// runs, and over a dataset written without filters
// (colfile.Options.NoBloom) the toggle must be completely inert: "bloom
// absent" and "bloom unconsulted" are the same scan — the filter is an
// extra statistic, never a different format.

// bloomSplits is the number of split-directories in the swept dataset.
const bloomSplits = 16

// BloomCell is one predicate shape's comparison.
type BloomCell struct {
	Name string
	// Matches is the number of qualifying records (identical in both runs).
	Matches int64
	// SplitsScheduledBloom / SplitsScheduledBase are the map tasks the
	// scheduler created (out of bloomSplits) with and without filters.
	SplitsScheduledBloom int
	SplitsScheduledBase  int
	// BloomPruned is the bloom run's count of record groups only the
	// filter could prune.
	BloomPruned int64
	// Bloom and Base are the measured scan costs.
	Bloom ScanCost
	Base  ScanCost
	// ChargedRatio is Base.ChargedBytes / Bloom.ChargedBytes.
	ChargedRatio float64
}

// BloomResult holds the sweep.
type BloomResult struct {
	Cells   []BloomCell
	Records int64
}

// Get returns the cell with the given name.
func (r *BloomResult) Get(name string) BloomCell {
	for _, c := range r.Cells {
		if c.Name == name {
			return c
		}
	}
	return BloomCell{}
}

// Bloom runs the sweep.
func Bloom(cfg Config) (*BloomResult, error) {
	n := cfg.records(100_000)
	gen := workload.NewSynthetic(cfg.Seed)
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)

	opts := core.LoadOptions{
		Default:      colfile.Options{Layout: colfile.SkipList},
		SplitRecords: (n + bloomSplits - 1) / bloomSplits,
	}
	dir := "/bloom/cif"
	if _, err := writeCIF(fs, dir, gen, n, opts, nil); err != nil {
		return nil, fmt.Errorf("loading: %w", err)
	}
	// The same dataset written without filters (Options.NoBloom): scanning
	// it with consultation on must behave exactly like consultation off
	// over the bloomed files — "bloom absent" and "bloom unconsulted" are
	// the same scan.
	noBloomOpts := opts
	noBloomOpts.Default.NoBloom = true
	noBloomDir := "/bloom/cif-nofilters"
	if _, err := writeCIF(fs, noBloomDir, gen, n, noBloomOpts, nil); err != nil {
		return nil, fmt.Errorf("loading filter-less copy: %w", err)
	}

	// The probed values: one string that exists (a mid-dataset record's
	// str0) and one that cannot (generated strings never contain '!').
	present, err := gen.Record(n / 3).Get("str0")
	if err != nil {
		return nil, err
	}
	absent := "!no-such-string!"

	// Both legs of an arm scan the same dataset; the last arm runs the
	// toggle over the filter-less files, where consultation must be inert
	// — byte-identical, not merely equivalent. (Across datasets only the
	// logical scan is identical: the bloomed files' longer stats sections
	// sit inside the data region's trailing transfer unit, so charged
	// bytes differ by file geometry; bloom_test.go asserts the
	// cross-dataset LogicalBytes equality.)
	arms := []struct {
		name string
		pred scan.Predicate
		dir  string
	}{
		{"eq present", scan.Eq("str0", present), dir},
		{"eq absent", scan.Eq("str0", absent), dir},
		{"range", scan.Between("str0", "A", "B"), dir},
		{"eq present, no filters", scan.Eq("str0", present), noBloomDir},
	}

	run := func(pred scan.Predicate, dataset string, bloom bool) (sim.TaskStats, scan.PruneReport, int64, error) {
		conf := &mapred.JobConf{InputPaths: []string{dataset}}
		core.SetColumns(conf, "str0", "map0")
		scan.SetPredicate(conf, pred)
		scan.SetBloom(conf, bloom)
		in := &core.InputFormat{}
		splits, report, err := in.PlannedSplits(fs, conf)
		if err != nil {
			return sim.TaskStats{}, report, 0, err
		}
		var total sim.TaskStats
		total.SplitsPruned = int64(report.SplitsPruned)
		total.RecordsPruned = report.RecordsPruned
		var matches int64
		for _, sp := range splits {
			var st sim.TaskStats
			rr, err := in.Open(fs, conf, sp, 0, &st)
			if err != nil {
				return total, report, 0, err
			}
			for {
				_, _, ok, err := rr.Next()
				if err != nil {
					rr.Close()
					return total, report, 0, err
				}
				if !ok {
					break
				}
				matches++
				st.RecordsProcessed++
			}
			if err := rr.Close(); err != nil {
				return total, report, 0, err
			}
			total.Add(st)
		}
		return total, report, matches, nil
	}

	res := &BloomResult{Records: n}
	for _, arm := range arms {
		onSt, onReport, onMatches, err := run(arm.pred, arm.dir, true)
		if err != nil {
			return nil, fmt.Errorf("%s (bloom): %w", arm.name, err)
		}
		baseSt, baseReport, baseMatches, err := run(arm.pred, arm.dir, false)
		if err != nil {
			return nil, fmt.Errorf("%s (baseline): %w", arm.name, err)
		}
		if onMatches != baseMatches {
			return nil, fmt.Errorf("%s: bloom returned %d records, baseline %d",
				arm.name, onMatches, baseMatches)
		}
		cell := BloomCell{
			Name:                 arm.name,
			Matches:              onMatches,
			SplitsScheduledBloom: onReport.SplitsTotal - onReport.SplitsPruned,
			SplitsScheduledBase:  baseReport.SplitsTotal - baseReport.SplitsPruned,
			BloomPruned:          onSt.BloomPruned,
			Bloom:                scanCost(onSt, model),
			Base:                 scanCost(baseSt, model),
		}
		if cell.Bloom.ChargedBytes == 0 && cell.Base.ChargedBytes > 0 {
			// An absent value's file filters can elide every split: the
			// bloom run charges nothing at all.
			cell.ChargedRatio = math.Inf(1)
		} else {
			cell.ChargedRatio = ratio(float64(cell.Base.ChargedBytes), float64(cell.Bloom.ChargedBytes))
		}
		res.Cells = append(res.Cells, cell)
	}

	cfg.printf("Bloom pruning sweep: per-group + whole-file Bloom filters vs zone-maps-only on unsorted high-cardinality strings (%d records, %d split-directories, filter on str0, project str0+map0)\n", n, bloomSplits)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "predicate\tmatches\tsplits bloom/base\tgroups bloom-pruned\tbloom charged MB\tbase charged MB\tratio\tbloom modeled\tbase modeled")
		for _, c := range res.Cells {
			rat := fmt.Sprintf("%.1fx", c.ChargedRatio)
			if math.IsInf(c.ChargedRatio, 1) {
				rat = "inf"
			}
			fmt.Fprintf(w, "%s\t%d\t%d/%d\t%d\t%.2f\t%.2f\t%s\t%.3fs\t%.3fs\n",
				c.Name, c.Matches,
				c.SplitsScheduledBloom, c.SplitsScheduledBase,
				c.BloomPruned,
				float64(c.Bloom.ChargedBytes)/(1<<20),
				float64(c.Base.ChargedBytes)/(1<<20),
				rat,
				c.Bloom.Seconds, c.Base.Seconds)
		}
	})
	cfg.printf("\n")
	return res, nil
}
