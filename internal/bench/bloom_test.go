package bench

import "testing"

// TestBloomShape is the acceptance gate of Bloom-filter pruning: on
// unsorted high-cardinality strings, a selective equality must charge at
// least 4x fewer bytes than zone-maps-only, whole splits must be elided by
// file-aggregate filters, and shapes the filter cannot decide (ranges) or
// a disabled filter must cost byte-for-byte the baseline. Record
// equivalence between the runs is enforced inside Bloom, which fails on
// mismatch.
func TestBloomShape(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.05
	}
	res, err := Bloom(testCfg(scale))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Cells))
	}

	for _, name := range []string{"eq present", "eq absent"} {
		c := res.Get(name)
		if c.ChargedRatio < 4 {
			t.Errorf("%s: charged ratio %.1fx, want >= 4x", name, c.ChargedRatio)
		}
		if c.SplitsScheduledBloom >= c.SplitsScheduledBase {
			t.Errorf("%s: bloom scheduled %d splits, baseline %d — file filters elided nothing",
				name, c.SplitsScheduledBloom, c.SplitsScheduledBase)
		}
		if c.Bloom.ChargedBytes > c.Base.ChargedBytes {
			t.Errorf("%s: bloom charged %d > baseline %d", name, c.Bloom.ChargedBytes, c.Base.ChargedBytes)
		}
	}
	if c := res.Get("eq present"); c.Matches == 0 {
		t.Error("eq present: probe value matched nothing — the sweep is not probing a real value")
	}
	if c := res.Get("eq absent"); c.Matches != 0 {
		t.Errorf("eq absent: %d matches for an impossible value", c.Matches)
	}

	// Exactly 1.0x — byte-identical statistics — when the filter cannot
	// apply (range shapes over bloomed files) or the files carry no
	// filters at all (written with Options.NoBloom; the consultation
	// toggle must be completely inert over them).
	for _, name := range []string{"range", "eq present, no filters"} {
		c := res.Get(name)
		if c.Bloom.ChargedBytes != c.Base.ChargedBytes {
			t.Errorf("%s: charged bytes differ: %d vs %d (want byte-identical)",
				name, c.Bloom.ChargedBytes, c.Base.ChargedBytes)
		}
		if c.BloomPruned != 0 {
			t.Errorf("%s: %d groups attributed to the filter, want 0", name, c.BloomPruned)
		}
	}
	if c := res.Get("range"); c.Matches == 0 {
		t.Error("range: matched nothing — the range arm is vacuous")
	}

	// Writing filters must not change the scan itself: with consultation
	// off, the bloomed and filter-less datasets deliver exactly the same
	// logical bytes for the same predicate. (Charged bytes may differ by
	// trailing-transfer-unit geometry — the bloomed files' stats sections
	// are longer — which is why the comparison is logical.)
	withFilters, without := res.Get("eq present"), res.Get("eq present, no filters")
	if withFilters.Base.LogicalBytes != without.Base.LogicalBytes {
		t.Errorf("baseline logical bytes differ across datasets: %d (filters written) vs %d (none)",
			withFilters.Base.LogicalBytes, without.Base.LogicalBytes)
	}
	if withFilters.Matches != without.Matches {
		t.Errorf("matches differ across datasets: %d vs %d", withFilters.Matches, without.Matches)
	}
}
