package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// CacheReuse measures cross-batch scan caching: the same job resubmitted
// round after round to one long-lived mapred.Session, against the same
// stream of rounds run cold (every round a fresh scan, today's Engine
// model). Two arms:
//
//	selective  a zone-map-friendly predicate over the clustered int0 domain
//	           — the steady "same dashboard query again" case caching is
//	           for;
//	full       an unfiltered projection scan, showing reuse survives at
//	           100% selectivity too.
//
// Both arms run through one session, in order. The selective arm's round 1
// warms an empty cache and costs exactly the cold round (misses charge
// normally, byte for byte); every later round serves its column regions
// from the session — CacheHits/BytesFromCache account the reuse and the
// round's charged bytes collapse toward zero. The full arm's first round
// then starts below cold: the str0 regions the selective rounds pinned are
// cross-query reuse, a different job hitting another job's hot columns.
// Output equality between modes is asserted per round; byte-identical
// accounting with caching disabled is the session property test's job.

// CacheReuseRoundsPerArm is the number of times each arm's job repeats.
const CacheReuseRoundsPerArm = 4

// cacheReuseSplits is the number of split-directories in the swept dataset.
const cacheReuseSplits = 16

// CacheReuseCell is one round of one arm.
type CacheReuseCell struct {
	Arm   string
	Round int
	// Cold and Warm are the round's measured costs without and with the
	// session cache.
	Cold ScanCost
	Warm ScanCost
	// CacheHits and BytesFromCache are the warm round's reuse counters.
	CacheHits      int64
	BytesFromCache int64
	// ChargedRatio is Cold.ChargedBytes / Warm.ChargedBytes (0 when the
	// warm round charged nothing).
	ChargedRatio float64
}

// CacheReuseResult holds the sweep.
type CacheReuseResult struct {
	Cells   []CacheReuseCell
	Records int64
	// CacheBytes is the session budget; CacheUsed the resident bytes after
	// the sweep.
	CacheBytes int64
	CacheUsed  int64
	// Ratio sums each arm's cold charged bytes over its warm charged bytes
	// — the headline "repeated job" saving.
	Ratio map[string]float64
}

// Get returns one arm's cell for a round (1-based).
func (r *CacheReuseResult) Get(arm string, round int) CacheReuseCell {
	for _, c := range r.Cells {
		if c.Arm == arm && c.Round == round {
			return c
		}
	}
	return CacheReuseCell{}
}

// cacheReuseJob builds the repeated job through the typed builder — the
// same spec every round, which is the whole point.
func cacheReuseJob(dataset string, pred scan.Predicate) *mapred.Job {
	return core.ScanDataset(dataset).
		Columns("str0").
		Where(pred).
		Job(mapred.MapperFunc(func(_, v any, emit mapred.Emit) error {
			_, err := v.(serde.Record).Get("str0")
			return err
		}))
}

// CacheReuse runs the sweep.
func CacheReuse(cfg Config) (*CacheReuseResult, error) {
	n := cfg.records(100_000)
	syn := workload.NewSynthetic(cfg.Seed)
	idx := syn.Schema().FieldIndex("int0")
	if idx < 0 {
		return nil, fmt.Errorf("bench: synthetic schema has no int0 column")
	}
	gen := clusteredGen{syn, n, idx}
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)

	opts := core.LoadOptions{
		Default:      colfile.Options{Layout: colfile.SkipList},
		SplitRecords: (n + cacheReuseSplits - 1) / cacheReuseSplits,
	}
	dir := "/cachereuse/cif"
	if _, err := writeCIF(fs, dir, gen, n, opts, nil); err != nil {
		return nil, fmt.Errorf("loading: %w", err)
	}

	arms := []struct {
		name string
		pred scan.Predicate
	}{
		// A quarter of the clustered domain: elision drops 3/4 of the
		// splits, the surviving region repeats every round.
		{"selective", scan.Le("int0", int64(2500))},
		// Unfiltered: every byte of str0, every round.
		{"full", nil},
	}

	res := &CacheReuseResult{
		Records:    n,
		CacheBytes: 256 << 20,
		Ratio:      make(map[string]float64),
	}
	session := mapred.NewSession(fs, mapred.SessionOptions{CacheBytes: res.CacheBytes})
	for _, arm := range arms {
		var coldCharged, warmCharged int64
		for round := 1; round <= CacheReuseRoundsPerArm; round++ {
			cold, err := mapred.Run(fs, cacheReuseJob(dir, arm.pred))
			if err != nil {
				return nil, fmt.Errorf("cold %s round %d: %w", arm.name, round, err)
			}
			pending := session.Submit(cacheReuseJob(dir, arm.pred))
			br, err := session.Wait()
			if err != nil {
				return nil, fmt.Errorf("warm %s round %d: %w", arm.name, round, err)
			}
			warm, err := pending.Result()
			if err != nil {
				return nil, err
			}
			if warm.Total.RecordsProcessed != cold.Total.RecordsProcessed {
				return nil, fmt.Errorf("%s round %d: warm matched %d records, cold %d",
					arm.name, round, warm.Total.RecordsProcessed, cold.Total.RecordsProcessed)
			}
			hits, fromCache := mapred.CacheStats(br)
			cell := CacheReuseCell{
				Arm:            arm.name,
				Round:          round,
				Cold:           scanCost(cold.Total, model),
				Warm:           scanCost(warm.Total, model),
				CacheHits:      hits,
				BytesFromCache: fromCache,
			}
			cell.ChargedRatio = ratio(float64(cell.Cold.ChargedBytes), float64(cell.Warm.ChargedBytes))
			coldCharged += cell.Cold.ChargedBytes
			warmCharged += cell.Warm.ChargedBytes
			res.Cells = append(res.Cells, cell)
		}
		res.Ratio[arm.name] = ratio(float64(coldCharged), float64(warmCharged))
	}
	res.CacheUsed, _ = session.CacheUsage()

	cfg.printf("Cache reuse sweep: one session resubmitting a job %d rounds vs cold runs (%d records, %d split-directories, clustered int0, project str0, %d MB cache)\n",
		CacheReuseRoundsPerArm, n, cacheReuseSplits, res.CacheBytes>>20)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "arm\tround\tcold charged MB\twarm charged MB\tratio\tcache hits\tfrom cache MB\tcold modeled\twarm modeled")
		for _, c := range res.Cells {
			rat := fmt.Sprintf("%.1fx", c.ChargedRatio)
			if c.Warm.ChargedBytes == 0 && c.Cold.ChargedBytes > 0 {
				rat = "all cached"
			}
			fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%s\t%d\t%.2f\t%.3fs\t%.3fs\n",
				c.Arm, c.Round,
				float64(c.Cold.ChargedBytes)/(1<<20),
				float64(c.Warm.ChargedBytes)/(1<<20),
				rat,
				c.CacheHits,
				float64(c.BytesFromCache)/(1<<20),
				c.Cold.Seconds, c.Warm.Seconds)
		}
	})
	cfg.printf("aggregate charged-byte reduction: selective %.1fx, full %.1fx; cache resident %.2f MB\n\n",
		res.Ratio["selective"], res.Ratio["full"], float64(res.CacheUsed)/(1<<20))
	return res, nil
}
