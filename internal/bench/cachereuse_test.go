package bench

import "testing"

// TestCacheReuseShape is the acceptance gate of cross-batch caching: a
// repeated selective job through one session must charge at least 2x less
// in aggregate than the same rounds run cold, the warm-up round must cost
// exactly the cold round, and later rounds must serve their bytes from the
// cache (CacheReuse itself fails if any round's match count diverges
// between modes).
func TestCacheReuseShape(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.02
	}
	res, err := CacheReuse(testCfg(scale))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*CacheReuseRoundsPerArm {
		t.Fatalf("got %d cells, want %d", len(res.Cells), 2*CacheReuseRoundsPerArm)
	}

	// The headline: the repeated selective job, >= 2x aggregate charged-byte
	// reduction against cold runs.
	if r := res.Ratio["selective"]; r < 2 {
		t.Errorf("selective arm: aggregate charged ratio %.2fx, want >= 2x", r)
	}

	// Round 1 runs against an empty cache: cold and warm charge the same
	// bytes (a miss is a plain charge plus an admission, never a markup).
	c1 := res.Get("selective", 1)
	if c1.Warm.ChargedBytes != c1.Cold.ChargedBytes {
		t.Errorf("selective round 1: warm charged %d, cold %d — warm-up must cost cold exactly",
			c1.Warm.ChargedBytes, c1.Cold.ChargedBytes)
	}
	if c1.CacheHits != 0 {
		t.Errorf("selective round 1: %d cache hits against an empty cache", c1.CacheHits)
	}

	// Later rounds are served from the session: hits fire, bytes come from
	// cache, and the round charges less than its cold twin.
	for round := 2; round <= CacheReuseRoundsPerArm; round++ {
		c := res.Get("selective", round)
		if c.CacheHits == 0 || c.BytesFromCache == 0 {
			t.Errorf("selective round %d: caching never fired (%d hits, %d bytes)",
				round, c.CacheHits, c.BytesFromCache)
		}
		if c.Warm.ChargedBytes >= c.Cold.ChargedBytes {
			t.Errorf("selective round %d: warm charged %d, cold %d — no reuse",
				round, c.Warm.ChargedBytes, c.Cold.ChargedBytes)
		}
		// Logical work is identical either way: caching changes where bytes
		// come from, never how many records are read.
		if c.Warm.LogicalBytes != c.Cold.LogicalBytes {
			t.Errorf("selective round %d: warm logical %d, cold %d",
				round, c.Warm.LogicalBytes, c.Cold.LogicalBytes)
		}
	}

	// The full arm reuses too — including cross-query hits from the
	// selective rounds that ran before it on the same session.
	if r := res.Ratio["full"]; r < 2 {
		t.Errorf("full arm: aggregate charged ratio %.2fx, want >= 2x", r)
	}
	if res.CacheUsed <= 0 || res.CacheUsed > res.CacheBytes {
		t.Errorf("cache resident %d bytes outside (0, %d]", res.CacheUsed, res.CacheBytes)
	}
}
