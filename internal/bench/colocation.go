package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// ColocationResult reproduces Section 6.4: the crawl job over CIF with and
// without the column placement policy.
type ColocationResult struct {
	// MapTimeCPP / MapTimeDefault are modeled map times (seconds at paper
	// scale) with ColumnPlacementPolicy vs HDFS default placement.
	MapTimeCPP     float64
	MapTimeDefault float64
	// Speedup is MapTimeDefault / MapTimeCPP (the paper reports 5.1x).
	Speedup float64
	// RemoteFractionCPP / RemoteFractionDefault are the fractions of
	// charged bytes read over the network.
	RemoteFractionCPP     float64
	RemoteFractionDefault float64
}

// Colocation reproduces Section 6.4's co-location experiment.
func Colocation(cfg Config) (*ColocationResult, error) {
	n := cfg.records(8000)
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: cfg.Seed})
	cluster := sim.DefaultCluster()
	model := sim.DefaultModelFor(cluster)

	run := func(cpp bool) (float64, float64, error) {
		fs := newFS(cluster, cfg.Seed, cpp)
		opts := core.LoadOptions{SplitRecords: n/40 + 1}
		size, err := writeCIF(fs, "/c/cif", gen, n, opts, nil)
		if err != nil {
			return 0, 0, err
		}
		conf := mapred.JobConf{InputPaths: []string{"/c/cif"}}
		core.SetColumns(&conf, "url", "metadata")
		jr, err := mapred.Run(fs, crawlJob(&core.InputFormat{}, conf))
		if err != nil {
			return 0, 0, err
		}
		total := jr.Total
		remoteFrac := ratio(float64(total.IO.RemoteBytes), float64(total.IO.TotalChargedBytes()))
		// Anchor on dataset size exactly like Table 1, so the CPP arm's
		// map time is comparable to Table 1's CIF row.
		total.Scale(float64(Table1Target) / float64(maxi64(size, 1)))
		return model.MapTime(total), remoteFrac, nil
	}

	withCPP, remCPP, err := run(true)
	if err != nil {
		return nil, err
	}
	withDefault, remDef, err := run(false)
	if err != nil {
		return nil, err
	}
	res := &ColocationResult{
		MapTimeCPP:            withCPP,
		MapTimeDefault:        withDefault,
		Speedup:               ratio(withDefault, withCPP),
		RemoteFractionCPP:     remCPP,
		RemoteFractionDefault: remDef,
	}
	cfg.printf("Section 6.4: co-location (CIF, url+metadata projection)\n")
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "placement\tmap time (s)\tremote bytes")
		fmt.Fprintf(w, "ColumnPlacementPolicy\t%.1f\t%.1f%%\n", res.MapTimeCPP, 100*res.RemoteFractionCPP)
		fmt.Fprintf(w, "default\t%.1f\t%.1f%%\n", res.MapTimeDefault, 100*res.RemoteFractionDefault)
	})
	cfg.printf("CPP speedup: %.1fx (paper: 5.1x)\n\n", res.Speedup)
	return res, nil
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
