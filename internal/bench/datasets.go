package bench

import (
	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/formats/seq"
	"colmr/internal/formats/txt"
	"colmr/internal/hdfs"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// generator is the common shape of the workload generators.
type generator interface {
	Schema() *serde.Schema
	Record(i int64) *serde.GenericRecord
}

// writeSEQ materializes n generated records as a SequenceFile and returns
// its size. Load-side stats may be nil.
func writeSEQ(fs *hdfs.FileSystem, path string, gen generator, n int64, opts seq.Options, stats *sim.TaskStats) (int64, error) {
	f, err := fs.Create(path, hdfs.AnyNode)
	if err != nil {
		return 0, err
	}
	if stats != nil {
		f.SetStats(&stats.IO)
	}
	var cpu *sim.CPUStats
	if stats != nil {
		cpu = &stats.CPU
	}
	w, err := seq.NewWriter(f, path, gen.Schema(), opts, cpu)
	if err != nil {
		return 0, err
	}
	for i := int64(0); i < n; i++ {
		if err := w.Append(gen.Record(i)); err != nil {
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return fs.TotalSize(path), nil
}

// writeTXT materializes n generated records as delimited text.
func writeTXT(fs *hdfs.FileSystem, path string, gen generator, n int64) (int64, error) {
	f, err := fs.Create(path, hdfs.AnyNode)
	if err != nil {
		return 0, err
	}
	w := txt.NewWriter(f)
	for i := int64(0); i < n; i++ {
		if err := w.Write(gen.Record(i)); err != nil {
			return 0, err
		}
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return fs.TotalSize(path), nil
}

// writeRC materializes n generated records as an RCFile.
func writeRC(fs *hdfs.FileSystem, path string, gen generator, n int64, opts rcfile.Options, stats *sim.TaskStats) (int64, error) {
	f, err := fs.Create(path, hdfs.AnyNode)
	if err != nil {
		return 0, err
	}
	if stats != nil {
		f.SetStats(&stats.IO)
	}
	var cpu *sim.CPUStats
	if stats != nil {
		cpu = &stats.CPU
	}
	w, err := rcfile.NewWriter(f, path, gen.Schema(), opts, cpu)
	if err != nil {
		return 0, err
	}
	for i := int64(0); i < n; i++ {
		if err := w.Append(gen.Record(i)); err != nil {
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return fs.TotalSize(path), nil
}

// writeCIF materializes n generated records as a CIF dataset directory.
func writeCIF(fs *hdfs.FileSystem, dir string, gen generator, n int64, opts core.LoadOptions, stats *sim.TaskStats) (int64, error) {
	w, err := core.NewWriter(fs, dir, gen.Schema(), opts, stats)
	if err != nil {
		return 0, err
	}
	for i := int64(0); i < n; i++ {
		if err := w.Append(gen.Record(i)); err != nil {
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return fs.TreeSize(dir), nil
}

// cifVariant names a metadata-column layout from Table 1 and resolves it
// to load options plus the lazy/eager choice.
type cifVariant struct {
	name   string
	layout colfile.Options
	lazy   bool
}

// cifVariants returns the paper's five metadata-column layouts
// (Section 6.3): default, ZLIB/LZO compressed blocks, skip list, and
// dictionary compressed skip list.
func cifVariants() []cifVariant {
	return []cifVariant{
		{name: "CIF", layout: colfile.Options{Layout: colfile.Plain}, lazy: false},
		{name: "CIF-ZLIB", layout: colfile.Options{Layout: colfile.Block, Codec: "zlib"}, lazy: false},
		{name: "CIF-LZO", layout: colfile.Options{Layout: colfile.Block, Codec: "lzo"}, lazy: false},
		{name: "CIF-SL", layout: colfile.Options{Layout: colfile.SkipList}, lazy: true},
		{name: "CIF-DCSL", layout: colfile.Options{Layout: colfile.DCSL}, lazy: true},
	}
}
