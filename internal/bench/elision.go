package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Elision sweeps predicate selectivity over a many-split dataset whose
// filter column is clustered (monotone across the load order, like a
// timestamp in an append-only log), and compares the full pruning pipeline
// against the group-tier-only baseline:
//
//	elision   the scheduler tier drops whole split-directories from
//	          column-file footer statistics before map tasks exist
//	          (core.InputFormat.PlannedSplits), and the reader's file
//	          tier catches whatever the scheduler was not asked about;
//	baseline  scan.SetElision(conf, false): every split-directory becomes
//	          a task whose reader opens cursors and prunes groups with
//	          zone maps — the PR 1 shape this refactor lifts out of the
//	          reader.
//
// The two runs must return identical records; the sweep records how many
// splits were scheduled, the charged I/O, and the modeled time. Elision's
// charged savings are the column-file headers and readahead the baseline's
// pruned-but-opened readers still touch.

// ElisionFractions are the swept match fractions.
var ElisionFractions = []float64{0.0001, 0.001, 0.01, 0.1, 1.0}

// elisionSplits is the number of split-directories in the swept dataset:
// enough that the scheduler tier has real work at every selectivity.
const elisionSplits = 16

// ElisionCell is one selectivity's comparison.
type ElisionCell struct {
	Fraction float64
	// Matches is the number of qualifying records (identical in both runs).
	Matches int64
	// SplitsTotal split-directories exist; SplitsScheduled became map
	// tasks under elision (baseline schedules all of them).
	SplitsTotal     int
	SplitsScheduled int
	// FootersRead is the number of column-file footers the scheduler
	// consulted (uncharged metadata).
	FootersRead int
	// Elision and Baseline are the measured scan costs.
	Elision  ScanCost
	Baseline ScanCost
	// ChargedRatio is Baseline.ChargedBytes / Elision.ChargedBytes.
	ChargedRatio float64
}

// ElisionResult holds the sweep.
type ElisionResult struct {
	Cells   []ElisionCell
	Records int64
}

// Get returns the cell for a fraction.
func (r *ElisionResult) Get(fraction float64) ElisionCell {
	for _, c := range r.Cells {
		if c.Fraction == fraction {
			return c
		}
	}
	return ElisionCell{}
}

// clusteredGen wraps the synthetic generator, replacing int0 with a value
// monotone in the record index: split-directories then cover disjoint int0
// ranges, the regime where whole-file statistics can elide splits. (The
// unmodified synthetic dataset is the adversarial case: int0 is uniform,
// every split spans the full domain, and elision correctly never fires.)
type clusteredGen struct {
	*workload.Synthetic
	n   int64
	idx int // int0's field index, resolved from the schema
}

func (g clusteredGen) Record(i int64) *serde.GenericRecord {
	rec := g.Synthetic.Record(i)
	rec.SetAt(g.idx, int32(1+i*10000/g.n)) // int0's domain is [1, 10000]
	return rec
}

// Elision runs the sweep.
func Elision(cfg Config) (*ElisionResult, error) {
	n := cfg.records(100_000)
	syn := workload.NewSynthetic(cfg.Seed)
	idx := syn.Schema().FieldIndex("int0")
	if idx < 0 {
		return nil, fmt.Errorf("bench: synthetic schema has no int0 column")
	}
	gen := clusteredGen{syn, n, idx}
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)

	opts := core.LoadOptions{
		Default:      colfile.Options{Layout: colfile.SkipList},
		SplitRecords: (n + elisionSplits - 1) / elisionSplits,
	}
	dir := "/elide/cif"
	if _, err := writeCIF(fs, dir, gen, n, opts, nil); err != nil {
		return nil, fmt.Errorf("loading: %w", err)
	}

	res := &ElisionResult{Records: n}
	for _, frac := range ElisionFractions {
		cut := int64(frac * 10000)
		if cut < 1 {
			cut = 1
		}
		pred := scan.Le("int0", cut)

		run := func(elide bool) (sim.TaskStats, scan.PruneReport, int64, error) {
			conf := &mapred.JobConf{InputPaths: []string{dir}}
			core.SetColumns(conf, "str0", "map0")
			scan.SetPredicate(conf, pred)
			scan.SetElision(conf, elide)
			in := &core.InputFormat{}
			splits, report, err := in.PlannedSplits(fs, conf)
			if err != nil {
				return sim.TaskStats{}, report, 0, err
			}
			var total sim.TaskStats
			total.SplitsPruned = int64(report.SplitsPruned)
			total.RecordsPruned = report.RecordsPruned
			var matches int64
			for _, sp := range splits {
				var st sim.TaskStats
				rr, err := in.Open(fs, conf, sp, 0, &st)
				if err != nil {
					return total, report, 0, err
				}
				for {
					_, _, ok, err := rr.Next()
					if err != nil {
						rr.Close()
						return total, report, 0, err
					}
					if !ok {
						break
					}
					matches++
					st.RecordsProcessed++
				}
				if err := rr.Close(); err != nil {
					return total, report, 0, err
				}
				total.Add(st)
			}
			return total, report, matches, nil
		}

		elideSt, report, elideMatches, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("elision at %.4f: %w", frac, err)
		}
		baseSt, _, baseMatches, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("baseline at %.4f: %w", frac, err)
		}
		if elideMatches != baseMatches {
			return nil, fmt.Errorf("at %.4f: elision returned %d records, baseline %d",
				frac, elideMatches, baseMatches)
		}

		cell := ElisionCell{
			Fraction:        frac,
			Matches:         elideMatches,
			SplitsTotal:     report.SplitsTotal,
			SplitsScheduled: report.SplitsTotal - report.SplitsPruned,
			FootersRead:     report.FilesChecked,
			Elision:         scanCost(elideSt, model),
			Baseline:        scanCost(baseSt, model),
		}
		cell.ChargedRatio = ratio(float64(cell.Baseline.ChargedBytes), float64(cell.Elision.ChargedBytes))
		res.Cells = append(res.Cells, cell)
	}

	cfg.printf("Split elision sweep: scheduler-tier pruning vs group-tier-only baseline (%d records, %d split-directories, filter int0 <= K on a clustered column, project str0+map0)\n", n, elisionSplits)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "selectivity\tmatches\tsplits scheduled\tfooters read\telide charged MB\tbase charged MB\tratio\telide modeled\tbase modeled")
		for _, c := range res.Cells {
			fmt.Fprintf(w, "%.2f%%\t%d\t%d/%d\t%d\t%.2f\t%.2f\t%.1fx\t%.3fs\t%.3fs\n",
				c.Fraction*100, c.Matches,
				c.SplitsScheduled, c.SplitsTotal, c.FootersRead,
				float64(c.Elision.ChargedBytes)/(1<<20),
				float64(c.Baseline.ChargedBytes)/(1<<20),
				c.ChargedRatio,
				c.Elision.Seconds, c.Baseline.Seconds)
		}
	})
	cfg.printf("\n")
	return res, nil
}
