package bench

import "testing"

// TestElisionShape is the acceptance gate of the scheduler pruning tier:
// on a multi-split clustered dataset with a selective predicate, fewer
// splits are scheduled than split-directories exist, charged I/O drops
// against the group-tier-only baseline, and the two runs return the same
// records (enforced inside Elision, which fails on mismatch).
func TestElisionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("elision sweep loads a 16-split dataset; skipped in -short")
	}
	res, err := Elision(testCfg(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(ElisionFractions) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(ElisionFractions))
	}

	for _, c := range res.Cells {
		if c.SplitsTotal != elisionSplits {
			t.Fatalf("@%.2f%%: dataset has %d split-directories, want %d", c.Fraction*100, c.SplitsTotal, elisionSplits)
		}
		// Elision never charges more than the baseline.
		if c.Elision.ChargedBytes > c.Baseline.ChargedBytes {
			t.Errorf("@%.2f%%: elision charged %d > baseline %d",
				c.Fraction*100, c.Elision.ChargedBytes, c.Baseline.ChargedBytes)
		}
	}

	// At <= 1% selectivity over a clustered column, whole splits must be
	// elided and charged bytes must genuinely drop.
	for _, frac := range []float64{0.0001, 0.001, 0.01} {
		c := res.Get(frac)
		if c.SplitsScheduled >= c.SplitsTotal {
			t.Errorf("@%.2f%%: %d of %d splits scheduled — nothing elided", frac*100, c.SplitsScheduled, c.SplitsTotal)
		}
		if c.ChargedRatio < 2 {
			t.Errorf("@%.2f%%: charged ratio %.1fx, want >= 2x", frac*100, c.ChargedRatio)
		}
	}

	// At 100% nothing is elidable and elision must cost exactly the
	// baseline (same splits, same reads).
	c := res.Get(1.0)
	if c.SplitsScheduled != c.SplitsTotal {
		t.Errorf("@100%%: %d of %d splits scheduled, want all", c.SplitsScheduled, c.SplitsTotal)
	}
	if c.Elision.ChargedBytes != c.Baseline.ChargedBytes {
		t.Errorf("@100%%: elision charged %d != baseline %d", c.Elision.ChargedBytes, c.Baseline.ChargedBytes)
	}
}
