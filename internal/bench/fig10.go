package bench

import (
	"fmt"
	"hash/fnv"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Fig10Selectivities are the predicate selectivities swept in Appendix B.4.
var Fig10Selectivities = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// Figure10Point is one point of the selectivity sweep.
type Figure10Point struct {
	Format      string // "CIF" or "CIF-SL"
	Selectivity float64
	Seconds     float64
}

// Figure10Result holds both series.
type Figure10Result struct {
	Points      []Figure10Point
	ScaleFactor float64
}

// Get returns the point for a format and selectivity.
func (r *Figure10Result) Get(format string, sel float64) Figure10Point {
	for _, p := range r.Points {
		if p.Format == format && p.Selectivity == sel {
			return p
		}
	}
	return Figure10Point{}
}

// selMatch implements a tunable predicate over the synthetic string
// column: a record matches when the hash of str0 falls below the
// selectivity threshold. It needs no workload changes and is deterministic.
func selMatch(s string, sel float64) bool {
	h := fnv.New32a()
	h.Write([]byte(s))
	return float64(h.Sum32()%10000) < sel*10000
}

// Figure10 reproduces Appendix B.4: the benefit of skip lists and lazy
// deserialization as predicate selectivity varies, on the Section 6.2
// single-node setting and dataset. The job aggregates the map-typed
// column's values for records whose string column matches. The CIF arm is
// eager (its line is flat); CIF-SL is lazy over a skip list, so it wins at
// low selectivity and converges to CIF at 100%.
func Figure10(cfg Config) (*Figure10Result, error) {
	n := cfg.records(120_000)
	gen := workload.NewSynthetic(cfg.Seed)
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)

	res := &Figure10Result{}
	// The CIF arm is eager (the paper's default construction, which is why
	// its Figure 10 line is flat); CIF-SL is lazy over a skip list.
	arms := []struct {
		name   string
		layout colfile.Options
		lazy   bool
	}{
		{"CIF", colfile.Options{Layout: colfile.Plain}, false},
		{"CIF-SL", colfile.Options{Layout: colfile.SkipList}, true},
	}
	for _, arm := range arms {
		fs := newFS(cluster, cfg.Seed, true)
		opts := core.LoadOptions{
			SplitRecords: n/16 + 1,
			PerColumn:    map[string]colfile.Options{"map0": arm.layout},
		}
		if _, err := writeCIF(fs, "/f10/cif", gen, n, opts, nil); err != nil {
			return nil, err
		}
		if res.ScaleFactor == 0 {
			res.ScaleFactor = float64(Figure7Target) / float64(fs.TreeSize("/f10/cif"))
		}

		for _, sel := range Fig10Selectivities {
			sel := sel
			conf := &mapred.JobConf{InputPaths: []string{"/f10/cif"}}
			core.SetColumns(conf, "str0", "map0")
			core.SetLazy(conf, arm.lazy)
			var sum int64
			total, _, err := scanSplits(fs, &core.InputFormat{}, conf, 0, func(rec serde.Record) error {
				s, err := rec.Get("str0")
				if err != nil {
					return err
				}
				if !selMatch(s.(string), sel) {
					return nil
				}
				m, err := rec.Get("map0")
				if err != nil {
					return err
				}
				for _, v := range m.(map[string]any) {
					sum += int64(v.(int32))
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s sel=%.1f: %w", arm.name, sel, err)
			}
			_ = sum
			total.Scale(res.ScaleFactor)
			res.Points = append(res.Points, Figure10Point{
				Format:      arm.name,
				Selectivity: sel,
				Seconds:     model.ScanSeconds(total),
			})
		}
	}

	cfg.printf("Figure 10: lazy materialization and skip lists vs selectivity (single-node scan sec)\n")
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "selectivity\tCIF\tCIF-SL")
		for _, sel := range Fig10Selectivities {
			fmt.Fprintf(w, "%.0f%%\t%.0f\t%.0f\n", sel*100,
				res.Get("CIF", sel).Seconds, res.Get("CIF-SL", sel).Seconds)
		}
	})
	cfg.printf("\n")
	return res, nil
}
