package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/formats/seq"
	"colmr/internal/mapred"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Fig11Widths are the record widths (column counts) of Appendix B.5.
var Fig11Widths = []int{20, 40, 80}

// Fig11Target is the appendix's dataset size (~60 GB per width).
const Fig11Target = 60 * sim.GB

// Figure11Point is one bar of Figure 11: effective read bandwidth for a
// format/projection pair at a record width.
type Figure11Point struct {
	Series  string // SEQ, CIF_1, CIF_10%, CIF_all, RCFile_1, RCFile_10%, RCFile_all
	Columns int
	MBps    float64
}

// Figure11Result holds all series.
type Figure11Result struct {
	Points []Figure11Point
}

// Get returns the point for a series and width.
func (r *Figure11Result) Get(series string, columns int) Figure11Point {
	for _, p := range r.Points {
		if p.Series == series && p.Columns == columns {
			return p
		}
	}
	return Figure11Point{}
}

// Figure11 reproduces Appendix B.5: read bandwidth as the number of
// columns per record grows (20/40/80), for SEQ, CIF, and RCFile with 16 MB
// row groups, projecting 1 column, 10% of columns, or all columns.
// Bandwidth is the projected columns' logical bytes divided by scan time,
// so formats that must fetch unwanted bytes to deliver one column (RCFile)
// degrade as records widen, while CIF stays flat.
func Figure11(cfg Config) (*Figure11Result, error) {
	baseRecords := cfg.records(100_000)
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	res := &Figure11Result{}

	for _, cols := range Fig11Widths {
		// Keep total dataset bytes comparable across widths, like the
		// appendix's ~60 GB datasets: fewer records for wider rows.
		n := baseRecords * 20 / int64(cols)
		gen := workload.NewWide(cfg.Seed, cols)
		fs := newFS(cluster, cfg.Seed, true)

		seqBytes, err := writeSEQ(fs, "/f11/data.seq", gen, n, seqOptsNone(), nil)
		if err != nil {
			return nil, err
		}
		if _, err := writeRC(fs, "/f11/data.rc", gen, n, rcfile.Options{RowGroupBytes: 16 << 20}, nil); err != nil {
			return nil, err
		}
		if _, err := writeCIF(fs, "/f11/cif", gen, n, core.LoadOptions{SplitRecords: n/2 + 1}, nil); err != nil {
			return nil, err
		}
		k := float64(Fig11Target) / float64(seqBytes)

		// Projections: 1 column, 10% of columns, all.
		names := gen.Schema().FieldNames()
		projections := []struct {
			label string
			cols  []string
		}{
			{"1", names[:1]},
			{"10%", names[:cols/10]},
			{"all", nil},
		}

		// Logical bytes per column (uniform 30-char strings): measured
		// from the CIF column files.
		colBytes := fs.TreeSize("/f11/cif") / int64(cols)

		record := func(series string, st sim.TaskStats, projectedCols int) {
			st.Scale(k)
			seconds := model.ScanSeconds(st)
			projected := float64(colBytes*int64(projectedCols)) * k
			res.Points = append(res.Points, Figure11Point{
				Series:  series,
				Columns: cols,
				MBps:    mbps(projected / seconds),
			})
		}

		// SEQ reads everything regardless of projection: one series.
		st, _, err := scanSplits(fs, &seq.InputFormat{}, &mapred.JobConf{InputPaths: []string{"/f11/data.seq"}}, 0, nil)
		if err != nil {
			return nil, err
		}
		record("SEQ", st, cols)

		for _, proj := range projections {
			nProj := cols
			if proj.cols != nil {
				nProj = len(proj.cols)
			}
			conf := &mapred.JobConf{InputPaths: []string{"/f11/cif"}}
			if proj.cols != nil {
				core.SetColumns(conf, proj.cols...)
			}
			st, _, err := scanSplits(fs, &core.InputFormat{}, conf, 0, nil)
			if err != nil {
				return nil, err
			}
			record("CIF_"+proj.label, st, nProj)

			rconf := &mapred.JobConf{InputPaths: []string{"/f11/data.rc"}}
			if proj.cols != nil {
				rcfile.SetColumns(rconf, proj.cols...)
			}
			st, _, err = scanSplits(fs, &rcfile.InputFormat{}, rconf, 0, nil)
			if err != nil {
				return nil, err
			}
			record("RCFile_"+proj.label, st, nProj)
		}
	}

	cfg.printf("Figure 11: read bandwidth (MB/s of projected data) vs record width\n")
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "columns\tSEQ\tCIF_1\tCIF_10%\tCIF_all\tRCFile_1\tRCFile_10%\tRCFile_all")
		for _, cols := range Fig11Widths {
			fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n", cols,
				res.Get("SEQ", cols).MBps,
				res.Get("CIF_1", cols).MBps,
				res.Get("CIF_10%", cols).MBps,
				res.Get("CIF_all", cols).MBps,
				res.Get("RCFile_1", cols).MBps,
				res.Get("RCFile_10%", cols).MBps,
				res.Get("RCFile_all", cols).MBps)
		}
	})
	cfg.printf("\n")
	return res, nil
}
