package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/formats/seq"
	"colmr/internal/formats/txt"
	"colmr/internal/mapred"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Figure7Target is the paper's dataset size for the Section 6.2
// microbenchmark: 57 GB in SEQ format.
const Figure7Target = 57 * sim.GB

// Fig7Projections are the scan projections of Figure 7.
var Fig7Projections = []struct {
	Name    string
	Columns []string
}{
	{"AllColumns", nil},
	{"1 Integer", []string{"int0"}},
	{"1 String", []string{"str0"}},
	{"1 Map", []string{"map0"}},
	{"1 String+1 Map", []string{"str0", "map0"}},
}

// Figure7Cell is one bar of Figure 7.
type Figure7Cell struct {
	Format     string
	Projection string
	Seconds    float64
	ChargedGB  float64
}

// Figure7Result holds the microbenchmark matrix.
type Figure7Result struct {
	Cells []Figure7Cell
	// SeqBytes is the measured laptop-scale SEQ size; ScaleFactor
	// extrapolates it to Figure7Target.
	SeqBytes    int64
	ScaleFactor float64
}

// Get returns the cell for a format/projection pair.
func (r *Figure7Result) Get(format, projection string) Figure7Cell {
	for _, c := range r.Cells {
		if c.Format == format && c.Projection == projection {
			return c
		}
	}
	return Figure7Cell{}
}

// Figure7 reproduces the Section 6.2 microbenchmark: single-node scan times
// for TXT, SEQ, CIF, and RCFile (compressed and uncompressed) across five
// projections of the synthetic dataset.
func Figure7(cfg Config) (*Figure7Result, error) {
	n := cfg.records(400_000)
	gen := workload.NewSynthetic(cfg.Seed)
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)

	seqBytes, err := writeSEQ(fs, "/f7/data.seq", gen, n, seq.Options{Mode: seq.ModeNone}, nil)
	if err != nil {
		return nil, err
	}
	if _, err := writeTXT(fs, "/f7/data.txt", gen, n); err != nil {
		return nil, err
	}
	if _, err := writeRC(fs, "/f7/data.rc", gen, n, rcfile.Options{RowGroupBytes: 4 << 20}, nil); err != nil {
		return nil, err
	}
	if _, err := writeRC(fs, "/f7/datac.rc", gen, n, rcfile.Options{Codec: "zlib", RowGroupBytes: 4 << 20}, nil); err != nil {
		return nil, err
	}
	if _, err := writeCIF(fs, "/f7/cif", gen, n, core.LoadOptions{SplitRecords: n/2 + 1}, nil); err != nil {
		return nil, err
	}

	k := float64(Figure7Target) / float64(seqBytes)
	res := &Figure7Result{SeqBytes: seqBytes, ScaleFactor: k}

	scan := func(format string, in mapred.InputFormat, conf *mapred.JobConf, projection string) error {
		st, _, err := scanSplits(fs, in, conf, 0, nil)
		if err != nil {
			return fmt.Errorf("%s %s: %w", format, projection, err)
		}
		st.Scale(k)
		res.Cells = append(res.Cells, Figure7Cell{
			Format:     format,
			Projection: projection,
			Seconds:    model.ScanSeconds(st),
			ChargedGB:  gb(st.IO.TotalChargedBytes()),
		})
		return nil
	}

	// TXT and SEQ read and deserialize everything no matter the
	// projection, so one scan covers all projections (the paper reports a
	// single value for each).
	if err := scan("TXT", &txt.InputFormat{Schema: gen.Schema()}, &mapred.JobConf{InputPaths: []string{"/f7/data.txt"}}, "AllColumns"); err != nil {
		return nil, err
	}
	if err := scan("SEQ", &seq.InputFormat{}, &mapred.JobConf{InputPaths: []string{"/f7/data.seq"}}, "AllColumns"); err != nil {
		return nil, err
	}

	for _, proj := range Fig7Projections {
		conf := &mapred.JobConf{InputPaths: []string{"/f7/cif"}}
		if proj.Columns != nil {
			core.SetColumns(conf, proj.Columns...)
		}
		if err := scan("CIF", &core.InputFormat{}, conf, proj.Name); err != nil {
			return nil, err
		}

		for _, rc := range []struct{ name, path string }{
			{"RCFile", "/f7/data.rc"},
			{"RCFile-comp", "/f7/datac.rc"},
		} {
			conf := &mapred.JobConf{InputPaths: []string{rc.path}}
			if proj.Columns != nil {
				rcfile.SetColumns(conf, proj.Columns...)
			}
			if err := scan(rc.name, &rcfile.InputFormat{}, conf, proj.Name); err != nil {
				return nil, err
			}
		}
	}

	cfg.printf("Figure 7: scan time (sec, modeled single node, %0.0f GB dataset)\n", float64(Figure7Target)/float64(sim.GB))
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "projection\tTXT\tSEQ\tCIF\tRCFile\tRCFile-comp")
		for _, p := range Fig7Projections {
			txtS, seqS := res.Get("TXT", "AllColumns").Seconds, res.Get("SEQ", "AllColumns").Seconds
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n", p.Name,
				txtS, seqS,
				res.Get("CIF", p.Name).Seconds,
				res.Get("RCFile", p.Name).Seconds,
				res.Get("RCFile-comp", p.Name).Seconds)
		}
	})
	cfg.printf("\n")
	return res, nil
}
