package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Figure8Point is one (type, fraction) point of the deserialization
// microbenchmark: read bandwidth through the boxed (Java-analogue) and view
// (C++-analogue) decode paths.
type Figure8Point struct {
	Kind     workload.TypedKind
	Fraction float64
	// BoxedMBps / ViewMBps are effective read bandwidths in MB/s.
	BoxedMBps float64
	ViewMBps  float64
}

// Figure8Result holds the bandwidth grid.
type Figure8Result struct {
	Points []Figure8Point
}

// Get returns the point for a kind and fraction.
func (r *Figure8Result) Get(kind workload.TypedKind, f float64) Figure8Point {
	for _, p := range r.Points {
		if p.Kind == kind && p.Fraction == f {
			return p
		}
	}
	return Figure8Point{}
}

// Fig8Fractions are the typed-data fractions swept in Appendix B.1.
var Fig8Fractions = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// Figure8 reproduces Appendix B.1 (Figure 8): scan bandwidth over
// memory-resident 1000-byte records as the fraction of typed data varies,
// for integers, doubles, and maps, decoded boxed (per-value objects, the
// Java path) and as views (no materialization, the C++ path). The paper's
// headline: boxed map decoding drops below SATA disk bandwidth past f=60%.
func Figure8(cfg Config) (*Figure8Result, error) {
	n := cfg.records(2000)
	model := sim.DefaultModel()
	res := &Figure8Result{}

	for _, kind := range []workload.TypedKind{workload.TypedInts, workload.TypedDoubles, workload.TypedMaps} {
		for _, f := range Fig8Fractions {
			gen := workload.NewTypedFrac(cfg.Seed, kind, f)
			// Encode once (the file is memory-resident: no I/O charges,
			// exactly as in the appendix, which warms the cache first).
			var bufs [][]byte
			var totalBytes int64
			for i := int64(0); i < n; i++ {
				enc, err := serde.EncodeRecord(gen.Record(i))
				if err != nil {
					return nil, err
				}
				bufs = append(bufs, enc)
				totalBytes += int64(len(enc))
			}

			var boxed sim.CPUStats
			for _, b := range bufs {
				if _, err := serde.NewDecoder(b, &boxed).Record(gen.Schema()); err != nil {
					return nil, err
				}
			}
			var view sim.CPUStats
			for _, b := range bufs {
				if err := serde.NewDecoder(b, &view).Scan(gen.Schema()); err != nil {
					return nil, err
				}
			}
			res.Points = append(res.Points, Figure8Point{
				Kind:      kind,
				Fraction:  f,
				BoxedMBps: mbps(float64(totalBytes) / model.CPUSeconds(boxed)),
				ViewMBps:  mbps(float64(totalBytes) / model.ViewCPUSeconds(view)),
			})
		}
	}

	cfg.printf("Figure 8: deserialization read bandwidth (MB/s) vs fraction of typed data\n")
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "f\tboxed ints\tboxed doubles\tboxed maps\tview ints\tview doubles\tview maps")
		for _, f := range Fig8Fractions {
			fmt.Fprintf(w, "%.1f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n", f,
				res.Get(workload.TypedInts, f).BoxedMBps,
				res.Get(workload.TypedDoubles, f).BoxedMBps,
				res.Get(workload.TypedMaps, f).BoxedMBps,
				res.Get(workload.TypedInts, f).ViewMBps,
				res.Get(workload.TypedDoubles, f).ViewMBps,
				res.Get(workload.TypedMaps, f).ViewMBps)
		}
	})
	cfg.printf("\n")
	return res, nil
}
