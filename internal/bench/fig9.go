package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/mapred"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Fig9RowGroups are the RCFile row-group sizes swept in Appendix B.2.
var Fig9RowGroups = []int{1 << 20, 4 << 20, 16 << 20}

// Figure9Cell is one bar of Figure 9.
type Figure9Cell struct {
	Format     string // "CIF", "1M RCFile", "4M RCFile", "16M RCFile"
	Projection string
	Seconds    float64
	ChargedGB  float64
}

// Figure9Result holds the row-group tuning matrix.
type Figure9Result struct {
	Cells       []Figure9Cell
	ScaleFactor float64
}

// Get returns the cell for a format/projection pair.
func (r *Figure9Result) Get(format, projection string) Figure9Cell {
	for _, c := range r.Cells {
		if c.Format == format && c.Projection == projection {
			return c
		}
	}
	return Figure9Cell{}
}

// Figure9 reproduces Appendix B.2: RCFile row-group size tuning (1, 4,
// 16 MB) against CIF on the synthetic dataset's scan projections. Larger
// row groups eliminate more I/O for projected scans, but never approach
// CIF (the paper: 16.5/8.5/4.5 GB read vs CIF's 415 MB for one integer).
func Figure9(cfg Config) (*Figure9Result, error) {
	n := cfg.records(400_000)
	gen := workload.NewSynthetic(cfg.Seed)
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)

	seqBytes, err := writeSEQ(fs, "/f9/ref.seq", gen, n, seqOptsNone(), nil)
	if err != nil {
		return nil, err
	}
	k := float64(Figure7Target) / float64(seqBytes)
	res := &Figure9Result{ScaleFactor: k}

	if _, err := writeCIF(fs, "/f9/cif", gen, n, core.LoadOptions{SplitRecords: n/2 + 1}, nil); err != nil {
		return nil, err
	}
	for _, rg := range Fig9RowGroups {
		path := fmt.Sprintf("/f9/rc%dm.rc", rg>>20)
		if _, err := writeRC(fs, path, gen, n, rcfile.Options{RowGroupBytes: rg}, nil); err != nil {
			return nil, err
		}
	}

	for _, proj := range Fig7Projections {
		conf := &mapred.JobConf{InputPaths: []string{"/f9/cif"}}
		if proj.Columns != nil {
			core.SetColumns(conf, proj.Columns...)
		}
		st, _, err := scanSplits(fs, &core.InputFormat{}, conf, 0, nil)
		if err != nil {
			return nil, err
		}
		st.Scale(k)
		res.Cells = append(res.Cells, Figure9Cell{
			Format: "CIF", Projection: proj.Name,
			Seconds: model.ScanSeconds(st), ChargedGB: gb(st.IO.TotalChargedBytes()),
		})

		for _, rg := range Fig9RowGroups {
			name := fmt.Sprintf("%dM RCFile", rg>>20)
			conf := &mapred.JobConf{InputPaths: []string{fmt.Sprintf("/f9/rc%dm.rc", rg>>20)}}
			if proj.Columns != nil {
				rcfile.SetColumns(conf, proj.Columns...)
			}
			st, _, err := scanSplits(fs, &rcfile.InputFormat{}, conf, 0, nil)
			if err != nil {
				return nil, err
			}
			st.Scale(k)
			res.Cells = append(res.Cells, Figure9Cell{
				Format: name, Projection: proj.Name,
				Seconds: model.ScanSeconds(st), ChargedGB: gb(st.IO.TotalChargedBytes()),
			})
		}
	}

	cfg.printf("Figure 9: RCFile row-group tuning vs CIF (scan sec / GB read)\n")
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "projection\tCIF\t16M RCFile\t4M RCFile\t1M RCFile")
		for _, p := range Fig7Projections {
			fmt.Fprintf(w, "%s\t%.0fs/%.1fGB\t%.0fs/%.1fGB\t%.0fs/%.1fGB\t%.0fs/%.1fGB\n", p.Name,
				res.Get("CIF", p.Name).Seconds, res.Get("CIF", p.Name).ChargedGB,
				res.Get("16M RCFile", p.Name).Seconds, res.Get("16M RCFile", p.Name).ChargedGB,
				res.Get("4M RCFile", p.Name).Seconds, res.Get("4M RCFile", p.Name).ChargedGB,
				res.Get("1M RCFile", p.Name).Seconds, res.Get("1M RCFile", p.Name).ChargedGB)
		}
	})
	cfg.printf("\n")
	return res, nil
}
