package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/ingest"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Ingest sweeps the streaming write path: arrival rate x compaction cadence
// x recrawl fraction over the crawl workload. Each cell replays the same
// arrival stream twice —
//
//	streamed   through ingest.Ingester: memtable flushes into fresh
//	           time-partitioned partitions, recrawl upserts resolved by
//	           position deletes, compaction (cadence > 0) folding the
//	           fresh partitions into large statistics-rich ones;
//	bulk       the stream's final record set (latest version per URL, in
//	           last-arrival order) loaded once through core.NewWriter —
//	           the batch-era control the streamed dataset is judged
//	           against.
//
// Both datasets then serve an identical selective query (the most recent
// ~10% of fetchTimes, projecting url), which must return the same matches;
// for compacted cells the streamed dataset must prune at least as many
// records from zone statistics as the bulk control — compaction's whole
// point is that streamed data converges to bulk-loaded statistics quality.
//
// The content arm exercises adaptive readahead (PR 2) inside the
// multi-KB content column: the same selective predicate projecting content
// jumps between qualifying record groups, shrinking the refill window, while
// the dense control (no pushdown, filter in the visit function) streams the
// whole column at full readahead. The gap is the within-file I/O the
// selective path avoided.

// IngestRates are the swept mean arrival rates (arrivals per modeled second).
var IngestRates = []float64{100, 400}

// IngestCadences are the swept compaction cadences in flushes per
// compaction; 0 never compacts, leaving every partition fresh
// (merge-on-read at scan time).
var IngestCadences = []int{0, 4}

// IngestRecrawls are the swept recrawl fractions.
var IngestRecrawls = []float64{0, 0.3}

// IngestCell is one (rate, cadence, recrawl) run.
type IngestCell struct {
	Rate    float64
	Cadence int
	Recrawl float64
	// Arrivals is the stream length; LiveRows the distinct URLs surviving
	// it; Upserts the superseded versions the ingest path retired.
	Arrivals int64
	LiveRows int64
	Upserts  int64
	// FlushedFiles / Generations / CompactionBytes profile the write path.
	FlushedFiles    int64
	Generations     int64
	CompactionBytes int64
	// WriteAmp is ingest bytes written (flushes + compaction rewrites) over
	// the bulk control's bytes written.
	WriteAmp float64
	// Streamed / Bulk are the selective url query over each dataset;
	// FreshScanned is the fresh partitions the streamed scan merged on read.
	Streamed     ScanCost
	Bulk         ScanCost
	FreshScanned int64
	// ContentSelective / ContentDense are the content-column readahead
	// arms over the streamed dataset; ReadaheadSaved is the charged bytes
	// the selective path avoided within the content files.
	ContentSelective ScanCost
	ContentDense     ScanCost
	ReadaheadSaved   int64
}

// IngestResult holds the sweep.
type IngestResult struct {
	Cells    []IngestCell
	Arrivals int64
}

// Get returns the cell for a (rate, cadence, recrawl) triple.
func (r *IngestResult) Get(rate float64, cadence int, recrawl float64) IngestCell {
	for _, c := range r.Cells {
		if c.Rate == rate && c.Cadence == cadence && c.Recrawl == recrawl {
			return c
		}
	}
	return IngestCell{}
}

// ingestLoad is the shared load geometry: skip-listed scalars, DCSL on the
// metadata map, splits and record groups small enough that benchmark-scale
// datasets (including the -short test's) still have several groups to
// prune.
func ingestLoad() core.LoadOptions {
	return core.LoadOptions{
		Default:      colfile.Options{Layout: colfile.SkipList, StatsEvery: 64},
		PerColumn:    map[string]colfile.Options{"metadata": {Layout: colfile.DCSL, StatsEvery: 64}},
		SplitRecords: 512,
	}
}

// Ingest runs the sweep.
func Ingest(cfg Config) (*IngestResult, error) {
	n := cfg.records(2500)
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	res := &IngestResult{Arrivals: n}

	for _, rate := range IngestRates {
		for _, cadence := range IngestCadences {
			for _, recrawl := range IngestRecrawls {
				cell, err := ingestCell(cfg, cluster, model, n, rate, cadence, recrawl)
				if err != nil {
					return nil, fmt.Errorf("ingest rate=%g cadence=%d recrawl=%g: %w",
						rate, cadence, recrawl, err)
				}
				res.Cells = append(res.Cells, *cell)
			}
		}
	}

	cfg.printf("Streaming ingest sweep: rate x compaction cadence x recrawl (%d arrivals/cell, crawl schema, query = most recent 10%% of fetchTimes)\n", n)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "rate/s\tcadence\trecrawl\tlive\tupserts\tfiles\tcompact MB\twrite amp\tstream charged MB\tbulk charged MB\tpruned s/b\tfresh\tcontent sel MB\tcontent dense MB\treadahead saved MB")
		for _, c := range res.Cells {
			fmt.Fprintf(w, "%.0f\t%d\t%.1f\t%d\t%d\t%d\t%.2f\t%.2fx\t%.2f\t%.2f\t%d/%d\t%d\t%.2f\t%.2f\t%.2f\n",
				c.Rate, c.Cadence, c.Recrawl, c.LiveRows, c.Upserts,
				c.FlushedFiles, float64(c.CompactionBytes)/(1<<20), c.WriteAmp,
				float64(c.Streamed.ChargedBytes)/(1<<20),
				float64(c.Bulk.ChargedBytes)/(1<<20),
				c.Streamed.RecordsPruned, c.Bulk.RecordsPruned,
				c.FreshScanned,
				float64(c.ContentSelective.ChargedBytes)/(1<<20),
				float64(c.ContentDense.ChargedBytes)/(1<<20),
				float64(c.ReadaheadSaved)/(1<<20))
		}
	})
	cfg.printf("\n")
	return res, nil
}

func ingestCell(cfg Config, cluster sim.ClusterConfig, model sim.CostModel, n int64, rate float64, cadence int, recrawl float64) (*IngestCell, error) {
	fs := newFS(cluster, cfg.Seed, true)
	stream := workload.NewArrivalStream(workload.ArrivalOptions{
		// Content must outsize the 1MB readahead window per split even at
		// the -short test's scale, or the first refill swallows the whole
		// file and adaptive shrink has nothing left to save.
		Crawl:           workload.CrawlOptions{Seed: cfg.Seed, ContentBytes: 6000, Inlinks: 2},
		Seed:            cfg.Seed,
		RatePerSec:      rate,
		RecrawlFraction: recrawl,
	})
	schema := stream.Crawl().Schema()
	urlI := schema.FieldIndex("url")

	const streamed = "/ingest/streamed"
	var istats sim.TaskStats
	ing, err := ingest.New(fs, ingest.Options{
		Dataset:         streamed,
		Schema:          schema,
		Key:             "url",
		TimeColumn:      "fetchTime",
		BucketMillis:    4000,
		MemtableRecords: 256,
		CompactEvery:    cadence,
		Load:            ingestLoad(),
		Stats:           &istats,
	})
	if err != nil {
		return nil, err
	}

	// Replay the stream, tracking the final record set: latest version per
	// URL, positioned at its last arrival — the order a bulk load of "what
	// the stream left behind" would use.
	type slot struct{ rec *serde.GenericRecord }
	var order []*slot
	last := map[string]*slot{}
	var firstMs, lastMs int64
	for i := int64(0); i < n; i++ {
		a := stream.Next()
		if i == 0 {
			firstMs = a.Millis
		}
		lastMs = a.Millis
		if err := ing.Append(a.Rec); err != nil {
			return nil, err
		}
		key := a.Rec.GetAt(urlI).(string)
		if s := last[key]; s != nil {
			s.rec = nil
		}
		s := &slot{rec: a.Rec}
		last[key] = s
		order = append(order, s)
	}
	if err := ing.Flush(); err != nil {
		return nil, err
	}
	if cadence > 0 {
		if err := ing.Compact(); err != nil {
			return nil, err
		}
		if err := ing.GC(); err != nil {
			return nil, err
		}
	}

	// The bulk control: the same final set loaded batch-style.
	const bulk = "/ingest/bulk"
	var bstats sim.TaskStats
	w, err := core.NewWriter(fs, bulk, schema, ingestLoad(), &bstats)
	if err != nil {
		return nil, err
	}
	var live int64
	for _, s := range order {
		if s.rec == nil {
			continue
		}
		live++
		if err := w.Append(s.rec); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}

	cell := &IngestCell{
		Rate:            rate,
		Cadence:         cadence,
		Recrawl:         recrawl,
		Arrivals:        n,
		LiveRows:        live,
		Upserts:         istats.UpsertsResolved,
		FlushedFiles:    istats.FlushedFiles,
		Generations:     ing.Generation(),
		CompactionBytes: istats.CompactionBytes,
		WriteAmp:        ratio(float64(istats.IO.BytesWritten), float64(bstats.IO.BytesWritten)),
	}
	if cell.Upserts != n-live {
		return nil, fmt.Errorf("resolved %d upserts, stream superseded %d", cell.Upserts, n-live)
	}

	// The selective query: the most recent ~10% of fetchTimes.
	cutoff := firstMs + (lastMs-firstMs)*9/10
	pred := scan.Gt("fetchTime", cutoff)
	urlScan := func(dir string) (sim.TaskStats, int64, error) {
		conf := &mapred.JobConf{InputPaths: []string{dir}}
		core.SetColumns(conf, "url")
		scan.SetPredicate(conf, pred)
		return scanSplits(fs, &core.InputFormat{}, conf, 0, nil)
	}
	sSt, sMatches, err := urlScan(streamed)
	if err != nil {
		return nil, err
	}
	bSt, bMatches, err := urlScan(bulk)
	if err != nil {
		return nil, err
	}
	if sMatches != bMatches {
		return nil, fmt.Errorf("streamed scan matched %d records, bulk %d", sMatches, bMatches)
	}
	cell.Streamed = scanCost(sSt, model)
	cell.Bulk = scanCost(bSt, model)
	cell.FreshScanned = sSt.FreshPartitionsScanned
	if cadence > 0 {
		if cell.FreshScanned != 0 {
			return nil, fmt.Errorf("compacted dataset scanned %d fresh partitions", cell.FreshScanned)
		}
		// Compaction's acceptance bar: streamed-then-compacted data prunes
		// at least as well as the bulk-loaded control.
		if cell.Streamed.RecordsPruned < cell.Bulk.RecordsPruned {
			return nil, fmt.Errorf("compacted scan pruned %d records, bulk control %d",
				cell.Streamed.RecordsPruned, cell.Bulk.RecordsPruned)
		}
	}

	// The content arm: same predicate projecting the multi-KB content
	// column (pushdown + adaptive readahead) vs the dense control that
	// streams content for every row and filters in the visit function.
	selConf := &mapred.JobConf{InputPaths: []string{streamed}}
	core.SetColumns(selConf, "content")
	scan.SetPredicate(selConf, pred)
	selSt, selMatches, err := scanSplits(fs, &core.InputFormat{}, selConf, 0, nil)
	if err != nil {
		return nil, err
	}
	if selMatches != sMatches {
		return nil, fmt.Errorf("content scan matched %d records, url scan %d", selMatches, sMatches)
	}
	denseConf := &mapred.JobConf{InputPaths: []string{streamed}}
	core.SetColumns(denseConf, "content", "fetchTime")
	var denseMatches int64
	denseSt, _, err := scanSplits(fs, &core.InputFormat{}, denseConf, 0, func(rec serde.Record) error {
		v, err := rec.Get("fetchTime")
		if err != nil {
			return err
		}
		if v.(int64) > cutoff {
			denseMatches++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if denseMatches != sMatches {
		return nil, fmt.Errorf("dense content scan matched %d records, url scan %d", denseMatches, sMatches)
	}
	cell.ContentSelective = scanCost(selSt, model)
	cell.ContentDense = scanCost(denseSt, model)
	cell.ReadaheadSaved = cell.ContentDense.ChargedBytes - cell.ContentSelective.ChargedBytes
	return cell, nil
}
