package bench

import "testing"

// TestIngestSweepShape is the acceptance gate of the streaming write path:
// every cell's streamed dataset answers the selective query with the same
// matches as its bulk control (checked inside Ingest), compacted cells
// prune at least as well as bulk and scan zero fresh partitions (also
// checked inside), and across the sweep recrawls resolve upserts, cadence-0
// cells exercise merge-on-read, and the content column's pushdown +
// adaptive readahead saves real charged bytes against the dense control.
func TestIngestSweepShape(t *testing.T) {
	scale := 0.4
	if testing.Short() {
		scale = 0.15
	}
	res, err := Ingest(testCfg(scale))
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(IngestRates) * len(IngestCadences) * len(IngestRecrawls)
	if len(res.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res.Cells), wantCells)
	}

	for _, c := range res.Cells {
		if c.FlushedFiles == 0 || c.Generations == 0 {
			t.Errorf("cell %+v: write path never flushed (%d files, gen %d)",
				c, c.FlushedFiles, c.Generations)
		}
		if c.Recrawl == 0 && c.Upserts != 0 {
			t.Errorf("rate %g cadence %d: resolved %d upserts with no recrawls",
				c.Rate, c.Cadence, c.Upserts)
		}
		if c.Recrawl > 0 && c.Upserts == 0 {
			t.Errorf("rate %g cadence %d recrawl %g: no upserts resolved",
				c.Rate, c.Cadence, c.Recrawl)
		}
		if c.Cadence == 0 {
			if c.FreshScanned == 0 {
				t.Errorf("rate %g recrawl %g: cadence-0 scan read no fresh partitions",
					c.Rate, c.Recrawl)
			}
			if c.CompactionBytes != 0 {
				t.Errorf("rate %g recrawl %g: cadence 0 wrote %d compaction bytes",
					c.Rate, c.Recrawl, c.CompactionBytes)
			}
		} else {
			if c.CompactionBytes == 0 {
				t.Errorf("rate %g recrawl %g: cadence %d never compacted",
					c.Rate, c.Recrawl, c.Cadence)
			}
			if c.WriteAmp <= 1 {
				t.Errorf("rate %g recrawl %g: compacting cell write amp %.2fx, want > 1x",
					c.Rate, c.Recrawl, c.WriteAmp)
			}
		}
		if c.ReadaheadSaved <= 0 {
			t.Errorf("rate %g cadence %d recrawl %g: selective content scan saved %d bytes vs dense",
				c.Rate, c.Cadence, c.Recrawl, c.ReadaheadSaved)
		}
	}
}
