package bench

import (
	"fmt"
	"math"
	"math/rand"
	"text/tabwriter"

	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Planning measures the cost-based planner end to end: the CFS4 histogram
// and bloom-fill statistics feed scan.EstimateFraction, the estimate drives
// the eager-vs-lazy and task-sizing choices, and the sweep prices the
// chosen plan against both forced alternatives on identical data.
//
// The sweep crosses value skew with predicate shape. The filter column is
// str1 rewritten to a 64-value tag domain under three distributions:
//
//	uniform    every tag equally likely — 1/Distinct is already right,
//	           histograms must not make it worse;
//	zipf       a heavy head (tag 0 alone is a large fraction) — the case
//	           equi-depth degenerate buckets exist for, where 1/Distinct
//	           is off by an order of magnitude;
//	clustered  tags sorted by record index — zone maps elide whole
//	           directories and the estimate must price only survivors.
//
// Each cell records estimated vs true selectivity (the accuracy half) and
// the modeled scan seconds for the planner's pick vs forced-eager and
// forced-lazy (the decision half). TestPlanningShape pins chosen <= forced
// on every cell and bounds the estimation error.

// PlanningSkews are the value distributions the sweep crosses.
var PlanningSkews = []string{"uniform", "zipf", "clustered"}

// planningSplits is the number of split-directories per dataset.
const planningSplits = 16

// planningTags is the filter column's domain cardinality.
const planningTags = 64

// planTag renders tag v; zero-padding keeps lexicographic order numeric.
func planTag(v int64) string { return fmt.Sprintf("tag-%020d", v) }

// planningTagValues generates n tag indexes under the named skew.
func planningTagValues(seed int64, skew string, n int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]int64, n)
	switch skew {
	case "uniform":
		for i := range vals {
			vals[i] = int64(rng.Intn(planningTags))
		}
	case "zipf":
		z := rand.NewZipf(rng, 1.3, 1, planningTags-1)
		for i := range vals {
			vals[i] = int64(z.Uint64())
		}
	case "clustered":
		for i := range vals {
			vals[i] = int64(i) * planningTags / n
		}
	}
	return vals
}

// taggedGen wraps the synthetic generator, replacing str1 with the
// precomputed tag sequence.
type taggedGen struct {
	*workload.Synthetic
	idx  int
	tags []int64
}

func (g taggedGen) Record(i int64) *serde.GenericRecord {
	rec := g.Synthetic.Record(i)
	rec.SetAt(g.idx, planTag(g.tags[i]))
	return rec
}

// PlanningCell is one (skew, predicate) comparison.
type PlanningCell struct {
	Skew string
	Arm  string
	// Matches is the number of qualifying records (identical in all arms).
	Matches int64
	// TrueFraction and EstFraction are actual and pre-run estimated
	// selectivity over the whole dataset; AbsError is their distance.
	TrueFraction float64
	EstFraction  float64
	AbsError     float64
	// Lazy and AutoSize are the planner's choices.
	Lazy     bool
	AutoSize bool
	// Chosen, ForcedEager, and ForcedLazy are the measured costs of the
	// planner's pick and the two pinned alternatives.
	Chosen      ScanCost
	ForcedEager ScanCost
	ForcedLazy  ScanCost
}

// PlanningResult holds the sweep.
type PlanningResult struct {
	Cells   []PlanningCell
	Records int64
}

// Get returns the cell for a skew and arm.
func (r *PlanningResult) Get(skew, arm string) PlanningCell {
	for _, c := range r.Cells {
		if c.Skew == skew && c.Arm == arm {
			return c
		}
	}
	return PlanningCell{}
}

// planningJob builds one arm's job: filter on str1, project int0.
func planningJob(dataset string, pred scan.Predicate) *core.ScanBuilder {
	return core.ScanDataset(dataset).Columns("int0").Where(pred)
}

func planningNoop() mapred.Mapper {
	return mapred.MapperFunc(func(_, _ any, _ mapred.Emit) error { return nil })
}

// Planning runs the sweep.
func Planning(cfg Config) (*PlanningResult, error) {
	n := cfg.records(100_000)
	syn := workload.NewSynthetic(cfg.Seed)
	idx := syn.Schema().FieldIndex("str1")
	if idx < 0 {
		return nil, fmt.Errorf("bench: synthetic schema has no str1 column")
	}
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)
	in := &core.InputFormat{}

	arms := []struct {
		name string
		pred scan.Predicate
	}{
		// The zipf head: ~1.6% of a uniform column but the dominant value
		// of a skewed one — the arm 1/Distinct mis-sizes worst.
		{"eq head", scan.Eq("str1", planTag(0))},
		{"eq tail", scan.Eq("str1", planTag(planningTags-1))},
		{"range 1/8", scan.Between("str1", planTag(0), planTag(planningTags/8-1))},
		{"broad 3/4", scan.Gt("str1", planTag(planningTags/4-1))},
	}

	res := &PlanningResult{Records: n}
	for _, skew := range PlanningSkews {
		dir := "/planning/" + skew
		gen := taggedGen{syn, idx, planningTagValues(cfg.Seed, skew, n)}
		opts := core.LoadOptions{SplitRecords: (n + planningSplits - 1) / planningSplits}
		if _, err := writeCIF(fs, dir, gen, n, opts, nil); err != nil {
			return nil, fmt.Errorf("loading %s: %w", skew, err)
		}
		for _, arm := range arms {
			// The chosen arm leaves materialization and sizing unpinned,
			// explains, and applies the plan — exactly the colscan -explain
			// path.
			job := planningJob(dir, arm.pred).Job(planningNoop())
			plan, err := in.Explain(fs, &job.Conf, model)
			if err != nil {
				return nil, fmt.Errorf("%s %s: explain: %w", skew, arm.name, err)
			}
			plan.Apply(&job.Conf)
			chosen, err := mapred.Run(fs, job)
			if err != nil {
				return nil, fmt.Errorf("%s %s (chosen): %w", skew, arm.name, err)
			}
			eager, err := mapred.Run(fs, planningJob(dir, arm.pred).Lazy(false).DirsPerSplit(1).Job(planningNoop()))
			if err != nil {
				return nil, fmt.Errorf("%s %s (forced eager): %w", skew, arm.name, err)
			}
			lazy, err := mapred.Run(fs, planningJob(dir, arm.pred).Lazy(true).DirsPerSplit(1).Job(planningNoop()))
			if err != nil {
				return nil, fmt.Errorf("%s %s (forced lazy): %w", skew, arm.name, err)
			}
			if eager.Total.RecordsProcessed != chosen.Total.RecordsProcessed ||
				lazy.Total.RecordsProcessed != chosen.Total.RecordsProcessed {
				return nil, fmt.Errorf("%s %s: arms disagree on matches (chosen %d, eager %d, lazy %d)",
					skew, arm.name, chosen.Total.RecordsProcessed,
					eager.Total.RecordsProcessed, lazy.Total.RecordsProcessed)
			}
			truth := float64(chosen.Total.RecordsProcessed) / float64(n)
			est := 0.0
			if plan.RowsTotal > 0 {
				est = plan.RowsEst / float64(plan.RowsTotal)
			}
			res.Cells = append(res.Cells, PlanningCell{
				Skew:         skew,
				Arm:          arm.name,
				Matches:      chosen.Total.RecordsProcessed,
				TrueFraction: truth,
				EstFraction:  est,
				AbsError:     math.Abs(est - truth),
				Lazy:         plan.Lazy,
				AutoSize:     plan.AutoSize,
				Chosen:       scanCost(chosen.Total, model),
				ForcedEager:  scanCost(eager.Total, model),
				ForcedLazy:   scanCost(lazy.Total, model),
			})
		}
	}

	cfg.printf("Cost-based planning sweep: histogram estimates vs truth, and planner-chosen vs forced materialization (%d records, %d split-directories, %d-tag filter column)\n",
		n, planningSplits, planningTags)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "skew\tarm\tmatches\ttrue frac\test frac\t|err|\tplan\tchosen\teager\tlazy")
		for _, c := range res.Cells {
			mode := "eager"
			if c.Lazy {
				mode = "lazy"
			}
			if c.AutoSize {
				mode += "+auto"
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%.4f\t%.4f\t%.4f\t%s\t%.4fs\t%.4fs\t%.4fs\n",
				c.Skew, c.Arm, c.Matches,
				c.TrueFraction, c.EstFraction, c.AbsError, mode,
				c.Chosen.Seconds, c.ForcedEager.Seconds, c.ForcedLazy.Seconds)
		}
	})
	cfg.printf("\n")
	return res, nil
}
