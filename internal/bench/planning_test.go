package bench

import "testing"

// TestPlanningShape is the acceptance gate of the cost-based planner:
// across skew and predicate shape, the chosen plan never runs worse than
// the forced alternatives it deliberated between.
//
// Three guarantees, in decreasing strictness:
//
//   - chosen <= forced-eager on every cell: the planner never loses to the
//     paper's default eager construction, whatever it decides;
//   - when it picks lazy, chosen <= forced-lazy too — the pick did not
//     backfire;
//   - bounded regret everywhere: the conservative lazy cutoff (eager at
//     mid/high fractions, where measured lazy can still edge it out by a
//     sliver) costs at most 25% against the best forced arm.
//
// Plus the accuracy half the decisions rest on: the histogram estimate
// lands within a few points of true selectivity on every cell, and on the
// zipf head — where the uniform 1/Distinct guess is off by 20x — the
// degenerate bucket nails the heavy hitter.
func TestPlanningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("planning sweep loads three dataset copies; skipped in -short")
	}
	res, err := Planning(testCfg(0.1))
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(PlanningSkews) * 4
	if len(res.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res.Cells), wantCells)
	}

	for _, c := range res.Cells {
		name := c.Skew + "/" + c.Arm
		if c.Chosen.Seconds > c.ForcedEager.Seconds*1.0001 {
			t.Errorf("%s: chosen plan %.4fs worse than forced eager %.4fs",
				name, c.Chosen.Seconds, c.ForcedEager.Seconds)
		}
		if c.Lazy && c.Chosen.Seconds > c.ForcedLazy.Seconds*1.0001 {
			t.Errorf("%s: planner picked lazy yet %.4fs worse than forced lazy %.4fs",
				name, c.Chosen.Seconds, c.ForcedLazy.Seconds)
		}
		min := c.ForcedEager.Seconds
		if c.ForcedLazy.Seconds < min {
			min = c.ForcedLazy.Seconds
		}
		if c.Chosen.Seconds > min*1.25 {
			t.Errorf("%s: chosen plan %.4fs regrets more than 25%% vs best forced %.4fs",
				name, c.Chosen.Seconds, min)
		}
		if c.AbsError > 0.05 {
			t.Errorf("%s: estimate %.4f vs truth %.4f — error %.4f above 0.05",
				name, c.EstFraction, c.TrueFraction, c.AbsError)
		}
	}

	// The headline cell: zipf's heavy head. Uniform interpolation guesses
	// 1/64 ~= 0.016; the equi-depth degenerate bucket must see the real
	// ~0.3+ fraction (and the planner therefore goes eager, not lazy).
	head := res.Get("zipf", "eq head")
	if head.Skew == "" {
		t.Fatal("missing zipf/eq head cell")
	}
	if head.EstFraction < 0.2 {
		t.Errorf("zipf head estimated %.4f; histogram missed the heavy hitter (truth %.4f)",
			head.EstFraction, head.TrueFraction)
	}
	if head.Lazy {
		t.Error("zipf head chose lazy despite a dominant-value predicate")
	}

	// Clustered data elides at the scheduler tier: a tail equality touches
	// a sliver of the directories and is cheaper than the same predicate
	// over uniform placement.
	if cl, un := res.Get("clustered", "eq tail"), res.Get("uniform", "eq tail"); cl.Chosen.Seconds >= un.Chosen.Seconds {
		t.Errorf("clustered eq tail %.4fs not cheaper than uniform %.4fs — elision priced nothing",
			cl.Chosen.Seconds, un.Chosen.Seconds)
	}
}
