package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Selectivity sweeps predicate selectivity from 0.01% to 100% over the
// synthetic dataset and compares, per column layout, two ways of running
// the same selective query:
//
//	pushdown   the predicate travels into CIF (scan.SetPredicate): zone
//	           maps prune record groups, the filter column decides the
//	           rest, and projected columns materialize only for matches;
//	scan+filter the classic shape: project the filter column too, read
//	           every record eagerly, and test the predicate in the map
//	           function.
//
// This experiment extends the paper (its Figure 10 sweeps selectivity only
// against lazy materialization); it quantifies what CIF was missing
// against the Parquet/ORC generation, whose chunk-skipping zone maps are
// table stakes.
//
// The query filters on int0 (uniform over [1, 10000], so a <= K predicate
// has selectivity K/10000) and projects str0 and map0.

// SelectivityFractions are the swept match fractions.
var SelectivityFractions = []float64{0.0001, 0.001, 0.01, 0.1, 1.0}

// SelectivityLayouts are the swept column layouts. The DCSL variant keys
// the map0 payload column; its scalar columns use skip lists, matching how
// DCSL datasets are loaded in practice.
var SelectivityLayouts = []string{"plain", "skiplist", "block", "dcsl"}

// ScanCost summarizes one measured scan.
type ScanCost struct {
	// Seconds is the modeled single-node scan time.
	Seconds float64
	// LogicalBytes / ChargedBytes are delivered and transfer-unit-charged
	// I/O.
	LogicalBytes int64
	ChargedBytes int64
	// DecodedBytes is the total deserialization and decompression output
	// (the CPU-side bytes the acceptance of a selective scan is judged
	// on).
	DecodedBytes int64
	// ValuesMaterialized counts field values built into objects.
	ValuesMaterialized int64
	// RecordsPruned / RecordsFiltered split the rejected records between
	// zone-map pruning and per-record evaluation (pushdown only).
	RecordsPruned   int64
	RecordsFiltered int64
}

// SelectivityCell is one (layout, selectivity) comparison.
type SelectivityCell struct {
	Layout      string
	Fraction    float64
	Matches     int64
	Pushdown    ScanCost
	ScanFilter  ScanCost
	DecodeRatio float64 // ScanFilter.DecodedBytes / Pushdown.DecodedBytes
}

// SelectivityResult holds the sweep matrix.
type SelectivityResult struct {
	Cells   []SelectivityCell
	Records int64
}

// Get returns the cell for a layout/fraction pair.
func (r *SelectivityResult) Get(layout string, fraction float64) SelectivityCell {
	for _, c := range r.Cells {
		if c.Layout == layout && c.Fraction == fraction {
			return c
		}
	}
	return SelectivityCell{}
}

// decodedBytes totals the CPU-side decode output counters.
func decodedBytes(c sim.CPUStats) int64 {
	return c.RawBytes + c.IntBytes + c.DoubleBytes + c.StringBytes +
		c.MapBytes + c.TextBytes + c.ZlibBytes + c.LzoBytes + c.DictBytes
}

func scanCost(st sim.TaskStats, model sim.CostModel) ScanCost {
	return ScanCost{
		Seconds:            model.ScanSeconds(st),
		LogicalBytes:       st.IO.LogicalBytes,
		ChargedBytes:       st.IO.TotalChargedBytes(),
		DecodedBytes:       decodedBytes(st.CPU),
		ValuesMaterialized: st.CPU.ValuesMaterialized,
		RecordsPruned:      st.RecordsPruned,
		RecordsFiltered:    st.RecordsFiltered,
	}
}

// selectivityLayout resolves a layout name to COF load options.
func selectivityLayout(name string) (core.LoadOptions, error) {
	// Smaller-than-default compressed blocks keep several frames per
	// split at benchmark scale, so frame-granular zone maps have groups
	// to prune.
	block := colfile.Options{Layout: colfile.Block, Codec: "zlib", BlockBytes: 32 << 10}
	switch name {
	case "plain":
		return core.LoadOptions{Default: colfile.Options{Layout: colfile.Plain}}, nil
	case "skiplist":
		return core.LoadOptions{Default: colfile.Options{Layout: colfile.SkipList}}, nil
	case "block":
		return core.LoadOptions{Default: block}, nil
	case "dcsl":
		return core.LoadOptions{
			Default:   colfile.Options{Layout: colfile.SkipList},
			PerColumn: map[string]colfile.Options{"map0": {Layout: colfile.DCSL}},
		}, nil
	}
	return core.LoadOptions{}, fmt.Errorf("bench: unknown selectivity layout %q", name)
}

// Selectivity runs the sweep.
func Selectivity(cfg Config) (*SelectivityResult, error) {
	n := cfg.records(100_000)
	gen := workload.NewSynthetic(cfg.Seed)
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)

	res := &SelectivityResult{Records: n}
	for _, layout := range SelectivityLayouts {
		opts, err := selectivityLayout(layout)
		if err != nil {
			return nil, err
		}
		opts.SplitRecords = n/2 + 1
		dir := "/sel/" + layout
		if _, err := writeCIF(fs, dir, gen, n, opts, nil); err != nil {
			return nil, fmt.Errorf("loading %s: %w", layout, err)
		}
		for _, frac := range SelectivityFractions {
			// int0 is uniform over [1, 10000].
			cut := int64(frac * 10000)
			if cut < 1 {
				cut = 1
			}
			pred := scan.Le("int0", cut)

			// Pushdown: predicate below materialization.
			pconf := &mapred.JobConf{InputPaths: []string{dir}}
			core.SetColumns(pconf, "str0", "map0")
			scan.SetPredicate(pconf, pred)
			pushSt, pushMatches, err := scanSplits(fs, &core.InputFormat{}, pconf, 0, nil)
			if err != nil {
				return nil, fmt.Errorf("%s pushdown: %w", layout, err)
			}

			// Scan-then-filter: project the filter column too and test in
			// the visit function, as a map function would.
			fconf := &mapred.JobConf{InputPaths: []string{dir}}
			core.SetColumns(fconf, "str0", "map0", "int0")
			var filterMatches int64
			fullSt, _, err := scanSplits(fs, &core.InputFormat{}, fconf, 0, func(rec serde.Record) error {
				ok, err := pred.Eval(scan.Getter(func(col string) (any, error) { return rec.Get(col) }))
				if err != nil {
					return err
				}
				if ok {
					filterMatches++
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s scan+filter: %w", layout, err)
			}
			if pushMatches != filterMatches {
				return nil, fmt.Errorf("%s at %.4f: pushdown returned %d records, scan+filter %d",
					layout, frac, pushMatches, filterMatches)
			}

			cell := SelectivityCell{
				Layout:     layout,
				Fraction:   frac,
				Matches:    pushMatches,
				Pushdown:   scanCost(pushSt, model),
				ScanFilter: scanCost(fullSt, model),
			}
			cell.DecodeRatio = ratio(float64(cell.ScanFilter.DecodedBytes), float64(cell.Pushdown.DecodedBytes))
			res.Cells = append(res.Cells, cell)
		}
	}

	cfg.printf("Selectivity sweep: pushdown vs scan-then-filter (%d records, filter int0 <= K, project str0+map0)\n", n)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "layout\tselectivity\tmatches\tpush decode MB\tfull decode MB\tratio\tpush charged MB\tfull charged MB\tpruned\tmodeled push\tmodeled full")
		for _, c := range res.Cells {
			fmt.Fprintf(w, "%s\t%.2f%%\t%d\t%.2f\t%.2f\t%.1fx\t%.2f\t%.2f\t%d\t%.3fs\t%.3fs\n",
				c.Layout, c.Fraction*100, c.Matches,
				float64(c.Pushdown.DecodedBytes)/(1<<20),
				float64(c.ScanFilter.DecodedBytes)/(1<<20),
				c.DecodeRatio,
				float64(c.Pushdown.ChargedBytes)/(1<<20),
				float64(c.ScanFilter.ChargedBytes)/(1<<20),
				c.Pushdown.RecordsPruned,
				c.Pushdown.Seconds, c.ScanFilter.Seconds)
		}
	})
	cfg.printf("\n")
	return res, nil
}
