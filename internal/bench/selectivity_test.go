package bench

import "testing"

// TestSelectivityShape is the acceptance gate of the scan subsystem: at
// low selectivity, predicate pushdown must read/deserialize measurably
// fewer bytes than scan-then-filter (per sim.TaskStats), while returning
// exactly as many records.
func TestSelectivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("selectivity sweep loads four dataset copies; skipped in -short")
	}
	res, err := Selectivity(testCfg(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(SelectivityLayouts)*len(SelectivityFractions) {
		t.Fatalf("got %d cells, want %d", len(res.Cells),
			len(SelectivityLayouts)*len(SelectivityFractions))
	}

	for _, c := range res.Cells {
		// Result equivalence at the record-count level is enforced inside
		// Selectivity (it fails on mismatch); here we sanity-check the
		// match counts roughly track the target fraction.
		want := float64(res.Records) * c.Fraction
		if c.Fraction >= 0.01 {
			if f := float64(c.Matches); f < want*0.5 || f > want*1.5 {
				t.Errorf("%s@%.2f%%: %d matches, want ~%.0f", c.Layout, c.Fraction*100, c.Matches, want)
			}
		}
		// Pushdown never decodes more than scan-then-filter.
		if c.Pushdown.DecodedBytes > c.ScanFilter.DecodedBytes {
			t.Errorf("%s@%.2f%%: pushdown decoded %d > scan+filter %d",
				c.Layout, c.Fraction*100, c.Pushdown.DecodedBytes, c.ScanFilter.DecodedBytes)
		}
	}

	// The acceptance criterion: at <= 1% selectivity on SkipList and
	// Block layouts, pushdown deserializes measurably fewer bytes.
	for _, layout := range []string{"skiplist", "block"} {
		for _, frac := range []float64{0.0001, 0.001, 0.01} {
			c := res.Get(layout, frac)
			if c.Layout == "" {
				t.Fatalf("missing cell %s@%.4f", layout, frac)
			}
			if c.DecodeRatio < 1.5 {
				t.Errorf("%s@%.2f%%: decode ratio %.2fx, want >= 1.5x",
					layout, frac*100, c.DecodeRatio)
			}
		}
		// And the advantage must grow as selectivity falls.
		if res.Get(layout, 0.0001).DecodeRatio <= res.Get(layout, 0.01).DecodeRatio {
			t.Errorf("%s: decode ratio does not grow with selectivity (%.1fx at 0.01%% vs %.1fx at 1%%)",
				layout, res.Get(layout, 0.0001).DecodeRatio, res.Get(layout, 0.01).DecodeRatio)
		}
	}

	// Zone maps must actually prune groups on the skip-list layout at the
	// lowest selectivity (block frames can be too coarse at test scale).
	if c := res.Get("skiplist", 0.0001); c.Pushdown.RecordsPruned == 0 {
		t.Error("skiplist@0.01%: no records pruned by zone maps")
	}

	// At 100% selectivity pushdown must not cost meaningfully more than
	// scan-then-filter (it reads the same data; the full scan also reads
	// the int0 column it projects).
	for _, layout := range SelectivityLayouts {
		c := res.Get(layout, 1.0)
		if c.Pushdown.Seconds > c.ScanFilter.Seconds*1.25 {
			t.Errorf("%s@100%%: pushdown %.3fs vs scan+filter %.3fs — pushdown should not regress",
				layout, c.Pushdown.Seconds, c.ScanFilter.Seconds)
		}
	}
}
