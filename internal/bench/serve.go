package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/serve"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Serve sweeps the scan server's sharing window against a continuous
// arrival stream: arrival rate x predicate overlap x window size, over the
// clustered dataset the shared-scan sweep uses. Queries arrive on a fixed
// cadence from three rotating tenants under a ManualClock, so each cell is
// a deterministic discrete-event replay; the server merges whatever lands
// inside one window into a shared batch and the cell reports what that
// merging bought (charged bytes vs the window-0 run) and what it cost
// (modeled wait and end-to-end latency percentiles).
//
// Window 0 is the control: every query seals into a batch of one, and the
// sweep fails if its charged bytes differ at all from running the same
// queries sequentially solo — the no-batching identity that anchors the
// other cells' ratios.

// ServeWindows are the swept sharing windows, in modeled seconds.
var ServeWindows = []float64{0, 0.02, 0.05, 0.1}

// ServeRates are the swept arrival rates, in queries per modeled second.
var ServeRates = []float64{50, 200}

// serveQueries is the number of queries per cell; serveSplits the number of
// split-directories in the swept dataset. They are equal so the disjoint
// mix can give every query its own split-aligned tile — genuinely pairwise
// disjoint, the control where a window must save nothing.
const (
	serveQueries = 16
	serveSplits  = 16
)

// ServeCell is one (rate, overlap, window) run.
type ServeCell struct {
	Rate    float64
	Overlap bool
	Window  float64
	// Batches is how many batches served the stream; Shared of them held
	// more than one query.
	Batches int64
	Shared  int64
	// ChargedBytes is the server's total charged I/O; Ratio is the window-0
	// cell's charged bytes over this one's (>1 means the window saved I/O).
	ChargedBytes int64
	Ratio        float64
	BytesSaved   int64
	// Wait and Latency are the modeled arrival-to-start and
	// arrival-to-finish distributions across the stream's queries.
	Wait    sim.LatencySummary
	Latency sim.LatencySummary
}

// ServeResult holds the sweep.
type ServeResult struct {
	Cells   []ServeCell
	Records int64
}

// Get returns the cell for a (rate, overlap, window) triple.
func (r *ServeResult) Get(rate float64, overlap bool, window float64) ServeCell {
	for _, c := range r.Cells {
		if c.Rate == rate && c.Overlap == overlap && c.Window == window {
			return c
		}
	}
	return ServeCell{}
}

// servePred builds query j's predicate: nested prefixes of the clustered
// int0 domain when overlapping (the shared-scan sweep's regime), tiles of
// it when disjoint.
func servePred(j int, overlap bool) scan.Predicate {
	if overlap {
		return scan.Le("int0", int64(2500+100*(j%8)))
	}
	width := int64(10000 / serveQueries)
	lo := int64(j) * width
	return scan.And(scan.Gt("int0", lo), scan.Le("int0", lo+width))
}

// serveJob builds one streamed query: map-only, projecting str0.
func serveJob(dataset string, pred scan.Predicate) *mapred.Job {
	conf := mapred.JobConf{InputPaths: []string{dataset}}
	core.SetColumns(&conf, "str0")
	scan.SetPredicate(&conf, pred)
	return &mapred.Job{
		Conf:  conf,
		Input: &core.InputFormat{},
		Mapper: mapred.MapperFunc(func(_, v any, emit mapred.Emit) error {
			_, err := v.(serde.Record).Get("str0")
			return err
		}),
		Output: mapred.NullOutput{},
	}
}

// Serve runs the sweep.
func Serve(cfg Config) (*ServeResult, error) {
	n := cfg.records(40_000)
	syn := workload.NewSynthetic(cfg.Seed)
	idx := syn.Schema().FieldIndex("int0")
	if idx < 0 {
		return nil, fmt.Errorf("bench: synthetic schema has no int0 column")
	}
	gen := clusteredGen{syn, n, idx}
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)

	opts := core.LoadOptions{
		Default:      colfile.Options{Layout: colfile.SkipList},
		SplitRecords: (n + serveSplits - 1) / serveSplits,
	}
	dir := "/serve/cif"
	if _, err := writeCIF(fs, dir, gen, n, opts, nil); err != nil {
		return nil, fmt.Errorf("loading: %w", err)
	}

	// The sequential-solo control, once per overlap mode: the byte account
	// every window-0 cell must reproduce exactly.
	soloCharged := map[bool]int64{}
	for _, overlap := range []bool{true, false} {
		for j := 0; j < serveQueries; j++ {
			r, err := mapred.Run(fs, serveJob(dir, servePred(j, overlap)))
			if err != nil {
				return nil, fmt.Errorf("solo overlap=%v query %d: %w", overlap, j, err)
			}
			soloCharged[overlap] += r.Total.IO.TotalChargedBytes()
		}
	}

	res := &ServeResult{Records: n}
	for _, rate := range ServeRates {
		for _, overlap := range []bool{true, false} {
			for _, window := range ServeWindows {
				clock := &serve.ManualClock{}
				srv := serve.New(fs, serve.Options{
					Window:     window,
					MaxBatches: 2,
					Clock:      clock,
					Model:      &model,
					// Quota and cache off: membership must depend only on
					// the arrival schedule, and the control comparison must
					// not be perturbed by cross-batch caching.
				})
				tenants := []string{"ads", "search", "mail"}
				tickets := make([]*serve.Ticket, serveQueries)
				for j := 0; j < serveQueries; j++ {
					clock.Set(float64(j) / rate)
					tk, err := srv.Enqueue(tenants[j%len(tenants)], serveJob(dir, servePred(j, overlap)))
					if err != nil {
						return nil, fmt.Errorf("enqueue rate=%g overlap=%v window=%g query %d: %w",
							rate, overlap, window, j, err)
					}
					tickets[j] = tk
				}
				srv.Drain()
				for j, tk := range tickets {
					if _, err := tk.Wait(); err != nil {
						return nil, fmt.Errorf("query %d rate=%g overlap=%v window=%g: %w",
							j, rate, overlap, window, err)
					}
				}
				st := srv.Stats()
				if window == 0 && st.ChargedBytes != soloCharged[overlap] {
					return nil, fmt.Errorf("window 0 (rate=%g overlap=%v) charged %d bytes, sequential solo runs %d — the no-batching identity broke",
						rate, overlap, st.ChargedBytes, soloCharged[overlap])
				}
				res.Cells = append(res.Cells, ServeCell{
					Rate:         rate,
					Overlap:      overlap,
					Window:       window,
					Batches:      st.Batches,
					Shared:       st.SharedBatches,
					ChargedBytes: st.ChargedBytes,
					BytesSaved:   st.BytesSaved,
					Wait:         st.Wait,
					Latency:      st.Latency,
				})
			}
		}
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		base := res.Get(c.Rate, c.Overlap, 0)
		c.Ratio = ratio(float64(base.ChargedBytes), float64(c.ChargedBytes))
	}

	cfg.printf("Scan server sweep: sharing window vs continuous arrivals (%d records, %d split-directories, %d queries/cell, 3 tenants, clustered int0, project str0)\n",
		n, serveSplits, serveQueries)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "rate/s\tmix\twindow ms\tbatches\tshared\tcharged MB\tvs w=0\tsaved MB\twait p50/p99 ms\tlatency p50/p99 ms")
		for _, c := range res.Cells {
			mix := "overlap"
			if !c.Overlap {
				mix = "disjoint"
			}
			fmt.Fprintf(w, "%.0f\t%s\t%.0f\t%d\t%d\t%.2f\t%.2fx\t%.2f\t%.1f/%.1f\t%.1f/%.1f\n",
				c.Rate, mix, c.Window*1e3, c.Batches, c.Shared,
				float64(c.ChargedBytes)/(1<<20), c.Ratio,
				float64(c.BytesSaved)/(1<<20),
				c.Wait.P50*1e3, c.Wait.P99*1e3,
				c.Latency.P50*1e3, c.Latency.P99*1e3)
		}
	})
	cfg.printf("\n")
	return res, nil
}
