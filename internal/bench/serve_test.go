package bench

import "testing"

// TestServeSweepShape is the acceptance gate of the scan server: at a high
// arrival rate with overlapping predicates, a generous sharing window must
// cut charged bytes by more than 1.5x versus window 0 — and window 0 itself
// must be byte-exact against sequential solo runs (Serve fails internally
// otherwise). Waiting is the price: a wider window cannot shrink modeled
// p99 wait.
func TestServeSweepShape(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.02
	}
	res, err := Serve(testCfg(scale))
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(ServeRates) * 2 * len(ServeWindows)
	if len(res.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(res.Cells), wantCells)
	}

	rate := ServeRates[len(ServeRates)-1]
	wide := ServeWindows[len(ServeWindows)-1]

	// The headline: high rate, high overlap, widest window.
	c := res.Get(rate, true, wide)
	if c.Ratio <= 1.5 {
		t.Errorf("rate %g window %g overlap: charged ratio %.2fx, want > 1.5x (charged %d vs w0 %d)",
			rate, wide, c.Ratio, c.ChargedBytes, res.Get(rate, true, 0).ChargedBytes)
	}
	if c.Shared == 0 || c.BytesSaved <= 0 {
		t.Errorf("rate %g window %g overlap: sharing never fired (%d shared batches, %d saved)",
			rate, wide, c.Shared, c.BytesSaved)
	}

	// Window 0 is the no-batching identity: one batch per query, none shared.
	for _, overlap := range []bool{true, false} {
		z := res.Get(rate, overlap, 0)
		if z.Batches != serveQueries || z.Shared != 0 {
			t.Errorf("window 0 (overlap=%v): %d batches %d shared, want %d/0",
				overlap, z.Batches, z.Shared, serveQueries)
		}
		if z.Ratio != 1 {
			t.Errorf("window 0 (overlap=%v): ratio %.3fx, want exactly 1x", overlap, z.Ratio)
		}
	}

	// The tradeoff the window buys into: batching can only delay starts, so
	// p99 wait must not shrink as the window widens.
	if w0, ww := res.Get(rate, true, 0).Wait.P99, c.Wait.P99; ww < w0 {
		t.Errorf("p99 wait fell from %.4fs to %.4fs as the window widened", w0, ww)
	}

	// Disjoint streams must not pay for the window in bytes: sharing them
	// neither helps nor hurts the charged account.
	d := res.Get(rate, false, wide)
	if d.Ratio < 0.99 || d.Ratio > 1.01 {
		t.Errorf("disjoint at window %g: charged ratio %.3fx, want ~1x", wide, d.Ratio)
	}
}
