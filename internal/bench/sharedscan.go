package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// SharedScan sweeps batch concurrency over the clustered dataset: 1/2/4/8
// concurrent jobs with overlapping vs disjoint predicates, each mix run
// twice — every job solo through mapred.Run (the paper's model: each job
// pays a full pass over the files it touches) and co-scheduled through
// mapred.RunBatch (one cursor set per shared split-directory, predicates
// OR-ed, records demultiplexed per job).
//
// Overlapping predicates select nested prefixes of the clustered int0
// domain, so the jobs' surviving split sets nearly coincide and the batch
// reads the union once; disjoint predicates tile the domain, member sets
// never intersect, and co-scheduling must neither help nor hurt. Both
// modes must return identical per-job match counts (enforced here; the
// byte-level guarantee is the sharedscan property test).

// SharedScanJobs are the swept concurrency levels.
var SharedScanJobs = []int{1, 2, 4, 8}

// sharedScanSplits is the number of split-directories in the swept dataset.
const sharedScanSplits = 16

// SharedScanCell is one (concurrency, overlap mode) comparison.
type SharedScanCell struct {
	Jobs    int
	Overlap bool
	// Matches is the summed per-job match count (identical in both modes).
	Matches int64
	// Solo and Batch are the measured costs: Solo sums the independent
	// runs; Batch prices the shared cursor work once plus every job's
	// map-side work.
	Solo  ScanCost
	Batch ScanCost
	// ChargedRatio is Solo.ChargedBytes / Batch.ChargedBytes.
	ChargedRatio float64
	// SharedTasks is the number of map tasks that served more than one
	// job; SharedReads and BytesSaved are the batch's sharing counters.
	SharedTasks int
	SharedReads int64
	BytesSaved  int64
}

// SharedScanResult holds the sweep.
type SharedScanResult struct {
	Cells   []SharedScanCell
	Records int64
}

// Get returns the cell for a concurrency/overlap pair.
func (r *SharedScanResult) Get(jobs int, overlap bool) SharedScanCell {
	for _, c := range r.Cells {
		if c.Jobs == jobs && c.Overlap == overlap {
			return c
		}
	}
	return SharedScanCell{}
}

// sharedScanPred builds job j's predicate for a k-job mix. int0's clustered
// domain is [1, 10000].
func sharedScanPred(j, k int, overlap bool) scan.Predicate {
	if overlap {
		// Nested prefixes of the first quarter: every job scans nearly the
		// same splits, the widest job's region covers the union.
		return scan.Le("int0", int64(2500+100*j))
	}
	width := int64(10000 / k)
	lo := int64(j) * width
	hi := lo + width
	return scan.And(scan.Gt("int0", lo), scan.Le("int0", hi))
}

// sharedScanJob builds one measurement job: map-only, projecting str0 and
// touching it per record like a map function would.
func sharedScanJob(dataset string, pred scan.Predicate) *mapred.Job {
	conf := mapred.JobConf{InputPaths: []string{dataset}}
	core.SetColumns(&conf, "str0")
	scan.SetPredicate(&conf, pred)
	return &mapred.Job{
		Conf:  conf,
		Input: &core.InputFormat{},
		Mapper: mapred.MapperFunc(func(_, v any, emit mapred.Emit) error {
			_, err := v.(serde.Record).Get("str0")
			return err
		}),
		Output: mapred.NullOutput{},
	}
}

// SharedScan runs the sweep.
func SharedScan(cfg Config) (*SharedScanResult, error) {
	n := cfg.records(100_000)
	syn := workload.NewSynthetic(cfg.Seed)
	idx := syn.Schema().FieldIndex("int0")
	if idx < 0 {
		return nil, fmt.Errorf("bench: synthetic schema has no int0 column")
	}
	gen := clusteredGen{syn, n, idx}
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)

	opts := core.LoadOptions{
		Default:      colfile.Options{Layout: colfile.SkipList},
		SplitRecords: (n + sharedScanSplits - 1) / sharedScanSplits,
	}
	dir := "/shared/cif"
	if _, err := writeCIF(fs, dir, gen, n, opts, nil); err != nil {
		return nil, fmt.Errorf("loading: %w", err)
	}

	res := &SharedScanResult{Records: n}
	for _, overlap := range []bool{true, false} {
		for _, k := range SharedScanJobs {
			jobs := func() []*mapred.Job {
				out := make([]*mapred.Job, k)
				for j := 0; j < k; j++ {
					out[j] = sharedScanJob(dir, sharedScanPred(j, k, overlap))
				}
				return out
			}

			var soloStats sim.TaskStats
			var soloMatches int64
			for _, job := range jobs() {
				r, err := mapred.Run(fs, job)
				if err != nil {
					return nil, fmt.Errorf("solo %d/%v: %w", k, overlap, err)
				}
				soloStats.Add(r.Total)
				soloMatches += r.Total.RecordsProcessed
			}

			br, err := mapred.RunBatch(fs, jobs()...)
			if err != nil {
				return nil, fmt.Errorf("batch %d/%v: %w", k, overlap, err)
			}
			// The batch profile: shared physical work once, plus every
			// job's (logical) map-side counters.
			batchStats := br.Shared
			var batchMatches int64
			for _, r := range br.Results {
				batchStats.Add(r.Total)
				batchMatches += r.Total.RecordsProcessed
			}
			if batchMatches != soloMatches {
				return nil, fmt.Errorf("at %d jobs (overlap=%v): batch matched %d records, solo %d",
					k, overlap, batchMatches, soloMatches)
			}

			cell := SharedScanCell{
				Jobs:        k,
				Overlap:     overlap,
				Matches:     soloMatches,
				Solo:        scanCost(soloStats, model),
				Batch:       scanCost(batchStats, model),
				SharedTasks: br.SharedTasks,
				SharedReads: br.Shared.SharedReads,
				BytesSaved:  br.Shared.BytesSaved,
			}
			cell.ChargedRatio = ratio(float64(cell.Solo.ChargedBytes), float64(cell.Batch.ChargedBytes))
			res.Cells = append(res.Cells, cell)
		}
	}

	cfg.printf("Shared scan sweep: co-scheduled batch vs independent runs (%d records, %d split-directories, clustered int0, project str0)\n", n, sharedScanSplits)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "mix\tjobs\tmatches\tsolo charged MB\tbatch charged MB\tratio\tshared tasks\tshared reads\tsaved MB\tsolo modeled\tbatch modeled")
		for _, c := range res.Cells {
			mix := "overlap"
			if !c.Overlap {
				mix = "disjoint"
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.2f\t%.1fx\t%d\t%d\t%.2f\t%.3fs\t%.3fs\n",
				mix, c.Jobs, c.Matches,
				float64(c.Solo.ChargedBytes)/(1<<20),
				float64(c.Batch.ChargedBytes)/(1<<20),
				c.ChargedRatio,
				c.SharedTasks, c.SharedReads,
				float64(c.BytesSaved)/(1<<20),
				c.Solo.Seconds, c.Batch.Seconds)
		}
	})
	cfg.printf("\n")
	return res, nil
}
