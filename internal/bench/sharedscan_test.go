package bench

import "testing"

// TestSharedScanShape is the acceptance gate of the batch scheduler: four
// overlapping jobs co-scheduled must charge at least 2x less than four solo
// runs, a single-job batch must cost a solo run, and disjoint mixes must
// never share tasks (SharedScan itself fails if any job's match count
// diverges between modes).
func TestSharedScanShape(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.02
	}
	res, err := SharedScan(testCfg(scale))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*len(SharedScanJobs) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), 2*len(SharedScanJobs))
	}

	// The headline: 4 overlapping jobs, >= 2x charged-byte reduction.
	c := res.Get(4, true)
	if c.ChargedRatio < 2 {
		t.Errorf("4 overlapping jobs: charged ratio %.2fx, want >= 2x (solo %d, batch %d)",
			c.ChargedRatio, c.Solo.ChargedBytes, c.Batch.ChargedBytes)
	}
	if c.SharedTasks == 0 || c.SharedReads == 0 || c.BytesSaved <= 0 {
		t.Errorf("4 overlapping jobs: sharing never fired (%d tasks, %d reads, %d saved)",
			c.SharedTasks, c.SharedReads, c.BytesSaved)
	}

	// Sharing monotonically pays off with overlap concurrency.
	if r2, r8 := res.Get(2, true).ChargedRatio, res.Get(8, true).ChargedRatio; r2 < 1.5 || r8 < r2 {
		t.Errorf("overlap ratios not growing with concurrency: 2 jobs %.2fx, 8 jobs %.2fx", r2, r8)
	}

	// A batch of one is a solo run: same charged bytes, no shared tasks.
	c1 := res.Get(1, true)
	if c1.SharedTasks != 0 {
		t.Errorf("single-job batch produced %d shared tasks", c1.SharedTasks)
	}
	if c1.Batch.ChargedBytes != c1.Solo.ChargedBytes {
		t.Errorf("single-job batch charged %d, solo %d", c1.Batch.ChargedBytes, c1.Solo.ChargedBytes)
	}

	// Disjoint mixes: no shared tasks, and batching costs within 1% of the
	// solo runs (same cursors, same bytes — only task grouping differs).
	for _, k := range SharedScanJobs {
		d := res.Get(k, false)
		if d.SharedTasks != 0 {
			t.Errorf("%d disjoint jobs produced %d shared tasks", k, d.SharedTasks)
		}
		if d.ChargedRatio < 0.99 || d.ChargedRatio > 1.01 {
			t.Errorf("%d disjoint jobs: charged ratio %.3fx, want ~1x", k, d.ChargedRatio)
		}
	}
}
