package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/formats/seq"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Table1Target is the paper's crawl dataset size: a 6.4 TB subset,
// ~160 GB per node on the 40-node cluster.
const Table1Target = 6400 * int64(sim.GB)

// Table1Row is one storage-format row of Table 1.
type Table1Row struct {
	Layout     string
	DataReadGB float64
	MapTime    float64
	MapRatio   float64 // speedup vs SEQ-custom
	TotalTime  float64
	TotalRatio float64
}

// Table1Result holds all rows, in the paper's order.
type Table1Result struct {
	Rows        []Table1Row
	ScaleFactor float64
}

// Get returns the row for a layout.
func (r *Table1Result) Get(layout string) Table1Row {
	for _, row := range r.Rows {
		if row.Layout == layout {
			return row
		}
	}
	return Table1Row{}
}

// crawlJob builds the paper's example MapReduce job (Figure 1 / Section
// 6.3): find distinct content-types of pages whose URL contains
// "ibm.com/jp". The same mapper and reducer run against every storage
// format — the Record interface hides the materialization strategy.
func crawlJob(in mapred.InputFormat, conf mapred.JobConf) *mapred.Job {
	if conf.NumReducers == 0 {
		conf.NumReducers = 40 // one reducer per node, as in Section 6.1
	}
	return &mapred.Job{
		Conf:  conf,
		Input: in,
		Mapper: mapred.MapperFunc(func(key, value any, emit mapred.Emit) error {
			rec := value.(serde.Record)
			url, err := rec.Get("url")
			if err != nil {
				return err
			}
			if !strings.Contains(url.(string), workload.MatchPattern) {
				return nil
			}
			md, err := rec.Get("metadata")
			if err != nil {
				return err
			}
			ct, _ := md.(map[string]any)["content-type"].(string)
			return emit(ct, nil)
		}),
		Reducer: mapred.ReducerFunc(func(key any, values []any, emit mapred.Emit) error {
			return emit(key, nil)
		}),
		Output: mapred.NullOutput{},
	}
}

// Table1 reproduces Section 6.3: the crawl job over eleven storage-format
// variants on the modeled 40-node cluster.
func Table1(cfg Config) (*Table1Result, error) {
	n := cfg.records(8000)
	gen := workload.NewCrawl(workload.CrawlOptions{Seed: cfg.Seed})
	cluster := sim.DefaultCluster()
	model := sim.DefaultModelFor(cluster)

	res := &Table1Result{}
	var scale float64 // established by the first (SEQ-uncomp) variant

	runVariant := func(name string, build func(fs *hdfs.FileSystem) (mapred.InputFormat, mapred.JobConf, int64, error)) error {
		fs := newFS(cluster, cfg.Seed, strings.HasPrefix(name, "CIF"))
		in, conf, size, err := build(fs)
		if err != nil {
			return fmt.Errorf("%s: build: %w", name, err)
		}
		if name == "SEQ-uncomp" {
			scale = float64(Table1Target) / float64(size)
			res.ScaleFactor = scale
		}
		jr, err := mapred.Run(fs, crawlJob(in, conf))
		if err != nil {
			return fmt.Errorf("%s: run: %w", name, err)
		}
		total := jr.Total
		total.Scale(scale)
		res.Rows = append(res.Rows, Table1Row{
			Layout:     name,
			DataReadGB: gb(total.IO.TotalChargedBytes()),
			MapTime:    model.MapTime(total),
			TotalTime:  model.TotalTime(total),
		})
		return nil
	}

	// SEQ variants.
	seqVariants := []struct {
		name string
		opts seq.Options
	}{
		{"SEQ-uncomp", seq.Options{Mode: seq.ModeNone}},
		{"SEQ-record", seq.Options{Mode: seq.ModeRecord, Codec: "lzo"}},
		{"SEQ-block", seq.Options{Mode: seq.ModeBlock, Codec: "lzo"}},
		{"SEQ-custom", seq.Options{Mode: seq.ModeNone, FieldCodecs: map[string]string{"content": "lzo"}}},
	}
	for _, v := range seqVariants {
		v := v
		if err := runVariant(v.name, func(fs *hdfs.FileSystem) (mapred.InputFormat, mapred.JobConf, int64, error) {
			size, err := writeSEQ(fs, "/t1/data.seq", gen, n, v.opts, nil)
			return &seq.InputFormat{}, mapred.JobConf{InputPaths: []string{"/t1/data.seq"}}, size, err
		}); err != nil {
			return nil, err
		}
	}

	// RCFile variants.
	rcVariants := []struct {
		name string
		opts rcfile.Options
	}{
		{"RCFile", rcfile.Options{RowGroupBytes: 4 << 20}},
		{"RCFile-comp", rcfile.Options{Codec: "zlib", RowGroupBytes: 4 << 20}},
	}
	for _, v := range rcVariants {
		v := v
		if err := runVariant(v.name, func(fs *hdfs.FileSystem) (mapred.InputFormat, mapred.JobConf, int64, error) {
			size, err := writeRC(fs, "/t1/data.rc", gen, n, v.opts, nil)
			conf := mapred.JobConf{InputPaths: []string{"/t1/data.rc"}}
			rcfile.SetColumns(&conf, "url", "metadata")
			return &rcfile.InputFormat{}, conf, size, err
		}); err != nil {
			return nil, err
		}
	}

	// CIF variants: the metadata column's layout varies (Section 6.3);
	// projection pushdown selects url + metadata for all of them.
	for _, v := range cifVariants() {
		v := v
		if err := runVariant(v.name, func(fs *hdfs.FileSystem) (mapred.InputFormat, mapred.JobConf, int64, error) {
			opts := core.LoadOptions{
				SplitRecords: n/16 + 1,
				PerColumn:    map[string]colfile.Options{"metadata": v.layout},
			}
			size, err := writeCIF(fs, "/t1/cif", gen, n, opts, nil)
			conf := mapred.JobConf{InputPaths: []string{"/t1/cif"}}
			core.SetColumns(&conf, "url", "metadata")
			core.SetLazy(&conf, v.lazy)
			return &core.InputFormat{}, conf, size, err
		}); err != nil {
			return nil, err
		}
	}

	// Ratios relative to SEQ-custom, as in the paper.
	base := res.Get("SEQ-custom")
	for i := range res.Rows {
		res.Rows[i].MapRatio = ratio(base.MapTime, res.Rows[i].MapTime)
		res.Rows[i].TotalRatio = ratio(base.TotalTime, res.Rows[i].TotalTime)
	}

	cfg.printf("Table 1: crawl job over %.1f TB on the modeled 40-node cluster\n", float64(Table1Target)/float64(sim.TB))
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "layout\tdata read (GB)\tmap time (s)\tmap ratio\ttotal time (s)\ttotal ratio")
		for _, row := range res.Rows {
			fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%.1fx\t%.0f\t%.1fx\n",
				row.Layout, row.DataReadGB, row.MapTime, row.MapRatio, row.TotalTime, row.TotalRatio)
		}
	})
	cfg.printf("\n")
	return res, nil
}
