package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/formats/rcfile"
	"colmr/internal/formats/seq"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// seqOptsNone is the plain SequenceFile configuration used as the
// conversion source in Table 2 and the reference dataset elsewhere.
func seqOptsNone() seq.Options { return seq.Options{Mode: seq.ModeNone} }

// Table2Row is one conversion target of Table 2.
type Table2Row struct {
	Layout  string
	Minutes float64
}

// Table2Result holds the load-time comparison.
type Table2Result struct {
	Rows        []Table2Row
	ScaleFactor float64
}

// Get returns the row for a layout.
func (r *Table2Result) Get(layout string) Table2Row {
	for _, row := range r.Rows {
		if row.Layout == layout {
			return row
		}
	}
	return Table2Row{}
}

// Table2 reproduces Appendix B.3: the time to convert the synthetic SEQ
// dataset to CIF, CIF with skip lists, and RCFile. The paper's point is
// that the skip-list double-buffering overhead is minor (89 vs 93 minutes)
// and CIF loads cost about the same as RCFile loads.
func Table2(cfg Config) (*Table2Result, error) {
	n := cfg.records(60_000)
	gen := workload.NewSynthetic(cfg.Seed)
	cluster := sim.DefaultCluster()
	model := sim.DefaultModelFor(cluster)

	res := &Table2Result{}
	convert := func(name string, do func(fs *hdfs.FileSystem, conf *mapred.JobConf, stats *sim.TaskStats) error) error {
		fs := newFS(cluster, cfg.Seed, true)
		seqBytes, err := writeSEQ(fs, "/t2/src.seq", gen, n, seqOptsNone(), nil)
		if err != nil {
			return err
		}
		k := float64(Figure7Target) / float64(seqBytes)
		res.ScaleFactor = k
		var stats sim.TaskStats
		conf := &mapred.JobConf{InputPaths: []string{"/t2/src.seq"}}
		if err := do(fs, conf, &stats); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		stats.Scale(k)
		res.Rows = append(res.Rows, Table2Row{Layout: name, Minutes: model.LoadSeconds(stats) / 60})
		return nil
	}

	schema := gen.Schema()
	if err := convert("CIF", func(fs *hdfs.FileSystem, conf *mapred.JobConf, stats *sim.TaskStats) error {
		_, err := core.Load(fs, &seq.InputFormat{}, conf, schema, "/t2/cif", core.LoadOptions{SplitRecords: n/8 + 1}, stats)
		return err
	}); err != nil {
		return nil, err
	}
	if err := convert("CIF-SL", func(fs *hdfs.FileSystem, conf *mapred.JobConf, stats *sim.TaskStats) error {
		_, err := core.Load(fs, &seq.InputFormat{}, conf, schema, "/t2/cifsl", core.LoadOptions{
			SplitRecords: n/8 + 1,
			Default:      colfile.Options{Layout: colfile.SkipList},
		}, stats)
		return err
	}); err != nil {
		return nil, err
	}
	if err := convert("RCFile", func(fs *hdfs.FileSystem, conf *mapred.JobConf, stats *sim.TaskStats) error {
		in := &seq.InputFormat{}
		splits, err := in.Splits(fs, conf)
		if err != nil {
			return err
		}
		f, err := fs.Create("/t2/out.rc", hdfs.AnyNode)
		if err != nil {
			return err
		}
		f.SetStats(&stats.IO)
		w, err := rcfile.NewWriter(f, "/t2/out.rc", schema, rcfile.Options{RowGroupBytes: 4 << 20}, &stats.CPU)
		if err != nil {
			return err
		}
		for _, sp := range splits {
			rr, err := in.Open(fs, conf, sp, hdfs.AnyNode, stats)
			if err != nil {
				return err
			}
			for {
				_, v, ok, err := rr.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if err := w.Append(v.(*serde.GenericRecord)); err != nil {
					return err
				}
			}
			rr.Close()
		}
		if err := w.Close(); err != nil {
			return err
		}
		return f.Close()
	}); err != nil {
		return nil, err
	}

	cfg.printf("Table 2: load times, SEQ -> target format (%d GB dataset)\n", Figure7Target/sim.GB)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "layout\ttime (min)")
		for _, row := range res.Rows {
			fmt.Fprintf(w, "%s\t%.1f\n", row.Layout, row.Minutes)
		}
	})
	cfg.printf("\n")
	return res, nil
}
