package bench

import (
	"fmt"
	"text/tabwriter"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

// Vectorized measures the batch execution path: the same scans run
// record-at-a-time (scan.Spec vectorization off), vectorized cold, and
// vectorized through a session whose vector cache stays warm across rounds.
// The sweep crosses predicate selectivity with the column layouts.
//
// The filter column is adversarial to the pruning stack on purpose: str1
// cycles through vecTagCycle distinct values, so every stats window spans
// the whole domain (zone maps never prune) and every window contains every
// value (Bloom filters never prune, the needle is everywhere). Both modes
// therefore decode the filter column in full over identical bytes — the
// comparison isolates execution, with pruning and I/O held fixed:
//
//	scalar     one boxed object per value through Predicate.Eval
//	           (CostModel.StringRate + ValueCost per record);
//	vectorized the same bytes decoded into flat vectors
//	           (CostModel.VecRate + VecValueCost per row, VecBatchCost
//	           per batch) and one VecEval per batch;
//	warm       rounds 2..VectorizedRounds of a session: the filter
//	           column's vectors serve from the vec.Cache — no read, no
//	           decode — visible as VecCacheHits/DecodeSavedValues.
//
// The projection is the narrow int0 column, so the comparison is not
// diluted by projection work common to both modes. The layout dimension
// spans the regimes: plain and skip-list isolate the decode loop itself;
// the compressed blocks put a decompression term — identical in both modes
// — under the ratio, LZO lightly and ZLIB heavily (inflate at 90 MB/s is
// slower than boxed string decode, so ZLIB's ratio is decompression-bound
// by construction and stays well under the uncompressed layouts').
//
// Record counts must agree across all modes and rounds; the experiment
// fails otherwise. The shape test additionally pins the acceptance floor:
// >= 2x modeled-CPU reduction on the selective string-equality arm at equal
// charged bytes, and warm rounds saving exactly Records decoded values each.

// VectorizedRounds is the number of rounds each warm session runs.
const VectorizedRounds = 3

// vectorizedSplits is the number of split-directories in the swept dataset.
const vectorizedSplits = 16

// vecTagCycle is the cardinality of the cyclic filter column: any run of
// >= vecTagCycle consecutive records contains every value, which is what
// defeats window statistics of every kind.
const vecTagCycle = 64

// vecTag renders filter value v. Zero-padding keeps lexicographic order
// numeric, so range predicates select exact fractions of the cycle.
func vecTag(v int64) string { return fmt.Sprintf("tag-%020d", v) }

// cyclicTagGen wraps the synthetic generator, replacing str1 with the
// cyclic tag.
type cyclicTagGen struct {
	*workload.Synthetic
	idx int // str1's field index, resolved from the schema
}

func (g cyclicTagGen) Record(i int64) *serde.GenericRecord {
	rec := g.Synthetic.Record(i)
	rec.SetAt(g.idx, vecTag(i%vecTagCycle))
	return rec
}

// VectorizedRound is one warm-session round of a cell.
type VectorizedRound struct {
	Cost ScanCost
	// CPU is the round's modeled decode/evaluate seconds.
	CPU float64
	// VecCacheHits and DecodeSaved are the round's vector-cache counters:
	// batches served without decoding, and the values that skipped.
	VecCacheHits int64
	DecodeSaved  int64
}

// VectorizedCell is one (layout, arm) comparison.
type VectorizedCell struct {
	Layout string
	Arm    string
	// Matches is the number of qualifying records (identical in all modes).
	Matches int64
	// Scalar and Vector are the record-at-a-time and cold vectorized costs.
	Scalar ScanCost
	Vector ScanCost
	// ScalarCPU and VectorCPU are the modeled decode/evaluate seconds the
	// acceptance ratio is judged on (I/O excluded; charged bytes are equal
	// by construction).
	ScalarCPU float64
	VectorCPU float64
	// CPURatio is ScalarCPU / VectorCPU.
	CPURatio float64
	// VecBatches and RowsVectorized are the cold vectorized run's batch
	// counters.
	VecBatches     int64
	RowsVectorized int64
	// Warm holds the session rounds (round 1 warms the empty cache).
	Warm []VectorizedRound
}

// VectorizedResult holds the sweep.
type VectorizedResult struct {
	Cells   []VectorizedCell
	Records int64
	Rounds  int
	// VecCacheBytes is each warm session's vector-cache budget.
	VecCacheBytes int64
}

// Get returns the cell for a layout and arm.
func (r *VectorizedResult) Get(layout, arm string) VectorizedCell {
	for _, c := range r.Cells {
		if c.Layout == layout && c.Arm == arm {
			return c
		}
	}
	return VectorizedCell{}
}

// vectorizedJob builds one arm's job: filter on str1, project int0, with
// the execution mode chosen through the typed builder.
func vectorizedJob(dataset string, pred scan.Predicate, vectorize bool) *mapred.Job {
	return core.ScanDataset(dataset).
		Columns("int0").
		Where(pred).
		Vectorize(vectorize).
		Job(mapred.MapperFunc(func(_, v any, emit mapred.Emit) error {
			_, err := v.(serde.Record).Get("int0")
			return err
		}))
}

// Vectorized runs the sweep.
func Vectorized(cfg Config) (*VectorizedResult, error) {
	n := cfg.records(100_000)
	syn := workload.NewSynthetic(cfg.Seed)
	idx := syn.Schema().FieldIndex("str1")
	if idx < 0 {
		return nil, fmt.Errorf("bench: synthetic schema has no str1 column")
	}
	gen := cyclicTagGen{syn, idx}
	cluster := sim.SingleNode()
	model := sim.DefaultModelFor(cluster)
	fs := newFS(cluster, cfg.Seed, true)

	layouts := []struct {
		name string
		opts colfile.Options
	}{
		{"plain", colfile.Options{Layout: colfile.Plain, StatsEvery: 256}},
		{"skiplist", colfile.Options{Layout: colfile.SkipList, StatsEvery: 256}},
		{"block-lzo", colfile.Options{Layout: colfile.Block, Codec: "lzo", StatsEvery: 256}},
		{"block-zlib", colfile.Options{Layout: colfile.Block, Codec: "zlib", StatsEvery: 256}},
	}
	arms := []struct {
		name string
		pred scan.Predicate
	}{
		// The headline string-equality arm: 1 in vecTagCycle records match,
		// and the needle's presence in every window keeps every byte read.
		{"eq 1/64", scan.Eq("str1", vecTag(7))},
		{"range 1/4", scan.Between("str1", vecTag(16), vecTag(31))},
		{"most 63/64", scan.Not(scan.Eq("str1", vecTag(7)))},
	}

	res := &VectorizedResult{
		Records:       n,
		Rounds:        VectorizedRounds,
		VecCacheBytes: 64 << 20,
	}
	cpu := func(st sim.TaskStats) float64 {
		return model.CPUSeconds(st.CPU) + model.VecSeconds(st)
	}
	for _, lay := range layouts {
		dir := "/vectorized/" + lay.name
		opts := core.LoadOptions{
			Default:      lay.opts,
			SplitRecords: (n + vectorizedSplits - 1) / vectorizedSplits,
		}
		if _, err := writeCIF(fs, dir, gen, n, opts, nil); err != nil {
			return nil, fmt.Errorf("loading %s: %w", lay.name, err)
		}
		for _, arm := range arms {
			scalar, err := mapred.Run(fs, vectorizedJob(dir, arm.pred, false))
			if err != nil {
				return nil, fmt.Errorf("%s %s (scalar): %w", lay.name, arm.name, err)
			}
			cold, err := mapred.Run(fs, vectorizedJob(dir, arm.pred, true))
			if err != nil {
				return nil, fmt.Errorf("%s %s (vectorized): %w", lay.name, arm.name, err)
			}
			if cold.Total.RecordsProcessed != scalar.Total.RecordsProcessed {
				return nil, fmt.Errorf("%s %s: vectorized matched %d records, scalar %d",
					lay.name, arm.name, cold.Total.RecordsProcessed, scalar.Total.RecordsProcessed)
			}
			cell := VectorizedCell{
				Layout:         lay.name,
				Arm:            arm.name,
				Matches:        scalar.Total.RecordsProcessed,
				Scalar:         scanCost(scalar.Total, model),
				Vector:         scanCost(cold.Total, model),
				ScalarCPU:      cpu(scalar.Total),
				VectorCPU:      cpu(cold.Total),
				VecBatches:     cold.Total.VecBatches,
				RowsVectorized: cold.Total.RowsVectorized,
			}
			cell.CPURatio = ratio(cell.ScalarCPU, cell.VectorCPU)

			// A fresh session per cell: round 1 warms an empty vector cache,
			// later rounds must serve the filter column entirely from it.
			session := mapred.NewSession(fs, mapred.SessionOptions{VecCacheBytes: res.VecCacheBytes})
			for round := 1; round <= VectorizedRounds; round++ {
				pending := session.Submit(vectorizedJob(dir, arm.pred, true))
				br, err := session.Wait()
				if err != nil {
					return nil, fmt.Errorf("%s %s (warm round %d): %w", lay.name, arm.name, round, err)
				}
				warm, err := pending.Result()
				if err != nil {
					return nil, err
				}
				if warm.Total.RecordsProcessed != cell.Matches {
					return nil, fmt.Errorf("%s %s: warm round %d matched %d records, scalar %d",
						lay.name, arm.name, round, warm.Total.RecordsProcessed, cell.Matches)
				}
				_, hits, saved := mapred.VecStats(br)
				cell.Warm = append(cell.Warm, VectorizedRound{
					Cost:         scanCost(warm.Total, model),
					CPU:          cpu(warm.Total),
					VecCacheHits: hits,
					DecodeSaved:  saved,
				})
			}
			res.Cells = append(res.Cells, cell)
		}
	}

	cfg.printf("Vectorized execution sweep: batch evaluation + vector cache vs record-at-a-time (%d records, %d split-directories, filter on cyclic str1 — unprunable by construction — project int0, %d warm rounds, %d MB vector cache)\n",
		n, vectorizedSplits, VectorizedRounds, res.VecCacheBytes>>20)
	cfg.table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "layout\tarm\tmatches\tscalar CPU\tvec CPU\tratio\tbatches\trows vec\tcharged MB\twarm CPU (last)\twarm hits\tdecode saved")
		for _, c := range res.Cells {
			last := c.Warm[len(c.Warm)-1]
			fmt.Fprintf(w, "%s\t%s\t%d\t%.4fs\t%.4fs\t%.1fx\t%d\t%d\t%.2f\t%.4fs\t%d\t%d\n",
				c.Layout, c.Arm, c.Matches,
				c.ScalarCPU, c.VectorCPU, c.CPURatio,
				c.VecBatches, c.RowsVectorized,
				float64(c.Vector.ChargedBytes)/(1<<20),
				last.CPU, last.VecCacheHits, last.DecodeSaved)
		}
	})
	cfg.printf("\n")
	return res, nil
}
