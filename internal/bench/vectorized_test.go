package bench

import "testing"

// TestVectorizedShape is the acceptance gate of batch execution: on the
// selective string-equality arm the vectorized path must halve the modeled
// decode CPU at exactly equal charged bytes (same reads, cheaper loop), every
// record that reaches evaluation must go through a batch, and warm session
// rounds must skip the filter column's decode entirely — DecodeSaved equal to
// the full record count, every round after the warm-up.
func TestVectorizedShape(t *testing.T) {
	scale := 0.1
	if testing.Short() {
		scale = 0.02
	}
	res, err := Vectorized(testCfg(scale))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 12 {
		t.Fatalf("got %d cells, want 12 (4 layouts x 3 arms)", len(res.Cells))
	}

	for _, c := range res.Cells {
		ctx := c.Layout + "/" + c.Arm
		if c.Matches <= 0 || c.Matches >= res.Records {
			t.Errorf("%s: %d of %d records matched — the arm is degenerate", ctx, c.Matches, res.Records)
		}
		// The filter column is unprunable by construction: every record is
		// batch-evaluated, in at least one batch per split-directory.
		if c.RowsVectorized != res.Records {
			t.Errorf("%s: vectorized %d rows, want all %d", ctx, c.RowsVectorized, res.Records)
		}
		if c.VecBatches <= 0 {
			t.Errorf("%s: no batches built", ctx)
		}
		// Identical reads: execution mode must not move a single charged
		// byte (pruning trajectories are shared, only the loop differs).
		if c.Vector.ChargedBytes != c.Scalar.ChargedBytes {
			t.Errorf("%s: vectorized charged %d bytes, scalar %d — modes read differently",
				ctx, c.Vector.ChargedBytes, c.Scalar.ChargedBytes)
		}
		if c.Vector.LogicalBytes != c.Scalar.LogicalBytes {
			t.Errorf("%s: vectorized logical %d bytes, scalar %d",
				ctx, c.Vector.LogicalBytes, c.Scalar.LogicalBytes)
		}
		// Flat decode is never slower than boxing, on any arm or layout.
		if c.VectorCPU > c.ScalarCPU {
			t.Errorf("%s: vectorized CPU %.5fs exceeds scalar %.5fs", ctx, c.VectorCPU, c.ScalarCPU)
		}

		// Warm rounds: round 1 faces an empty cache; every later round
		// serves the filter column's every vector from it — one hit per
		// batch, the whole dataset's decode saved, and cheaper than cold.
		if len(c.Warm) != res.Rounds {
			t.Fatalf("%s: %d warm rounds recorded, want %d", ctx, len(c.Warm), res.Rounds)
		}
		if r1 := c.Warm[0]; r1.VecCacheHits != 0 || r1.DecodeSaved != 0 {
			t.Errorf("%s: warm-up round hit an empty cache (%d hits, %d saved)",
				ctx, r1.VecCacheHits, r1.DecodeSaved)
		}
		for i, r := range c.Warm[1:] {
			if r.DecodeSaved != res.Records {
				t.Errorf("%s: warm round %d saved %d decoded values, want all %d",
					ctx, i+2, r.DecodeSaved, res.Records)
			}
			if r.VecCacheHits != c.VecBatches {
				t.Errorf("%s: warm round %d served %d batches from cache, want %d",
					ctx, i+2, r.VecCacheHits, c.VecBatches)
			}
			if r.CPU >= c.VectorCPU {
				t.Errorf("%s: warm round %d CPU %.5fs not below cold %.5fs",
					ctx, i+2, r.CPU, c.VectorCPU)
			}
		}
	}

	// The acceptance floor: >= 2x modeled-CPU reduction on the selective
	// string-equality arm wherever the decode loop is the cost — ZLIB's
	// arm is decompression-bound by construction (inflate is slower than
	// boxed decode and identical in both modes), so its floor is only that
	// vectorization still clearly pays under the common term.
	for _, layout := range []string{"plain", "skiplist", "block-lzo"} {
		if c := res.Get(layout, "eq 1/64"); c.CPURatio < 2 {
			t.Errorf("%s eq arm: CPU ratio %.2fx, want >= 2x", layout, c.CPURatio)
		}
	}
	if c := res.Get("block-zlib", "eq 1/64"); c.CPURatio < 1.15 {
		t.Errorf("block-zlib eq arm: CPU ratio %.2fx, want >= 1.15x", c.CPURatio)
	}
}
