package colfile

import (
	"fmt"
	"math/rand"
	"testing"

	"colmr/internal/serde"
)

// TestBloomRoundTripStrings writes a high-cardinality string column in
// every layout and checks the recovered filters: every written value
// probes positive in its group and in the whole-file aggregate, and an
// absent value is refuted by (nearly) every group.
func TestBloomRoundTripStrings(t *testing.T) {
	schema := serde.String()
	const n = 400
	val := func(i int) string { return fmt.Sprintf("http://host-%03d.example.com/%d", i%211, i) }
	for _, opts := range allLayouts() {
		if opts.Layout == DCSL {
			continue // map-only layout
		}
		opts.StatsEvery = 50
		name := opts.Layout.String() + "/" + opts.Codec
		f, _ := writeColumn(t, schema, opts, n, func(i int) any { return val(i) })
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		src := statsSource(t, r, name)

		agg, err := FileStats(f.reader(), schema)
		if err != nil || agg == nil {
			t.Fatalf("%s: no file aggregate (%v)", name, err)
		}
		if agg.Bloom == nil {
			t.Fatalf("%s: aggregate carries no bloom filter", name)
		}

		negGroups, groups := 0, 0
		for rec := int64(0); rec < n; {
			st, end := src.GroupStats(rec)
			if st == nil {
				t.Fatalf("%s: no stats for record %d", name, rec)
			}
			if st.Bloom == nil {
				t.Fatalf("%s: group at %d carries no bloom filter", name, rec)
			}
			for i := rec; i < end; i++ {
				if !st.Bloom.MayContainString(val(int(i))) {
					t.Fatalf("%s: group [%d,%d) refutes its own value %q", name, rec, end, val(int(i)))
				}
			}
			if !st.Bloom.MayContainString("definitely-not-a-written-url") {
				negGroups++
			}
			groups++
			rec = end
		}
		if negGroups == 0 {
			t.Errorf("%s: no group refuted an absent value (%d groups)", name, groups)
		}
		for i := 0; i < n; i++ {
			if !agg.Bloom.MayContainString(val(i)) {
				t.Fatalf("%s: aggregate refutes written value %q", name, val(i))
			}
		}
		if agg.Bloom.MayContainString("definitely-not-a-written-url") &&
			agg.Bloom.MayContainString("another-absent-value") &&
			agg.Bloom.MayContainString("and-one-more-absent") {
			t.Errorf("%s: aggregate filter refutes nothing", name)
		}
	}
}

// TestBloomRoundTripMapKeys: a DCSL map column blooms its keys, including
// keys past the statsMaxKeys cap, so key-existence stays refutable when
// the key list is capped.
func TestBloomRoundTripMapKeys(t *testing.T) {
	schema := mapSchema()
	const n = 200
	// > statsMaxKeys distinct keys per group forces KeysCapped.
	gen := func(i int) any {
		m := map[string]any{}
		for j := 0; j < 3; j++ {
			m[fmt.Sprintf("key-%03d", (i*3+j)%150)] = int32(i)
		}
		return m
	}
	opts := Options{Layout: DCSL, Levels: []int{100, 10}, StatsEvery: 50}
	f, _ := writeColumn(t, schema, opts, n, gen)
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := statsSource(t, r, "dcsl")
	capped := false
	for rec := int64(0); rec < n; {
		st, end := src.GroupStats(rec)
		if st == nil || st.Bloom == nil {
			t.Fatalf("group at %d missing stats or bloom", rec)
		}
		capped = capped || st.KeysCapped
		if st.HasKey("key-that-never-existed") {
			t.Fatalf("group at %d claims an absent key", rec)
		}
		rec = end
	}
	if !capped {
		t.Fatal("test never exercised a capped key universe")
	}
}

// TestBloomDisabledAbsent: Options.NoBloom writes a section without
// filters, and pre-bloom sections (CFS2, CFST) parse to filter-less stats
// — absent filters must behave exactly like today.
func TestBloomDisabledAbsent(t *testing.T) {
	schema := serde.String()
	const n = 100
	opts := Options{Layout: Plain, StatsEvery: 25, NoBloom: true}
	f, _ := writeColumn(t, schema, opts, n, func(i int) any { return fmt.Sprintf("v%d", i) })
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := statsSource(t, r, "plain")
	for rec := int64(0); rec < n; {
		st, end := src.GroupStats(rec)
		if st == nil {
			t.Fatalf("no stats at %d", rec)
		}
		if st.Bloom != nil {
			t.Fatalf("NoBloom section carries a filter at %d", rec)
		}
		rec = end
	}
	agg, err := FileStats(f.reader(), schema)
	if err != nil || agg == nil {
		t.Fatalf("no aggregate (%v)", err)
	}
	if agg.Bloom != nil {
		t.Fatal("NoBloom aggregate carries a filter")
	}

	// Legacy encoders round-trip without filters (and reject them).
	zm := newStatsCollector(schema, 25, 0)
	for i := 0; i < n; i++ {
		zm.observe(fmt.Sprintf("v%d", i))
	}
	zm.cut()
	for _, enc := range []func() ([]byte, error){
		func() ([]byte, error) { return appendStatsSection(nil, schema, zm.entries) },
		func() ([]byte, error) {
			agg := mergeEntries(zm.entries)
			return appendStatsSectionV2(nil, schema, agg, zm.entries)
		},
	} {
		blob, err := enc()
		if err != nil {
			t.Fatal(err)
		}
		entries, _, err := parseStatsSection(blob, schema)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != len(zm.entries) {
			t.Fatalf("legacy section decoded %d entries, want %d", len(entries), len(zm.entries))
		}
		for i := range entries {
			if entries[i].st.Bloom != nil {
				t.Fatal("legacy section decoded a bloom filter")
			}
		}
	}
	bloomed := newStatsCollector(schema, 0, 1<<12)
	bloomed.observe("x")
	bloomed.cut()
	if _, err := appendStatsSectionV2(nil, schema, &bloomed.entries[0].st, bloomed.entries); err == nil {
		t.Fatal("CFS2 encoder accepted a bloom-bearing entry")
	}
}

// TestBloomAbandonsPastCap: a collector whose distinct count guarantees a
// saturated filter at the size cap stops collecting and yields no filter,
// instead of building one buildBloom would drop anyway.
func TestBloomAbandonsPastCap(t *testing.T) {
	schema := serde.String()
	c := newStatsCollector(schema, 0, 64) // 512-bit cap: abandons past 128 distinct
	for i := 0; i < 1000; i++ {
		c.observe(fmt.Sprintf("distinct-%d", i))
	}
	if !c.bloomAbandoned {
		t.Fatal("collector never abandoned past the saturation-certain threshold")
	}
	if c.bloomSet != nil {
		t.Fatal("abandoned collector retains its dedup set")
	}
	c.cut()
	if c.entries[0].st.Bloom != nil {
		t.Fatal("abandoned group still produced a filter")
	}
	// The next group starts fresh.
	c.observe("one-value")
	c.cut()
	if c.entries[1].st.Bloom == nil {
		t.Fatal("abandonment leaked into the next group")
	}
}

// TestBloomSaturatedAggregate: merging many disjoint group filters into a
// whole-file aggregate saturates and drops to nil — the aggregate still
// parses and prunes by zone maps alone.
func TestBloomSaturatedAggregate(t *testing.T) {
	schema := serde.String()
	mk := func(tag string, n int) statsEntry {
		c := newStatsCollector(schema, 0, 64) // one-block cap: saturates fast
		for i := 0; i < n; i++ {
			c.observe(fmt.Sprintf("%s-%d", tag, i))
		}
		c.cut()
		return c.entries[0]
	}
	var entries []statsEntry
	for g := 0; g < 12; g++ {
		e := mk(fmt.Sprintf("g%d", g), 40)
		if e.st.Bloom == nil {
			t.Fatalf("group %d built no filter", g)
		}
		entries = append(entries, e)
	}
	agg := mergeEntries(entries)
	if agg.Bloom != nil {
		t.Fatal("aggregate of 12 overfull one-block filters did not saturate to nil")
	}
	// A saturated (nil) filter round-trips as "absent".
	blob, err := appendStatsSectionV4(nil, schema, agg, entries)
	if err != nil {
		t.Fatal(err)
	}
	got, gotAgg, err := parseStatsSection(blob, schema)
	if err != nil {
		t.Fatal(err)
	}
	if gotAgg.Bloom != nil {
		t.Fatal("saturated aggregate decoded a filter")
	}
	for i := range got {
		if got[i].st.Bloom == nil {
			t.Fatalf("group %d lost its filter in the round trip", i)
		}
	}
}

// TestDCSLProberBloomConsistency: the key prober and the group Bloom
// filter must agree — wherever the filter refutes a key, the prober (and
// the materialized map) must report it absent, with or without the bloom
// fast path. This is the soundness contract evalCtx.HasKey relies on.
func TestDCSLProberBloomConsistency(t *testing.T) {
	schema := mapSchema()
	const n = 150
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	vals := make([]any, n)
	for i := range vals {
		m := map[string]any{}
		for j := 0; j < rng.Intn(4); j++ {
			m[keys[rng.Intn(len(keys))]] = int32(i)
		}
		vals[i] = m
	}
	opts := Options{Layout: DCSL, Levels: []int{100, 10}, StatsEvery: 20}
	f, _ := writeColumn(t, schema, opts, n, func(i int) any { return vals[i] })

	probes := append(append([]string(nil), keys...), "absent-a", "absent-b")
	for _, noBloom := range []bool{false, true} {
		r, err := NewReaderOpts(f.reader(), schema, ReaderOptions{NoBloom: noBloom}, nil)
		if err != nil {
			t.Fatal(err)
		}
		src := statsSource(t, r, "dcsl")
		kp := r.(KeyProber)
		for rec := int64(0); rec < n; rec++ {
			if err := r.SkipTo(rec); err != nil {
				t.Fatal(err)
			}
			st, _ := src.GroupStats(rec)
			if st == nil || st.Bloom == nil {
				t.Fatalf("record %d: missing group bloom", rec)
			}
			for _, key := range probes {
				has, answered, err := kp.HasKey(key)
				if err != nil {
					t.Fatal(err)
				}
				_, want := vals[rec].(map[string]any)[key]
				if answered && has != want {
					t.Fatalf("noBloom=%v record %d key %q: prober says %v, map says %v",
						noBloom, rec, key, has, want)
				}
				if !st.Bloom.MayContainString(key) {
					// Bloom-negative is a proof: the prober must agree.
					if !answered || has {
						t.Fatalf("noBloom=%v record %d key %q: bloom refutes but prober answered=%v has=%v",
							noBloom, rec, key, answered, has)
					}
					if want {
						t.Fatalf("record %d key %q: bloom refutes a present key", rec, key)
					}
				}
			}
		}
	}
}
