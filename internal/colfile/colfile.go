package colfile

import (
	"encoding/binary"
	"fmt"
	"io"

	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Layout selects the physical organization of a column file.
type Layout uint8

// Layouts. See the package comment.
const (
	Plain Layout = iota
	SkipList
	Block
	DCSL
)

// String returns the layout's configuration name.
func (l Layout) String() string {
	switch l {
	case Plain:
		return "plain"
	case SkipList:
		return "skiplist"
	case Block:
		return "block"
	case DCSL:
		return "dcsl"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

// ParseLayout is the inverse of Layout.String.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "", "plain":
		return Plain, nil
	case "skiplist":
		return SkipList, nil
	case "block":
		return Block, nil
	case "dcsl":
		return DCSL, nil
	default:
		return 0, fmt.Errorf("colfile: unknown layout %q", s)
	}
}

// DefaultLevels are the paper's skip levels: 1000, 100, and 10 records.
var DefaultLevels = []int{1000, 100, 10}

// DefaultBlockBytes is the target uncompressed size of one compressed block.
const DefaultBlockBytes = 128 << 10

// Options configures a column file writer.
type Options struct {
	// Layout is the physical layout; Plain if unset.
	Layout Layout
	// Levels are the skip levels, descending; each must be a multiple of
	// the next. Defaults to DefaultLevels for SkipList and DCSL layouts.
	Levels []int
	// Codec is the Block layout's compression codec name ("lzo", "zlib").
	Codec string
	// BlockBytes is the Block layout's target uncompressed block size.
	BlockBytes int
	// StatsEvery is the record-group granularity of the zone-map stats
	// section for Plain, SkipList, and DCSL layouts (Block layouts always
	// cut one group per compressed frame). 0 selects DefaultStatsEvery;
	// negative disables the stats section.
	StatsEvery int
	// NoBloom suppresses the per-group and whole-file Bloom filters the
	// stats section otherwise carries for string, bytes, and map columns.
	// The rest of the section (zone maps, key universes) is unaffected.
	NoBloom bool
}

func (o Options) withDefaults() Options {
	if len(o.Levels) == 0 {
		o.Levels = DefaultLevels
	}
	if o.BlockBytes == 0 {
		o.BlockBytes = DefaultBlockBytes
	}
	if o.Codec == "" {
		o.Codec = "none"
	}
	if o.StatsEvery == 0 {
		o.StatsEvery = DefaultStatsEvery
	}
	return o
}

func (o Options) validate() error {
	for i := 0; i+1 < len(o.Levels); i++ {
		if o.Levels[i] <= o.Levels[i+1] || o.Levels[i]%o.Levels[i+1] != 0 {
			return fmt.Errorf("colfile: levels %v must be descending with each a multiple of the next", o.Levels)
		}
	}
	if len(o.Levels) == 0 || o.Levels[len(o.Levels)-1] < 2 {
		return fmt.Errorf("colfile: smallest level must be >= 2")
	}
	if o.BlockBytes < 1 {
		return fmt.Errorf("colfile: block size must be positive")
	}
	return nil
}

const (
	headerMagic = "CF01"
	footerMagic = "CFE2"
	footerSize  = 8 + 4 + 4 // u64 record count + u32 stats size + magic
)

// header is the on-disk file header.
type header struct {
	layout Layout
	levels []int
	codec  string
}

func appendHeader(dst []byte, h header) []byte {
	dst = append(dst, headerMagic...)
	dst = append(dst, byte(h.layout))
	dst = append(dst, byte(len(h.levels)))
	for _, l := range h.levels {
		dst = binary.AppendUvarint(dst, uint64(l))
	}
	dst = binary.AppendUvarint(dst, uint64(len(h.codec)))
	dst = append(dst, h.codec...)
	return dst
}

// parseHeader reads the header from the front of the stream.
func parseHeader(s *stream) (header, error) {
	var h header
	magic, err := s.readFull(len(headerMagic))
	if err != nil {
		return h, fmt.Errorf("colfile: reading header: %w", err)
	}
	if string(magic) != headerMagic {
		return h, fmt.Errorf("colfile: bad magic %q", magic)
	}
	b, err := s.readFull(2)
	if err != nil {
		return h, fmt.Errorf("colfile: reading header: %w", err)
	}
	h.layout = Layout(b[0])
	if h.layout > DCSL {
		return h, fmt.Errorf("colfile: unknown layout byte %d", b[0])
	}
	nLevels := int(b[1])
	for i := 0; i < nLevels; i++ {
		l, err := s.readUvarint()
		if err != nil {
			return h, fmt.Errorf("colfile: reading levels: %w", err)
		}
		h.levels = append(h.levels, int(l))
	}
	cl, err := s.readUvarint()
	if err != nil {
		return h, fmt.Errorf("colfile: reading codec: %w", err)
	}
	if cl > 64 {
		return h, fmt.Errorf("colfile: absurd codec name length %d", cl)
	}
	cb, err := s.readFull(int(cl))
	if err != nil {
		return h, fmt.Errorf("colfile: reading codec: %w", err)
	}
	h.codec = string(cb)
	return h, nil
}

// appendFooter writes the fixed footer: record count, the byte length of
// the zone-map stats section that precedes it, and the magic.
func appendFooter(dst []byte, count int64, statsLen int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(count))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(statsLen))
	return append(dst, footerMagic...)
}

// unchargedReaderAt is implemented by readers (hdfs.FileReader) that can
// serve metadata reads outside the I/O accounting.
type unchargedReaderAt interface {
	UnchargedReadAt(p []byte, off int64) (int, error)
}

// readFooter reads the record count and stats-section length from the file
// tail without charging the accounting sink (footers are metadata, like the
// split's schema file).
func readFooter(r ReaderAtSize) (count, statsLen int64, err error) {
	size := r.Size()
	if size < footerSize {
		return 0, 0, fmt.Errorf("colfile: file too small for footer (%d bytes)", size)
	}
	var buf [footerSize]byte
	readAt := r.ReadAt
	if u, ok := r.(unchargedReaderAt); ok {
		readAt = u.UnchargedReadAt
	}
	if _, err := readAt(buf[:], size-footerSize); err != nil && err != io.EOF {
		return 0, 0, fmt.Errorf("colfile: reading footer: %w", err)
	}
	if string(buf[12:]) != footerMagic {
		return 0, 0, fmt.Errorf("colfile: bad footer magic %q", buf[12:])
	}
	count = int64(binary.LittleEndian.Uint64(buf[:8]))
	statsLen = int64(binary.LittleEndian.Uint32(buf[8:12]))
	if statsLen > size-footerSize {
		return 0, 0, fmt.Errorf("colfile: stats section length %d exceeds file", statsLen)
	}
	return count, statsLen, nil
}

// RecordCount reads a column file's record count from its footer without
// charging the accounting sink and without opening a reader. Pruning tiers
// use it to account for records they skip when the predicate needed no
// statistics at all (a constant-false predicate proves NoMatch without
// consulting any column).
func RecordCount(r ReaderAtSize) (int64, error) {
	count, _, err := readFooter(r)
	return count, err
}

// ReaderAtSize is the read-side abstraction: positional reads plus a known
// size. hdfs.FileReader and bytes.Reader both satisfy it.
type ReaderAtSize interface {
	io.ReaderAt
	Size() int64
}

// Writer appends column values to a file.
type Writer interface {
	// Append adds one value, which must conform to the column schema.
	Append(v any) error
	// Count returns the number of values appended so far.
	Count() int64
	// Close flushes buffered data and writes the footer.
	Close() error
}

// Reader iterates a column file.
type Reader interface {
	// Value decodes the value of the current record and advances past it.
	Value() (any, error)
	// SkipTo advances the cursor to the given record index without
	// materializing skipped values. The cost depends on the layout.
	SkipTo(target int64) error
	// Record returns the index of the record the cursor is positioned on.
	Record() int64
	// Total returns the number of records in the file.
	Total() int64
}

// KeyProber is implemented by readers (DCSL) that can decide whether the
// record at the cursor contains a map key more cheaply than materializing
// the value: one window-dictionary lookup refutes a whole window at a time,
// and a per-record id walk decides the rest without building the map — the
// paper's "extremely fast" dictionary decode applied to filtering. The
// cursor must be positioned on the record (SkipTo) before probing; probing
// never advances it. answered=false means the reader cannot answer cheaply
// and the caller should materialize the value instead.
type KeyProber interface {
	HasKey(key string) (has, answered bool, err error)
}

// groupPtrSize is the byte width of one skip pointer.
const groupPtrSize = 4

// levelsAt returns how many skip pointers the group at record index i has
// (one per level that divides i). A group exists wherever the smallest
// level divides i.
func levelsAt(levels []int, i int64) int {
	n := 0
	for _, l := range levels {
		if i%int64(l) == 0 {
			n++
		}
	}
	return n
}

// decodeValue decodes one value from the stream with transactional counter
// charging: on a retryable short buffer, counters are not polluted.
func decodeValue(s *stream, schema *serde.Schema, stats *sim.CPUStats) (any, error) {
	var v any
	err := s.decodeRetry(func(buf []byte) (int, error) {
		var local sim.CPUStats
		d := serde.NewDecoder(buf, &local)
		val, err := d.Value(schema)
		if err != nil {
			return 0, err
		}
		v = val
		if stats != nil {
			stats.Add(local)
		}
		return d.Pos(), nil
	})
	return v, err
}

// scanValue walks one value charging full per-type decode counters — the
// paper's "no deserialization savings" skip used by Plain layouts.
func scanValue(s *stream, schema *serde.Schema, stats *sim.CPUStats) error {
	return s.decodeRetry(func(buf []byte) (int, error) {
		var local sim.CPUStats
		d := serde.NewDecoder(buf, &local)
		if err := d.Scan(schema); err != nil {
			return 0, err
		}
		if stats != nil {
			stats.Add(local)
		}
		return d.Pos(), nil
	})
}
