package colfile

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"colmr/internal/serde"
	"colmr/internal/sim"
)

// memFile collects writer output and serves it back as a ReaderAtSize.
type memFile struct{ bytes.Buffer }

func (m *memFile) reader() ReaderAtSize { return bytes.NewReader(m.Bytes()) }

// allLayouts returns one Options per layout, exercising both codecs for
// Block. Map-only layouts are filtered by the caller.
func allLayouts() []Options {
	return []Options{
		{Layout: Plain},
		{Layout: SkipList, Levels: []int{100, 10}},
		{Layout: Block, Codec: "lzo", BlockBytes: 1 << 10},
		{Layout: Block, Codec: "zlib", BlockBytes: 1 << 10},
		{Layout: DCSL, Levels: []int{100, 10}},
	}
}

func mapSchema() *serde.Schema { return serde.MapOf(serde.Int()) }

// writeColumn writes n deterministic map values and returns the file plus
// the values.
func writeColumn(t *testing.T, schema *serde.Schema, opts Options, n int, gen func(i int) any) (*memFile, []any) {
	t.Helper()
	f := &memFile{}
	w, err := NewWriter(f, schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	var vals []any
	for i := 0; i < n; i++ {
		v := gen(i)
		vals = append(vals, v)
		if err := w.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != int64(n) {
		t.Fatalf("Count = %d, want %d", w.Count(), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return f, vals
}

func genMap(i int) any {
	return map[string]any{
		"content-type": int32(i),
		"server":       int32(i * 2),
		"etag":         int32(i * 3),
	}
}

func TestRoundTripAllLayouts(t *testing.T) {
	schema := mapSchema()
	const n = 437 // deliberately not a multiple of any level
	for _, opts := range allLayouts() {
		name := opts.Layout.String() + "/" + opts.Codec
		f, vals := writeColumn(t, schema, opts, n, genMap)
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Total() != n {
			t.Errorf("%s: Total = %d, want %d", name, r.Total(), n)
		}
		for i := 0; i < n; i++ {
			v, err := r.Value()
			if err != nil {
				t.Fatalf("%s: Value(%d): %v", name, i, err)
			}
			if !serde.ValuesEqual(schema, v, vals[i]) {
				t.Fatalf("%s: record %d mismatch: %v vs %v", name, i, v, vals[i])
			}
		}
		if _, err := r.Value(); err == nil {
			t.Errorf("%s: read past end succeeded", name)
		}
	}
}

// Skipping to an arbitrary target then reading must observe the same value
// as reading sequentially — for every layout.
func TestSkipToEquivalence(t *testing.T) {
	schema := mapSchema()
	const n = 1234
	for _, opts := range allLayouts() {
		opts := opts
		name := opts.Layout.String() + "/" + opts.Codec
		f, vals := writeColumn(t, schema, opts, n, genMap)
		rng := rand.New(rand.NewSource(31))
		// Monotone random targets, exercising pointer use and walks.
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatal(err)
		}
		pos := int64(0)
		for pos < n-1 {
			jump := int64(rng.Intn(200)) + 1
			target := pos + jump
			if target >= n {
				target = n - 1
			}
			if err := r.SkipTo(target); err != nil {
				t.Fatalf("%s: SkipTo(%d) from %d: %v", name, target, pos, err)
			}
			if r.Record() != target {
				t.Fatalf("%s: Record = %d, want %d", name, r.Record(), target)
			}
			v, err := r.Value()
			if err != nil {
				t.Fatalf("%s: Value at %d: %v", name, target, err)
			}
			if !serde.ValuesEqual(schema, v, vals[target]) {
				t.Fatalf("%s: record %d mismatch after skip", name, target)
			}
			pos = target + 1
		}
	}
}

func TestSkipToEnd(t *testing.T) {
	schema := mapSchema()
	for _, opts := range allLayouts() {
		f, _ := writeColumn(t, schema, opts, 57, genMap)
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SkipTo(57); err != nil {
			t.Errorf("%s: SkipTo(end): %v", opts.Layout, err)
		}
		if err := r.SkipTo(58); err == nil {
			t.Errorf("%s: SkipTo past end succeeded", opts.Layout)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	schema := mapSchema()
	for _, opts := range allLayouts() {
		f, _ := writeColumn(t, schema, opts, 0, genMap)
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", opts.Layout, err)
		}
		if r.Total() != 0 {
			t.Errorf("%s: Total = %d", opts.Layout, r.Total())
		}
		if _, err := r.Value(); err == nil {
			t.Errorf("%s: Value on empty file succeeded", opts.Layout)
		}
	}
}

// Exact-window sizes hit the flush-at-boundary path; window+1 leaves a
// single trailing value.
func TestWindowBoundaries(t *testing.T) {
	schema := mapSchema()
	for _, n := range []int{10, 100, 101, 199, 200, 201} {
		for _, layout := range []Layout{SkipList, DCSL} {
			opts := Options{Layout: layout, Levels: []int{100, 10}}
			f, vals := writeColumn(t, schema, opts, n, genMap)
			r, err := NewReader(f.reader(), schema, nil)
			if err != nil {
				t.Fatalf("%v n=%d: %v", layout, n, err)
			}
			for i := 0; i < n; i++ {
				v, err := r.Value()
				if err != nil {
					t.Fatalf("%v n=%d rec=%d: %v", layout, n, i, err)
				}
				if !serde.ValuesEqual(schema, v, vals[i]) {
					t.Fatalf("%v n=%d rec=%d mismatch", layout, n, i)
				}
			}
		}
	}
}

// Skip-list pointers must actually skip I/O: jumping most of a file reads
// far fewer logical bytes than scanning it.
func TestSkipListEliminatesWork(t *testing.T) {
	schema := serde.Bytes()
	const n = 5000
	gen := func(i int) any { return bytes.Repeat([]byte{byte(i)}, 500) }

	scanCost := func(opts Options, target int64) sim.CPUStats {
		f, _ := writeColumn(t, schema, opts, n, gen)
		var st sim.CPUStats
		r, err := NewReader(f.reader(), schema, &st)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SkipTo(target); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Value(); err != nil {
			t.Fatal(err)
		}
		return st
	}

	plain := scanCost(Options{Layout: Plain}, n-1)
	sl := scanCost(Options{Layout: SkipList}, n-1)
	plainWork := plain.RawBytes + plain.SkippedBytes
	slWork := sl.RawBytes + sl.SkippedBytes
	if slWork*10 > plainWork {
		t.Errorf("skip list walk cost %d not ≪ plain %d", slWork, plainWork)
	}
}

// DCSL files must be smaller than plain skip lists when map keys repeat —
// the compression property Table 1 relies on (61 GB vs 75 GB).
func TestDCSLCompresses(t *testing.T) {
	schema := mapSchema()
	const n = 2000
	gen := func(i int) any {
		return map[string]any{
			"content-type-header-x": int32(i),
			"content-length-header": int32(i),
			"last-modified-header":  int32(i),
		}
	}
	fPlain, _ := writeColumn(t, schema, Options{Layout: SkipList}, n, gen)
	fDCSL, _ := writeColumn(t, schema, Options{Layout: DCSL}, n, gen)
	if fDCSL.Len() >= fPlain.Len() {
		t.Errorf("DCSL %d bytes >= SkipList %d bytes", fDCSL.Len(), fPlain.Len())
	}
}

func TestBlockLazyDecompression(t *testing.T) {
	schema := serde.Bytes()
	const n = 2000
	gen := func(i int) any { return bytes.Repeat([]byte{byte(i)}, 200) }
	opts := Options{Layout: Block, Codec: "zlib", BlockBytes: 8 << 10}

	// Full scan decompresses everything.
	f, _ := writeColumn(t, schema, opts, n, gen)
	var full sim.CPUStats
	r, err := NewReader(f.reader(), schema, &full)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := r.Value(); err != nil {
			t.Fatal(err)
		}
	}

	// Skipping to the last record decompresses at most two frames.
	var lazy sim.CPUStats
	r2, err := NewReader(f.reader(), schema, &lazy)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.SkipTo(n - 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Value(); err != nil {
		t.Fatal(err)
	}
	if lazy.ZlibBytes*10 > full.ZlibBytes {
		t.Errorf("lazy decompression %d bytes not ≪ full %d", lazy.ZlibBytes, full.ZlibBytes)
	}
}

func TestDCSLRequiresMapSchema(t *testing.T) {
	f := &memFile{}
	if _, err := NewWriter(f, serde.Int(), Options{Layout: DCSL}, nil); err == nil {
		t.Error("DCSL writer over int column should fail")
	}
}

func TestWriterValidation(t *testing.T) {
	f := &memFile{}
	if _, err := NewWriter(f, mapSchema(), Options{Layout: SkipList, Levels: []int{10, 100}}, nil); err == nil {
		t.Error("ascending levels should fail")
	}
	if _, err := NewWriter(f, mapSchema(), Options{Layout: SkipList, Levels: []int{100, 30}}, nil); err == nil {
		t.Error("non-divisible levels should fail")
	}
	if _, err := NewWriter(f, mapSchema(), Options{Layout: Block, BlockBytes: -1}, nil); err == nil {
		t.Error("negative block size should fail")
	}
	if _, err := NewWriter(f, &serde.Schema{Kind: serde.KindArray}, Options{}, nil); err == nil {
		t.Error("invalid schema should fail")
	}
}

func TestCorruptFiles(t *testing.T) {
	schema := mapSchema()
	f, _ := writeColumn(t, schema, Options{Layout: Plain}, 10, genMap)
	good := f.Bytes()

	// Truncated footer.
	if _, err := NewReader(bytes.NewReader(good[:len(good)-4]), schema, nil); err == nil {
		t.Error("corrupt footer magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(good[:3]), schema, nil); err == nil {
		t.Error("tiny file accepted")
	}
	// Corrupt header magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := NewReader(bytes.NewReader(bad), schema, nil); err == nil {
		t.Error("corrupt header magic accepted")
	}
	// Corrupt layout byte.
	bad = append([]byte{}, good...)
	bad[4] = 99
	if _, err := NewReader(bytes.NewReader(bad), schema, nil); err == nil {
		t.Error("unknown layout accepted")
	}
}

func TestParseLayout(t *testing.T) {
	for _, l := range []Layout{Plain, SkipList, Block, DCSL} {
		got, err := ParseLayout(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLayout(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLayout("nope"); err == nil {
		t.Error("unknown layout name accepted")
	}
	if l, err := ParseLayout(""); err != nil || l != Plain {
		t.Errorf("empty layout = %v, %v; want Plain", l, err)
	}
}

// Property: for random values and random skip patterns, skip-then-read on a
// skip list matches a plain sequential read.
func TestSkipListPropertyEquivalence(t *testing.T) {
	schema := serde.MustParse(`V { string s, int i }`).Field("s")
	_ = schema
	valSchema := serde.String()
	const n = 600
	f, vals := writeColumn(t, valSchema, Options{Layout: SkipList, Levels: []int{100, 10}}, n,
		func(i int) any { return string(rune('a'+i%26)) + "-value" })

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, err := NewReader(f.reader(), valSchema, nil)
		if err != nil {
			return false
		}
		pos := int64(0)
		for pos < n {
			target := pos + int64(rng.Intn(150))
			if target >= n {
				return true
			}
			if err := r.SkipTo(target); err != nil {
				t.Logf("SkipTo(%d): %v", target, err)
				return false
			}
			v, err := r.Value()
			if err != nil {
				t.Logf("Value(%d): %v", target, err)
				return false
			}
			if v.(string) != vals[target].(string) {
				t.Logf("record %d: %q != %q", target, v, vals[target])
				return false
			}
			pos = target + 1
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRefillHookFires(t *testing.T) {
	schema := serde.Bytes()
	f, _ := writeColumn(t, schema, Options{Layout: Plain}, 100,
		func(i int) any { return make([]byte, 1000) })
	refills := 0
	r, err := NewReaderOpts(f.reader(), schema, ReaderOptions{Chunk: 4096, OnRefill: func(int, int) { refills++ }}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := r.Value(); err != nil {
			t.Fatal(err)
		}
	}
	if refills < 10 {
		t.Errorf("refill hook fired %d times; want >= 10 for 100KB at 4KB chunks", refills)
	}
}
