package colfile

import (
	"fmt"
	"math/rand"
	"testing"

	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Deterministic low-cardinality string data with nulls — the shape DCSL
// string columns are for.
func genSite(rng *rand.Rand) any {
	if rng.Intn(7) == 0 {
		return nil
	}
	return fmt.Sprintf("site-%02d", rng.Intn(12))
}

func writeStringDCSL(t *testing.T, schema *serde.Schema, n int, seed int64) (*memFile, []any) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return writeColumn(t, schema, Options{Layout: DCSL, Levels: []int{100, 10}}, n, func(i int) any {
		v := genSite(rng)
		if v != nil && schema.Kind == serde.KindBytes {
			return []byte(v.(string))
		}
		return v
	})
}

func TestDCSLStringRoundTrip(t *testing.T) {
	for _, schema := range []*serde.Schema{serde.String(), serde.Bytes()} {
		const n = 437
		f, vals := writeStringDCSL(t, schema, n, 11)
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", schema.Kind, err)
		}
		for i := 0; i < n; i++ {
			v, err := r.Value()
			if err != nil {
				t.Fatalf("%s: Value(%d): %v", schema.Kind, i, err)
			}
			if !serde.ValuesEqual(schema, v, vals[i]) {
				t.Fatalf("%s: record %d mismatch: %v vs %v", schema.Kind, i, v, vals[i])
			}
		}
	}
}

func TestDCSLStringSkipTo(t *testing.T) {
	schema := serde.String()
	const n = 1234
	f, vals := writeStringDCSL(t, schema, n, 12)
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	pos := int64(0)
	for pos < n-1 {
		target := pos + int64(rng.Intn(200)) + 1
		if target >= n {
			target = n - 1
		}
		if err := r.SkipTo(target); err != nil {
			t.Fatalf("SkipTo(%d) from %d: %v", target, pos, err)
		}
		v, err := r.Value()
		if err != nil {
			t.Fatalf("Value at %d: %v", target, err)
		}
		if !serde.ValuesEqual(schema, v, vals[target]) {
			t.Fatalf("record %d mismatch after skip", target)
		}
		pos = target + 1
	}
}

// Vector decode of a DCSL string column must box back to the same values
// the scalar reader produces, nulls included.
func TestDCSLStringDecodeVector(t *testing.T) {
	schema := serde.String()
	const n = 437
	f, vals := writeStringDCSL(t, schema, n, 14)
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	vd, ok := r.(VectorDecoder)
	if !ok {
		t.Fatal("DCSL reader does not implement VectorDecoder")
	}
	v := scan.NewVector(VecKindOf(schema), n)
	var cpu sim.CPUStats
	if err := vd.DecodeVector(0, n, v, &cpu); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !serde.ValuesEqual(schema, v.Value(i), vals[i]) {
			t.Fatalf("record %d: vector %v vs scalar %v", i, v.Value(i), vals[i])
		}
	}
	if cpu.VecValues == 0 {
		t.Error("vector decode charged no VecValues")
	}
}

// DecodeIDVector must tile the range with window segments whose
// dictionaries map each id back to the stored value, charge only id-width
// bytes, and answer false for layouts/kinds that aren't dictionary-encoded
// scalars.
func TestDictIdVectorDecode(t *testing.T) {
	schema := serde.String()
	const n = 437
	f, vals := writeStringDCSL(t, schema, n, 15)
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := r.(IDVectorDecoder)
	if !ok {
		t.Fatal("DCSL reader does not implement IDVectorDecoder")
	}
	iv := &scan.IDVector{}
	var cpu sim.CPUStats
	answered, err := id.DecodeIDVector(0, n, iv, &cpu)
	if err != nil {
		t.Fatal(err)
	}
	if !answered {
		t.Fatal("DCSL string column did not answer id decode")
	}
	if iv.Len() != n {
		t.Fatalf("id vector length %d, want %d", iv.Len(), n)
	}
	// Segments tile [0, n) in order.
	pos := 0
	for _, seg := range iv.Segs {
		if seg.Start != pos || seg.End <= seg.Start || seg.Dict == nil {
			t.Fatalf("bad segment %+v at pos %d", seg, pos)
		}
		pos = seg.End
	}
	if pos != n {
		t.Fatalf("segments cover [0,%d), want [0,%d)", pos, n)
	}
	// Every id resolves back to the original value through its window
	// dictionary; nulls carry the null bit.
	for _, seg := range iv.Segs {
		for i := seg.Start; i < seg.End; i++ {
			if vals[i] == nil {
				if !iv.IsNull(i) {
					t.Fatalf("record %d: null lost", i)
				}
				continue
			}
			if iv.IsNull(i) {
				t.Fatalf("record %d: spurious null", i)
			}
			needle := vals[i].(string)
			got, present := seg.Dict.ResolveID(needle)
			if !present {
				t.Fatalf("record %d: %q absent from window dictionary", i, needle)
			}
			if got != iv.IDs[i] {
				t.Fatalf("record %d: id %d, dict says %d", i, iv.IDs[i], got)
			}
		}
	}
	// Absent needles must be reported absent.
	for _, seg := range iv.Segs {
		if _, present := seg.Dict.ResolveID("no-such-site"); present {
			t.Fatal("absent needle resolved")
		}
	}
	if cpu.VecBytes > int64(n)*2 {
		t.Errorf("id decode charged %d vec bytes for %d records — ids should be narrow", cpu.VecBytes, n)
	}
	if cpu.ValuesMaterialized != 0 || cpu.StringBytes != 0 {
		t.Errorf("id decode materialized values (%d boxed, %d string bytes) — should build none",
			cpu.ValuesMaterialized, cpu.StringBytes)
	}

	// A DCSL map column must decline.
	mf, _ := writeColumn(t, mapSchema(), Options{Layout: DCSL, Levels: []int{100, 10}}, 50, genMap)
	mr, err := NewReader(mf.reader(), mapSchema(), nil)
	if err != nil {
		t.Fatal(err)
	}
	answered, err = mr.(IDVectorDecoder).DecodeIDVector(0, 50, &scan.IDVector{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if answered {
		t.Error("map DCSL column answered id decode")
	}
}

// Mid-file id decode (batch boundaries) must agree with a full decode.
func TestDictIdVectorDecodeRanges(t *testing.T) {
	schema := serde.String()
	const n = 512
	f, vals := writeStringDCSL(t, schema, n, 16)
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := r.(IDVectorDecoder)
	// Ranges chosen to straddle window boundaries (levels 100/10).
	for _, rg := range [][2]int64{{0, 37}, {37, 100}, {100, 295}, {295, 512}} {
		iv := &scan.IDVector{}
		answered, err := id.DecodeIDVector(rg[0], rg[1], iv, nil)
		if err != nil || !answered {
			t.Fatalf("range %v: answered=%v err=%v", rg, answered, err)
		}
		if iv.Len() != int(rg[1]-rg[0]) {
			t.Fatalf("range %v: len %d", rg, iv.Len())
		}
		for _, seg := range iv.Segs {
			for i := seg.Start; i < seg.End; i++ {
				rec := int(rg[0]) + i
				if vals[rec] == nil {
					if !iv.IsNull(i) {
						t.Fatalf("rec %d: null lost", rec)
					}
					continue
				}
				got, present := seg.Dict.ResolveID(vals[rec].(string))
				if !present || got != iv.IDs[i] {
					t.Fatalf("rec %d: id mismatch", rec)
				}
			}
		}
	}
}
