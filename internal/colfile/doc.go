// Package colfile implements the per-column file formats underlying CIF/COF
// (paper Sections 4.2, 5.2, 5.3). A column file stores the values of one
// column of one split, in one of four layouts:
//
//	Plain     concatenated self-delimiting values. Skipping a record
//	          requires walking its encoding, so lazy access yields no
//	          deserialization or I/O savings — the degradation mode the
//	          paper describes for non-skip-list files.
//	SkipList  values interleaved with skip blocks at 10/100/1000-record
//	          boundaries holding byte offsets ("Skip10 = 1099" in the
//	          paper's Figure 6), enabling O(1) skips per level.
//	Block     compressed blocks: frames of contiguous values compressed
//	          with LZO or ZLIB. A frame's header allows skipping it
//	          wholesale (lazy decompression), but touching any value in a
//	          frame decompresses the entire frame.
//	DCSL      dictionary compressed skip list, for map-typed columns: a
//	          skip list whose map values carry dictionary-compressed keys,
//	          with one key dictionary embedded per largest-level window.
//	          Values are accessible without decompressing a whole block.
//
// Every file is framed by a fixed header (magic "CF01": layout,
// parameters) and a fixed-size footer (magic "CFE2": record count plus the
// length of the statistics section that precedes it), so files are
// self-describing. Between the data region and the footer sits the stats
// section — per-record-group zone maps, key universes, and Bloom filters,
// led by a whole-file aggregate — written by all four layouts and read
// back footer-first without touching data. The byte-level specification of
// every layout and the stats lineage ("CFST" → "CFS2" → "CFS3") lives in
// docs/FORMAT.md; the format-spec CI check keeps that document covering
// every magic in this package.
//
// Role in the scheduler→file→group→value pipeline: this package is the
// statistics *storage* side. FileStats serves the scheduler tier (split
// elision reads only footers), StatsSource/FileStatsSource serve the
// reader's file and group tiers, and the DCSL reader's KeyProber serves
// the value tier (window-dictionary and group-Bloom key probes without
// materializing maps). The pruning *decisions* live in internal/scan; the
// readers here only expose statistics and never interpret predicates.
//
// Invariants the tests defend:
//
//   - Round trip (stats_test.go, bloomstats_test.go): every layout writes
//     a section whose decoded groups tile the record space exactly, whose
//     bounds contain every value they cover, and whose Bloom filters
//     may-contain every written value — with legacy CFST/CFS2 sections
//     (and Options.NoBloom files) still parsing to filter-less statistics
//     that behave exactly as before filters existed.
//   - Parser totality (stats_fuzz_test.go): the stats parser never panics
//     on arbitrary bytes, and whatever parses re-encodes and re-parses to
//     the same geometry.
//   - Prober soundness (bloomstats_test.go): wherever a group's Bloom
//     filter refutes a map key, the DCSL prober and the materialized map
//     agree the key is absent, with the bloom fast path on or off.
//   - Reader equivalence (colfile_test.go, stream_test.go): all layouts
//     return identical values and honor SkipTo geometry, which is what
//     lets the cost model compare them fairly.
package colfile
