package colfile

import (
	"fmt"
	"testing"

	"colmr/internal/serde"
)

// TestHistogramRoundTripAllLayouts: every layout's whole-file aggregate
// carries an equi-depth histogram (CFS4), and the decoded histogram's
// cumulative fractions track the written distribution within one bucket's
// width — the error bound equi-depth construction guarantees.
func TestHistogramRoundTripAllLayouts(t *testing.T) {
	schema := serde.Int()
	const n = 400
	for _, opts := range allLayouts() {
		if opts.Layout == DCSL {
			continue // map-only layout
		}
		opts.StatsEvery = 50
		name := opts.Layout.String() + "/" + opts.Codec
		f, _ := writeColumn(t, schema, opts, n, func(i int) any { return int32(i) })
		agg, err := FileStats(f.reader(), schema)
		if err != nil || agg == nil {
			t.Fatalf("%s: no file aggregate (%v)", name, err)
		}
		if agg.Hist == nil {
			t.Fatalf("%s: aggregate carries no histogram", name)
		}
		if agg.Hist.Total() <= 0 {
			t.Fatalf("%s: histogram holds no observations", name)
		}
		prev := 0.0
		slack := agg.Hist.MaxBucketFraction() + 0.05
		for _, probe := range []int32{0, 49, 99, 199, 399} {
			got, ok := agg.Hist.FractionBelow(probe, true)
			if !ok {
				t.Fatalf("%s: FractionBelow(%d) unanswerable", name, probe)
			}
			if got < prev {
				t.Fatalf("%s: FractionBelow not monotonic: %v after %v at %d", name, got, prev, probe)
			}
			want := float64(probe+1) / n
			if got < want-slack || got > want+slack {
				t.Errorf("%s: FractionBelow(%d) = %.3f, want %.3f ± %.3f", name, probe, got, want, slack)
			}
			prev = got
		}
	}
}

// TestHistogramLegacySectionsAbsent: CFST, CFS2, and CFS3 sections parse to
// histogram-less (and fill-less) statistics — absent histograms must behave
// exactly like today — and the legacy encoders reject entries carrying the
// CFS4-only features, mirroring the CFS2/bloom contract.
func TestHistogramLegacySectionsAbsent(t *testing.T) {
	schema := serde.Int()
	const n = 100
	zm := newStatsCollector(schema, 25, 0)
	for i := 0; i < n; i++ {
		zm.observe(int32(i))
	}
	zm.cut()
	encoders := []struct {
		name string
		enc  func() ([]byte, error)
	}{
		{"CFST", func() ([]byte, error) { return appendStatsSection(nil, schema, zm.entries) }},
		{"CFS2", func() ([]byte, error) {
			return appendStatsSectionV2(nil, schema, mergeEntries(zm.entries), zm.entries)
		}},
		{"CFS3", func() ([]byte, error) {
			return appendStatsSectionV3(nil, schema, mergeEntries(zm.entries), zm.entries)
		}},
	}
	for _, e := range encoders {
		blob, err := e.enc()
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		entries, agg, err := parseStatsSection(blob, schema)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if len(entries) != len(zm.entries) {
			t.Fatalf("%s: decoded %d entries, want %d", e.name, len(entries), len(zm.entries))
		}
		for i := range entries {
			if entries[i].st.Hist != nil || entries[i].st.BloomFill != 0 {
				t.Fatalf("%s: entry %d decoded CFS4 features", e.name, i)
			}
		}
		if agg != nil && (agg.Hist != nil || agg.BloomFill != 0) {
			t.Fatalf("%s: aggregate decoded CFS4 features", e.name)
		}
	}

	// A collector with sampling on yields a histogram-bearing aggregate the
	// CFS3 encoder must refuse: older sections cannot carry the feature.
	full := newStatsCollector(schema, 0, 0)
	full.histMax = 64
	for i := 0; i < n; i++ {
		full.observe(int32(i))
	}
	full.cut()
	if full.entries[0].st.Hist == nil {
		t.Fatal("sampling collector built no histogram")
	}
	if _, err := appendStatsSectionV3(nil, schema, &full.entries[0].st, stripNewerFeatures(full.entries)); err == nil {
		t.Fatal("CFS3 encoder accepted a histogram-bearing aggregate")
	}
}

// TestHistogramDegenerateRoundTrip: a constant column collapses to the
// smallest legal histogram — one bucket, exact equality answers — and the
// geometry (and the recorded bloom fill) survives the CFS4 round trip.
func TestHistogramDegenerateRoundTrip(t *testing.T) {
	schema := serde.String()
	full := newStatsCollector(schema, 0, 1<<10)
	full.histMax = 64
	for i := 0; i < 50; i++ {
		full.observe("constant")
	}
	full.cut()
	st := &full.entries[0].st
	if st.Hist == nil {
		t.Fatal("constant column built no histogram")
	}
	if st.Hist.Buckets() != 1 {
		t.Fatalf("constant column built %d buckets, want 1", st.Hist.Buckets())
	}
	if f, exact := st.Hist.EqFraction("constant"); !exact || f != 1 {
		t.Fatalf("EqFraction(constant) = %v exact=%v, want 1 exact", f, exact)
	}
	if st.Bloom != nil && st.BloomFill <= 0 {
		t.Fatal("bloom-bearing entry recorded no fill fraction")
	}

	blob, err := appendStatsSectionV4(nil, schema, st, full.entries)
	if err != nil {
		t.Fatal(err)
	}
	entries, agg, err := parseStatsSection(blob, schema)
	if err != nil {
		t.Fatal(err)
	}
	if agg == nil || agg.Hist == nil {
		t.Fatal("round trip lost the aggregate histogram")
	}
	if agg.Hist.Buckets() != st.Hist.Buckets() {
		t.Fatalf("round trip changed bucket count: %d -> %d", st.Hist.Buckets(), agg.Hist.Buckets())
	}
	if f, exact := agg.Hist.EqFraction("constant"); !exact || f != 1 {
		t.Fatalf("decoded EqFraction(constant) = %v exact=%v, want 1 exact", f, exact)
	}
	if st.Bloom != nil {
		// Fill is quantized to 1/10000ths on disk.
		if diff := agg.BloomFill - st.BloomFill; diff > 0.0002 || diff < -0.0002 {
			t.Fatalf("round trip changed bloom fill: %v -> %v", st.BloomFill, agg.BloomFill)
		}
	}
	for i := range entries {
		if entries[i].st.Hist == nil {
			t.Fatalf("group entry %d lost its histogram", i)
		}
	}
}

// TestHistogramSkewedEqFraction: a heavy hitter occupying most rows gets an
// exact (degenerate-bucket) equality answer well above the uniform
// 1/Distinct guess — the case equi-depth histograms exist for.
func TestHistogramSkewedEqFraction(t *testing.T) {
	schema := serde.String()
	full := newStatsCollector(schema, 0, 1<<12)
	full.histMax = 1024
	const n = 500
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			full.observe("heavy")
		} else {
			full.observe(fmt.Sprintf("rare-%d", i))
		}
	}
	full.cut()
	h := full.entries[0].st.Hist
	if h == nil {
		t.Fatal("no histogram")
	}
	f, exact := h.EqFraction("heavy")
	if !exact {
		t.Fatalf("heavy hitter not answered exactly (f=%v)", f)
	}
	if f < 0.4 || f > 0.6 {
		t.Fatalf("EqFraction(heavy) = %v, want ~0.5", f)
	}
}
