package colfile

import (
	"encoding/binary"
	"fmt"

	"colmr/internal/compress"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// ReaderOptions tunes a column file reader.
type ReaderOptions struct {
	// Chunk is the refill granularity in bytes (default: one 128 KB
	// transfer unit).
	Chunk int
	// ChunkMin, when set below Chunk, enables adaptive readahead: the
	// first jump observed between refills shrinks the granularity to
	// ChunkMin, and sequential refills double it back up to Chunk.
	// Selective CIF scans set it so skip-list jumps stop paying
	// full-window prefetch, while a scan that never jumps streams at full
	// granularity throughout.
	ChunkMin int
	// OnRefill is invoked on every physical buffer refill with the bytes
	// fetched and the granularity in effect. CIF charges multi-stream
	// interleave cost here when scanning several column streams
	// concurrently, normalized per refill granularity.
	OnRefill func(bytes, chunk int)
	// NoBloom disables Bloom-filter consultation inside the reader — today
	// the DCSL key prober's group-filter fast path. CIF sets it from
	// scan.Spec.NoBloom so one job knob governs every tier.
	NoBloom bool
}

// NewReader opens a column file of the given value schema. The layout is
// discovered from the file header. CPU work is charged to stats.
func NewReader(r ReaderAtSize, schema *serde.Schema, stats *sim.CPUStats) (Reader, error) {
	return NewReaderOpts(r, schema, ReaderOptions{}, stats)
}

// NewReaderOpts is NewReader with explicit options.
func NewReaderOpts(r ReaderAtSize, schema *serde.Schema, opts ReaderOptions, stats *sim.CPUStats) (Reader, error) {
	total, statsLen, err := readFooter(r)
	if err != nil {
		return nil, err
	}
	s := newStream(r, opts.Chunk)
	s.dataEnd = r.Size() - footerSize - statsLen
	s.setShrink(opts.ChunkMin)
	s.onRefill = opts.OnRefill
	// Zone maps load lazily on the first GroupStats call, so a reader that
	// never prunes never touches the section.
	zm := &statsLoader{src: r, schema: schema, off: s.dataEnd, size: statsLen}
	h, err := parseHeader(s)
	if err != nil {
		return nil, err
	}
	switch h.layout {
	case Plain:
		return &plainReader{statsLoader: zm, s: s, schema: schema, stats: stats, total: total}, nil
	case Block:
		codec, err := compress.ByName(h.codec)
		if err != nil {
			return nil, err
		}
		return &blockReader{statsLoader: zm, s: s, schema: schema, stats: stats, codec: codec, total: total}, nil
	case SkipList, DCSL:
		if len(h.levels) == 0 {
			return nil, fmt.Errorf("colfile: %s file with no levels", h.layout)
		}
		if h.layout == DCSL && schema.Kind != serde.KindMap &&
			schema.Kind != serde.KindString && schema.Kind != serde.KindBytes {
			return nil, fmt.Errorf("colfile: DCSL file for non-dictionary schema %s", schema.Kind)
		}
		return &slReader{
			statsLoader: zm,
			s:           s,
			schema:      schema,
			stats:       stats,
			levels:      h.levels,
			dcsl:        h.layout == DCSL,
			noBloom:     opts.NoBloom,
			total:       total,
			probeWin:    -1,
		}, nil
	}
	return nil, fmt.Errorf("colfile: unknown layout %v", h.layout)
}

// plainReader iterates concatenated values. Skipping walks every record's
// encoding at full decode cost — the paper's "no savings" degradation.
type plainReader struct {
	*statsLoader
	s      *stream
	schema *serde.Schema
	stats  *sim.CPUStats
	rec    int64
	total  int64
}

func (p *plainReader) Record() int64 { return p.rec }
func (p *plainReader) Total() int64  { return p.total }

func (p *plainReader) Value() (any, error) {
	if p.rec >= p.total {
		return nil, fmt.Errorf("colfile: read past end (record %d of %d)", p.rec, p.total)
	}
	v, err := decodeValue(p.s, p.schema, p.stats)
	if err != nil {
		return nil, err
	}
	p.rec++
	return v, nil
}

func (p *plainReader) SkipTo(target int64) error {
	if target > p.total {
		return fmt.Errorf("colfile: skip to %d past end %d", target, p.total)
	}
	for p.rec < target {
		if err := scanValue(p.s, p.schema, p.stats); err != nil {
			return err
		}
		p.rec++
	}
	return nil
}

// blockReader iterates compressed frames with lazy decompression: frames
// fully behind the skip target are seeked past using only their headers;
// touching any record in a frame decompresses the whole frame
// (Section 5.3, "Compressed Blocks").
type blockReader struct {
	*statsLoader
	s      *stream
	schema *serde.Schema
	stats  *sim.CPUStats
	codec  compress.Codec
	rec    int64
	total  int64

	frame     []byte // decompressed current frame
	framePos  int
	frameLeft int // records remaining in current frame (incl. cursor's)
}

func (b *blockReader) Record() int64 { return b.rec }
func (b *blockReader) Total() int64  { return b.total }

func (b *blockReader) readFrameHeader() (records, rawLen, compLen int, err error) {
	r64, err := b.s.readUvarint()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("colfile: frame header: %w", err)
	}
	raw64, err := b.s.readUvarint()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("colfile: frame header: %w", err)
	}
	comp64, err := b.s.readUvarint()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("colfile: frame header: %w", err)
	}
	return int(r64), int(raw64), int(comp64), nil
}

func (b *blockReader) loadFrame() error {
	records, rawLen, compLen, err := b.readFrameHeader()
	if err != nil {
		return err
	}
	comp, err := b.s.readFull(compLen)
	if err != nil {
		return err
	}
	raw, err := b.codec.Decompress(nil, comp, rawLen)
	if err != nil {
		return err
	}
	compress.ChargeDecomp(b.stats, b.codec.Name(), int64(len(raw)))
	b.frame = raw
	b.framePos = 0
	b.frameLeft = records
	return nil
}

func (b *blockReader) Value() (any, error) {
	if b.rec >= b.total {
		return nil, fmt.Errorf("colfile: read past end (record %d of %d)", b.rec, b.total)
	}
	if b.frameLeft == 0 {
		if err := b.loadFrame(); err != nil {
			return nil, err
		}
	}
	var local sim.CPUStats
	d := serde.NewDecoder(b.frame[b.framePos:], &local)
	v, err := d.Value(b.schema)
	if err != nil {
		return nil, err
	}
	if b.stats != nil {
		b.stats.Add(local)
	}
	b.framePos += d.Pos()
	b.frameLeft--
	b.rec++
	return v, nil
}

func (b *blockReader) SkipTo(target int64) error {
	if target > b.total {
		return fmt.Errorf("colfile: skip to %d past end %d", target, b.total)
	}
	for b.rec < target {
		if b.frameLeft == 0 {
			records, rawLen, compLen, err := b.readFrameHeader()
			if err != nil {
				return err
			}
			if b.rec+int64(records) <= target {
				// Lazy decompression: the whole frame is unneeded, so seek
				// past the payload without decompressing it.
				if err := b.s.skip(int64(compLen)); err != nil {
					return err
				}
				b.rec += int64(records)
				continue
			}
			comp, err := b.s.readFull(compLen)
			if err != nil {
				return err
			}
			raw, err := b.codec.Decompress(nil, comp, rawLen)
			if err != nil {
				return err
			}
			compress.ChargeDecomp(b.stats, b.codec.Name(), int64(len(raw)))
			b.frame = raw
			b.framePos = 0
			b.frameLeft = records
		}
		// Walk within the decompressed frame: decompression is already
		// paid, so per-record movement is cheap skipping.
		var local sim.CPUStats
		d := serde.NewDecoder(b.frame[b.framePos:], &local)
		if err := d.Skip(b.schema); err != nil {
			return err
		}
		if b.stats != nil {
			b.stats.Add(local)
		}
		b.framePos += d.Pos()
		b.frameLeft--
		b.rec++
	}
	return nil
}

// slReader iterates skip-list and DCSL files.
//
// Invariant: the stream cursor is positioned at the start of record `rec`'s
// entity — its skip group if one exists (aligned == false), or its value
// (aligned == true, group and window dictionary consumed).
type slReader struct {
	*statsLoader
	s       *stream
	schema  *serde.Schema
	stats   *sim.CPUStats
	levels  []int
	dcsl    bool
	noBloom bool
	rec     int64
	total   int64

	aligned bool
	dict    *compress.Dictionary

	// KeyProber memoization: repeated probes for the same key reuse the
	// group's Bloom verdict and the window's dictionary answer instead of
	// re-probing per record. Cursor movement never invalidates the memos —
	// they are keyed by position range — and a different key resets them.
	probeKey      string
	probeGroupEnd int64 // bloom verdict valid for rec < probeGroupEnd
	probeBloomNeg bool
	probeWin      int64 // window start the dict answer covers; -1 = none
	probeID       uint32
	probeInWin    bool
}

func (r *slReader) Record() int64 { return r.rec }
func (r *slReader) Total() int64  { return r.total }

func (r *slReader) minLevel() int64 { return int64(r.levels[len(r.levels)-1]) }
func (r *slReader) maxLevel() int64 { return int64(r.levels[0]) }

func (r *slReader) atGroup() bool { return r.rec%r.minLevel() == 0 && r.rec < r.total }

// loadDict reads the window dictionary at a largest-level boundary.
func (r *slReader) loadDict() error {
	n, err := r.s.readUvarint()
	if err != nil {
		return fmt.Errorf("colfile: dict length: %w", err)
	}
	blob, err := r.s.readFull(int(n))
	if err != nil {
		return fmt.Errorf("colfile: dict body: %w", err)
	}
	dict, _, err := compress.ParseDictionary(blob)
	if err != nil {
		return err
	}
	compress.ChargeDecomp(r.stats, "dict", int64(n))
	r.dict = dict
	return nil
}

// align consumes the skip group (discarding pointers) and window
// dictionary for the current record, leaving the cursor at its value.
func (r *slReader) align() error {
	if r.aligned {
		return nil
	}
	if r.atGroup() {
		k := levelsAt(r.levels, r.rec)
		if _, err := r.s.readFull(k * groupPtrSize); err != nil {
			return fmt.Errorf("colfile: skip group: %w", err)
		}
		if r.stats != nil {
			r.stats.SkippedBytes += int64(k * groupPtrSize)
		}
		if r.dcsl && r.rec%r.maxLevel() == 0 {
			if err := r.loadDict(); err != nil {
				return err
			}
		}
	}
	r.aligned = true
	return nil
}

func (r *slReader) Value() (any, error) {
	if r.rec >= r.total {
		return nil, fmt.Errorf("colfile: read past end (record %d of %d)", r.rec, r.total)
	}
	if err := r.align(); err != nil {
		return nil, err
	}
	// Skip-list values are length-prefixed (see writer.prefixed).
	n, err := r.s.readUvarint()
	if err != nil {
		return nil, fmt.Errorf("colfile: value length: %w", err)
	}
	buf, err := r.s.readFull(int(n))
	if err != nil {
		return nil, fmt.Errorf("colfile: value body: %w", err)
	}
	var v any
	if r.dcsl {
		if r.dict == nil {
			return nil, fmt.Errorf("colfile: DCSL value before dictionary")
		}
		if r.schema.Kind != serde.KindMap {
			// Dictionary-encoded string/bytes: an empty blob is null,
			// otherwise the blob is the value's uvarint id.
			val, err := r.dictValue(buf)
			if err != nil {
				return nil, err
			}
			if r.stats != nil {
				compress.ChargeDecomp(r.stats, "dict", int64(len(buf)))
				r.stats.ValuesMaterialized++
			}
			r.rec++
			r.aligned = false
			return val, nil
		}
		d := serde.NewDecoder(buf, nil)
		m, err := parseDictMap(d, r.schema, r.dict)
		if err != nil {
			return nil, err
		}
		if r.stats != nil {
			compress.ChargeDecomp(r.stats, "dict", int64(d.Pos()))
			r.stats.ValuesMaterialized += int64(len(m) + 1)
		}
		v = m
	} else {
		var local sim.CPUStats
		d := serde.NewDecoder(buf, &local)
		val, err := d.Value(r.schema)
		if err != nil {
			return nil, err
		}
		if r.stats != nil {
			r.stats.Add(local)
		}
		v = val
	}
	r.rec++
	r.aligned = false
	return v, nil
}

func (r *slReader) SkipTo(target int64) error {
	if target > r.total {
		return fmt.Errorf("colfile: skip to %d past end %d", target, r.total)
	}
	for r.rec < target {
		if !r.aligned && r.atGroup() {
			k := levelsAt(r.levels, r.rec)
			ptrs, err := r.s.readFull(k * groupPtrSize)
			if err != nil {
				return fmt.Errorf("colfile: skip group: %w", err)
			}
			// readFull's view aliases the window and a dictionary load can
			// refill it, so copy the pointers out first.
			ptrs = append([]byte(nil), ptrs...)
			if r.stats != nil {
				r.stats.SkippedBytes += int64(k * groupPtrSize)
			}
			// A DCSL block's dictionary is always read on entry — it is
			// the only part of a block a reader must touch. Spans are
			// measured from after it.
			if r.dcsl && r.rec%r.maxLevel() == 0 {
				if err := r.loadDict(); err != nil {
					return err
				}
			}
			// Use the largest applicable pointer. Pointers are stored
			// largest level first.
			used := false
			idx := 0
			for _, l := range r.levels {
				if r.rec%int64(l) != 0 {
					continue
				}
				if r.rec+int64(l) <= target && r.rec+int64(l) <= r.total {
					span := int64(binary.LittleEndian.Uint32(ptrs[idx*groupPtrSize:]))
					if err := r.s.skip(span); err != nil {
						return err
					}
					r.rec += int64(l)
					used = true
					break
				}
				idx++
			}
			if used {
				continue
			}
			// No pointer applies: group and dictionary are consumed; fall
			// through to walking values.
			r.aligned = true
		}
		if err := r.walkOne(); err != nil {
			return err
		}
	}
	return nil
}

// HasKey implements KeyProber for DCSL files. The group's Bloom filter is
// consulted first when present: a negative probe refutes the key for the
// whole record group from already-loaded (uncharged) metadata, before the
// reader even aligns on the record — cheaper than the dictionary walk and
// able to skip the window dictionary load entirely. Past the filter, the
// window dictionary is the union of every map key in the window, so a
// failed lookup refutes the whole window with one map access; a hit walks
// the current record's (id, value) pairs comparing ids, skipping element
// bytes, building no objects. The walk is priced as raw byte movement.
func (r *slReader) HasKey(key string) (bool, bool, error) {
	if !r.dcsl || r.schema.Kind != serde.KindMap || r.rec >= r.total {
		return false, false, nil
	}
	if key != r.probeKey {
		r.probeKey = key
		r.probeGroupEnd = 0
		r.probeWin = -1
	}
	if !r.noBloom {
		if r.rec >= r.probeGroupEnd {
			st, gEnd := r.GroupStats(r.rec)
			r.probeBloomNeg = st != nil && st.Bloom != nil && !st.Bloom.MayContainString(key)
			if gEnd <= r.rec {
				gEnd = r.rec + 1
			}
			r.probeGroupEnd = gEnd
		}
		if r.probeBloomNeg {
			return false, true, nil
		}
	}
	if err := r.align(); err != nil {
		return false, false, err
	}
	if r.dict == nil {
		return false, false, nil
	}
	if win := r.rec - r.rec%r.maxLevel(); win != r.probeWin {
		r.probeID, r.probeInWin = r.dict.ID(key)
		r.probeWin = win
	}
	id, inWindow := r.probeID, r.probeInWin
	if !inWindow {
		return false, true, nil
	}
	n, w, err := r.s.peekUvarint()
	if err != nil {
		return false, false, fmt.Errorf("colfile: probe length: %w", err)
	}
	buf, err := r.s.peekAt(w, int(n))
	if err != nil {
		return false, false, fmt.Errorf("colfile: probe body: %w", err)
	}
	d := serde.NewDecoder(buf, nil)
	count, err := readCount(d)
	if err != nil {
		return false, false, err
	}
	has := false
	for i := 0; i < count; i++ {
		got, err := readCount(d)
		if err != nil {
			return false, false, err
		}
		if uint32(got) == id {
			has = true
			break
		}
		if err := d.Skip(r.schema.Elem); err != nil {
			return false, false, err
		}
	}
	if r.stats != nil {
		r.stats.RawBytes += int64(d.Pos())
	}
	return has, true, nil
}

// walkOne advances past one value using its length prefix: a varint read
// and a forward seek, with no deserialization. (Contrast with Plain files,
// whose values carry no lengths and must be fully walked.)
func (r *slReader) walkOne() error {
	if err := r.align(); err != nil {
		return err
	}
	n, err := r.s.readUvarint()
	if err != nil {
		return fmt.Errorf("colfile: skip length: %w", err)
	}
	if err := r.s.skip(int64(n)); err != nil {
		return err
	}
	if r.stats != nil {
		r.stats.SkippedBytes += int64(n) + 1
	}
	r.rec++
	r.aligned = false
	return nil
}

// dictValue materializes one dictionary-encoded string/bytes value from
// its blob: empty means null, otherwise a uvarint id into the window
// dictionary. Looked-up strings are shared interned objects; bytes
// columns copy them out since callers may mutate byte slices.
func (r *slReader) dictValue(buf []byte) (any, error) {
	if len(buf) == 0 {
		return nil, nil
	}
	id, n := binary.Uvarint(buf)
	if n <= 0 || n != len(buf) {
		return nil, fmt.Errorf("colfile: malformed dictionary id")
	}
	s, err := r.dict.Lookup(uint32(id))
	if err != nil {
		return nil, err
	}
	if r.schema.Kind == serde.KindBytes {
		return []byte(s), nil
	}
	return s, nil
}

// parseDictMap materializes one dictionary-compressed map value. All bytes
// are charged at the dictionary-decode rate: key strings are shared
// interned objects, which is why the paper's DCSL decompression "proved to
// be extremely fast".
func parseDictMap(d *serde.Decoder, schema *serde.Schema, dict *compress.Dictionary) (map[string]any, error) {
	count, err := readCount(d)
	if err != nil {
		return nil, err
	}
	m := make(map[string]any, count)
	for i := 0; i < count; i++ {
		id, err := readCount(d)
		if err != nil {
			return nil, err
		}
		key, err := dict.Lookup(uint32(id))
		if err != nil {
			return nil, err
		}
		v, err := d.Value(schema.Elem)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

// readCount reads a raw uvarint (entry counts and dictionary ids).
func readCount(d *serde.Decoder) (int, error) {
	v, err := d.ReadUvarint()
	if err != nil {
		return 0, err
	}
	return int(v), nil
}
