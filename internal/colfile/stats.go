package colfile

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"colmr/internal/scan"
	"colmr/internal/serde"
)

// Zone-map statistics (the scan subsystem's storage side). Every column
// file carries a stats section between its data region and its footer: one
// scan.ColStats per record group, where a group is a skip-list window
// (SkipList/DCSL), one compressed frame (Block), or a fixed record granule
// (Plain). Readers expose the section through StatsSource, letting a
// predicate prove a group irrelevant without decompressing or
// deserializing any of it — the PowerDrill/Parquet-style chunk-skipping
// the paper's CIF format predates.

// DefaultStatsEvery is the default record-group granularity of the stats
// section for Plain and SkipList/DCSL layouts. It matches the paper's
// middle skip level so that a pruned group is jumpable with one level-100
// pointer. Block layouts always cut one group per compressed frame.
const DefaultStatsEvery = 100

// statsMaxDistinct caps per-group distinct tracking; beyond the cap the
// count becomes a lower bound (DistinctCapped).
const statsMaxDistinct = 64

// statsMaxKeys caps the per-group map-key universe; beyond the cap the key
// list becomes a subset (KeysCapped) and can no longer disprove
// key-existence.
const statsMaxKeys = 64

// Bloom-filter size caps. A capped filter is sized below its ~1% FPP
// target and merely refutes less; it is never unsound. The group cap keeps
// the per-group entry small (groups hold ~100 records); the file cap
// bounds the whole-file aggregate that split elision reads, which must
// stay useful at crawl-scale distinct counts. Both are power-of-two block
// multiples (scan.NewBloomSized rounds to blocks).
const (
	bloomMaxGroupBytes = 4 << 10
	bloomMaxFileBytes  = 128 << 10
)

// Histogram collection bounds. The whole-file collector keeps a bounded
// systematic sample of non-null values (stride doubling when full, so the
// retained positions stay evenly spaced and deterministic) and cuts it
// into at most statsHistBuckets equi-depth buckets at finish. Group
// collectors never sample: a histogram's job is whole-file selectivity
// estimation, and per-group entries must stay small.
const (
	statsHistSamples = 1024
	statsHistBuckets = 16
)

// statsMaxHistBuckets bounds a decoded histogram's bucket count; anything
// larger is corruption, not a finer histogram (the builder emits at most
// 2*statsHistBuckets).
const statsMaxHistBuckets = 1024

// statsEntry locates one group's statistics in the record space.
type statsEntry struct {
	start int64 // first record of the group; Rows gives the extent
	st    scan.ColStats
}

// StatsSource is implemented by column readers whose file carries a
// zone-map stats section.
type StatsSource interface {
	// GroupStats returns the statistics of the record group containing rec
	// and the index one past the group's last record. It returns (nil, 0)
	// when no statistics cover rec.
	GroupStats(rec int64) (*scan.ColStats, int64)
}

// FileStatsSource is implemented by column readers whose file carries
// whole-file aggregate statistics (or per-group statistics they can be
// derived from). The scan planner's file tier uses it to skip an entire
// column file without touching its data region.
type FileStatsSource interface {
	// FileStats returns aggregate statistics covering every record in the
	// file, or nil when the file carries no statistics.
	FileStats() *scan.ColStats
}

// minMaxKind reports whether values of this schema kind carry min/max
// bounds in the stats section.
func minMaxKind(k serde.Kind) bool {
	switch k {
	case serde.KindBool, serde.KindInt, serde.KindLong, serde.KindTime,
		serde.KindDouble, serde.KindString, serde.KindBytes:
		return true
	}
	return false
}

// statsCollector accumulates per-group statistics on the write path.
// observe sees every appended value; cut closes the current group. The
// collector prices nothing: zone maps are derived from values the writer
// already encoded, and their bytes are charged as ordinary written output.
type statsCollector struct {
	schema *serde.Schema
	every  int // cut cadence in records; 0 = external cuts only (Block)

	entries  []statsEntry
	curStart int64
	cur      scan.ColStats
	distinct map[any]struct{}
	keys     map[string]struct{}

	minMax bool
	mapCol bool

	// Bloom collection: string/bytes columns filter their values, map
	// columns their keys (bloomVals and bloomKeys are mutually exclusive).
	// Observed byte strings dedup as hashes; the filter is sized from the
	// hash count at cut, capped at bloomMax bytes (0 disables). Once the
	// distinct count guarantees a saturated (dropped) filter even at the
	// size cap, collection abandons: the group yields no filter and the
	// dedup set stops growing — at crawl-scale distinct counts the
	// whole-file collector would otherwise burn memory building a filter
	// buildBloom is certain to discard.
	bloomVals      bool
	bloomKeys      bool
	bloomMax       int
	bloomSet       map[uint64]struct{}
	bloomAbandoned bool

	// Histogram sampling (whole-file collectors only; histMax 0 disables):
	// a systematic sample of non-null ordered values, kept evenly spaced by
	// doubling the stride whenever the buffer fills — deterministic by
	// arrival order, so identical data yields identical file bytes.
	histMax      int
	samples      []any
	sampleStride int64
	sampleSeen   int64
}

// newStatsCollector builds a collector cutting groups every `every`
// records (0 = external cuts only). A negative cadence disables statistics
// entirely: the nil collector accepts observe/cut and yields no section.
// bloomMax caps the per-group Bloom filter in bytes; 0 writes none.
func newStatsCollector(schema *serde.Schema, every, bloomMax int) *statsCollector {
	if every < 0 {
		return nil
	}
	c := &statsCollector{
		schema: schema,
		every:  every,
		minMax: minMaxKind(schema.Kind),
		mapCol: schema.Kind == serde.KindMap,
	}
	if bloomMax > 0 {
		c.bloomVals = schema.Kind == serde.KindString || schema.Kind == serde.KindBytes
		c.bloomKeys = c.mapCol
		c.bloomMax = bloomMax
	}
	return c
}

// bloomAdd records one byte-string hash for the current group's filter.
func (c *statsCollector) bloomAdd(h uint64) {
	if c.bloomAbandoned {
		return
	}
	if c.bloomSet == nil {
		c.bloomSet = make(map[uint64]struct{})
	}
	c.bloomSet[h] = struct{}{}
	// Past 1/4 of the capped filter's bit count, the expected fill
	// (1-e^(-k/4) ~ 0.83) is beyond the saturation bound buildBloom drops
	// at — abandon rather than keep paying 16 bytes per distinct value for
	// a filter that cannot survive. Abandoning early is sound: no filter
	// means MayMatch, never a wrong proof.
	if len(c.bloomSet) > c.bloomMax*8/4 {
		c.bloomAbandoned = true
		c.bloomSet = nil
	}
}

// distinctKey maps a value to a comparable key for distinct counting, or
// ok=false for kinds whose distinct count is not tracked.
func distinctKey(v any) (any, bool) {
	switch x := v.(type) {
	case bool, int32, int64, float64, string:
		return x, true
	case []byte:
		return string(x), true
	}
	return nil, false
}

func (c *statsCollector) observe(v any) {
	if c == nil {
		return
	}
	c.cur.Rows++
	if v == nil {
		c.cur.Nulls++
	} else {
		if c.minMax {
			if !c.cur.HasMinMax {
				c.cur.HasMinMax = true
				c.cur.Min, c.cur.Max = copyBound(v), copyBound(v)
			} else {
				if cmp, ok := scan.CompareValues(v, c.cur.Min); ok && cmp < 0 {
					c.cur.Min = copyBound(v)
				}
				if cmp, ok := scan.CompareValues(v, c.cur.Max); ok && cmp > 0 {
					c.cur.Max = copyBound(v)
				}
			}
		}
		if key, ok := distinctKey(v); ok {
			if !c.cur.DistinctCapped {
				if c.distinct == nil {
					c.distinct = make(map[any]struct{}, statsMaxDistinct)
				}
				if _, seen := c.distinct[key]; !seen {
					if len(c.distinct) >= statsMaxDistinct {
						c.cur.DistinctCapped = true
					} else {
						c.distinct[key] = struct{}{}
					}
				}
			}
		} else {
			// Distinct is untracked for complex kinds: leave the count a
			// capped lower bound so consumers never treat it as exact.
			c.cur.DistinctCapped = true
		}
		if c.bloomVals {
			switch x := v.(type) {
			case string:
				c.bloomAdd(scan.BloomHashString(x))
			case []byte:
				c.bloomAdd(scan.BloomHash(x))
			}
		}
		if c.histMax > 0 && c.minMax {
			c.histObserve(v)
		}
		if c.mapCol {
			if m, ok := v.(map[string]any); ok {
				c.cur.HasKeys = true
				if c.keys == nil {
					c.keys = make(map[string]struct{}, statsMaxKeys)
				}
				if c.bloomKeys {
					// Unlike the capped key list below, the filter sees
					// every key, so a negative probe stays a proof even
					// when KeysCapped.
					for k := range m {
						c.bloomAdd(scan.BloomHashString(k))
					}
				}
				// Sorted iteration keeps the retained subset under the
				// cap deterministic: identical data must produce
				// identical file bytes (the simulation replays by seed).
				for _, k := range mapKeysSorted(m) {
					if _, seen := c.keys[k]; seen {
						continue
					}
					if len(c.keys) >= statsMaxKeys {
						c.cur.KeysCapped = true
						break
					}
					c.keys[k] = struct{}{}
				}
			}
		}
	}
	if c.every > 0 && c.cur.Rows >= int64(c.every) {
		c.cut()
	}
}

// histObserve feeds one non-null ordered value to the systematic sample.
// While the buffer has room every stride-th value is kept; when it fills,
// every other retained sample is dropped and the stride doubles, so the
// kept positions remain the multiples of the (new) stride. The sample is
// bounded by histMax values regardless of file size.
func (c *statsCollector) histObserve(v any) {
	if c.sampleStride == 0 {
		c.sampleStride = 1
	}
	if c.sampleSeen%c.sampleStride == 0 {
		if len(c.samples) >= c.histMax {
			keep := c.samples[:0]
			for i := 0; i < len(c.samples); i += 2 {
				keep = append(keep, c.samples[i])
			}
			c.samples = keep
			c.sampleStride *= 2
		}
		if c.sampleSeen%c.sampleStride == 0 {
			c.samples = append(c.samples, copyBound(v))
		}
	}
	c.sampleSeen++
}

// copyBound deep-copies mutable bound values so later caller mutations
// cannot corrupt recorded statistics.
func copyBound(v any) any {
	if b, ok := v.([]byte); ok {
		return append([]byte(nil), b...)
	}
	return v
}

// cut closes the current group, if it has any rows.
func (c *statsCollector) cut() {
	if c == nil || c.cur.Rows == 0 {
		return
	}
	c.cur.Distinct = int64(len(c.distinct))
	if c.cur.HasKeys {
		keys := make([]string, 0, len(c.keys))
		for k := range c.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		c.cur.Keys = keys
	}
	c.cur.Bloom = c.buildBloom()
	if c.cur.Bloom != nil {
		// Record the fill fraction at write time: the estimator's
		// false-positive confidence weight, readable without a popcount
		// over the decoded filter.
		c.cur.BloomFill = c.cur.Bloom.FillFraction()
	}
	if len(c.samples) > 0 {
		c.cur.Hist = scan.BuildHistogram(c.samples, statsHistBuckets)
		c.samples = nil
		c.sampleSeen = 0
		c.sampleStride = 0
	}
	c.entries = append(c.entries, statsEntry{start: c.curStart, st: c.cur})
	c.curStart += c.cur.Rows
	c.cur = scan.ColStats{}
	c.distinct = nil
	c.keys = nil
	c.bloomSet = nil
	c.bloomAbandoned = false
}

// buildBloom sizes a filter from the group's deduplicated hashes and
// inserts them. Insertion order is irrelevant (bits OR together), so the
// random map iteration still yields deterministic file bytes. A filter
// still saturated at the size cap refutes too little to be worth its
// bytes and is dropped.
func (c *statsCollector) buildBloom() *scan.Bloom {
	if len(c.bloomSet) == 0 {
		return nil
	}
	b := scan.NewBloomSized(len(c.bloomSet), c.bloomMax)
	if b == nil {
		return nil
	}
	for h := range c.bloomSet {
		b.AddHash(h)
	}
	if b.Saturated() {
		return nil
	}
	return b
}

// statsWriter pairs the per-group collector with a whole-file collector.
// The file collector cuts exactly once, at finish, so its single entry is
// the aggregate over every record — the statistic the scheduler and file
// pruning tiers read without touching data. Observing into two collectors
// costs two min/max comparisons per value on the load path; like the group
// collector, it prices nothing.
type statsWriter struct {
	group *statsCollector
	file  *statsCollector
}

// newStatsWriter builds the collector pair cutting groups every `every`
// records (0 = external cuts only). A negative cadence disables statistics
// entirely: the nil writer accepts observe/cut and yields no section.
// noBloom suppresses Bloom filters while keeping the rest of the section.
// The file collector gets the larger size cap: its single filter covers
// every distinct value in the file, and it is what split elision probes.
func newStatsWriter(schema *serde.Schema, every int, noBloom bool) *statsWriter {
	if every < 0 {
		return nil
	}
	groupMax, fileMax := bloomMaxGroupBytes, bloomMaxFileBytes
	if noBloom {
		groupMax, fileMax = 0, 0
	}
	w := &statsWriter{
		group: newStatsCollector(schema, every, groupMax),
		file:  newStatsCollector(schema, 0, fileMax),
	}
	// Only the whole-file collector samples for a histogram: its single
	// entry is what selectivity estimation reads, and group entries stay
	// lean.
	w.file.histMax = statsHistSamples
	return w
}

func (w *statsWriter) observe(v any) {
	if w == nil {
		return
	}
	w.group.observe(v)
	w.file.observe(v)
}

// cut closes the current record group (the file collector never cuts until
// finish).
func (w *statsWriter) cut() {
	if w == nil {
		return
	}
	w.group.cut()
}

// finish closes the trailing group and returns the encoded stats section:
// per-group entries followed by the whole-file aggregate trailer (empty
// when no records were observed).
func (w *statsWriter) finish() ([]byte, error) {
	if w == nil {
		return nil, nil
	}
	w.group.cut()
	w.file.cut()
	if len(w.group.entries) == 0 {
		return nil, nil
	}
	if len(w.file.entries) != 1 {
		return nil, fmt.Errorf("colfile: file aggregate collector produced %d entries, want 1", len(w.file.entries))
	}
	return appendStatsSectionV4(nil, w.group.schema, &w.file.entries[0].st, w.group.entries)
}

// Stats section encoding (current, "CFS4"; see docs/FORMAT.md for the
// byte-level specification and lineage):
//
//	magic "CFS4"
//	aggregate entry covering every record in the file
//	uvarint groupCount
//	per group entry (same encoding as the aggregate):
//	  uvarint rows, uvarint nulls, uvarint distinct
//	  flags byte (hasMinMax | distinctCapped<<1 | hasKeys<<2 |
//	              keysCapped<<3 | hasBloom<<4 | hasHist<<5 |
//	              hasBloomFill<<6)
//	  [hasMinMax]    len-prefixed serde(min), len-prefixed serde(max)
//	  [hasKeys]      uvarint keyCount, len-prefixed keys
//	  [hasBloom]     uvarint k, uvarint wordCount, wordCount x u64 LE words
//	  [hasBloomFill] uvarint fill fraction in 1/10000ths
//	  [hasHist]      uvarint bucketCount, then per bucket:
//	                 uvarint count, len-prefixed serde(lo),
//	                 len-prefixed serde(hi)
//
// Group starts are implicit: groups tile the record space in order. The
// aggregate leads the section so split elision decides a whole file's
// relevance from the footer plus an O(1) parse — never data, never the
// group entries.
//
// Lineage, all still parsed: "CFST" (PR 1) holds groups only — consumers
// derive the aggregate by merging groups; "CFS2" (PR 2) added the leading
// aggregate; "CFS3" (PR 5) added the optional per-entry Bloom filter;
// "CFS4" (this PR) added the equi-depth histogram and the filter's
// recorded fill fraction. An entry using no new feature is byte-identical
// to its previous-generation spelling, so the flag bits are what version
// entries — the magic versions the section frame, and each encoder rejects
// entries carrying features its generation's parsers cannot skip.
const (
	statsMagic   = "CFST"
	statsMagicV2 = "CFS2"
	statsMagicV3 = "CFS3"
	statsMagicV4 = "CFS4"
)

const (
	statsFlagMinMax byte = 1 << iota
	statsFlagDistinctCapped
	statsFlagHasKeys
	statsFlagKeysCapped
	statsFlagBloom
	statsFlagHist
	statsFlagBloomFill
)

// statsMaxBloomWords bounds a decoded filter: the file-level cap in
// 64-bit words. Anything larger is corruption, not a huge filter.
const statsMaxBloomWords = bloomMaxFileBytes / 8

// entryFeatureError rejects an entry carrying a feature the given section
// generation's parsers cannot skip: Bloom filters arrived with CFS3,
// histograms and recorded fill fractions with CFS4. Encoders for older
// magics call it so a pre-feature section can never smuggle feature bytes
// past a pre-feature parser.
func entryFeatureError(magic string, st *scan.ColStats) error {
	if st.Bloom != nil && magic != statsMagicV3 && magic != statsMagicV4 {
		return fmt.Errorf("colfile: %s section cannot carry a Bloom filter", magic)
	}
	if (st.Hist != nil || st.BloomFill > 0) && magic != statsMagicV4 {
		return fmt.Errorf("colfile: %s section cannot carry a histogram or bloom fill fraction", magic)
	}
	return nil
}

// appendStatsSection encodes the legacy groups-only section ("CFST").
// Only backward-compat tests build it today; the writer emits
// appendStatsSectionV4. Like the CFS2 encoder, it rejects entries bearing
// newer-generation features: pre-feature sections must stay readable by
// pre-feature parsers.
func appendStatsSection(dst []byte, schema *serde.Schema, entries []statsEntry) ([]byte, error) {
	for i := range entries {
		if err := entryFeatureError(statsMagic, &entries[i].st); err != nil {
			return nil, err
		}
	}
	dst = append(dst, statsMagic...)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	var err error
	for _, e := range entries {
		if dst, err = appendStatsEntry(dst, schema, &e.st); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// appendStatsSectionV2 encodes the legacy aggregate-first section
// ("CFS2"). Only backward-compat tests build it today; entries carrying a
// Bloom filter (or any later feature) would be unreadable by pre-feature
// parsers, so this encoder rejects them.
func appendStatsSectionV2(dst []byte, schema *serde.Schema, agg *scan.ColStats, entries []statsEntry) ([]byte, error) {
	if err := entryFeatureError(statsMagicV2, agg); err != nil {
		return nil, err
	}
	for i := range entries {
		if err := entryFeatureError(statsMagicV2, &entries[i].st); err != nil {
			return nil, err
		}
	}
	return appendAggSection(dst, statsMagicV2, schema, agg, entries)
}

// appendStatsSectionV3 encodes the legacy bloom-bearing section ("CFS3").
// It rejects entries carrying CFS4 features (histogram, recorded fill
// fraction): a CFS3 parser has no way to skip their payloads.
func appendStatsSectionV3(dst []byte, schema *serde.Schema, agg *scan.ColStats, entries []statsEntry) ([]byte, error) {
	if err := entryFeatureError(statsMagicV3, agg); err != nil {
		return nil, err
	}
	for i := range entries {
		if err := entryFeatureError(statsMagicV3, &entries[i].st); err != nil {
			return nil, err
		}
	}
	return appendAggSection(dst, statsMagicV3, schema, agg, entries)
}

// appendStatsSectionV4 encodes the current aggregate-first section
// ("CFS4") with optional per-entry Bloom filters, recorded fill fractions,
// and equi-depth histograms.
func appendStatsSectionV4(dst []byte, schema *serde.Schema, agg *scan.ColStats, entries []statsEntry) ([]byte, error) {
	return appendAggSection(dst, statsMagicV4, schema, agg, entries)
}

// appendAggSection encodes an aggregate-first section under the given
// magic (the CFS2 and CFS3 frames are identical; entries version
// themselves through flag bits).
func appendAggSection(dst []byte, magic string, schema *serde.Schema, agg *scan.ColStats, entries []statsEntry) ([]byte, error) {
	dst = append(dst, magic...)
	dst, err := appendStatsEntry(dst, schema, agg)
	if err != nil {
		return nil, err
	}
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		if dst, err = appendStatsEntry(dst, schema, &e.st); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func appendStatsEntry(dst []byte, schema *serde.Schema, st *scan.ColStats) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(st.Rows))
	dst = binary.AppendUvarint(dst, uint64(st.Nulls))
	dst = binary.AppendUvarint(dst, uint64(st.Distinct))
	var flags byte
	if st.HasMinMax {
		flags |= statsFlagMinMax
	}
	if st.DistinctCapped {
		flags |= statsFlagDistinctCapped
	}
	if st.HasKeys {
		flags |= statsFlagHasKeys
	}
	if st.KeysCapped {
		flags |= statsFlagKeysCapped
	}
	if st.Bloom != nil {
		flags |= statsFlagBloom
	}
	if st.Hist != nil {
		flags |= statsFlagHist
	}
	if st.BloomFill > 0 {
		flags |= statsFlagBloomFill
	}
	dst = append(dst, flags)
	if st.HasMinMax {
		for _, bound := range []any{st.Min, st.Max} {
			enc, err := serde.AppendValue(nil, schema, bound)
			if err != nil {
				return nil, fmt.Errorf("colfile: encoding stats bound: %w", err)
			}
			dst = binary.AppendUvarint(dst, uint64(len(enc)))
			dst = append(dst, enc...)
		}
	}
	if st.HasKeys {
		dst = binary.AppendUvarint(dst, uint64(len(st.Keys)))
		for _, k := range st.Keys {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
		}
	}
	if st.Bloom != nil {
		dst = binary.AppendUvarint(dst, uint64(st.Bloom.K()))
		words := st.Bloom.Words()
		dst = binary.AppendUvarint(dst, uint64(len(words)))
		for _, w := range words {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	}
	if st.BloomFill > 0 {
		fill := uint64(st.BloomFill*10000 + 0.5)
		if fill > 10000 {
			fill = 10000
		}
		if fill == 0 {
			fill = 1 // a recorded fill is never zero: the flag means "known"
		}
		dst = binary.AppendUvarint(dst, fill)
	}
	if st.Hist != nil {
		dst = binary.AppendUvarint(dst, uint64(st.Hist.Buckets()))
		for i := 0; i < st.Hist.Buckets(); i++ {
			lo, hi, count := st.Hist.Bucket(i)
			dst = binary.AppendUvarint(dst, uint64(count))
			for _, bound := range []any{lo, hi} {
				enc, err := serde.AppendValue(nil, schema, bound)
				if err != nil {
					return nil, fmt.Errorf("colfile: encoding histogram bound: %w", err)
				}
				dst = binary.AppendUvarint(dst, uint64(len(enc)))
				dst = append(dst, enc...)
			}
		}
	}
	return dst, nil
}

// statsCursor is a bounds-checked forward cursor over the stats blob.
type statsCursor struct {
	buf []byte
	pos int
}

func (c *statsCursor) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("colfile: stats %s: truncated uvarint", what)
	}
	c.pos += n
	return v, nil
}

func (c *statsCursor) bytes(n int, what string) ([]byte, error) {
	if n < 0 || c.pos+n > len(c.buf) {
		return nil, fmt.Errorf("colfile: stats %s overruns section", what)
	}
	b := c.buf[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

// parseStatsSection decodes a stats section: the per-group entries plus
// the whole-file aggregate (nil for legacy sections written before the
// aggregate existed). Decoding charges nothing: like the footer and the
// split's schema file, zone maps are metadata.
func parseStatsSection(blob []byte, schema *serde.Schema) ([]statsEntry, *scan.ColStats, error) {
	agg, c, err := parseStatsHead(blob, schema)
	if err != nil {
		return nil, nil, err
	}
	n, err := c.uvarint("entry count")
	if err != nil {
		return nil, nil, err
	}
	// Every entry occupies at least 4 bytes (three uvarints + flags), so a
	// count beyond that bound is corruption, not a huge file — fail before
	// make() can panic on an absurd capacity.
	if n > uint64(len(blob))/4 {
		return nil, nil, fmt.Errorf("colfile: absurd stats entry count %d for %d-byte section", n, len(blob))
	}
	entries := make([]statsEntry, 0, n)
	var start int64
	for i := uint64(0); i < n; i++ {
		e := statsEntry{start: start}
		if err := parseStatsEntry(c, schema, &e.st); err != nil {
			return nil, nil, err
		}
		entries = append(entries, e)
		start += e.st.Rows
	}
	return entries, agg, nil
}

// parseStatsHead consumes the section magic and, for current sections,
// the leading aggregate entry, leaving the cursor at the group count.
func parseStatsHead(blob []byte, schema *serde.Schema) (*scan.ColStats, *statsCursor, error) {
	if len(blob) < len(statsMagic) {
		return nil, nil, fmt.Errorf("colfile: stats section too short")
	}
	c := &statsCursor{buf: blob, pos: len(statsMagic)}
	switch string(blob[:len(statsMagic)]) {
	case statsMagicV4, statsMagicV3, statsMagicV2:
		var agg scan.ColStats
		if err := parseStatsEntry(c, schema, &agg); err != nil {
			return nil, nil, err
		}
		return &agg, c, nil
	case statsMagic:
		return nil, c, nil // legacy: groups only (backward compat)
	}
	return nil, nil, fmt.Errorf("colfile: bad stats magic")
}

func parseStatsEntry(c *statsCursor, schema *serde.Schema, st *scan.ColStats) error {
	rows, err := c.uvarint("rows")
	if err != nil {
		return err
	}
	nulls, err := c.uvarint("nulls")
	if err != nil {
		return err
	}
	distinct, err := c.uvarint("distinct")
	if err != nil {
		return err
	}
	if rows > 1<<40 || nulls > rows || distinct > rows {
		return fmt.Errorf("colfile: implausible stats entry (rows=%d nulls=%d distinct=%d)", rows, nulls, distinct)
	}
	st.Rows, st.Nulls, st.Distinct = int64(rows), int64(nulls), int64(distinct)
	fb, err := c.bytes(1, "flags")
	if err != nil {
		return err
	}
	flags := fb[0]
	st.DistinctCapped = flags&statsFlagDistinctCapped != 0
	st.KeysCapped = flags&statsFlagKeysCapped != 0
	if flags&statsFlagMinMax != 0 {
		st.HasMinMax = true
		for _, bound := range []*any{&st.Min, &st.Max} {
			blen, err := c.uvarint("bound length")
			if err != nil {
				return err
			}
			enc, err := c.bytes(int(blen), "bound")
			if err != nil {
				return err
			}
			v, err := serde.NewDecoder(enc, nil).Value(schema)
			if err != nil {
				return fmt.Errorf("colfile: decoding stats bound: %w", err)
			}
			*bound = v
		}
	}
	if flags&statsFlagHasKeys != 0 {
		st.HasKeys = true
		kn, err := c.uvarint("key count")
		if err != nil {
			return err
		}
		if kn > statsMaxKeys {
			return fmt.Errorf("colfile: absurd stats key count %d", kn)
		}
		keys := make([]string, 0, kn)
		for j := uint64(0); j < kn; j++ {
			klen, err := c.uvarint("key length")
			if err != nil {
				return err
			}
			kb, err := c.bytes(int(klen), "key")
			if err != nil {
				return err
			}
			keys = append(keys, string(kb))
		}
		st.Keys = keys
	}
	if flags&statsFlagBloom != 0 {
		k, err := c.uvarint("bloom k")
		if err != nil {
			return err
		}
		nw, err := c.uvarint("bloom word count")
		if err != nil {
			return err
		}
		if k < 1 || k > 64 || nw == 0 || nw > statsMaxBloomWords {
			return fmt.Errorf("colfile: implausible bloom geometry (k=%d words=%d)", k, nw)
		}
		wb, err := c.bytes(int(nw)*8, "bloom words")
		if err != nil {
			return err
		}
		words := make([]uint64, nw)
		for j := range words {
			words[j] = binary.LittleEndian.Uint64(wb[j*8:])
		}
		// Invalid geometry (non-power-of-two blocks) yields a nil filter:
		// the entry stays usable, the filter just refutes nothing.
		st.Bloom = scan.NewBloomFromWords(int(k), words)
	}
	if flags&statsFlagBloomFill != 0 {
		fill, err := c.uvarint("bloom fill")
		if err != nil {
			return err
		}
		if fill == 0 || fill > 10000 {
			return fmt.Errorf("colfile: implausible bloom fill %d/10000", fill)
		}
		st.BloomFill = float64(fill) / 10000
	}
	if flags&statsFlagHist != 0 {
		hn, err := c.uvarint("histogram bucket count")
		if err != nil {
			return err
		}
		if hn == 0 || hn > statsMaxHistBuckets {
			return fmt.Errorf("colfile: implausible histogram bucket count %d", hn)
		}
		los := make([]any, 0, hn)
		his := make([]any, 0, hn)
		counts := make([]int64, 0, hn)
		for j := uint64(0); j < hn; j++ {
			count, err := c.uvarint("histogram count")
			if err != nil {
				return err
			}
			if count > rows {
				return fmt.Errorf("colfile: histogram bucket count %d exceeds rows %d", count, rows)
			}
			counts = append(counts, int64(count))
			for _, dst := range []*[]any{&los, &his} {
				blen, err := c.uvarint("histogram bound length")
				if err != nil {
					return err
				}
				enc, err := c.bytes(int(blen), "histogram bound")
				if err != nil {
					return err
				}
				v, err := serde.NewDecoder(enc, nil).Value(schema)
				if err != nil {
					return fmt.Errorf("colfile: decoding histogram bound: %w", err)
				}
				*dst = append(*dst, v)
			}
		}
		// Invalid geometry (zero counts, disordered bounds) yields a nil
		// histogram: the entry stays usable, estimation just falls back to
		// the uniform model.
		st.Hist = scan.NewHistogram(los, his, counts)
	}
	return nil
}

// statsLoader lazily reads and indexes a file's stats section, serving
// GroupStats and FileStats to all reader layouts. The section read is
// uncharged metadata, like the footer.
type statsLoader struct {
	src    ReaderAtSize
	schema *serde.Schema
	off    int64
	size   int64

	entries []statsEntry
	agg     *scan.ColStats
	loaded  bool
	failed  bool
}

// GroupStats implements StatsSource.
func (l *statsLoader) GroupStats(rec int64) (*scan.ColStats, int64) {
	if l == nil || l.size == 0 || l.failed {
		return nil, 0
	}
	if !l.loaded {
		l.load()
		if l.failed {
			return nil, 0
		}
	}
	// Find the last entry with start <= rec.
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].start > rec }) - 1
	if i < 0 {
		return nil, 0
	}
	e := &l.entries[i]
	end := e.start + e.st.Rows
	if rec >= end {
		return nil, 0
	}
	return &e.st, end
}

// FileStats implements FileStatsSource. For files written before the
// aggregate trailer existed it derives the aggregate by merging the
// per-group entries, so old datasets prune at the file tier too.
func (l *statsLoader) FileStats() *scan.ColStats {
	if l == nil || l.size == 0 || l.failed {
		return nil
	}
	if !l.loaded {
		l.load()
		if l.failed {
			return nil
		}
	}
	if l.agg == nil {
		l.agg = mergeEntries(l.entries)
	}
	return l.agg
}

// mergeEntries derives a whole-file aggregate from per-group entries (the
// legacy-section path shared by both file-tier consumers). nil when there
// are no entries.
func mergeEntries(entries []statsEntry) *scan.ColStats {
	if len(entries) == 0 {
		return nil
	}
	var m scan.ColStats
	for i := range entries {
		m.Merge(&entries[i].st)
	}
	return &m
}

func (l *statsLoader) load() {
	l.loaded = true
	blob := make([]byte, l.size)
	readAt := l.src.ReadAt
	if u, ok := l.src.(unchargedReaderAt); ok {
		readAt = u.UnchargedReadAt
	}
	if _, err := readAt(blob, l.off); err != nil && err != io.EOF {
		l.failed = true
		return
	}
	entries, agg, err := parseStatsSection(blob, l.schema)
	if err != nil {
		l.failed = true
		return
	}
	l.entries = entries
	l.agg = agg
}

// FileStats reads a column file's whole-file aggregate statistics using
// only the footer and the adjacent stats section — never the data region,
// and never the accounting sink. Current sections lead with the aggregate,
// so the parse is O(1) in the number of record groups; legacy sections
// fall back to merging their group entries. This is the scheduler tier's
// view: split elision decides a file's relevance from it before any map
// task exists. It returns (nil, nil) for files without (or with
// unreadable) statistics — planning degrades, it does not fail.
func FileStats(r ReaderAtSize, schema *serde.Schema) (*scan.ColStats, error) {
	_, statsLen, err := readFooter(r)
	if err != nil {
		return nil, err
	}
	if statsLen == 0 {
		return nil, nil
	}
	blob := make([]byte, statsLen)
	readAt := r.ReadAt
	if u, ok := r.(unchargedReaderAt); ok {
		readAt = u.UnchargedReadAt
	}
	if _, err := readAt(blob, r.Size()-footerSize-statsLen); err != nil && err != io.EOF {
		return nil, nil
	}
	agg, _, err := parseStatsHead(blob, schema)
	if err != nil {
		return nil, nil
	}
	if agg != nil {
		return agg, nil
	}
	// Legacy groups-only section: merge the entries.
	entries, _, err := parseStatsSection(blob, schema)
	if err != nil {
		return nil, nil
	}
	return mergeEntries(entries), nil
}
