package colfile

import (
	"fmt"
	"testing"

	"colmr/internal/serde"
)

// The stats-section parser is exposed to on-disk bytes (and, through
// FileStats, to bytes no reader has validated) and must never panic. The
// seed corpus covers the full footer lineage — legacy CFST, aggregate-first
// CFS2, bloom-bearing CFS3, histogram-bearing CFS4 — plus bloom and
// histogram present/absent/degenerate/saturated entries and truncations of
// each. Runs under plain `go test`; explores further under
// `go test -fuzz FuzzStatsSection`.

// stripNewerFeatures clones entries without the CFS4-only fields so legacy
// encoders accept real collector output.
func stripNewerFeatures(entries []statsEntry) []statsEntry {
	out := append([]statsEntry(nil), entries...)
	for i := range out {
		out[i].st.BloomFill = 0
		out[i].st.Hist = nil
	}
	return out
}

// fuzzSeedSections builds one valid section per format generation for the
// given schema, from real collector output.
func fuzzSeedSections(schema *serde.Schema, gen func(i int) any) ([][]byte, error) {
	bloomed := newStatsCollector(schema, 20, 1<<10)
	plain := newStatsCollector(schema, 20, 0)
	// A whole-file-style collector with histogram sampling on: its single
	// entry carries the CFS4 features (histogram, recorded fill).
	full := newStatsCollector(schema, 0, 1<<10)
	full.histMax = 64
	for i := 0; i < 100; i++ {
		bloomed.observe(gen(i))
		plain.observe(gen(i))
		full.observe(gen(i))
	}
	bloomed.cut()
	plain.cut()
	full.cut()
	var out [][]byte
	legacy, err := appendStatsSection(nil, schema, plain.entries)
	if err != nil {
		return nil, err
	}
	out = append(out, legacy)
	v2, err := appendStatsSectionV2(nil, schema, mergeEntries(plain.entries), plain.entries)
	if err != nil {
		return nil, err
	}
	out = append(out, v2)
	v3entries := stripNewerFeatures(bloomed.entries)
	v3, err := appendStatsSectionV3(nil, schema, mergeEntries(stripNewerFeatures(plain.entries)), v3entries)
	if err != nil {
		return nil, err
	}
	out = append(out, v3)
	v4, err := appendStatsSectionV4(nil, schema, &full.entries[0].st, bloomed.entries)
	if err != nil {
		return nil, err
	}
	out = append(out, v4)
	return out, nil
}

func FuzzStatsSection(f *testing.F) {
	strSchema := serde.String()
	mapSchema := serde.MapOf(serde.Int())
	strSeeds, err := fuzzSeedSections(strSchema, func(i int) any { return fmt.Sprintf("value-%d", i) })
	if err != nil {
		f.Fatal(err)
	}
	mapSeeds, err := fuzzSeedSections(mapSchema, func(i int) any {
		return map[string]any{fmt.Sprintf("k%d", i%7): int32(i)}
	})
	if err != nil {
		f.Fatal(err)
	}
	for _, s := range append(strSeeds, mapSeeds...) {
		f.Add(s)
		f.Add(s[:len(s)/2]) // truncated mid-entry
		f.Add(s[:5])        // magic plus one byte
	}
	// A CFS3 aggregate whose filter is all ones (saturated on disk: a
	// parser must take it as-is, saturation is a write-side policy).
	sat := []byte(statsMagicV3)
	sat = append(sat, 1, 0, 1) // rows=1 nulls=0 distinct=1
	sat = append(sat, 1<<4)    // flags: bloom only
	sat = append(sat, 7, 8)    // k=7, 8 words (one block)
	for i := 0; i < 64; i++ {
		sat = append(sat, 0xFF)
	}
	sat = append(sat, 0) // zero groups
	f.Add(sat)
	// Absurd bloom geometry: word count far past the file cap.
	huge := []byte(statsMagicV3)
	huge = append(huge, 1, 0, 1, 1<<4, 7, 0xFF, 0xFF, 0xFF, 0x7F)
	f.Add(huge)
	// A degenerate CFS4 aggregate: one-bucket histogram whose single bucket
	// covers one value — the smallest histogram a writer can emit.
	deg := []byte(statsMagicV4)
	deg = append(deg, 5, 0, 1) // rows=5 nulls=0 distinct=1
	deg = append(deg, 1|1<<5)  // flags: minmax + hist
	lit := func(dst []byte) []byte {
		// A length-prefixed serde bound, the same spelling appendStatsEntry
		// uses for min/max and histogram bucket bounds.
		enc, err := serde.AppendValue(nil, strSchema, "a")
		if err != nil {
			f.Fatal(err)
		}
		dst = append(dst, byte(len(enc)))
		return append(dst, enc...)
	}
	deg = lit(deg)       // min
	deg = lit(deg)       // max
	deg = append(deg, 1) // one bucket
	deg = append(deg, 5) // bucket count=5
	deg = lit(deg)       // bucket lo
	deg = lit(deg)       // bucket hi
	deg = append(deg, 0) // zero groups
	f.Add(deg)
	// Same aggregate with an implausible bucket count (0): must be rejected
	// or tolerated without panic, never trusted.
	badHist := []byte(statsMagicV4)
	badHist = append(badHist, 5, 0, 1, 1<<5, 0xFF, 0xFF, 0x7F)
	f.Add(badHist)
	f.Add([]byte("CFS9junk"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, schema := range []*serde.Schema{strSchema, mapSchema} {
			entries, agg, err := parseStatsSection(data, schema)
			if err != nil {
				continue
			}
			// Whatever parses must re-encode and re-parse to the same
			// number of entries with the same geometry — the round trip
			// the writer depends on.
			var blob []byte
			if agg != nil {
				blob, err = appendStatsSectionV4(nil, schema, agg, entries)
			} else {
				blob, err = appendStatsSection(nil, schema, entries)
			}
			if err != nil {
				// Decoded values of another schema's kind can fail to
				// re-encode under this one; that is a caller-side type
				// error, not corruption.
				continue
			}
			again, _, err := parseStatsSection(blob, schema)
			if err != nil {
				t.Fatalf("re-encoded section does not parse: %v", err)
			}
			if len(again) != len(entries) {
				t.Fatalf("round trip changed entry count: %d -> %d", len(entries), len(again))
			}
			for i := range again {
				if again[i].st.Rows != entries[i].st.Rows ||
					(again[i].st.Bloom == nil) != (entries[i].st.Bloom == nil) ||
					(again[i].st.Hist == nil) != (entries[i].st.Hist == nil) {
					t.Fatalf("round trip changed entry %d", i)
				}
			}
		}
	})
}
