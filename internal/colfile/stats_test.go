package colfile

import (
	"testing"

	"colmr/internal/scan"
	"colmr/internal/serde"
)

// statsSource asserts a reader exposes zone maps and returns it typed.
func statsSource(t *testing.T, r Reader, name string) StatsSource {
	t.Helper()
	src, ok := r.(StatsSource)
	if !ok {
		t.Fatalf("%s: reader %T does not implement StatsSource", name, r)
	}
	return src
}

// TestStatsFooterRoundTripInt writes a monotonically increasing int column
// in every layout and checks the recovered per-group min/max/rows.
func TestStatsFooterRoundTripInt(t *testing.T) {
	schema := serde.Int()
	const n = 437
	for _, opts := range allLayouts() {
		if opts.Layout == DCSL {
			continue // map-only layout
		}
		opts.StatsEvery = 50
		name := opts.Layout.String() + "/" + opts.Codec
		f, _ := writeColumn(t, schema, opts, n, func(i int) any { return int32(i * 3) })
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		src := statsSource(t, r, name)

		// Walk every record; each must be covered by a group whose bounds
		// contain it, and groups must tile [0, n).
		var covered int64
		for rec := int64(0); rec < n; {
			st, end := src.GroupStats(rec)
			if st == nil {
				t.Fatalf("%s: no stats for record %d", name, rec)
			}
			start := end - st.Rows
			if end <= rec || start != rec {
				t.Fatalf("%s: bad group geometry at %d: start=%d end=%d rows=%d", name, rec, start, end, st.Rows)
			}
			if !st.HasMinMax {
				t.Fatalf("%s: int group [%d,%d) missing min/max", name, start, end)
			}
			wantMin, wantMax := int32(start*3), int32((end-1)*3)
			if st.Min != wantMin || st.Max != wantMax {
				t.Errorf("%s: group [%d,%d): min/max = %v/%v, want %v/%v",
					name, start, end, st.Min, st.Max, wantMin, wantMax)
			}
			if st.Nulls != 0 {
				t.Errorf("%s: group [%d,%d): nulls = %d", name, start, end, st.Nulls)
			}
			if !st.DistinctCapped && st.Distinct != st.Rows {
				t.Errorf("%s: group [%d,%d): distinct = %d, want %d (all values unique)",
					name, start, end, st.Distinct, st.Rows)
			}
			covered += st.Rows
			rec = end
		}
		if covered != n {
			t.Errorf("%s: groups cover %d records, want %d", name, covered, n)
		}
		if st, _ := src.GroupStats(n); st != nil {
			t.Errorf("%s: stats past end should be nil", name)
		}
	}
}

// TestStatsFooterMapKeys checks the per-group key universe of map columns,
// including the DCSL layout.
func TestStatsFooterMapKeys(t *testing.T) {
	schema := mapSchema()
	const n = 120
	gen := func(i int) any {
		m := map[string]any{"always": int32(i)}
		if i < 60 {
			m["early"] = int32(i)
		} else {
			m["late"] = int32(i)
		}
		return m
	}
	for _, opts := range allLayouts() {
		opts.StatsEvery = 60
		name := opts.Layout.String() + "/" + opts.Codec
		f, _ := writeColumn(t, schema, opts, n, gen)
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		src := statsSource(t, r, name)
		st, end := src.GroupStats(0)
		if st == nil || !st.HasKeys {
			t.Fatalf("%s: first group missing keys (%+v)", name, st)
		}
		if st.KeysCapped {
			t.Fatalf("%s: small key universe should not be capped", name)
		}
		if !st.HasKey("always") || st.HasKey("nothere") {
			t.Errorf("%s: first group keys = %v", name, st.Keys)
		}
		// Block frames may cut at different boundaries than 60; only the
		// cadence-based layouts are asserted on the early/late split.
		if opts.Layout != Block && end == 60 {
			if !st.HasKey("early") || st.HasKey("late") {
				t.Errorf("%s: first group keys = %v, want early but not late", name, st.Keys)
			}
			late, _ := src.GroupStats(60)
			if late == nil || !late.HasKey("late") || late.HasKey("early") {
				t.Errorf("%s: second group keys missing late/early split: %+v", name, late)
			}
		}
	}
}

// TestStatsDisabled checks that a negative StatsEvery yields no section
// and a nil GroupStats.
func TestStatsDisabled(t *testing.T) {
	schema := serde.Int()
	for _, opts := range allLayouts() {
		if opts.Layout == DCSL {
			continue
		}
		opts.StatsEvery = -1
		name := opts.Layout.String() + "/" + opts.Codec
		f, _ := writeColumn(t, schema, opts, 50, func(i int) any { return int32(i) })
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st, _ := statsSource(t, r, name).GroupStats(0); st != nil {
			t.Errorf("%s: disabled stats returned %+v", name, st)
		}
		// Values still round-trip.
		for i := 0; i < 50; i++ {
			v, err := r.Value()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if v != int32(i) {
				t.Fatalf("%s: value %d = %v", name, i, v)
			}
		}
	}
}

// TestStatsPruneIntegration drives scan predicates against file-recovered
// stats: the combination the CIF reader uses.
func TestStatsPruneIntegration(t *testing.T) {
	schema := serde.String()
	opts := Options{Layout: SkipList, Levels: []int{100, 10}, StatsEvery: 50}
	// Two sorted runs: "aaa..." prefixed then "zzz..." prefixed.
	f, _ := writeColumn(t, schema, opts, 100, func(i int) any {
		if i < 50 {
			return "aaa-" + string(rune('a'+i%26))
		}
		return "zzz-" + string(rune('a'+i%26))
	})
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := r.(StatsSource)
	statsAt := func(rec int64) scan.StatsFunc {
		return func(string) *scan.ColStats {
			st, _ := src.GroupStats(rec)
			return st
		}
	}
	if got := scan.HasPrefix("c", "zzz").Prune(statsAt(0)); got != scan.NoMatch {
		t.Errorf("prefix zzz over aaa-group = %v, want NoMatch", got)
	}
	if got := scan.HasPrefix("c", "aaa").Prune(statsAt(0)); got != scan.MayMatch {
		t.Errorf("prefix aaa over aaa-group = %v, want MayMatch", got)
	}
	if got := scan.HasPrefix("c", "aaa").Prune(statsAt(50)); got != scan.NoMatch {
		t.Errorf("prefix aaa over zzz-group = %v, want NoMatch", got)
	}
	if got := scan.Eq("c", "zzz-a").Prune(statsAt(50)); got != scan.MayMatch {
		t.Errorf("eq inside zzz-group = %v, want MayMatch", got)
	}
}

// TestStatsBytesColumn checks []byte min/max bounds survive the footer.
func TestStatsBytesColumn(t *testing.T) {
	schema := serde.Bytes()
	opts := Options{Layout: Plain, StatsEvery: 25}
	f, _ := writeColumn(t, schema, opts, 50, func(i int) any {
		return []byte{byte('a' + i%26), byte(i)}
	})
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, end := r.(StatsSource).GroupStats(0)
	if st == nil || !st.HasMinMax || end != 25 {
		t.Fatalf("bytes group stats = %+v end=%d", st, end)
	}
	if _, ok := st.Min.([]byte); !ok {
		t.Fatalf("bytes min decoded as %T", st.Min)
	}
}
