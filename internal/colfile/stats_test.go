package colfile

import (
	"testing"

	"colmr/internal/scan"
	"colmr/internal/serde"
)

// statsSource asserts a reader exposes zone maps and returns it typed.
func statsSource(t *testing.T, r Reader, name string) StatsSource {
	t.Helper()
	src, ok := r.(StatsSource)
	if !ok {
		t.Fatalf("%s: reader %T does not implement StatsSource", name, r)
	}
	return src
}

// TestStatsFooterRoundTripInt writes a monotonically increasing int column
// in every layout and checks the recovered per-group min/max/rows.
func TestStatsFooterRoundTripInt(t *testing.T) {
	schema := serde.Int()
	const n = 437
	for _, opts := range allLayouts() {
		if opts.Layout == DCSL {
			continue // map-only layout
		}
		opts.StatsEvery = 50
		name := opts.Layout.String() + "/" + opts.Codec
		f, _ := writeColumn(t, schema, opts, n, func(i int) any { return int32(i * 3) })
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		src := statsSource(t, r, name)

		// Walk every record; each must be covered by a group whose bounds
		// contain it, and groups must tile [0, n).
		var covered int64
		for rec := int64(0); rec < n; {
			st, end := src.GroupStats(rec)
			if st == nil {
				t.Fatalf("%s: no stats for record %d", name, rec)
			}
			start := end - st.Rows
			if end <= rec || start != rec {
				t.Fatalf("%s: bad group geometry at %d: start=%d end=%d rows=%d", name, rec, start, end, st.Rows)
			}
			if !st.HasMinMax {
				t.Fatalf("%s: int group [%d,%d) missing min/max", name, start, end)
			}
			wantMin, wantMax := int32(start*3), int32((end-1)*3)
			if st.Min != wantMin || st.Max != wantMax {
				t.Errorf("%s: group [%d,%d): min/max = %v/%v, want %v/%v",
					name, start, end, st.Min, st.Max, wantMin, wantMax)
			}
			if st.Nulls != 0 {
				t.Errorf("%s: group [%d,%d): nulls = %d", name, start, end, st.Nulls)
			}
			if !st.DistinctCapped && st.Distinct != st.Rows {
				t.Errorf("%s: group [%d,%d): distinct = %d, want %d (all values unique)",
					name, start, end, st.Distinct, st.Rows)
			}
			covered += st.Rows
			rec = end
		}
		if covered != n {
			t.Errorf("%s: groups cover %d records, want %d", name, covered, n)
		}
		if st, _ := src.GroupStats(n); st != nil {
			t.Errorf("%s: stats past end should be nil", name)
		}
	}
}

// TestStatsFooterMapKeys checks the per-group key universe of map columns,
// including the DCSL layout.
func TestStatsFooterMapKeys(t *testing.T) {
	schema := mapSchema()
	const n = 120
	gen := func(i int) any {
		m := map[string]any{"always": int32(i)}
		if i < 60 {
			m["early"] = int32(i)
		} else {
			m["late"] = int32(i)
		}
		return m
	}
	for _, opts := range allLayouts() {
		opts.StatsEvery = 60
		name := opts.Layout.String() + "/" + opts.Codec
		f, _ := writeColumn(t, schema, opts, n, gen)
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		src := statsSource(t, r, name)
		st, end := src.GroupStats(0)
		if st == nil || !st.HasKeys {
			t.Fatalf("%s: first group missing keys (%+v)", name, st)
		}
		if st.KeysCapped {
			t.Fatalf("%s: small key universe should not be capped", name)
		}
		if !st.HasKey("always") || st.HasKey("nothere") {
			t.Errorf("%s: first group keys = %v", name, st.Keys)
		}
		// Block frames may cut at different boundaries than 60; only the
		// cadence-based layouts are asserted on the early/late split.
		if opts.Layout != Block && end == 60 {
			if !st.HasKey("early") || st.HasKey("late") {
				t.Errorf("%s: first group keys = %v, want early but not late", name, st.Keys)
			}
			late, _ := src.GroupStats(60)
			if late == nil || !late.HasKey("late") || late.HasKey("early") {
				t.Errorf("%s: second group keys missing late/early split: %+v", name, late)
			}
		}
	}
}

// TestStatsDisabled checks that a negative StatsEvery yields no section
// and a nil GroupStats.
func TestStatsDisabled(t *testing.T) {
	schema := serde.Int()
	for _, opts := range allLayouts() {
		if opts.Layout == DCSL {
			continue
		}
		opts.StatsEvery = -1
		name := opts.Layout.String() + "/" + opts.Codec
		f, _ := writeColumn(t, schema, opts, 50, func(i int) any { return int32(i) })
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st, _ := statsSource(t, r, name).GroupStats(0); st != nil {
			t.Errorf("%s: disabled stats returned %+v", name, st)
		}
		// Values still round-trip.
		for i := 0; i < 50; i++ {
			v, err := r.Value()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if v != int32(i) {
				t.Fatalf("%s: value %d = %v", name, i, v)
			}
		}
	}
}

// TestStatsPruneIntegration drives scan predicates against file-recovered
// stats: the combination the CIF reader uses.
func TestStatsPruneIntegration(t *testing.T) {
	schema := serde.String()
	opts := Options{Layout: SkipList, Levels: []int{100, 10}, StatsEvery: 50}
	// Two sorted runs: "aaa..." prefixed then "zzz..." prefixed.
	f, _ := writeColumn(t, schema, opts, 100, func(i int) any {
		if i < 50 {
			return "aaa-" + string(rune('a'+i%26))
		}
		return "zzz-" + string(rune('a'+i%26))
	})
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := r.(StatsSource)
	statsAt := func(rec int64) scan.StatsFunc {
		return func(string) *scan.ColStats {
			st, _ := src.GroupStats(rec)
			return st
		}
	}
	if got := scan.HasPrefix("c", "zzz").Prune(statsAt(0)); got != scan.NoMatch {
		t.Errorf("prefix zzz over aaa-group = %v, want NoMatch", got)
	}
	if got := scan.HasPrefix("c", "aaa").Prune(statsAt(0)); got != scan.MayMatch {
		t.Errorf("prefix aaa over aaa-group = %v, want MayMatch", got)
	}
	if got := scan.HasPrefix("c", "aaa").Prune(statsAt(50)); got != scan.NoMatch {
		t.Errorf("prefix aaa over zzz-group = %v, want NoMatch", got)
	}
	if got := scan.Eq("c", "zzz-a").Prune(statsAt(50)); got != scan.MayMatch {
		t.Errorf("eq inside zzz-group = %v, want MayMatch", got)
	}
}

// TestStatsBytesColumn checks []byte min/max bounds survive the footer.
func TestStatsBytesColumn(t *testing.T) {
	schema := serde.Bytes()
	opts := Options{Layout: Plain, StatsEvery: 25}
	f, _ := writeColumn(t, schema, opts, 50, func(i int) any {
		return []byte{byte('a' + i%26), byte(i)}
	})
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, end := r.(StatsSource).GroupStats(0)
	if st == nil || !st.HasMinMax || end != 25 {
		t.Fatalf("bytes group stats = %+v end=%d", st, end)
	}
	if _, ok := st.Min.([]byte); !ok {
		t.Fatalf("bytes min decoded as %T", st.Min)
	}
}

// fileStatsSource asserts a reader exposes whole-file aggregates and
// returns it typed.
func fileStatsSource(t *testing.T, r Reader, name string) FileStatsSource {
	t.Helper()
	src, ok := r.(FileStatsSource)
	if !ok {
		t.Fatalf("%s: reader %T does not implement FileStatsSource", name, r)
	}
	return src
}

// TestFileStatsAggregateRoundTrip writes a monotone int column in every
// layout and checks the whole-file aggregate both through an opened reader
// and through the footer-only package entry point.
func TestFileStatsAggregateRoundTrip(t *testing.T) {
	schema := serde.Int()
	const n = 437
	for _, opts := range allLayouts() {
		if opts.Layout == DCSL {
			continue // map-only layout
		}
		opts.StatsEvery = 50
		name := opts.Layout.String() + "/" + opts.Codec
		f, _ := writeColumn(t, schema, opts, n, func(i int) any { return int32(i * 3) })

		check := func(st *scan.ColStats, via string) {
			if st == nil {
				t.Fatalf("%s: no aggregate via %s", name, via)
			}
			if st.Rows != n || st.Nulls != 0 {
				t.Errorf("%s via %s: rows/nulls = %d/%d, want %d/0", name, via, st.Rows, st.Nulls, n)
			}
			if !st.HasMinMax || st.Min != int32(0) || st.Max != int32((n-1)*3) {
				t.Errorf("%s via %s: min/max = %v/%v, want 0/%d", name, via, st.Min, st.Max, (n-1)*3)
			}
			if !st.DistinctCapped {
				t.Errorf("%s via %s: %d distinct values should exceed the per-group cap", name, via, n)
			}
		}
		st, err := FileStats(f.reader(), schema)
		if err != nil {
			t.Fatalf("%s: FileStats: %v", name, err)
		}
		check(st, "FileStats")

		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatal(err)
		}
		check(fileStatsSource(t, r, name).FileStats(), "reader")
	}
}

// TestFileStatsAggregateKeys checks the whole-file key universe of a DCSL
// map column: the aggregate unions the per-window universes, so a key
// absent from the union is disprovable at the file tier.
func TestFileStatsAggregateKeys(t *testing.T) {
	schema := mapSchema()
	const n = 120
	f, _ := writeColumn(t, schema, Options{Layout: DCSL, Levels: []int{100, 10}, StatsEvery: 40}, n, func(i int) any {
		m := map[string]any{"always": int32(i)}
		if i < 60 {
			m["early"] = int32(i)
		} else {
			m["late"] = int32(i)
		}
		return m
	})
	st, err := FileStats(f.reader(), schema)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || !st.HasKeys || st.KeysCapped {
		t.Fatalf("aggregate = %+v, want complete key universe", st)
	}
	for _, k := range []string{"always", "early", "late"} {
		if !st.HasKey(k) {
			t.Errorf("aggregate key universe misses %q", k)
		}
	}
	if st.HasKey("never") {
		t.Error("aggregate key universe claims a key no record has")
	}
}

// TestFileStatsBackwardCompat assembles a file whose stats section predates
// the aggregate trailer (per-group entries only) and checks that it still
// opens, serves group stats, and derives a whole-file aggregate by merging
// groups.
func TestFileStatsBackwardCompat(t *testing.T) {
	schema := serde.Int()
	const n = 100
	// Hand-assemble a Plain file the way the pre-trailer writer did.
	zm := newStatsCollector(schema, 40, 0)
	var data []byte
	data = appendHeader(data, header{layout: Plain})
	for i := 0; i < n; i++ {
		enc, err := serde.AppendValue(nil, schema, int32(i))
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, enc...)
		zm.observe(int32(i))
	}
	zm.cut()
	section, err := appendStatsSection(nil, schema, zm.entries)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, section...)
	data = appendFooter(data, n, len(section))
	f := &memFile{}
	f.Write(data)

	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatalf("pre-aggregate file does not open: %v", err)
	}
	for i := 0; i < n; i++ {
		v, err := r.Value()
		if err != nil {
			t.Fatal(err)
		}
		if v != int32(i) {
			t.Fatalf("record %d = %v", i, v)
		}
	}
	if st, _ := statsSource(t, r, "plain").GroupStats(0); st == nil {
		t.Fatal("pre-aggregate file serves no group stats")
	}
	st := fileStatsSource(t, r, "plain").FileStats()
	if st == nil {
		t.Fatal("no aggregate derived from per-group entries")
	}
	if st.Rows != n || st.Min != int32(0) || st.Max != int32(n-1) {
		t.Errorf("merged aggregate = rows %d min %v max %v, want %d 0 %d", st.Rows, st.Min, st.Max, n, n-1)
	}
}

// TestDCSLKeyProbe checks the DCSL reader's key prober against
// materialized truth for every record, and that a key outside the window
// dictionary is refuted without decoding anything.
func TestDCSLKeyProbe(t *testing.T) {
	schema := mapSchema()
	const n = 230
	gen := func(i int) any {
		m := map[string]any{}
		if i%2 == 0 {
			m["even"] = int32(i)
		}
		if i%3 == 0 {
			m["third"] = int32(i)
		}
		m["k"+string(rune('a'+i%5))] = int32(i)
		return m
	}
	f, vals := writeColumn(t, schema, Options{Layout: DCSL, Levels: []int{100, 10}}, n, gen)
	r, err := NewReader(f.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	kp, ok := r.(KeyProber)
	if !ok {
		t.Fatalf("DCSL reader %T does not implement KeyProber", r)
	}
	keys := []string{"even", "third", "ka", "kb", "absent"}
	for i := 0; i < n; i++ {
		if err := r.SkipTo(int64(i)); err != nil {
			t.Fatal(err)
		}
		want := vals[i].(map[string]any)
		for _, key := range keys {
			has, answered, err := kp.HasKey(key)
			if err != nil {
				t.Fatalf("record %d key %q: %v", i, key, err)
			}
			if !answered {
				t.Fatalf("record %d key %q: prober did not answer", i, key)
			}
			if _, truth := want[key]; has != truth {
				t.Fatalf("record %d key %q: probe = %v, want %v", i, key, has, truth)
			}
		}
		// Probing must not move the cursor: the value must still decode.
		v, err := r.Value()
		if err != nil {
			t.Fatal(err)
		}
		if !serde.ValuesEqual(schema, v, vals[i]) {
			t.Fatalf("record %d corrupted by probing: %v vs %v", i, v, vals[i])
		}
	}
}
