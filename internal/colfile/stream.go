package colfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// defaultChunk is the refill granularity of the buffered stream. It matches
// the cluster's default transfer unit so that skip-list jumps shorter than
// one transfer unit save no I/O (the readahead already fetched the bytes),
// while longer jumps genuinely eliminate reads — mirroring HDFS prefetch
// behaviour.
const defaultChunk = 128 << 10

// stream is a buffered forward reader over a ReaderAtSize with explicit
// seek support. It exposes a byte window for zero-copy decoding and retries
// decodes that run off the window's edge.
type stream struct {
	r     ReaderAtSize
	size  int64
	chunk int

	// Adaptive readahead (selective scans): when chunkMin is set below
	// chunk, a jump observed between refills shrinks the granularity to
	// chunkMin and sequential refills double it back up to chunkMax —
	// small prefetch while the cursor hops between qualifying groups,
	// full streaming when the scan is dense. A scan that never jumps
	// never shrinks, so an unselective predicate costs exactly a plain
	// scan.
	chunkMin int
	chunkMax int
	seqEnd   int64 // file offset one past the previous refill, -1 initially

	base int64  // file offset of buf[0]
	buf  []byte // buffered window
	off  int    // cursor within buf

	// onRefill, when set, is invoked on every physical refill with the
	// number of bytes about to be fetched and the refill granularity in
	// effect. CIF uses it to charge multi-stream interleave cost
	// (hdfs.FileReader.ChargeInterleaved), normalized per granularity.
	onRefill func(bytes, chunk int)

	// dataEnd bounds reads: bytes at and after this offset (the footer)
	// are not part of the value stream.
	dataEnd int64
}

func newStream(r ReaderAtSize, chunk int) *stream {
	if chunk <= 0 {
		chunk = defaultChunk
	}
	size := r.Size()
	return &stream{r: r, size: size, chunk: chunk, chunkMin: chunk, chunkMax: chunk, dataEnd: size, seqEnd: -1}
}

// setShrink enables adaptive readahead with min bytes as the post-jump
// refill granularity.
func (s *stream) setShrink(min int) {
	if min > 0 && min < s.chunk {
		s.chunkMin = min
	}
}

// pos returns the stream cursor's absolute file offset.
func (s *stream) pos() int64 { return s.base + int64(s.off) }

// remainingInFile reports bytes left before dataEnd.
func (s *stream) remainingInFile() int64 { return s.dataEnd - s.pos() }

// seekTo moves the cursor to an absolute offset. If the target is inside
// the buffered window the move is free; otherwise the window is dropped.
func (s *stream) seekTo(p int64) error {
	if p < 0 || p > s.dataEnd {
		return fmt.Errorf("colfile: seek to %d outside data region [0,%d]", p, s.dataEnd)
	}
	if p >= s.base && p <= s.base+int64(len(s.buf)) {
		s.off = int(p - s.base)
		return nil
	}
	s.base = p
	s.buf = s.buf[:0]
	s.off = 0
	return nil
}

// skip advances the cursor n bytes forward.
func (s *stream) skip(n int64) error {
	if n < 0 {
		return fmt.Errorf("colfile: negative skip %d", n)
	}
	return s.seekTo(s.pos() + n)
}

// ensure makes at least n bytes available at the cursor, refilling from the
// underlying reader as needed. It fails with io.ErrUnexpectedEOF if fewer
// than n bytes remain before dataEnd.
func (s *stream) ensure(n int) error {
	if s.off+n <= len(s.buf) {
		return nil
	}
	if int64(n) > s.remainingInFile() {
		return io.ErrUnexpectedEOF
	}
	// Compact: drop consumed prefix.
	if s.off > 0 {
		rem := copy(s.buf, s.buf[s.off:])
		s.base += int64(s.off)
		s.buf = s.buf[:rem]
		s.off = 0
	}
	for len(s.buf) < n {
		readAt := s.base + int64(len(s.buf))
		if s.chunkMin < s.chunkMax {
			if s.seqEnd >= 0 && readAt != s.seqEnd {
				// The cursor jumped since the last refill: back to small
				// prefetch.
				s.chunk = s.chunkMin
			} else if s.chunk < s.chunkMax {
				// Sequential refill: ramp back toward full streaming.
				s.chunk *= 2
				if s.chunk > s.chunkMax {
					s.chunk = s.chunkMax
				}
			}
		}
		want := s.chunk
		if want < n-len(s.buf) {
			want = n - len(s.buf)
		}
		if max := s.dataEnd - readAt; int64(want) > max {
			want = int(max)
		}
		if want <= 0 {
			return io.ErrUnexpectedEOF
		}
		chunk := make([]byte, want)
		if s.onRefill != nil {
			s.onRefill(want, s.chunk)
		}
		m, err := s.r.ReadAt(chunk, readAt)
		s.buf = append(s.buf, chunk[:m]...)
		if err != nil && err != io.EOF {
			return err
		}
		if m == 0 {
			return io.ErrUnexpectedEOF
		}
		s.seqEnd = readAt + int64(m)
	}
	return nil
}

// view returns the currently buffered bytes at the cursor without
// consuming them.
func (s *stream) view() []byte { return s.buf[s.off:] }

// consume advances the cursor n bytes within the buffered window.
func (s *stream) consume(n int) { s.off += n }

// readFull returns exactly n bytes at the cursor and consumes them. The
// returned slice aliases the window and is valid until the next stream call.
func (s *stream) readFull(n int) ([]byte, error) {
	if err := s.ensure(n); err != nil {
		return nil, err
	}
	b := s.buf[s.off : s.off+n]
	s.off += n
	return b, nil
}

// readUvarint decodes a uvarint at the cursor.
func (s *stream) readUvarint() (uint64, error) {
	for need := 1; need <= binary.MaxVarintLen64; need++ {
		if err := s.ensure(need); err != nil {
			// The varint may simply end before `need` bytes; try decoding
			// what remains.
			v, n := binary.Uvarint(s.view())
			if n > 0 {
				s.off += n
				return v, nil
			}
			return 0, err
		}
		v, n := binary.Uvarint(s.view())
		if n > 0 {
			s.off += n
			return v, nil
		}
		if n < 0 {
			return 0, fmt.Errorf("colfile: uvarint overflow at offset %d", s.pos())
		}
	}
	return 0, io.ErrUnexpectedEOF
}

// peekUvarint decodes a uvarint at the cursor without consuming it,
// returning the value and its encoded width.
func (s *stream) peekUvarint() (uint64, int, error) {
	for need := 1; need <= binary.MaxVarintLen64; need++ {
		if err := s.ensure(need); err != nil {
			v, n := binary.Uvarint(s.view())
			if n > 0 {
				return v, n, nil
			}
			return 0, 0, err
		}
		v, n := binary.Uvarint(s.view())
		if n > 0 {
			return v, n, nil
		}
		if n < 0 {
			return 0, 0, fmt.Errorf("colfile: uvarint overflow at offset %d", s.pos())
		}
	}
	return 0, 0, io.ErrUnexpectedEOF
}

// peekAt returns n bytes starting skip bytes past the cursor, consuming
// nothing. The returned slice aliases the window and is valid until the
// next stream call.
func (s *stream) peekAt(skip, n int) ([]byte, error) {
	if err := s.ensure(skip + n); err != nil {
		return nil, err
	}
	return s.buf[s.off+skip : s.off+skip+n], nil
}

// errShortDecode marks decode attempts that ran off the buffered window and
// should be retried with more data.
var errShortDecode = errors.New("colfile: short decode")

// decodeRetry runs fn over the buffered window, growing the window and
// retrying when fn reports a truncation that more data could cure. fn
// returns the number of bytes it consumed.
func (s *stream) decodeRetry(fn func(buf []byte) (int, error)) error {
	need := 1
	for {
		avail := int(s.dataEnd - s.pos()) // bytes that could ever be visible
		if avail <= 0 {
			return io.ErrUnexpectedEOF
		}
		if need > avail {
			need = avail
		}
		if err := s.ensure(need); err != nil {
			return err
		}
		n, err := fn(s.view())
		if err == nil {
			s.off += n
			return nil
		}
		// More bytes can only cure the failure if the window does not
		// already extend to the end of the data region.
		if len(s.view()) >= avail {
			return err
		}
		need = len(s.view()) + s.chunk
	}
}
