package colfile

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func newTestStream(data []byte, chunk int) *stream {
	return newStream(bytes.NewReader(data), chunk)
}

func TestStreamSequentialRead(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	s := newTestStream(data, 64)
	for off := 0; off < 1000; off += 100 {
		b, err := s.readFull(100)
		if err != nil {
			t.Fatalf("readFull at %d: %v", off, err)
		}
		for i, c := range b {
			if c != byte(off+i) {
				t.Fatalf("byte %d = %d, want %d", off+i, c, byte(off+i))
			}
		}
	}
	if _, err := s.readFull(1); err != io.ErrUnexpectedEOF {
		t.Errorf("read past end = %v, want ErrUnexpectedEOF", err)
	}
}

func TestStreamSeekWithinAndBeyondWindow(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i % 251)
	}
	s := newTestStream(data, 256)
	if _, err := s.readFull(10); err != nil {
		t.Fatal(err)
	}
	// Seek backward inside the buffered window: free.
	if err := s.seekTo(2); err != nil {
		t.Fatal(err)
	}
	b, _ := s.readFull(1)
	if b[0] != 2 {
		t.Errorf("after in-window seek, byte = %d, want 2", b[0])
	}
	// Seek far forward, past the window.
	if err := s.seekTo(4000); err != nil {
		t.Fatal(err)
	}
	b, err := s.readFull(1)
	if err != nil || b[0] != byte(4000%251) {
		t.Errorf("after long seek, byte = %d (%v), want %d", b[0], err, byte(4000%251))
	}
	// Out-of-range seeks fail.
	if err := s.seekTo(-1); err == nil {
		t.Error("negative seek accepted")
	}
	if err := s.seekTo(5000); err == nil {
		t.Error("seek past dataEnd accepted")
	}
	if err := s.skip(-5); err == nil {
		t.Error("negative skip accepted")
	}
}

func TestStreamReadUvarintAcrossRefills(t *testing.T) {
	var data []byte
	values := []uint64{0, 1, 127, 128, 1 << 20, 1<<63 - 1}
	for _, v := range values {
		data = binary.AppendUvarint(data, v)
	}
	// Chunk of 1 byte forces a refill between every varint byte.
	s := newTestStream(data, 1)
	for _, want := range values {
		got, err := s.readUvarint()
		if err != nil {
			t.Fatalf("readUvarint: %v", err)
		}
		if got != want {
			t.Errorf("readUvarint = %d, want %d", got, want)
		}
	}
	if _, err := s.readUvarint(); err == nil {
		t.Error("readUvarint past end succeeded")
	}
}

func TestStreamDecodeRetryGrowsWindow(t *testing.T) {
	data := make([]byte, 500)
	for i := range data {
		data[i] = 0xAB
	}
	s := newTestStream(data, 16)
	calls := 0
	err := s.decodeRetry(func(buf []byte) (int, error) {
		calls++
		if len(buf) < 300 {
			return 0, io.ErrUnexpectedEOF // ask for more
		}
		return 300, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls < 2 {
		t.Errorf("decodeRetry called fn %d times; expected retries", calls)
	}
	if s.pos() != 300 {
		t.Errorf("pos = %d, want 300", s.pos())
	}
	// A failure that more bytes cannot cure surfaces the fn's error.
	err = s.decodeRetry(func(buf []byte) (int, error) {
		return 0, io.ErrUnexpectedEOF
	})
	if err == nil {
		t.Error("incurable decode error suppressed")
	}
	// At end of data, decodeRetry reports EOF cleanly.
	if err := s.seekTo(500); err != nil {
		t.Fatal(err)
	}
	if err := s.decodeRetry(func(buf []byte) (int, error) { return 0, nil }); err != io.ErrUnexpectedEOF {
		t.Errorf("decodeRetry at EOF = %v, want ErrUnexpectedEOF", err)
	}
}

func TestStreamRefillHookReportsBytes(t *testing.T) {
	data := make([]byte, 1024)
	s := newTestStream(data, 256)
	var total int
	s.onRefill = func(n, _ int) { total += n }
	for i := 0; i < 4; i++ {
		if _, err := s.readFull(256); err != nil {
			t.Fatal(err)
		}
	}
	if total != 1024 {
		t.Errorf("refill hook saw %d bytes, want 1024", total)
	}
}

func TestStreamDataEndExcludesFooter(t *testing.T) {
	data := make([]byte, 100)
	s := newTestStream(data, 32)
	s.dataEnd = 80
	if _, err := s.readFull(80); err != nil {
		t.Fatal(err)
	}
	if _, err := s.readFull(1); err != io.ErrUnexpectedEOF {
		t.Errorf("read into footer region = %v, want ErrUnexpectedEOF", err)
	}
	if got := s.remainingInFile(); got != 0 {
		t.Errorf("remainingInFile = %d, want 0", got)
	}
}

func TestStreamAdaptiveShrink(t *testing.T) {
	data := make([]byte, 1<<20)
	s := newTestStream(data, 64<<10)
	s.setShrink(4 << 10)
	var sizes []int
	s.onRefill = func(n, _ int) { sizes = append(sizes, n) }

	// Sequential reads stream at the full granularity.
	if _, err := s.readFull(100); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 1 || sizes[0] != 64<<10 {
		t.Fatalf("first refill = %v, want one 64K fetch", sizes)
	}
	// A jump past the window shrinks the next refill to the floor...
	if err := s.seekTo(300 << 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.readFull(100); err != nil {
		t.Fatal(err)
	}
	if got := sizes[len(sizes)-1]; got != 4<<10 {
		t.Fatalf("post-jump refill = %d, want 4K", got)
	}
	// ...and contiguous consumption ramps refills back up to the full
	// granularity (4K -> 8K -> 16K -> 32K -> 64K).
	for i := 0; i < 50; i++ {
		if _, err := s.readFull(4 << 10); err != nil {
			t.Fatal(err)
		}
	}
	if got := sizes[len(sizes)-1]; got != 64<<10 {
		t.Fatalf("ramped refill = %d, want back at 64K (refills: %v)", got, sizes)
	}
}
