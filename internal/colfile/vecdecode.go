package colfile

import (
	"encoding/binary"
	"fmt"
	"math"

	"colmr/internal/compress"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Batch (vectorized) decode. Every layout can decode a contiguous record
// range into a scan.Vector in one pass over the same stream the scalar path
// uses — identical bytes read, identical refill behaviour — but primitive
// values land in flat typed storage charged to the vector-decode counters
// (CPUStats.VecBytes/VecValues) instead of the boxed per-object rates.
// Complex kinds (maps, arrays, nested records) still build boxed objects
// and keep their scalar charges: vectorization wins control flow there, not
// object churn, and the cost model says so honestly.
//
// The cpu argument is an explicit per-call sink: a caller fanning
// per-column decodes across goroutines hands each call its own CPUStats and
// folds them afterwards, so no shared counter is written concurrently.

// VectorDecoder is implemented by column readers that can decode a record
// range into a vector. All colfile layouts implement it.
type VectorDecoder interface {
	// DecodeVector appends records [start, end) to v, advancing the cursor
	// to end. start must not precede the cursor (streams are forward-only).
	// CPU work for the whole call — skips, decompression, decode — is
	// charged to cpu (which may be nil).
	DecodeVector(start, end int64, v *scan.Vector, cpu *sim.CPUStats) error
}

// KeyVecProber is implemented by readers (DCSL) that can decide map-key
// existence for a whole record range from window dictionaries and skip
// pointers, without decoding a single map. ProbeKeys clears sel's bit i
// (relative to start: record start+i) for every selected record whose map
// lacks key, advancing the cursor to end. The dictionary is consulted once
// per window and the group Bloom filter once per group — a window- or
// group-level "absent" verdict clears its whole extent and jumps the
// cursor with skip pointers. answered is false (with sel and the cursor
// untouched) when the file cannot probe (non-DCSL layouts).
type KeyVecProber interface {
	ProbeKeys(key string, start, end int64, sel *scan.Selection, cpu *sim.CPUStats) (answered bool, err error)
}

// VecKindOf maps a column schema to its vector representation.
func VecKindOf(schema *serde.Schema) scan.VecKind {
	switch schema.Kind {
	case serde.KindBool:
		return scan.VecBool
	case serde.KindInt:
		return scan.VecInt32
	case serde.KindLong, serde.KindTime:
		return scan.VecInt64
	case serde.KindDouble:
		return scan.VecFloat64
	case serde.KindString:
		return scan.VecString
	case serde.KindBytes:
		return scan.VecBytes
	default:
		return scan.VecAny
	}
}

// vecAppendOne decodes one primitive value from buf into v, returning the
// encoded bytes consumed. It mirrors serde.Decoder.Value's wire format and
// never mutates v on error, so decodeRetry can re-invoke it on a grown
// window.
func vecAppendOne(buf []byte, schema *serde.Schema, v *scan.Vector) (int, error) {
	switch schema.Kind {
	case serde.KindBool:
		if len(buf) < 1 {
			return 0, fmt.Errorf("colfile: vector decode bool: short buffer")
		}
		x := int64(0)
		if buf[0] != 0 {
			x = 1
		}
		v.AppendInt(x)
		return 1, nil
	case serde.KindInt:
		x, n := binary.Varint(buf)
		if n <= 0 {
			return 0, fmt.Errorf("colfile: vector decode int: short buffer")
		}
		if x > math.MaxInt32 || x < math.MinInt32 {
			return 0, fmt.Errorf("colfile: vector decode int: value %d overflows int32", x)
		}
		v.AppendInt(x)
		return n, nil
	case serde.KindLong, serde.KindTime:
		x, n := binary.Varint(buf)
		if n <= 0 {
			return 0, fmt.Errorf("colfile: vector decode long: short buffer")
		}
		v.AppendInt(x)
		return n, nil
	case serde.KindDouble:
		if len(buf) < 8 {
			return 0, fmt.Errorf("colfile: vector decode double: short buffer")
		}
		v.AppendFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf)))
		return 8, nil
	case serde.KindString, serde.KindBytes:
		l, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, fmt.Errorf("colfile: vector decode length: short buffer")
		}
		if uint64(len(buf)-n) < l {
			return 0, fmt.Errorf("colfile: vector decode payload: short buffer")
		}
		v.AppendBytes(buf[n : n+int(l)])
		return n + int(l), nil
	}
	return 0, fmt.Errorf("colfile: vector decode: unsupported kind %v", schema.Kind)
}

// chargeVec credits one vectorized value of n encoded bytes.
func chargeVec(cpu *sim.CPUStats, n int) {
	if cpu != nil {
		cpu.VecBytes += int64(n)
		cpu.VecValues++
	}
}

// DecodeVector implements VectorDecoder.
func (p *plainReader) DecodeVector(start, end int64, v *scan.Vector, cpu *sim.CPUStats) error {
	if start < p.rec {
		return fmt.Errorf("colfile: vector decode from %d behind cursor %d", start, p.rec)
	}
	if end > p.total {
		return fmt.Errorf("colfile: vector decode to %d past end %d", end, p.total)
	}
	saved := p.stats
	p.stats = cpu
	defer func() { p.stats = saved }()
	if err := p.SkipTo(start); err != nil {
		return err
	}
	boxed := VecKindOf(p.schema) == scan.VecAny
	for p.rec < end {
		if boxed {
			val, err := decodeValue(p.s, p.schema, p.stats)
			if err != nil {
				return err
			}
			v.AppendAny(val)
		} else {
			err := p.s.decodeRetry(func(buf []byte) (int, error) {
				n, err := vecAppendOne(buf, p.schema, v)
				if err != nil {
					return 0, err
				}
				chargeVec(p.stats, n)
				return n, nil
			})
			if err != nil {
				return err
			}
		}
		p.rec++
	}
	return nil
}

// DecodeVector implements VectorDecoder. Frames wholly behind start stay
// compressed (the scalar SkipTo's lazy decompression); touched frames
// decode in place from the decompressed buffer.
func (b *blockReader) DecodeVector(start, end int64, v *scan.Vector, cpu *sim.CPUStats) error {
	if start < b.rec {
		return fmt.Errorf("colfile: vector decode from %d behind cursor %d", start, b.rec)
	}
	if end > b.total {
		return fmt.Errorf("colfile: vector decode to %d past end %d", end, b.total)
	}
	saved := b.stats
	b.stats = cpu
	defer func() { b.stats = saved }()
	if err := b.SkipTo(start); err != nil {
		return err
	}
	boxed := VecKindOf(b.schema) == scan.VecAny
	for b.rec < end {
		if b.frameLeft == 0 {
			if err := b.loadFrame(); err != nil {
				return err
			}
		}
		if boxed {
			var local sim.CPUStats
			d := serde.NewDecoder(b.frame[b.framePos:], &local)
			val, err := d.Value(b.schema)
			if err != nil {
				return err
			}
			if b.stats != nil {
				b.stats.Add(local)
			}
			v.AppendAny(val)
			b.framePos += d.Pos()
		} else {
			n, err := vecAppendOne(b.frame[b.framePos:], b.schema, v)
			if err != nil {
				return err
			}
			chargeVec(b.stats, n)
			b.framePos += n
		}
		b.frameLeft--
		b.rec++
	}
	return nil
}

// DecodeVector implements VectorDecoder. DCSL map values decode through the
// window dictionary exactly like the scalar path (boxed maps at the
// dictionary rate); primitive skip-list values land in typed storage.
func (r *slReader) DecodeVector(start, end int64, v *scan.Vector, cpu *sim.CPUStats) error {
	if start < r.rec {
		return fmt.Errorf("colfile: vector decode from %d behind cursor %d", start, r.rec)
	}
	if end > r.total {
		return fmt.Errorf("colfile: vector decode to %d past end %d", end, r.total)
	}
	saved := r.stats
	r.stats = cpu
	defer func() { r.stats = saved }()
	if err := r.SkipTo(start); err != nil {
		return err
	}
	boxed := VecKindOf(r.schema) == scan.VecAny
	for r.rec < end {
		if err := r.align(); err != nil {
			return err
		}
		n64, err := r.s.readUvarint()
		if err != nil {
			return fmt.Errorf("colfile: value length: %w", err)
		}
		buf, err := r.s.readFull(int(n64))
		if err != nil {
			return fmt.Errorf("colfile: value body: %w", err)
		}
		switch {
		case r.dcsl && r.schema.Kind == serde.KindMap:
			if r.dict == nil {
				return fmt.Errorf("colfile: DCSL value before dictionary")
			}
			d := serde.NewDecoder(buf, nil)
			m, err := parseDictMap(d, r.schema, r.dict)
			if err != nil {
				return err
			}
			if r.stats != nil {
				compress.ChargeDecomp(r.stats, "dict", int64(d.Pos()))
				r.stats.ValuesMaterialized += int64(len(m) + 1)
			}
			v.AppendAny(m)
		case r.dcsl:
			// Dictionary-encoded string/bytes: expand the id through the
			// window dictionary. The expansion is what the dictionary-id
			// path (DecodeIDVector) avoids — here the full string lands in
			// the vector arena and is charged at the vector rate.
			if r.dict == nil {
				return fmt.Errorf("colfile: DCSL value before dictionary")
			}
			if len(buf) == 0 {
				v.AppendNull()
			} else {
				id, n := binary.Uvarint(buf)
				if n <= 0 || n != len(buf) {
					return fmt.Errorf("colfile: malformed dictionary id")
				}
				s, err := r.dict.Lookup(uint32(id))
				if err != nil {
					return err
				}
				v.AppendString(s)
				if r.stats != nil {
					compress.ChargeDecomp(r.stats, "dict", int64(len(buf)))
				}
				chargeVec(r.stats, len(s))
			}
		case boxed:
			var local sim.CPUStats
			d := serde.NewDecoder(buf, &local)
			val, err := d.Value(r.schema)
			if err != nil {
				return err
			}
			if r.stats != nil {
				r.stats.Add(local)
			}
			v.AppendAny(val)
		default:
			n, err := vecAppendOne(buf, r.schema, v)
			if err != nil {
				return err
			}
			if n != len(buf) {
				return fmt.Errorf("colfile: vector decode: value used %d of %d bytes", n, len(buf))
			}
			chargeVec(r.stats, n)
		}
		r.rec++
		r.aligned = false
	}
	return nil
}

// IDVectorDecoder is implemented by readers (DCSL string/bytes) that can
// decode a record range as dictionary ids instead of values: the ids are a
// fraction of the string bytes, and equality predicates compare ids
// directly (scan.IDVector). answered is false (with iv and the cursor
// untouched) when the column's storage is not dictionary-encoded scalars —
// other layouts, or DCSL map columns whose values are id *sets*.
type IDVectorDecoder interface {
	DecodeIDVector(start, end int64, iv *scan.IDVector, cpu *sim.CPUStats) (answered bool, err error)
}

// DecodeIDVector implements IDVectorDecoder for DCSL string/bytes columns.
// Each window contributes one IDSegment carrying its dictionary, so the
// evaluator resolves a needle once per window. Only the id bytes are
// charged — no dictionary expansion happens.
func (r *slReader) DecodeIDVector(start, end int64, iv *scan.IDVector, cpu *sim.CPUStats) (bool, error) {
	if !r.dcsl || r.schema.Kind == serde.KindMap {
		return false, nil
	}
	if start < r.rec {
		return false, fmt.Errorf("colfile: id decode from %d behind cursor %d", start, r.rec)
	}
	if end > r.total {
		return false, fmt.Errorf("colfile: id decode to %d past end %d", end, r.total)
	}
	saved := r.stats
	r.stats = cpu
	defer func() { r.stats = saved }()
	if err := r.SkipTo(start); err != nil {
		return false, err
	}
	var (
		segDict  *compress.Dictionary
		segStart = iv.Len()
		curWin   = int64(-1)
	)
	for r.rec < end {
		if err := r.align(); err != nil {
			return false, err
		}
		if r.dict == nil {
			return false, fmt.Errorf("colfile: DCSL value before dictionary")
		}
		win := r.rec - r.rec%r.maxLevel()
		if win != curWin {
			if curWin != -1 {
				iv.CloseSegment(segStart, segDict)
				segStart = iv.Len()
			}
			curWin = win
			segDict = r.dict
		}
		n64, err := r.s.readUvarint()
		if err != nil {
			return false, fmt.Errorf("colfile: value length: %w", err)
		}
		buf, err := r.s.readFull(int(n64))
		if err != nil {
			return false, fmt.Errorf("colfile: value body: %w", err)
		}
		if len(buf) == 0 {
			iv.AppendNull()
		} else {
			id, n := binary.Uvarint(buf)
			if n <= 0 || n != len(buf) {
				return false, fmt.Errorf("colfile: malformed dictionary id")
			}
			iv.AppendID(uint32(id))
			chargeVec(r.stats, len(buf))
		}
		r.rec++
		r.aligned = false
	}
	iv.CloseSegment(segStart, segDict)
	return true, nil
}

// ProbeKeys implements KeyVecProber for DCSL files.
func (r *slReader) ProbeKeys(key string, start, end int64, sel *scan.Selection, cpu *sim.CPUStats) (bool, error) {
	if !r.dcsl {
		return false, nil
	}
	if start < r.rec {
		return false, fmt.Errorf("colfile: key probe from %d behind cursor %d", start, r.rec)
	}
	if end > r.total {
		return false, fmt.Errorf("colfile: key probe to %d past end %d", end, r.total)
	}
	saved := r.stats
	r.stats = cpu
	defer func() { r.stats = saved }()
	if err := r.SkipTo(start); err != nil {
		return false, err
	}
	var (
		id       uint32
		inWindow bool
		curWin   = int64(-1)
	)
	for r.rec < end {
		// Group tier: one Bloom probe refutes the key for the whole group
		// from already-loaded (uncharged) metadata; the skip pointers jump
		// the cursor past it.
		if !r.noBloom {
			if st, gEnd := r.GroupStats(r.rec); st != nil && st.Bloom != nil && !st.Bloom.MayContainString(key) {
				to := gEnd
				if to > end {
					to = end
				}
				for i := r.rec; i < to; i++ {
					sel.Clear(int(i - start))
				}
				if err := r.SkipTo(to); err != nil {
					return false, err
				}
				continue
			}
		}
		if err := r.align(); err != nil {
			return false, err
		}
		if r.dict == nil {
			return false, fmt.Errorf("colfile: DCSL probe before dictionary")
		}
		win := r.rec - r.rec%r.maxLevel()
		if win != curWin {
			// Window tier: the dictionary is the union of every key in the
			// window, so one lookup decides the id for the whole window —
			// or refutes all of it.
			id, inWindow = r.dict.ID(key)
			curWin = win
		}
		if !inWindow {
			to := win + r.maxLevel()
			if to > end {
				to = end
			}
			for i := r.rec; i < to; i++ {
				sel.Clear(int(i - start))
			}
			if err := r.SkipTo(to); err != nil {
				return false, err
			}
			continue
		}
		if sel.Test(int(r.rec - start)) {
			// Record tier: walk the record's (id, value) pairs comparing
			// ids, building no objects (cf. HasKey).
			n, w, err := r.s.peekUvarint()
			if err != nil {
				return false, fmt.Errorf("colfile: probe length: %w", err)
			}
			buf, err := r.s.peekAt(w, int(n))
			if err != nil {
				return false, fmt.Errorf("colfile: probe body: %w", err)
			}
			d := serde.NewDecoder(buf, nil)
			count, err := readCount(d)
			if err != nil {
				return false, err
			}
			has := false
			for i := 0; i < count; i++ {
				got, err := readCount(d)
				if err != nil {
					return false, err
				}
				if uint32(got) == id {
					has = true
					break
				}
				if err := d.Skip(r.schema.Elem); err != nil {
					return false, err
				}
			}
			if r.stats != nil {
				r.stats.RawBytes += int64(d.Pos())
			}
			if !has {
				sel.Clear(int(r.rec - start))
			}
		}
		if err := r.walkOne(); err != nil {
			return false, err
		}
	}
	return true, nil
}
