package colfile

import (
	"math/rand"
	"testing"

	"colmr/internal/scan"
	"colmr/internal/serde"
)

// Batch decode equivalence: DecodeVector over arbitrary sub-ranges must box
// to exactly the values the scalar Value loop produces, for every layout and
// every primitive (and boxed) schema — with the cursor advanced to the range
// end, interleaving correctly with scalar reads between ranges.

func vecDecodeSchemas() map[string]struct {
	schema *serde.Schema
	gen    func(rng *rand.Rand, i int) any
} {
	return map[string]struct {
		schema *serde.Schema
		gen    func(rng *rand.Rand, i int) any
	}{
		"bool":   {serde.Bool(), func(rng *rand.Rand, i int) any { return rng.Intn(2) == 0 }},
		"int":    {serde.Int(), func(rng *rand.Rand, i int) any { return int32(rng.Intn(1000)) }},
		"long":   {serde.Long(), func(rng *rand.Rand, i int) any { return int64(i) * 37 }},
		"double": {serde.Double(), func(rng *rand.Rand, i int) any { return float64(rng.Intn(100)) / 8 }},
		"string": {serde.String(), func(rng *rand.Rand, i int) any { return "v" + string(rune('a'+rng.Intn(26))) }},
		"bytes":  {serde.Bytes(), func(rng *rand.Rand, i int) any { return []byte{byte(i), byte(rng.Intn(256))} }},
		"map": {serde.MapOf(serde.Int()), func(rng *rand.Rand, i int) any {
			if rng.Intn(5) == 0 {
				return map[string]any{}
			}
			return map[string]any{"k": int32(i)}
		}},
	}
}

func TestVectorDecodeEquivalence(t *testing.T) {
	const n = 437
	rng := rand.New(rand.NewSource(42))
	for name, tc := range vecDecodeSchemas() {
		for _, opts := range allLayouts() {
			if opts.Layout == DCSL && tc.schema.Kind != serde.KindMap {
				continue
			}
			lname := name + "/" + opts.Layout.String() + "/" + opts.Codec
			f, vals := writeColumn(t, tc.schema, opts, n, func(i int) any { return tc.gen(rng, i) })

			r, err := NewReader(f.reader(), tc.schema, nil)
			if err != nil {
				t.Fatalf("%s: %v", lname, err)
			}
			dec, ok := r.(VectorDecoder)
			if !ok {
				t.Fatalf("%s: reader %T does not batch-decode", lname, r)
			}
			kind := VecKindOf(tc.schema)

			// Walk the file as interleaved scalar reads and batch decodes of
			// random widths, comparing boxed values throughout.
			pos := int64(0)
			for pos < n {
				if rng.Intn(3) == 0 {
					if err := r.SkipTo(pos); err != nil {
						t.Fatalf("%s: skip to %d: %v", lname, pos, err)
					}
					v, err := r.Value()
					if err != nil {
						t.Fatalf("%s: scalar value %d: %v", lname, pos, err)
					}
					if !serde.ValuesEqual(tc.schema, v, vals[pos]) {
						t.Fatalf("%s: scalar record %d: %v vs %v", lname, pos, v, vals[pos])
					}
					pos++
					continue
				}
				end := pos + 1 + int64(rng.Intn(120))
				if end > n {
					end = n
				}
				vec := scan.NewVector(kind, int(end-pos))
				if err := dec.DecodeVector(pos, end, vec, nil); err != nil {
					t.Fatalf("%s: decode [%d,%d): %v", lname, pos, end, err)
				}
				if vec.Len() != int(end-pos) {
					t.Fatalf("%s: decode [%d,%d) produced %d rows", lname, pos, end, vec.Len())
				}
				for i := 0; i < vec.Len(); i++ {
					if !serde.ValuesEqual(tc.schema, vec.Value(i), vals[pos+int64(i)]) {
						t.Fatalf("%s: batch record %d: %v vs %v", lname, pos+int64(i), vec.Value(i), vals[pos+int64(i)])
					}
				}
				pos = end
			}

			// Decoding behind the cursor must fail loudly, not rewind.
			vec := scan.NewVector(kind, 1)
			if err := dec.DecodeVector(0, 1, vec, nil); err == nil {
				t.Fatalf("%s: decode behind cursor succeeded", lname)
			}
		}
	}
}

func TestVectorKeyProbeEquivalence(t *testing.T) {
	const n = 437
	rng := rand.New(rand.NewSource(7))
	schema := mapSchema()
	keys := []string{"content-type", "server", "etag", "absent"}
	gen := func(i int) any {
		m := map[string]any{}
		for _, k := range keys[:rng.Intn(4)] {
			m[k] = int32(i)
		}
		return m
	}
	f, vals := writeColumn(t, schema, Options{Layout: DCSL, Levels: []int{100, 10}, StatsEvery: 20}, n, gen)

	for _, key := range keys {
		r, err := NewReader(f.reader(), schema, nil)
		if err != nil {
			t.Fatal(err)
		}
		kp, ok := r.(KeyVecProber)
		if !ok {
			t.Fatalf("DCSL reader %T does not probe", r)
		}
		pos := int64(0)
		for pos < n {
			end := pos + 1 + int64(rng.Intn(150))
			if end > n {
				end = n
			}
			// A random candidate subset, as AND chains hand the prober; the
			// probe narrows it in place.
			in := scan.NewEmptySelection(int(end - pos))
			for i := 0; i < in.Len(); i++ {
				if rng.Intn(3) > 0 {
					in.Set(i)
				}
			}
			res := in.Clone()
			answered, err := kp.ProbeKeys(key, pos, end, res, nil)
			if err != nil {
				t.Fatalf("key %q probe [%d,%d): %v", key, pos, end, err)
			}
			if !answered {
				t.Fatalf("key %q probe [%d,%d): unanswered on DCSL", key, pos, end)
			}
			for i := 0; i < in.Len(); i++ {
				_, has := vals[pos+int64(i)].(map[string]any)[key]
				want := in.Test(i) && has
				if res.Test(i) != want {
					t.Fatalf("key %q record %d: probe %v, want %v", key, pos+int64(i), res.Test(i), want)
				}
			}
			pos = end
		}
	}

	// A non-DCSL reader must decline, not guess.
	f2, _ := writeColumn(t, schema, Options{Layout: SkipList, Levels: []int{100, 10}}, 10, genMap)
	r2, err := NewReader(f2.reader(), schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if kp2, ok := r2.(KeyVecProber); ok {
		if answered, err := kp2.ProbeKeys("server", 0, 10, scan.NewSelection(10), nil); err != nil {
			t.Fatal(err)
		} else if answered {
			t.Fatal("skip-list reader answered a key probe")
		}
	}
}
