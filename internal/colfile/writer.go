package colfile

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"colmr/internal/compress"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// NewWriter creates a column file writer for one column of the given value
// schema. Serialization work is charged to stats as raw byte movement;
// compression work is charged per codec.
func NewWriter(w io.Writer, schema *serde.Schema, opts Options, stats *sim.CPUStats) (Writer, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if opts.Layout == DCSL && schema.Kind != serde.KindMap &&
		schema.Kind != serde.KindString && schema.Kind != serde.KindBytes {
		return nil, fmt.Errorf("colfile: DCSL layout requires a map, string, or bytes column, got %s", schema.Kind)
	}
	h := header{layout: opts.Layout, levels: opts.Levels, codec: opts.Codec}
	if opts.Layout == Plain || opts.Layout == SkipList || opts.Layout == DCSL {
		h.codec = "none"
	}
	if opts.Layout == Plain || opts.Layout == Block {
		h.levels = nil
	}
	if _, err := w.Write(appendHeader(nil, h)); err != nil {
		return nil, err
	}
	switch opts.Layout {
	case Plain:
		return &plainWriter{w: w, schema: schema, stats: stats,
			zm: newStatsWriter(schema, opts.StatsEvery, opts.NoBloom)}, nil
	case Block:
		codec, err := compress.ByName(opts.Codec)
		if err != nil {
			return nil, err
		}
		// Block groups follow frame boundaries, so the collector is cut
		// externally on flush rather than on a record cadence.
		every := 0
		if opts.StatsEvery < 0 {
			every = -1
		}
		return &blockWriter{w: w, schema: schema, stats: stats, codec: codec, blockBytes: opts.BlockBytes,
			zm: newStatsWriter(schema, every, opts.NoBloom)}, nil
	case SkipList, DCSL:
		return &slWriter{
			w:      w,
			schema: schema,
			stats:  stats,
			levels: opts.Levels,
			dcsl:   opts.Layout == DCSL,
			zm:     newStatsWriter(schema, opts.StatsEvery, opts.NoBloom),
		}, nil
	}
	return nil, fmt.Errorf("colfile: unsupported layout %v", opts.Layout)
}

// closeWith finalizes a writer: it emits the zone-map stats section
// (per-group entries plus the whole-file aggregate) followed by the footer
// recording the record count and stats length.
func closeWith(w io.Writer, zm *statsWriter, count int64) error {
	blob, err := zm.finish()
	if err != nil {
		return err
	}
	if len(blob) > 0 {
		if _, err := w.Write(blob); err != nil {
			return err
		}
	}
	_, err = w.Write(appendFooter(nil, count, len(blob)))
	return err
}

// chargeEncode prices serialization on the load path as raw byte movement.
func chargeEncode(stats *sim.CPUStats, n int) {
	if stats != nil {
		stats.RawBytes += int64(n)
	}
}

// plainWriter appends concatenated self-delimiting values.
type plainWriter struct {
	w       io.Writer
	schema  *serde.Schema
	stats   *sim.CPUStats
	zm      *statsWriter
	count   int64
	scratch []byte
}

func (p *plainWriter) Append(v any) error {
	buf, err := serde.AppendValue(p.scratch[:0], p.schema, v)
	if err != nil {
		return err
	}
	p.scratch = buf
	chargeEncode(p.stats, len(buf))
	if _, err := p.w.Write(buf); err != nil {
		return err
	}
	p.zm.observe(v)
	p.count++
	return nil
}

func (p *plainWriter) Count() int64 { return p.count }

func (p *plainWriter) Close() error {
	return closeWith(p.w, p.zm, p.count)
}

// blockWriter accumulates encoded values and emits compressed frames.
type blockWriter struct {
	w          io.Writer
	schema     *serde.Schema
	stats      *sim.CPUStats
	zm         *statsWriter
	codec      compress.Codec
	blockBytes int

	raw     []byte
	records int
	count   int64
}

func (b *blockWriter) Append(v any) error {
	buf, err := serde.AppendValue(b.raw, b.schema, v)
	if err != nil {
		return err
	}
	chargeEncode(b.stats, len(buf)-len(b.raw))
	b.raw = buf
	b.zm.observe(v)
	b.records++
	b.count++
	if len(b.raw) >= b.blockBytes {
		return b.flush()
	}
	return nil
}

func (b *blockWriter) flush() error {
	if b.records == 0 {
		return nil
	}
	frame, err := compress.AppendFrame(nil, b.codec, b.records, b.raw, b.stats)
	if err != nil {
		return err
	}
	if _, err := b.w.Write(frame); err != nil {
		return err
	}
	// One stats group per frame: pruning a group skips exactly one
	// decompression.
	b.zm.cut()
	b.raw = b.raw[:0]
	b.records = 0
	return nil
}

func (b *blockWriter) Count() int64 { return b.count }

func (b *blockWriter) Close() error {
	if err := b.flush(); err != nil {
		return err
	}
	return closeWith(b.w, b.zm, b.count)
}

// slWriter builds skip-list (and dictionary compressed skip-list) files.
// HDFS is append-only, so skip pointers cannot be patched in after the
// fact: the writer double-buffers one largest-level window of values,
// computes every pointer's span, and only then emits bytes — the same
// double-buffering the paper describes in Appendix B.3, with the largest
// skip bounded by memory.
type slWriter struct {
	w      io.Writer
	schema *serde.Schema
	stats  *sim.CPUStats
	zm     *statsWriter
	levels []int
	dcsl   bool

	// window holds the encoded (SkipList) or still-boxed (DCSL) values of
	// the current largest-level window.
	encoded [][]byte
	boxed   []any
	count   int64
}

func (s *slWriter) maxLevel() int { return s.levels[0] }
func (s *slWriter) minLevel() int { return s.levels[len(s.levels)-1] }

func (s *slWriter) Append(v any) error {
	if s.dcsl {
		switch s.schema.Kind {
		case serde.KindMap:
			if _, ok := v.(map[string]any); !ok {
				return fmt.Errorf("colfile: DCSL append: value %T is not a map", v)
			}
		case serde.KindString:
			if _, ok := v.(string); !ok && v != nil {
				return fmt.Errorf("colfile: DCSL append: value %T is not a string", v)
			}
		default: // serde.KindBytes
			if _, ok := v.([]byte); !ok && v != nil {
				return fmt.Errorf("colfile: DCSL append: value %T is not bytes", v)
			}
		}
		s.boxed = append(s.boxed, v)
	} else {
		buf, err := serde.AppendValue(nil, s.schema, v)
		if err != nil {
			return err
		}
		chargeEncode(s.stats, len(buf))
		s.encoded = append(s.encoded, prefixed(buf))
	}
	s.zm.observe(v)
	s.count++
	if s.windowLen() == s.maxLevel() {
		return s.flush()
	}
	return nil
}

// prefixed length-prefixes one encoded value. Skip-list files carry
// per-value lengths so that skipping a single record costs a length read
// and a seek instead of a full decode — the property that lets CIF-SL's
// map time collapse to near-pure I/O in Table 1.
func prefixed(enc []byte) []byte {
	out := binary.AppendUvarint(make([]byte, 0, len(enc)+3), uint64(len(enc)))
	return append(out, enc...)
}

func (s *slWriter) windowLen() int {
	if s.dcsl {
		return len(s.boxed)
	}
	return len(s.encoded)
}

func (s *slWriter) Count() int64 { return s.count }

func (s *slWriter) Close() error {
	if err := s.flush(); err != nil {
		return err
	}
	return closeWith(s.w, s.zm, s.count)
}

// flush emits the buffered window: skip groups, the window dictionary
// (DCSL), and values.
func (s *slWriter) flush() error {
	w := s.windowLen()
	if w == 0 {
		return nil
	}
	windowBase := s.count - int64(w)

	// DCSL: build the window dictionary and re-encode values with
	// dictionary-compressed keys (map columns) or as bare dictionary ids
	// (string/bytes columns; nulls encode as an empty value blob, which no
	// non-null value produces since an id is at least one byte).
	var dictBlob []byte
	enc := s.encoded
	if s.dcsl {
		dict := compress.NewDictionary()
		if s.schema.Kind == serde.KindMap {
			for _, v := range s.boxed {
				for _, k := range mapKeysSorted(v.(map[string]any)) {
					dict.Add(k)
				}
			}
		} else {
			// Sorted insertion keeps the id assignment — and so the file
			// bytes — deterministic for identical data.
			for _, v := range stringsSorted(s.boxed) {
				dict.Add(v)
			}
		}
		enc = make([][]byte, w)
		var rawTotal int64
		for i, v := range s.boxed {
			var b []byte
			var err error
			if s.schema.Kind == serde.KindMap {
				if b, err = appendDictMap(nil, dict, s.schema, v.(map[string]any)); err != nil {
					return err
				}
			} else if b, err = appendDictValue(nil, dict, v); err != nil {
				return err
			}
			enc[i] = prefixed(b)
			rawTotal += int64(len(b))
			chargeEncode(s.stats, len(b))
		}
		compress.ChargeComp(s.stats, "dict", rawTotal)
		body := dict.Append(nil)
		dictBlob = binary.AppendUvarint(nil, uint64(len(body)))
		dictBlob = append(dictBlob, body...)
	}

	// Entity geometry: entityStart[i] is the window-relative offset of
	// record i's entity (group, then dictionary, then value);
	// entityStart[w] is the window's total size, where the next window's
	// first group begins. Skip spans are measured from valueBase — after
	// the group AND the window dictionary — because a DCSL reader always
	// loads the dictionary before following a pointer (the dictionary is
	// the only part of a block that must be read to enter it).
	entityStart := make([]int64, w+1)
	valueBase := make([]int64, w)
	cur := int64(0)
	for i := 0; i < w; i++ {
		rec := windowBase + int64(i)
		entityStart[i] = cur
		if rec%int64(s.minLevel()) == 0 {
			cur += int64(groupPtrSize * levelsAt(s.levels, rec))
		}
		if s.dcsl && rec%int64(s.maxLevel()) == 0 {
			cur += int64(len(dictBlob))
		}
		valueBase[i] = cur
		cur += int64(len(enc[i]))
	}
	entityStart[w] = cur

	// Double-buffering cost: the window's bytes are staged once more
	// before hitting the writer.
	chargeEncode(s.stats, int(cur))

	out := make([]byte, 0, cur)
	for i := 0; i < w; i++ {
		rec := windowBase + int64(i)
		if rec%int64(s.minLevel()) == 0 {
			for _, l := range s.levels {
				if rec%int64(l) != 0 {
					continue
				}
				end := i + l
				if end > w {
					end = w
				}
				span := entityStart[end] - valueBase[i]
				if span < 0 || span > 0xFFFFFFFF {
					return fmt.Errorf("colfile: skip span %d out of range at record %d level %d", span, rec, l)
				}
				out = binary.LittleEndian.AppendUint32(out, uint32(span))
			}
		}
		if s.dcsl && rec%int64(s.maxLevel()) == 0 {
			out = append(out, dictBlob...)
		}
		out = append(out, enc[i]...)
	}
	if int64(len(out)) != cur {
		return fmt.Errorf("colfile: window geometry mismatch: wrote %d, computed %d", len(out), cur)
	}
	if _, err := s.w.Write(out); err != nil {
		return err
	}
	s.encoded = s.encoded[:0]
	s.boxed = s.boxed[:0]
	return nil
}

// appendDictMap encodes a map value with dictionary-compressed keys:
// uvarint count, then (uvarint keyID, encoded element) pairs in sorted key
// order.
func appendDictMap(dst []byte, dict *compress.Dictionary, schema *serde.Schema, m map[string]any) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(m)))
	var err error
	for _, k := range mapKeysSorted(m) {
		id, ok := dict.ID(k)
		if !ok {
			return dst, fmt.Errorf("colfile: dict missing key %q", k)
		}
		dst = binary.AppendUvarint(dst, uint64(id))
		dst, err = serde.AppendValue(dst, schema.Elem, m[k])
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// appendDictValue encodes one string/bytes value as its dictionary id
// (uvarint). Null values encode as nothing: the record's length prefix is
// zero, a spelling no non-null value shares.
func appendDictValue(dst []byte, dict *compress.Dictionary, v any) ([]byte, error) {
	s, ok := dictNeedle(v)
	if !ok {
		return dst, nil // null
	}
	id, present := dict.ID(s)
	if !present {
		return dst, fmt.Errorf("colfile: dict missing value %q", s)
	}
	return binary.AppendUvarint(dst, uint64(id)), nil
}

// dictNeedle views a string/bytes value as a dictionary string; ok is
// false for null.
func dictNeedle(v any) (string, bool) {
	switch x := v.(type) {
	case string:
		return x, true
	case []byte:
		return string(x), true
	}
	return "", false
}

// stringsSorted returns the window's distinct non-null values in sorted
// order for deterministic dictionary construction.
func stringsSorted(vals []any) []string {
	seen := make(map[string]struct{}, len(vals))
	out := make([]string, 0, len(vals))
	for _, v := range vals {
		if s, ok := dictNeedle(v); ok {
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				out = append(out, s)
			}
		}
	}
	sort.Strings(out)
	return out
}

func mapKeysSorted(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: key universes are small by construction.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
