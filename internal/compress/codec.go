// Package compress provides the block-compression codecs and the dictionary
// encoder used by the paper's two complex-type compression schemes
// (Section 5.3): compressed blocks (LZO / ZLIB) and dictionary compressed
// skip lists.
//
// ZLIB is the standard library's DEFLATE. "LZO" is an in-repo LZ77 byte
// codec with the same operating profile the paper relies on — moderate
// compression ratio, very fast decompression — because the real LZO library
// is a GPL C dependency (see DESIGN.md, substitutions).
package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"colmr/internal/sim"
)

// Codec compresses and decompresses byte blocks.
type Codec interface {
	// Name is the codec's registry name ("none", "lzo", "zlib").
	Name() string
	// Compress appends the compressed form of src to dst.
	Compress(dst, src []byte) ([]byte, error)
	// Decompress appends the decompressed form of src to dst. rawLen is
	// the expected decompressed size (stored in block headers) and is used
	// for allocation and validation.
	Decompress(dst, src []byte, rawLen int) ([]byte, error)
}

// ByName returns the named codec.
func ByName(name string) (Codec, error) {
	switch name {
	case "", "none":
		return None{}, nil
	case "lzo":
		return LZO{}, nil
	case "zlib":
		return ZLIB{}, nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
}

// ChargeDecomp records n decompressed output bytes against the counter for
// the named codec.
func ChargeDecomp(stats *sim.CPUStats, codec string, n int64) {
	if stats == nil {
		return
	}
	switch codec {
	case "zlib":
		stats.ZlibBytes += n
	case "lzo":
		stats.LzoBytes += n
	case "dict":
		stats.DictBytes += n
	}
}

// ChargeComp records n compressed input bytes against the counter for the
// named codec (load paths).
func ChargeComp(stats *sim.CPUStats, codec string, n int64) {
	if stats == nil {
		return
	}
	switch codec {
	case "zlib":
		stats.ZlibCompBytes += n
	case "lzo":
		stats.LzoCompBytes += n
	case "dict":
		stats.DictCompBytes += n
	}
}

// None is the identity codec.
type None struct{}

// Name implements Codec.
func (None) Name() string { return "none" }

// Compress implements Codec.
func (None) Compress(dst, src []byte) ([]byte, error) { return append(dst, src...), nil }

// Decompress implements Codec.
func (None) Decompress(dst, src []byte, rawLen int) ([]byte, error) {
	if rawLen != len(src) {
		return dst, fmt.Errorf("compress: none: raw length %d != stored %d", rawLen, len(src))
	}
	return append(dst, src...), nil
}

// ZLIB is DEFLATE compression: excellent ratio, CPU-heavy decompression —
// the paper's heavyweight reference codec.
type ZLIB struct{}

// Name implements Codec.
func (ZLIB) Name() string { return "zlib" }

// Compress implements Codec.
func (ZLIB) Compress(dst, src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return dst, fmt.Errorf("compress: zlib: %w", err)
	}
	if _, err := w.Write(src); err != nil {
		return dst, fmt.Errorf("compress: zlib: %w", err)
	}
	if err := w.Close(); err != nil {
		return dst, fmt.Errorf("compress: zlib: %w", err)
	}
	return append(dst, buf.Bytes()...), nil
}

// Decompress implements Codec.
func (ZLIB) Decompress(dst, src []byte, rawLen int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out := make([]byte, 0, rawLen)
	buf := make([]byte, 32*1024)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return dst, fmt.Errorf("compress: zlib: %w", err)
		}
	}
	if len(out) != rawLen {
		return dst, fmt.Errorf("compress: zlib: decompressed %d bytes, want %d", len(out), rawLen)
	}
	return append(dst, out...), nil
}
