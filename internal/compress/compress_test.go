package compress

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"colmr/internal/sim"
)

func codecs(t *testing.T) []Codec {
	t.Helper()
	var out []Codec
	for _, name := range []string{"none", "lzo", "zlib"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("snappy"); err == nil {
		t.Error("unknown codec should fail")
	}
	if c, err := ByName(""); err != nil || c.Name() != "none" {
		t.Errorf("empty name = %v, %v; want none", c, err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, c := range codecs(t) {
		c := c
		f := func(data []byte) bool {
			comp, err := c.Compress(nil, data)
			if err != nil {
				return false
			}
			out, err := c.Decompress(nil, comp, len(data))
			if err != nil {
				t.Logf("%s: decompress: %v", c.Name(), err)
				return false
			}
			return bytes.Equal(out, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestRoundTripCompressibleData(t *testing.T) {
	// Highly repetitive data exercises long matches and extended lengths.
	data := []byte(strings.Repeat("content-type: text/html; charset=utf-8\n", 2000))
	for _, c := range codecs(t) {
		comp, err := c.Compress(nil, data)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if c.Name() != "none" && len(comp) >= len(data)/4 {
			t.Errorf("%s: repetitive data compressed to %d/%d bytes; want < 25%%", c.Name(), len(comp), len(data))
		}
		out, err := c.Decompress(nil, comp, len(data))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(out, data) {
			t.Errorf("%s: round-trip mismatch", c.Name())
		}
	}
}

func TestRoundTripOverlappingMatches(t *testing.T) {
	// "aaaa..." forces matches that overlap their own output.
	data := bytes.Repeat([]byte{'a'}, 100_000)
	comp, err := LZO{}.Compress(nil, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) > 1000 {
		t.Errorf("run of a's compressed to %d bytes", len(comp))
	}
	out, err := LZO{}.Decompress(nil, comp, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Error("overlapping-match round trip failed")
	}
}

func TestRoundTripRandomIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 300_000)
	rng.Read(data)
	for _, c := range codecs(t) {
		comp, _ := c.Compress(nil, data)
		out, err := c.Decompress(nil, comp, len(data))
		if err != nil || !bytes.Equal(out, data) {
			t.Errorf("%s: incompressible round trip failed: %v", c.Name(), err)
		}
	}
}

func TestCompressionRatioOrdering(t *testing.T) {
	// ZLIB should compress structured text better than the LZ77 codec,
	// which should beat none — the ratio ordering the paper's Table 1
	// depends on (CIF-ZLIB reads 36 GB < CIF-LZO 54 GB < CIF 96 GB).
	var data []byte
	rng := rand.New(rand.NewSource(2))
	headers := []string{"content-type", "content-length", "last-modified", "server", "etag"}
	for i := 0; i < 5000; i++ {
		data = append(data, headers[rng.Intn(len(headers))]...)
		data = append(data, ": value"...)
		data = append(data, byte('0'+rng.Intn(10)))
		data = append(data, '\n')
	}
	sizes := map[string]int{}
	for _, c := range codecs(t) {
		comp, _ := c.Compress(nil, data)
		sizes[c.Name()] = len(comp)
	}
	if !(sizes["zlib"] < sizes["lzo"] && sizes["lzo"] < sizes["none"]) {
		t.Errorf("ratio ordering violated: %v", sizes)
	}
}

func TestDecompressCorrupt(t *testing.T) {
	data := []byte(strings.Repeat("abcdefgh", 100))
	for _, c := range codecs(t) {
		comp, _ := c.Compress(nil, data)
		// Wrong rawLen must be detected.
		if _, err := c.Decompress(nil, comp, len(data)+1); err == nil {
			t.Errorf("%s: wrong rawLen accepted", c.Name())
		}
		// Truncated input must error, not panic.
		if len(comp) > 4 {
			if _, err := c.Decompress(nil, comp[:len(comp)/2], len(data)); err == nil && c.Name() != "none" {
				t.Errorf("%s: truncated input accepted", c.Name())
			}
		}
	}
	// Garbage offsets must be rejected.
	if _, err := (LZO{}).Decompress(nil, []byte{0x0F, 0xFF, 0xFF}, 100); err == nil {
		t.Error("lzo: garbage input accepted")
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Add("content-type")
	b := d.Add("server")
	if a2 := d.Add("content-type"); a2 != a {
		t.Errorf("re-Add returned %d, want %d", a2, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if s, err := d.Lookup(b); err != nil || s != "server" {
		t.Errorf("Lookup(%d) = %q, %v", b, s, err)
	}
	if _, err := d.Lookup(99); err == nil {
		t.Error("Lookup out of range should fail")
	}
	if id, ok := d.ID("server"); !ok || id != b {
		t.Errorf("ID(server) = %d, %v", id, ok)
	}
	if _, ok := d.ID("missing"); ok {
		t.Error("ID of missing string should report false")
	}
}

func TestDictionarySerializationRoundTrip(t *testing.T) {
	d := NewDictionary()
	for _, s := range []string{"a", "bb", "", "content-type", "ccc"} {
		d.Add(s)
	}
	buf := d.Append(nil)
	buf = append(buf, 0xAA, 0xBB) // trailing bytes must be left alone
	got, n, err := ParseDictionary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf)-2 {
		t.Errorf("consumed %d bytes, want %d", n, len(buf)-2)
	}
	if got.Len() != d.Len() {
		t.Fatalf("parsed %d entries, want %d", got.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		a, _ := d.Lookup(uint32(i))
		b, _ := got.Lookup(uint32(i))
		if a != b {
			t.Errorf("entry %d: %q != %q", i, a, b)
		}
	}
}

func TestParseDictionaryCorrupt(t *testing.T) {
	for _, buf := range [][]byte{
		{},
		{5},          // count 5, no entries
		{1, 10, 'a'}, // entry shorter than declared
		{255, 255, 255, 255, 255, 255, 255, 255, 255, 2}, // absurd count
	} {
		if _, _, err := ParseDictionary(buf); err == nil {
			t.Errorf("ParseDictionary(%v) succeeded, want error", buf)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var stats sim.CPUStats
	codec := LZO{}
	var stream []byte
	payloads := [][]byte{
		[]byte(strings.Repeat("hello world ", 50)),
		[]byte("short"),
		{},
	}
	var err error
	for i, p := range payloads {
		stream, err = AppendFrame(stream, codec, i+1, p, &stats)
		if err != nil {
			t.Fatal(err)
		}
	}
	if stats.LzoCompBytes == 0 {
		t.Error("compression work not charged")
	}

	fr := NewFrameReader(bytes.NewReader(stream), codec, &stats)
	for i, p := range payloads {
		hdr, err := fr.ReadHeader()
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Records != i+1 || hdr.RawLen != len(p) {
			t.Errorf("frame %d header = %+v", i, hdr)
		}
		got, err := fr.Payload()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame %d payload mismatch", i)
		}
	}
	if _, err := fr.ReadHeader(); err != io.EOF {
		t.Errorf("end of stream = %v, want io.EOF", err)
	}
	if stats.LzoBytes == 0 {
		t.Error("decompression work not charged")
	}
}

func TestFrameSkipPayload(t *testing.T) {
	codec := None{}
	var stream []byte
	var err error
	for i := 0; i < 3; i++ {
		stream, err = AppendFrame(stream, codec, 10, bytes.Repeat([]byte{byte(i)}, 100), nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(stream), codec, nil)
	if _, err := fr.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	if err := fr.SkipPayload(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	got, err := fr.Payload()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Errorf("after skip, payload starts with %d, want 1", got[0])
	}
}

func TestFrameMisuseAndTruncation(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader(nil), None{}, nil)
	if _, err := fr.Payload(); err == nil {
		t.Error("Payload before ReadHeader should fail")
	}
	if err := fr.SkipPayload(); err == nil {
		t.Error("SkipPayload before ReadHeader should fail")
	}
	stream, _ := AppendFrame(nil, None{}, 1, []byte("0123456789"), nil)
	fr = NewFrameReader(bytes.NewReader(stream[:len(stream)-5]), None{}, nil)
	if _, err := fr.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Payload(); err == nil {
		t.Error("truncated payload should fail")
	}
	// Header truncated mid-varint.
	fr = NewFrameReader(bytes.NewReader([]byte{0x80}), None{}, nil)
	if _, err := fr.ReadHeader(); err == nil || err == io.EOF {
		t.Errorf("mid-varint truncation = %v, want non-EOF error", err)
	}
}

func TestChargeHelpers(t *testing.T) {
	var st sim.CPUStats
	ChargeDecomp(&st, "zlib", 10)
	ChargeDecomp(&st, "lzo", 20)
	ChargeDecomp(&st, "dict", 30)
	ChargeDecomp(&st, "none", 40) // identity costs nothing
	ChargeDecomp(nil, "zlib", 50) // nil sink is safe
	if st.ZlibBytes != 10 || st.LzoBytes != 20 || st.DictBytes != 30 {
		t.Errorf("decomp charges = %+v", st)
	}
	ChargeComp(&st, "zlib", 1)
	ChargeComp(&st, "lzo", 2)
	ChargeComp(&st, "dict", 3)
	if st.ZlibCompBytes != 1 || st.LzoCompBytes != 2 || st.DictCompBytes != 3 {
		t.Errorf("comp charges = %+v", st)
	}
}
