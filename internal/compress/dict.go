package compress

import (
	"encoding/binary"
	"fmt"
)

// Dictionary maps a limited universe of strings to small integer ids, the
// core of the paper's dictionary compressed skip list scheme (Section 5.3):
// map keys are drawn from a small set (HTTP header names, annotation
// labels), so replacing each key string with a varint id compresses well
// and decodes with a single slice lookup — far cheaper than LZO or ZLIB.
type Dictionary struct {
	ids     map[string]uint32
	strings []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{ids: make(map[string]uint32)}
}

// Add interns s and returns its id. Adding an existing string returns the
// existing id.
func (d *Dictionary) Add(s string) uint32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint32(len(d.strings))
	d.ids[s] = id
	d.strings = append(d.strings, s)
	return id
}

// Lookup returns the string for id.
func (d *Dictionary) Lookup(id uint32) (string, error) {
	if int(id) >= len(d.strings) {
		return "", fmt.Errorf("compress: dict: id %d out of range (%d entries)", id, len(d.strings))
	}
	return d.strings[id], nil
}

// ID returns the id for s, if present.
func (d *Dictionary) ID(s string) (uint32, bool) {
	id, ok := d.ids[s]
	return id, ok
}

// ResolveID implements scan.IDResolver: it reports the needle's id within
// this dictionary and whether the dictionary contains it, letting predicate
// evaluation run in id space without materializing strings.
func (d *Dictionary) ResolveID(needle string) (uint32, bool) {
	return d.ID(needle)
}

// Len returns the number of interned strings.
func (d *Dictionary) Len() int { return len(d.strings) }

// Append serializes the dictionary: uvarint count, then length-prefixed
// strings in id order.
func (d *Dictionary) Append(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(d.strings)))
	for _, s := range d.strings {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// ParseDictionary deserializes a dictionary from buf, returning it and the
// number of bytes consumed.
func ParseDictionary(buf []byte) (*Dictionary, int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("compress: dict: truncated count")
	}
	pos := n
	if count > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("compress: dict: count %d exceeds buffer", count)
	}
	d := NewDictionary()
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("compress: dict: truncated entry %d", i)
		}
		pos += n
		if uint64(len(buf)-pos) < l {
			return nil, 0, fmt.Errorf("compress: dict: entry %d overruns buffer", i)
		}
		d.Add(string(buf[pos : pos+int(l)]))
		pos += int(l)
	}
	return d, pos, nil
}
