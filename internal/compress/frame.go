package compress

import (
	"encoding/binary"
	"fmt"
	"io"

	"colmr/internal/sim"
)

// Framed-block format, shared by block-compressed SequenceFiles and
// CIF compressed-block columns (paper Section 5.3, "Compressed Blocks"):
//
//	uvarint recordCount
//	uvarint rawLen
//	uvarint compLen
//	compLen bytes of codec output
//
// The header carries everything needed to *skip* the block without
// decompressing it — the basis of lazy decompression: a reader that knows
// no record in the block is needed seeks past compLen bytes, eliminating
// both the decompression CPU and (at transfer-unit granularity) most of the
// disk I/O.

// FrameHeader describes one compressed block.
type FrameHeader struct {
	Records int
	RawLen  int
	CompLen int
}

// AppendFrame compresses raw with the codec and appends a complete frame to
// dst, charging compression work to stats.
func AppendFrame(dst []byte, codec Codec, records int, raw []byte, stats *sim.CPUStats) ([]byte, error) {
	comp, err := codec.Compress(nil, raw)
	if err != nil {
		return dst, err
	}
	ChargeComp(stats, codec.Name(), int64(len(raw)))
	dst = binary.AppendUvarint(dst, uint64(records))
	dst = binary.AppendUvarint(dst, uint64(len(raw)))
	dst = binary.AppendUvarint(dst, uint64(len(comp)))
	return append(dst, comp...), nil
}

// WriteFrame is AppendFrame directly to a writer.
func WriteFrame(w io.Writer, codec Codec, records int, raw []byte, stats *sim.CPUStats) (int, error) {
	buf, err := AppendFrame(nil, codec, records, raw, stats)
	if err != nil {
		return 0, err
	}
	return w.Write(buf)
}

// FrameReader iterates frames from a seekable stream (an hdfs.FileReader).
// After ReadHeader, the caller chooses Payload (decompress, charging codec
// CPU) or SkipPayload (seek past it, charging nothing but the seek).
type FrameReader struct {
	r     io.ReadSeeker
	codec Codec
	stats *sim.CPUStats

	hdr       FrameHeader
	havePayld bool
}

// NewFrameReader returns a frame reader over r using the given codec.
func NewFrameReader(r io.ReadSeeker, codec Codec, stats *sim.CPUStats) *FrameReader {
	return &FrameReader{r: r, codec: codec, stats: stats}
}

// ReadHeader reads the next frame header. It returns io.EOF cleanly at end
// of stream.
func (f *FrameReader) ReadHeader() (FrameHeader, error) {
	records, err := readUvarint(f.r)
	if err != nil {
		return FrameHeader{}, err // io.EOF at a frame boundary is clean EOF
	}
	rawLen, err := readUvarint(f.r)
	if err != nil {
		return FrameHeader{}, unexpectedEOF(err)
	}
	compLen, err := readUvarint(f.r)
	if err != nil {
		return FrameHeader{}, unexpectedEOF(err)
	}
	f.hdr = FrameHeader{Records: int(records), RawLen: int(rawLen), CompLen: int(compLen)}
	f.havePayld = true
	return f.hdr, nil
}

// Payload reads and decompresses the current frame's payload.
func (f *FrameReader) Payload() ([]byte, error) {
	if !f.havePayld {
		return nil, fmt.Errorf("compress: frame: Payload before ReadHeader")
	}
	comp := make([]byte, f.hdr.CompLen)
	if _, err := io.ReadFull(f.r, comp); err != nil {
		return nil, unexpectedEOF(err)
	}
	f.havePayld = false
	raw, err := f.codec.Decompress(nil, comp, f.hdr.RawLen)
	if err != nil {
		return nil, err
	}
	ChargeDecomp(f.stats, f.codec.Name(), int64(len(raw)))
	return raw, nil
}

// SkipPayload seeks past the current frame's payload without reading it.
func (f *FrameReader) SkipPayload() error {
	if !f.havePayld {
		return fmt.Errorf("compress: frame: SkipPayload before ReadHeader")
	}
	f.havePayld = false
	_, err := f.r.Seek(int64(f.hdr.CompLen), io.SeekCurrent)
	return err
}

func readUvarint(r io.Reader) (uint64, error) {
	var x uint64
	var s uint
	var one [1]byte
	for i := 0; ; i++ {
		if _, err := io.ReadFull(r, one[:]); err != nil {
			if i > 0 && err == io.EOF {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, err
		}
		b := one[0]
		if b < 0x80 {
			if i > 9 || i == 9 && b > 1 {
				return 0, fmt.Errorf("compress: frame: uvarint overflow")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
