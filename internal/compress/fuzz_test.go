package compress

import (
	"bytes"
	"math/rand"
	"testing"
)

// Decompressors consume on-disk bytes and must never panic or over-read.

func FuzzLZODecompress(f *testing.F) {
	good, _ := LZO{}.Compress(nil, []byte("hello hello hello hello world"))
	f.Add(good, 29)
	f.Add([]byte{}, 0)
	f.Add([]byte{0xF0, 0xFF}, 100)
	f.Fuzz(func(t *testing.T, data []byte, rawLen int) {
		if rawLen < 0 || rawLen > 1<<20 {
			return
		}
		_, _ = LZO{}.Decompress(nil, data, rawLen) // must not panic
	})
}

func FuzzLZORoundTrip(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add(bytes.Repeat([]byte{0}, 1000))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		comp, err := LZO{}.Compress(nil, data)
		if err != nil {
			t.Fatal(err)
		}
		out, err := LZO{}.Decompress(nil, comp, len(data))
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzParseDictionary(f *testing.F) {
	d := NewDictionary()
	d.Add("content-type")
	d.Add("server")
	f.Add(d.Append(nil))
	f.Add([]byte{255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ParseDictionary(data) // must not panic
	})
}

// TestLZODecompressRandomGarbage is the deterministic complement.
func TestLZODecompressRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(300))
		rng.Read(buf)
		_, _ = LZO{}.Decompress(nil, buf, rng.Intn(1000))
	}
}
