package compress

import (
	"encoding/binary"
	"fmt"
)

// LZO is a fast LZ77 byte codec standing in for the LZO library (see the
// package comment). The block format is token-oriented:
//
//	token      one byte: high nibble = literal count, low nibble = match
//	           length - minMatch; a nibble of 15 is extended by 255-run
//	           continuation bytes
//	literals   literal-count raw bytes
//	offset     2 bytes little-endian match distance (absent in the final
//	           sequence, which carries only literals)
//
// Compression is single-pass greedy with a 16-bit offset window and a
// 4-byte hash chain of depth 1, giving LZO-class speed and ratio.
type LZO struct{}

// Name implements Codec.
func (LZO) Name() string { return "lzo" }

const (
	lzMinMatch  = 4
	lzMaxOffset = 1 << 16
	lzHashBits  = 14
)

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

// Compress implements Codec.
func (LZO) Compress(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return dst, nil
	}
	var table [1 << lzHashBits]int32 // position + 1; 0 = empty
	anchor := 0
	i := 0
	// Stop matching near the end: we need 4 bytes to hash and the final
	// sequence must be literal-only.
	limit := len(src) - lzMinMatch
	for i <= limit {
		v := binary.LittleEndian.Uint32(src[i:])
		h := lzHash(v)
		cand := int(table[h]) - 1
		table[h] = int32(i) + 1
		if cand >= 0 && i-cand < lzMaxOffset &&
			binary.LittleEndian.Uint32(src[cand:]) == v {
			// Extend the match forward.
			mlen := lzMinMatch
			for i+mlen < len(src) && src[cand+mlen] == src[i+mlen] {
				mlen++
			}
			dst = lzEmit(dst, src[anchor:i], mlen, i-cand)
			i += mlen
			anchor = i
			continue
		}
		i++
	}
	// Final literal-only sequence.
	dst = lzEmit(dst, src[anchor:], 0, 0)
	return dst, nil
}

// lzEmit writes one sequence: literals plus an optional match.
func lzEmit(dst, literals []byte, matchLen, offset int) []byte {
	litLen := len(literals)
	tokenLit := litLen
	if tokenLit > 15 {
		tokenLit = 15
	}
	tokenMatch := 0
	if matchLen > 0 {
		tokenMatch = matchLen - lzMinMatch
		if tokenMatch > 15 {
			tokenMatch = 15
		}
	}
	dst = append(dst, byte(tokenLit<<4|tokenMatch))
	if tokenLit == 15 {
		dst = lzExtend(dst, litLen-15)
	}
	dst = append(dst, literals...)
	if matchLen > 0 {
		if tokenMatch == 15 {
			dst = lzExtend(dst, matchLen-lzMinMatch-15)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(offset-1))
	}
	return dst
}

// lzExtend writes a 255-run length continuation.
func lzExtend(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// Decompress implements Codec.
func (LZO) Decompress(dst, src []byte, rawLen int) ([]byte, error) {
	if rawLen == 0 && len(src) == 0 {
		return dst, nil
	}
	out := make([]byte, 0, rawLen)
	p := 0
	for p < len(src) {
		token := src[p]
		p++
		litLen := int(token >> 4)
		matchNib := int(token & 15)
		if litLen == 15 {
			n, np, err := lzReadExtend(src, p)
			if err != nil {
				return dst, err
			}
			litLen += n
			p = np
		}
		if p+litLen > len(src) {
			return dst, fmt.Errorf("compress: lzo: literal run past end of block")
		}
		out = append(out, src[p:p+litLen]...)
		p += litLen
		if p == len(src) {
			break // final literal-only sequence
		}
		matchLen := matchNib + lzMinMatch
		if matchNib == 15 {
			n, np, err := lzReadExtend(src, p)
			if err != nil {
				return dst, err
			}
			matchLen += n
			p = np
		}
		if p+2 > len(src) {
			return dst, fmt.Errorf("compress: lzo: truncated match offset")
		}
		offset := int(binary.LittleEndian.Uint16(src[p:])) + 1
		p += 2
		start := len(out) - offset
		if start < 0 {
			return dst, fmt.Errorf("compress: lzo: match offset %d before block start", offset)
		}
		// Byte-wise copy: matches may overlap their own output.
		for k := 0; k < matchLen; k++ {
			out = append(out, out[start+k])
		}
	}
	if len(out) != rawLen {
		return dst, fmt.Errorf("compress: lzo: decompressed %d bytes, want %d", len(out), rawLen)
	}
	return append(dst, out...), nil
}

func lzReadExtend(src []byte, p int) (int, int, error) {
	n := 0
	for {
		if p >= len(src) {
			return 0, 0, fmt.Errorf("compress: lzo: truncated length continuation")
		}
		b := src[p]
		p++
		n += int(b)
		if b != 255 {
			return n, p, nil
		}
	}
}
