package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"colmr/internal/colfile"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Aggregation pushdown properties. The pushdown path (DrainAggregate:
// zone-stat shortcuts, batch folds over selection bitmaps, scalar
// fallback) must produce bit-for-bit the rows a brute-force fold over the
// loaded records produces, for random datasets x layouts x predicates x
// aggregate specs, with vectorization on and off and under shared batch
// execution — and its logical pruning counters must match a materializing
// scan of the same predicate exactly.

var aggPropSchema = serde.RecordOf("T",
	serde.Field{Name: "g", Type: serde.String()},
	serde.Field{Name: "a", Type: serde.Long()},
	serde.Field{Name: "b", Type: serde.Double()},
	serde.Field{Name: "s", Type: serde.String()},
)

// aggPropLoad writes a random dataset: "g" a low-cardinality group key,
// "a" a long (monotone when sorted, so zone maps are tight), "b" a double,
// "s" a low-cardinality string payload. CIF datasets carry no nulls (the
// writer requires every field); null folding is covered by the scan-level
// FoldBatch/FoldRecord property test.
func aggPropLoad(t *testing.T, fs *hdfs.FileSystem, dataset string, rng *rand.Rand, opts LoadOptions, n int, sorted bool) []*serde.GenericRecord {
	t.Helper()
	w, err := NewWriter(fs, dataset, aggPropSchema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	card := 1 + rng.Intn(5)
	recs := make([]*serde.GenericRecord, 0, n)
	for i := 0; i < n; i++ {
		rec := serde.NewRecord(aggPropSchema)
		rec.Set("g", fmt.Sprintf("grp%d", rng.Intn(card)))
		if sorted {
			rec.Set("a", int64(i))
		} else {
			rec.Set("a", rng.Int63n(1000))
		}
		rec.Set("b", float64(rng.Intn(500))/7)
		rec.Set("s", fmt.Sprintf("v%02d", rng.Intn(40)))
		recs = append(recs, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func aggPropLayout(rng *rand.Rand) LoadOptions {
	split := int64(32 + 16*rng.Intn(4))
	switch rng.Intn(4) {
	case 0:
		return LoadOptions{SplitRecords: split, Default: colfile.Options{Layout: colfile.Plain, StatsEvery: 16}}
	case 1:
		return LoadOptions{SplitRecords: split, Default: colfile.Options{Layout: colfile.SkipList, Levels: []int{64, 8}, StatsEvery: 16}}
	case 2:
		return LoadOptions{SplitRecords: split, Default: colfile.Options{Layout: colfile.Block, Codec: "zlib", BlockBytes: 4 << 10}}
	default:
		return LoadOptions{
			SplitRecords: split,
			Default:      colfile.Options{Layout: colfile.SkipList, Levels: []int{64, 8}, StatsEvery: 16},
			PerColumn: map[string]colfile.Options{
				"g": {Layout: colfile.DCSL, Levels: []int{64, 8}, StatsEvery: 16},
				"s": {Layout: colfile.DCSL, Levels: []int{64, 8}, StatsEvery: 16},
			},
		}
	}
}

func aggPropPred(rng *rand.Rand) scan.Predicate {
	switch rng.Intn(7) {
	case 0:
		return nil
	case 1:
		return scan.Le("a", rng.Int63n(1200)-100)
	case 2:
		return scan.HasPrefix("s", "v0")
	case 3:
		return scan.Eq("g", fmt.Sprintf("grp%d", rng.Intn(6)))
	case 4:
		return scan.NotNull("b")
	case 5:
		return scan.And(scan.Gt("a", int64(50)), scan.Ne("g", "grp0"))
	default:
		return scan.Or(scan.Eq("s", "v00"), scan.IsNull("a"))
	}
}

func aggPropAggregate(t *testing.T, rng *rand.Rand) *scan.Aggregate {
	t.Helper()
	pool := []string{
		"count", "count(a)", "count(g)",
		"min(a)", "max(a)", "sum(a)",
		"min(s)", "max(s)", "min(g)",
		"sum(b)", "max(b)",
	}
	k := 1 + rng.Intn(3)
	picked := make([]string, 0, k)
	for _, i := range rng.Perm(len(pool))[:k] {
		picked = append(picked, pool[i])
	}
	src := strings.Join(picked, ",")
	if rng.Intn(2) == 0 {
		src += " group by g"
	}
	a, err := scan.ParseAggregate(src)
	if err != nil {
		t.Fatalf("ParseAggregate(%q): %v", src, err)
	}
	return a
}

// aggPropGold folds the in-memory records by brute force: predicate via
// scalar Eval, values via FoldRecord — the reference the pushdown must hit.
func aggPropGold(t *testing.T, recs []*serde.GenericRecord, pred scan.Predicate, agg *scan.Aggregate) *scan.AggState {
	t.Helper()
	st := scan.NewAggState(agg)
	for _, rec := range recs {
		ev := scan.Getter(func(col string) (any, error) { return rec.Get(col) })
		if pred != nil {
			ok, err := pred.Eval(ev)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				continue
			}
		}
		if err := st.FoldRecord(ev); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// aggValEqual compares aggregate outputs; doubles use a relative tolerance
// because task-merge order reassociates float sums.
func aggValEqual(a, b any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if af, ok := a.(float64); ok {
		bf, ok := b.(float64)
		if !ok {
			return false
		}
		return math.Abs(af-bf) <= 1e-9*math.Max(1, math.Max(math.Abs(af), math.Abs(bf)))
	}
	c, ok := scan.CompareValues(a, b)
	return ok && c == 0
}

func checkAggRows(t *testing.T, ctx string, got, want []scan.AggRow) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d\ngot  %v\nwant %v", ctx, len(got), len(want), got, want)
	}
	for i := range got {
		if !aggValEqual(got[i].Group, want[i].Group) {
			t.Fatalf("%s: group %d is %v, want %v", ctx, i, got[i].Group, want[i].Group)
		}
		if len(got[i].Values) != len(want[i].Values) {
			t.Fatalf("%s: group %d has %d values, want %d", ctx, i, len(got[i].Values), len(want[i].Values))
		}
		for j := range got[i].Values {
			if !aggValEqual(got[i].Values[j], want[i].Values[j]) {
				t.Fatalf("%s: group %d value %d is %v (%T), want %v (%T)",
					ctx, i, j, got[i].Values[j], got[i].Values[j], want[i].Values[j], want[i].Values[j])
			}
		}
	}
}

func TestAggPushdownMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		fs := testFS(t, 4)
		n := 100 + rng.Intn(200)
		sorted := rng.Intn(2) == 0
		recs := aggPropLoad(t, fs, "/d", rng, aggPropLayout(rng), n, sorted)
		pred := aggPropPred(rng)
		agg := aggPropAggregate(t, rng)
		ctx := fmt.Sprintf("trial %d (n=%d sorted=%v pred=%v agg=%s)", trial, n, sorted, pred, agg)

		want := aggPropGold(t, recs, pred, agg).Rows()
		var stats [2]sim.TaskStats
		for vi, vect := range []bool{true, false} {
			b := ScanDataset("/d").Where(pred).Vectorize(vect).Aggregate(agg)
			res, err := mapred.Run(fs, b.AggJob())
			if err != nil {
				t.Fatalf("%s vect=%v: %v", ctx, vect, err)
			}
			checkAggRows(t, fmt.Sprintf("%s vect=%v", ctx, vect), res.Agg.Rows(), want)
			if res.Total.RecordsProcessed != 0 {
				t.Fatalf("%s vect=%v: %d records materialized during aggregation",
					ctx, vect, res.Total.RecordsProcessed)
			}
			stats[vi] = res.Total
		}

		// The pruning trajectory is the predicate's, not the consumer's: a
		// materializing scan of the same predicate must report identical
		// logical counters, and so must the scalar agg run.
		conf := predConf(agg.Columns(nil), false, pred)
		conf.InputPaths = []string{"/d"}
		_, mat := scanAll(t, fs, "/d", conf)
		for vi, st := range stats {
			if st.GroupsPruned != mat.GroupsPruned || st.RecordsPruned != mat.RecordsPruned ||
				st.BloomPruned != mat.BloomPruned || st.SplitsPruned != mat.SplitsPruned {
				t.Fatalf("%s vect=%v: pruning counters diverge from materializing scan:\nagg %+v\nmat groups=%d records=%d bloom=%d splits=%d",
					ctx, vi == 0, st, mat.GroupsPruned, mat.RecordsPruned, mat.BloomPruned, mat.SplitsPruned)
			}
		}
	}
}

// TestAggSharedBatchMatchesBruteForce: aggregation jobs co-scheduled with
// record jobs in one shared batch fold per-member state off the shared
// cursor set and still match brute force.
func TestAggSharedBatchMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(7100 + trial)))
		fs := testFS(t, 4)
		n := 150 + rng.Intn(150)
		recs := aggPropLoad(t, fs, "/d", rng, aggPropLayout(rng), n, rng.Intn(2) == 0)

		pred1 := aggPropPred(rng)
		pred2 := aggPropPred(rng)
		agg1 := aggPropAggregate(t, rng)
		agg2 := aggPropAggregate(t, rng)
		ctx := fmt.Sprintf("trial %d (n=%d pred1=%v agg1=%s pred2=%v agg2=%s)", trial, n, pred1, agg1, pred2, agg2)

		var matched int64
		jobs := []*mapred.Job{
			ScanDataset("/d").Where(pred1).Aggregate(agg1).AggJob(),
			ScanDataset("/d").Where(pred2).Aggregate(agg2).AggJob(),
			ScanDataset("/d").Columns("s").Where(pred1).Job(
				mapred.MapperFunc(func(_, _ any, _ mapred.Emit) error { matched++; return nil })),
		}
		br, err := mapred.RunBatch(fs, jobs...)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		want1 := aggPropGold(t, recs, pred1, agg1)
		want2 := aggPropGold(t, recs, pred2, agg2)
		checkAggRows(t, ctx+" job1", br.Results[0].Agg.Rows(), want1.Rows())
		checkAggRows(t, ctx+" job2", br.Results[1].Agg.Rows(), want2.Rows())
		if wantRows := int64(len(wantMatchesSchema(t, recs, pred1))); br.Results[0].Total.RowsAggregated != wantRows {
			t.Fatalf("%s: job1 aggregated %d rows, want %d", ctx, br.Results[0].Total.RowsAggregated, wantRows)
		}
		if br.Results[0].Total.RecordsProcessed != 0 || br.Results[1].Total.RecordsProcessed != 0 {
			t.Fatalf("%s: shared agg members materialized records (%d, %d)",
				ctx, br.Results[0].Total.RecordsProcessed, br.Results[1].Total.RecordsProcessed)
		}
		wantMatched := int64(len(wantMatchesSchema(t, recs, pred1)))
		if matched != wantMatched {
			t.Fatalf("%s: record member saw %d rows, want %d", ctx, matched, wantMatched)
		}
	}
}

func wantMatchesSchema(t *testing.T, recs []*serde.GenericRecord, pred scan.Predicate) []*serde.GenericRecord {
	t.Helper()
	if pred == nil {
		return recs
	}
	var out []*serde.GenericRecord
	for _, rec := range recs {
		ok, err := pred.Eval(scan.Getter(func(col string) (any, error) { return rec.Get(col) }))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			out = append(out, rec)
		}
	}
	return out
}

// TestAggStatsShortcutZeroDecode: on a sorted column with zone statistics
// and no predicate, COUNT/MIN/MAX are answered from the stats tier alone —
// groups take the shortcut and not a single value is deserialized or
// vector-decoded.
func TestAggStatsShortcutZeroDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fs := testFS(t, 4)
	const n = 300
	opts := LoadOptions{SplitRecords: 64, Default: colfile.Options{Layout: colfile.SkipList, Levels: []int{64, 8}, StatsEvery: 16}}
	recs := aggPropLoad(t, fs, "/d", rng, opts, n, true)
	agg, err := scan.ParseAggregate("count,count(a),min(a),max(a)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapred.Run(fs, ScanDataset("/d").Aggregate(agg).AggJob())
	if err != nil {
		t.Fatal(err)
	}
	checkAggRows(t, "stats shortcut", res.Agg.Rows(), aggPropGold(t, recs, nil, agg).Rows())
	st := res.Total
	if st.AggGroupsShortcut == 0 {
		t.Error("no group took the zone-stats shortcut")
	}
	if st.RowsAggregated != n {
		t.Errorf("aggregated %d rows, want %d", st.RowsAggregated, n)
	}
	if st.CPU.ValuesMaterialized != 0 || st.CPU.VecValues != 0 {
		t.Errorf("stats-only aggregation decoded data: %d values materialized, %d vector values",
			st.CPU.ValuesMaterialized, st.CPU.VecValues)
	}
}

// TestDictIdEqualityMatchesStringEquality: equality over a DCSL string
// column runs on window dictionary ids when vectorized — same verdicts,
// same pruning trajectory, zero string decode for the filter — and the
// scalar path (string comparisons) agrees needle by needle, present or
// absent.
func TestDictIdEqualityMatchesStringEquality(t *testing.T) {
	count, err := scan.ParseAggregate("count")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(5200 + trial)))
		fs := testFS(t, 4)
		n := 150 + rng.Intn(250)
		opts := LoadOptions{
			SplitRecords: int64(32 + 16*rng.Intn(3)),
			Default:      colfile.Options{Layout: colfile.SkipList, Levels: []int{64, 8}, StatsEvery: 16},
			PerColumn: map[string]colfile.Options{
				"g": {Layout: colfile.DCSL, Levels: []int{64, 8}, StatsEvery: 16},
				"s": {Layout: colfile.DCSL, Levels: []int{64, 8}, StatsEvery: 16},
			},
		}
		recs := aggPropLoad(t, fs, "/d", rng, opts, n, false)

		needles := []string{
			fmt.Sprintf("v%02d", rng.Intn(40)), // usually present
			"zebra",                            // never present
		}
		for _, needle := range needles {
			for _, pred := range []scan.Predicate{scan.Eq("s", needle), scan.Ne("s", needle)} {
				ctx := fmt.Sprintf("trial %d pred=%v", trial, pred)
				want := int64(len(wantMatchesSchema(t, recs, pred)))

				run := func(vect bool) sim.TaskStats {
					res, err := mapred.Run(fs, ScanDataset("/d").Where(pred).Vectorize(vect).Aggregate(count).AggJob())
					if err != nil {
						t.Fatalf("%s vect=%v: %v", ctx, vect, err)
					}
					rows := res.Agg.Rows()
					if len(rows) != 1 || !aggValEqual(rows[0].Values[0], want) {
						t.Fatalf("%s vect=%v: count %v, want %d", ctx, vect, rows, want)
					}
					return res.Total
				}
				idst := run(true)
				sst := run(false)

				if idst.GroupsPruned != sst.GroupsPruned || idst.RecordsPruned != sst.RecordsPruned ||
					idst.BloomPruned != sst.BloomPruned || idst.SplitsPruned != sst.SplitsPruned ||
					idst.RecordsFiltered != sst.RecordsFiltered {
					t.Fatalf("%s: pruning counters diverge:\nid path %+v\nstring  %+v", ctx, idst, sst)
				}
				if sst.DictIdCompares != 0 {
					t.Fatalf("%s: scalar path charged %d dict-id compares", ctx, sst.DictIdCompares)
				}
				// Rows that reach evaluation compare as ids, never as
				// strings. An absent needle is answered by the dictionary
				// probe alone — whole windows verdict without a single
				// per-row compare — so only a present needle must charge
				// DictIdCompares.
				if reached := int64(n) - idst.RecordsPruned; reached > 0 {
					if needle != "zebra" && idst.DictIdCompares == 0 {
						t.Fatalf("%s: %d rows evaluated but no dict-id compares", ctx, reached)
					}
					if idst.CPU.StringBytes != 0 {
						t.Fatalf("%s: id path decoded %d string bytes for the filter", ctx, idst.CPU.StringBytes)
					}
				}
			}
		}
	}
}
