package core

import (
	"fmt"

	"colmr/internal/scan"
)

// Aggregation pushdown (the scan subsystem's fold side). With scan.Spec.Agg
// set the reader stops surfacing records entirely: DrainAggregate runs the
// split to completion and folds qualifying rows into a scan.AggState at the
// cheapest site that can answer them, keeping the exact pruning trajectory
// of a materializing scan:
//
//  1. Zone stats: when a region's zone maps already prove every row matches
//     the predicate (Planner.MatchAllGroup) and every aggregate function is
//     answerable from the region's ColStats (AggState.StatsAnswerable), the
//     whole region folds with zero bytes decoded (AggGroupsShortcut).
//  2. Vectors: regions needing evaluation run the same batch loop as a
//     materializing vectorized scan — same batch boundaries, same pruning
//     and filter counters — but the selected rows fold straight from the
//     selection bitmap and the decoded vectors (FoldBatch); no record
//     object is ever built.
//  3. Records: with vectorization off (or a layout that cannot
//     batch-decode) the scalar loop evaluates per record and folds the
//     match (FoldRecord) — identical results, boxed-value costs.
//
// The logical counters stay bit-identical to a materializing scan: the
// stats shortcut fires only inside regions the group tier would judge
// MayMatch (a NoMatch region cannot be MatchAll), and a later PruneGroup
// consultation at any position inside such a region returns the same
// MayMatch verdict, so GroupsPruned / RecordsPruned / BloomPruned /
// RecordsFiltered are unchanged. RecordsProcessed stays zero — no record
// reaches a map function — which is the point.

// DrainAggregate consumes the split and returns the folded aggregate state
// (mapred.AggRecordReader). The reader must have been opened with
// scan.Spec.Agg set; Next must not be mixed with DrainAggregate.
func (r *Reader) DrainAggregate() (*scan.AggState, error) {
	if r.agg == nil {
		return nil, fmt.Errorf("core: reader has no aggregation to drain")
	}
	st := r.aggState
	for {
		if r.done {
			return st, nil
		}
		if r.curPos+1 >= r.total {
			if err := r.nextDir(); err != nil {
				return nil, err
			}
			continue
		}
		if end, ok, err := r.aggStatsShortcut(st, r.curPos+1); err != nil {
			return nil, err
		} else if ok {
			r.curPos = end - 1
			continue
		}
		if r.vecOK {
			if err := r.aggBatchFold(st); err != nil {
				return nil, err
			}
			continue
		}
		r.curPos++
		if r.dels.has(r.curPos) {
			continue
		}
		if r.planner.Predicate() != nil {
			ok, err := r.qualifies()
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if err := st.FoldRecord(r.eval); err != nil {
			return nil, err
		}
		if r.stats != nil {
			r.stats.RowsAggregated++
		}
	}
}

// aggStatsShortcut tries the zero-decode tier at pos: a region the zone
// maps prove all-matching, whose every aggregate input column has a stats
// entry covering exactly the region, folds from those entries alone. ok
// reports whether the fold happened (end is then one past the folded
// region); a false return costs only zone-map lookups, never a byte.
func (r *Reader) aggStatsShortcut(st *scan.AggState, pos int64) (end int64, ok bool, err error) {
	if r.dels != nil {
		// A directory with superseded rows cannot fold from stats: the
		// entries describe deleted rows too.
		return 0, false, nil
	}
	all, end := r.planner.MatchAllGroup(pos, r.total, r.groupStats)
	if !all || end <= pos {
		return 0, false, nil
	}
	// Clip the region to the aggregate columns' group geometry; every
	// consulted entry must then cover exactly [pos, end) or the bounds and
	// null counts would describe rows outside the fold.
	entries := make(map[string]*scan.ColStats, len(r.aggCols))
	for _, col := range r.aggCols {
		cst, cend := r.groupStats(col, pos)
		if cst == nil || cend <= pos {
			return 0, false, nil
		}
		if cend < end {
			end = cend
		}
		entries[col] = cst
	}
	rows := end - pos
	for _, cst := range entries {
		if cst.Rows != rows {
			return 0, false, nil
		}
	}
	stats := func(col string) *scan.ColStats { return entries[col] }
	if !st.StatsAnswerable(rows, stats) {
		return 0, false, nil
	}
	// Past this point a failure is a real error, not a fallback: the
	// answerability check promised the fold.
	if err := st.FoldStats(rows, stats); err != nil {
		return 0, false, err
	}
	if r.stats != nil {
		r.stats.AggGroupsShortcut++
		r.stats.RowsAggregated += rows
	}
	return end, true, nil
}

// aggBatchFold advances the vectorized aggregate loop one step from
// curPos+1: group-tier pruning exactly as vecAdvance, then one batch whose
// selected rows fold from vectors without surfacing. With no predicate the
// full batch folds (selection all-set, no filter counters).
func (r *Reader) aggBatchFold(st *scan.AggState) error {
	pos := r.curPos + 1
	pred := r.planner.Predicate()
	if pred != nil && pos >= r.pruneValidTo {
		tri, end, byBloom := r.planner.PruneGroup(pos, r.total, r.groupStats)
		if tri == scan.NoMatch {
			if r.stats != nil {
				r.stats.GroupsPruned++
				r.stats.RecordsPruned += end - pos
				if byBloom {
					r.stats.BloomPruned++
				}
			}
			r.curPos = end - 1
			return nil
		}
		r.pruneValidTo = end
	}
	end := r.total
	if pred != nil && r.pruneValidTo < end {
		end = r.pruneValidTo
	}
	if m := pos + vecBatchRows; m < end {
		end = m
	}
	b := newColBatch(r, r.dirs[r.dirIdx], pos, end)
	var sel *scan.Selection
	if pred != nil {
		b.prefetch(r.eagerCols(), true)
		in := scan.GetFullSelection(b.n)
		del := r.dels.mask(in, pos, end)
		out, err := pred.VecEval(b, in)
		scan.PutSelection(in)
		r.foldCursorStats()
		if err != nil {
			b.release()
			return err
		}
		sel = out
		if r.stats != nil {
			r.stats.VecBatches++
			r.stats.RowsVectorized += int64(b.n)
			r.stats.RecordsFiltered += int64(b.n) - del - int64(sel.Count())
		}
	} else {
		sel = scan.GetFullSelection(b.n)
		r.dels.mask(sel, pos, end)
	}
	rows, err := st.FoldBatch(sel, b)
	r.foldCursorStats()
	scan.PutSelection(sel)
	b.release()
	r.curPos = end - 1
	if err != nil {
		return err
	}
	if r.stats != nil {
		r.stats.AggBatches++
		r.stats.RowsAggregated += rows
	}
	return nil
}
