package core

import (
	"fmt"
	"sort"
	"strings"

	"colmr/internal/colfile"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/vec"
)

// SetColumns pushes a column projection into CIF for a job, the analogue of
//
//	ColumnInputFormat.setColumns(job, "url, metadata");
//
// from Section 4.2. Only the named columns' files will be opened.
//
// SetColumns is the compatibility wrapper over the typed scan spec: it
// populates Spec.Columns and clears any lingering serialized prop. New code
// should prefer the builder (ScanDataset).
func SetColumns(conf *mapred.JobConf, columns ...string) {
	conf.ScanSpec().Columns = append([]string(nil), columns...)
	conf.Del(ColumnsProp)
}

// SetLazy selects lazy record construction for a job (Section 5) — the
// compatibility wrapper over Spec.Lazy.
func SetLazy(conf *mapred.JobConf, lazy bool) {
	conf.ScanSpec().Lazy = lazy
	conf.Del(LazyProp)
}

// resolveSpec returns a job's effective scan spec: the typed spec's fields
// are authoritative, and leftover legacy string props fill only the fields
// never touched through the typed API. Every wrapper deletes its own prop
// when it writes the typed field, so a prop still present was set by a
// string-side caller (colscan -where style) and keeps working even after
// some other setting went typed — calling SetLazy must not silently drop a
// predicate that arrived as a serialized prop. Downstream of here nothing
// re-parses props.
func resolveSpec(conf *mapred.JobConf) (scan.Spec, error) {
	var spec scan.Spec
	if conf.Scan != nil {
		spec = *conf.Scan
	}
	if len(spec.Columns) == 0 {
		spec.Columns = propColumns(conf)
	}
	if spec.Predicate == nil {
		pred, err := scan.FromConf(conf)
		if err != nil {
			return spec, err
		}
		spec.Predicate = pred
	}
	if !spec.Lazy {
		spec.Lazy = conf.Get(LazyProp) == "true"
	}
	if !spec.NoElide {
		spec.NoElide = !scan.ElisionFromConf(conf)
	}
	if !spec.NoBloom {
		spec.NoBloom = !scan.BloomFromConf(conf)
	}
	if !spec.NoVec {
		spec.NoVec = !scan.VectorizeFromConf(conf)
	}
	if spec.Agg == nil {
		agg, err := scan.AggFromConf(conf)
		if err != nil {
			return spec, err
		}
		spec.Agg = agg
	}
	if err := spec.Agg.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// Split is a CIF split: one or more whole split-directories.
type Split struct {
	Dirs []string
	// Dels holds each directory's delete-file path, parallel to Dirs (""
	// or a short slice means no deletes — hand-built splits over
	// bulk-loaded data leave it nil). Captured at planning time from one
	// manifest snapshot, so the reader never re-reads the manifest.
	Dels []string
	// Columns is the projection captured at split-generation time, used
	// for locality ranking (only projected files matter).
	Columns []string
	// Judged records that the scheduler tier already tested every
	// directory in this split against the job's predicate (elision was
	// on). The reader then skips its own file pruning tier — the same
	// planner over the same aggregates cannot reach a different verdict —
	// so hand-built splits keep the reader-side defense while planned
	// ones avoid re-reading stats sections that were just consulted.
	Judged bool
}

// String implements mapred.Split.
func (s *Split) String() string { return strings.Join(s.Dirs, ",") }

// Hosts implements mapred.Split: nodes are ranked by how many of the
// split's (projected) column-file bytes they hold locally. With the column
// placement policy installed, the top candidates hold every block of every
// file.
func (s *Split) Hosts(fs *hdfs.FileSystem) []hdfs.NodeID {
	local := map[hdfs.NodeID]int64{}
	for _, dir := range s.Dirs {
		for _, p := range s.files(fs, dir) {
			locs, err := fs.BlockLocations(p)
			if err != nil {
				continue
			}
			size := fs.TotalSize(p)
			nblocks := int64(len(locs))
			if nblocks == 0 {
				continue
			}
			per := size / nblocks
			for _, nodes := range locs {
				for _, n := range nodes {
					local[n] += per
				}
			}
		}
	}
	out := make([]hdfs.NodeID, 0, len(local))
	for n := range local {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if local[out[i]] != local[out[j]] {
			return local[out[i]] > local[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// files returns the column-file paths the split will read in dir.
func (s *Split) files(fs *hdfs.FileSystem, dir string) []string {
	if len(s.Columns) > 0 {
		out := make([]string, len(s.Columns))
		for i, c := range s.Columns {
			out[i] = dir + "/" + c
		}
		return out
	}
	infos, err := fs.List(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, fi := range infos {
		if !fi.IsDir && !strings.HasPrefix(fi.Name(), "_") {
			// "_"-prefixed files are metadata (schema, deletes), not columns.
			out = append(out, fi.Path)
		}
	}
	return out
}

// AutoDirsPerSplit, as InputFormat.DirsPerSplit, sizes splits from
// estimated predicate selectivity instead of a fixed constant: the
// scheduler tier already reads each surviving directory's whole-file
// aggregates, so the expected qualifying rows are known before any task
// exists, and highly selective scans merge many directories into one task
// rather than scheduling a task per directory that each return a handful
// of records.
const AutoDirsPerSplit = -1

// InputFormat is CIF, the ColumnInputFormat.
type InputFormat struct {
	// DirsPerSplit assigns this many split-directories to one map task
	// (Section 4.2: "CIF can actually assign one or more split-directories
	// to a single split"). Default 1; AutoDirsPerSplit sizes tasks from
	// estimated selectivity.
	DirsPerSplit int
}

// Splits implements mapred.InputFormat. The report-free interface cannot
// hand its caller the elided splits' accounting, so elision is reserved
// for PlannedSplits (the engine's path): Splits callers get every
// split-directory and rely on the reader-side tiers, keeping their
// aggregated TaskStats sums complete.
func (f *InputFormat) Splits(fs *hdfs.FileSystem, conf *mapred.JobConf) ([]mapred.Split, error) {
	splits, _, err := f.plannedSplits(fs, conf, false)
	return splits, err
}

// PlannedSplits implements mapred.PlannedInputFormat: split-directory
// listing plus the scan planner's scheduler tier. When the job carries a
// predicate (and scan.SetElision has not disabled it), each
// split-directory's filter-column files are judged by their whole-file
// aggregate statistics — read from footers, never data — and directories
// proven irrelevant are dropped before a map task exists for them. This is
// the PowerDrill chunk-skip lifted to the scheduling unit the paper built
// CIF around.
func (f *InputFormat) PlannedSplits(fs *hdfs.FileSystem, conf *mapred.JobConf) ([]mapred.Split, scan.PruneReport, error) {
	return f.plannedSplits(fs, conf, true)
}

func (f *InputFormat) plannedSplits(fs *hdfs.FileSystem, conf *mapred.JobConf, allowElide bool) ([]mapred.Split, scan.PruneReport, error) {
	plan, err := f.planDirs(fs, conf, allowElide, nil)
	if err != nil {
		return nil, plan.report, err
	}
	var out []mapred.Split
	for _, ds := range plan.datasets {
		per := f.splitSize(fs, plan.dps, plan.pred, plan.bloom, ds.kept)
		for i := 0; i < len(ds.kept); i += per {
			j := i + per
			if j > len(ds.kept) {
				j = len(ds.kept)
			}
			out = append(out, &Split{Dirs: ds.kept[i:j], Dels: ds.keptDels[i:j], Columns: plan.columns, Judged: plan.elide})
		}
	}
	return out, plan.report, nil
}

// dirPlan is one job's split-directory planning outcome: the directories
// that survived the scheduler tier, per dataset, plus what split assembly
// and shared-scan co-scheduling need from the planning pass.
type dirPlan struct {
	datasets []datasetDirs
	columns  []string // locality columns: projection plus filter columns
	pred     scan.Predicate
	elide    bool
	bloom    bool // Bloom consultation (pruning and sizing) enabled
	dps      int  // resolved directories-per-split (spec overrides format)
	report   scan.PruneReport
}

// datasetDirs is one input dataset's directory listing: all
// split-directories in scan order (with their delete files, parallel), and
// the subset the scheduler kept.
type datasetDirs struct {
	path     string
	all      []string
	allDels  []string
	kept     []string
	keptDels []string
}

// planDirs runs split-directory listing and the scheduler pruning tier for
// one job — everything plannedSplits does short of chunking directories
// into splits. SharedSplits reuses it per member job, which is what makes
// per-job elision accounting in a batch identical to a solo run; layouts,
// when non-nil, pins every member to one layout snapshot per dataset so a
// manifest commit cannot land between their planning passes.
func (f *InputFormat) planDirs(fs *hdfs.FileSystem, conf *mapred.JobConf, allowElide bool, layouts map[string]dsLayout) (dirPlan, error) {
	var plan dirPlan
	spec, err := resolveSpec(conf)
	if err != nil {
		return plan, err
	}
	columns := spec.Columns
	pred := spec.Predicate
	planner := scan.NewPlanner(pred)
	planner.SetBloom(spec.Bloom())
	// Locality ranks by the files a map task will actually open: the
	// projection plus any filter-only predicate columns (Columns dedups
	// against the slice it extends). An aggregation narrows an empty
	// projection to its own columns and widens a set one with them — the
	// reader opens exactly that set.
	if spec.Agg != nil && len(columns) == 0 {
		columns = spec.Agg.Columns(nil)
	} else if spec.Agg != nil {
		columns = spec.Agg.Columns(append([]string(nil), columns...))
	}
	if pred != nil && len(columns) > 0 {
		columns = pred.Columns(append([]string(nil), columns...))
	}
	plan.pred = pred
	plan.columns = columns
	plan.bloom = spec.Bloom()
	plan.dps = f.dirsPerSplit(spec)
	plan.report = scan.PruneReport{
		Columns:    planner.FilterColumns(),
		Vectorized: pred != nil && spec.Vectorize(),
	}
	plan.elide = allowElide && pred != nil && spec.Elide()
	for _, dataset := range conf.InputPaths {
		layout, err := layoutCached(fs, dataset, layouts)
		if err != nil {
			return plan, err
		}
		dirs, dels := layout.dirs, layout.dels
		plan.report.SplitsTotal += len(dirs)
		kept, keptDels := dirs, dels
		if plan.elide {
			kept = make([]string, 0, len(dirs))
			keptDels = make([]string, 0, len(dirs))
			for i, dir := range dirs {
				if pruneSplitDir(fs, dir, planner, &plan.report) {
					plan.report.SplitsPruned++
					continue
				}
				kept = append(kept, dir)
				keptDels = append(keptDels, dels[i])
			}
		}
		plan.datasets = append(plan.datasets, datasetDirs{path: dataset, all: dirs, allDels: dels, kept: kept, keptDels: keptDels})
	}
	return plan, nil
}

// dirsPerSplit resolves the directories-per-split setting for one job: the
// spec's value when set, else the format's own field.
func (f *InputFormat) dirsPerSplit(spec scan.Spec) int {
	if spec.DirsPerSplit != 0 {
		return spec.DirsPerSplit
	}
	return f.DirsPerSplit
}

// splitSize resolves the directories-per-split for one run of directories:
// the configured constant, or the selectivity-estimated size in auto mode.
func (f *InputFormat) splitSize(fs *hdfs.FileSystem, dps int, pred scan.Predicate, bloom bool, dirs []string) int {
	if dps == AutoDirsPerSplit {
		return autoDirsPerSplit(fs, pred, bloom, dirs)
	}
	if dps < 1 {
		return 1
	}
	return dps
}

// autoDirsPerSplit sizes splits so each map task covers roughly one
// split-directory's worth of *qualifying* work: estimated matches per
// directory shrink with selectivity, so the directories-per-task ratio
// grows as rows/matches, clamped to the surviving run. Estimation failure
// (no statistics, unreadable footers) falls back to the constant default —
// sizing is a costing decision, never a correctness one.
func autoDirsPerSplit(fs *hdfs.FileSystem, pred scan.Predicate, bloom bool, dirs []string) int {
	if pred == nil || len(dirs) < 2 {
		return 1
	}
	var rows, matches float64
	for _, dir := range dirs {
		r, est, ok := estimateDirMatches(fs, dir, pred, bloom)
		if !ok {
			return 1
		}
		rows += r
		matches += est
	}
	if rows <= 0 {
		return 1
	}
	if matches < 1 {
		matches = 1
	}
	per := int(rows / matches)
	if per < 1 {
		per = 1
	}
	if per > len(dirs) {
		per = len(dirs)
	}
	return per
}

// estimateDirMatches estimates one split-directory's row count and
// qualifying rows from whole-file footer statistics. Sizing is a costing
// phase, not a pruning one: its footer reads are uncharged metadata (and
// not counted in PruneReport.FilesChecked, which reports the scheduler
// tier's consultations).
func estimateDirMatches(fs *hdfs.FileSystem, dir string, pred scan.Predicate, bloom bool) (rows, est float64, ok bool) {
	schema, err := readSplitSchema(fs, dir)
	if err != nil {
		return 0, 0, false
	}
	stats, recordCount := dirStatsSource(fs, dir, schema, nil)
	var maxRows int64
	wrapped := func(col string) *scan.ColStats {
		st := stats(col)
		if st != nil && st.Rows > maxRows {
			maxRows = st.Rows
		}
		return st
	}
	view := scan.StatsFunc(wrapped)
	if !bloom {
		view = scan.StripBloom(view)
	}
	frac := scan.EstimateFraction(pred, view)
	if maxRows == 0 {
		// The estimate consulted no statistics; count records directly from
		// any column's footer so the row total stays real.
		if maxRows = recordCount(); maxRows == 0 {
			return 0, 0, false
		}
	}
	return float64(maxRows), frac * float64(maxRows), true
}

// dirStatsSource returns a cached whole-file statistics resolver over dir's
// column footers, plus a record-count fallback (any column's footer can
// count the directory's records). The optional onRead observes each footer
// actually consulted. Every failure mode (missing schema handled by the
// caller, missing file, corrupt stats) degrades to "no statistics", never
// to an error: real I/O errors surface in the task that opens the
// directory, not in planning.
func dirStatsSource(fs *hdfs.FileSystem, dir string, schema *serde.Schema, onRead func()) (scan.StatsFunc, func() int64) {
	cache := make(map[string]*scan.ColStats)
	stats := func(col string) *scan.ColStats {
		if st, ok := cache[col]; ok {
			return st
		}
		var st *scan.ColStats
		if cs := schema.Field(col); cs != nil {
			if hr, err := fs.Open(dir+"/"+col, hdfs.AnyNode); err == nil {
				if onRead != nil {
					onRead()
				}
				st, _ = colfile.FileStats(hr, cs)
				hr.Close()
			}
		}
		cache[col] = st
		return st
	}
	recordCount := func() int64 {
		if len(schema.Fields) == 0 {
			return 0
		}
		hr, err := fs.Open(dir+"/"+schema.Fields[0].Name, hdfs.AnyNode)
		if err != nil {
			return 0
		}
		defer hr.Close()
		n, _ := colfile.RecordCount(hr)
		return n
	}
	return stats, recordCount
}

// pruneSplitDir decides the scheduler tier for one split-directory. Filter
// columns resolve lazily, so only the files the predicate's Prune
// traversal actually consults cost a footer read. A directory the planner
// cannot judge is scheduled. The record-count fallback covers proofs that
// consulted no statistics (a constant-false predicate): the elided records
// still need accounting.
func pruneSplitDir(fs *hdfs.FileSystem, dir string, planner *scan.Planner, report *scan.PruneReport) bool {
	schema, err := readSplitSchema(fs, dir)
	if err != nil {
		return false
	}
	stats, recordCount := dirStatsSource(fs, dir, schema, func() { report.FilesChecked++ })
	pruned, rows := planner.PruneFileRows(stats, recordCount)
	if pruned {
		report.RecordsPruned += rows
	}
	return pruned
}

// propColumns parses a specless conf's legacy projection prop.
func propColumns(conf *mapred.JobConf) []string {
	raw := strings.TrimSpace(conf.Get(ColumnsProp))
	if raw == "" {
		return nil
	}
	parts := strings.Split(raw, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Open implements mapred.InputFormat.
func (f *InputFormat) Open(fs *hdfs.FileSystem, conf *mapred.JobConf, split mapred.Split, node hdfs.NodeID, stats *sim.TaskStats) (mapred.RecordReader, error) {
	csplit, ok := split.(*Split)
	if !ok {
		return nil, fmt.Errorf("core: unexpected split type %T", split)
	}
	if len(csplit.Dirs) == 0 {
		return nil, fmt.Errorf("core: empty split")
	}
	spec, err := resolveSpec(conf)
	if err != nil {
		return nil, err
	}
	columns := spec.Columns
	if len(columns) == 0 && spec.Agg == nil {
		columns = csplit.Columns
	}
	// The reader's file tier runs only for splits the scheduler has not
	// already judged (and not at all when elision is disabled).
	fileTier := spec.Elide() && !csplit.Judged
	return newReader(fs, csplit.Dirs, csplit.Dels, columns, &spec, fileTier, conf.Cache, conf.VecCache, node, stats)
}

// Reader iterates the records of a CIF split. It is also usable directly
// (outside MapReduce) for scans. With a predicate set it returns only
// qualifying records (see scanexec.go).
type Reader struct {
	fs    *hdfs.FileSystem
	node  hdfs.NodeID
	stats *sim.TaskStats
	lazy  bool
	// elide enables the file pruning tier: on unless scan.SetElision
	// disabled it or the scheduler already judged this split's
	// directories. The group and value tiers run whenever a predicate is
	// set.
	elide bool
	// noBloom mirrors scan.Spec.NoBloom into the column readers, whose
	// DCSL key prober consults group Bloom filters on its own (the
	// planner's tiers carry the setting themselves).
	noBloom bool
	// planner drives the conservative pruning tiers (file and group) and
	// owns the predicate; it shares one implementation with the split
	// scheduler (internal/scan).
	planner *scan.Planner
	// cache is the session's cross-batch scan cache (nil outside a caching
	// Session); attached to every column-file stream this reader opens.
	cache *hdfs.ScanCache
	// vectorize selects batch-at-a-time predicate evaluation (vecexec.go):
	// set when a predicate is present and the spec enables it. vecOK
	// narrows it per open directory to cursor sets whose filter columns can
	// all batch-decode; anything else runs the scalar loop below.
	vectorize bool
	vecOK     bool
	// vecCache is the session's decoded-vector cache (nil disables);
	// vecPool recycles batch scratch vectors.
	vecCache *vec.Cache
	vecPool  vec.Pool
	// probeOnly marks filter columns safe for batch key probing: read
	// through exactly one exists() test and not projected, so consuming
	// their stream without producing values is safe.
	probeOnly map[string]bool
	// idOnly marks filter columns safe for dictionary-id evaluation: every
	// use is an equality/inequality or null test, and the column is neither
	// projected nor aggregated, so decoding its id vector (which consumes
	// the stream without producing values) cannot starve a later value
	// access.
	idOnly map[string]bool
	// batch is the active evaluated batch (nil between batches).
	batch *colBatch

	// agg, when set, turns the scan into an aggregation: DrainAggregate
	// folds qualifying rows into aggState and Next is never used. aggCols
	// are the aggregate's input columns (function arguments + group-by).
	agg      *scan.Aggregate
	aggState *scan.AggState
	aggCols  []string

	schema  *serde.Schema // full dataset schema
	proj    *serde.Schema // projected record schema
	columns []string      // projected columns (cursor prefix)
	allCols []string      // projected plus filter-only predicate columns

	dirs []string
	// delFiles is each directory's delete-file path, parallel to dirs (nil
	// for bulk-loaded data); dels is the open directory's loaded delete set
	// (nil when it has none). Deleted ordinals are superseded recrawl rows:
	// they are skipped before predicate evaluation and counted nowhere.
	delFiles []string
	dels     *delSet
	dirIdx   int
	cursors  []*cursor
	byName   map[string]*cursor
	total    int64 // records in the open split-directory
	curPos   int64 // index of the record most recently returned by Next
	done     bool
	// eval is the column accessor predicate evaluation uses, built once
	// per reader (Eval runs per record; the scan loop is hot).
	eval evalCtx
	// pruneValidTo bounds the records covered by the last MayMatch
	// zone-map verdict; pruning re-runs only once curPos crosses it.
	pruneValidTo int64

	lrec *LazyRecord
	// lastCounted/lastCountedDir track the most recent record counted as
	// materialized in lazy mode (first Get per record increments the
	// counter once).
	lastCounted    int64
	lastCountedDir int
}

// cursor is one column's file reader plus the per-record value cache that
// makes repeated Get calls on the same record free.
type cursor struct {
	name      string
	schema    *serde.Schema
	hr        *hdfs.FileReader
	r         colfile.Reader
	cached    any
	cachedPos int64
	// phys is the cursor's physical accounting bucket, used while
	// vectorizing so parallel per-column decodes never share a counter;
	// Reader.foldCursorStats folds it behind the fan-out barriers.
	phys sim.TaskStats
}

func newReader(fs *hdfs.FileSystem, dirs, dels []string, columns []string, spec *scan.Spec, fileTier bool, cache *hdfs.ScanCache, vcache *vec.Cache, node hdfs.NodeID, stats *sim.TaskStats) (*Reader, error) {
	schema, err := readSplitSchema(fs, dirs[0])
	if err != nil {
		return nil, err
	}
	pred, agg := spec.Predicate, spec.Agg
	// proxyOnly marks a projection invented for a pure COUNT: the column
	// exists to pace the cursor and count rows, its values are never read,
	// so it must not disqualify dictionary-id evaluation below.
	proxyOnly := false
	if agg != nil && len(columns) == 0 {
		// An aggregation with no explicit projection reads only its own
		// columns; a pure COUNT reads none, so any one column (the
		// narrowest proxy for the record count) stands in.
		if columns = agg.Columns(nil); len(columns) == 0 {
			proxyOnly = true
			if fc := scan.NewPlanner(pred).FilterColumns(); len(fc) > 0 {
				columns = fc[:1]
			} else if len(schema.Fields) > 0 {
				columns = []string{schema.Fields[0].Name}
			}
		}
	}
	proj := schema
	if len(columns) > 0 {
		if proj, err = schema.Project(columns...); err != nil {
			return nil, err
		}
	} else {
		columns = schema.FieldNames()
	}
	// Filter and aggregate columns the projection does not cover are opened
	// as extra cursors after the projected ones; they feed predicate
	// evaluation and aggregate folding but never appear in a returned
	// record. Columns dedups against the slice it extends.
	allCols := append([]string(nil), columns...)
	if pred != nil {
		for _, col := range pred.Columns(nil) {
			if schema.Field(col) == nil {
				return nil, fmt.Errorf("core: predicate references unknown column %q", col)
			}
		}
		allCols = pred.Columns(allCols)
	}
	if agg != nil {
		for _, col := range agg.Columns(nil) {
			if schema.Field(col) == nil {
				return nil, fmt.Errorf("core: aggregate references unknown column %q", col)
			}
		}
		allCols = agg.Columns(allCols)
	}
	r := &Reader{
		fs:             fs,
		node:           node,
		stats:          stats,
		lazy:           spec.Lazy,
		elide:          fileTier,
		noBloom:        !spec.Bloom(),
		planner:        scan.NewPlanner(pred),
		cache:          cache,
		vectorize:      spec.Vectorize() && (pred != nil || agg != nil),
		vecCache:       vcache,
		schema:         schema,
		proj:           proj,
		columns:        columns,
		allCols:        allCols,
		agg:            agg,
		dirs:           dirs,
		delFiles:       dels,
		dirIdx:         -1,
		lastCounted:    -1,
		lastCountedDir: -1,
	}
	r.planner.SetBloom(spec.Bloom())
	if agg != nil {
		r.aggState = scan.NewAggState(agg)
		r.aggCols = agg.Columns(nil)
	}
	if r.vectorize {
		r.probeOnly = make(map[string]bool)
		for _, col := range scan.ProbeOnlyColumns(pred) {
			r.probeOnly[col] = true
		}
		if !proxyOnly {
			for _, col := range columns {
				delete(r.probeOnly, col)
			}
		}
		// Dictionary-id evaluation: answerable columns nothing else reads
		// by value. Projected and aggregated columns decode value vectors,
		// so they are excluded.
		r.idOnly = make(map[string]bool)
		for _, col := range scan.IDOnlyColumns(pred) {
			r.idOnly[col] = true
		}
		if !proxyOnly {
			for _, col := range columns {
				delete(r.idOnly, col)
			}
		}
		for _, col := range r.aggCols {
			delete(r.idOnly, col)
		}
	}
	r.lrec = &LazyRecord{reader: r}
	r.eval = evalCtx{r}
	if err := r.nextDir(); err != nil {
		return nil, err
	}
	return r, nil
}

// nextDir closes the current split-directory's cursors and opens the next
// one the planner's file tier cannot disprove. Directories whose
// filter-column aggregates prove NoMatch are crossed without building any
// group index or reading any data byte — only footers and stats sections
// (uncharged metadata) are touched.
func (r *Reader) nextDir() error {
	for {
		r.releaseBatch()
		r.foldCursorStats()
		for _, c := range r.cursors {
			c.hr.Close()
		}
		r.cursors = nil
		r.byName = nil
		r.vecOK = false
		r.dirIdx++
		if r.dirIdx >= len(r.dirs) {
			r.done = true
			return nil
		}
		dir := r.dirs[r.dirIdx]
		if r.dirIdx > 0 {
			// Subsequent directories must agree on the schema.
			s, err := readSplitSchema(r.fs, dir)
			if err != nil {
				return err
			}
			if !s.Equal(r.schema) {
				return fmt.Errorf("core: split-directory %s schema differs from %s", dir, r.dirs[0])
			}
		}
		pruned, err := r.openDir(dir)
		if err != nil {
			return err
		}
		if pruned {
			continue
		}
		if r.dels, err = loadDelSet(r.fs, delFileAt(r.delFiles, r.dirIdx)); err != nil {
			return err
		}
		if r.stats != nil && isFreshPartition(dir) {
			r.stats.FreshPartitionsScanned++
		}
		r.curPos = -1
		r.pruneValidTo = 0
		r.vecOK = r.vecEligible()
		return nil
	}
}

// openDir opens dir's column files and builds cursors, unless the file
// pruning tier proves the directory irrelevant first (pruned=true, no
// cursors left open).
func (r *Reader) openDir(dir string) (pruned bool, err error) {
	var cpu *sim.CPUStats
	if r.stats != nil {
		cpu = &r.stats.CPU
	}
	selective := r.planner.Predicate() != nil
	ropts, collide := dirCursorOptions(r.fs, len(r.allCols), selective)
	ropts.NoBloom = r.noBloom
	files := make([]*hdfs.FileReader, 0, len(r.allCols))
	closeAll := func() {
		for _, hr := range files {
			hr.Close()
		}
	}
	for _, col := range r.allCols {
		hr, err := r.fs.Open(dir+"/"+col, r.node)
		if err != nil {
			closeAll()
			return false, fmt.Errorf("core: opening column %q: %w", col, err)
		}
		files = append(files, hr)
	}
	// File tier: consult the filter columns' whole-file aggregates before
	// any reader parses a header or charges a byte. Disabled together with
	// scheduler elision (scan.SetElision), which restores the
	// group-tier-only baseline for comparison.
	if selective && r.elide && r.pruneDirFiles(files) {
		closeAll()
		return true, nil
	}
	for i, col := range r.allCols {
		hr := files[i]
		c := &cursor{name: col, schema: r.schema.Field(col), hr: hr, cachedPos: -1}
		if r.vectorize && r.stats != nil {
			// Per-cursor physical buckets: batch decodes fan per-column
			// work across goroutines, so each stream charges its own
			// counters (foldCursorStats folds them behind the barriers).
			hr.SetStats(&c.phys.IO)
			if r.cache != nil {
				hr.SetCache(r.cache, &c.phys)
			}
		} else {
			if r.stats != nil {
				hr.SetStats(&r.stats.IO)
			}
			if r.cache != nil {
				hr.SetCache(r.cache, r.stats)
			}
		}
		opts := ropts
		if collide > 0 {
			opts.OnRefill = func(n, cur int) {
				hr.ChargeInterleaved(int64(float64(n)*collide*float64(sim.ReadaheadBytes)/float64(cur) + 0.5))
			}
		}
		cr, err := colfile.NewReaderOpts(hr, r.schema.Field(col), opts, cpu)
		if err != nil {
			closeAll()
			return false, fmt.Errorf("core: column %q: %w", col, err)
		}
		c.r = cr
		r.cursors = append(r.cursors, c)
	}
	r.byName = make(map[string]*cursor, len(r.cursors))
	for _, c := range r.cursors {
		r.byName[c.name] = c
	}
	r.total = r.cursors[0].r.Total()
	for _, c := range r.cursors {
		if c.r.Total() != r.total {
			return false, fmt.Errorf("core: column %q has %d records, %q has %d", c.name, c.r.Total(), r.cursors[0].name, r.total)
		}
	}
	return false, nil
}

// pruneDirFiles decides the file tier for the already-opened (but not yet
// parsed) column files: their whole-file aggregates are read from footers
// and handed to the planner. On a NoMatch proof the pruned records and
// skipped files are counted; the split scheduler usually elides such
// directories first, but the reader tier still fires when elision is off,
// when DirsPerSplit groups directories, and for direct Reader use.
func (r *Reader) pruneDirFiles(files []*hdfs.FileReader) bool {
	stats := func(col string) *scan.ColStats {
		for i, name := range r.allCols {
			if name != col {
				continue
			}
			st, err := colfile.FileStats(files[i], r.schema.Field(col))
			if err != nil {
				return nil
			}
			return st
		}
		return nil
	}
	recordCount := func() int64 {
		if len(files) == 0 {
			return 0
		}
		n, _ := colfile.RecordCount(files[0])
		return n
	}
	pruned, rows := r.planner.PruneFileRows(stats, recordCount)
	if !pruned {
		return false
	}
	if r.stats != nil {
		r.stats.FilesPruned += int64(len(files))
		r.stats.RecordsPruned += rows
	}
	return true
}

// Next implements mapred.RecordReader. In lazy mode the returned Record is
// reused across calls (like Hadoop Writables): use it before the next call.
// With a predicate set, non-qualifying records are crossed inside this
// loop: whole groups by zone-map pruning, then — vectorized — whole batches
// evaluated at once with only the selected rows surfacing here, or —
// scalar — single records after evaluating only the filter columns.
func (r *Reader) Next() (any, any, bool, error) {
	for {
		if r.done {
			return nil, nil, false, nil
		}
		if b := r.batch; b != nil {
			// Drain the evaluated batch: each selected row surfaces as one
			// record; exhaustion advances past the batch and re-enters the
			// planning loop below.
			idx := b.sel.Next(b.next)
			if idx < 0 {
				r.curPos = b.end - 1
				r.releaseBatch()
				continue
			}
			b.next = idx + 1
			r.curPos = b.start + int64(idx)
			break
		}
		if r.curPos+1 >= r.total {
			if err := r.nextDir(); err != nil {
				return nil, nil, false, err
			}
			continue
		}
		if r.vecOK && r.planner.Predicate() != nil {
			if err := r.vecAdvance(); err != nil {
				return nil, nil, false, err
			}
			continue
		}
		r.curPos++
		if r.dels.has(r.curPos) {
			continue
		}
		if r.planner.Predicate() == nil {
			break
		}
		ok, err := r.qualifies()
		if err != nil {
			return nil, nil, false, err
		}
		if ok {
			break
		}
	}
	if r.lazy {
		return nil, r.lrec, true, nil
	}
	// Late materialization: cursors jump straight to the qualifying
	// record, so columns of filtered records are skipped, never decoded.
	rec := serde.NewRecord(r.proj)
	for i := range r.columns {
		v, err := r.valueAt(r.cursors[i])
		if err != nil {
			return nil, nil, false, err
		}
		rec.SetAt(i, v)
	}
	if r.stats != nil {
		r.stats.CPU.RecordsMaterialized++
	}
	return nil, rec, true, nil
}

// Close implements mapred.RecordReader.
func (r *Reader) Close() error {
	r.releaseBatch()
	r.foldCursorStats()
	for _, c := range r.cursors {
		c.hr.Close()
	}
	r.cursors = nil
	r.byName = nil
	r.done = true
	return nil
}

// Schema returns the projected record schema.
func (r *Reader) Schema() *serde.Schema { return r.proj }

// readerMemoryBudget caps the total buffer memory of one CIF reader; wide
// projections divide it among their column streams.
const readerMemoryBudget = 32 << 20

// dirCursorOptions computes the shared physical model of one cursor set
// over a split-directory — the same for a solo Reader and a shared scan,
// so co-scheduling never changes how a byte is priced.
//
// Column streams refill at readahead granularity: large enough to amortize
// the inter-file arm movement of a multi-column scan (the paper's ~25%
// full-scan overhead vs SEQ), small enough that skip-list jumps beyond it
// still eliminate I/O. A fixed reader memory budget is divided among the
// streams, so very wide records get smaller buffers and proportionally more
// arm movement — the growing column-storage overhead the paper measures in
// Appendix B.5.
//
// With a predicate set, adaptive readahead applies: a selective scan jumps
// between qualifying groups instead of streaming, so a full window mostly
// prefetches bytes the next jump discards. Once a jump is observed, refills
// shrink below the transfer unit — trading unit-granular charges for the
// chance that the next jump clears a whole unit — and sequential refills
// ramp back to the full window, so a dense (unselective) predicate costs
// exactly a plain scan.
//
// collide is the probability a refill seeks because another stream moved
// the arm of this stream's disk since its last refill. With blocks spread
// round-robin over D disks and S streams refilling in rotation, that
// probability is 1-(1-1/D)^(S-1): negligible for two streams, near-certain
// for the thirteen-column full scan (DESIGN.md, decision 4; this is why the
// paper's CIF full-record scan trails SEQ by ~25%). Charged per byte —
// normalized to the model's readahead window so smaller buffers cost
// proportionally more (the ramp reports its granularity per refill) — so it
// extrapolates exactly across scales.
func dirCursorOptions(fs *hdfs.FileSystem, streams int, selective bool) (colfile.ReaderOptions, float64) {
	chunk := sim.ReadaheadBytes
	if budget := readerMemoryBudget / streams; chunk > budget {
		chunk = budget
	}
	if tu := int(fs.Config().TransferUnit); chunk < tu {
		chunk = tu
	}
	ropts := colfile.ReaderOptions{Chunk: chunk}
	if selective && sim.SelectiveReadaheadBytes < chunk {
		ropts.ChunkMin = sim.SelectiveReadaheadBytes
	}
	return ropts, interleaveFactor(streams, fs.Config().DisksPerNode)
}

// interleaveFactor is the probability that a stream's refill requires an
// arm movement, given streams concurrent streams over disks spindles.
func interleaveFactor(streams, disks int) float64 {
	if streams <= 1 {
		return 0
	}
	if disks < 1 {
		disks = 1
	}
	p := 1.0
	for i := 0; i < streams-1; i++ {
		p *= 1 - 1/float64(disks)
	}
	return 1 - p
}

// cursorFor returns the cursor of an open column (projected or
// filter-only).
func (r *Reader) cursorFor(name string) (*cursor, error) {
	if c, ok := r.byName[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("core: column %q is not in the projection %v", name, r.allCols)
}
