package core

import (
	"fmt"
	"sort"
	"strings"

	"colmr/internal/colfile"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// SetColumns pushes a column projection into CIF for a job, the analogue of
//
//	ColumnInputFormat.setColumns(job, "url, metadata");
//
// from Section 4.2. Only the named columns' files will be opened.
func SetColumns(conf *mapred.JobConf, columns ...string) {
	conf.Set(ColumnsProp, strings.Join(columns, ","))
}

// SetLazy selects lazy record construction for a job (Section 5).
func SetLazy(conf *mapred.JobConf, lazy bool) {
	if lazy {
		conf.Set(LazyProp, "true")
	} else {
		conf.Set(LazyProp, "false")
	}
}

// Split is a CIF split: one or more whole split-directories.
type Split struct {
	Dirs []string
	// Columns is the projection captured at split-generation time, used
	// for locality ranking (only projected files matter).
	Columns []string
}

// String implements mapred.Split.
func (s *Split) String() string { return strings.Join(s.Dirs, ",") }

// Hosts implements mapred.Split: nodes are ranked by how many of the
// split's (projected) column-file bytes they hold locally. With the column
// placement policy installed, the top candidates hold every block of every
// file.
func (s *Split) Hosts(fs *hdfs.FileSystem) []hdfs.NodeID {
	local := map[hdfs.NodeID]int64{}
	for _, dir := range s.Dirs {
		for _, p := range s.files(fs, dir) {
			locs, err := fs.BlockLocations(p)
			if err != nil {
				continue
			}
			size := fs.TotalSize(p)
			nblocks := int64(len(locs))
			if nblocks == 0 {
				continue
			}
			per := size / nblocks
			for _, nodes := range locs {
				for _, n := range nodes {
					local[n] += per
				}
			}
		}
	}
	out := make([]hdfs.NodeID, 0, len(local))
	for n := range local {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if local[out[i]] != local[out[j]] {
			return local[out[i]] > local[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// files returns the column-file paths the split will read in dir.
func (s *Split) files(fs *hdfs.FileSystem, dir string) []string {
	if len(s.Columns) > 0 {
		out := make([]string, len(s.Columns))
		for i, c := range s.Columns {
			out[i] = dir + "/" + c
		}
		return out
	}
	infos, err := fs.List(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, fi := range infos {
		if !fi.IsDir && fi.Name() != SchemaFile {
			out = append(out, fi.Path)
		}
	}
	return out
}

// InputFormat is CIF, the ColumnInputFormat.
type InputFormat struct {
	// DirsPerSplit assigns this many split-directories to one map task
	// (Section 4.2: "CIF can actually assign one or more split-directories
	// to a single split"). Default 1.
	DirsPerSplit int
}

// Splits implements mapred.InputFormat.
func (f *InputFormat) Splits(fs *hdfs.FileSystem, conf *mapred.JobConf) ([]mapred.Split, error) {
	per := f.DirsPerSplit
	if per < 1 {
		per = 1
	}
	columns := projection(conf)
	// Locality ranks by the files a map task will actually open: the
	// projection plus any filter-only predicate columns (Columns dedups
	// against the slice it extends).
	if pred, err := scan.FromConf(conf); err == nil && pred != nil && len(columns) > 0 {
		columns = pred.Columns(columns)
	}
	var out []mapred.Split
	for _, dataset := range conf.InputPaths {
		dirs, err := listSplitDirs(fs, dataset)
		if err != nil {
			return nil, err
		}
		for i := 0; i < len(dirs); i += per {
			j := i + per
			if j > len(dirs) {
				j = len(dirs)
			}
			out = append(out, &Split{Dirs: dirs[i:j], Columns: columns})
		}
	}
	return out, nil
}

func projection(conf *mapred.JobConf) []string {
	raw := strings.TrimSpace(conf.Get(ColumnsProp))
	if raw == "" {
		return nil
	}
	parts := strings.Split(raw, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Open implements mapred.InputFormat.
func (f *InputFormat) Open(fs *hdfs.FileSystem, conf *mapred.JobConf, split mapred.Split, node hdfs.NodeID, stats *sim.TaskStats) (mapred.RecordReader, error) {
	csplit, ok := split.(*Split)
	if !ok {
		return nil, fmt.Errorf("core: unexpected split type %T", split)
	}
	if len(csplit.Dirs) == 0 {
		return nil, fmt.Errorf("core: empty split")
	}
	columns := projection(conf)
	if columns == nil {
		columns = csplit.Columns
	}
	lazy := conf.Get(LazyProp) == "true"
	pred, err := scan.FromConf(conf)
	if err != nil {
		return nil, err
	}
	return newReader(fs, csplit.Dirs, columns, lazy, pred, node, stats)
}

// Reader iterates the records of a CIF split. It is also usable directly
// (outside MapReduce) for scans. With a predicate set it returns only
// qualifying records (see scanexec.go).
type Reader struct {
	fs    *hdfs.FileSystem
	node  hdfs.NodeID
	stats *sim.TaskStats
	lazy  bool
	pred  scan.Predicate

	schema  *serde.Schema // full dataset schema
	proj    *serde.Schema // projected record schema
	columns []string      // projected columns (cursor prefix)
	allCols []string      // projected plus filter-only predicate columns

	dirs    []string
	dirIdx  int
	cursors []*cursor
	byName  map[string]*cursor
	total   int64 // records in the open split-directory
	curPos  int64 // index of the record most recently returned by Next
	done    bool
	// evalGet is the column accessor predicate evaluation uses, built
	// once per reader (Eval runs per record; the scan loop is hot).
	evalGet scan.Getter
	// pruneValidTo bounds the records covered by the last MayMatch
	// zone-map verdict; pruning re-runs only once curPos crosses it.
	pruneValidTo int64

	lrec *LazyRecord
	// lastCounted/lastCountedDir track the most recent record counted as
	// materialized in lazy mode (first Get per record increments the
	// counter once).
	lastCounted    int64
	lastCountedDir int
}

// cursor is one column's file reader plus the per-record value cache that
// makes repeated Get calls on the same record free.
type cursor struct {
	name      string
	schema    *serde.Schema
	hr        *hdfs.FileReader
	r         colfile.Reader
	cached    any
	cachedPos int64
}

func newReader(fs *hdfs.FileSystem, dirs []string, columns []string, lazy bool, pred scan.Predicate, node hdfs.NodeID, stats *sim.TaskStats) (*Reader, error) {
	schema, err := readSplitSchema(fs, dirs[0])
	if err != nil {
		return nil, err
	}
	proj := schema
	if len(columns) > 0 {
		if proj, err = schema.Project(columns...); err != nil {
			return nil, err
		}
	} else {
		columns = schema.FieldNames()
	}
	// Filter columns the projection does not cover are opened as extra
	// cursors after the projected ones; they feed predicate evaluation but
	// never appear in the returned record. Columns dedups against the
	// slice it extends.
	allCols := append([]string(nil), columns...)
	if pred != nil {
		for _, col := range pred.Columns(nil) {
			if schema.Field(col) == nil {
				return nil, fmt.Errorf("core: predicate references unknown column %q", col)
			}
		}
		allCols = pred.Columns(allCols)
	}
	r := &Reader{
		fs:             fs,
		node:           node,
		stats:          stats,
		lazy:           lazy,
		pred:           pred,
		schema:         schema,
		proj:           proj,
		columns:        columns,
		allCols:        allCols,
		dirs:           dirs,
		dirIdx:         -1,
		lastCounted:    -1,
		lastCountedDir: -1,
	}
	r.lrec = &LazyRecord{reader: r}
	r.evalGet = func(col string) (any, error) {
		c, err := r.cursorFor(col)
		if err != nil {
			return nil, err
		}
		return r.valueAt(c)
	}
	if err := r.nextDir(); err != nil {
		return nil, err
	}
	return r, nil
}

// nextDir closes the current split-directory's cursors and opens the next.
func (r *Reader) nextDir() error {
	for _, c := range r.cursors {
		c.hr.Close()
	}
	r.cursors = nil
	r.byName = nil
	r.dirIdx++
	if r.dirIdx >= len(r.dirs) {
		r.done = true
		return nil
	}
	dir := r.dirs[r.dirIdx]
	if r.dirIdx > 0 {
		// Subsequent directories must agree on the schema.
		s, err := readSplitSchema(r.fs, dir)
		if err != nil {
			return err
		}
		if !s.Equal(r.schema) {
			return fmt.Errorf("core: split-directory %s schema differs from %s", dir, r.dirs[0])
		}
	}
	var cpu *sim.CPUStats
	if r.stats != nil {
		cpu = &r.stats.CPU
	}
	// Column streams refill at readahead granularity: large enough to
	// amortize the inter-file arm movement of a multi-column scan (the
	// paper's ~25% full-scan overhead vs SEQ), small enough that skip-list
	// jumps beyond it still eliminate I/O. A fixed reader memory budget is
	// divided among the streams, so very wide records get smaller buffers
	// and proportionally more arm movement — the growing column-storage
	// overhead the paper measures in Appendix B.5.
	chunk := sim.ReadaheadBytes
	if budget := readerMemoryBudget / len(r.allCols); chunk > budget {
		chunk = budget
	}
	if tu := int(r.fs.Config().TransferUnit); chunk < tu {
		chunk = tu
	}
	// A refill seeks only when another stream moved the arm of this
	// stream's disk since its last refill. With blocks spread round-robin
	// over D disks and S streams refilling in rotation, that probability
	// is 1-(1-1/D)^(S-1): negligible for two streams, near-certain for
	// the thirteen-column full scan (DESIGN.md, decision 4; this is why
	// the paper's CIF full-record scan trails SEQ by ~25%). Charged per
	// byte — normalized to the model's readahead window so smaller
	// buffers cost proportionally more — so it extrapolates exactly
	// across scales.
	collide := interleaveFactor(len(r.allCols), r.fs.Config().DisksPerNode)
	chargePerByte := collide * float64(sim.ReadaheadBytes) / float64(chunk)
	for _, col := range r.allCols {
		hr, err := r.fs.Open(dir+"/"+col, r.node)
		if err != nil {
			return fmt.Errorf("core: opening column %q: %w", col, err)
		}
		if r.stats != nil {
			hr.SetStats(&r.stats.IO)
		}
		opts := colfile.ReaderOptions{Chunk: chunk}
		if chargePerByte > 0 {
			opts.OnRefill = func(n int) {
				hr.ChargeInterleaved(int64(float64(n)*chargePerByte + 0.5))
			}
		}
		cr, err := colfile.NewReaderOpts(hr, r.schema.Field(col), opts, cpu)
		if err != nil {
			return fmt.Errorf("core: column %q: %w", col, err)
		}
		r.cursors = append(r.cursors, &cursor{name: col, schema: r.schema.Field(col), hr: hr, r: cr, cachedPos: -1})
	}
	r.byName = make(map[string]*cursor, len(r.cursors))
	for _, c := range r.cursors {
		r.byName[c.name] = c
	}
	r.total = r.cursors[0].r.Total()
	for _, c := range r.cursors {
		if c.r.Total() != r.total {
			return fmt.Errorf("core: column %q has %d records, %q has %d", c.name, c.r.Total(), r.cursors[0].name, r.total)
		}
	}
	r.curPos = -1
	r.pruneValidTo = 0
	return nil
}

// Next implements mapred.RecordReader. In lazy mode the returned Record is
// reused across calls (like Hadoop Writables): use it before the next call.
// With a predicate set, non-qualifying records are crossed inside this
// loop: whole groups by zone-map pruning, single records after evaluating
// only the filter columns.
func (r *Reader) Next() (any, any, bool, error) {
	for {
		if r.done {
			return nil, nil, false, nil
		}
		if r.curPos+1 >= r.total {
			if err := r.nextDir(); err != nil {
				return nil, nil, false, err
			}
			continue
		}
		r.curPos++
		if r.pred == nil {
			break
		}
		ok, err := r.qualifies()
		if err != nil {
			return nil, nil, false, err
		}
		if ok {
			break
		}
	}
	if r.lazy {
		return nil, r.lrec, true, nil
	}
	// Late materialization: cursors jump straight to the qualifying
	// record, so columns of filtered records are skipped, never decoded.
	rec := serde.NewRecord(r.proj)
	for i := range r.columns {
		v, err := r.valueAt(r.cursors[i])
		if err != nil {
			return nil, nil, false, err
		}
		rec.SetAt(i, v)
	}
	if r.stats != nil {
		r.stats.CPU.RecordsMaterialized++
	}
	return nil, rec, true, nil
}

// Close implements mapred.RecordReader.
func (r *Reader) Close() error {
	for _, c := range r.cursors {
		c.hr.Close()
	}
	r.cursors = nil
	r.byName = nil
	r.done = true
	return nil
}

// Schema returns the projected record schema.
func (r *Reader) Schema() *serde.Schema { return r.proj }

// readerMemoryBudget caps the total buffer memory of one CIF reader; wide
// projections divide it among their column streams.
const readerMemoryBudget = 32 << 20

// interleaveFactor is the probability that a stream's refill requires an
// arm movement, given streams concurrent streams over disks spindles.
func interleaveFactor(streams, disks int) float64 {
	if streams <= 1 {
		return 0
	}
	if disks < 1 {
		disks = 1
	}
	p := 1.0
	for i := 0; i < streams-1; i++ {
		p *= 1 - 1/float64(disks)
	}
	return 1 - p
}

// cursorFor returns the cursor of an open column (projected or
// filter-only).
func (r *Reader) cursorFor(name string) (*cursor, error) {
	if c, ok := r.byName[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("core: column %q is not in the projection %v", name, r.allCols)
}
