package core

import (
	"fmt"

	"colmr/internal/colfile"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Writer is the ColumnOutputFormat (COF) loader: it horizontally partitions
// the record stream into split-directories and writes one column file per
// top-level field (Figure 4).
type Writer struct {
	fs      *hdfs.FileSystem
	dataset string
	schema  *serde.Schema
	opts    LoadOptions
	stats   *sim.TaskStats

	splitIdx   int
	splitCount int64
	count      int64

	files []*hdfs.FileWriter
	cols  []colfile.Writer
}

// NewWriter starts a COF load into the dataset directory, which must not
// already contain split-directories.
func NewWriter(fs *hdfs.FileSystem, dataset string, schema *serde.Schema, opts LoadOptions, stats *sim.TaskStats) (*Writer, error) {
	if err := opts.Validate(schema); err != nil {
		return nil, err
	}
	if opts.SplitBytes == 0 && opts.SplitRecords == 0 {
		opts.SplitBytes = int64(len(schema.Fields)) * fs.Config().BlockSize
	}
	fs.MkdirAll(dataset)
	w := &Writer{fs: fs, dataset: dataset, schema: schema, opts: opts, stats: stats, splitIdx: -1}
	return w, nil
}

// Append writes one record, rotating split-directories as bounds fill.
func (w *Writer) Append(rec *serde.GenericRecord) error {
	if w.cols == nil {
		if err := w.openSplit(); err != nil {
			return err
		}
	}
	if !rec.Schema().Equal(w.schema) {
		return fmt.Errorf("core: record schema does not match dataset schema")
	}
	for i := range w.schema.Fields {
		v := rec.GetAt(i)
		if v == nil {
			return fmt.Errorf("core: field %q is unset", w.schema.Fields[i].Name)
		}
		if err := w.cols[i].Append(v); err != nil {
			return fmt.Errorf("core: column %q: %w", w.schema.Fields[i].Name, err)
		}
	}
	w.splitCount++
	w.count++
	if w.splitFull() {
		return w.closeSplit()
	}
	return nil
}

// Tell reports where the next Append will land: the split-directory path
// and the record's ordinal within it. Callers that must address written
// records later (e.g. ingest compaction rebuilding its key index) call
// Tell before each Append.
func (w *Writer) Tell() (string, int64) {
	if w.cols == nil {
		// Rotation (or first write) pending: the next Append opens a fresh
		// split-directory.
		return w.dataset + "/" + splitDirName(w.splitIdx+1), 0
	}
	return w.dataset + "/" + splitDirName(w.splitIdx), w.splitCount
}

func (w *Writer) splitFull() bool {
	if w.opts.SplitRecords > 0 && w.splitCount >= w.opts.SplitRecords {
		return true
	}
	if w.opts.SplitBytes > 0 {
		var total int64
		for _, f := range w.files {
			total += f.Size()
		}
		return total >= w.opts.SplitBytes
	}
	return false
}

func (w *Writer) openSplit() error {
	w.splitIdx++
	w.splitCount = 0
	dir := w.dataset + "/" + splitDirName(w.splitIdx)
	schemaWriter, err := w.fs.Create(dir+"/"+SchemaFile, w.opts.WriterNode)
	if err != nil {
		return err
	}
	if w.stats != nil {
		schemaWriter.SetStats(&w.stats.IO)
	}
	if _, err := schemaWriter.Write([]byte(w.schema.String())); err != nil {
		return err
	}
	if err := schemaWriter.Close(); err != nil {
		return err
	}
	w.files = w.files[:0]
	w.cols = w.cols[:0]
	for _, f := range w.schema.Fields {
		fw, err := w.fs.Create(dir+"/"+f.Name, w.opts.WriterNode)
		if err != nil {
			return err
		}
		if w.stats != nil {
			fw.SetStats(&w.stats.IO)
		}
		var cpu *sim.CPUStats
		if w.stats != nil {
			cpu = &w.stats.CPU
		}
		cw, err := colfile.NewWriter(fw, f.Type, w.opts.layoutFor(f.Name), cpu)
		if err != nil {
			return err
		}
		w.files = append(w.files, fw)
		w.cols = append(w.cols, cw)
	}
	return nil
}

func (w *Writer) closeSplit() error {
	if w.cols == nil {
		return nil
	}
	for i, cw := range w.cols {
		if err := cw.Close(); err != nil {
			return err
		}
		if err := w.files[i].Close(); err != nil {
			return err
		}
	}
	w.cols = nil
	w.files = nil
	return nil
}

// Count returns the number of records appended.
func (w *Writer) Count() int64 { return w.count }

// Close finalizes the last split-directory.
func (w *Writer) Close() error { return w.closeSplit() }

// Load converts a dataset readable by any InputFormat into a CIF dataset —
// the paper's parallel loader (Section 4.2; load costs are Table 2's
// experiment). It returns the number of records loaded.
func Load(fs *hdfs.FileSystem, in mapred.InputFormat, conf *mapred.JobConf, schema *serde.Schema, dest string, opts LoadOptions, stats *sim.TaskStats) (int64, error) {
	w, err := NewWriter(fs, dest, schema, opts, stats)
	if err != nil {
		return 0, err
	}
	splits, err := in.Splits(fs, conf)
	if err != nil {
		return 0, err
	}
	for _, sp := range splits {
		rr, err := in.Open(fs, conf, sp, opts.WriterNode, stats)
		if err != nil {
			return 0, err
		}
		for {
			_, v, ok, err := rr.Next()
			if err != nil {
				rr.Close()
				return 0, err
			}
			if !ok {
				break
			}
			rec, ok := v.(*serde.GenericRecord)
			if !ok {
				rr.Close()
				return 0, fmt.Errorf("core: load: input produced %T, want a record", v)
			}
			if err := w.Append(rec); err != nil {
				rr.Close()
				return 0, err
			}
		}
		if err := rr.Close(); err != nil {
			return 0, err
		}
	}
	return w.Count(), w.Close()
}

// AddColumn appends a derived column to an existing CIF dataset — the
// schema-evolution operation Section 4.3 highlights as cheap for CIF
// (adding one file per split-directory) and prohibitively expensive for
// RCFile (rewriting every block). compute receives each record projected
// onto inputCols and returns the new column's value.
func AddColumn(fs *hdfs.FileSystem, dataset, name string, colSchema *serde.Schema, layout colfile.Options, inputCols []string, compute func(rec serde.Record) (any, error), stats *sim.TaskStats) error {
	schema, err := ReadSchema(fs, dataset)
	if err != nil {
		return err
	}
	if schema.FieldIndex(name) >= 0 {
		return fmt.Errorf("core: dataset already has a column %q", name)
	}
	newSchema := serde.RecordOf(schema.Name, append(append([]serde.Field{}, schema.Fields...), serde.Field{Name: name, Type: colSchema})...)
	if err := newSchema.Validate(); err != nil {
		return err
	}

	dirs, err := listSplitDirs(fs, dataset)
	if err != nil {
		return err
	}
	in := &InputFormat{}
	conf := &mapred.JobConf{InputPaths: []string{dataset}}
	if len(inputCols) > 0 {
		SetColumns(conf, inputCols...)
	}
	for _, dir := range dirs {
		split := &Split{Dirs: []string{dir}, Columns: inputCols}
		rr, err := in.Open(fs, conf, split, hdfs.AnyNode, stats)
		if err != nil {
			return err
		}
		fw, err := fs.Create(dir+"/"+name, hdfs.AnyNode)
		if err != nil {
			return err
		}
		if stats != nil {
			fw.SetStats(&stats.IO)
		}
		var cpu *sim.CPUStats
		if stats != nil {
			cpu = &stats.CPU
		}
		cw, err := colfile.NewWriter(fw, colSchema, layout, cpu)
		if err != nil {
			return err
		}
		for {
			_, v, ok, err := rr.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			nv, err := compute(v.(serde.Record))
			if err != nil {
				return err
			}
			if err := cw.Append(nv); err != nil {
				return err
			}
		}
		if err := rr.Close(); err != nil {
			return err
		}
		if err := cw.Close(); err != nil {
			return err
		}
		if err := fw.Close(); err != nil {
			return err
		}
		// Refresh the split's schema file.
		if err := fs.Remove(dir + "/" + SchemaFile); err != nil {
			return err
		}
		if err := fs.WriteFile(dir+"/"+SchemaFile, []byte(newSchema.String()), hdfs.AnyNode); err != nil {
			return err
		}
	}
	return nil
}
