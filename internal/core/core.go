package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"colmr/internal/colfile"
	"colmr/internal/hdfs"
	"colmr/internal/serde"
)

// SchemaFile is the per-split-directory schema file name. The leading
// underscore keeps it disjoint from column names, which are identifiers.
const SchemaFile = "_schema"

// Legacy job configuration properties interpreted by CIF — the
// serialization format for string-typed inputs, consulted only when the
// conf carries no typed scan.Spec (see resolveSpec in cif.go).
const (
	// ColumnsProp holds the comma-separated column projection.
	ColumnsProp = "cif.columns"
	// LazyProp selects lazy record construction ("true"/"false").
	LazyProp = "cif.lazy"
)

// splitDirName formats the paper's split-directory naming convention,
// which hdfs.ColumnPlacementPolicy keys on.
func splitDirName(i int) string { return "s" + strconv.Itoa(i) }

// listSplitDirs returns a dataset's split-directories in numeric order.
func listSplitDirs(fs *hdfs.FileSystem, dataset string) ([]string, error) {
	infos, err := fs.List(dataset)
	if err != nil {
		return nil, err
	}
	type entry struct {
		path string
		num  int
	}
	var dirs []entry
	for _, fi := range infos {
		if !fi.IsDir {
			continue
		}
		name := fi.Name()
		if _, ok := hdfs.SplitDirOf(fi.Path); !ok {
			continue
		}
		n, err := strconv.Atoi(strings.TrimPrefix(name, "s"))
		if err != nil {
			continue
		}
		dirs = append(dirs, entry{fi.Path, n})
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("core: %s contains no split-directories", dataset)
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].num < dirs[j].num })
	out := make([]string, len(dirs))
	for i, d := range dirs {
		out[i] = d.path
	}
	return out, nil
}

// ReadSchema returns the schema of a CIF dataset (from the first partition
// of its manifest, or its first split-directory when it publishes none).
func ReadSchema(fs *hdfs.FileSystem, dataset string) (*serde.Schema, error) {
	layout, err := datasetLayout(fs, dataset)
	if err != nil {
		return nil, err
	}
	return readSplitSchema(fs, layout.dirs[0])
}

func readSplitSchema(fs *hdfs.FileSystem, dir string) (*serde.Schema, error) {
	data, err := fs.ReadFile(dir + "/" + SchemaFile)
	if err != nil {
		return nil, fmt.Errorf("core: reading %s/%s: %w", dir, SchemaFile, err)
	}
	s, err := serde.Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("core: parsing schema in %s: %w", dir, err)
	}
	return s, nil
}

// LoadOptions configures a COF writer.
type LoadOptions struct {
	// SplitRecords caps records per split-directory. Zero means rotation
	// is driven by SplitBytes.
	SplitRecords int64
	// SplitBytes caps the total bytes of one split-directory (default:
	// number-of-columns x HDFS block size, the paper's geometry where
	// each column file fills about one block).
	SplitBytes int64
	// Default is the column layout applied to every column without an
	// override.
	Default colfile.Options
	// PerColumn overrides layouts for specific columns (e.g. the paper's
	// metadata column as DCSL).
	PerColumn map[string]colfile.Options
	// WriterNode is the node performing the load (hdfs.AnyNode for a
	// cluster-wide loader).
	WriterNode hdfs.NodeID
}

func (o LoadOptions) layoutFor(col string) colfile.Options {
	if opt, ok := o.PerColumn[col]; ok {
		return opt
	}
	return o.Default
}

// Validate checks the options against a schema.
func (o LoadOptions) Validate(schema *serde.Schema) error {
	if schema == nil || schema.Kind != serde.KindRecord {
		return fmt.Errorf("core: COF requires a record schema")
	}
	if err := schema.Validate(); err != nil {
		return err
	}
	for col, opt := range o.PerColumn {
		fs := schema.Field(col)
		if fs == nil {
			return fmt.Errorf("core: layout override for unknown column %q", col)
		}
		if opt.Layout == colfile.DCSL &&
			fs.Kind != serde.KindMap && fs.Kind != serde.KindString && fs.Kind != serde.KindBytes {
			return fmt.Errorf("core: DCSL layout on non-dictionary column %q (map, string, and bytes only)", col)
		}
	}
	if o.SplitRecords < 0 || o.SplitBytes < 0 {
		return fmt.Errorf("core: negative split bounds")
	}
	return nil
}
