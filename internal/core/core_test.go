package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"colmr/internal/colfile"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

var crawlSchema = serde.MustParse(`
URLInfo {
  string url,
  time fetchTime,
  map<string> metadata,
  bytes content
}`)

func makeRecord(rng *rand.Rand, i int) *serde.GenericRecord {
	rec := serde.NewRecord(crawlSchema)
	host := "site" + string(rune('a'+i%17))
	url := "http://" + host + ".com/page/" + fmt.Sprint(i)
	if i%16 == 0 { // ~6% selectivity, like the paper's ibm.com/jp predicate
		url = "http://ibm.com/jp/page/" + fmt.Sprint(i)
	}
	rec.Set("url", url)
	rec.Set("fetchTime", int64(1293840000000+i))
	rec.Set("metadata", map[string]any{
		"content-type":   contentTypes[i%len(contentTypes)],
		"content-length": fmt.Sprint(1000 + i),
		"server":         "httpd/2.2",
	})
	content := make([]byte, 400+rng.Intn(200))
	rng.Read(content)
	rec.Set("content", content)
	return rec
}

var contentTypes = []string{"text/html", "application/pdf", "text/plain"}

func testFS(t *testing.T, nodes int) *hdfs.FileSystem {
	t.Helper()
	cfg := sim.DefaultCluster()
	cfg.Nodes = nodes
	cfg.BlockSize = 1 << 16
	cfg.TransferUnit = 1 << 12
	return hdfs.New(cfg, 1)
}

func loadDataset(t *testing.T, fs *hdfs.FileSystem, dataset string, opts LoadOptions, n int) []*serde.GenericRecord {
	t.Helper()
	w, err := NewWriter(fs, dataset, crawlSchema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	var recs []*serde.GenericRecord
	for i := 0; i < n; i++ {
		rec := makeRecord(rng, i)
		recs = append(recs, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func scanAll(t *testing.T, fs *hdfs.FileSystem, dataset string, conf *mapred.JobConf) ([]map[string]any, sim.TaskStats) {
	t.Helper()
	in := &InputFormat{}
	if conf == nil {
		conf = &mapred.JobConf{}
	}
	conf.InputPaths = []string{dataset}
	splits, report, err := in.PlannedSplits(fs, conf)
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	var total sim.TaskStats
	// Fold the scheduler tier's pruning into the aggregate, as the engine
	// does, so counters cover the whole dataset whichever tier pruned.
	total.SplitsPruned += int64(report.SplitsPruned)
	total.RecordsPruned += report.RecordsPruned
	for _, sp := range splits {
		var st sim.TaskStats
		rr, err := in.Open(fs, conf, sp, hdfs.AnyNode, &st)
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, v, ok, err := rr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			rec := v.(serde.Record)
			row := map[string]any{}
			for _, f := range rec.Schema().Fields {
				fv, err := rec.Get(f.Name)
				if err != nil {
					t.Fatal(err)
				}
				row[f.Name] = fv
			}
			rows = append(rows, row)
		}
		rr.Close()
		total.Add(st)
	}
	return rows, total
}

func TestCOFCIFRoundTrip(t *testing.T) {
	fs := testFS(t, 8)
	want := loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 37}, 200)
	rows, _ := scanAll(t, fs, "/data/crawl", nil)
	if len(rows) != len(want) {
		t.Fatalf("scanned %d rows, want %d", len(rows), len(want))
	}
	for i, row := range rows {
		for _, f := range crawlSchema.Fields {
			wv := want[i].GetAt(crawlSchema.FieldIndex(f.Name))
			if !serde.ValuesEqual(f.Type, row[f.Name], wv) {
				t.Fatalf("row %d field %s mismatch", i, f.Name)
			}
		}
	}
}

func TestSplitDirectoryLayout(t *testing.T) {
	fs := testFS(t, 8)
	loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 50}, 200)
	dirs, err := listSplitDirs(fs, "/data/crawl")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 4 {
		t.Fatalf("split dirs = %v, want 4", dirs)
	}
	infos, err := fs.List(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, fi := range infos {
		names = append(names, fi.Name())
	}
	want := []string{SchemaFile, "content", "fetchTime", "metadata", "url"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("split dir contents = %v, want %v", names, want)
	}
	s, err := ReadSchema(fs, "/data/crawl")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(crawlSchema) {
		t.Error("dataset schema mismatch")
	}
}

// Projection pushdown: scanning one small column must not read the content
// column's bytes at all (true I/O elimination, unlike RCFile).
func TestProjectionEliminatesIO(t *testing.T) {
	fs := testFS(t, 8)
	loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 100}, 400)

	full := &mapred.JobConf{}
	_, fullStats := scanAll(t, fs, "/data/crawl", full)

	proj := &mapred.JobConf{}
	SetColumns(proj, "fetchTime")
	rows, projStats := scanAll(t, fs, "/data/crawl", proj)
	if len(rows) != 400 {
		t.Fatalf("projected scan returned %d rows", len(rows))
	}
	if _, ok := rows[0]["fetchTime"]; !ok {
		t.Fatal("projected column missing")
	}
	if projStats.IO.TotalChargedBytes()*4 > fullStats.IO.TotalChargedBytes() {
		t.Errorf("projected scan charged %d bytes vs full %d; want >4x elimination",
			projStats.IO.TotalChargedBytes(), fullStats.IO.TotalChargedBytes())
	}
}

// Lazy and eager construction must expose identical data.
func TestLazyEagerEquivalence(t *testing.T) {
	for _, layout := range []colfile.Options{
		{Layout: colfile.Plain},
		{Layout: colfile.SkipList, Levels: []int{100, 10}},
		{Layout: colfile.Block, Codec: "lzo", BlockBytes: 4 << 10},
	} {
		fs := testFS(t, 8)
		loadDataset(t, fs, "/d", LoadOptions{SplitRecords: 64, Default: layout}, 250)

		eager := &mapred.JobConf{}
		SetColumns(eager, "url", "metadata")
		SetLazy(eager, false)
		eagerRows, _ := scanAll(t, fs, "/d", eager)

		lazy := &mapred.JobConf{}
		SetColumns(lazy, "url", "metadata")
		SetLazy(lazy, true)
		lazyRows, _ := scanAll(t, fs, "/d", lazy)

		if len(eagerRows) != len(lazyRows) {
			t.Fatalf("%v: %d eager vs %d lazy rows", layout.Layout, len(eagerRows), len(lazyRows))
		}
		for i := range eagerRows {
			if !serde.ValuesEqual(serde.String(), eagerRows[i]["url"], lazyRows[i]["url"]) ||
				!serde.ValuesEqual(serde.MapOf(serde.String()), eagerRows[i]["metadata"], lazyRows[i]["metadata"]) {
				t.Fatalf("%v: row %d differs between lazy and eager", layout.Layout, i)
			}
		}
	}
}

// The headline lazy-record property: when the predicate is selective, the
// metadata column is deserialized only for matching records.
func TestLazySkipsDeserialization(t *testing.T) {
	fs := testFS(t, 8)
	loadDataset(t, fs, "/d", LoadOptions{
		SplitRecords: 512,
		PerColumn:    map[string]colfile.Options{"metadata": {Layout: colfile.SkipList, Levels: []int{100, 10}}},
	}, 1024)

	run := func(lazy bool) (int64, sim.TaskStats) {
		conf := &mapred.JobConf{}
		SetColumns(conf, "url", "metadata")
		SetLazy(conf, lazy)
		conf.InputPaths = []string{"/d"}
		in := &InputFormat{}
		splits, err := in.Splits(fs, conf)
		if err != nil {
			t.Fatal(err)
		}
		var matched int64
		var total sim.TaskStats
		for _, sp := range splits {
			var st sim.TaskStats
			rr, err := in.Open(fs, conf, sp, hdfs.AnyNode, &st)
			if err != nil {
				t.Fatal(err)
			}
			for {
				_, v, ok, err := rr.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				rec := v.(serde.Record)
				url, err := rec.Get("url")
				if err != nil {
					t.Fatal(err)
				}
				if strings.Contains(url.(string), "ibm.com/jp") {
					md, err := rec.Get("metadata")
					if err != nil {
						t.Fatal(err)
					}
					if md.(map[string]any)["content-type"] == nil {
						t.Fatal("missing content-type")
					}
					matched++
				}
			}
			rr.Close()
			total.Add(st)
		}
		return matched, total
	}

	eagerMatched, eagerStats := run(false)
	lazyMatched, lazyStats := run(true)
	if eagerMatched != lazyMatched || eagerMatched != 64 {
		t.Fatalf("matched: eager %d, lazy %d, want 64", eagerMatched, lazyMatched)
	}
	// Lazy mode must deserialize far less map data (6% of records).
	if lazyStats.CPU.MapBytes*4 > eagerStats.CPU.MapBytes {
		t.Errorf("lazy MapBytes %d vs eager %d; want >4x reduction",
			lazyStats.CPU.MapBytes, eagerStats.CPU.MapBytes)
	}
	// The predicate reads url on every record, so record counts match; the
	// object-churn savings appear in values materialized (metadata maps
	// are only built for the 6% of matching records).
	if lazyStats.CPU.ValuesMaterialized*2 > eagerStats.CPU.ValuesMaterialized {
		t.Errorf("lazy materialized %d values vs eager %d; want >2x reduction",
			lazyStats.CPU.ValuesMaterialized, eagerStats.CPU.ValuesMaterialized)
	}
}

// Repeated Get on the same record must not re-read the column.
func TestLazyGetIsCached(t *testing.T) {
	fs := testFS(t, 8)
	loadDataset(t, fs, "/d", LoadOptions{SplitRecords: 50}, 50)
	conf := &mapred.JobConf{}
	SetColumns(conf, "url")
	SetLazy(conf, true)
	conf.InputPaths = []string{"/d"}
	in := &InputFormat{}
	splits, _ := in.Splits(fs, conf)
	var st sim.TaskStats
	rr, err := in.Open(fs, conf, splits[0], hdfs.AnyNode, &st)
	if err != nil {
		t.Fatal(err)
	}
	_, v, _, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	rec := v.(serde.Record)
	a, err := rec.Get("url")
	if err != nil {
		t.Fatal(err)
	}
	before := st.CPU
	b, err := rec.Get("url")
	if err != nil {
		t.Fatal(err)
	}
	if a.(string) != b.(string) {
		t.Error("cached value differs")
	}
	if st.CPU != before {
		t.Error("second Get charged CPU")
	}
	if _, err := rec.Get("metadata"); err == nil {
		t.Error("Get outside projection should fail")
	}
}

func TestCIFWithMapReduceAndCPP(t *testing.T) {
	// Full integration: the paper's example job (distinct content-types of
	// ibm.com/jp pages) over CIF with the column placement policy.
	cfg := sim.DefaultCluster()
	cfg.Nodes = 10
	cfg.BlockSize = 1 << 16
	fs := hdfs.New(cfg, 3)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())

	loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 128}, 1024)

	conf := mapred.JobConf{InputPaths: []string{"/data/crawl"}, OutputPath: "/out", NumReducers: 2}
	SetColumns(&conf, "url", "metadata")
	SetLazy(&conf, true)
	job := &mapred.Job{
		Conf:  conf,
		Input: &InputFormat{},
		Mapper: mapred.MapperFunc(func(key, value any, emit mapred.Emit) error {
			rec := value.(serde.Record)
			url, err := rec.Get("url")
			if err != nil {
				return err
			}
			if !strings.Contains(url.(string), "ibm.com/jp") {
				return nil
			}
			md, err := rec.Get("metadata")
			if err != nil {
				return err
			}
			return emit(md.(map[string]any)["content-type"].(string), nil)
		}),
		Reducer: mapred.ReducerFunc(func(key any, values []any, emit mapred.Emit) error {
			return emit(key, nil)
		}),
		Output: mapred.TextOutput{},
	}
	res, err := mapred.Run(fs, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRecords != int64(len(contentTypes)) {
		t.Errorf("distinct content-types = %d, want %d", res.OutputRecords, len(contentTypes))
	}
	// With CPP every task must read fully locally.
	if res.Total.IO.RemoteBytes != 0 {
		t.Errorf("remote bytes = %d with CPP, want 0", res.Total.IO.RemoteBytes)
	}
	if res.Total.RecordsProcessed != 1024 {
		t.Errorf("records processed = %d", res.Total.RecordsProcessed)
	}
}

func TestDefaultPlacementCausesRemoteReads(t *testing.T) {
	cfg := sim.DefaultCluster()
	cfg.Nodes = 16
	cfg.BlockSize = 1 << 16
	fs := hdfs.New(cfg, 5) // default placement policy
	loadDataset(t, fs, "/d", LoadOptions{SplitRecords: 128}, 1024)
	conf := mapred.JobConf{InputPaths: []string{"/d"}}
	SetColumns(&conf, "url", "metadata", "content")
	job := &mapred.Job{
		Conf:   conf,
		Input:  &InputFormat{},
		Mapper: mapred.MapperFunc(func(k, v any, e mapred.Emit) error { return nil }),
		Output: mapred.NullOutput{},
	}
	res, err := mapred.Run(fs, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.IO.RemoteBytes == 0 {
		t.Error("default placement produced no remote reads; co-location experiment would be vacuous")
	}
}

func TestAddColumn(t *testing.T) {
	fs := testFS(t, 8)
	loadDataset(t, fs, "/d", LoadOptions{SplitRecords: 60}, 150)
	err := AddColumn(fs, "/d", "domain", serde.String(), colfile.Options{}, []string{"url"},
		func(rec serde.Record) (any, error) {
			u, err := rec.Get("url")
			if err != nil {
				return nil, err
			}
			s := strings.TrimPrefix(u.(string), "http://")
			if i := strings.IndexByte(s, '/'); i >= 0 {
				s = s[:i]
			}
			return s, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ReadSchema(fs, "/d")
	if err != nil {
		t.Fatal(err)
	}
	if s.FieldIndex("domain") != len(crawlSchema.Fields) {
		t.Fatalf("domain not appended to schema: %v", s.FieldNames())
	}
	conf := &mapred.JobConf{}
	SetColumns(conf, "url", "domain")
	rows, _ := scanAll(t, fs, "/d", conf)
	if len(rows) != 150 {
		t.Fatalf("scanned %d rows after AddColumn", len(rows))
	}
	for _, row := range rows {
		url := row["url"].(string)
		domain := row["domain"].(string)
		if !strings.Contains(url, domain) {
			t.Fatalf("domain %q not derived from %q", domain, url)
		}
	}
	if err := AddColumn(fs, "/d", "domain", serde.String(), colfile.Options{}, nil, nil, nil); err == nil {
		t.Error("re-adding an existing column should fail")
	}
}

func TestLoadFromSequenceFile(t *testing.T) {
	// Round-trip through the loader path used by Table 2.
	fs := testFS(t, 8)
	loadDataset(t, fs, "/cif-src", LoadOptions{SplitRecords: 100}, 100)
	// Re-load the CIF dataset into another CIF dataset via the generic
	// loader (CIF InputFormat in, COF out).
	conf := &mapred.JobConf{InputPaths: []string{"/cif-src"}}
	n, err := Load(fs, &InputFormat{}, conf, crawlSchema, "/cif-dst", LoadOptions{SplitRecords: 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("loaded %d records, want 100", n)
	}
	rows, _ := scanAll(t, fs, "/cif-dst", nil)
	if len(rows) != 100 {
		t.Fatalf("destination has %d rows", len(rows))
	}
}

func TestMixedLayoutsPerColumn(t *testing.T) {
	fs := testFS(t, 8)
	opts := LoadOptions{
		SplitRecords: 128,
		Default:      colfile.Options{Layout: colfile.Plain},
		PerColumn: map[string]colfile.Options{
			"metadata": {Layout: colfile.DCSL, Levels: []int{100, 10}},
			"content":  {Layout: colfile.Block, Codec: "lzo", BlockBytes: 8 << 10},
		},
	}
	want := loadDataset(t, fs, "/d", opts, 300)
	rows, _ := scanAll(t, fs, "/d", nil)
	if len(rows) != len(want) {
		t.Fatalf("scanned %d", len(rows))
	}
	for i, row := range rows {
		if !serde.ValuesEqual(serde.MapOf(serde.String()), row["metadata"], want[i].GetAt(2)) {
			t.Fatalf("row %d metadata mismatch (DCSL layout)", i)
		}
		if !serde.ValuesEqual(serde.Bytes(), row["content"], want[i].GetAt(3)) {
			t.Fatalf("row %d content mismatch (block layout)", i)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	fs := testFS(t, 8)
	if _, err := NewWriter(fs, "/x", serde.Int(), LoadOptions{}, nil); err == nil {
		t.Error("non-record schema accepted")
	}
	if _, err := NewWriter(fs, "/x", crawlSchema, LoadOptions{PerColumn: map[string]colfile.Options{"nope": {}}}, nil); err == nil {
		t.Error("override for unknown column accepted")
	}
	if _, err := NewWriter(fs, "/x", crawlSchema, LoadOptions{PerColumn: map[string]colfile.Options{"fetchTime": {Layout: colfile.DCSL}}}, nil); err == nil {
		t.Error("DCSL on numeric column accepted")
	}
	if _, err := NewWriter(fs, "/x", crawlSchema, LoadOptions{PerColumn: map[string]colfile.Options{"url": {Layout: colfile.DCSL}}}, nil); err != nil {
		t.Errorf("DCSL on string column rejected: %v", err)
	}
	in := &InputFormat{}
	if _, err := in.Splits(fs, &mapred.JobConf{InputPaths: []string{"/missing"}}); err == nil {
		t.Error("missing dataset accepted")
	}
	fs.MkdirAll("/empty")
	if _, err := in.Splits(fs, &mapred.JobConf{InputPaths: []string{"/empty"}}); err == nil {
		t.Error("dataset without split dirs accepted")
	}
	loadDataset(t, fs, "/d", LoadOptions{SplitRecords: 10}, 10)
	conf := &mapred.JobConf{InputPaths: []string{"/d"}}
	SetColumns(conf, "nope")
	splits, err := (&InputFormat{}).Splits(fs, conf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Open(fs, conf, splits[0], hdfs.AnyNode, nil); err == nil {
		t.Error("projection of unknown column accepted")
	}
}

func TestDirsPerSplit(t *testing.T) {
	fs := testFS(t, 8)
	loadDataset(t, fs, "/d", LoadOptions{SplitRecords: 25}, 100) // 4 dirs
	conf := &mapred.JobConf{InputPaths: []string{"/d"}}
	splits, err := (&InputFormat{DirsPerSplit: 2}).Splits(fs, conf)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 2 {
		t.Fatalf("splits = %d, want 2", len(splits))
	}
	rows, _ := scanAllWith(t, fs, conf, &InputFormat{DirsPerSplit: 2})
	if rows != 100 {
		t.Fatalf("rows = %d, want 100", rows)
	}
}

func scanAllWith(t *testing.T, fs *hdfs.FileSystem, conf *mapred.JobConf, in *InputFormat) (int, sim.TaskStats) {
	t.Helper()
	splits, err := in.Splits(fs, conf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var total sim.TaskStats
	for _, sp := range splits {
		var st sim.TaskStats
		rr, err := in.Open(fs, conf, sp, hdfs.AnyNode, &st)
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, _, ok, err := rr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			count++
		}
		rr.Close()
		total.Add(st)
	}
	return count, total
}
