package core

import (
	"encoding/json"
	"fmt"

	"colmr/internal/hdfs"
	"colmr/internal/scan"
)

// Position delete vectors (the merge-on-read half of recrawl upserts). A
// recrawl arrival supersedes the earlier version of its key; the old row
// already sits inside an immutable flushed partition, so instead of
// rewriting the partition the ingest path records the row's ordinal in a
// delete file alongside it. Readers load the partition's delete set when
// they open the directory and skip the listed ordinals — scalar loops
// before predicate evaluation, vectorized loops by masking the batch's
// input selection — so a superseded row is never delivered, filtered, or
// folded. Compaction resolves the deletes physically (the merged partition
// carries none) and the files retire with their directories.
//
// Delete files are immutable and versioned like manifests: each flush that
// adds deletes to a partition writes the full cumulative set as a new
// _deletes.<N> file and points the next manifest generation at it, so a
// reader planned against an older generation keeps its older (complete)
// set. The files are uncharged metadata, like schemas: they are tiny next
// to the column data whose reads they mask.

// delSet is one partition's loaded delete set.
type delSet struct {
	pos map[int64]bool
}

// has reports whether ordinal p is deleted.
func (d *delSet) has(p int64) bool {
	return d != nil && d.pos[p]
}

// mask clears the deleted ordinals of [start, end) from sel (whose bit i is
// ordinal start+i) and returns how many set bits it cleared.
func (d *delSet) mask(sel *scan.Selection, start, end int64) int64 {
	if d == nil {
		return 0
	}
	var n int64
	for p := range d.pos {
		if p < start || p >= end {
			continue
		}
		i := int(p - start)
		if sel.Test(i) {
			sel.Clear(i)
			n++
		}
	}
	return n
}

// WriteDeletes records ordinals as the delete file at path (the full
// cumulative set for its partition). The write is a single atomic call.
func WriteDeletes(fs *hdfs.FileSystem, path string, ordinals []int64) error {
	data, err := json.Marshal(ordinals)
	if err != nil {
		return fmt.Errorf("core: encoding deletes: %w", err)
	}
	return fs.WriteFile(path, data, hdfs.AnyNode)
}

// ReadDeletes loads the delete file at path.
func ReadDeletes(fs *hdfs.FileSystem, path string) ([]int64, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading deletes %s: %w", path, err)
	}
	var ordinals []int64
	if err := json.Unmarshal(data, &ordinals); err != nil {
		return nil, fmt.Errorf("core: parsing deletes %s: %w", path, err)
	}
	return ordinals, nil
}

// loadDelSet loads the delete set named by path ("" means none).
func loadDelSet(fs *hdfs.FileSystem, path string) (*delSet, error) {
	if path == "" {
		return nil, nil
	}
	ordinals, err := ReadDeletes(fs, path)
	if err != nil {
		return nil, err
	}
	if len(ordinals) == 0 {
		return nil, nil
	}
	d := &delSet{pos: make(map[int64]bool, len(ordinals))}
	for _, p := range ordinals {
		d.pos[p] = true
	}
	return d, nil
}

// delFileAt returns entry i of a split's parallel delete-file list, which
// hand-built splits may leave nil (no deletes).
func delFileAt(dels []string, i int) string {
	if i < len(dels) {
		return dels[i]
	}
	return ""
}
