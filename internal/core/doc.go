// Package core implements the paper's primary contribution: CIF/COF, the
// column-oriented storage format for MapReduce (Sections 4 and 5).
//
// A dataset loaded with COF (ColumnOutputFormat) is a directory of
// split-directories named s0, s1, ... Each split-directory holds one file
// per top-level column plus a _schema file, and is the unit of scheduling:
// CIF (ColumnInputFormat) assigns one or more split-directories to each map
// task. Installing hdfs.ColumnPlacementPolicy co-locates every file of a
// split-directory on the same replica set, so map tasks read all columns
// locally (Section 4.2, Figure 3b).
//
// Projection is pushed into CIF with the ScanDataset builder (or the
// legacy SetColumns wrapper), after which unprojected column files are
// never opened — the I/O elimination that drives the paper's
// order-of-magnitude speedups. Record materialization is either eager
// (every projected column deserialized per record) or lazy (Section 5): a
// LazyRecord tracks the split-level curPos and per-column lastPos,
// deserializing a column only when the map function calls Get, with
// skip-list column layouts making the intervening skips cheap.
//
// Role in the scheduler→file→group→value pipeline: this package *hosts*
// three of the four tiers, driving the shared scan.Planner at each.
// InputFormat.PlannedSplits runs the scheduler tier (split-directories
// elided from whole-file footer statistics before any task exists);
// Reader.openDir runs the file tier (an opened directory skipped from the
// same aggregates before any header parse); Reader.qualifies runs the
// group tier (zone-map and Bloom proofs jump curPos past whole groups)
// and the value tier (exact evaluation over filter columns only, with
// DCSL map-key tests routed to the column reader's prober). SharedReader
// replays the same consultation sequence per member job of a co-scheduled
// batch so every member's logical accounting matches its solo run.
//
// The value tier executes batch-at-a-time by default (vecexec.go): a
// may-match extent is decoded per filter column into scan.Vectors (fanned
// across a bounded goroutine pool, or served whole from a session's
// vec.Cache), the predicate runs once per batch via VecEval, and only
// selected rows are materialized into the usual Next record shape. Batch
// boundaries never cross a zone-map consultation boundary, so the pruning
// trajectory and logical counters are bit-for-bit the scalar loop's; any
// shape the batch path cannot take (no predicate, Spec.NoVec, a layout
// without VectorDecoder, a shared set with a scalar member) falls back to
// the record-at-a-time loop per directory. See docs/VECTORIZED.md.
//
// Jobs that only fold an aggregate skip records entirely (aggexec.go,
// docs/AGGREGATION.md): with scan.Spec.Agg set, Reader.DrainAggregate
// answers whole MatchAll regions from zone statistics with zero bytes
// decoded, folds batch survivors straight from selection bitmaps and
// vectors, and falls back to per-record folding where batching cannot
// run — same pruning trajectory, RecordsProcessed zero. Equality
// predicates on DCSL string/bytes columns evaluate over window-local
// dictionary ids (colfile.DecodeIDVector) when no consumer needs the
// strings themselves, turning string decode into integer compares.
//
// Invariants the property tests defend (with internal/scan's and
// internal/mapred's property suites, which drive this package):
//
//   - Tier placement never changes results: a split judged by the
//     scheduler (Split.Judged) skips the reader's redundant file tier and
//     still returns exactly what an unjudged split would.
//   - Per-record cursor caching: each column of each record is
//     deserialized at most once, however many consumers ask (lazy Get,
//     predicate evaluation, eager materialization, shared members).
//   - Wrapper/builder parity (query_test.go): the legacy Set* wrappers
//     and the ScanDataset builder produce identical scan.Specs, and a
//     typed field always beats its leftover string prop.
//   - Accounting: "records pruned at any tier + records filtered +
//     records returned == dataset size" per job, in solo, elided,
//     bloom-on/off, and shared-scan modes alike.
package core
