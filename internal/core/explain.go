package core

import (
	"fmt"
	"strings"

	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/sim"
)

// EXPLAIN: the cost-based plan for one job, built from the same footer
// statistics the scheduler tier prunes with, plus — after the run — the
// estimated-vs-actual comparison per pruning tier. Explain never touches
// data regions and never mutates the job; Apply installs the plan's
// choices into the job's spec, honoring anything the caller pinned.

// QueryPlan is the plan Explain builds for one job before it runs.
type QueryPlan struct {
	// Predicate is the rendered predicate ("" when the scan is
	// unfiltered); FilterCols are its filter columns.
	Predicate  string
	FilterCols []string

	// Scheduler-tier estimate: of SplitsTotal listed split-directories,
	// SplitsEst are expected to survive footer pruning.
	SplitsTotal int
	SplitsEst   int

	// Row estimates. RowsTotal counts every listed directory; RowsKept
	// counts the directories expected to survive; RowsEst of those are
	// expected to qualify, a Fraction of RowsKept.
	RowsTotal int64
	RowsKept  int64
	RowsEst   float64
	Fraction  float64
	// Estimated reports whether footer statistics informed the numbers;
	// false means estimation failed and every choice fell back to its
	// default.
	Estimated bool

	// The cost-based choices (scan.ChoosePlan), and whether the caller
	// pinned each one (a pinned setting is reported, never overridden).
	Lazy       bool
	LazyPinned bool
	AutoSize   bool
	SizePinned bool

	// Modeled cost of the chosen plan: the bytes it expects to charge and
	// sim.CostModel.PlannedScanSeconds over them.
	EstBytes   int64
	EstSeconds float64

	// Reasons records why each choice fell the way it did, one line per
	// decision.
	Reasons []string
}

// Explain builds the cost-based plan for one job without running it. All
// reads are planning metadata (footers, stats sections, schema files) —
// never data. Estimation failure is not an error: the plan degrades to
// the defaults and says so.
func (f *InputFormat) Explain(fs *hdfs.FileSystem, conf *mapred.JobConf, model sim.CostModel) (*QueryPlan, error) {
	spec, err := resolveSpec(conf)
	if err != nil {
		return nil, err
	}
	pred := spec.Predicate
	planner := scan.NewPlanner(pred)
	planner.SetBloom(spec.Bloom())
	p := &QueryPlan{
		FilterCols: planner.FilterColumns(),
		LazyPinned: spec.Lazy,
		SizePinned: spec.DirsPerSplit != 0,
		Estimated:  true,
	}
	if pred != nil {
		p.Predicate = pred.String()
	}

	// The columns a map task will open: the projection (or, for
	// aggregations, the aggregate's inputs), plus the filter columns —
	// mirroring planDirs. nil means every column of the split schema.
	cols := spec.Columns
	if spec.Agg != nil && len(cols) == 0 {
		cols = spec.Agg.Columns(nil)
	} else if spec.Agg != nil {
		cols = spec.Agg.Columns(append([]string(nil), cols...))
	}
	if pred != nil && len(cols) > 0 {
		cols = pred.Columns(append([]string(nil), cols...))
	}
	filter := make(map[string]bool, len(p.FilterCols))
	for _, c := range p.FilterCols {
		filter[c] = true
	}

	var filterBytes, otherBytes int64
	for _, dataset := range conf.InputPaths {
		layout, err := layoutCached(fs, dataset, nil)
		if err != nil {
			return nil, err
		}
		for _, dir := range layout.dirs {
			p.SplitsTotal++
			rows, est, ok := estimateDirMatches(fs, dir, pred, spec.Bloom())
			if !ok {
				p.Estimated = false
				p.SplitsEst++
				continue
			}
			p.RowsTotal += int64(rows)
			if pred != nil && spec.Elide() && est == 0 {
				continue // expected to be pruned at the scheduler tier
			}
			p.SplitsEst++
			p.RowsKept += int64(rows)
			p.RowsEst += est
			fb, ob := dirColumnBytes(fs, dir, cols, filter)
			filterBytes += fb
			otherBytes += ob
		}
	}
	if p.RowsKept > 0 {
		p.Fraction = p.RowsEst / float64(p.RowsKept)
	}

	choice := scan.ChoosePlan(scan.PlanInputs{
		HasPredicate: pred != nil,
		Fraction:     p.Fraction,
		Estimated:    p.Estimated,
		Dirs:         p.SplitsEst,
	})
	p.Lazy, p.AutoSize, p.Reasons = choice.Lazy, choice.AutoSize, choice.Reasons
	if p.LazyPinned {
		p.Lazy = true
		p.Reasons = append(p.Reasons, "materialization pinned by the caller: lazy")
	}
	if p.SizePinned {
		p.AutoSize = spec.DirsPerSplit == AutoDirsPerSplit
		p.Reasons = append(p.Reasons, fmt.Sprintf("task sizing pinned by the caller: DirsPerSplit=%d", spec.DirsPerSplit))
	}

	// Byte model of the chosen plan: filter columns stream regardless; a
	// lazy scan touches only the qualifying fraction of the remaining
	// projected bytes, an eager one all of them.
	p.EstBytes = filterBytes + otherBytes
	if p.Lazy && pred != nil {
		p.EstBytes = filterBytes + int64(p.Fraction*float64(otherBytes))
	}
	p.EstSeconds = model.PlannedScanSeconds(p.EstBytes, int64(p.RowsEst+0.5))
	return p, nil
}

// dirColumnBytes sums one directory's column-file sizes, split into the
// predicate's filter columns and the rest. cols nil means every column of
// the split schema. Missing files contribute nothing — the task that opens
// them will surface the error.
func dirColumnBytes(fs *hdfs.FileSystem, dir string, cols []string, filter map[string]bool) (filterBytes, otherBytes int64) {
	names := cols
	if names == nil {
		schema, err := readSplitSchema(fs, dir)
		if err != nil {
			return 0, 0
		}
		names = schema.FieldNames()
	}
	for _, col := range names {
		hr, err := fs.Open(dir+"/"+col, hdfs.AnyNode)
		if err != nil {
			continue
		}
		if filter[col] {
			filterBytes += hr.Size()
		} else {
			otherBytes += hr.Size()
		}
		hr.Close()
	}
	return filterBytes, otherBytes
}

// Apply installs the plan's choices into the job's spec. Pinned settings
// are untouched: Apply upgrades defaults, it never overrides the caller.
func (p *QueryPlan) Apply(conf *mapred.JobConf) {
	spec := conf.ScanSpec()
	if !p.LazyPinned {
		spec.Lazy = p.Lazy
	}
	if !p.SizePinned && p.AutoSize {
		spec.DirsPerSplit = AutoDirsPerSplit
	}
}

// Summary renders the chosen plan in one line.
func (p *QueryPlan) Summary() string {
	mat := "eager"
	if p.Lazy {
		mat = "lazy"
	}
	sizing := "constant task sizing"
	if p.AutoSize {
		sizing = "auto task sizing"
	}
	if p.Predicate == "" {
		return fmt.Sprintf("unfiltered scan, %s materialization, %s", mat, sizing)
	}
	return fmt.Sprintf("where %s: %s materialization, %s, estimated fraction %.4f", p.Predicate, mat, sizing, p.Fraction)
}

// String renders the full pre-run plan: the choices, the estimates they
// came from, and the reasons.
func (p *QueryPlan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: %s\n", p.Summary())
	fmt.Fprintf(&sb, "  scheduler: %d/%d split-directories estimated to survive footer pruning\n", p.SplitsEst, p.SplitsTotal)
	fmt.Fprintf(&sb, "  records:   ~%.0f of %d estimated to qualify\n", p.RowsEst, p.RowsTotal)
	fmt.Fprintf(&sb, "  modeled:   ~%.4fs over ~%.2f MB charged\n", p.EstSeconds, float64(p.EstBytes)/(1<<20))
	sb.WriteString("  why:\n")
	for _, r := range p.Reasons {
		fmt.Fprintf(&sb, "   - %s\n", r)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// Report renders the estimated-vs-actual comparison per pruning tier after
// the job ran: scheduler-tier survival, qualifying records, skipped
// records, and modeled time. This is the accountability half of EXPLAIN —
// a plan that mis-estimated shows it here, in the same units it planned
// in.
func (p *QueryPlan) Report(res *mapred.Result, model sim.CostModel) string {
	var sb strings.Builder
	sb.WriteString("explain: estimated vs actual\n")
	actualKept := res.Plan.SplitsTotal - res.Plan.SplitsPruned
	fmt.Fprintf(&sb, "  scheduler: estimated %d/%d split-directories survive; actual %d/%d (%d pruned, %d footers read)\n",
		p.SplitsEst, p.SplitsTotal, actualKept, res.Plan.SplitsTotal, res.Plan.SplitsPruned, res.Plan.FilesChecked)
	fmt.Fprintf(&sb, "  records:   estimated ~%.0f qualify; actual %d matched\n",
		p.RowsEst, res.Total.RecordsProcessed)
	fmt.Fprintf(&sb, "  pruned:    estimated ~%.0f skipped; actual %d pruned (groups+splits) + %d filtered\n",
		float64(p.RowsTotal)-p.RowsEst, res.Total.RecordsPruned, res.Total.RecordsFiltered)
	fmt.Fprintf(&sb, "  modeled:   estimated ~%.4fs; actual %.4fs",
		p.EstSeconds, model.ScanSeconds(res.Total))
	if res.Plan.SharedDeclined > 0 {
		fmt.Fprintf(&sb, "\n  admission: %d shared-scan co-members declined (union would destroy pruning)", res.Plan.SharedDeclined)
	}
	return sb.String()
}
