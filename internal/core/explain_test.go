package core

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// collectS runs the job and returns the sorted "s" values of every matched
// record — the output identity the planner's cost decisions must preserve.
func collectS(t *testing.T, fs *hdfs.FileSystem, job *mapred.Job) []string {
	t.Helper()
	var mu sync.Mutex
	var got []string
	job.Mapper = mapred.MapperFunc(func(_, v any, _ mapred.Emit) error {
		rec := v.(serde.Record)
		s, err := rec.Get("s")
		if err != nil {
			return err
		}
		mu.Lock()
		got = append(got, s.(string))
		mu.Unlock()
		return nil
	})
	if _, err := mapred.Run(fs, job); err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	return got
}

func sJob(p scan.Predicate) *mapred.Job {
	return ScanDataset("/e").Columns("s").Where(p).
		Job(mapred.MapperFunc(func(_, _ any, _ mapred.Emit) error { return nil }))
}

// TestExplainPlanChoices: the plan picks lazy + auto sizing for a spread
// selective predicate, eager for a broad one, and the clustered case
// elides at the scheduler tier before materialization is even at stake.
func TestExplainPlanChoices(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadClustered(t, fs, "/e", 1600, 16)
	model := sim.DefaultModel()
	in := &InputFormat{}

	// y == 0 matches 10% of every directory: no scheduler elision, low
	// fraction, many surviving dirs — lazy and auto-sized.
	job := sJob(scan.Eq("y", int32(0)))
	plan, err := in.Explain(fs, &job.Conf, model)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Estimated {
		t.Fatal("estimation failed over a freshly written dataset")
	}
	if plan.SplitsTotal != 16 || plan.SplitsEst != 16 {
		t.Errorf("splits est %d/%d, want 16/16", plan.SplitsEst, plan.SplitsTotal)
	}
	if plan.Fraction < 0.05 || plan.Fraction > 0.2 {
		t.Errorf("fraction %.4f, want ~0.1", plan.Fraction)
	}
	if !plan.Lazy || !plan.AutoSize {
		t.Errorf("choices lazy=%v auto=%v, want lazy auto for a 10%% spread predicate", plan.Lazy, plan.AutoSize)
	}
	if len(plan.Reasons) == 0 || plan.Summary() == "" || plan.String() == "" {
		t.Error("plan renders nothing")
	}

	// y <= 7 matches 80% of every row: eager wins.
	broad, err := in.Explain(fs, &sJob(scan.Le("y", int32(7))).Conf, model)
	if err != nil {
		t.Fatal(err)
	}
	if broad.Lazy {
		t.Errorf("broad predicate (fraction %.3f) chose lazy", broad.Fraction)
	}

	// x <= 50 lives in the first directory only: the scheduler tier elides
	// the other 15 before the plan ever weighs materialization.
	clustered, err := in.Explain(fs, &sJob(scan.Le("x", int64(50))).Conf, model)
	if err != nil {
		t.Fatal(err)
	}
	if clustered.SplitsEst != 1 {
		t.Errorf("clustered predicate keeps %d splits, want 1", clustered.SplitsEst)
	}
	if clustered.AutoSize {
		t.Error("one surviving directory chose auto sizing")
	}

	// An unfiltered scan plans eager, constant sizing, full survival.
	flat, err := in.Explain(fs, &sJob(nil).Conf, model)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Lazy || flat.AutoSize || flat.SplitsEst != 16 || flat.Fraction != 1 {
		t.Errorf("unfiltered plan = %+v", flat)
	}
}

// TestPlanInvariance: the planner's choices are cost decisions, never
// correctness ones — the chosen plan and every forced alternative return
// identical outputs.
func TestPlanInvariance(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadClustered(t, fs, "/e", 1600, 16)
	model := sim.DefaultModel()
	in := &InputFormat{}
	pred := scan.Eq("y", int32(3))

	chosen := sJob(pred)
	plan, err := in.Explain(fs, &chosen.Conf, model)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(&chosen.Conf)
	want := collectS(t, fs, chosen)
	if len(want) == 0 {
		t.Fatal("chosen plan matched nothing")
	}

	forced := map[string]*mapred.Job{
		"eager default":  sJob(pred),
		"forced lazy":    ScanDataset("/e").Columns("s").Where(pred).Lazy(true).Job(nil),
		"one dir/split":  ScanDataset("/e").Columns("s").Where(pred).DirsPerSplit(1).Job(nil),
		"auto dirs":      ScanDataset("/e").Columns("s").Where(pred).DirsPerSplit(AutoDirsPerSplit).Job(nil),
		"lazy auto dirs": ScanDataset("/e").Columns("s").Where(pred).Lazy(true).DirsPerSplit(AutoDirsPerSplit).Job(nil),
	}
	for name, job := range forced {
		got := collectS(t, fs, job)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s: %d rows differ from the chosen plan's %d", name, len(got), len(want))
		}
	}
}

// TestExplainReportAccuracy: for clustered uniform data the pre-run
// estimates land on the actuals — the report renders both, and the
// scheduler-tier numbers agree exactly.
func TestExplainReportAccuracy(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadClustered(t, fs, "/e", 1600, 16)
	model := sim.DefaultModel()
	in := &InputFormat{}

	job := sJob(scan.Le("x", int64(50)))
	plan, err := in.Explain(fs, &job.Conf, model)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(&job.Conf)
	res, err := mapred.Run(fs, job)
	if err != nil {
		t.Fatal(err)
	}
	actualKept := res.Plan.SplitsTotal - res.Plan.SplitsPruned
	if plan.SplitsEst != actualKept {
		t.Errorf("estimated %d surviving splits, actual %d", plan.SplitsEst, actualKept)
	}
	truth := float64(res.Total.RecordsProcessed)
	if plan.RowsEst < truth*0.5 || plan.RowsEst > truth*2+10 {
		t.Errorf("estimated %.0f rows vs %d matched", plan.RowsEst, res.Total.RecordsProcessed)
	}
	report := plan.Report(res, model)
	for _, want := range []string{"estimated", "actual", "scheduler", "records", "modeled"} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
}

// TestBatchAdmissionDeclines: a shared run pairing a highly selective
// member with an unfiltered one is split by cost-based admission (the
// union would run at fraction 1), the declines are reported, and every
// member's output still matches its solo run. Compatible members keep
// batching with zero declines.
func TestBatchAdmissionDeclines(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadClustered(t, fs, "/e", 1600, 16)

	eJob := func(p scan.Predicate) *mapred.Job {
		return ScanDataset("/e").Columns("s").Where(p).Elide(false).
			Job(mapred.MapperFunc(func(_, _ any, _ mapred.Emit) error { return nil }))
	}
	selective := scan.Eq("y", int32(0))
	solo := make([]int64, 2)
	for i, p := range []scan.Predicate{selective, nil} {
		res, err := mapred.Run(fs, eJob(p))
		if err != nil {
			t.Fatal(err)
		}
		solo[i] = res.Total.RecordsProcessed
	}

	br, err := mapred.RunBatch(fs, eJob(selective), eJob(nil))
	if err != nil {
		t.Fatal(err)
	}
	if br.Declined == 0 {
		t.Error("selective + unfiltered batch declined no admissions")
	}
	for i, res := range br.Results {
		if res.Total.RecordsProcessed != solo[i] {
			t.Errorf("member %d matched %d batched, %d solo", i, res.Total.RecordsProcessed, solo[i])
		}
		if i == 0 && res.Plan.SharedDeclined == 0 {
			t.Error("selective member reports no declined admissions")
		}
	}

	// Two similar broad predicates stay co-admitted.
	br, err = mapred.RunBatch(fs, eJob(scan.Le("y", int32(5))), eJob(scan.Le("y", int32(7))))
	if err != nil {
		t.Fatal(err)
	}
	if br.Declined != 0 {
		t.Errorf("compatible members declined %d admissions", br.Declined)
	}
	if br.SharedTasks == 0 {
		t.Error("compatible members shared no tasks")
	}
}
