package core

import (
	"fmt"

	"colmr/internal/serde"
)

// LazyRecord implements the paper's lazy record construction (Section 5.1).
// It satisfies the same Record interface as an eagerly materialized
// GenericRecord, so map functions are written identically for both.
//
// The reader's curPos advances on every Next() without touching any column
// file. Each column cursor remembers the last record it actually read
// (lastPos, which is colfile.Reader.Record here). Only when the map
// function calls Get does the column skip ahead —
// skip(curPos - lastPos) — and deserialize one value. With skip-list
// column layouts the skip is cheap; with plain layouts it degrades to
// walking every intervening record, matching the paper's description.
type LazyRecord struct {
	reader *Reader
}

// Schema implements serde.Record.
func (l *LazyRecord) Schema() *serde.Schema { return l.reader.proj }

// Get implements serde.Record: it materializes the named column's value
// for the record curPos currently points at. The per-cursor cache is
// shared with predicate evaluation, so a filter column a pushdown
// predicate already read is free here.
func (l *LazyRecord) Get(name string) (any, error) {
	r := l.reader
	// Filter-only predicate columns have open cursors but are not part of
	// the record: reject them so lazy and eager records expose the same
	// (projected) schema.
	if r.proj.FieldIndex(name) < 0 {
		return nil, fmt.Errorf("core: column %q is not in the projection %v", name, r.columns)
	}
	c, err := r.cursorFor(name)
	if err != nil {
		return nil, err
	}
	counted := c.cachedPos == r.curPos
	v, err := r.valueAt(c)
	if err != nil {
		return nil, err
	}
	if r.stats != nil && !counted && !l.countedCurrent() {
		r.stats.CPU.RecordsMaterialized++
		r.lastCounted = r.curPos
		r.lastCountedDir = r.dirIdx
	}
	return v, nil
}

// countedCurrent reports whether the current record was already counted as
// materialized (first Get on a record wins).
func (l *LazyRecord) countedCurrent() bool {
	r := l.reader
	return r.lastCountedDir == r.dirIdx && r.lastCounted == r.curPos && r.lastCounted >= 0
}
