package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"colmr/internal/hdfs"
)

// Generation-stamped dataset manifests (the streaming-ingest commit
// protocol). A bulk-loaded dataset is immutable, so its layout is its
// directory listing. A dataset written by the ingest subsystem changes
// shape while scans are running — flushes add fresh partitions, compaction
// replaces runs of them — so its layout is published through a manifest
// instead:
//
//   - every layout is an immutable file dataset/_manifest.<N>, written with
//     a single atomic Write; N is the generation;
//   - readers take the highest N that parses. A manifest file created but
//     not yet written parses as garbage and is skipped, so a reader racing
//     a commit sees the previous complete generation, never a torn one;
//   - the manifest lists partitions in arrival order — the authoritative
//     scan order — each with its current delete-file name, plus the
//     directories retired by compaction (kept on disk until GC, so a scan
//     planned against an older generation finishes against intact files).
//
// The session caches need no commit hook for correctness: cache keys carry
// file generations, and delete files mask rows at the selection level
// without changing any column byte. Invalidation after compaction is purely
// a budget release for retired directories.

// manifestPrefix names manifest files within a dataset directory.
const manifestPrefix = "_manifest."

// ManifestPartition is one partition of a manifest-published dataset.
type ManifestPartition struct {
	// Dir is the partition directory, relative to the dataset root
	// (e.g. "dt=300/seq-2" or "c1/s0").
	Dir string
	// Deletes is the partition's current delete-file name ("" when the
	// partition has no superseded rows).
	Deletes string `json:",omitempty"`
	// Records is the partition's physical record count (deleted rows
	// included), recorded for scheduling and stats.
	Records int64
}

// Manifest is one published generation of a streaming dataset's layout.
type Manifest struct {
	Generation int64
	Partitions []ManifestPartition
	// Retired lists directories replaced by compaction and no longer part
	// of any live generation; they stay on disk until GC so in-flight scans
	// finish, then may be removed.
	Retired []string `json:",omitempty"`
}

// manifestPath returns the manifest file path for a generation.
func manifestPath(dataset string, gen int64) string {
	return dataset + "/" + manifestPrefix + strconv.FormatInt(gen, 10)
}

// WriteManifest publishes m as generation m.Generation of the dataset. The
// write is a single atomic call, and the file is immutable once written.
func WriteManifest(fs *hdfs.FileSystem, dataset string, m *Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("core: encoding manifest: %w", err)
	}
	return fs.WriteFile(manifestPath(dataset, m.Generation), data, hdfs.AnyNode)
}

// ReadManifest returns the dataset's highest parseable manifest generation,
// or ok=false when the dataset publishes no manifest (a bulk-loaded
// dataset). Like schema files, manifests are uncharged metadata.
func ReadManifest(fs *hdfs.FileSystem, dataset string) (*Manifest, bool, error) {
	infos, err := fs.List(dataset)
	if err != nil {
		return nil, false, err
	}
	var gens []int64
	for _, fi := range infos {
		if fi.IsDir || !strings.HasPrefix(fi.Name(), manifestPrefix) {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimPrefix(fi.Name(), manifestPrefix), 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, n)
	}
	if len(gens) == 0 {
		return nil, false, nil
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, gen := range gens {
		data, err := fs.ReadFile(manifestPath(dataset, gen))
		if err != nil {
			continue
		}
		var m Manifest
		if json.Unmarshal(data, &m) != nil {
			// A racing commit's file exists but is not yet written; fall back
			// to the previous complete generation.
			continue
		}
		return &m, true, nil
	}
	return nil, false, fmt.Errorf("core: %s has manifest files but no parseable generation", dataset)
}

// dsLayout is one dataset's layout snapshot taken for one planning
// operation: split-directories in scan order, with each one's delete-file
// path ("" when none). Every directory and delete decision of a plan comes
// from one snapshot, so a batch member can never mix generations.
type dsLayout struct {
	dirs []string
	dels []string
}

// datasetLayout resolves a dataset's current layout: the manifest when one
// is published, else the plain split-directory listing (bulk-loaded
// datasets have no deletes and list in numeric order).
func datasetLayout(fs *hdfs.FileSystem, dataset string) (dsLayout, error) {
	m, ok, err := ReadManifest(fs, dataset)
	if err != nil {
		return dsLayout{}, err
	}
	if !ok {
		dirs, err := listSplitDirs(fs, dataset)
		if err != nil {
			return dsLayout{}, err
		}
		return dsLayout{dirs: dirs, dels: make([]string, len(dirs))}, nil
	}
	if len(m.Partitions) == 0 {
		return dsLayout{}, fmt.Errorf("core: %s manifest generation %d lists no partitions", dataset, m.Generation)
	}
	l := dsLayout{
		dirs: make([]string, len(m.Partitions)),
		dels: make([]string, len(m.Partitions)),
	}
	for i, p := range m.Partitions {
		dir := dataset + "/" + p.Dir
		l.dirs[i] = dir
		if p.Deletes != "" {
			l.dels[i] = dir + "/" + p.Deletes
		}
	}
	return l, nil
}

// layoutCached resolves a dataset's layout through a per-planning-operation
// cache, so the members of one shared batch plan against one snapshot even
// if a commit lands between their planning passes.
func layoutCached(fs *hdfs.FileSystem, dataset string, cache map[string]dsLayout) (dsLayout, error) {
	if cache != nil {
		if l, ok := cache[dataset]; ok {
			return l, nil
		}
	}
	l, err := datasetLayout(fs, dataset)
	if err != nil {
		return l, err
	}
	if cache != nil {
		cache[dataset] = l
	}
	return l, nil
}

// isFreshPartition reports whether dir is a not-yet-compacted ingest
// partition (a seq-N split-directory), for the merge-on-read counter.
func isFreshPartition(dir string) bool {
	base := dir
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		base = dir[i+1:]
	}
	return strings.HasPrefix(base, "seq-")
}
