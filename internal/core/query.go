package core

import (
	"colmr/internal/mapred"
	"colmr/internal/scan"
)

// ScanBuilder fluently assembles a typed CIF scan — the front door of the
// query API. It produces a scan.Spec (the single source of truth the
// planner and readers consume), a ready JobConf, or a whole map job:
//
//	job := core.ScanDataset("/data/visits").
//		Columns("url", "fetchTime").
//		Where(scan.HasPrefix("url", "http://www.ibm.com")).
//		Lazy(true).
//		Job(mapper)
//
// Each method returns the builder for chaining; Spec/Conf/Job snapshot the
// state, so one builder can stamp out several variants.
type ScanBuilder struct {
	paths []string
	spec  scan.Spec
}

// ScanDataset starts a builder over one or more CIF dataset directories.
func ScanDataset(paths ...string) *ScanBuilder {
	return &ScanBuilder{paths: append([]string(nil), paths...)}
}

// Columns sets the projection — only the named columns' files are opened
// and materialized. Unset means every column.
func (b *ScanBuilder) Columns(cols ...string) *ScanBuilder {
	b.spec.Columns = append([]string(nil), cols...)
	return b
}

// Where sets the pushdown predicate: zone-map statistics prune record
// groups and split-directories, filter columns decide the remainder.
func (b *ScanBuilder) Where(p scan.Predicate) *ScanBuilder {
	b.spec.Predicate = p
	return b
}

// Lazy selects lazy record construction (paper Section 5).
func (b *ScanBuilder) Lazy(on bool) *ScanBuilder {
	b.spec.Lazy = on
	return b
}

// Elide enables or disables scheduler-tier split elision (default on).
func (b *ScanBuilder) Elide(on bool) *ScanBuilder {
	b.spec.NoElide = !on
	return b
}

// Bloom enables or disables Bloom-filter consultation at every pruning
// tier (default on). Filters already written into stats footers are simply
// not consulted when off, restoring zone-map-only pruning.
func (b *ScanBuilder) Bloom(on bool) *ScanBuilder {
	b.spec.NoBloom = !on
	return b
}

// Vectorize enables or disables batch predicate execution (default on).
// With a predicate set, record groups are decoded per column into typed
// vectors and evaluated batch-at-a-time over selection bitmaps; results,
// record order, and pruning counters are identical either way, only the
// decode cost model changes. Off restores the record-at-a-time loop.
func (b *ScanBuilder) Vectorize(on bool) *ScanBuilder {
	b.spec.NoVec = !on
	return b
}

// Aggregate pushes an aggregation into the scan: the functions (and the
// optional GROUP BY) are answered inside the readers — from zone
// statistics where they suffice, from decoded vectors otherwise — and no
// record ever reaches a map function. Use AggJob (or a Conf with neither
// Mapper nor Output) to run it; the job's Result.Agg carries the rows.
func (b *ScanBuilder) Aggregate(a *scan.Aggregate) *ScanBuilder {
	b.spec.Agg = a.Clone()
	return b
}

// DirsPerSplit assigns this many split-directories to one map task
// (AutoDirsPerSplit sizes tasks from estimated selectivity).
func (b *ScanBuilder) DirsPerSplit(n int) *ScanBuilder {
	b.spec.DirsPerSplit = n
	return b
}

// Spec returns a copy of the assembled scan specification.
func (b *ScanBuilder) Spec() *scan.Spec { return b.spec.Clone() }

// Conf returns a JobConf carrying the input paths and the typed spec.
func (b *ScanBuilder) Conf() mapred.JobConf {
	return mapred.JobConf{
		InputPaths: append([]string(nil), b.paths...),
		Scan:       b.Spec(),
	}
}

// Job returns a runnable map job over the scan: CIF input, the given
// mapper, and output discarded (NullOutput). Callers add Reducer, Combiner,
// OutputPath/Output, and NumReducers as needed — the conf and spec are
// owned by the returned job.
func (b *ScanBuilder) Job(m mapred.Mapper) *mapred.Job {
	return &mapred.Job{
		Conf:   b.Conf(),
		Input:  &InputFormat{},
		Mapper: m,
		Output: mapred.NullOutput{},
	}
}

// AggJob returns a runnable aggregation job over the scan (Aggregate must
// have been set): no mapper, no reducer, no output — the scan answers the
// query, and the run's Result.Agg carries the aggregate rows.
func (b *ScanBuilder) AggJob() *mapred.Job {
	return &mapred.Job{
		Conf:  b.Conf(),
		Input: &InputFormat{},
	}
}
