package core

import (
	"testing"

	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
)

// TestWrappersMatchBuilder: the deprecated Set* wrappers must produce a
// ScanSpec identical to the fluent builder's — they are the same API with
// different spelling.
func TestWrappersMatchBuilder(t *testing.T) {
	pred := scan.And(scan.HasPrefix("url", "http://www.ibm.com"), scan.Gt("fetchTime", int64(42)))

	built := ScanDataset("/data/crawl").
		Columns("url", "fetchTime").
		Where(pred).
		Lazy(true).
		Elide(false).
		Bloom(false).
		DirsPerSplit(AutoDirsPerSplit).
		Conf()

	wrapped := mapred.JobConf{InputPaths: []string{"/data/crawl"}}
	SetColumns(&wrapped, "url", "fetchTime")
	SetLazy(&wrapped, true)
	scan.SetPredicate(&wrapped, pred)
	scan.SetElision(&wrapped, false)
	scan.SetBloom(&wrapped, false)
	wrapped.ScanSpec().DirsPerSplit = AutoDirsPerSplit

	if !wrapped.Scan.Equal(built.Scan) {
		t.Errorf("wrapper spec %+v != builder spec %+v", wrapped.Scan, built.Scan)
	}
	if len(wrapped.Props) != 0 {
		t.Errorf("wrappers left props behind: %v", wrapped.Props)
	}

	// Defaults agree too.
	if !ScanDataset("/d").Conf().Scan.Equal(&scan.Spec{}) {
		t.Error("builder default spec is not the zero spec")
	}
}

// TestWrappersClearProps: clearing a setting must delete its legacy prop
// rather than leaving an empty-string value to confuse conf diffing — and
// the typed spec must agree.
func TestWrappersClearProps(t *testing.T) {
	conf := mapred.JobConf{}
	// Simulate a conf that came in with serialized props.
	conf.Set(scan.PredicateProp, "x <= 5")
	conf.Set(scan.ElideProp, "false")
	conf.Set(ColumnsProp, "a,b")
	conf.Set(LazyProp, "true")

	scan.SetPredicate(&conf, nil)
	scan.SetElision(&conf, true)
	SetColumns(&conf)
	SetLazy(&conf, false)

	if len(conf.Props) != 0 {
		t.Errorf("cleared settings left props behind: %v", conf.Props)
	}
	if !conf.Scan.Equal(&scan.Spec{}) {
		t.Errorf("cleared conf's spec is not the zero spec: %+v", conf.Scan)
	}
}

// TestLegacyPropsResolve: a specless conf carrying only serialized props —
// the colscan -where style of input — must resolve to the same spec the
// wrappers build.
func TestLegacyPropsResolve(t *testing.T) {
	props := mapred.JobConf{InputPaths: []string{"/d"}}
	props.Set(ColumnsProp, "url, fetchTime")
	props.Set(LazyProp, "true")
	props.Set(scan.PredicateProp, `prefix(url, "http://a") && fetchTime > 42`)
	props.Set(scan.ElideProp, "false")

	got, err := resolveSpec(&props)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := scan.Parse(`prefix(url, "http://a") && fetchTime > 42`)
	if err != nil {
		t.Fatal(err)
	}
	want := scan.Spec{Columns: []string{"url", "fetchTime"}, Predicate: pred, Lazy: true, NoElide: true}
	if !got.Equal(&want) {
		t.Errorf("legacy props resolved to %+v, want %+v", got, want)
	}

	// A typed field beats its prop; fields the typed API set through the
	// wrappers also clear their props, so nothing lingers to disagree.
	SetColumns(&props, "url")
	scan.SetPredicate(&props, nil)
	SetLazy(&props, false)
	scan.SetElision(&props, true)
	got, err = resolveSpec(&props)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lazy || got.NoElide || len(got.Columns) != 1 || got.Predicate != nil {
		t.Errorf("wrapper-set fields did not win over props: %+v", got)
	}
}

// TestWrapperKeepsOtherProps: touching one setting through the typed API
// must not discard settings that arrived as serialized props — the
// conf-string predicate survives a SetLazy call.
func TestWrapperKeepsOtherProps(t *testing.T) {
	conf := mapred.JobConf{InputPaths: []string{"/d"}}
	conf.Set(scan.PredicateProp, "x <= 5")
	SetLazy(&conf, true)

	got, err := resolveSpec(&conf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Predicate == nil || got.Predicate.String() != "x <= 5" {
		t.Fatalf("prop predicate dropped after SetLazy: %+v", got)
	}
	if !got.Lazy {
		t.Fatal("typed Lazy lost")
	}

	// And the other way round: a typed predicate survives prop-side lazy.
	conf2 := mapred.JobConf{InputPaths: []string{"/d"}}
	scan.SetPredicate(&conf2, scan.Le("x", 5))
	conf2.Set(LazyProp, "true")
	got, err = resolveSpec(&conf2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Predicate == nil || !got.Lazy {
		t.Fatalf("typed predicate + prop lazy did not merge: %+v", got)
	}
}

// TestBuilderJobRuns: the builder's Job must validate and run end to end,
// and the spec must actually drive the scan (projection + predicate).
func TestBuilderJobRuns(t *testing.T) {
	fs := testFS(t, 4)
	loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 128}, 512)

	var urls int
	job := ScanDataset("/data/crawl").
		Columns("url").
		Where(scan.NotNull("url")).
		Lazy(true).
		Job(mapred.MapperFunc(func(_, v any, _ mapred.Emit) error {
			if _, err := v.(serde.Record).Get("url"); err != nil {
				return err
			}
			urls++
			return nil
		}))
	if err := job.Validate(); err != nil {
		t.Fatalf("builder job does not validate: %v", err)
	}
	res, err := mapred.Run(fs, job)
	if err != nil {
		t.Fatal(err)
	}
	if urls != 512 || res.Total.RecordsProcessed != 512 {
		t.Errorf("scanned %d urls, %d records, want 512", urls, res.Total.RecordsProcessed)
	}
	// Projection pushdown held: only url (the single projected and filter
	// column) was opened, so the metadata/content columns cost nothing.
	if res.Total.CPU.MapBytes != 0 {
		t.Errorf("map-typed columns decoded %d bytes under a url-only projection", res.Total.CPU.MapBytes)
	}
}
