package core

import (
	"fmt"

	"colmr/internal/colfile"
	"colmr/internal/scan"
)

// Selection pushdown (the scan subsystem's execution side). When a job
// carries a predicate (scan.SetPredicate), the CIF Reader drives the
// shared hierarchical planner (scan.Planner) below record materialization.
// Two of the four pruning tiers live in this reader; the scheduler tier
// runs in InputFormat.PlannedSplits before the reader exists:
//
//  1. File pruning: each split-directory's filter-column files are judged
//     by their whole-file aggregate statistics before any header is
//     parsed (Reader.pruneDirFiles); a NoMatch proof crosses the whole
//     directory touching only footers.
//  2. Group pruning: at each new record group, the planner tests the
//     predicate against the zone-map statistics of its filter columns
//     (colfile.StatsSource). A NoMatch proof advances curPos past the
//     whole group without touching any column file — the skipped records
//     are later crossed by the cursors' skip-list machinery, charging
//     skips instead of reads.
//  3. Record filtering: for records in groups the zone maps cannot rule
//     out, only the filter columns are evaluated exactly. Map-key tests
//     on DCSL columns resolve through the window dictionary (one lookup
//     refutes a whole window) and a per-record id walk, materializing
//     nothing; other tests materialize the filter column through the same
//     per-cursor cache lazy records use. Non-qualifying records never
//     materialize the remaining projected columns.
//
// Filter columns outside the projection are opened as extra cursors; the
// record handed to the map function still carries only the projected
// schema.

// qualifies decides whether the record at curPos passes the pushdown
// predicate, advancing curPos past provably irrelevant groups as a side
// effect (the caller's scan loop then re-checks bounds).
func (r *Reader) qualifies() (bool, error) {
	if r.curPos >= r.pruneValidTo {
		// The planner's group-tier verdict is scoped to the narrowest
		// group consulted: on NoMatch the scan loop steps past it; on
		// MayMatch per-record evaluation runs without re-consulting zone
		// maps until curPos crosses the bound. byBloom splits out the
		// proofs only a Bloom filter could make.
		tri, end, byBloom := r.planner.PruneGroup(r.curPos, r.total, r.groupStats)
		if tri == scan.NoMatch {
			if r.stats != nil {
				r.stats.GroupsPruned++
				r.stats.RecordsPruned += end - r.curPos
				if byBloom {
					r.stats.BloomPruned++
				}
			}
			r.curPos = end - 1
			return false, nil
		}
		r.pruneValidTo = end
	}
	match, err := r.planner.Predicate().Eval(r.eval)
	if err != nil {
		return false, err
	}
	if !match && r.stats != nil {
		r.stats.RecordsFiltered++
	}
	return match, nil
}

// groupStats resolves one filter column's zone maps for the planner's
// group tier.
func (r *Reader) groupStats(col string, rec int64) (*scan.ColStats, int64) {
	c, err := r.cursorFor(col)
	if err != nil {
		return nil, 0
	}
	src, ok := c.r.(colfile.StatsSource)
	if !ok {
		return nil, 0
	}
	return src.GroupStats(rec)
}

// evalCtx adapts the Reader to scan.Evaluator for the value tier: plain
// value access goes through the per-record cursor cache, and map-key tests
// are routed to the column reader's prober when it has one (DCSL).
type evalCtx struct {
	r *Reader
}

// Value implements scan.Evaluator.
func (e evalCtx) Value(col string) (any, error) {
	c, err := e.r.cursorFor(col)
	if err != nil {
		return nil, err
	}
	return e.r.valueAt(c)
}

// HasKey implements scan.Evaluator: key-existence tests on probing layouts
// are decided without materializing the map value. A record whose map is
// already cached answers from the cache instead (answered=false falls back
// to Value, which is then free).
func (e evalCtx) HasKey(col, key string) (bool, bool, error) {
	r := e.r
	c, err := r.cursorFor(col)
	if err != nil {
		return false, false, err
	}
	if c.cachedPos == r.curPos {
		return false, false, nil
	}
	kp, ok := c.r.(colfile.KeyProber)
	if !ok {
		return false, false, nil
	}
	if err := c.r.SkipTo(r.curPos); err != nil {
		return false, false, fmt.Errorf("core: column %q skip to %d: %w", c.name, r.curPos, err)
	}
	return kp.HasKey(key)
}

// valueAt materializes cursor c's value for the record curPos points at,
// through the per-record cache shared by lazy records, predicate
// evaluation, and eager materialization: each column of each record is
// deserialized at most once, however many consumers ask.
func (r *Reader) valueAt(c *cursor) (any, error) {
	if c.cachedPos == r.curPos {
		return c.cached, nil
	}
	// A column already decoded for the active batch serves from its vector:
	// the cursor was advanced to the batch end by the decode, so the vector
	// is also the only correct source for rows inside the batch.
	if b := r.batch; b != nil && b.contains(r.curPos) {
		if v := b.vecAt(c.name); v != nil {
			val := v.Value(int(r.curPos - b.start))
			if r.stats != nil && v.Kind != scan.VecAny {
				// Boxing on serve; VecAny rows were charged at decode.
				r.stats.CPU.ValuesMaterialized++
			}
			c.cached = val
			c.cachedPos = r.curPos
			return val, nil
		}
	}
	// lastPos -> curPos: cross the records nothing asked for. Skip-list
	// layouts charge cheap skips; plain layouts degrade to walking.
	if err := c.r.SkipTo(r.curPos); err != nil {
		return nil, fmt.Errorf("core: column %q skip to %d: %w", c.name, r.curPos, err)
	}
	v, err := c.r.Value()
	if err != nil {
		return nil, fmt.Errorf("core: column %q record %d: %w", c.name, r.curPos, err)
	}
	c.cached = v
	c.cachedPos = r.curPos
	return v, nil
}
