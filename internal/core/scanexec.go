package core

import (
	"fmt"

	"colmr/internal/colfile"
	"colmr/internal/scan"
)

// Selection pushdown (the scan subsystem's execution side). When a job
// carries a predicate (scan.SetPredicate), the CIF Reader evaluates it
// below record materialization:
//
//  1. Group pruning: at each new record group, the predicate is tested
//     against the zone-map statistics of its filter columns
//     (colfile.StatsSource). A NoMatch proof advances curPos past the
//     whole group without touching any column file — the skipped records
//     are later crossed by the cursors' skip-list machinery, charging
//     skips instead of reads.
//  2. Record filtering: for records in groups the zone maps cannot rule
//     out, only the filter columns are materialized (through the same
//     per-cursor cache lazy records use) and the predicate is evaluated
//     exactly. Non-qualifying records never materialize the remaining
//     projected columns.
//
// Filter columns outside the projection are opened as extra cursors; the
// record handed to the map function still carries only the projected
// schema.

// qualifies decides whether the record at curPos passes the pushdown
// predicate, advancing curPos past provably irrelevant groups as a side
// effect (the caller's scan loop then re-checks bounds).
func (r *Reader) qualifies() (bool, error) {
	if r.curPos >= r.pruneValidTo {
		if skipped, ok := r.pruneGroups(); ok {
			if r.stats != nil {
				r.stats.GroupsPruned++
				r.stats.RecordsPruned += skipped
			}
			return false, nil
		}
	}
	match, err := r.pred.Eval(r.evalGet)
	if err != nil {
		return false, err
	}
	if !match && r.stats != nil {
		r.stats.RecordsFiltered++
	}
	return match, nil
}

// pruneGroups consults the filter columns' zone maps for the group
// containing curPos. On a NoMatch proof it advances curPos to the last
// record of the smallest consulted group (so the scan loop steps past it)
// and reports how many records were skipped. Otherwise it records how far
// the MayMatch verdict remains valid, so per-record scanning does not
// re-consult the same group.
func (r *Reader) pruneGroups() (skipped int64, pruned bool) {
	// minEnd is the end of the narrowest group consulted: the range
	// [curPos, minEnd) lies inside every consulted group, so a NoMatch
	// verdict holds over exactly that range. Columns may use different
	// layouts with different group geometries.
	minEnd := r.total
	statsFn := func(col string) *scan.ColStats {
		c, err := r.cursorFor(col)
		if err != nil {
			return nil
		}
		src, ok := c.r.(colfile.StatsSource)
		if !ok {
			return nil
		}
		st, end := src.GroupStats(r.curPos)
		if st == nil {
			return nil
		}
		if end < minEnd {
			minEnd = end
		}
		return st
	}
	if r.pred.Prune(statsFn) == scan.NoMatch && minEnd > r.curPos {
		skipped = minEnd - r.curPos
		r.curPos = minEnd - 1
		return skipped, true
	}
	r.pruneValidTo = minEnd
	return 0, false
}

// valueAt materializes cursor c's value for the record curPos points at,
// through the per-record cache shared by lazy records, predicate
// evaluation, and eager materialization: each column of each record is
// deserialized at most once, however many consumers ask.
func (r *Reader) valueAt(c *cursor) (any, error) {
	if c.cachedPos == r.curPos {
		return c.cached, nil
	}
	// lastPos -> curPos: cross the records nothing asked for. Skip-list
	// layouts charge cheap skips; plain layouts degrade to walking.
	if err := c.r.SkipTo(r.curPos); err != nil {
		return nil, fmt.Errorf("core: column %q skip to %d: %w", c.name, r.curPos, err)
	}
	v, err := c.r.Value()
	if err != nil {
		return nil, fmt.Errorf("core: column %q record %d: %w", c.name, r.curPos, err)
	}
	c.cached = v
	c.cachedPos = r.curPos
	return v, nil
}
