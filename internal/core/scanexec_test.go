package core

import (
	"testing"

	"colmr/internal/colfile"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// predConf builds a job conf with projection, laziness, and predicate.
func predConf(columns []string, lazy bool, pred scan.Predicate) *mapred.JobConf {
	conf := &mapred.JobConf{}
	if columns != nil {
		SetColumns(conf, columns...)
	}
	SetLazy(conf, lazy)
	if pred != nil {
		scan.SetPredicate(conf, pred)
	}
	return conf
}

// wantMatches filters the loaded records by predicate, by brute force.
func wantMatches(t *testing.T, recs []*serde.GenericRecord, pred scan.Predicate) []*serde.GenericRecord {
	t.Helper()
	var out []*serde.GenericRecord
	for _, rec := range recs {
		ok, err := pred.Eval(scan.Getter(func(col string) (any, error) { return rec.Get(col) }))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			out = append(out, rec)
		}
	}
	return out
}

func TestPredicatePushdownMatchesBruteForce(t *testing.T) {
	fs := testFS(t, 8)
	recs := loadDataset(t, fs, "/data/crawl", LoadOptions{
		SplitRecords: 64,
		Default:      colfile.Options{Layout: colfile.SkipList, StatsEvery: 16},
	}, 300)

	preds := []scan.Predicate{
		scan.HasPrefix("url", "http://ibm.com/jp"),
		scan.Gt("fetchTime", int64(1293840000000+150)),
		scan.And(
			scan.HasPrefix("url", "http://site"),
			scan.Le("fetchTime", int64(1293840000000+100)),
		),
		scan.KeyExists("metadata", "server"),
		scan.Not(scan.HasPrefix("url", "http://site")),
		scan.Or(), // constant false: everything pruned
	}
	for _, lazy := range []bool{false, true} {
		for _, pred := range preds {
			want := wantMatches(t, recs, pred)
			rows, st := scanAll(t, fs, "/data/crawl", predConf([]string{"url", "content"}, lazy, pred))
			if len(rows) != len(want) {
				t.Fatalf("lazy=%v pred=%s: got %d rows, want %d", lazy, pred, len(rows), len(want))
			}
			for i, row := range rows {
				wurl, _ := want[i].Get("url")
				if !serde.ValuesEqual(serde.String(), row["url"], wurl) {
					t.Fatalf("lazy=%v pred=%s: row %d url mismatch", lazy, pred, i)
				}
				wcontent, _ := want[i].Get("content")
				if !serde.ValuesEqual(serde.Bytes(), row["content"], wcontent) {
					t.Fatalf("lazy=%v pred=%s: row %d content mismatch", lazy, pred, i)
				}
			}
			if st.RecordsPruned+st.RecordsFiltered+int64(len(rows)) != int64(len(recs)) {
				t.Errorf("lazy=%v pred=%s: pruned %d + filtered %d + returned %d != total %d",
					lazy, pred, st.RecordsPruned, st.RecordsFiltered, len(rows), len(recs))
			}
		}
	}
}

// TestPredicateFilterColumnOutsideProjection checks that a predicate may
// reference columns the projection omits: they are read for filtering but
// do not appear in the output record.
func TestPredicateFilterColumnOutsideProjection(t *testing.T) {
	fs := testFS(t, 8)
	recs := loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 64}, 200)
	pred := scan.HasPrefix("url", "http://ibm.com/jp")
	rows, _ := scanAll(t, fs, "/data/crawl", predConf([]string{"fetchTime"}, false, pred))
	want := wantMatches(t, recs, pred)
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, row := range rows {
		if len(row) != 1 {
			t.Fatalf("row %d has fields %v, want only fetchTime", i, row)
		}
		wv, _ := want[i].Get("fetchTime")
		if row["fetchTime"] != wv {
			t.Fatalf("row %d fetchTime = %v, want %v", i, row["fetchTime"], wv)
		}
	}
}

// TestLazyGetRejectsFilterOnlyColumn checks lazy and eager records agree:
// a predicate column outside the projection is readable by neither, even
// though the lazy reader holds an open cursor for it.
func TestLazyGetRejectsFilterOnlyColumn(t *testing.T) {
	fs := testFS(t, 8)
	loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 64}, 100)
	pred := scan.Gt("fetchTime", int64(0))
	conf := predConf([]string{"url"}, true, pred)
	conf.InputPaths = []string{"/data/crawl"}
	in := &InputFormat{}
	splits, err := in.Splits(fs, conf)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := in.Open(fs, conf, splits[0], 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	_, v, ok, err := rr.Next()
	if err != nil || !ok {
		t.Fatalf("Next = (%v, %v)", ok, err)
	}
	rec := v.(serde.Record)
	if _, err := rec.Get("url"); err != nil {
		t.Fatalf("projected column: %v", err)
	}
	if _, err := rec.Get("fetchTime"); err == nil {
		t.Fatal("lazy Get on filter-only column should fail like eager mode")
	}
}

// TestPredicateUnknownColumn checks the error surface.
func TestPredicateUnknownColumn(t *testing.T) {
	fs := testFS(t, 8)
	loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 64}, 100)
	conf := predConf(nil, false, scan.Eq("nope", 1))
	conf.InputPaths = []string{"/data/crawl"}
	in := &InputFormat{}
	splits, err := in.Splits(fs, conf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Open(fs, conf, splits[0], 0, nil); err == nil {
		t.Fatal("predicate on unknown column should fail at Open")
	}
}

// TestZoneMapPruningSkipsGroups checks that a selective predicate on a
// skip-list layout prunes whole groups and deserializes fewer filter
// values than a full scan.
func TestZoneMapPruningSkipsGroups(t *testing.T) {
	fs := testFS(t, 8)
	// fetchTime is monotonically increasing, so zone maps slice the record
	// space cleanly: a range predicate over the tail prunes every earlier
	// group.
	loadDataset(t, fs, "/data/crawl", LoadOptions{
		SplitRecords: 100,
		Default:      colfile.Options{Layout: colfile.SkipList, StatsEvery: 10},
	}, 400)
	pred := scan.Gt("fetchTime", int64(1293840000000+389)) // last 10 records
	rows, st := scanAll(t, fs, "/data/crawl", predConf([]string{"url"}, false, pred))
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	if st.GroupsPruned == 0 || st.RecordsPruned == 0 {
		t.Errorf("no zone-map pruning: %+v", st)
	}
	// 400 records in groups of 10: 38 of 40 groups lie wholly below the
	// cut (the 390-cut is mid-group), so at least 370 records must be
	// pruned without evaluation.
	if st.RecordsPruned < 370 {
		t.Errorf("RecordsPruned = %d, want >= 370", st.RecordsPruned)
	}

	// The same scan without pushdown deserializes every url value.
	full, fullSt := scanAll(t, fs, "/data/crawl", predConf([]string{"url"}, false, nil))
	if len(full) != 400 {
		t.Fatalf("full scan returned %d rows", len(full))
	}
	if st.CPU.StringBytes >= fullSt.CPU.StringBytes {
		t.Errorf("pushdown deserialized %d string bytes, full scan %d — no savings",
			st.CPU.StringBytes, fullSt.CPU.StringBytes)
	}
	if st.CPU.SkippedBytes == 0 {
		t.Error("pushdown charged no skipped bytes")
	}
}

// TestPredicateAcrossSplitDirs checks pruning state resets between the
// split-directories of one multi-directory split.
func TestPredicateAcrossSplitDirs(t *testing.T) {
	fs := testFS(t, 8)
	recs := loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 50}, 200)
	pred := scan.HasPrefix("url", "http://ibm.com/jp")
	want := wantMatches(t, recs, pred)
	conf := predConf(nil, false, pred)
	conf.InputPaths = []string{"/data/crawl"}
	in := &InputFormat{DirsPerSplit: 4} // all 4 dirs in one split
	splits, err := in.Splits(fs, conf)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 {
		t.Fatalf("got %d splits, want 1", len(splits))
	}
	rr, err := in.Open(fs, conf, splits[0], 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	var got int
	for {
		_, v, ok, err := rr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rec := v.(serde.Record)
		url, err := rec.Get("url")
		if err != nil {
			t.Fatal(err)
		}
		wurl, _ := want[got].Get("url")
		if url != wurl {
			t.Fatalf("match %d: url %v, want %v", got, url, wurl)
		}
		got++
	}
	if got != len(want) {
		t.Fatalf("got %d matches, want %d", got, len(want))
	}
}

// TestPredicateViaJob runs pushdown through the full MapReduce engine.
func TestPredicateViaJob(t *testing.T) {
	fs := testFS(t, 8)
	recs := loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 64}, 200)
	pred := scan.HasPrefix("url", "http://ibm.com/jp")
	want := wantMatches(t, recs, pred)

	conf := mapred.JobConf{InputPaths: []string{"/data/crawl"}}
	SetColumns(&conf, "url")
	SetLazy(&conf, true)
	scan.SetPredicate(&conf, pred)
	var seen int
	job := &mapred.Job{
		Conf:   conf,
		Output: mapred.NullOutput{},
		Input:  &InputFormat{},
		Mapper: mapred.MapperFunc(func(_, value any, emit mapred.Emit) error {
			rec := value.(serde.Record)
			url, err := rec.Get("url")
			if err != nil {
				return err
			}
			seen++
			return emit(url, int64(1))
		}),
	}
	res, err := mapred.Run(fs, job)
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(want) {
		t.Fatalf("map saw %d records, want %d", seen, len(want))
	}
	if res == nil {
		t.Fatal("nil result")
	}
}

// TestDCSLDictionaryProbeAvoidsMaterialization checks the value tier's
// dictionary-aware key tests: an exists() predicate over a DCSL column is
// decided from the window dictionary and per-record id lists, so the map
// values never materialize. The same scan over a skip-list layout (no
// prober) must return identical rows while building every filter map.
func TestDCSLDictionaryProbeAvoidsMaterialization(t *testing.T) {
	pred := scan.KeyExists("metadata", "server") // present in every record
	run := func(layout colfile.Layout) (int, int64) {
		fs := testFS(t, 8)
		loadDataset(t, fs, "/data/crawl", LoadOptions{
			SplitRecords: 64,
			Default:      colfile.Options{Layout: colfile.SkipList, StatsEvery: 16},
			PerColumn:    map[string]colfile.Options{"metadata": {Layout: layout, StatsEvery: 16}},
		}, 200)
		rows, st := scanAll(t, fs, "/data/crawl", predConf([]string{"fetchTime"}, false, pred))
		return len(rows), st.CPU.ValuesMaterialized
	}
	dcslRows, dcslValues := run(colfile.DCSL)
	slRows, slValues := run(colfile.SkipList)
	if dcslRows != 200 || slRows != 200 {
		t.Fatalf("rows = %d (dcsl) / %d (skiplist), want 200", dcslRows, slRows)
	}
	// The skip-list reader materializes each record's metadata map (four
	// values: three entries plus the map) to answer exists(); the DCSL
	// prober answers from ids alone, leaving only the projected column.
	if dcslValues*2 >= slValues {
		t.Errorf("DCSL probe materialized %d values vs %d without probing — no savings", dcslValues, slValues)
	}
}

// TestElisionInJobStats runs a real MapReduce job over a multi-split
// dataset with a selective predicate on a clustered column and checks the
// engine surfaces the scheduler tier: fewer map tasks than
// split-directories, SplitsPruned in the job's aggregate stats, and output
// identical to a run with elision disabled.
func TestElisionInJobStats(t *testing.T) {
	fs := testFS(t, 8)
	loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 50}, 400) // 8 split-directories
	pred := scan.Gt("fetchTime", int64(1293840000000+379))                // last 20 records

	run := func(elide bool) *mapred.Result {
		conf := predConf([]string{"url"}, false, pred)
		conf.InputPaths = []string{"/data/crawl"}
		scan.SetElision(conf, elide)
		res, err := mapred.Run(fs, &mapred.Job{
			Conf:   *conf,
			Output: mapred.NullOutput{},
			Input:  &InputFormat{},
			Mapper: mapred.MapperFunc(func(_, value any, emit mapred.Emit) error {
				url, err := value.(serde.Record).Get("url")
				if err != nil {
					return err
				}
				return emit(url, int64(1))
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	on := run(true)
	off := run(false)
	if on.Plan.SplitsTotal != 8 || on.Plan.SplitsPruned == 0 {
		t.Fatalf("plan = %+v, want some of 8 split-directories pruned", on.Plan)
	}
	if got, want := len(on.MapTasks), 8-on.Plan.SplitsPruned; got != want {
		t.Errorf("%d map tasks ran, want %d", got, want)
	}
	if on.Total.SplitsPruned == 0 {
		t.Error("SplitsPruned missing from job stats")
	}
	if off.Plan.SplitsPruned != 0 || len(off.MapTasks) != 8 {
		t.Fatalf("elision disabled: plan %+v over %d tasks, want 8 unpruned", off.Plan, len(off.MapTasks))
	}
	if on.OutputRecords != off.OutputRecords || on.OutputRecords != 20 {
		t.Errorf("output = %d (elide) vs %d (baseline), want 20", on.OutputRecords, off.OutputRecords)
	}
	// The engine folds elided records into the job total, so the tier-sum
	// invariant holds in both modes.
	for name, res := range map[string]*mapred.Result{"elide": on, "baseline": off} {
		sum := res.Total.RecordsPruned + res.Total.RecordsFiltered + res.Total.RecordsProcessed
		if sum != 400 {
			t.Errorf("%s: pruned %d + filtered %d + processed %d = %d, want 400",
				name, res.Total.RecordsPruned, res.Total.RecordsFiltered, res.Total.RecordsProcessed, sum)
		}
	}
}

// TestReaderFileTierPrunesHandBuiltSplit exercises the reader-side file
// pruning tier, which planner-judged splits skip (the scheduler already
// held the same proof): a hand-built multi-directory split must cross
// irrelevant directories from footer aggregates alone, counting
// FilesPruned, without parsing a header or charging a data byte.
func TestReaderFileTierPrunesHandBuiltSplit(t *testing.T) {
	fs := testFS(t, 8)
	loadDataset(t, fs, "/data/crawl", LoadOptions{SplitRecords: 100}, 400)
	dirs, err := listSplitDirs(fs, "/data/crawl")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 4 {
		t.Fatalf("got %d split-directories, want 4", len(dirs))
	}
	pred := scan.Gt("fetchTime", int64(1293840000000+389)) // last 10 records
	conf := predConf([]string{"url"}, false, pred)
	conf.InputPaths = []string{"/data/crawl"}

	var st sim.TaskStats
	rr, err := (&InputFormat{}).Open(fs, conf, &Split{Dirs: dirs}, 0, &st)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	rows := 0
	for {
		_, _, ok, err := rr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows++
	}
	if rows != 10 {
		t.Fatalf("got %d rows, want 10", rows)
	}
	// Three of four directories lie wholly below the cut: each is pruned
	// at the file tier (two open files per directory: url + fetchTime).
	if st.FilesPruned != 6 {
		t.Errorf("FilesPruned = %d, want 6", st.FilesPruned)
	}
	if st.RecordsPruned+st.RecordsFiltered+int64(rows) != 400 {
		t.Errorf("pruned %d + filtered %d + returned %d != 400", st.RecordsPruned, st.RecordsFiltered, rows)
	}
}
