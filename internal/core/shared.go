package core

import (
	"fmt"

	"colmr/internal/colfile"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
	"colmr/internal/vec"
)

// Shared scans (the batch engine's storage side). A SharedReader drives one
// cursor set over a split's directories for N co-scheduled member jobs:
//
//   - the cursors cover the union of the members' projected and filter
//     columns, and the pushdown predicate is the union (OR) of the members'
//     predicates, so group pruning jumps only the regions *no* member can
//     match and the scan runs at the union's selectivity;
//   - each record surfacing from the union scan is demultiplexed by the
//     members' residual predicates (identical residuals share one verdict
//     per record via scan.Union's eval groups), and qualifying members
//     receive the record under their own projection and materialization
//     mode;
//   - each member keeps solo-exact logical accounting. The member's own
//     planner replays the solo reader's group-tier consultation sequence —
//     the same positions, the same verdicts, the same extents — so per-job
//     GroupsPruned / RecordsPruned / RecordsFiltered match a solo run
//     exactly and "pruned + filtered + returned == dataset size" holds per
//     job. This works because a position inside any member's established
//     may-match region can never be skipped by the union tier: the union
//     OR prunes only where every member's subtree proves NoMatch over the
//     same statistics.
//
// Physical work is attributed once: every column stream charges a per-column
// I/O bucket which Close folds into the shared TaskStats, along with
// SharedReads (cursor opens avoided) and BytesSaved (charged bytes times the
// additional members each stream served). Member TaskStats carry logical
// counters only.

// SharedSplits implements mapred.SharedInputFormat: per-job split planning
// (scheduler-tier elision with each job's own predicate) followed by
// co-scheduling. Directories surviving for the same member set are merged
// into shared splits in global directory order, so each member's record
// order across the batch equals its solo split order. Each run then passes
// cost-based admission (admitRun): members whose union predicate would
// destroy a selective member's pruning are split into separate shared
// groups, with the declined pairings counted in each member's PruneReport.
func (f *InputFormat) SharedSplits(fs *hdfs.FileSystem, confs []*mapred.JobConf) ([]mapred.SharedSplit, []scan.PruneReport, error) {
	reports := make([]scan.PruneReport, len(confs))
	plans := make([]dirPlan, len(confs))
	// One layout snapshot per dataset for the whole batch: a manifest commit
	// landing mid-planning must not hand members different generations of
	// one cursor set.
	layouts := make(map[string]dsLayout)
	for i, conf := range confs {
		plan, err := f.planDirs(fs, conf, true, layouts)
		if err != nil {
			return nil, nil, fmt.Errorf("core: planning batch member %d: %w", i, err)
		}
		plans[i] = plan
		reports[i] = plan.report
	}
	// Global directory order: datasets in first-appearance order across
	// members, directories in scan order within each dataset.
	var datasetOrder []string
	allOf := make(map[string][]string)
	delOf := make(map[string]string)
	membersOf := make(map[string][]int)
	for i := range plans {
		for _, ds := range plans[i].datasets {
			if _, ok := allOf[ds.path]; !ok {
				datasetOrder = append(datasetOrder, ds.path)
				allOf[ds.path] = ds.all
				for di, dir := range ds.all {
					delOf[dir] = ds.allDels[di]
				}
			}
			for _, dir := range ds.kept {
				membersOf[dir] = append(membersOf[dir], i)
			}
		}
	}
	var out []mapred.SharedSplit
	for _, dataset := range datasetOrder {
		dirs := allOf[dataset]
		for i := 0; i < len(dirs); {
			ms := membersOf[dirs[i]]
			if len(ms) == 0 {
				i++
				continue
			}
			// A run of consecutive directories with an identical member set
			// is one co-scheduling unit; the member-set boundary is also a
			// task boundary so per-member accounting stays per-plan.
			j := i + 1
			for j < len(dirs) && sameMembers(membersOf[dirs[j]], ms) {
				j++
			}
			run := dirs[i:j]
			// Cost-based admission: split the member set into clusters whose
			// union predicates keep each member's pruning intact. Declined
			// pairings are reported per member (a member in a cluster of c
			// lost len(ms)-c potential co-scan partners).
			for _, cl := range f.admitRun(fs, plans, ms, run) {
				if declined := len(ms) - len(cl); declined > 0 {
					for _, m := range cl {
						reports[m].SharedDeclined += declined
					}
				}
				runPreds := make([]scan.Predicate, len(cl))
				for k, m := range cl {
					runPreds[k] = plans[m].pred
				}
				union := scan.NewUnion(runPreds)
				// The cluster's task sizing follows its first member's
				// resolved directories-per-split (and its bloom setting,
				// which only sharpens the estimate); the batch scheduler only
				// groups jobs whose sizing agrees.
				per := f.splitSize(fs, plans[cl[0]].dps, union.Shared, plans[cl[0]].bloom, run)
				cols := unionColumns(plans, cl)
				for a := 0; a < len(run); a += per {
					b := a + per
					if b > len(run) {
						b = len(run)
					}
					dels := make([]string, b-a)
					for di, dir := range run[a:b] {
						dels[di] = delOf[dir]
					}
					out = append(out, mapred.SharedSplit{
						Split:   &Split{Dirs: run[a:b], Dels: dels, Columns: cols, Judged: true},
						Members: append([]int(nil), cl...),
					})
				}
			}
			i = j
		}
	}
	return out, reports, nil
}

// admitRun partitions a run's member set into co-admission clusters:
// greedily, in member order, a member joins the first cluster whose
// widened union predicate stays scan.AdmissionCompatible with the
// cluster's most selective member, else opens its own. Splitting the set
// never changes any member's output or logical counters (each member's
// replay accounting is solo-exact regardless of co-members) — only which
// cursor sets are shared — so admission is purely a cost decision. When
// selectivity estimation fails for any member, the whole set stays one
// cluster, which is the pre-cost-model behavior.
func (f *InputFormat) admitRun(fs *hdfs.FileSystem, plans []dirPlan, ms []int, run []string) [][]int {
	if len(ms) < 2 {
		return [][]int{ms}
	}
	fracs := make(map[int]float64, len(ms))
	for _, m := range ms {
		fr := 1.0
		if plans[m].pred != nil {
			var ok bool
			if fr, ok = runFraction(fs, run, plans[m].pred, plans[m].bloom); !ok {
				return [][]int{ms}
			}
		}
		fracs[m] = fr
	}
	var clusters [][]int
	for _, m := range ms {
		placed := false
		for ci, cl := range clusters {
			cand := append(append([]int(nil), cl...), m)
			preds := make([]scan.Predicate, len(cand))
			minFrac := 1.0
			for k, cm := range cand {
				preds[k] = plans[cm].pred
				if fracs[cm] < minFrac {
					minFrac = fracs[cm]
				}
			}
			// A nil union predicate means some candidate member takes every
			// record: the shared cursors run unfiltered.
			uf := 1.0
			if u := scan.NewUnion(preds); u.Shared != nil {
				var ok bool
				if uf, ok = runFraction(fs, run, u.Shared, plans[cand[0]].bloom); !ok {
					uf = 1.0
				}
			}
			if scan.AdmissionCompatible(uf, minFrac) {
				clusters[ci] = cand
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, []int{m})
		}
	}
	return clusters
}

// runFraction estimates the qualifying fraction of pred over a run of
// split-directories from footer statistics, false when any directory
// cannot be estimated.
func runFraction(fs *hdfs.FileSystem, dirs []string, pred scan.Predicate, bloom bool) (float64, bool) {
	var rows, est float64
	for _, dir := range dirs {
		r, e, ok := estimateDirMatches(fs, dir, pred, bloom)
		if !ok {
			return 0, false
		}
		rows += r
		est += e
	}
	if rows == 0 {
		return 0, false
	}
	return est / rows, true
}

// sameMembers reports whether two (sorted, append-ordered) member lists are
// identical.
func sameMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// unionColumns merges the members' locality columns; nil (all columns) wins.
func unionColumns(plans []dirPlan, ms []int) []string {
	var cols []string
	for _, m := range ms {
		if plans[m].columns == nil {
			return nil
		}
		for _, c := range plans[m].columns {
			cols = appendColumnName(cols, c)
		}
	}
	return cols
}

func appendColumnName(dst []string, col string) []string {
	for _, c := range dst {
		if c == col {
			return dst
		}
	}
	return append(dst, col)
}

// OpenShared implements mapred.SharedInputFormat.
func (f *InputFormat) OpenShared(fs *hdfs.FileSystem, confs []*mapred.JobConf, split mapred.Split, members []int, node hdfs.NodeID, memberStats []*sim.TaskStats, shared *sim.TaskStats) (mapred.SharedRecordReader, error) {
	csplit, ok := split.(*Split)
	if !ok {
		return nil, fmt.Errorf("core: unexpected split type %T", split)
	}
	if len(csplit.Dirs) == 0 {
		return nil, fmt.Errorf("core: empty split")
	}
	if len(members) == 0 || len(members) != len(memberStats) {
		return nil, fmt.Errorf("core: %d members with %d stats sinks", len(members), len(memberStats))
	}
	schema, err := readSplitSchema(fs, csplit.Dirs[0])
	if err != nil {
		return nil, err
	}
	sr := &SharedReader{
		fs:       fs,
		node:     node,
		shared:   shared,
		schema:   schema,
		dirs:     csplit.Dirs,
		delFiles: csplit.Dels,
		dirIdx:   -1,
	}
	preds := make([]scan.Predicate, len(members))
	anyNoBloom := false
	allVec := true
	for k, mi := range members {
		conf := confs[mi]
		spec, err := resolveSpec(conf)
		if err != nil {
			return nil, err
		}
		if spec.NoBloom {
			anyNoBloom = true
		}
		if spec.NoVec {
			// One scalar member makes the whole cursor set scalar: the
			// switch is an A/B lever, and mixing modes inside one batch
			// would blur what it measures.
			allVec = false
		}
		if sr.cache == nil {
			// All members of a session batch carry the same cache; take the
			// first one present so hand-mixed batches still behave.
			sr.cache = conf.Cache
		}
		if sr.vecCache == nil {
			sr.vecCache = conf.VecCache
		}
		cols := spec.Columns
		proxyOnly := false
		if spec.Agg != nil && len(cols) == 0 {
			// An aggregating member materializes nothing; its cursor needs
			// are the aggregate's inputs (or any one column, for pure COUNT,
			// to pace the scan).
			if cols = spec.Agg.Columns(nil); len(cols) == 0 {
				proxyOnly = true
				if fc := scan.NewPlanner(spec.Predicate).FilterColumns(); len(fc) > 0 {
					cols = fc[:1]
				} else if len(schema.Fields) > 0 {
					cols = []string{schema.Fields[0].Name}
				}
			}
		}
		proj := schema
		if len(cols) > 0 {
			if proj, err = schema.Project(cols...); err != nil {
				return nil, err
			}
		} else {
			cols = schema.FieldNames()
		}
		pred := spec.Predicate
		need := make(map[string]bool, len(cols))
		for _, c := range cols {
			need[c] = true
		}
		if pred != nil {
			for _, col := range pred.Columns(nil) {
				if schema.Field(col) == nil {
					return nil, fmt.Errorf("core: predicate references unknown column %q", col)
				}
				need[col] = true
			}
		}
		preds[k] = pred
		m := &sharedMember{
			proj:      proj,
			columns:   cols,
			need:      need,
			lazy:      spec.Lazy,
			planner:   scan.NewPlanner(pred),
			stats:     memberStats[k],
			proxyOnly: proxyOnly,
		}
		if spec.Agg != nil {
			m.aggCols = spec.Agg.Columns(nil)
			for _, col := range m.aggCols {
				if schema.Field(col) == nil {
					return nil, fmt.Errorf("core: aggregate references unknown column %q", col)
				}
				need[col] = true
			}
			m.aggState = scan.NewAggState(spec.Agg)
		}
		// The member's replay planner carries the member's own bloom
		// setting, so its counters match a solo run exactly.
		m.planner.SetBloom(spec.Bloom())
		m.lrec = &sharedLazyRecord{sr: sr, m: m}
		sr.members = append(sr.members, m)
	}
	union := scan.NewUnion(preds)
	sr.planner = scan.NewPlanner(union.Shared)
	// The union tier may prune a region only where every member's own
	// replay also proves it empty (the region-consistency argument above).
	// A member that disabled bloom consultation prunes less, so the union
	// must not out-prune it: one dissenter disables the union's blooms
	// (and the cursor set's DCSL prober, whose physical charges would
	// otherwise differ from that member's solo run).
	sr.noBloom = anyNoBloom
	sr.planner.SetBloom(!anyNoBloom)
	sr.evalPos = make([]int64, union.NumGroups)
	sr.evalOK = make([]bool, union.NumGroups)
	for k, m := range sr.members {
		m.evalGroup = union.EvalGroups[k]
	}
	// Vectorized demux state: one residual predicate per evaluation group
	// (identical residuals share one batch verdict, like the scalar
	// evalPos/evalOK dedup). Vectorization needs every member filtered —
	// union.Shared nil means some member takes every record, and the batch
	// path has nothing to evaluate.
	sr.vectorize = allVec && union.Shared != nil
	sr.groupPred = make([]scan.Predicate, union.NumGroups)
	for k, m := range sr.members {
		if g := m.evalGroup; g >= 0 && sr.groupPred[g] == nil {
			sr.groupPred[g] = preds[k]
		}
	}
	sr.memberSel = make([]*scan.Selection, len(sr.members))
	if sr.vectorize {
		sr.probeOnly = make(map[string]bool)
		for _, col := range scan.ProbeOnlyColumns(sr.groupPred...) {
			sr.probeOnly[col] = true
		}
		// Dictionary-id eligibility is judged across every member's residual
		// and needs at once: any member materializing or aggregating a
		// column needs its values, so the shared cursor must not spend its
		// stream on ids.
		sr.idOnly = make(map[string]bool)
		for _, col := range scan.IDOnlyColumns(sr.groupPred...) {
			sr.idOnly[col] = true
		}
		for _, m := range sr.members {
			if !m.proxyOnly {
				for _, col := range m.columns {
					delete(sr.probeOnly, col)
					delete(sr.idOnly, col)
				}
			}
			for _, col := range m.aggCols {
				delete(sr.idOnly, col)
			}
		}
	}
	// The cursor set covers the union of the members' needs: projected
	// columns first (member order), then filter-only and aggregate-only
	// columns.
	for _, m := range sr.members {
		for _, c := range m.columns {
			sr.allCols = appendColumnName(sr.allCols, c)
		}
		for _, c := range m.aggCols {
			sr.allCols = appendColumnName(sr.allCols, c)
		}
	}
	for _, c := range union.Columns {
		sr.allCols = appendColumnName(sr.allCols, c)
	}
	sr.needers = make([]int, len(sr.allCols))
	for ci, col := range sr.allCols {
		for _, m := range sr.members {
			if m.need[col] {
				sr.needers[ci]++
			}
		}
	}
	for _, m := range sr.members {
		m.colCursor = make([]int, len(m.columns))
		for i, col := range m.columns {
			for ci, c := range sr.allCols {
				if c == col {
					m.colCursor[i] = ci
					break
				}
			}
		}
	}
	if err := sr.nextDir(); err != nil {
		sr.Close()
		return nil, err
	}
	return sr, nil
}

// SharedReader iterates a shared split for several member jobs at once,
// implementing mapred.SharedRecordReader.
type SharedReader struct {
	fs      *hdfs.FileSystem
	node    hdfs.NodeID
	shared  *sim.TaskStats
	cache   *hdfs.ScanCache
	schema  *serde.Schema
	members []*sharedMember
	planner *scan.Planner // union predicate
	noBloom bool          // true when any member disabled bloom consultation
	allCols []string
	needers []int // members needing each column

	dirs []string
	// delFiles / dels: superseded-row masking, as in the solo Reader.
	// Deleted rows never surface or fold; unlike the solo path, a deleted
	// row inside a member's may-match region lands in that member's
	// defensive RecordsFiltered count (advanceMember crosses it), an
	// accepted counter divergence on ingest datasets.
	delFiles     []string
	dels         *delSet
	dirIdx       int
	cursors      []*cursor
	colIO        []sim.IOStats // per-cursor physical I/O for the open dir
	byName       map[string]*cursor
	total        int64
	curPos       int64
	pruneValidTo int64
	done         bool

	// Residual-evaluation dedup: one verdict per eval group per record.
	evalPos []int64
	evalOK  []bool
	// matCounted is the record most recently counted as materialized
	// (once per record, however many members consumed it).
	matCounted int64

	// Vectorized demux (vecexec.go): groupPred holds one residual per eval
	// group; per batch, memberSel[i] is member i's match bitmap and batch
	// the evaluated batch. vecOK narrows vectorize per directory.
	vectorize bool
	vecOK     bool
	vecCache  *vec.Cache
	vecPool   vec.Pool
	probeOnly map[string]bool
	idOnly    map[string]bool
	groupPred []scan.Predicate
	memberSel []*scan.Selection
	batch     *colBatch

	outVals []any
	outIdx  []int
}

// sharedMember is one job's sink within a shared scan.
type sharedMember struct {
	proj      *serde.Schema
	columns   []string // projected columns, record field order
	colCursor []int    // cursor index of each projected column
	need      map[string]bool
	lazy      bool
	planner   *scan.Planner // the member's own predicate
	stats     *sim.TaskStats
	evalGroup int
	lrec      *sharedLazyRecord

	// Aggregating members fold matches instead of receiving records; their
	// records never surface from Next. Shared folds take no zone-stats
	// shortcut (the union cursor must visit the region for the other
	// members anyway), so a shared member's AggGroupsShortcut stays zero —
	// an accepted physical difference from its solo run; the folded values
	// and logical pruning counters still match exactly.
	aggState *scan.AggState
	aggCols  []string
	// proxyOnly marks a projection invented for a pure COUNT: the column
	// paces the scan but its values are never read, so it does not
	// disqualify probe-only or dictionary-id evaluation.
	proxyOnly bool

	// Solo-replay accounting state, reset per directory: acctPos is the
	// next unaccounted record, validTo bounds the current may-match region.
	acctPos int64
	validTo int64
}

// nextDir folds the finished directory's physical accounting and opens the
// next one. Unlike the solo reader there is no file pruning tier here: the
// member set already encodes each job's scheduler-tier verdict for every
// directory of the split.
func (sr *SharedReader) nextDir() error {
	sr.releaseBatch()
	sr.vecOK = false
	sr.closeCursors()
	sr.dirIdx++
	if sr.dirIdx >= len(sr.dirs) {
		sr.done = true
		return nil
	}
	dir := sr.dirs[sr.dirIdx]
	if sr.dirIdx > 0 {
		s, err := readSplitSchema(sr.fs, dir)
		if err != nil {
			return err
		}
		if !s.Equal(sr.schema) {
			return fmt.Errorf("core: split-directory %s schema differs from %s", dir, sr.dirs[0])
		}
	}
	if err := sr.openDir(dir); err != nil {
		return err
	}
	var err error
	if sr.dels, err = loadDelSet(sr.fs, delFileAt(sr.delFiles, sr.dirIdx)); err != nil {
		return err
	}
	if isFreshPartition(dir) {
		sr.shared.FreshPartitionsScanned++
	}
	sr.curPos = -1
	sr.pruneValidTo = 0
	sr.matCounted = -1
	for i := range sr.evalPos {
		sr.evalPos[i] = -1
	}
	for _, m := range sr.members {
		m.acctPos, m.validTo = 0, 0
	}
	sr.vecOK = sr.vecEligible()
	return nil
}

// openDir opens the union cursor set over dir, each stream charging its own
// I/O bucket so Close can attribute sharing savings per column.
func (sr *SharedReader) openDir(dir string) error {
	selective := sr.planner.Predicate() != nil
	ropts, collide := dirCursorOptions(sr.fs, len(sr.allCols), selective)
	ropts.NoBloom = sr.noBloom
	sr.colIO = make([]sim.IOStats, len(sr.allCols))
	closeAll := func() {
		for _, c := range sr.cursors {
			c.hr.Close()
		}
		sr.cursors = nil
		sr.colIO = nil
	}
	for i, col := range sr.allCols {
		hr, err := sr.fs.Open(dir+"/"+col, sr.node)
		if err != nil {
			closeAll()
			return fmt.Errorf("core: opening column %q: %w", col, err)
		}
		hr.SetStats(&sr.colIO[i])
		if sr.cache != nil {
			// Hits are physical accounting, credited once to the shared
			// stats like every other byte of the cursor set.
			hr.SetCache(sr.cache, sr.shared)
		}
		opts := ropts
		if collide > 0 {
			hr := hr
			opts.OnRefill = func(n, cur int) {
				hr.ChargeInterleaved(int64(float64(n)*collide*float64(sim.ReadaheadBytes)/float64(cur) + 0.5))
			}
		}
		cr, err := colfile.NewReaderOpts(hr, sr.schema.Field(col), opts, &sr.shared.CPU)
		if err != nil {
			hr.Close()
			closeAll()
			return fmt.Errorf("core: column %q: %w", col, err)
		}
		sr.cursors = append(sr.cursors, &cursor{name: col, schema: sr.schema.Field(col), hr: hr, r: cr, cachedPos: -1})
	}
	sr.byName = make(map[string]*cursor, len(sr.cursors))
	for _, c := range sr.cursors {
		sr.byName[c.name] = c
	}
	sr.total = sr.cursors[0].r.Total()
	for _, c := range sr.cursors {
		if c.r.Total() != sr.total {
			return fmt.Errorf("core: column %q has %d records, %q has %d", c.name, c.r.Total(), sr.cursors[0].name, sr.total)
		}
	}
	return nil
}

// closeCursors closes the open directory's streams and folds their physical
// accounting into the shared stats — including the sharing savings: a
// stream that served k members replaced k-1 solo cursors and their bytes.
func (sr *SharedReader) closeCursors() {
	for i, c := range sr.cursors {
		c.hr.Close()
		io := sr.colIO[i]
		sr.shared.IO.Add(io)
		if extra := sr.needers[i] - 1; extra > 0 {
			sr.shared.SharedReads += int64(extra)
			sr.shared.BytesSaved += int64(extra) * io.TotalChargedBytes()
		}
	}
	sr.cursors = nil
	sr.byName = nil
	sr.colIO = nil
}

// Next implements mapred.SharedRecordReader. The returned slices are reused
// across calls; lazy member records are valid until the next call, like the
// solo reader's.
func (sr *SharedReader) Next() (any, []any, []int, bool, error) {
	for {
		if sr.done {
			return nil, nil, nil, false, nil
		}
		// Pop the next match of the active batch; demux it by the members'
		// match bitmaps computed at batch evaluation.
		if b := sr.batch; b != nil {
			idx := b.sel.Next(b.next)
			if idx < 0 {
				sr.curPos = b.end - 1
				sr.releaseBatch()
				continue
			}
			b.next = idx + 1
			sr.curPos = b.start + int64(idx)
			sr.outVals = sr.outVals[:0]
			sr.outIdx = sr.outIdx[:0]
			for mi, m := range sr.members {
				if sr.memberSel[mi] == nil || !sr.memberSel[mi].Test(idx) {
					continue
				}
				v, err := sr.deliver(m)
				if err != nil {
					return nil, nil, nil, false, err
				}
				sr.outVals = append(sr.outVals, v)
				sr.outIdx = append(sr.outIdx, mi)
			}
			// The union selection is the OR of the member bitmaps, so at
			// least one member took the record.
			return nil, sr.outVals, sr.outIdx, true, nil
		}
		if sr.curPos+1 >= sr.total {
			sr.finishDir()
			if err := sr.nextDir(); err != nil {
				return nil, nil, nil, false, err
			}
			continue
		}
		if sr.vecOK {
			if err := sr.vecAdvance(); err != nil {
				return nil, nil, nil, false, err
			}
			continue
		}
		sr.curPos++
		pos := sr.curPos
		// Union group tier: skip regions no member can match. The union
		// extent is the narrowest group consulted across every member's
		// filter columns, so each member's own accounting re-proves (and
		// counts) the skip at its own granularity below.
		if sr.planner.Predicate() != nil && pos >= sr.pruneValidTo {
			tri, end, byBloom := sr.planner.PruneGroup(pos, sr.total, sr.groupStats)
			if tri == scan.NoMatch {
				sr.shared.GroupsPruned++
				sr.shared.RecordsPruned += end - pos
				if byBloom {
					sr.shared.BloomPruned++
				}
				sr.curPos = end - 1
				continue
			}
			sr.pruneValidTo = end
		}
		if sr.dels.has(pos) {
			continue
		}
		sr.outVals = sr.outVals[:0]
		sr.outIdx = sr.outIdx[:0]
		for mi, m := range sr.members {
			if !sr.memberWants(m, pos) {
				continue
			}
			match, err := sr.memberMatch(m, pos)
			if err != nil {
				return nil, nil, nil, false, err
			}
			m.acctPos = pos + 1
			if !match {
				m.stats.RecordsFiltered++
				continue
			}
			if m.aggState != nil {
				if err := m.aggState.FoldRecord(sharedEval{sr}); err != nil {
					return nil, nil, nil, false, err
				}
				m.stats.RowsAggregated++
				continue
			}
			v, err := sr.deliver(m)
			if err != nil {
				return nil, nil, nil, false, err
			}
			sr.outVals = append(sr.outVals, v)
			sr.outIdx = append(sr.outIdx, mi)
		}
		if len(sr.outIdx) > 0 {
			return nil, sr.outVals, sr.outIdx, true, nil
		}
	}
}

// advanceMember replays m's solo group-tier consultation sequence until
// every record below limit is accounted: consult at the next unaccounted
// position, count and jump NoMatch extents (which may legitimately
// overshoot limit — the proof covers the whole extent), extend may-match
// regions. May-match records below limit were crossed by the union cursor
// without evaluation — unreachable by the region-consistency argument in
// the package comment — and are counted filtered defensively so the
// per-job sum invariant cannot silently break.
func (sr *SharedReader) advanceMember(m *sharedMember, limit int64) {
	for m.acctPos < limit {
		if m.acctPos < m.validTo {
			end := m.validTo
			if end > limit {
				end = limit
			}
			m.stats.RecordsFiltered += end - m.acctPos
			m.acctPos = end
			continue
		}
		tri, end, byBloom := m.planner.PruneGroup(m.acctPos, sr.total, sr.groupStats)
		if tri == scan.NoMatch {
			m.stats.GroupsPruned++
			m.stats.RecordsPruned += end - m.acctPos
			if byBloom {
				m.stats.BloomPruned++
			}
			m.acctPos = end
			continue
		}
		if end <= m.acctPos {
			end = m.acctPos + 1
		}
		m.validTo = end
	}
}

// memberWants advances m's solo-replay accounting to pos and reports
// whether the member must evaluate the record exactly — so per-member
// counters are independent of the union cursor's path.
func (sr *SharedReader) memberWants(m *sharedMember, pos int64) bool {
	sr.advanceMember(m, pos)
	if m.acctPos > pos {
		return false // the member's own tier pruned past pos
	}
	if m.acctPos >= m.validTo {
		tri, end, byBloom := m.planner.PruneGroup(pos, sr.total, sr.groupStats)
		if tri == scan.NoMatch {
			m.stats.GroupsPruned++
			m.stats.RecordsPruned += end - pos
			if byBloom {
				m.stats.BloomPruned++
			}
			m.acctPos = end
			return false
		}
		if end <= pos {
			end = pos + 1
		}
		m.validTo = end
	}
	return true
}

// memberMatch decides m's residual predicate for the current record,
// sharing verdicts between members with identical residuals.
func (sr *SharedReader) memberMatch(m *sharedMember, pos int64) (bool, error) {
	p := m.planner.Predicate()
	if p == nil {
		return true, nil
	}
	g := m.evalGroup
	if g >= 0 && sr.evalPos[g] == pos {
		return sr.evalOK[g], nil
	}
	ok, err := p.Eval(sharedEval{sr})
	if err != nil {
		return false, err
	}
	if g >= 0 {
		sr.evalPos[g] = pos
		sr.evalOK[g] = ok
	}
	return ok, nil
}

// deliver materializes the current record for one member, under the
// member's own projection and materialization mode. Values flow through the
// shared per-cursor cache, so a column consumed by several members (or by a
// residual and a projection) is deserialized once.
func (sr *SharedReader) deliver(m *sharedMember) (any, error) {
	if m.lazy {
		return m.lrec, nil
	}
	rec := serde.NewRecord(m.proj)
	for i, ci := range m.colCursor {
		v, err := sr.valueAt(sr.cursors[ci])
		if err != nil {
			return nil, err
		}
		rec.SetAt(i, v)
	}
	sr.countMaterialized()
	return rec, nil
}

// countMaterialized counts record-object construction once per record,
// however many members consumed it — the object churn is shared through
// the cursor cache, so charging it per member would overstate CPU work.
func (sr *SharedReader) countMaterialized() {
	if sr.matCounted != sr.curPos {
		sr.shared.CPU.RecordsMaterialized++
		sr.matCounted = sr.curPos
	}
}

// finishDir flushes every member's accounting to the end of the open
// directory: trailing regions the union tier skipped are counted with each
// member's own group-tier verdicts, exactly as the solo reader would have.
func (sr *SharedReader) finishDir() {
	if sr.cursors == nil {
		return
	}
	for _, m := range sr.members {
		sr.advanceMember(m, sr.total)
	}
}

// AggStates implements mapred.AggSharedRecordReader: the folded state of
// each aggregating member (nil entries for members that surface records),
// indexed like the members slice. Valid after the reader is exhausted.
func (sr *SharedReader) AggStates() []*scan.AggState {
	out := make([]*scan.AggState, len(sr.members))
	for i, m := range sr.members {
		out[i] = m.aggState
	}
	return out
}

// Close implements mapred.SharedRecordReader.
func (sr *SharedReader) Close() error {
	sr.releaseBatch()
	sr.closeCursors()
	sr.done = true
	return nil
}

// groupStats resolves one column's zone maps for the union and member
// planners.
func (sr *SharedReader) groupStats(col string, rec int64) (*scan.ColStats, int64) {
	c, ok := sr.byName[col]
	if !ok {
		return nil, 0
	}
	src, ok := c.r.(colfile.StatsSource)
	if !ok {
		return nil, 0
	}
	return src.GroupStats(rec)
}

// valueAt materializes cursor c's value for the current record through the
// shared per-record cache (cf. Reader.valueAt).
func (sr *SharedReader) valueAt(c *cursor) (any, error) {
	if c.cachedPos == sr.curPos {
		return c.cached, nil
	}
	// A column decoded for the active batch serves from its vector: its
	// cursor sits at the batch end, so the vector is also the only correct
	// source for rows inside the batch (cf. Reader.valueAt).
	if b := sr.batch; b != nil && b.contains(sr.curPos) {
		if v := b.vecAt(c.name); v != nil {
			val := v.Value(int(sr.curPos - b.start))
			if v.Kind != scan.VecAny {
				// Boxing on serve; VecAny rows were charged at decode.
				sr.shared.CPU.ValuesMaterialized++
			}
			c.cached = val
			c.cachedPos = sr.curPos
			return val, nil
		}
	}
	if err := c.r.SkipTo(sr.curPos); err != nil {
		return nil, fmt.Errorf("core: column %q skip to %d: %w", c.name, sr.curPos, err)
	}
	v, err := c.r.Value()
	if err != nil {
		return nil, fmt.Errorf("core: column %q record %d: %w", c.name, sr.curPos, err)
	}
	c.cached = v
	c.cachedPos = sr.curPos
	return v, nil
}

// sharedEval adapts the SharedReader to scan.Evaluator for residual
// evaluation (cf. evalCtx in scanexec.go).
type sharedEval struct {
	sr *SharedReader
}

// Value implements scan.Evaluator.
func (e sharedEval) Value(col string) (any, error) {
	c, ok := e.sr.byName[col]
	if !ok {
		return nil, fmt.Errorf("core: column %q is not in the shared cursor set %v", col, e.sr.allCols)
	}
	return e.sr.valueAt(c)
}

// HasKey implements scan.Evaluator: map-key tests on probing layouts are
// decided without materializing the map value.
func (e sharedEval) HasKey(col, key string) (bool, bool, error) {
	sr := e.sr
	c, ok := sr.byName[col]
	if !ok {
		return false, false, fmt.Errorf("core: column %q is not in the shared cursor set %v", col, sr.allCols)
	}
	if c.cachedPos == sr.curPos {
		return false, false, nil
	}
	kp, ok := c.r.(colfile.KeyProber)
	if !ok {
		return false, false, nil
	}
	if err := c.r.SkipTo(sr.curPos); err != nil {
		return false, false, fmt.Errorf("core: column %q skip to %d: %w", c.name, sr.curPos, err)
	}
	return kp.HasKey(key)
}

// sharedLazyRecord is one member's lazy view over the shared cursor set —
// the shared-scan analogue of LazyRecord, scoped to the member's projection.
type sharedLazyRecord struct {
	sr *SharedReader
	m  *sharedMember
}

// Schema implements serde.Record.
func (l *sharedLazyRecord) Schema() *serde.Schema { return l.m.proj }

// Get implements serde.Record.
func (l *sharedLazyRecord) Get(name string) (any, error) {
	sr, m := l.sr, l.m
	if m.proj.FieldIndex(name) < 0 {
		return nil, fmt.Errorf("core: column %q is not in the projection %v", name, m.columns)
	}
	c, ok := sr.byName[name]
	if !ok {
		return nil, fmt.Errorf("core: column %q is not in the shared cursor set %v", name, sr.allCols)
	}
	v, err := sr.valueAt(c)
	if err != nil {
		return nil, err
	}
	sr.countMaterialized()
	return v, nil
}
