package core

import (
	"fmt"
	"testing"

	"colmr/internal/colfile"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// loadClustered writes a dataset whose x column is monotone in the load
// order, so split-directories cover disjoint x ranges.
func loadClustered(t *testing.T, fs *hdfs.FileSystem, dataset string, records, splits int64) {
	t.Helper()
	schema := serde.RecordOf("C",
		serde.Field{Name: "x", Type: serde.Long()},
		serde.Field{Name: "y", Type: serde.Int()},
		serde.Field{Name: "s", Type: serde.String()})
	opts := LoadOptions{
		Default:      colfile.Options{Layout: colfile.SkipList, Levels: []int{100, 10}, StatsEvery: 20},
		SplitRecords: (records + splits - 1) / splits,
	}
	w, err := NewWriter(fs, dataset, schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < records; i++ {
		rec := serde.NewRecord(schema)
		rec.SetAt(0, i*1000/records)
		rec.SetAt(1, int32(i%10))
		rec.SetAt(2, fmt.Sprintf("v%04d", i))
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedScanAutoDirsPerSplit checks selectivity-estimated task sizing:
// a selective predicate merges its few surviving, sparsely matching
// directories into fewer map tasks, while an unselective scan keeps one
// directory per task.
func TestSharedScanAutoDirsPerSplit(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadClustered(t, fs, "/a", 1600, 16)
	in := &InputFormat{DirsPerSplit: AutoDirsPerSplit}

	plan := func(pred scan.Predicate, elide bool) ([]mapred.Split, scan.PruneReport) {
		conf := &mapred.JobConf{InputPaths: []string{"/a"}}
		SetColumns(conf, "s")
		if pred != nil {
			scan.SetPredicate(conf, pred)
		}
		scan.SetElision(conf, elide)
		splits, report, err := in.PlannedSplits(fs, conf)
		if err != nil {
			t.Fatal(err)
		}
		return splits, report
	}

	// Unselective: every directory survives, one task each (the fixed
	// default's behavior).
	full, _ := plan(nil, true)
	if len(full) != 16 {
		t.Fatalf("unfiltered auto plan has %d splits, want 16", len(full))
	}

	// Clustered-selective: every surviving directory is dense with matches,
	// so merging would not reduce per-task matching work — auto sizing must
	// keep one task per survivor, like the fixed default.
	clustered, report := plan(scan.Le("x", 250), true)
	surviving := report.SplitsTotal - report.SplitsPruned
	if surviving < 2 {
		t.Fatalf("elision left %d surviving directories; the fixture is broken", surviving)
	}
	if len(clustered) != surviving {
		t.Fatalf("auto sizing built %d tasks for %d dense surviving directories", len(clustered), surviving)
	}

	// Uniform-selective: y == 5 survives every directory at ~10% within-dir
	// selectivity, so the estimator must merge directories until each task
	// holds roughly a directory's worth of matching records.
	sel, _ := plan(scan.Eq("y", 5), true)
	if len(sel) >= 16 {
		t.Fatalf("auto sizing kept %d tasks for 16 sparse directories", len(sel))
	}

	// Output equivalence: merging directories into one task never changes
	// the records returned.
	countRecords := func(in *InputFormat, elide bool) int64 {
		conf := &mapred.JobConf{InputPaths: []string{"/a"}}
		SetColumns(conf, "s")
		scan.SetPredicate(conf, scan.Le("x", 250))
		scan.SetElision(conf, elide)
		splits, _, err := in.PlannedSplits(fs, conf)
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		for _, sp := range splits {
			rr, err := in.Open(fs, conf, sp, hdfs.AnyNode, nil)
			if err != nil {
				t.Fatal(err)
			}
			for {
				_, _, ok, err := rr.Next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					break
				}
				n++
			}
			rr.Close()
		}
		return n
	}
	auto := countRecords(in, true)
	fixed := countRecords(&InputFormat{}, true)
	if auto != fixed {
		t.Fatalf("auto sizing returned %d records, fixed sizing %d", auto, fixed)
	}
}

// TestSharedSplitsMemberSets checks the co-scheduling plan itself: member
// sets follow each job's own elision verdicts, and runs with identical
// member sets become shared splits.
func TestSharedSplitsMemberSets(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadClustered(t, fs, "/m", 1600, 16)
	in := &InputFormat{}

	conf := func(pred scan.Predicate) *mapred.JobConf {
		c := &mapred.JobConf{InputPaths: []string{"/m"}}
		SetColumns(c, "s")
		scan.SetPredicate(c, pred)
		return c
	}
	confs := []*mapred.JobConf{
		conf(scan.Le("x", 500)), // first half of the directories
		conf(scan.Le("x", 250)), // first quarter
		conf(scan.Gt("x", 750)), // last quarter
	}
	splits, reports, err := in.SharedSplits(fs, confs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	var sharedDirs, soloDirs int
	for _, sp := range splits {
		cs := sp.Split.(*Split)
		if !cs.Judged {
			t.Fatalf("shared split %s not marked judged", cs)
		}
		switch {
		case len(sp.Members) > 1:
			sharedDirs += len(cs.Dirs)
			// Jobs 0 and 1 overlap on the first quarter; job 2 never joins.
			for _, m := range sp.Members {
				if m == 2 {
					t.Fatalf("split %s shares members %v with a disjoint job", cs, sp.Members)
				}
			}
		default:
			soloDirs += len(cs.Dirs)
		}
	}
	if sharedDirs == 0 {
		t.Fatal("no directory was co-scheduled for the overlapping jobs")
	}
	if soloDirs == 0 {
		t.Fatal("no directory remained single-member (jobs 0 and 2 have exclusive regions)")
	}
}
