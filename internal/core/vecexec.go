package core

import (
	"fmt"
	"sync"

	"colmr/internal/colfile"
	"colmr/internal/scan"
	"colmr/internal/sim"
	"colmr/internal/vec"
)

// Vectorized batch execution. With a predicate set (and scan.Spec.NoVec
// unset) the readers stop deciding one record at a time: record groups are
// decoded per column into typed vectors and the predicate runs
// batch-at-a-time over selection bitmaps (scan.VecEval). Only selected rows
// are then materialized into the same record shape Next has always
// returned, so everything downstream of the reader is untouched.
//
// The batch boundaries follow the exact zone-map consultation trajectory of
// the scalar loop — a batch never crosses pruneValidTo — so the logical
// counters (GroupsPruned, RecordsPruned, RecordsFiltered) are identical
// vectorized or not; the property tests' vectorize dimension asserts it
// along with byte-identical outputs. What changes is the decode accounting:
// primitive values land in flat vector storage at CostModel.VecRate instead
// of the boxed per-object rates, per-column decodes fan across a bounded
// goroutine pool, and a session's vec.Cache can serve a whole batch without
// decoding (or reading) anything at all.
//
// One evaluation error semantics difference is accepted: the scalar loop
// surfaces a mid-group type error only after delivering the group's earlier
// matches, while a batch surfaces it before delivering any of the batch's
// rows. The verdict — which rows match, and whether the scan errors — is
// identical; only the delivery/error interleaving differs, and only on
// scans that fail.

// vecBatchRows bounds one batch. Group extents are typically smaller (the
// batch is clipped to the zone-map verdict's validity), so this matters
// only for very large groups and predicate-dense regions.
const vecBatchRows = 4096

// vecDecodeParallel bounds the per-batch decode fan-out of the solo reader.
const vecDecodeParallel = 4

// batchHost is what a colBatch needs from the reader driving it. Both the
// solo Reader and the SharedReader implement it; the interface carries the
// few points where their accounting differs.
type batchHost interface {
	// batchCursor resolves an open column cursor by name.
	batchCursor(col string) (*cursor, error)
	// batchSinks returns the CPU sink for a cursor's batch decode and the
	// TaskStats credited with its vector-cache hits. The sinks must be safe
	// for the host's decode concurrency: the solo reader hands out
	// per-cursor buckets (folded behind its fan-out barrier), the shared
	// reader decodes serially into its shared stats.
	batchSinks(c *cursor) (*sim.CPUStats, *sim.TaskStats)
	// batchVecCache returns the session vector cache (nil disables).
	batchVecCache() *vec.Cache
	// batchVecPool returns the scratch-vector pool.
	batchVecPool() *vec.Pool
	// batchProbeOnly reports whether col may be answered by a batch key
	// probe, which consumes the column's stream for the batch without
	// producing values — only safe for columns nothing else will read.
	batchProbeOnly(col string) bool
	// batchIDOnly reports whether col may be served as a dictionary-id
	// vector instead of decoded values. Decoding ids consumes the column's
	// value stream for the batch without materializing strings, so it is
	// only safe for columns every consumer compares by id — never
	// materialized, never range-compared.
	batchIDOnly(col string) bool
	// batchDictCompares credits n integer dictionary-id comparisons that
	// replaced string comparisons (sim.TaskStats.DictIdCompares).
	batchDictCompares(n int64)
}

// colVecEntry memoizes one column's decode outcome for a batch.
type colVecEntry struct {
	v *scan.Vector
	// cached marks vectors shared with the session vector cache (served
	// from it, or admitted to it): they are read-only forever and must not
	// be pooled when the batch retires.
	cached bool
	err    error
}

// idVecEntry memoizes one column's dictionary-id decode outcome for a
// batch. A nil iv with nil err means the column declined the id path for
// this batch (not dictionary-encoded here, or its value vector was already
// decoded); the predicate falls back to value comparison.
type idVecEntry struct {
	iv  *scan.IDVector
	err error
}

// colBatch is one contiguous batch of records [start, end) of the open
// split-directory, implementing scan.VecSource over the host's cursor set.
// Columns decode lazily on first use, so the predicate's short-circuit
// structure decides which columns are ever decoded for a batch.
type colBatch struct {
	host  batchHost
	dir   string
	start int64
	end   int64
	n     int

	sel  *scan.Selection // rows matching the predicate (set after VecEval)
	next int             // pop cursor for match iteration

	mu     sync.Mutex
	vecs   map[string]*colVecEntry
	idvecs map[string]*idVecEntry
}

func newColBatch(host batchHost, dir string, start, end int64) *colBatch {
	return &colBatch{
		host:   host,
		dir:    dir,
		start:  start,
		end:    end,
		n:      int(end - start),
		vecs:   make(map[string]*colVecEntry),
		idvecs: make(map[string]*idVecEntry),
	}
}

// ColVec implements scan.VecSource: the column's vector for the batch,
// decoded on first use (or served from the session vector cache).
func (b *colBatch) ColVec(col string) (*scan.Vector, error) {
	b.mu.Lock()
	e := b.vecs[col]
	b.mu.Unlock()
	if e == nil {
		e = b.decode(col)
		b.mu.Lock()
		b.vecs[col] = e
		b.mu.Unlock()
	}
	return e.v, e.err
}

// decode produces col's vector for the batch. The caller guarantees one
// decode per column per batch (prefetch fans out distinct columns; after
// its barrier, evaluation is serial).
func (b *colBatch) decode(col string) *colVecEntry {
	c, err := b.host.batchCursor(col)
	if err != nil {
		return &colVecEntry{err: err}
	}
	cpu, ts := b.host.batchSinks(c)
	cache := b.host.batchVecCache()
	key := vec.Key{Path: b.dir + "/" + col, Gen: c.hr.Generation(), Start: b.start}
	if v := cache.Get(key, b.end); v != nil {
		// The whole batch serves from memory: no read, no decode. The
		// cursor is left where it was — a later miss skips forward from
		// there, and an all-hit round never touches the stream at all.
		if ts != nil {
			ts.VecCacheHits++
			ts.DecodeSavedValues += int64(v.Len())
		}
		return &colVecEntry{v: v, cached: true}
	}
	dec, ok := c.r.(colfile.VectorDecoder)
	if !ok {
		// Unreachable under vecEligible; kept as a real error so a future
		// layout missing VectorDecoder fails loudly, not wrongly.
		return &colVecEntry{err: fmt.Errorf("core: column %q layout cannot batch-decode", col)}
	}
	kind := colfile.VecKindOf(c.schema)
	var v *scan.Vector
	if cache != nil {
		// Destined for the cache: allocate fresh, never pooled.
		v = scan.NewVector(kind, b.n)
	} else {
		v = b.host.batchVecPool().Get(kind, b.n)
	}
	if err := dec.DecodeVector(b.start, b.end, v, cpu); err != nil {
		if cache == nil {
			b.host.batchVecPool().Put(v)
		}
		return &colVecEntry{err: fmt.Errorf("core: column %q batch decode [%d,%d): %w", col, b.start, b.end, err)}
	}
	e := &colVecEntry{v: v}
	if cache.Add(key, b.end, v) {
		e.cached = true
	}
	return e
}

// IDVec implements scan.IDSource: the column's dictionary-id vector for
// the batch, decoded on first use (or served from the session vector
// cache). Returns (nil, nil) — predicate falls back to value comparison —
// unless the host cleared the column for id-only access and its stream is
// still unconsumed: decoding ids advances the same value stream a vector
// decode would, so the two paths are mutually exclusive per batch.
func (b *colBatch) IDVec(col string) (*scan.IDVector, error) {
	if !b.host.batchIDOnly(col) {
		return nil, nil
	}
	b.mu.Lock()
	e := b.idvecs[col]
	_, decoded := b.vecs[col]
	b.mu.Unlock()
	if e == nil {
		if decoded {
			// The value vector already consumed the stream (e.g. a cache hit
			// from an earlier round decoded values): answer from values.
			return nil, nil
		}
		e = b.decodeIDs(col)
		b.mu.Lock()
		b.idvecs[col] = e
		b.mu.Unlock()
	}
	return e.iv, e.err
}

// decodeIDs produces col's dictionary-id vector for the batch, or an empty
// entry when the column's layout declines (not a non-map DCSL column).
func (b *colBatch) decodeIDs(col string) *idVecEntry {
	c, err := b.host.batchCursor(col)
	if err != nil {
		return &idVecEntry{err: err}
	}
	cpu, ts := b.host.batchSinks(c)
	cache := b.host.batchVecCache()
	key := vec.Key{Path: b.dir + "/" + col, Gen: c.hr.Generation(), Start: b.start}
	if iv := cache.GetID(key, b.end); iv != nil {
		if ts != nil {
			ts.VecCacheHits++
			ts.DecodeSavedValues += int64(iv.Len())
		}
		return &idVecEntry{iv: iv}
	}
	dec, ok := c.r.(colfile.IDVectorDecoder)
	if !ok {
		return &idVecEntry{}
	}
	iv := scan.NewIDVector(b.n)
	answered, err := dec.DecodeIDVector(b.start, b.end, iv, cpu)
	if err != nil {
		return &idVecEntry{err: fmt.Errorf("core: column %q id decode [%d,%d): %w", col, b.start, b.end, err)}
	}
	if !answered {
		return &idVecEntry{}
	}
	cache.AddID(key, b.end, iv)
	return &idVecEntry{iv: iv}
}

// CountDictIDCompares implements scan.DictCompareCounter.
func (b *colBatch) CountDictIDCompares(n int64) { b.host.batchDictCompares(n) }

// KeyVec implements scan.VecSource: map-key existence for the batch,
// answered by the storage layer (the DCSL prober) when the column is safe to
// probe — read only through this one existence test, so consuming its
// stream without producing values cannot corrupt a later value access.
func (b *colBatch) KeyVec(col, key string, sel *scan.Selection) (*scan.Selection, bool, error) {
	if !b.host.batchProbeOnly(col) {
		return nil, false, nil
	}
	b.mu.Lock()
	_, decoded := b.vecs[col]
	b.mu.Unlock()
	if decoded {
		// Already decoded (e.g. a cache hit from an earlier batch shape):
		// answer from the vector instead.
		return nil, false, nil
	}
	c, err := b.host.batchCursor(col)
	if err != nil {
		return nil, false, err
	}
	kp, ok := c.r.(colfile.KeyVecProber)
	if !ok {
		return nil, false, nil
	}
	cpu, _ := b.host.batchSinks(c)
	res := sel.Clone()
	answered, err := kp.ProbeKeys(key, b.start, b.end, res, cpu)
	if err != nil {
		return nil, false, fmt.Errorf("core: column %q key probe [%d,%d): %w", col, b.start, b.end, err)
	}
	if !answered {
		return nil, false, nil
	}
	return res, true, nil
}

// vecAt returns col's decoded vector when the batch holds one, for the
// readers' materialization fast path.
func (b *colBatch) vecAt(col string) *scan.Vector {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.vecs[col]; e != nil && e.err == nil {
		return e.v
	}
	return nil
}

// contains reports whether record pos lies in the batch.
func (b *colBatch) contains(pos int64) bool {
	return pos >= b.start && pos < b.end
}

// release returns the batch's scratch vectors to the pool. Vectors shared
// with the session cache are left alone — they are read-only and live on.
func (b *colBatch) release() {
	for _, e := range b.vecs {
		if e.v != nil && !e.cached {
			b.host.batchVecPool().Put(e.v)
		}
	}
	b.vecs = nil
}

// prefetch decodes the predicate's certain columns (scan.EagerColumns)
// before evaluation, fanning them across a bounded goroutine pool when the
// host's sinks allow concurrency. Decode errors are memoized, not returned:
// evaluation surfaces them in its own deterministic order, and an error in
// a column the short-circuit order never reaches is swallowed exactly like
// the scalar path never reaching it.
func (b *colBatch) prefetch(cols []string, parallel bool) {
	warm := func(col string) {
		e := b.decode(col)
		b.mu.Lock()
		if _, ok := b.vecs[col]; !ok {
			b.vecs[col] = e
		}
		b.mu.Unlock()
	}
	if !parallel || len(cols) < 2 {
		for _, col := range cols {
			warm(col)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, vecDecodeParallel)
	for _, col := range cols {
		wg.Add(1)
		go func(col string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			warm(col)
		}(col)
	}
	wg.Wait()
}

// --- solo Reader host + batch loop ---

// batchCursor implements batchHost.
func (r *Reader) batchCursor(col string) (*cursor, error) { return r.cursorFor(col) }

// batchSinks implements batchHost: per-cursor buckets, folded after the
// prefetch barrier (and at directory close), so parallel column decodes
// never write one counter concurrently.
func (r *Reader) batchSinks(c *cursor) (*sim.CPUStats, *sim.TaskStats) {
	return &c.phys.CPU, &c.phys
}

// batchVecCache implements batchHost.
func (r *Reader) batchVecCache() *vec.Cache { return r.vecCache }

// batchVecPool implements batchHost.
func (r *Reader) batchVecPool() *vec.Pool { return &r.vecPool }

// batchProbeOnly implements batchHost.
func (r *Reader) batchProbeOnly(col string) bool { return r.probeOnly[col] }

// batchIDOnly implements batchHost.
func (r *Reader) batchIDOnly(col string) bool { return r.idOnly[col] }

// batchDictCompares implements batchHost. VecEval runs serially after the
// prefetch barrier, so the write is unsynchronized like every other
// evaluation-phase counter.
func (r *Reader) batchDictCompares(n int64) {
	if r.stats != nil {
		r.stats.DictIdCompares += n
	}
}

// vecEligible decides, per directory, whether the batch path runs: a
// predicate or aggregate is set, the spec enables vectorization, and every
// filter and aggregate column's layout can batch-decode. Anything else
// falls back to the scalar loop — identical results, record-at-a-time
// control flow.
func (r *Reader) vecEligible() bool {
	if !r.vectorize || (r.planner.Predicate() == nil && r.agg == nil) {
		return false
	}
	for _, col := range r.planner.FilterColumns() {
		c, ok := r.byName[col]
		if !ok {
			return false
		}
		if _, ok := c.r.(colfile.VectorDecoder); !ok {
			return false
		}
	}
	for _, col := range r.aggCols {
		c, ok := r.byName[col]
		if !ok {
			return false
		}
		if _, ok := c.r.(colfile.VectorDecoder); !ok {
			return false
		}
	}
	return true
}

// eagerCols filters the predicate's certain columns down to those the
// prefetch fan-out may decode as value vectors: an id-only column must not
// be prefetched, or its consumed stream would block the id path VecEval is
// about to take.
func (r *Reader) eagerCols() []string {
	cols := scan.EagerColumns(r.planner.Predicate())
	if len(r.idOnly) == 0 {
		return cols
	}
	out := cols[:0:0]
	for _, col := range cols {
		if !r.idOnly[col] {
			out = append(out, col)
		}
	}
	return out
}

// vecAdvance drives the batch loop one step from curPos+1: it either prunes
// a group (advancing curPos exactly as the scalar loop would), or builds
// and evaluates the next batch. On return either r.batch holds a batch with
// a non-empty selection, or curPos advanced past a pruned/empty region; the
// caller's scan loop re-checks bounds either way.
func (r *Reader) vecAdvance() error {
	pos := r.curPos + 1
	if pos >= r.pruneValidTo {
		tri, end, byBloom := r.planner.PruneGroup(pos, r.total, r.groupStats)
		if tri == scan.NoMatch {
			if r.stats != nil {
				r.stats.GroupsPruned++
				r.stats.RecordsPruned += end - pos
				if byBloom {
					r.stats.BloomPruned++
				}
			}
			r.curPos = end - 1
			return nil
		}
		r.pruneValidTo = end
	}
	end := r.pruneValidTo
	if end > r.total {
		end = r.total
	}
	if m := pos + vecBatchRows; m < end {
		end = m
	}
	b := newColBatch(r, r.dirs[r.dirIdx], pos, end)
	b.prefetch(r.eagerCols(), true)
	// Deleted (superseded) rows are masked out of the input selection, so
	// they are neither evaluated nor counted — the exact rows the scalar
	// loop skips before its predicate check.
	in := scan.NewSelection(b.n)
	del := r.dels.mask(in, pos, end)
	sel, err := r.planner.Predicate().VecEval(b, in)
	r.foldCursorStats()
	if err != nil {
		b.release()
		return err
	}
	if r.stats != nil {
		r.stats.VecBatches++
		r.stats.RowsVectorized += int64(b.n)
		r.stats.RecordsFiltered += int64(b.n) - del - int64(sel.Count())
	}
	if sel.Empty() {
		r.curPos = end - 1
		b.release()
		return nil
	}
	b.sel = sel
	r.batch = b
	return nil
}

// releaseBatch retires the active batch, if any.
func (r *Reader) releaseBatch() {
	if b := r.batch; b != nil {
		r.batch = nil
		b.release()
	}
}

// foldCursorStats folds the per-cursor physical buckets into the task
// stats. Called only behind barriers (after a batch's prefetch fan-out has
// joined, at directory close, at Close), where no decode goroutine is live.
func (r *Reader) foldCursorStats() {
	if r.stats == nil || !r.vectorize {
		return
	}
	for _, c := range r.cursors {
		r.stats.Add(c.phys)
		c.phys = sim.TaskStats{}
	}
}

// --- SharedReader host + batch loop ---

// batchCursor implements batchHost.
func (sr *SharedReader) batchCursor(col string) (*cursor, error) {
	c, ok := sr.byName[col]
	if !ok {
		return nil, fmt.Errorf("core: column %q is not in the shared cursor set %v", col, sr.allCols)
	}
	return c, nil
}

// batchSinks implements batchHost: the shared reader decodes serially (no
// prefetch fan-out), so batch decodes charge the shared stats directly, like
// every other physical cost of the cursor set.
func (sr *SharedReader) batchSinks(*cursor) (*sim.CPUStats, *sim.TaskStats) {
	return &sr.shared.CPU, sr.shared
}

// batchVecCache implements batchHost.
func (sr *SharedReader) batchVecCache() *vec.Cache { return sr.vecCache }

// batchVecPool implements batchHost.
func (sr *SharedReader) batchVecPool() *vec.Pool { return &sr.vecPool }

// batchProbeOnly implements batchHost.
func (sr *SharedReader) batchProbeOnly(col string) bool { return sr.probeOnly[col] }

// batchIDOnly implements batchHost.
func (sr *SharedReader) batchIDOnly(col string) bool { return sr.idOnly[col] }

// batchDictCompares implements batchHost: shared evaluation is serial, so
// the compare count lands in the shared physical stats directly.
func (sr *SharedReader) batchDictCompares(n int64) { sr.shared.DictIdCompares += n }

// vecEligible is the shared-scan analogue of Reader.vecEligible, judged over
// the union predicate's filter columns.
func (sr *SharedReader) vecEligible() bool {
	if !sr.vectorize || sr.planner.Predicate() == nil {
		return false
	}
	for _, col := range sr.planner.FilterColumns() {
		c, ok := sr.byName[col]
		if !ok {
			return false
		}
		if _, ok := c.r.(colfile.VectorDecoder); !ok {
			return false
		}
	}
	return true
}

// vecAdvance drives the shared batch loop one step from curPos+1: union
// group-tier pruning exactly as the scalar loop, then batch evaluation of the
// next may-match extent.
func (sr *SharedReader) vecAdvance() error {
	pos := sr.curPos + 1
	if pos >= sr.pruneValidTo {
		tri, end, byBloom := sr.planner.PruneGroup(pos, sr.total, sr.groupStats)
		if tri == scan.NoMatch {
			sr.shared.GroupsPruned++
			sr.shared.RecordsPruned += end - pos
			if byBloom {
				sr.shared.BloomPruned++
			}
			sr.curPos = end - 1
			return nil
		}
		sr.pruneValidTo = end
	}
	end := sr.pruneValidTo
	if end > sr.total {
		end = sr.total
	}
	if m := pos + vecBatchRows; m < end {
		end = m
	}
	return sr.buildBatch(pos, end)
}

// buildBatch evaluates [start, end) for every member. Each member's solo
// replay marks the rows it must evaluate (its want bitmap — the same
// consultation positions, verdicts, and counter updates as the scalar demux
// loop); each distinct residual then runs one VecEval over the union of its
// members' wants; a member's matches are its wants intersected with its eval
// group's verdict. The batch is kept when any member matched.
func (sr *SharedReader) buildBatch(start, end int64) error {
	b := newColBatch(sr, sr.dirs[sr.dirIdx], start, end)
	wants := make([]*scan.Selection, len(sr.members))
	for mi, m := range sr.members {
		w := scan.NewEmptySelection(b.n)
		for pos := start; pos < end; pos++ {
			// Superseded rows are invisible: never wanted, never evaluated,
			// never folded — as in the scalar demux loop's skip.
			if sr.dels.has(pos) {
				continue
			}
			if sr.memberWants(m, pos) {
				w.Set(int(pos - start))
				m.acctPos = pos + 1
			}
		}
		wants[mi] = w
	}
	// One VecEval per distinct residual, restricted to the rows some member
	// of the group wants — rows nothing wants are never evaluated, matching
	// the scalar path's work (and its immunity to their errors).
	groupSel := make([]*scan.Selection, len(sr.groupPred))
	for g, p := range sr.groupPred {
		if p == nil {
			continue
		}
		in := scan.NewEmptySelection(b.n)
		for mi, m := range sr.members {
			if m.evalGroup == g {
				in.Or(wants[mi])
			}
		}
		if in.Empty() {
			groupSel[g] = in
			continue
		}
		out, err := p.VecEval(b, in)
		if err != nil {
			b.release()
			return err
		}
		groupSel[g] = out
	}
	sr.shared.VecBatches++
	sr.shared.RowsVectorized += int64(b.n)
	union := scan.NewEmptySelection(b.n)
	for mi, m := range sr.members {
		match := wants[mi]
		if g := m.evalGroup; g >= 0 && groupSel[g] != nil {
			match = wants[mi].Clone()
			match.And(groupSel[g])
		}
		m.stats.RecordsFiltered += int64(wants[mi].Count() - match.Count())
		if m.aggState != nil {
			// Aggregating members fold their matches here and take no part
			// in the surfaced union — their records never materialize.
			rows, err := m.aggState.FoldBatch(match, b)
			if err != nil {
				b.release()
				return err
			}
			m.stats.AggBatches++
			m.stats.RowsAggregated += rows
			sr.memberSel[mi] = nil
			continue
		}
		sr.memberSel[mi] = match
		union.Or(match)
	}
	if union.Empty() {
		sr.curPos = end - 1
		b.release()
		return nil
	}
	b.sel = union
	sr.batch = b
	return nil
}

// releaseBatch retires the active batch, if any, and the members' match
// bitmaps with it.
func (sr *SharedReader) releaseBatch() {
	if b := sr.batch; b != nil {
		sr.batch = nil
		b.release()
	}
	for i := range sr.memberSel {
		sr.memberSel[i] = nil
	}
}
