package core

import (
	"testing"

	"colmr/internal/colfile"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Vectorized-vs-scalar equivalence at the reader level: identical rows in
// identical order, identical logical counters (the pruning trajectory is
// shared), and the vectorized counters crediting the batch path only when it
// ran.

func vecLayouts() map[string]LoadOptions {
	return map[string]LoadOptions{
		"plain":    {SplitRecords: 64, Default: colfile.Options{Layout: colfile.Plain, StatsEvery: 16}},
		"skiplist": {SplitRecords: 64, Default: colfile.Options{Layout: colfile.SkipList, Levels: []int{64, 8}, StatsEvery: 16}},
		"block":    {SplitRecords: 64, Default: colfile.Options{Layout: colfile.Block, Codec: "zlib", BlockBytes: 4 << 10}},
		"dcsl": {SplitRecords: 64, Default: colfile.Options{Layout: colfile.SkipList, Levels: []int{64, 8}, StatsEvery: 16},
			PerColumn: map[string]colfile.Options{"metadata": {Layout: colfile.DCSL, StatsEvery: 16}}},
	}
}

func TestVectorizedScanEquivalence(t *testing.T) {
	preds := []scan.Predicate{
		scan.HasPrefix("url", "http://ibm.com"),
		scan.Gt("fetchTime", int64(1293840000000+150)),
		scan.And(
			scan.HasPrefix("url", "http://site"),
			scan.Le("fetchTime", int64(1293840000000+100)),
		),
		scan.Or(
			scan.HasPrefix("url", "http://ibm.com/jp"),
			scan.KeyExists("metadata", "server"),
		),
		scan.KeyExists("metadata", "server"),
		scan.Not(scan.HasPrefix("url", "http://site")),
	}
	for name, opts := range vecLayouts() {
		fs := testFS(t, 4)
		loadDataset(t, fs, "/data/crawl", opts, 300)
		for _, pred := range preds {
			for _, lazy := range []bool{false, true} {
				run := func(vect bool) ([]map[string]any, sim.TaskStats) {
					conf := predConf([]string{"url", "content"}, lazy, pred)
					scan.SetVectorize(conf, vect)
					return scanAll(t, fs, "/data/crawl", conf)
				}
				vrows, vst := run(true)
				srows, sst := run(false)
				ctx := name + " pred=" + pred.String()
				if len(vrows) != len(srows) {
					t.Fatalf("%s: vectorized %d rows, scalar %d", ctx, len(vrows), len(srows))
				}
				for i := range vrows {
					for _, col := range []string{"url", "content"} {
						if !serde.ValuesEqual(crawlSchema.Field(col), vrows[i][col], srows[i][col]) {
							t.Fatalf("%s: row %d column %s differs: %v vs %v", ctx, i, col, vrows[i][col], srows[i][col])
						}
					}
				}
				if vst.GroupsPruned != sst.GroupsPruned || vst.RecordsPruned != sst.RecordsPruned ||
					vst.BloomPruned != sst.BloomPruned || vst.RecordsFiltered != sst.RecordsFiltered {
					t.Fatalf("%s: logical counters differ:\nvectorized pruned %d/%d bloom %d filtered %d\nscalar     pruned %d/%d bloom %d filtered %d",
						ctx, vst.GroupsPruned, vst.RecordsPruned, vst.BloomPruned, vst.RecordsFiltered,
						sst.GroupsPruned, sst.RecordsPruned, sst.BloomPruned, sst.RecordsFiltered)
				}
				if sst.RowsVectorized != 0 || sst.VecBatches != 0 {
					t.Fatalf("%s: scalar run credited vectorized counters (%d rows, %d batches)",
						ctx, sst.RowsVectorized, sst.VecBatches)
				}
				if reached := int64(300) - vst.RecordsPruned; reached > 0 && vst.RowsVectorized == 0 {
					t.Fatalf("%s: %d records reached evaluation but none were vectorized", ctx, reached)
				}
				if vst.RowsVectorized != int64(len(vrows))+vst.RecordsFiltered {
					t.Fatalf("%s: vectorized %d rows but returned %d + filtered %d",
						ctx, vst.RowsVectorized, len(vrows), vst.RecordsFiltered)
				}
				if vst.RecordsPruned+vst.RecordsFiltered+int64(len(vrows)) != 300 {
					t.Fatalf("%s: pruned %d + filtered %d + returned %d != 300",
						ctx, vst.RecordsPruned, vst.RecordsFiltered, len(vrows))
				}
			}
		}
	}
}

// TestVectorizedProbeOnlyKeyTest pins the batch key-probe fast path: a DCSL
// map column read only through one exists() test and not projected is
// answered by ProbeKeys — no map values are decoded for the filter.
func TestVectorizedProbeOnlyKeyTest(t *testing.T) {
	fs := testFS(t, 4)
	recs := loadDataset(t, fs, "/data/crawl", vecLayouts()["dcsl"], 300)
	pred := scan.KeyExists("metadata", "server")
	want := wantMatches(t, recs, pred)

	conf := predConf([]string{"url"}, false, pred)
	rows, st := scanAll(t, fs, "/data/crawl", conf)
	if len(rows) != len(want) {
		t.Fatalf("probe-only scan returned %d rows, brute force %d", len(rows), len(want))
	}
	if st.RowsVectorized == 0 {
		t.Fatal("probe-only scan did not vectorize")
	}
	// The filter decodes no map values: the only materialized values are the
	// projected url column's, one per match.
	if st.CPU.ValuesMaterialized != int64(len(rows)) {
		t.Fatalf("probe-only scan materialized %d values for %d matches", st.CPU.ValuesMaterialized, len(rows))
	}
}
