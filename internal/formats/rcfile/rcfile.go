// Package rcfile implements the RCFile format (He et al., ICDE 2011), the
// paper's main columnar baseline. RCFile is a PAX layout: each HDFS block
// is packed with row groups, and each row group holds a sync marker, a
// metadata region (row count, per-column chunk sizes, and per-value
// lengths), and a data region in which the group's rows are stored column
// by column. Column chunks may be individually ZLIB-compressed.
//
// Because all columns of a row group are interleaved inside one file, a
// projected scan must still touch every row group: it reads the metadata
// region and then seeks to each wanted chunk. At transfer-unit granularity
// those scattered reads fetch far more bytes than the chunks contain —
// the poor I/O-elimination behaviour the paper measures in Section 6.2 and
// tunes in Appendix B.2 (row-group sizes of 1/4/16 MB).
package rcfile

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"colmr/internal/compress"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

const (
	magic    = "RCF1"
	syncSize = 16
	// DefaultRowGroupBytes is the recommended 4 MB row-group size [20].
	DefaultRowGroupBytes = 4 << 20
)

// Options configures an RCFile writer.
type Options struct {
	// Codec compresses each column chunk ("none" or "zlib"; the real
	// RCFile uses ZLIB).
	Codec string
	// RowGroupBytes is the target uncompressed size of one row group.
	RowGroupBytes int
}

func (o Options) withDefaults() Options {
	if o.Codec == "" {
		o.Codec = "none"
	}
	if o.RowGroupBytes == 0 {
		o.RowGroupBytes = DefaultRowGroupBytes
	}
	return o
}

func syncMarkerFor(path string) []byte {
	h1 := fnv.New64a()
	h1.Write([]byte("rcfile"))
	h1.Write([]byte(path))
	h2 := fnv.New64()
	h2.Write([]byte(path))
	out := make([]byte, 0, syncSize)
	out = h1.Sum(out)
	out = h2.Sum(out)
	return out
}

// Writer streams records into row groups.
type Writer struct {
	w      io.Writer
	schema *serde.Schema
	opts   Options
	codec  compress.Codec
	stats  *sim.CPUStats
	sync   []byte

	cols    [][]byte // per-column encoded values, concatenated
	lens    [][]int  // per-column value lengths
	rows    int
	rawSize int
	count   int64
}

// NewWriter creates an RCFile at w; path seeds the sync marker.
func NewWriter(w io.Writer, path string, schema *serde.Schema, opts Options, stats *sim.CPUStats) (*Writer, error) {
	opts = opts.withDefaults()
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if schema.Kind != serde.KindRecord {
		return nil, fmt.Errorf("rcfile: schema must be a record")
	}
	codec, err := compress.ByName(opts.Codec)
	if err != nil {
		return nil, err
	}
	rw := &Writer{
		w:      w,
		schema: schema,
		opts:   opts,
		codec:  codec,
		stats:  stats,
		sync:   syncMarkerFor(path),
		cols:   make([][]byte, len(schema.Fields)),
		lens:   make([][]int, len(schema.Fields)),
	}
	hdr := append([]byte{}, magic...)
	schemaStr := schema.String()
	hdr = binary.AppendUvarint(hdr, uint64(len(schemaStr)))
	hdr = append(hdr, schemaStr...)
	hdr = binary.AppendUvarint(hdr, uint64(len(opts.Codec)))
	hdr = append(hdr, opts.Codec...)
	hdr = append(hdr, rw.sync...)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return rw, nil
}

// Append buffers one record into the current row group.
func (w *Writer) Append(rec *serde.GenericRecord) error {
	if !rec.Schema().Equal(w.schema) {
		return fmt.Errorf("rcfile: record schema does not match file schema")
	}
	for i, f := range w.schema.Fields {
		v := rec.GetAt(i)
		if v == nil {
			return fmt.Errorf("rcfile: field %q is unset", f.Name)
		}
		before := len(w.cols[i])
		buf, err := serde.AppendValue(w.cols[i], f.Type, v)
		if err != nil {
			return err
		}
		w.cols[i] = buf
		n := len(buf) - before
		w.lens[i] = append(w.lens[i], n)
		w.rawSize += n
		if w.stats != nil {
			w.stats.RawBytes += int64(n) // serialization work
		}
	}
	w.rows++
	w.count++
	if w.rawSize >= w.opts.RowGroupBytes {
		return w.flush()
	}
	return nil
}

// flush writes the buffered row group: sync, metadata region, data region.
func (w *Writer) flush() error {
	if w.rows == 0 {
		return nil
	}
	// Compress chunks first; their sizes go into the metadata.
	chunks := make([][]byte, len(w.cols))
	for i, raw := range w.cols {
		comp, err := w.codec.Compress(nil, raw)
		if err != nil {
			return err
		}
		compress.ChargeComp(w.stats, w.codec.Name(), int64(len(raw)))
		chunks[i] = comp
	}

	// Metadata region: numRows, then per column (compLen, rawLen,
	// per-value lengths).
	meta := binary.AppendUvarint(nil, uint64(w.rows))
	for i := range w.cols {
		meta = binary.AppendUvarint(meta, uint64(len(chunks[i])))
		meta = binary.AppendUvarint(meta, uint64(len(w.cols[i])))
		for _, l := range w.lens[i] {
			meta = binary.AppendUvarint(meta, uint64(l))
		}
	}

	out := append([]byte{}, w.sync...)
	out = binary.AppendUvarint(out, uint64(len(meta)))
	out = append(out, meta...)
	for _, c := range chunks {
		out = append(out, c...)
	}
	if _, err := w.w.Write(out); err != nil {
		return err
	}
	for i := range w.cols {
		w.cols[i] = w.cols[i][:0]
		w.lens[i] = w.lens[i][:0]
	}
	w.rows = 0
	w.rawSize = 0
	return nil
}

// Count returns the number of records appended.
func (w *Writer) Count() int64 { return w.count }

// Close flushes the final row group.
func (w *Writer) Close() error { return w.flush() }
