package rcfile

import (
	"math/rand"
	"testing"

	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

var testSchema = serde.MustParse(`
T {
  string url,
  int n,
  map<string> meta,
  bytes content
}`)

func makeRecord(rng *rand.Rand, i int) *serde.GenericRecord {
	rec := serde.NewRecord(testSchema)
	rec.Set("url", "http://x/"+string(rune('a'+i%26)))
	rec.Set("n", int32(i))
	rec.Set("meta", map[string]any{"content-type": "text/html", "k": string(rune('0' + i%10))})
	content := make([]byte, 200+rng.Intn(100))
	for j := range content {
		content[j] = byte('A' + (i+j)%23)
	}
	rec.Set("content", content)
	return rec
}

func testFS(t *testing.T) *hdfs.FileSystem {
	t.Helper()
	cfg := sim.DefaultCluster()
	cfg.Nodes = 4
	cfg.BlockSize = 1 << 16
	cfg.TransferUnit = 1 << 12
	return hdfs.New(cfg, 1)
}

func writeRC(t *testing.T, fs *hdfs.FileSystem, path string, opts Options, n int) []*serde.GenericRecord {
	t.Helper()
	f, err := fs.Create(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, path, testSchema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	var recs []*serde.GenericRecord
	for i := 0; i < n; i++ {
		rec := makeRecord(rng, i)
		recs = append(recs, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return recs
}

func readAll(t *testing.T, fs *hdfs.FileSystem, path string, splitSize int64, columns []string) ([]*serde.GenericRecord, sim.TaskStats) {
	t.Helper()
	in := &InputFormat{SplitSize: splitSize}
	conf := &mapred.JobConf{InputPaths: []string{path}}
	if columns != nil {
		SetColumns(conf, columns...)
	}
	splits, err := in.Splits(fs, conf)
	if err != nil {
		t.Fatal(err)
	}
	var out []*serde.GenericRecord
	var total sim.TaskStats
	for _, sp := range splits {
		var st sim.TaskStats
		rr, err := in.Open(fs, conf, sp, hdfs.AnyNode, &st)
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, v, ok, err := rr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			out = append(out, v.(*serde.GenericRecord))
		}
		rr.Close()
		total.Add(st)
	}
	return out, total
}

func TestRoundTrip(t *testing.T) {
	for _, codec := range []string{"none", "zlib"} {
		fs := testFS(t)
		want := writeRC(t, fs, "/d/f.rc", Options{Codec: codec, RowGroupBytes: 16 << 10}, 300)
		got, _ := readAll(t, fs, "/d/f.rc", 1<<62, nil)
		if len(got) != len(want) {
			t.Fatalf("%s: read %d, want %d", codec, len(got), len(want))
		}
		for i := range want {
			if !serde.RecordsEqual(want[i], got[i]) {
				t.Fatalf("%s: record %d mismatch", codec, i)
			}
		}
	}
}

func TestProjection(t *testing.T) {
	fs := testFS(t)
	want := writeRC(t, fs, "/f.rc", Options{RowGroupBytes: 16 << 10}, 200)
	got, _ := readAll(t, fs, "/f.rc", 1<<62, []string{"n", "url"})
	if len(got) != len(want) {
		t.Fatalf("read %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i].Schema().Fields) != 2 {
			t.Fatalf("projected record has %d fields", len(got[i].Schema().Fields))
		}
		wn, _ := want[i].Get("n")
		gn, _ := got[i].Get("n")
		if wn.(int32) != gn.(int32) {
			t.Fatalf("record %d: n = %v, want %v", i, gn, wn)
		}
		if _, err := got[i].Get("content"); err == nil {
			t.Fatal("projected record exposes unprojected column")
		}
	}
}

// Projecting one small column must read far fewer logical bytes than the
// full scan, but still more than the column's own size — the prefetch
// waste the paper measures (RCFile read 20x more bytes than CIF).
func TestProjectionReducesButDoesNotEliminateIO(t *testing.T) {
	fs := testFS(t)
	writeRC(t, fs, "/f.rc", Options{RowGroupBytes: 32 << 10}, 2000)
	_, full := readAll(t, fs, "/f.rc", 1<<62, nil)
	_, one := readAll(t, fs, "/f.rc", 1<<62, []string{"n"})
	if one.IO.TotalChargedBytes() >= full.IO.TotalChargedBytes() {
		t.Errorf("1-col charged %d >= full %d", one.IO.TotalChargedBytes(), full.IO.TotalChargedBytes())
	}
	// The int column is ~2 bytes/record; charged bytes include metadata
	// and transfer-unit rounding, so they must exceed the raw column size
	// by a wide margin.
	if one.IO.TotalChargedBytes() < 8*2000 {
		t.Errorf("charged %d suspiciously low; transfer-unit accounting broken?", one.IO.TotalChargedBytes())
	}
	if one.IO.Seeks < 4 {
		t.Errorf("seeks = %d; projected chunk reads should seek per row group", one.IO.Seeks)
	}
}

func TestSplitsExactlyOnce(t *testing.T) {
	fs := testFS(t)
	const n = 500
	writeRC(t, fs, "/f.rc", Options{RowGroupBytes: 8 << 10}, n)
	for _, splitSize := range []int64{1 << 62, 1 << 15, 7777} {
		got, _ := readAll(t, fs, "/f.rc", splitSize, nil)
		if len(got) != n {
			t.Fatalf("splitSize %d: read %d records, want %d", splitSize, len(got), n)
		}
		seen := map[int32]bool{}
		for _, r := range got {
			v, _ := r.Get("n")
			if seen[v.(int32)] {
				t.Fatalf("splitSize %d: record %d duplicated", splitSize, v)
			}
			seen[v.(int32)] = true
		}
	}
}

func TestMetadataChargedAsCPU(t *testing.T) {
	fs := testFS(t)
	writeRC(t, fs, "/f.rc", Options{RowGroupBytes: 8 << 10}, 500)
	_, st := readAll(t, fs, "/f.rc", 1<<62, []string{"n"})
	if st.CPU.IntBytes == 0 {
		t.Error("metadata interpretation not charged")
	}
}

func TestSmallerRowGroupsWasteMoreIO(t *testing.T) {
	// Appendix B.2: smaller row groups worsen a projected scan's I/O.
	charged := func(rg int) int64 {
		fs := testFS(t)
		writeRC(t, fs, "/f.rc", Options{RowGroupBytes: rg}, 3000)
		_, st := readAll(t, fs, "/f.rc", 1<<62, []string{"n"})
		return st.IO.TotalChargedBytes()
	}
	small := charged(8 << 10)
	large := charged(128 << 10)
	if small <= large {
		t.Errorf("8KB groups charged %d <= 128KB groups %d; want more waste for smaller groups", small, large)
	}
}

func TestZlibShrinksFile(t *testing.T) {
	fsA, fsB := testFS(t), testFS(t)
	writeRC(t, fsA, "/f", Options{RowGroupBytes: 16 << 10}, 400)
	writeRC(t, fsB, "/f", Options{Codec: "zlib", RowGroupBytes: 16 << 10}, 400)
	if fsB.TotalSize("/f") >= fsA.TotalSize("/f") {
		t.Errorf("zlib RCFile %d >= uncompressed %d", fsB.TotalSize("/f"), fsA.TotalSize("/f"))
	}
}

func TestWriterValidation(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Create("/v", 0)
	if _, err := NewWriter(f, "/v", serde.Int(), Options{}, nil); err == nil {
		t.Error("non-record schema accepted")
	}
	if _, err := NewWriter(f, "/v", testSchema, Options{Codec: "nope"}, nil); err == nil {
		t.Error("unknown codec accepted")
	}
	w, err := NewWriter(f, "/v", testSchema, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := serde.MustParse(`O { int x }`)
	rec := serde.NewRecord(other)
	rec.Set("x", int32(1))
	if err := w.Append(rec); err == nil {
		t.Error("mismatched record schema accepted")
	}
}

func TestProjectionUnknownColumn(t *testing.T) {
	fs := testFS(t)
	writeRC(t, fs, "/f.rc", Options{}, 10)
	in := &InputFormat{}
	conf := &mapred.JobConf{InputPaths: []string{"/f.rc"}}
	SetColumns(conf, "nope")
	splits, _ := in.Splits(fs, conf)
	if _, err := in.Open(fs, conf, splits[0], hdfs.AnyNode, nil); err == nil {
		t.Error("unknown projected column accepted")
	}
}

func TestCorruptMagic(t *testing.T) {
	fs := testFS(t)
	fs.WriteFile("/bad", []byte("XXXXGARBAGE"), 0)
	in := &InputFormat{}
	conf := &mapred.JobConf{}
	if _, err := in.Open(fs, conf, &mapred.FileSplit{Path: "/bad", End: 11}, hdfs.AnyNode, nil); err == nil {
		t.Error("corrupt magic accepted")
	}
}
