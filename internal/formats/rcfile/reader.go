package rcfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"colmr/internal/compress"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// ColumnsProp is the JobConf property holding the comma-separated column
// projection, the analogue of RCFile's column pruning configuration.
const ColumnsProp = "rcfile.columns"

// SetColumns configures projection pushdown for a job reading RCFiles.
func SetColumns(conf *mapred.JobConf, columns ...string) {
	conf.Set(ColumnsProp, strings.Join(columns, ","))
}

// InputFormat reads RCFiles with optional projection pushdown.
type InputFormat struct {
	// SplitSize overrides the target split size (default: one HDFS block).
	SplitSize int64
}

// Splits implements mapred.InputFormat.
func (f *InputFormat) Splits(fs *hdfs.FileSystem, conf *mapred.JobConf) ([]mapred.Split, error) {
	return mapred.SplitFiles(fs, conf.InputPaths, f.SplitSize)
}

// Open implements mapred.InputFormat.
func (f *InputFormat) Open(fs *hdfs.FileSystem, conf *mapred.JobConf, split mapred.Split, node hdfs.NodeID, stats *sim.TaskStats) (mapred.RecordReader, error) {
	fsplit, ok := split.(*mapred.FileSplit)
	if !ok {
		return nil, fmt.Errorf("rcfile: unexpected split type %T", split)
	}
	r, err := fs.Open(fsplit.Path, node)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		r.SetStats(&stats.IO)
	}
	rd := &reader{r: r, stats: stats, end: fsplit.End, size: r.Size()}
	if err := rd.readHeader(); err != nil {
		return nil, err
	}
	if cols := strings.TrimSpace(conf.Get(ColumnsProp)); cols != "" {
		if err := rd.setProjection(strings.Split(cols, ",")); err != nil {
			return nil, err
		}
	}
	if err := rd.align(fsplit.Start); err != nil {
		return nil, err
	}
	return rd, nil
}

type reader struct {
	r     *hdfs.FileReader
	stats *sim.TaskStats
	size  int64
	end   int64

	schema *serde.Schema
	codec  compress.Codec
	sync   []byte

	// projection
	projected []int // field indexes to materialize; nil = all
	outSchema *serde.Schema

	pos  int64 // next unread header-region offset (sequential cursor)
	done bool

	// current row group
	rows     int
	rowIdx   int
	chunks   [][]byte // decompressed chunks of projected columns
	chunkPos []int
}

func (rd *reader) cpu() *sim.CPUStats {
	if rd.stats == nil {
		return nil
	}
	return &rd.stats.CPU
}

func (rd *reader) readHeader() error {
	hdr := make([]byte, 4)
	if _, err := rd.r.ReadAt(hdr, 0); err != nil && err != io.EOF {
		return err
	}
	if string(hdr) != magic {
		return fmt.Errorf("rcfile: bad magic %q", hdr)
	}
	rd.pos = 4
	schemaStr, err := rd.readString()
	if err != nil {
		return err
	}
	if rd.schema, err = serde.Parse(schemaStr); err != nil {
		return fmt.Errorf("rcfile: header schema: %w", err)
	}
	codecName, err := rd.readString()
	if err != nil {
		return err
	}
	if rd.codec, err = compress.ByName(codecName); err != nil {
		return err
	}
	sync := make([]byte, syncSize)
	if _, err := rd.readAtPos(sync); err != nil {
		return err
	}
	rd.sync = sync
	rd.outSchema = rd.schema
	return nil
}

// setProjection restricts materialization to the named columns.
func (rd *reader) setProjection(columns []string) error {
	if len(columns) == 0 {
		return nil
	}
	proj, err := rd.schema.Project(columns...)
	if err != nil {
		return err
	}
	rd.outSchema = proj
	rd.projected = nil
	for _, c := range columns {
		rd.projected = append(rd.projected, rd.schema.FieldIndex(c))
	}
	return nil
}

// align positions the reader at the first sync marker at or after `start`
// (skipped for start == 0, where the cursor already sits past the header).
func (rd *reader) align(start int64) error {
	if start <= rd.pos {
		return nil
	}
	needle := rd.sync
	buf := make([]byte, 0, 256<<10)
	at := start
	for {
		chunk := make([]byte, 128<<10)
		n, err := rd.r.ReadAt(chunk, at)
		if n == 0 {
			if err == io.EOF {
				rd.done = true
				return nil
			}
			return err
		}
		buf = append(buf, chunk[:n]...)
		if i := bytes.Index(buf, needle); i >= 0 {
			rd.pos = start + int64(i)
			return nil
		}
		keep := len(needle) - 1
		if len(buf) > keep {
			start += int64(len(buf) - keep)
			buf = buf[len(buf)-keep:]
		}
		at = start + int64(len(buf))
		if err == io.EOF {
			rd.done = true
			return nil
		}
	}
}

func (rd *reader) readAtPos(p []byte) (int, error) {
	n, err := rd.r.ReadAt(p, rd.pos)
	rd.pos += int64(n)
	if err == io.EOF && n == len(p) {
		err = nil
	}
	return n, err
}

func (rd *reader) readString() (string, error) {
	l, err := rd.readUvarint()
	if err != nil {
		return "", err
	}
	if l > 1<<20 {
		return "", fmt.Errorf("rcfile: absurd header string length %d", l)
	}
	b := make([]byte, l)
	if _, err := rd.readAtPos(b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (rd *reader) readUvarint() (uint64, error) {
	var tmp [binary.MaxVarintLen64]byte
	n, err := rd.r.ReadAt(tmp[:], rd.pos)
	if n == 0 {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, err
	}
	v, vn := binary.Uvarint(tmp[:n])
	if vn <= 0 {
		return 0, fmt.Errorf("rcfile: corrupt varint at offset %d", rd.pos)
	}
	rd.pos += int64(vn)
	return v, nil
}

// loadRowGroup reads the next row group's metadata and the projected
// column chunks.
func (rd *reader) loadRowGroup() error {
	// Row groups start with the sync marker. A group whose sync lies at or
	// past the split end belongs to the next split.
	if rd.pos >= rd.end || rd.pos+syncSize >= rd.size {
		rd.done = true
		return nil
	}
	sync := make([]byte, syncSize)
	if _, err := rd.readAtPos(sync); err != nil {
		if err == io.EOF {
			rd.done = true
			return nil
		}
		return err
	}
	if !bytes.Equal(sync, rd.sync) {
		return fmt.Errorf("rcfile: lost sync at offset %d", rd.pos-syncSize)
	}
	metaLen, err := rd.readUvarint()
	if err != nil {
		return err
	}
	meta := make([]byte, metaLen)
	if _, err := rd.readAtPos(meta); err != nil {
		return err
	}
	// Interpreting the metadata region is real varint-decode CPU — the
	// overhead the paper attributes to RCFile's per-group metadata.
	if cpu := rd.cpu(); cpu != nil {
		cpu.IntBytes += int64(len(meta))
	}
	md := serde.NewDecoder(meta, nil)
	rows, err := md.ReadUvarint()
	if err != nil {
		return fmt.Errorf("rcfile: metadata rows: %w", err)
	}
	nCols := len(rd.schema.Fields)
	compLens := make([]int64, nCols)
	rawLens := make([]int64, nCols)
	for c := 0; c < nCols; c++ {
		cl, err := md.ReadUvarint()
		if err != nil {
			return fmt.Errorf("rcfile: metadata col %d: %w", c, err)
		}
		rl, err := md.ReadUvarint()
		if err != nil {
			return fmt.Errorf("rcfile: metadata col %d: %w", c, err)
		}
		compLens[c], rawLens[c] = int64(cl), int64(rl)
		for r := uint64(0); r < rows; r++ {
			if _, err := md.ReadUvarint(); err != nil {
				return fmt.Errorf("rcfile: metadata value lengths col %d: %w", c, err)
			}
		}
	}

	// Data region: chunk offsets follow from the metadata.
	dataStart := rd.pos
	wanted := rd.projected
	if wanted == nil {
		wanted = make([]int, nCols)
		for i := range wanted {
			wanted[i] = i
		}
	}
	rd.chunks = make([][]byte, len(wanted))
	rd.chunkPos = make([]int, len(wanted))
	for oi, c := range wanted {
		off := dataStart
		for p := 0; p < c; p++ {
			off += compLens[p]
		}
		comp := make([]byte, compLens[c])
		if _, err := rd.r.ReadAt(comp, off); err != nil && err != io.EOF {
			return err
		}
		raw, err := rd.codec.Decompress(nil, comp, int(rawLens[c]))
		if err != nil {
			return fmt.Errorf("rcfile: column %d chunk: %w", c, err)
		}
		compress.ChargeDecomp(rd.cpu(), rd.codec.Name(), int64(len(raw)))
		rd.chunks[oi] = raw
	}
	var dataLen int64
	for _, cl := range compLens {
		dataLen += cl
	}
	rd.pos = dataStart + dataLen
	rd.rows = int(rows)
	rd.rowIdx = 0
	return nil
}

// Next implements mapred.RecordReader.
func (rd *reader) Next() (any, any, bool, error) {
	for rd.rowIdx >= rd.rows {
		if rd.done {
			return nil, nil, false, nil
		}
		if err := rd.loadRowGroup(); err != nil {
			return nil, nil, false, err
		}
		if rd.done {
			return nil, nil, false, nil
		}
	}
	rec := serde.NewRecord(rd.outSchema)
	for oi := range rd.chunks {
		fs := rd.outSchema.Fields[oi].Type
		d := serde.NewDecoder(rd.chunks[oi][rd.chunkPos[oi]:], rd.cpu())
		v, err := d.Value(fs)
		if err != nil {
			return nil, nil, false, fmt.Errorf("rcfile: row %d col %q: %w", rd.rowIdx, rd.outSchema.Fields[oi].Name, err)
		}
		rd.chunkPos[oi] += d.Pos()
		rec.SetAt(oi, v)
	}
	if cpu := rd.cpu(); cpu != nil {
		cpu.RecordsMaterialized++
	}
	rd.rowIdx++
	return nil, rec, true, nil
}

// Close implements mapred.RecordReader.
func (rd *reader) Close() error { return rd.r.Close() }
