package seq

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"colmr/internal/compress"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// InputFormat reads SequenceFiles. The schema and compression settings
// come from each file's header, so the format needs no configuration.
type InputFormat struct {
	// SplitSize overrides the target split size (default: one HDFS block).
	SplitSize int64
}

// Splits implements mapred.InputFormat.
func (f *InputFormat) Splits(fs *hdfs.FileSystem, conf *mapred.JobConf) ([]mapred.Split, error) {
	return mapred.SplitFiles(fs, conf.InputPaths, f.SplitSize)
}

// Open implements mapred.InputFormat.
func (f *InputFormat) Open(fs *hdfs.FileSystem, conf *mapred.JobConf, split mapred.Split, node hdfs.NodeID, stats *sim.TaskStats) (mapred.RecordReader, error) {
	fsplit, ok := split.(*mapred.FileSplit)
	if !ok {
		return nil, fmt.Errorf("seq: unexpected split type %T", split)
	}
	r, err := fs.Open(fsplit.Path, node)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		r.SetStats(&stats.IO)
	}
	rd := &reader{r: r, stats: stats, end: fsplit.End, size: r.Size()}
	if err := rd.readHeader(); err != nil {
		return nil, err
	}
	if fsplit.Start > rd.pos {
		rd.pos = fsplit.Start
		rd.buf = nil
		if err := rd.scanToSync(); err != nil {
			if err == io.EOF {
				rd.done = true
				return rd, nil
			}
			return nil, err
		}
	}
	return rd, nil
}

type reader struct {
	r     *hdfs.FileReader
	stats *sim.TaskStats
	hdr   header
	codec compress.Codec
	fdec  map[string]compress.Codec

	pos  int64 // absolute offset of buf[0]... consumed bytes are dropped
	end  int64
	size int64
	buf  []byte
	done bool

	// block mode iteration state
	block     []byte
	blockLeft int
	blockPos  int
}

func (rd *reader) cpu() *sim.CPUStats {
	if rd.stats == nil {
		return nil
	}
	return &rd.stats.CPU
}

// ensure makes n bytes available in buf, reading forward.
func (rd *reader) ensure(n int) error {
	for len(rd.buf) < n {
		at := rd.pos + int64(len(rd.buf))
		if at >= rd.size {
			return io.EOF
		}
		want := 128 << 10
		if rem := rd.size - at; int64(want) > rem {
			want = int(rem)
		}
		chunk := make([]byte, want)
		m, err := rd.r.ReadAt(chunk, at)
		if err != nil && err != io.EOF {
			return err
		}
		if m == 0 {
			return io.EOF
		}
		rd.buf = append(rd.buf, chunk[:m]...)
	}
	return nil
}

func (rd *reader) consume(n int) {
	rd.buf = rd.buf[n:]
	rd.pos += int64(n)
}

func (rd *reader) uvarint() (uint64, error) {
	for {
		v, n := binary.Uvarint(rd.buf)
		if n > 0 {
			rd.consume(n)
			return v, nil
		}
		if n < 0 {
			return 0, fmt.Errorf("seq: varint overflow at offset %d", rd.pos)
		}
		if err := rd.ensure(len(rd.buf) + 1); err != nil {
			return 0, err
		}
	}
}

func (rd *reader) take(n int) ([]byte, error) {
	if err := rd.ensure(n); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	b := rd.buf[:n]
	rd.consume(n)
	return b, nil
}

func (rd *reader) readHeader() error {
	m, err := rd.take(len(magic))
	if err != nil {
		return fmt.Errorf("seq: reading magic: %w", err)
	}
	if string(m) != magic {
		return fmt.Errorf("seq: bad magic %q", m)
	}
	mb, err := rd.take(1)
	if err != nil {
		return err
	}
	rd.hdr.mode = Mode(mb[0])
	if rd.hdr.mode > ModeBlock {
		return fmt.Errorf("seq: unknown mode byte %d", mb[0])
	}
	readStr := func() (string, error) {
		l, err := rd.uvarint()
		if err != nil {
			return "", err
		}
		if l > 1<<20 {
			return "", fmt.Errorf("seq: absurd header string length %d", l)
		}
		b, err := rd.take(int(l))
		return string(b), err
	}
	if rd.hdr.codec, err = readStr(); err != nil {
		return err
	}
	schemaStr, err := readStr()
	if err != nil {
		return err
	}
	if rd.hdr.schema, err = serde.Parse(schemaStr); err != nil {
		return fmt.Errorf("seq: header schema: %w", err)
	}
	nfc, err := rd.uvarint()
	if err != nil {
		return err
	}
	rd.hdr.fieldCodecs = map[string]string{}
	rd.fdec = map[string]compress.Codec{}
	for i := uint64(0); i < nfc; i++ {
		name, err := readStr()
		if err != nil {
			return err
		}
		cn, err := readStr()
		if err != nil {
			return err
		}
		rd.hdr.fieldCodecs[name] = cn
		c, err := compress.ByName(cn)
		if err != nil {
			return err
		}
		rd.fdec[name] = c
	}
	sync, err := rd.take(syncSize)
	if err != nil {
		return err
	}
	rd.hdr.sync = append([]byte(nil), sync...)
	if rd.codec, err = compress.ByName(rd.hdr.codec); err != nil {
		return err
	}
	return nil
}

// scanToSync advances to just past the next sync marker (including its
// tag), the alignment step for splits that start mid-file.
func (rd *reader) scanToSync() error {
	// The marker is preceded by the tagSync varint (one byte, value 0).
	needle := append([]byte{tagSync}, rd.hdr.sync...)
	for {
		if i := bytes.Index(rd.buf, needle); i >= 0 {
			rd.consume(i + len(needle))
			return nil
		}
		// Keep a tail that might hold a marker prefix; fetch more.
		keep := len(needle) - 1
		if len(rd.buf) > keep {
			rd.consume(len(rd.buf) - keep)
		}
		if err := rd.ensure(len(rd.buf) + 1); err != nil {
			return err
		}
	}
}

// Next implements mapred.RecordReader.
func (rd *reader) Next() (any, any, bool, error) {
	for {
		if rd.done {
			return nil, nil, false, nil
		}
		if rd.blockLeft > 0 {
			rec, err := rd.decodeFromBlock()
			if err != nil {
				return nil, nil, false, err
			}
			return nil, rec, true, nil
		}
		// Hadoop split semantics: a reader owns every record up to the
		// first sync marker at or past its end offset (the next split
		// aligns itself to that same marker).
		entryStart := rd.pos
		tag, err := rd.uvarint()
		if err == io.EOF {
			rd.done = true
			return nil, nil, false, nil
		}
		if err != nil {
			return nil, nil, false, err
		}
		switch tag {
		case tagSync:
			if entryStart >= rd.end {
				rd.done = true
				return nil, nil, false, nil
			}
			if _, err := rd.take(syncSize); err != nil {
				return nil, nil, false, err
			}
		case tagRecord:
			rec, err := rd.decodeRecordEntry()
			if err != nil {
				return nil, nil, false, err
			}
			return nil, rec, true, nil
		case tagBlock:
			if err := rd.loadBlock(); err != nil {
				return nil, nil, false, err
			}
		default:
			return nil, nil, false, fmt.Errorf("seq: unknown entry tag %d at offset %d", tag, rd.pos)
		}
	}
}

func (rd *reader) decodeRecordEntry() (*serde.GenericRecord, error) {
	rawLen, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	enc := []byte(nil)
	if rd.hdr.mode == ModeRecord {
		compLen, err := rd.uvarint()
		if err != nil {
			return nil, err
		}
		comp, err := rd.take(int(compLen))
		if err != nil {
			return nil, err
		}
		enc, err = rd.codec.Decompress(nil, comp, int(rawLen))
		if err != nil {
			return nil, err
		}
		compress.ChargeDecomp(rd.cpu(), rd.codec.Name(), int64(len(enc)))
	} else {
		enc, err = rd.take(int(rawLen))
		if err != nil {
			return nil, err
		}
	}
	return rd.decodeRecord(enc)
}

func (rd *reader) loadBlock() error {
	records, err := rd.uvarint()
	if err != nil {
		return err
	}
	rawLen, err := rd.uvarint()
	if err != nil {
		return err
	}
	compLen, err := rd.uvarint()
	if err != nil {
		return err
	}
	comp, err := rd.take(int(compLen))
	if err != nil {
		return err
	}
	raw, err := rd.codec.Decompress(nil, comp, int(rawLen))
	if err != nil {
		return err
	}
	compress.ChargeDecomp(rd.cpu(), rd.codec.Name(), int64(len(raw)))
	rd.block = raw
	rd.blockLeft = int(records)
	rd.blockPos = 0
	return nil
}

func (rd *reader) decodeFromBlock() (*serde.GenericRecord, error) {
	l, n := binary.Uvarint(rd.block[rd.blockPos:])
	if n <= 0 {
		return nil, fmt.Errorf("seq: corrupt block at value offset %d", rd.blockPos)
	}
	rd.blockPos += n
	if rd.blockPos+int(l) > len(rd.block) {
		return nil, fmt.Errorf("seq: block value overruns block")
	}
	enc := rd.block[rd.blockPos : rd.blockPos+int(l)]
	rd.blockPos += int(l)
	rd.blockLeft--
	return rd.decodeRecord(enc)
}

// decodeRecord deserializes a full record (SEQ always materializes every
// column) and reverses any application-level field compression.
func (rd *reader) decodeRecord(enc []byte) (*serde.GenericRecord, error) {
	d := serde.NewDecoder(enc, rd.cpu())
	rec, err := d.Record(rd.hdr.schema)
	if err != nil {
		return nil, err
	}
	for name, codec := range rd.fdec {
		i := rd.hdr.schema.FieldIndex(name)
		packed, ok := rec.GetAt(i).([]byte)
		if !ok {
			return nil, fmt.Errorf("seq: compressed field %q is not bytes", name)
		}
		rawLen, n := binary.Uvarint(packed)
		if n <= 0 {
			return nil, fmt.Errorf("seq: compressed field %q missing length", name)
		}
		raw, err := codec.Decompress(nil, packed[n:], int(rawLen))
		if err != nil {
			return nil, fmt.Errorf("seq: field %q: %w", name, err)
		}
		compress.ChargeDecomp(rd.cpu(), codec.Name(), int64(len(raw)))
		rec.SetAt(i, raw)
	}
	return rec, nil
}

// Close implements mapred.RecordReader.
func (rd *reader) Close() error { return rd.r.Close() }

// Schema exposes the header schema (for tools).
func (rd *reader) Schema() *serde.Schema { return rd.hdr.schema }

// ReadSchema returns the schema stored in a SequenceFile's header.
func ReadSchema(fs *hdfs.FileSystem, path string) (*serde.Schema, error) {
	r, err := fs.Open(path, hdfs.AnyNode)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	rd := &reader{r: r, size: r.Size(), end: r.Size()}
	if err := rd.readHeader(); err != nil {
		return nil, err
	}
	return rd.hdr.schema, nil
}
