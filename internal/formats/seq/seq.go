// Package seq implements SequenceFiles, Hadoop's standard binary key/value
// format and the paper's SEQ baseline. Keys are NullWritable (as in the
// paper); values are serde-encoded records. Four variants match Table 1:
//
//	ModeNone    uncompressed records              (SEQ-uncomp)
//	ModeRecord  each value compressed separately  (SEQ-record)
//	ModeBlock   batches of values compressed      (SEQ-block)
//	FieldCodecs application-level compression of
//	            selected byte columns             (SEQ-custom)
//
// Files embed their schema, a sync-marker for mid-file split alignment, and
// sync points at a configurable interval.
package seq

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"colmr/internal/compress"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Mode selects the compression variant.
type Mode uint8

// Compression modes.
const (
	ModeNone Mode = iota
	ModeRecord
	ModeBlock
)

// String returns the mode's configuration name.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeRecord:
		return "record"
	case ModeBlock:
		return "block"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Entry tags in the record stream.
const (
	tagSync   = 0
	tagRecord = 1
	tagBlock  = 2
)

const (
	magic    = "SEQF"
	syncSize = 16
	// DefaultSyncInterval is how many payload bytes may pass between sync
	// markers.
	DefaultSyncInterval = 4 << 10
	// DefaultBlockBytes is the target raw size of one compressed block.
	DefaultBlockBytes = 128 << 10
)

// Options configures a SequenceFile writer.
type Options struct {
	Mode Mode
	// Codec compresses records/blocks in ModeRecord and ModeBlock.
	Codec string
	// BlockBytes is the raw batch size in ModeBlock.
	BlockBytes int
	// SyncInterval is the approximate byte distance between sync markers.
	SyncInterval int
	// FieldCodecs compresses individual byte-typed fields with
	// application code, the paper's SEQ-custom: map of field name to
	// codec name.
	FieldCodecs map[string]string
}

func (o Options) withDefaults() Options {
	if o.Codec == "" {
		o.Codec = "none"
	}
	if o.BlockBytes == 0 {
		o.BlockBytes = DefaultBlockBytes
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	return o
}

// header is the self-describing file preamble.
type header struct {
	mode        Mode
	codec       string
	schema      *serde.Schema
	fieldCodecs map[string]string
	sync        []byte
}

func appendHeader(dst []byte, h header) []byte {
	dst = append(dst, magic...)
	dst = append(dst, byte(h.mode))
	dst = binary.AppendUvarint(dst, uint64(len(h.codec)))
	dst = append(dst, h.codec...)
	schemaStr := h.schema.String()
	dst = binary.AppendUvarint(dst, uint64(len(schemaStr)))
	dst = append(dst, schemaStr...)
	names := make([]string, 0, len(h.fieldCodecs))
	for n := range h.fieldCodecs {
		names = append(names, n)
	}
	sort.Strings(names)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = binary.AppendUvarint(dst, uint64(len(n)))
		dst = append(dst, n...)
		c := h.fieldCodecs[n]
		dst = binary.AppendUvarint(dst, uint64(len(c)))
		dst = append(dst, c...)
	}
	dst = append(dst, h.sync...)
	return dst
}

// syncMarkerFor derives a deterministic 16-byte sync marker from the file
// path (Hadoop uses a random UID; a path hash keeps runs reproducible).
func syncMarkerFor(path string) []byte {
	h1 := fnv.New64a()
	h1.Write([]byte(path))
	h2 := fnv.New64()
	h2.Write([]byte(path))
	h2.Write([]byte{0xA5})
	out := make([]byte, 0, syncSize)
	out = h1.Sum(out)
	out = h2.Sum(out)
	return out
}

// Writer streams records to a SequenceFile.
type Writer struct {
	w      io.Writer
	opts   Options
	schema *serde.Schema
	codec  compress.Codec
	fcodec map[string]compress.Codec
	stats  *sim.CPUStats
	sync   []byte

	sinceSync int
	count     int64

	// block mode state
	raw        []byte
	blockCount int

	scratch []byte
}

// NewWriter creates a SequenceFile at w. The path parameter seeds the sync
// marker; pass the file's HDFS path.
func NewWriter(w io.Writer, path string, schema *serde.Schema, opts Options, stats *sim.CPUStats) (*Writer, error) {
	opts = opts.withDefaults()
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if schema.Kind != serde.KindRecord {
		return nil, fmt.Errorf("seq: schema must be a record")
	}
	codec, err := compress.ByName(opts.Codec)
	if err != nil {
		return nil, err
	}
	fcodec := map[string]compress.Codec{}
	for name, cn := range opts.FieldCodecs {
		fs := schema.Field(name)
		if fs == nil {
			return nil, fmt.Errorf("seq: field codec for unknown field %q", name)
		}
		if fs.Kind != serde.KindBytes {
			return nil, fmt.Errorf("seq: field codec requires a bytes field, %q is %s", name, fs.Kind)
		}
		c, err := compress.ByName(cn)
		if err != nil {
			return nil, err
		}
		fcodec[name] = c
	}
	sw := &Writer{
		w:      w,
		opts:   opts,
		schema: schema,
		codec:  codec,
		fcodec: fcodec,
		stats:  stats,
		sync:   syncMarkerFor(path),
	}
	hdr := appendHeader(nil, header{
		mode:        opts.Mode,
		codec:       opts.Codec,
		schema:      schema,
		fieldCodecs: opts.FieldCodecs,
		sync:        sw.sync,
	})
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	return sw, nil
}

// Append writes one record.
func (w *Writer) Append(rec *serde.GenericRecord) error {
	enc, err := w.encodeRecord(rec)
	if err != nil {
		return err
	}
	if w.stats != nil {
		w.stats.RawBytes += int64(len(enc)) // serialization work
	}
	switch w.opts.Mode {
	case ModeNone:
		if err := w.maybeSync(); err != nil {
			return err
		}
		out := binary.AppendUvarint(nil, tagRecord)
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
		return w.emit(out)
	case ModeRecord:
		if err := w.maybeSync(); err != nil {
			return err
		}
		comp, err := w.codec.Compress(nil, enc)
		if err != nil {
			return err
		}
		compress.ChargeComp(w.stats, w.codec.Name(), int64(len(enc)))
		out := binary.AppendUvarint(nil, tagRecord)
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = binary.AppendUvarint(out, uint64(len(comp)))
		out = append(out, comp...)
		return w.emit(out)
	case ModeBlock:
		w.raw = binary.AppendUvarint(w.raw, uint64(len(enc)))
		w.raw = append(w.raw, enc...)
		w.blockCount++
		w.count++
		if len(w.raw) >= w.opts.BlockBytes {
			return w.flushBlock()
		}
		return nil
	}
	return fmt.Errorf("seq: unknown mode %v", w.opts.Mode)
}

// encodeRecord serializes a record, applying per-field application-level
// compression (SEQ-custom).
func (w *Writer) encodeRecord(rec *serde.GenericRecord) ([]byte, error) {
	if len(w.fcodec) == 0 {
		return serde.AppendRecord(w.scratch[:0], rec)
	}
	tx := serde.NewRecord(w.schema)
	for i, f := range w.schema.Fields {
		v := rec.GetAt(i)
		if c, ok := w.fcodec[f.Name]; ok {
			raw, ok := v.([]byte)
			if !ok {
				return nil, fmt.Errorf("seq: field %q: expected bytes, got %T", f.Name, v)
			}
			comp, err := c.Compress(binary.AppendUvarint(nil, uint64(len(raw))), raw)
			if err != nil {
				return nil, err
			}
			compress.ChargeComp(w.stats, c.Name(), int64(len(raw)))
			v = comp
		}
		tx.SetAt(i, v)
	}
	return serde.AppendRecord(w.scratch[:0], tx)
}

func (w *Writer) emit(entry []byte) error {
	if _, err := w.w.Write(entry); err != nil {
		return err
	}
	w.sinceSync += len(entry)
	w.count++
	return nil
}

func (w *Writer) maybeSync() error {
	if w.sinceSync < w.opts.SyncInterval {
		return nil
	}
	out := binary.AppendUvarint(nil, tagSync)
	out = append(out, w.sync...)
	if _, err := w.w.Write(out); err != nil {
		return err
	}
	w.sinceSync = 0
	return nil
}

func (w *Writer) flushBlock() error {
	if w.blockCount == 0 {
		return nil
	}
	// Sync precedes every block so block boundaries are split points.
	out := binary.AppendUvarint(nil, tagSync)
	out = append(out, w.sync...)
	out = binary.AppendUvarint(out, tagBlock)
	out, err := compress.AppendFrame(out, w.codec, w.blockCount, w.raw, w.stats)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(out); err != nil {
		return err
	}
	w.raw = w.raw[:0]
	w.blockCount = 0
	return nil
}

// Count returns the number of records appended.
func (w *Writer) Count() int64 { return w.count }

// Close flushes any pending block.
func (w *Writer) Close() error {
	if w.opts.Mode == ModeBlock {
		return w.flushBlock()
	}
	return nil
}
