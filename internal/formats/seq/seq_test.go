package seq

import (
	"math/rand"
	"testing"

	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

var testSchema = serde.MustParse(`
T {
  string url,
  int n,
  map<string> meta,
  bytes content
}`)

func makeRecord(rng *rand.Rand, i int) *serde.GenericRecord {
	rec := serde.NewRecord(testSchema)
	rec.Set("url", "http://site/"+string(rune('a'+i%26)))
	rec.Set("n", int32(i))
	rec.Set("meta", map[string]any{"content-type": "text/html", "idx": string(rune('0' + i%10))})
	content := make([]byte, 100+rng.Intn(200))
	for j := range content {
		content[j] = byte('A' + (i+j)%23)
	}
	rec.Set("content", content)
	return rec
}

func testFS(t *testing.T, blockSize int64) *hdfs.FileSystem {
	t.Helper()
	cfg := sim.DefaultCluster()
	cfg.Nodes = 4
	cfg.BlockSize = blockSize
	return hdfs.New(cfg, 1)
}

func writeSeq(t *testing.T, fs *hdfs.FileSystem, path string, opts Options, n int) []*serde.GenericRecord {
	t.Helper()
	f, err := fs.Create(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, path, testSchema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var recs []*serde.GenericRecord
	for i := 0; i < n; i++ {
		rec := makeRecord(rng, i)
		recs = append(recs, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return recs
}

func readAll(t *testing.T, fs *hdfs.FileSystem, path string, splitSize int64) ([]*serde.GenericRecord, sim.TaskStats) {
	t.Helper()
	in := &InputFormat{SplitSize: splitSize}
	conf := &mapred.JobConf{InputPaths: []string{path}}
	splits, err := in.Splits(fs, conf)
	if err != nil {
		t.Fatal(err)
	}
	var out []*serde.GenericRecord
	var total sim.TaskStats
	for _, sp := range splits {
		var st sim.TaskStats
		rr, err := in.Open(fs, conf, sp, hdfs.AnyNode, &st)
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, v, ok, err := rr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			out = append(out, v.(*serde.GenericRecord))
		}
		rr.Close()
		total.Add(st)
	}
	return out, total
}

func sortByN(recs []*serde.GenericRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0; j-- {
			a, _ := recs[j-1].Get("n")
			b, _ := recs[j].Get("n")
			if a.(int32) <= b.(int32) {
				break
			}
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

func TestRoundTripAllModes(t *testing.T) {
	cases := []Options{
		{Mode: ModeNone},
		{Mode: ModeRecord, Codec: "lzo"},
		{Mode: ModeRecord, Codec: "zlib"},
		{Mode: ModeBlock, Codec: "lzo", BlockBytes: 4 << 10},
		{Mode: ModeBlock, Codec: "zlib", BlockBytes: 4 << 10},
		{Mode: ModeNone, FieldCodecs: map[string]string{"content": "lzo"}},
	}
	for _, opts := range cases {
		name := opts.Mode.String() + "/" + opts.Codec
		fs := testFS(t, 1<<16)
		want := writeSeq(t, fs, "/d/f.seq", opts, 200)
		got, _ := readAll(t, fs, "/d/f.seq", 1<<62)
		if len(got) != len(want) {
			t.Fatalf("%s: read %d records, want %d", name, len(got), len(want))
		}
		for i := range want {
			if !serde.RecordsEqual(want[i], got[i]) {
				t.Fatalf("%s: record %d mismatch", name, i)
			}
		}
	}
}

// Records must be read exactly once across arbitrary split boundaries —
// the sync-marker alignment contract.
func TestSplitsExactlyOnce(t *testing.T) {
	for _, opts := range []Options{
		{Mode: ModeNone, SyncInterval: 512},
		{Mode: ModeRecord, Codec: "lzo", SyncInterval: 512},
		{Mode: ModeBlock, Codec: "lzo", BlockBytes: 1 << 10},
	} {
		fs := testFS(t, 1<<14)
		const n = 300
		writeSeq(t, fs, "/d/f.seq", opts, n)
		for _, splitSize := range []int64{1 << 62, 8192, 1111} {
			got, _ := readAll(t, fs, "/d/f.seq", splitSize)
			if len(got) != n {
				t.Fatalf("%s splitSize=%d: read %d records, want %d", opts.Mode, splitSize, len(got), n)
			}
			sortByN(got)
			for i, r := range got {
				v, _ := r.Get("n")
				if v.(int32) != int32(i) {
					t.Fatalf("%s splitSize=%d: missing or duplicated record %d", opts.Mode, splitSize, i)
				}
			}
		}
	}
}

func TestSchemaFromHeader(t *testing.T) {
	fs := testFS(t, 1<<16)
	writeSeq(t, fs, "/d/f.seq", Options{Mode: ModeNone}, 5)
	s, err := ReadSchema(fs, "/d/f.seq")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(testSchema) {
		t.Errorf("header schema mismatch:\n%s", s)
	}
}

func TestCompressionShrinksFile(t *testing.T) {
	fsA := testFS(t, 1<<20)
	fsB := testFS(t, 1<<20)
	writeSeq(t, fsA, "/f", Options{Mode: ModeNone}, 500)
	writeSeq(t, fsB, "/f", Options{Mode: ModeBlock, Codec: "zlib", BlockBytes: 8 << 10}, 500)
	if fsB.TotalSize("/f") >= fsA.TotalSize("/f") {
		t.Errorf("block-compressed %d >= uncompressed %d", fsB.TotalSize("/f"), fsA.TotalSize("/f"))
	}
}

func TestDecodeChargesCounters(t *testing.T) {
	fs := testFS(t, 1<<20)
	writeSeq(t, fs, "/f", Options{Mode: ModeBlock, Codec: "lzo", BlockBytes: 8 << 10}, 100)
	_, st := readAll(t, fs, "/f", 1<<62)
	if st.CPU.LzoBytes == 0 {
		t.Error("block decompression not charged")
	}
	if st.CPU.MapBytes == 0 || st.CPU.StringBytes == 0 || st.CPU.RawBytes == 0 {
		t.Errorf("decode counters missing: %+v", st.CPU)
	}
	if st.CPU.RecordsMaterialized != 100 {
		t.Errorf("RecordsMaterialized = %d, want 100", st.CPU.RecordsMaterialized)
	}
	if st.IO.LogicalBytes == 0 || st.IO.TotalChargedBytes() == 0 {
		t.Errorf("I/O not charged: %+v", st.IO)
	}
}

func TestCustomFieldCodecReducesSizeAndRestoresContent(t *testing.T) {
	fsPlain := testFS(t, 1<<20)
	fsCustom := testFS(t, 1<<20)
	want := writeSeq(t, fsPlain, "/f", Options{Mode: ModeNone}, 100)
	writeSeq(t, fsCustom, "/f", Options{Mode: ModeNone, FieldCodecs: map[string]string{"content": "lzo"}}, 100)
	if fsCustom.TotalSize("/f") >= fsPlain.TotalSize("/f") {
		t.Error("custom field compression did not shrink the file")
	}
	got, st := readAll(t, fsCustom, "/f", 1<<62)
	for i := range want {
		if !serde.RecordsEqual(want[i], got[i]) {
			t.Fatalf("record %d mismatch after field decompression", i)
		}
	}
	if st.CPU.LzoBytes == 0 {
		t.Error("field decompression not charged")
	}
}

func TestWriterValidation(t *testing.T) {
	fs := testFS(t, 1<<16)
	f, _ := fs.Create("/v", 0)
	if _, err := NewWriter(f, "/v", serde.Int(), Options{}, nil); err == nil {
		t.Error("non-record schema accepted")
	}
	if _, err := NewWriter(f, "/v", testSchema, Options{FieldCodecs: map[string]string{"nope": "lzo"}}, nil); err == nil {
		t.Error("unknown field codec target accepted")
	}
	if _, err := NewWriter(f, "/v", testSchema, Options{FieldCodecs: map[string]string{"url": "lzo"}}, nil); err == nil {
		t.Error("field codec on non-bytes field accepted")
	}
	if _, err := NewWriter(f, "/v", testSchema, Options{Codec: "nope"}, nil); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestCorruptHeader(t *testing.T) {
	fs := testFS(t, 1<<16)
	fs.WriteFile("/bad", []byte("NOTASEQFILE_____________"), 0)
	in := &InputFormat{}
	if _, err := in.Open(fs, &mapred.JobConf{}, &mapred.FileSplit{Path: "/bad", End: 24}, hdfs.AnyNode, nil); err == nil {
		t.Error("corrupt header accepted")
	}
}
