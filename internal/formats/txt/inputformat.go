package txt

import (
	"bytes"
	"fmt"
	"io"

	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Writer streams text records to a file.
type Writer struct {
	w   io.Writer
	buf []byte
	n   int64
}

// NewWriter returns a text record writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write appends one record as a text line.
func (w *Writer) Write(r *serde.GenericRecord) error {
	buf, err := AppendRecord(w.buf[:0], r)
	if err != nil {
		return err
	}
	w.buf = buf
	if _, err := w.w.Write(buf); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int64 { return w.n }

// InputFormat reads delimited text files. Text carries no schema, so the
// dataset's schema is supplied at construction, exactly like parsing raw
// logs with hand-written code.
//
// Splits are byte ranges aligned to line boundaries Hadoop-style: a reader
// whose range starts mid-file discards the partial first line (the previous
// split reads past its end to finish it).
type InputFormat struct {
	Schema *serde.Schema
	// SplitSize overrides the target split size (default: one HDFS block).
	SplitSize int64
}

// Splits implements mapred.InputFormat.
func (f *InputFormat) Splits(fs *hdfs.FileSystem, conf *mapred.JobConf) ([]mapred.Split, error) {
	return mapred.SplitFiles(fs, conf.InputPaths, f.SplitSize)
}

// Open implements mapred.InputFormat.
func (f *InputFormat) Open(fs *hdfs.FileSystem, conf *mapred.JobConf, split mapred.Split, node hdfs.NodeID, stats *sim.TaskStats) (mapred.RecordReader, error) {
	fsplit, ok := split.(*mapred.FileSplit)
	if !ok {
		return nil, fmt.Errorf("txt: unexpected split type %T", split)
	}
	if f.Schema == nil || f.Schema.Kind != serde.KindRecord {
		return nil, fmt.Errorf("txt: InputFormat requires a record schema")
	}
	r, err := fs.Open(fsplit.Path, node)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		r.SetStats(&stats.IO)
	}
	rd := &reader{
		schema: f.Schema,
		r:      r,
		stats:  stats,
		pos:    fsplit.Start,
		end:    fsplit.End,
		size:   r.Size(),
	}
	if err := rd.alignToFirstLine(); err != nil {
		return nil, err
	}
	return rd, nil
}

type reader struct {
	schema *serde.Schema
	r      *hdfs.FileReader
	stats  *sim.TaskStats
	pos    int64 // next unread byte
	end    int64 // split end; the line containing end-1 is ours
	size   int64

	buf      []byte // buffered bytes starting at pos
	done     bool
	chunkLen int
}

func (rd *reader) chunk() int {
	if rd.chunkLen == 0 {
		rd.chunkLen = 128 << 10
	}
	return rd.chunkLen
}

// alignToFirstLine positions the reader on the first line that starts
// within the split.
func (rd *reader) alignToFirstLine() error {
	if rd.pos == 0 {
		return nil
	}
	// Back up one byte: if it is '\n' the split starts exactly on a line
	// boundary and the line is ours.
	rd.pos--
	line, err := rd.readLine()
	if err == io.EOF {
		rd.done = true
		return nil
	}
	if err != nil {
		return err
	}
	_ = line // partial (or preceding) line: owned by the previous split
	return nil
}

// readLine returns the next line (without newline), reading past the split
// end if the line spans it.
func (rd *reader) readLine() ([]byte, error) {
	for {
		if i := bytes.IndexByte(rd.buf, '\n'); i >= 0 {
			line := rd.buf[:i]
			rd.buf = rd.buf[i+1:]
			rd.pos += int64(i) + 1
			return line, nil
		}
		if rd.pos+int64(len(rd.buf)) >= rd.size {
			// Final line without trailing newline.
			if len(rd.buf) == 0 {
				return nil, io.EOF
			}
			line := rd.buf
			rd.pos += int64(len(rd.buf))
			rd.buf = nil
			return line, nil
		}
		chunk := make([]byte, rd.chunk())
		n, err := rd.r.ReadAt(chunk, rd.pos+int64(len(rd.buf)))
		if err != nil && err != io.EOF {
			return nil, err
		}
		if n == 0 {
			return nil, io.ErrUnexpectedEOF
		}
		rd.buf = append(rd.buf, chunk[:n]...)
	}
}

// Next implements mapred.RecordReader.
func (rd *reader) Next() (any, any, bool, error) {
	// A line belongs to this split if it starts before end.
	if rd.done || rd.pos >= rd.end {
		return nil, nil, false, nil
	}
	line, err := rd.readLine()
	if err == io.EOF {
		rd.done = true
		return nil, nil, false, nil
	}
	if err != nil {
		return nil, nil, false, err
	}
	var cpu *sim.CPUStats
	if rd.stats != nil {
		cpu = &rd.stats.CPU
	}
	rec, err := ParseRecord(line, rd.schema, cpu)
	if err != nil {
		return nil, nil, false, err
	}
	return nil, rec, true, nil
}

// Close implements mapred.RecordReader.
func (rd *reader) Close() error { return rd.r.Close() }
