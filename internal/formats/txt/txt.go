// Package txt implements the delimited text format (the paper's TXT
// baseline): one record per line, fields separated by tabs, array elements
// by '|', map entries by ';' with ':' between key and value, and byte
// columns hex-encoded. Reading is CPU-bound on parsing, which is exactly
// why the paper's Figure 7 shows TXT roughly 3x slower than a binary
// format.
package txt

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Field and structure delimiters.
const (
	fieldSep = '\t'
	arraySep = '|'
	entrySep = ';'
	kvSep    = ':'
)

// AppendRecord appends the text encoding of r plus a newline to dst.
func AppendRecord(dst []byte, r *serde.GenericRecord) ([]byte, error) {
	s := r.Schema()
	var err error
	for i, f := range s.Fields {
		if i > 0 {
			dst = append(dst, fieldSep)
		}
		dst, err = appendValue(dst, f.Type, r.GetAt(i))
		if err != nil {
			return dst, fmt.Errorf("txt: field %q: %w", f.Name, err)
		}
	}
	return append(dst, '\n'), nil
}

func appendValue(dst []byte, s *serde.Schema, v any) ([]byte, error) {
	if v == nil {
		return dst, fmt.Errorf("unset value")
	}
	switch s.Kind {
	case serde.KindBool:
		return strconv.AppendBool(dst, v.(bool)), nil
	case serde.KindInt:
		return strconv.AppendInt(dst, int64(v.(int32)), 10), nil
	case serde.KindLong, serde.KindTime:
		return strconv.AppendInt(dst, v.(int64), 10), nil
	case serde.KindDouble:
		return strconv.AppendFloat(dst, v.(float64), 'g', -1, 64), nil
	case serde.KindString:
		return appendEscaped(dst, v.(string)), nil
	case serde.KindBytes:
		b := v.([]byte)
		if len(b) == 0 {
			return append(dst, emptyMarker...), nil
		}
		return hex.AppendEncode(dst, b), nil
	case serde.KindArray:
		arr := v.([]any)
		var err error
		for i, e := range arr {
			if i > 0 {
				dst = append(dst, arraySep)
			}
			dst, err = appendValue(dst, s.Elem, e)
			if err != nil {
				return dst, err
			}
		}
		return dst, nil
	case serde.KindMap:
		m := v.(map[string]any)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sortStrings(keys)
		var err error
		for i, k := range keys {
			if i > 0 {
				dst = append(dst, entrySep)
			}
			dst = appendEscaped(dst, k)
			dst = append(dst, kvSep)
			dst, err = appendValue(dst, s.Elem, m[k])
			if err != nil {
				return dst, err
			}
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("txt: nested records are not representable in text format")
	}
}

// appendEscaped backslash-escapes the delimiters and newline. The empty
// string is written as the marker "\e" so that an array holding one empty
// string remains distinguishable from an empty array.
func appendEscaped(dst []byte, s string) []byte {
	if len(s) == 0 {
		return append(dst, '\\', 'e')
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case fieldSep, arraySep, entrySep, kvSep, '\\', '\n':
			dst = append(dst, '\\')
		}
		dst = append(dst, s[i])
	}
	return dst
}

// emptyMarker is the escaped representation of an empty string or byte
// slice.
const emptyMarker = "\\e"

// ParseRecord parses one text line (without its trailing newline) into a
// record, charging the full line as text-parse work.
func ParseRecord(line []byte, schema *serde.Schema, stats *sim.CPUStats) (*serde.GenericRecord, error) {
	if stats != nil {
		stats.TextBytes += int64(len(line)) + 1
		stats.RecordsMaterialized++
	}
	fields, err := splitEscaped(string(line), byte(fieldSep))
	if err != nil {
		return nil, err
	}
	if len(fields) != len(schema.Fields) {
		return nil, fmt.Errorf("txt: line has %d fields, schema %q wants %d", len(fields), schema.Name, len(schema.Fields))
	}
	rec := serde.NewRecord(schema)
	for i, f := range schema.Fields {
		v, err := parseValue(fields[i], f.Type, stats)
		if err != nil {
			return nil, fmt.Errorf("txt: field %q: %w", f.Name, err)
		}
		rec.SetAt(i, v)
	}
	return rec, nil
}

func parseValue(s string, schema *serde.Schema, stats *sim.CPUStats) (any, error) {
	if stats != nil {
		stats.ValuesMaterialized++
	}
	switch schema.Kind {
	case serde.KindBool:
		return strconv.ParseBool(s)
	case serde.KindInt:
		v, err := strconv.ParseInt(s, 10, 32)
		return int32(v), err
	case serde.KindLong, serde.KindTime:
		return strconv.ParseInt(s, 10, 64)
	case serde.KindDouble:
		return strconv.ParseFloat(s, 64)
	case serde.KindString:
		if s == emptyMarker {
			return "", nil
		}
		return unescape(s), nil
	case serde.KindBytes:
		if s == emptyMarker {
			return []byte{}, nil
		}
		return hex.DecodeString(s)
	case serde.KindArray:
		if s == "" {
			return []any{}, nil
		}
		parts, err := splitEscaped(s, byte(arraySep))
		if err != nil {
			return nil, err
		}
		arr := make([]any, 0, len(parts))
		for _, p := range parts {
			v, err := parseValue(p, schema.Elem, stats)
			if err != nil {
				return nil, err
			}
			arr = append(arr, v)
		}
		return arr, nil
	case serde.KindMap:
		m := map[string]any{}
		if s == "" {
			return m, nil
		}
		entries, err := splitEscaped(s, byte(entrySep))
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			kv, err := splitEscaped(e, byte(kvSep))
			if err != nil {
				return nil, err
			}
			if len(kv) != 2 {
				return nil, fmt.Errorf("txt: malformed map entry %q", e)
			}
			v, err := parseValue(kv[1], schema.Elem, stats)
			if err != nil {
				return nil, err
			}
			key := kv[0]
			if key == emptyMarker {
				key = ""
			} else {
				key = unescape(key)
			}
			m[key] = v
		}
		return m, nil
	default:
		return nil, fmt.Errorf("txt: nested records are not representable in text format")
	}
}

// splitEscaped splits on sep, honoring backslash escapes.
func splitEscaped(s string, sep byte) ([]string, error) {
	var out []string
	var cur strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\':
			if i+1 >= len(s) {
				return nil, fmt.Errorf("txt: dangling escape in %q", s)
			}
			cur.WriteByte('\\')
			cur.WriteByte(s[i+1])
			i++
		case c == sep:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	out = append(out, cur.String())
	return out, nil
}

func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
