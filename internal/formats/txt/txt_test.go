package txt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

var testSchema = serde.MustParse(`
T {
  string s,
  int i,
  long l,
  double d,
  bool b,
  bytes raw,
  string[] arr,
  map<int> m
}`)

func TestLineRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rec := serde.RandomRecord(rand.New(rand.NewSource(seed)), testSchema)
		line, err := AppendRecord(nil, rec)
		if err != nil {
			t.Logf("append: %v", err)
			return false
		}
		got, err := ParseRecord(line[:len(line)-1], testSchema, nil)
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		return serde.RecordsEqual(rec, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEscaping(t *testing.T) {
	schema := serde.MustParse(`T { string s, map<string> m }`)
	rec := serde.NewRecord(schema)
	rec.Set("s", "has\ttab|pipe;semi:colon\\back\nnewline")
	rec.Set("m", map[string]any{"k:ey": "v;al"})
	line, err := AppendRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRecord(line[:len(line)-1], schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !serde.RecordsEqual(rec, got) {
		s, _ := got.Get("s")
		t.Errorf("escaping round-trip failed: %q", s)
	}
}

func TestParseErrors(t *testing.T) {
	schema := serde.MustParse(`T { int i, string s }`)
	bad := []string{
		"notanint\tok",
		"5",             // too few fields
		"5\tx\textra",   // too many fields
		"5\tdangling\\", // dangling escape
	}
	for _, line := range bad {
		if _, err := ParseRecord([]byte(line), schema, nil); err == nil {
			t.Errorf("ParseRecord(%q) succeeded, want error", line)
		}
	}
	if _, err := ParseRecord([]byte("x"), serde.MustParse(`T { Inner { int i } n }`), nil); err == nil {
		t.Error("nested record schema should be rejected")
	}
}

func TestParseChargesTextBytes(t *testing.T) {
	schema := serde.MustParse(`T { int i, string s }`)
	var st sim.CPUStats
	line := []byte("42\thello")
	if _, err := ParseRecord(line, schema, &st); err != nil {
		t.Fatal(err)
	}
	if st.TextBytes != int64(len(line))+1 {
		t.Errorf("TextBytes = %d, want %d", st.TextBytes, len(line)+1)
	}
	if st.RecordsMaterialized != 1 || st.ValuesMaterialized != 2 {
		t.Errorf("materialization counters: %+v", st)
	}
}

// Every record must be read exactly once regardless of how split boundaries
// fall across lines.
func TestSplitsExactlyOnce(t *testing.T) {
	cfg := sim.DefaultCluster()
	cfg.Nodes = 4
	cfg.BlockSize = 1 << 14
	fs := hdfs.New(cfg, 1)
	schema := serde.MustParse(`T { int i, string pad }`)

	w, err := fs.Create("/data/t.txt", 0)
	if err != nil {
		t.Fatal(err)
	}
	tw := NewWriter(w)
	const n = 500
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		rec := serde.NewRecord(schema)
		rec.Set("i", int32(i))
		pad := make([]byte, 10+rng.Intn(90))
		for j := range pad {
			pad[j] = byte('a' + rng.Intn(26))
		}
		rec.Set("pad", string(pad))
		if err := tw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Count() != n {
		t.Fatalf("wrote %d", tw.Count())
	}
	w.Close()

	for _, splitSize := range []int64{1 << 62, 4096, 1000, 137} {
		in := &InputFormat{Schema: schema, SplitSize: splitSize}
		conf := &mapred.JobConf{InputPaths: []string{"/data/t.txt"}}
		splits, err := in.Splits(fs, conf)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int32]int{}
		for _, sp := range splits {
			rr, err := in.Open(fs, conf, sp, hdfs.AnyNode, &sim.TaskStats{})
			if err != nil {
				t.Fatal(err)
			}
			for {
				_, v, ok, err := rr.Next()
				if err != nil {
					t.Fatalf("splitSize %d: %v", splitSize, err)
				}
				if !ok {
					break
				}
				i, _ := v.(*serde.GenericRecord).Get("i")
				seen[i.(int32)]++
			}
			rr.Close()
		}
		if len(seen) != n {
			t.Fatalf("splitSize %d: saw %d distinct records, want %d", splitSize, len(seen), n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("splitSize %d: record %d read %d times", splitSize, i, c)
			}
		}
	}
}

func TestOpenErrors(t *testing.T) {
	fs := hdfs.New(sim.DefaultCluster(), 1)
	in := &InputFormat{Schema: testSchema}
	if _, err := in.Open(fs, &mapred.JobConf{}, &mapred.FileSplit{Path: "/missing"}, 0, nil); err == nil {
		t.Error("opening a missing file should fail")
	}
	in2 := &InputFormat{Schema: serde.Int()}
	fs.WriteFile("/f", []byte("x"), 0)
	if _, err := in2.Open(fs, &mapred.JobConf{}, &mapred.FileSplit{Path: "/f", End: 1}, 0, nil); err == nil {
		t.Error("non-record schema should fail")
	}
}

func ExampleAppendRecord() {
	schema := serde.MustParse(`T { string url, int hits }`)
	rec := serde.NewRecord(schema)
	rec.Set("url", "http://a.com")
	rec.Set("hits", int32(3))
	line, _ := AppendRecord(nil, rec)
	fmt.Printf("%q\n", line)
	// The ':' is escaped because it doubles as the map key/value separator.
	// Output: "http\\://a.com\t3\n"
}
