package hdfs

import (
	"container/list"
	"strings"
	"sync"
)

// ScanCache is an LRU-bounded cache of column-file byte regions, the storage
// side of a long-lived mapred.Session: regions a scan charged once stay
// resident across batches, so a steady stream of jobs over the same datasets
// re-reads hot columns from memory instead of the disk subsystem — the
// serving-style reuse PowerDrill builds its interactivity on ("Processing a
// Trillion Cells per Mouse Click", VLDB 2012).
//
// Granularity and keying. Entries are whole transfer units — the unit the
// filesystem already charges I/O in — keyed by (file path, file generation,
// unit offset). The generation is assigned by the namenode at file creation,
// so a dataset rebuilt under the same paths (reload, Remove+Create) can
// never serve stale bytes: its new files carry new generations and the old
// entries age out of the LRU. AddColumn needs no invalidation at all — it
// writes new files, and the untouched columns' cached regions remain
// exactly valid.
//
// The cache stores no payload bytes. The simulated datanodes already hold
// every block in memory; what a real cache would change — which reads reach
// the disks — is precisely what the accounting model measures, so a hit
// suppresses the region's local/remote byte charge and is counted in
// sim.TaskStats.CacheHits / BytesFromCache instead. Seek accounting is left
// untouched: the conservative model charges cursor movement whether or not
// the bytes came from cache.
//
// ScanCache is safe for concurrent use by the engine's map-task workers. A
// nil *ScanCache is valid and disables caching everywhere it is consulted.
type ScanCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	entries map[regionKey]*list.Element
}

// regionKey identifies one cached transfer unit of one file generation.
type regionKey struct {
	path string
	gen  int64
	off  int64
}

// region is one LRU entry; size is the unit's actual byte count (the final
// unit of a file may be short).
type region struct {
	key  regionKey
	size int64
}

// NewScanCache returns a cache bounded to budget bytes. A budget <= 0
// returns nil: caching disabled, the zero-cost path everywhere.
func NewScanCache(budget int64) *ScanCache {
	if budget <= 0 {
		return nil
	}
	return &ScanCache{
		budget:  budget,
		ll:      list.New(),
		entries: make(map[regionKey]*list.Element),
	}
}

// lookup reports whether the region is resident, marking it most recently
// used when it is.
func (c *ScanCache) lookup(key regionKey) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.ll.MoveToFront(el)
	return true
}

// admit inserts a region, evicting least-recently-used entries until the
// budget holds. A region larger than the whole budget is not admitted.
func (c *ScanCache) admit(key regionKey, size int64) {
	if c == nil || size <= 0 || size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	for c.used+size > c.budget {
		c.evictOldestLocked()
	}
	c.entries[key] = c.ll.PushFront(region{key: key, size: size})
	c.used += size
}

func (c *ScanCache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	r := el.Value.(region)
	c.ll.Remove(el)
	delete(c.entries, r.key)
	c.used -= r.size
}

// Invalidate drops every cached region of the file or dataset at prefix
// (the path itself, or anything under it). File generations already protect
// against stale reads; Invalidate exists to release the budget eagerly when
// a dataset is known dead.
func (c *ScanCache) Invalidate(prefix string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		r := el.Value.(region)
		if r.key.path == prefix || strings.HasPrefix(r.key.path, prefix+"/") {
			c.ll.Remove(el)
			delete(c.entries, r.key)
			c.used -= r.size
		}
		el = next
	}
}

// Used returns the resident bytes.
func (c *ScanCache) Used() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Regions returns the number of resident regions.
func (c *ScanCache) Regions() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Budget returns the configured bound in bytes.
func (c *ScanCache) Budget() int64 {
	if c == nil {
		return 0
	}
	return c.budget
}
