package hdfs

import (
	"testing"

	"colmr/internal/sim"
)

func k(path string, gen, off int64) regionKey { return regionKey{path: path, gen: gen, off: off} }

func TestScanCacheLRUBound(t *testing.T) {
	c := NewScanCache(300)
	for off := int64(0); off < 5; off++ {
		c.admit(k("/d/s0/a", 1, off*100), 100)
	}
	// Budget holds three 100-byte regions: the two oldest were evicted.
	if used, regions := c.Used(), c.Regions(); used != 300 || regions != 3 {
		t.Fatalf("after overflow: used %d, regions %d, want 300, 3", used, regions)
	}
	for off := int64(0); off < 2; off++ {
		if c.lookup(k("/d/s0/a", 1, off*100)) {
			t.Errorf("evicted region at %d still resident", off*100)
		}
	}
	for off := int64(2); off < 5; off++ {
		if !c.lookup(k("/d/s0/a", 1, off*100)) {
			t.Errorf("recent region at %d not resident", off*100)
		}
	}
}

func TestScanCacheLookupTouchesRecency(t *testing.T) {
	c := NewScanCache(300)
	c.admit(k("/f", 1, 0), 100)
	c.admit(k("/f", 1, 100), 100)
	c.admit(k("/f", 1, 200), 100)
	// Touch the oldest, then overflow: the untouched middle region goes.
	if !c.lookup(k("/f", 1, 0)) {
		t.Fatal("region at 0 not resident")
	}
	c.admit(k("/f", 1, 300), 100)
	if !c.lookup(k("/f", 1, 0)) {
		t.Error("touched region at 0 was evicted")
	}
	if c.lookup(k("/f", 1, 100)) {
		t.Error("least-recently-used region at 100 survived the overflow")
	}
}

func TestScanCacheOversizedRegionRejected(t *testing.T) {
	c := NewScanCache(100)
	c.admit(k("/f", 1, 0), 200)
	if c.Used() != 0 || c.lookup(k("/f", 1, 0)) {
		t.Error("region larger than the whole budget was admitted")
	}
}

func TestScanCacheGenerationsAreDistinct(t *testing.T) {
	c := NewScanCache(1000)
	c.admit(k("/f", 1, 0), 100)
	if c.lookup(k("/f", 2, 0)) {
		t.Error("generation 2 hit generation 1's region — stale read")
	}
	if !c.lookup(k("/f", 1, 0)) {
		t.Error("generation 1's own region missing")
	}
}

func TestScanCacheInvalidatePrefix(t *testing.T) {
	c := NewScanCache(1000)
	c.admit(k("/data/visits/s0/url", 1, 0), 100)
	c.admit(k("/data/visits/s1/url", 2, 0), 100)
	c.admit(k("/data/visitsold/s0/url", 3, 0), 100)
	c.Invalidate("/data/visits")
	if c.lookup(k("/data/visits/s0/url", 1, 0)) || c.lookup(k("/data/visits/s1/url", 2, 0)) {
		t.Error("invalidated dataset still resident")
	}
	// Sibling with a shared name prefix but a different path component stays.
	if !c.lookup(k("/data/visitsold/s0/url", 3, 0)) {
		t.Error("sibling dataset was invalidated")
	}
	if c.Used() != 100 {
		t.Errorf("used = %d after invalidation, want 100", c.Used())
	}
}

func TestScanCacheNilIsDisabled(t *testing.T) {
	var c *ScanCache
	if c := NewScanCache(0); c != nil {
		t.Error("budget 0 should return a nil cache")
	}
	c.admit(k("/f", 1, 0), 100) // must not panic
	if c.lookup(k("/f", 1, 0)) || c.Used() != 0 || c.Regions() != 0 || c.Budget() != 0 {
		t.Error("nil cache should be inert")
	}
	c.Invalidate("/f")
}

// TestFileReaderCacheCharging drives the cache through real reads: the
// first pass charges and admits, the second charges nothing and credits the
// cache counters, and the generation of a rebuilt file never hits its
// predecessor's regions.
func TestFileReaderCacheCharging(t *testing.T) {
	cfg := sim.SingleNode()
	fs := New(cfg, 1)
	data := make([]byte, 3*cfg.TransferUnit+100)
	for i := range data {
		data[i] = byte(i)
	}
	if err := fs.WriteFile("/f", data, AnyNode); err != nil {
		t.Fatal(err)
	}

	cache := NewScanCache(1 << 30)
	var gen int64
	read := func() (sim.TaskStats, []byte) {
		r, err := fs.Open("/f", 0)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		gen = r.Generation()
		var st sim.TaskStats
		r.SetStats(&st.IO)
		r.SetCache(cache, &st)
		buf := make([]byte, len(data))
		if _, err := r.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		return st, buf
	}

	cold, got := read()
	if string(got) != string(data) {
		t.Fatal("cold read returned wrong bytes")
	}
	if cold.IO.TotalChargedBytes() != int64(len(data)) {
		t.Errorf("cold charged %d, want %d", cold.IO.TotalChargedBytes(), len(data))
	}
	if cold.CacheHits != 0 || cold.BytesFromCache != 0 {
		t.Errorf("cold read hit the cache: %d hits, %d bytes", cold.CacheHits, cold.BytesFromCache)
	}

	warm, got := read()
	if string(got) != string(data) {
		t.Fatal("warm read returned wrong bytes")
	}
	if warm.IO.TotalChargedBytes() != 0 {
		t.Errorf("warm charged %d, want 0", warm.IO.TotalChargedBytes())
	}
	if warm.IO.LogicalBytes != int64(len(data)) {
		t.Errorf("warm logical %d, want %d — caching must not change logical accounting",
			warm.IO.LogicalBytes, len(data))
	}
	if warm.CacheHits != 4 || warm.BytesFromCache != int64(len(data)) {
		t.Errorf("warm hits = %d (%d bytes), want 4 (%d)", warm.CacheHits, warm.BytesFromCache, len(data))
	}

	// Rebuild the file at the same path: new generation, no stale hits.
	firstGen := gen
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	if err := fs.WriteFile("/f", data, AnyNode); err != nil {
		t.Fatal(err)
	}
	rebuilt, got := read()
	if got[0] != 'X' {
		t.Fatal("rebuilt read returned stale bytes")
	}
	if gen == firstGen {
		t.Errorf("rebuilt file kept generation %d — cache keys could not tell it apart", gen)
	}
	if rebuilt.CacheHits != 0 {
		t.Errorf("rebuilt file hit its predecessor's cache: %d hits", rebuilt.CacheHits)
	}
	if rebuilt.IO.TotalChargedBytes() != int64(len(data)) {
		t.Errorf("rebuilt charged %d, want %d", rebuilt.IO.TotalChargedBytes(), len(data))
	}
}
