package hdfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"colmr/internal/sim"
)

// The filesystem is shared by concurrent map tasks; writers and readers on
// distinct files, and many readers on one file, must be safe. Run with
// -race to catch violations.

func TestConcurrentWritersDistinctFiles(t *testing.T) {
	fs := New(testCluster(), 1)
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := fmt.Sprintf("/c/w%02d", w)
			data := bytes.Repeat([]byte{byte(w)}, 70_000) // multi-block
			if err := fs.WriteFile(p, data, NodeID(w%fs.cfg.Nodes)); err != nil {
				errs[w] = err
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	for w := 0; w < writers; w++ {
		data, err := fs.ReadFile(fmt.Sprintf("/c/w%02d", w))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 70_000 || data[0] != byte(w) || data[len(data)-1] != byte(w) {
			t.Fatalf("writer %d data corrupted", w)
		}
	}
}

func TestConcurrentReadersOneFile(t *testing.T) {
	fs := New(testCluster(), 2)
	payload := make([]byte, 200_000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := fs.WriteFile("/c/shared", payload, 0); err != nil {
		t.Fatal(err)
	}
	const readers = 16
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			reader, err := fs.Open("/c/shared", NodeID(r%fs.cfg.Nodes))
			if err != nil {
				errs[r] = err
				return
			}
			var st sim.IOStats
			reader.SetStats(&st)
			buf := make([]byte, 777)
			off := int64(r * 1000)
			for off < int64(len(payload)) {
				n, err := reader.ReadAt(buf, off)
				for i := 0; i < n; i++ {
					if buf[i] != byte((int(off)+i)*7) {
						errs[r] = fmt.Errorf("reader %d: corrupt byte at %d", r, off+int64(i))
						return
					}
				}
				if err != nil {
					break
				}
				off += int64(n)
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentMetadataOps(t *testing.T) {
	fs := New(testCluster(), 3)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dir := fmt.Sprintf("/meta/s%d", i)
			for j := 0; j < 20; j++ {
				p := fmt.Sprintf("%s/f%d", dir, j)
				if err := fs.WriteFile(p, []byte("x"), AnyNode); err != nil {
					t.Error(err)
					return
				}
				if _, err := fs.Stat(p); err != nil {
					t.Error(err)
					return
				}
				if _, err := fs.List(dir); err != nil {
					t.Error(err)
					return
				}
			}
			if err := fs.RemoveAll(dir); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}
