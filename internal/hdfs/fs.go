// Package hdfs implements an in-memory simulation of the Hadoop Distributed
// File System with the properties the paper's techniques depend on:
//
//   - files are split into fixed-size blocks, each replicated on R datanodes;
//   - block placement is delegated to a pluggable BlockPlacementPolicy
//     (Hadoop's dfs.block.replicator.classname extension point), which is
//     how the paper's ColumnPlacementPolicy co-locates column files;
//   - files are append-only (writers cannot rewrite earlier bytes), the
//     constraint that forces double-buffering when building skip lists;
//   - readers are tied to a reading node and charge traffic at transfer-unit
//     granularity, distinguishing local from remote bytes and counting disk
//     seeks, which is what makes I/O-elimination comparisons measurable.
//
// Block payloads are stored once in memory and shared across replicas;
// replication is a metadata-level property, which is all the experiments
// observe (locality, not durability of physical bytes).
package hdfs

import (
	"fmt"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"

	"colmr/internal/sim"
)

// NodeID identifies a datanode. Valid IDs are 0..Nodes-1; AnyNode means
// "no particular node" (the scheduler or policy picks one).
type NodeID int

// AnyNode is the reader/writer node used when locality does not matter.
const AnyNode NodeID = -1

// FileSystem is the simulated namenode plus datanode state.
type FileSystem struct {
	mu     sync.Mutex
	cfg    sim.ClusterConfig
	policy BlockPlacementPolicy
	files  map[string]*fileMeta
	dirs   map[string]bool
	rng    *rand.Rand
	// usage tracks bytes stored per node, used by the default policy for
	// coarse balancing.
	usage []int64
	dead  []bool
	// nextGen numbers file creations; a path recreated after Remove gets a
	// fresh generation, which is what keys session scan caches (ScanCache)
	// so they can never serve a rebuilt file's predecessor.
	nextGen int64
}

type fileMeta struct {
	path   string
	gen    int64
	blocks []*block
	size   int64
	closed bool
}

type block struct {
	data     []byte
	replicas []NodeID
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Path  string
	Size  int64
	IsDir bool
}

// Name returns the base name of the entry.
func (fi FileInfo) Name() string { return path.Base(fi.Path) }

// New creates a filesystem over the given cluster with the default block
// placement policy. The seed makes placement deterministic.
func New(cfg sim.ClusterConfig, seed int64) *FileSystem {
	fs := &FileSystem{
		cfg:   cfg,
		files: make(map[string]*fileMeta),
		dirs:  map[string]bool{"/": true},
		rng:   rand.New(rand.NewSource(seed)),
		usage: make([]int64, cfg.Nodes),
		dead:  make([]bool, cfg.Nodes),
	}
	fs.policy = NewDefaultPolicy()
	return fs
}

// Config returns the cluster configuration the filesystem was built with.
func (fs *FileSystem) Config() sim.ClusterConfig { return fs.cfg }

// SetPlacementPolicy installs a block placement policy, mirroring Hadoop's
// dfs.block.replicator.classname configuration property.
func (fs *FileSystem) SetPlacementPolicy(p BlockPlacementPolicy) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.policy = p
}

func clean(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// MkdirAll creates a directory and all parents.
func (fs *FileSystem) MkdirAll(dir string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.mkdirAllLocked(clean(dir))
}

func (fs *FileSystem) mkdirAllLocked(dir string) {
	for d := dir; d != "/"; d = path.Dir(d) {
		fs.dirs[d] = true
	}
}

// Create opens a new append-only file for writing from the given node.
// Parent directories are created implicitly. It is an error if the path
// already exists.
func (fs *FileSystem) Create(p string, writer NodeID) (*FileWriter, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = clean(p)
	if _, ok := fs.files[p]; ok {
		return nil, fmt.Errorf("hdfs: create %s: file exists", p)
	}
	if fs.dirs[p] {
		return nil, fmt.Errorf("hdfs: create %s: is a directory", p)
	}
	fs.mkdirAllLocked(path.Dir(p))
	fs.nextGen++
	meta := &fileMeta{path: p, gen: fs.nextGen}
	fs.files[p] = meta
	return &FileWriter{fs: fs, meta: meta, node: writer}, nil
}

// Open opens a file for reading from the given node. Reads served by a
// replica on that node are charged as local; all others as remote.
func (fs *FileSystem) Open(p string, reader NodeID) (*FileReader, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = clean(p)
	meta, ok := fs.files[p]
	if !ok {
		return nil, fmt.Errorf("hdfs: open %s: no such file", p)
	}
	return &FileReader{fs: fs, meta: meta, node: reader, chargedEnd: -1}, nil
}

// Stat returns metadata for a path.
func (fs *FileSystem) Stat(p string) (FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = clean(p)
	if meta, ok := fs.files[p]; ok {
		return FileInfo{Path: p, Size: meta.size}, nil
	}
	if fs.dirs[p] {
		return FileInfo{Path: p, IsDir: true}, nil
	}
	return FileInfo{}, fmt.Errorf("hdfs: stat %s: no such file or directory", p)
}

// Exists reports whether a file or directory exists.
func (fs *FileSystem) Exists(p string) bool {
	_, err := fs.Stat(p)
	return err == nil
}

// List returns the immediate children of a directory, sorted by name.
func (fs *FileSystem) List(dir string) ([]FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = clean(dir)
	if !fs.dirs[dir] {
		if _, ok := fs.files[dir]; ok {
			return nil, fmt.Errorf("hdfs: list %s: not a directory", dir)
		}
		return nil, fmt.Errorf("hdfs: list %s: no such directory", dir)
	}
	seen := make(map[string]FileInfo)
	add := func(p string, isDir bool, size int64) {
		if path.Dir(p) != dir {
			return
		}
		if _, ok := seen[p]; !ok {
			seen[p] = FileInfo{Path: p, Size: size, IsDir: isDir}
		}
	}
	for p, m := range fs.files {
		add(p, false, m.size)
	}
	for d := range fs.dirs {
		if d != "/" {
			add(d, true, 0)
		}
	}
	out := make([]FileInfo, 0, len(seen))
	for _, fi := range seen {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Remove deletes a file.
func (fs *FileSystem) Remove(p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p = clean(p)
	meta, ok := fs.files[p]
	if !ok {
		return fmt.Errorf("hdfs: remove %s: no such file", p)
	}
	for _, b := range meta.blocks {
		for _, n := range b.replicas {
			fs.usage[n] -= int64(len(b.data))
		}
	}
	delete(fs.files, p)
	return nil
}

// RemoveAll deletes a directory tree (or a single file).
func (fs *FileSystem) RemoveAll(p string) error {
	fs.mu.Lock()
	pp := clean(p)
	var victims []string
	for f := range fs.files {
		if f == pp || strings.HasPrefix(f, pp+"/") {
			victims = append(victims, f)
		}
	}
	for d := range fs.dirs {
		if d == pp || strings.HasPrefix(d, pp+"/") {
			delete(fs.dirs, d)
		}
	}
	fs.mu.Unlock()
	for _, f := range victims {
		if err := fs.Remove(f); err != nil {
			return err
		}
	}
	return nil
}

// BlockLocations returns, for each block of the file, the node IDs holding
// a replica.
func (fs *FileSystem) BlockLocations(p string) ([][]NodeID, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	meta, ok := fs.files[clean(p)]
	if !ok {
		return nil, fmt.Errorf("hdfs: locations %s: no such file", p)
	}
	out := make([][]NodeID, len(meta.blocks))
	for i, b := range meta.blocks {
		out[i] = append([]NodeID(nil), b.replicas...)
	}
	return out, nil
}

// HostsFor returns the set of nodes holding a replica of every block of
// every listed file — the nodes on which a task reading those files runs
// entirely locally. Used by locality-aware schedulers.
func (fs *FileSystem) HostsFor(paths []string) []NodeID {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	counts := make(map[NodeID]int)
	blocks := 0
	for _, p := range paths {
		meta, ok := fs.files[clean(p)]
		if !ok {
			continue
		}
		for _, b := range meta.blocks {
			blocks++
			for _, n := range b.replicas {
				counts[n]++
			}
		}
	}
	var out []NodeID
	for n, c := range counts {
		if c == blocks && !fs.dead[n] {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KillNode marks a datanode dead. Reads fall back to surviving replicas;
// blocks with no surviving replica become unreadable.
func (fs *FileSystem) KillNode(n NodeID) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if int(n) >= 0 && int(n) < len(fs.dead) {
		fs.dead[n] = true
	}
}

// ReviveNode marks a datanode alive again.
func (fs *FileSystem) ReviveNode(n NodeID) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if int(n) >= 0 && int(n) < len(fs.dead) {
		fs.dead[n] = false
	}
}

// ReReplicate restores the replication factor of blocks that lost replicas
// to dead nodes, using the installed placement policy for the new targets.
// It returns the number of replicas created.
func (fs *FileSystem) ReReplicate() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	created := 0
	for p, meta := range fs.files {
		for i, b := range meta.blocks {
			var live []NodeID
			for _, n := range b.replicas {
				if !fs.dead[n] {
					live = append(live, n)
				}
			}
			if len(live) == 0 || len(live) >= fs.cfg.Replication {
				b.replicas = live
				continue
			}
			need := fs.cfg.Replication - len(live)
			exclude := make(map[NodeID]bool)
			for _, n := range live {
				exclude[n] = true
			}
			targets := fs.policy.ChooseReplicas(fs, p, i, AnyNode, need, exclude)
			for _, n := range targets {
				fs.usage[n] += int64(len(b.data))
			}
			b.replicas = append(live, targets...)
			created += len(targets)
		}
	}
	return created
}

// TotalSize returns the logical size of a file in bytes.
func (fs *FileSystem) TotalSize(p string) int64 {
	fi, err := fs.Stat(p)
	if err != nil {
		return 0
	}
	return fi.Size
}

// TreeSize returns the total logical size of all files under a directory.
func (fs *FileSystem) TreeSize(dir string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir = clean(dir)
	var total int64
	for p, m := range fs.files {
		if p == dir || strings.HasPrefix(p, dir+"/") {
			total += m.size
		}
	}
	return total
}

// WriteFile creates p and writes data in one call.
func (fs *FileSystem) WriteFile(p string, data []byte, writer NodeID) error {
	w, err := fs.Create(p, writer)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// ReadFile reads the entire contents of p (uncharged convenience path for
// metadata such as schema files; pass a stats-attached reader for measured
// scans).
func (fs *FileSystem) ReadFile(p string) ([]byte, error) {
	r, err := fs.Open(p, AnyNode)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, r.Size())
	if _, err := r.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// aliveOrAny returns a replica to serve a read: the reader's node if it has
// a live replica (local), else the first live replica (remote), else -1.
func (fs *FileSystem) serveFrom(b *block, reader NodeID) (NodeID, bool) {
	for _, n := range b.replicas {
		if n == reader && !fs.dead[n] {
			return n, true
		}
	}
	for _, n := range b.replicas {
		if !fs.dead[n] {
			return n, false
		}
	}
	return -1, false
}
