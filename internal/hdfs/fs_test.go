package hdfs

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"colmr/internal/sim"
)

func testCluster() sim.ClusterConfig {
	c := sim.DefaultCluster()
	c.Nodes = 8
	c.BlockSize = 1 << 16 // 64 KB blocks keep multi-block tests small
	c.TransferUnit = 1 << 12
	return c
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New(testCluster(), 1)
	data := make([]byte, 200_000) // spans several 64 KB blocks
	rnd := rand.New(rand.NewSource(7))
	rnd.Read(data)
	if err := fs.WriteFile("/a/b/file", data, 0); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/a/b/file")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	if fs.TotalSize("/a/b/file") != int64(len(data)) {
		t.Errorf("size = %d, want %d", fs.TotalSize("/a/b/file"), len(data))
	}
}

func TestCreateErrors(t *testing.T) {
	fs := New(testCluster(), 1)
	if err := fs.WriteFile("/f", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/f", 0); err == nil {
		t.Error("creating an existing file should fail")
	}
	fs.MkdirAll("/d")
	if _, err := fs.Create("/d", 0); err == nil {
		t.Error("creating over a directory should fail")
	}
	if _, err := fs.Open("/missing", 0); err == nil {
		t.Error("opening a missing file should fail")
	}
}

func TestWriterClosedRejectsWrites(t *testing.T) {
	fs := New(testCluster(), 1)
	w, err := fs.Create("/f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after close should fail")
	}
}

func TestReplicationFactor(t *testing.T) {
	fs := New(testCluster(), 1)
	if err := fs.WriteFile("/f", make([]byte, 300_000), 2); err != nil {
		t.Fatal(err)
	}
	locs, err := fs.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 5 { // ceil(300000 / 65536)
		t.Fatalf("blocks = %d, want 5", len(locs))
	}
	for i, nodes := range locs {
		if len(nodes) != 3 {
			t.Errorf("block %d has %d replicas, want 3", i, len(nodes))
		}
		seen := map[NodeID]bool{}
		for _, n := range nodes {
			if seen[n] {
				t.Errorf("block %d has duplicate replica on node %d", i, n)
			}
			seen[n] = true
		}
		if nodes[0] != 2 {
			t.Errorf("block %d first replica on node %d, want writer node 2", i, nodes[0])
		}
	}
}

func TestSequentialScanChargesLinearBytesAndOneSeek(t *testing.T) {
	fs := New(testCluster(), 1)
	const size = 100_000
	if err := fs.WriteFile("/f", make([]byte, size), 0); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("/f", 0)
	if err != nil {
		t.Fatal(err)
	}
	var st sim.IOStats
	r.SetStats(&st)
	buf := make([]byte, 1000)
	for {
		if _, err := r.Read(buf); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if st.LogicalBytes != size {
		t.Errorf("logical = %d, want %d", st.LogicalBytes, size)
	}
	if st.LocalBytes != size {
		t.Errorf("charged local = %d, want %d (contiguous scan, local replica)", st.LocalBytes, size)
	}
	if st.RemoteBytes != 0 {
		t.Errorf("remote = %d, want 0", st.RemoteBytes)
	}
	if st.Seeks != 0 {
		t.Errorf("seeks = %d, want 0 for a sequential scan", st.Seeks)
	}
	if st.Opens != 1 {
		t.Errorf("opens = %d, want 1", st.Opens)
	}
}

func TestScatteredReadsChargeTransferUnits(t *testing.T) {
	cfg := testCluster()
	fs := New(cfg, 1)
	const size = 1 << 18 // 4 blocks
	if err := fs.WriteFile("/f", make([]byte, size), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := fs.Open("/f", 0)
	var st sim.IOStats
	r.SetStats(&st)
	// Read 16 bytes at the start of each transfer unit, skipping every
	// other unit: each read costs a full transfer unit plus a seek.
	tu := cfg.TransferUnit
	n := 0
	for off := int64(0); off < size; off += 2 * tu {
		if _, err := r.ReadAt(make([]byte, 16), off); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if st.LogicalBytes != int64(16*n) {
		t.Errorf("logical = %d, want %d", st.LogicalBytes, 16*n)
	}
	wantCharged := int64(n) * tu
	if st.LocalBytes != wantCharged {
		t.Errorf("charged = %d, want %d (one transfer unit per scattered read)", st.LocalBytes, wantCharged)
	}
	if st.Seeks != int64(n-1) {
		t.Errorf("seeks = %d, want %d (first read is an open)", st.Seeks, n-1)
	}
	if st.Opens != 1 {
		t.Errorf("opens = %d, want 1", st.Opens)
	}
}

func TestRereadWithinChargedRunIsFree(t *testing.T) {
	fs := New(testCluster(), 1)
	if err := fs.WriteFile("/f", make([]byte, 10_000), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := fs.Open("/f", 0)
	var st sim.IOStats
	r.SetStats(&st)
	if _, err := r.ReadAt(make([]byte, 5000), 0); err != nil {
		t.Fatal(err)
	}
	charged := st.LocalBytes
	if _, err := r.ReadAt(make([]byte, 1000), 100); err != nil {
		t.Fatal(err)
	}
	if st.LocalBytes != charged {
		t.Errorf("re-read within charged run cost %d extra bytes", st.LocalBytes-charged)
	}
}

func TestRemoteReadAccounting(t *testing.T) {
	fs := New(testCluster(), 1)
	if err := fs.WriteFile("/f", make([]byte, 8192), 3); err != nil {
		t.Fatal(err)
	}
	locs, _ := fs.BlockLocations("/f")
	replicaSet := map[NodeID]bool{}
	for _, n := range locs[0] {
		replicaSet[n] = true
	}
	var farNode NodeID = -1
	for n := 0; n < fs.cfg.Nodes; n++ {
		if !replicaSet[NodeID(n)] {
			farNode = NodeID(n)
			break
		}
	}
	if farNode < 0 {
		t.Skip("every node holds a replica; enlarge the cluster")
	}
	r, _ := fs.Open("/f", farNode)
	var st sim.IOStats
	r.SetStats(&st)
	if _, err := r.ReadAt(make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	if st.RemoteBytes == 0 || st.LocalBytes != 0 {
		t.Errorf("far node read: local=%d remote=%d, want all remote", st.LocalBytes, st.RemoteBytes)
	}
}

func TestReadAtEOF(t *testing.T) {
	fs := New(testCluster(), 1)
	if err := fs.WriteFile("/f", []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := fs.Open("/f", 0)
	buf := make([]byte, 10)
	n, err := r.ReadAt(buf, 0)
	if n != 5 || err != io.EOF {
		t.Errorf("ReadAt = (%d, %v), want (5, EOF)", n, err)
	}
	if _, err := r.ReadAt(buf, 5); err != io.EOF {
		t.Errorf("read at EOF = %v, want EOF", err)
	}
	if _, err := r.ReadAt(buf, -1); err == nil {
		t.Error("negative offset should fail")
	}
}

func TestSeekWhence(t *testing.T) {
	fs := New(testCluster(), 1)
	if err := fs.WriteFile("/f", []byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	r, _ := fs.Open("/f", 0)
	if pos, _ := r.Seek(4, io.SeekStart); pos != 4 {
		t.Errorf("SeekStart pos = %d", pos)
	}
	if pos, _ := r.Seek(2, io.SeekCurrent); pos != 6 {
		t.Errorf("SeekCurrent pos = %d", pos)
	}
	if pos, _ := r.Seek(-1, io.SeekEnd); pos != 9 {
		t.Errorf("SeekEnd pos = %d", pos)
	}
	buf := make([]byte, 1)
	if _, err := r.Read(buf); err != nil || buf[0] != '9' {
		t.Errorf("read after seek = %q, %v", buf, err)
	}
	if _, err := r.Seek(-100, io.SeekStart); err == nil {
		t.Error("negative seek should fail")
	}
	if _, err := r.Seek(0, 42); err == nil {
		t.Error("bad whence should fail")
	}
}

func TestListStatRemove(t *testing.T) {
	fs := New(testCluster(), 1)
	for _, p := range []string{"/d/x", "/d/y", "/d/sub/z"} {
		if err := fs.WriteFile(p, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := fs.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, fi := range infos {
		names = append(names, fi.Name())
	}
	want := []string{"sub", "x", "y"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Errorf("List = %v, want %v", names, want)
	}
	if fi, _ := fs.Stat("/d/sub"); !fi.IsDir {
		t.Error("/d/sub should be a directory")
	}
	if err := fs.Remove("/d/x"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d/x") {
		t.Error("/d/x still exists after Remove")
	}
	if err := fs.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d/sub/z") || fs.Exists("/d") {
		t.Error("RemoveAll left entries behind")
	}
	if _, err := fs.List("/missing"); err == nil {
		t.Error("listing a missing directory should fail")
	}
	if _, err := fs.List("/"); err != nil {
		t.Errorf("listing root: %v", err)
	}
}

func TestTreeSize(t *testing.T) {
	fs := New(testCluster(), 1)
	fs.WriteFile("/t/a", make([]byte, 100), 0)
	fs.WriteFile("/t/s0/b", make([]byte, 200), 0)
	if got := fs.TreeSize("/t"); got != 300 {
		t.Errorf("TreeSize = %d, want 300", got)
	}
}

func TestKillNodeFallsBackToReplica(t *testing.T) {
	fs := New(testCluster(), 1)
	if err := fs.WriteFile("/f", make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	locs, _ := fs.BlockLocations("/f")
	primary := locs[0][0]
	fs.KillNode(primary)
	r, _ := fs.Open("/f", primary)
	var st sim.IOStats
	r.SetStats(&st)
	if _, err := r.ReadAt(make([]byte, 4096), 0); err != nil {
		t.Fatalf("read after node death: %v", err)
	}
	if st.RemoteBytes == 0 {
		t.Error("read from dead local node should be charged remote")
	}
}

func TestKillAllReplicasFailsRead(t *testing.T) {
	fs := New(testCluster(), 1)
	if err := fs.WriteFile("/f", make([]byte, 16), 0); err != nil {
		t.Fatal(err)
	}
	locs, _ := fs.BlockLocations("/f")
	for _, n := range locs[0] {
		fs.KillNode(n)
	}
	r, _ := fs.Open("/f", AnyNode)
	var st sim.IOStats
	r.SetStats(&st)
	if _, err := r.ReadAt(make([]byte, 16), 0); err == nil {
		t.Error("read with all replicas dead should fail")
	}
}

func TestReReplicate(t *testing.T) {
	fs := New(testCluster(), 1)
	if err := fs.WriteFile("/f", make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	locs, _ := fs.BlockLocations("/f")
	fs.KillNode(locs[0][0])
	created := fs.ReReplicate()
	if created == 0 {
		t.Fatal("ReReplicate created no replicas")
	}
	locs, _ = fs.BlockLocations("/f")
	if len(locs[0]) != 3 {
		t.Errorf("replicas after re-replication = %d, want 3", len(locs[0]))
	}
	for _, n := range locs[0] {
		if n == locs[0][0] && fs.dead[n] {
			t.Error("dead node still listed as replica")
		}
	}
}

func TestHostsFor(t *testing.T) {
	fs := New(testCluster(), 1)
	fs.SetPlacementPolicy(NewColumnPlacementPolicy())
	for _, f := range []string{"/d/s0/c1", "/d/s0/c2", "/d/s0/c3"} {
		if err := fs.WriteFile(f, make([]byte, 100_000), AnyNode); err != nil {
			t.Fatal(err)
		}
	}
	hosts := fs.HostsFor([]string{"/d/s0/c1", "/d/s0/c2", "/d/s0/c3"})
	if len(hosts) != 3 {
		t.Fatalf("co-located hosts = %v, want 3 nodes", hosts)
	}
}

func TestReadFileRoundTripProperty(t *testing.T) {
	fs := New(testCluster(), 42)
	i := 0
	f := func(data []byte) bool {
		i++
		p := "/prop/f" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10))
		if fs.Exists(p) {
			fs.Remove(p)
		}
		if err := fs.WriteFile(p, data, 0); err != nil {
			return false
		}
		got, err := fs.ReadFile(p)
		if err != nil {
			return len(data) == 0 // empty files read 0 bytes fine; ReadFile handles size 0
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
