package hdfs

import (
	"path"
	"sort"
	"strings"
	"sync"
)

// BlockPlacementPolicy chooses the datanodes that store a block's replicas.
// It mirrors Hadoop's dfs.block.replicator.classname extension point: the
// paper's ColumnPlacementPolicy is installed through it without modifying
// HDFS itself (Section 4.2).
//
// ChooseReplicas is called with the filesystem lock held. It must return
// count distinct live nodes not present in exclude (fewer if the cluster is
// too small).
type BlockPlacementPolicy interface {
	ChooseReplicas(fs *FileSystem, p string, blockIdx int, writer NodeID, count int, exclude map[NodeID]bool) []NodeID
}

// DefaultPolicy approximates HDFS's default placement: the first replica on
// the writer's node when known, the remainder spread across lightly-loaded
// random nodes. Randomness comes from the filesystem's seeded generator, so
// placement is deterministic per seed.
type DefaultPolicy struct{}

// NewDefaultPolicy returns the default placement policy.
func NewDefaultPolicy() DefaultPolicy { return DefaultPolicy{} }

// ChooseReplicas implements BlockPlacementPolicy.
func (DefaultPolicy) ChooseReplicas(fs *FileSystem, p string, blockIdx int, writer NodeID, count int, exclude map[NodeID]bool) []NodeID {
	var chosen []NodeID
	taken := make(map[NodeID]bool)
	for n, excl := range exclude {
		if excl {
			taken[n] = true
		}
	}
	eligible := func(n NodeID) bool {
		return int(n) >= 0 && int(n) < fs.cfg.Nodes && !fs.dead[n] && !taken[n]
	}
	if eligible(writer) && count > 0 {
		chosen = append(chosen, writer)
		taken[writer] = true
	}
	for len(chosen) < count {
		n, ok := pickLeastLoaded(fs, taken)
		if !ok {
			break
		}
		chosen = append(chosen, n)
		taken[n] = true
	}
	return chosen
}

// pickLeastLoaded samples a handful of random live nodes and returns the one
// with the least stored bytes, approximating HDFS's balancing behaviour.
func pickLeastLoaded(fs *FileSystem, taken map[NodeID]bool) (NodeID, bool) {
	const samples = 4
	best := NodeID(-1)
	var bestUsage int64
	tried := 0
	for attempt := 0; attempt < fs.cfg.Nodes*4 && tried < samples; attempt++ {
		n := NodeID(fs.rng.Intn(fs.cfg.Nodes))
		if fs.dead[n] || taken[n] {
			continue
		}
		tried++
		if best < 0 || fs.usage[n] < bestUsage {
			best = n
			bestUsage = fs.usage[n]
		}
	}
	if best >= 0 {
		return best, true
	}
	// Dense fallback: the random sampler can miss when few nodes remain.
	for n := 0; n < fs.cfg.Nodes; n++ {
		id := NodeID(n)
		if !fs.dead[id] && !taken[id] {
			if best < 0 || fs.usage[id] < bestUsage {
				best = id
				bestUsage = fs.usage[id]
			}
		}
	}
	return best, best >= 0
}

// SplitDirOf reports the split-directory prefix of a path following the
// paper's naming convention: any directory component named "s<digits>"
// (e.g. /data/2011-01-01/s0/url) or, for streaming-ingest partitions,
// "seq-<digits>" (e.g. /data/dt=300/seq-2/url). It returns the path up to
// and including that component.
func SplitDirOf(p string) (string, bool) {
	dir := p
	for dir != "/" && dir != "." && dir != "" {
		parent, base := path.Split(strings.TrimSuffix(dir, "/"))
		if isSplitComponent(base) {
			return path.Join(parent, base), true
		}
		dir = path.Clean(parent)
		if dir == p {
			break
		}
		p = dir
	}
	return "", false
}

func isSplitComponent(name string) bool {
	if len(name) < 2 || name[0] != 's' {
		return false
	}
	digits := name[1:]
	if strings.HasPrefix(digits, "eq-") { // ingest partitions: seq-<digits>
		digits = digits[len("eq-"):]
		if digits == "" {
			return false
		}
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// ColumnPlacementPolicy (CPP) is the paper's co-locating policy: every block
// of every file inside one split-directory is replicated on the same set of
// nodes, chosen by the default policy for the first block seen. Files whose
// paths do not follow the split-directory naming convention fall back to the
// default policy, exactly as the paper specifies.
type ColumnPlacementPolicy struct {
	mu       sync.Mutex
	fallback DefaultPolicy
	// anchors maps split-directory path -> pinned replica set.
	anchors map[string][]NodeID
}

// NewColumnPlacementPolicy returns a fresh CPP with no pinned directories.
func NewColumnPlacementPolicy() *ColumnPlacementPolicy {
	return &ColumnPlacementPolicy{anchors: make(map[string][]NodeID)}
}

// ChooseReplicas implements BlockPlacementPolicy.
func (c *ColumnPlacementPolicy) ChooseReplicas(fs *FileSystem, p string, blockIdx int, writer NodeID, count int, exclude map[NodeID]bool) []NodeID {
	splitDir, ok := SplitDirOf(p)
	if !ok {
		return c.fallback.ChooseReplicas(fs, p, blockIdx, writer, count, exclude)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	anchor, pinned := c.anchors[splitDir]
	if !pinned {
		anchor = c.fallback.ChooseReplicas(fs, p, blockIdx, writer, count, exclude)
		c.anchors[splitDir] = anchor
		return anchor
	}
	// Reuse the pinned set, skipping dead/excluded nodes and topping up via
	// the default policy if the pinned set has shrunk below count.
	var out []NodeID
	taken := make(map[NodeID]bool)
	for n, excl := range exclude {
		if excl {
			taken[n] = true
		}
	}
	for _, n := range anchor {
		if len(out) == count {
			break
		}
		if !fs.dead[n] && !taken[n] {
			out = append(out, n)
			taken[n] = true
		}
	}
	if len(out) < count {
		extra := c.fallback.ChooseReplicas(fs, p, blockIdx, AnyNode, count-len(out), taken)
		out = append(out, extra...)
		c.anchors[splitDir] = out
	}
	return out
}

// Anchors returns a copy of the pinned split-directory -> replica-set map,
// for inspection in tests and tooling.
func (c *ColumnPlacementPolicy) Anchors() map[string][]NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]NodeID, len(c.anchors))
	for k, v := range c.anchors {
		out[k] = append([]NodeID(nil), v...)
	}
	return out
}

// sortNodes sorts a node list in place and returns it (test helper shared
// across files).
func sortNodes(ns []NodeID) []NodeID {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}
