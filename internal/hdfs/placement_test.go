package hdfs

import (
	"testing"

	"colmr/internal/sim"
)

func TestSplitDirOf(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"/data/2011-01-01/s0/url", "/data/2011-01-01/s0", true},
		{"/data/s12/metadata", "/data/s12", true},
		{"/data/s12", "/data/s12", true},
		{"/data/plain/file", "", false},
		{"/s/x", "", false},           // "s" alone has no digits
		{"/data/sXY/file", "", false}, // non-digit suffix
	}
	for _, c := range cases {
		got, ok := SplitDirOf(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("SplitDirOf(%q) = (%q, %v), want (%q, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

// The paper's co-location invariant (Figure 3b): every block of every column
// file in a split-directory lives on the same set of nodes.
func TestColumnPlacementCoLocates(t *testing.T) {
	fs := New(testCluster(), 3)
	cpp := NewColumnPlacementPolicy()
	fs.SetPlacementPolicy(cpp)

	cols := []string{"url", "fetchtime", "metadata", "content"}
	for _, split := range []string{"s0", "s1", "s2"} {
		for _, col := range cols {
			p := "/data/day1/" + split + "/" + col
			// Multi-block files must also stay pinned.
			if err := fs.WriteFile(p, make([]byte, 150_000), AnyNode); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, split := range []string{"s0", "s1", "s2"} {
		var anchor []NodeID
		for _, col := range cols {
			locs, err := fs.BlockLocations("/data/day1/" + split + "/" + col)
			if err != nil {
				t.Fatal(err)
			}
			for bi, nodes := range locs {
				ns := sortNodes(append([]NodeID(nil), nodes...))
				if anchor == nil {
					anchor = ns
					continue
				}
				if len(ns) != len(anchor) {
					t.Fatalf("%s/%s block %d: replica count %d != %d", split, col, bi, len(ns), len(anchor))
				}
				for i := range ns {
					if ns[i] != anchor[i] {
						t.Errorf("%s/%s block %d: replicas %v not co-located with anchor %v", split, col, bi, ns, anchor)
					}
				}
			}
		}
	}

	// Different split-directories should not all be anchored identically:
	// load balancing happens per split-directory via the default policy.
	anchors := cpp.Anchors()
	if len(anchors) != 3 {
		t.Errorf("anchors = %d, want 3", len(anchors))
	}
}

func TestColumnPlacementFallsBackForPlainPaths(t *testing.T) {
	fs := New(testCluster(), 3)
	fs.SetPlacementPolicy(NewColumnPlacementPolicy())
	if err := fs.WriteFile("/plain/file", make([]byte, 100), 5); err != nil {
		t.Fatal(err)
	}
	locs, _ := fs.BlockLocations("/plain/file")
	if locs[0][0] != 5 {
		t.Errorf("plain file first replica = %d, want writer node 5", locs[0][0])
	}
}

func TestDefaultPolicySpreadsLoad(t *testing.T) {
	cfg := testCluster()
	fs := New(cfg, 9)
	for i := 0; i < 64; i++ {
		p := "/spread/f" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if err := fs.WriteFile(p, make([]byte, 65536), AnyNode); err != nil {
			t.Fatal(err)
		}
	}
	used := 0
	for n := 0; n < cfg.Nodes; n++ {
		if fs.usage[n] > 0 {
			used++
		}
	}
	if used < cfg.Nodes/2 {
		t.Errorf("only %d of %d nodes hold data; default policy is not spreading", used, cfg.Nodes)
	}
}

func TestDefaultPolicyAvoidsDeadAndExcluded(t *testing.T) {
	fs := New(testCluster(), 11)
	fs.KillNode(0)
	fs.KillNode(1)
	excl := map[NodeID]bool{2: true, 3: true}
	got := NewDefaultPolicy().ChooseReplicas(fs, "/f", 0, 0, 3, excl)
	if len(got) != 3 {
		t.Fatalf("chose %d replicas, want 3", len(got))
	}
	for _, n := range got {
		if n <= 3 {
			t.Errorf("chose node %d, which is dead or excluded", n)
		}
	}
}

func TestDefaultPolicyClusterTooSmall(t *testing.T) {
	cfg := testCluster()
	cfg.Nodes = 2
	fs := New(cfg, 1)
	got := NewDefaultPolicy().ChooseReplicas(fs, "/f", 0, AnyNode, 3, nil)
	if len(got) != 2 {
		t.Errorf("chose %d replicas on a 2-node cluster, want 2", len(got))
	}
}

func TestCPPRepinsAfterNodeLoss(t *testing.T) {
	fs := New(testCluster(), 5)
	cpp := NewColumnPlacementPolicy()
	fs.SetPlacementPolicy(cpp)
	if err := fs.WriteFile("/d/s0/c1", make([]byte, 100), AnyNode); err != nil {
		t.Fatal(err)
	}
	anchor := cpp.Anchors()["/d/s0"]
	fs.KillNode(anchor[0])
	// A new column file added to the same split-directory must still get
	// a full replica set, topping up around the dead node.
	if err := fs.WriteFile("/d/s0/c2", make([]byte, 100), AnyNode); err != nil {
		t.Fatal(err)
	}
	locs, _ := fs.BlockLocations("/d/s0/c2")
	if len(locs[0]) != 3 {
		t.Errorf("new column file has %d replicas, want 3", len(locs[0]))
	}
	for _, n := range locs[0] {
		if n == anchor[0] {
			t.Error("new column file placed on dead node")
		}
	}
}

func TestColocationImprovesLocalityVersusDefault(t *testing.T) {
	// Statistical version of Section 6.4: with CPP a task node hosting one
	// column hosts them all; with the default policy it usually does not.
	run := func(policy BlockPlacementPolicy) (coLocated, total int) {
		cfg := sim.DefaultCluster()
		cfg.Nodes = 20
		cfg.BlockSize = 1 << 16
		fs := New(cfg, 77)
		fs.SetPlacementPolicy(policy)
		for s := 0; s < 10; s++ {
			dir := "/d/s" + string(rune('0'+s))
			for _, col := range []string{"a", "b", "c", "d", "e"} {
				if err := fs.WriteFile(dir+"/"+col, make([]byte, 70_000), AnyNode); err != nil {
					t.Fatal(err)
				}
			}
			total++
			if len(fs.HostsFor([]string{dir + "/a", dir + "/b", dir + "/c", dir + "/d", dir + "/e"})) > 0 {
				coLocated++
			}
		}
		return coLocated, total
	}
	cppHits, n := run(NewColumnPlacementPolicy())
	defHits, _ := run(NewDefaultPolicy())
	if cppHits != n {
		t.Errorf("CPP co-located %d/%d splits, want all", cppHits, n)
	}
	if defHits == n {
		t.Errorf("default policy co-located all %d splits; test is not discriminating", n)
	}
}
