package hdfs

import (
	"fmt"
	"io"

	"colmr/internal/sim"
)

// FileReader reads a file on behalf of a task running on a specific node.
//
// Traffic accounting models a real disk subsystem: bytes are charged in
// whole transfer units (io.file.buffer.size), a read that is not contiguous
// with the previously charged region costs a disk seek, and a transfer unit
// already fetched by the current contiguous run is never charged twice.
// Consequently a sequential scan of a column file is charged almost exactly
// its length with one seek, while scattered small reads (RCFile projecting
// one column out of interleaved row groups) are charged the enclosing
// transfer units plus a seek per jump — precisely the prefetch waste the
// paper measures with iostat in Section 6.2.
type FileReader struct {
	fs    *FileSystem
	meta  *fileMeta
	node  NodeID
	pos   int64
	stats *sim.IOStats
	// chargedStart/chargedEnd delimit the contiguous byte range already
	// charged to the accounting sink. chargedEnd == -1 means nothing has
	// been charged yet.
	chargedStart int64
	chargedEnd   int64
	// cache, when attached, intercepts byte charging at transfer-unit
	// granularity: resident units charge nothing and are credited to
	// cacheStats.CacheHits / BytesFromCache; missed units charge normally
	// and are admitted. Seek accounting is unaffected either way.
	cache      *ScanCache
	cacheStats *sim.TaskStats
}

// SetStats attaches an I/O accounting sink. A nil sink disables accounting.
func (r *FileReader) SetStats(s *sim.IOStats) { r.stats = s }

// SetCache attaches a session scan cache plus the task counters its hits are
// credited to. A nil cache restores plain charging.
func (r *FileReader) SetCache(c *ScanCache, stats *sim.TaskStats) {
	r.cache = c
	r.cacheStats = stats
}

// Generation returns the file's creation generation — the namenode counter
// value assigned when the path was created, which distinguishes a rebuilt
// file from its predecessor at the same path (ScanCache keys on it).
func (r *FileReader) Generation() int64 {
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	return r.meta.gen
}

// Size returns the file's logical size.
func (r *FileReader) Size() int64 {
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	return r.meta.size
}

// Read reads sequentially from the current position.
func (r *FileReader) Read(p []byte) (int, error) {
	n, err := r.ReadAt(p, r.pos)
	r.pos += int64(n)
	return n, err
}

// Seek repositions the sequential read cursor (io.SeekStart, io.SeekCurrent
// and io.SeekEnd are supported). Seeking itself is free; the cost is charged
// when the next non-contiguous read occurs.
func (r *FileReader) Seek(offset int64, whence int) (int64, error) {
	size := r.Size()
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = size + offset
	default:
		return 0, fmt.Errorf("hdfs: seek %s: invalid whence %d", r.meta.path, whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("hdfs: seek %s: negative position", r.meta.path)
	}
	r.pos = abs
	return abs, nil
}

// ReadAt reads len(p) bytes from absolute offset off.
func (r *FileReader) ReadAt(p []byte, off int64) (int, error) {
	r.fs.mu.Lock()
	defer r.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("hdfs: read %s: negative offset", r.meta.path)
	}
	if off >= r.meta.size {
		return 0, io.EOF
	}
	n := len(p)
	if rem := r.meta.size - off; int64(n) > rem {
		n = int(rem)
	}
	if err := r.copyRangeLocked(p[:n], off); err != nil {
		return 0, err
	}
	if err := r.chargeLocked(off, off+int64(n)); err != nil {
		return 0, err
	}
	if r.stats != nil {
		r.stats.LogicalBytes += int64(n)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (r *FileReader) copyRangeLocked(p []byte, off int64) error {
	bs := r.fs.cfg.BlockSize
	copied := 0
	for copied < len(p) {
		idx := (off + int64(copied)) / bs
		if idx >= int64(len(r.meta.blocks)) {
			return fmt.Errorf("hdfs: read %s: offset beyond last block", r.meta.path)
		}
		blk := r.meta.blocks[idx]
		if _, ok := r.liveReplicaLocked(blk); ok {
		} else if len(blk.replicas) > 0 {
			return fmt.Errorf("hdfs: read %s: no live replica for block %d", r.meta.path, idx)
		}
		inBlock := int((off + int64(copied)) % bs)
		n := copy(p[copied:], blk.data[inBlock:])
		if n == 0 {
			return fmt.Errorf("hdfs: read %s: short block %d", r.meta.path, idx)
		}
		copied += n
	}
	return nil
}

func (r *FileReader) liveReplicaLocked(b *block) (NodeID, bool) {
	node, local := r.fs.serveFrom(b, r.node)
	if node < 0 {
		return -1, false
	}
	_ = local
	return node, true
}

// chargeLocked accounts the logical range [lo, hi) at transfer-unit
// granularity against the local/remote counters.
func (r *FileReader) chargeLocked(lo, hi int64) error {
	if r.stats == nil {
		return nil
	}
	tu := r.fs.cfg.TransferUnit
	if tu <= 0 {
		tu = 1
	}
	alo := lo - lo%tu
	ahi := ((hi + tu - 1) / tu) * tu
	if ahi > r.meta.size {
		ahi = r.meta.size
	}
	switch {
	case r.chargedEnd < 0:
		// First read of the stream: a per-file constant, tracked apart
		// from seeks so that scale extrapolation stays honest (see
		// sim.IOStats.Opens).
		r.stats.Opens++
		r.chargedStart = alo
		r.chargedEnd = alo
	case alo >= r.chargedStart && ahi <= r.chargedEnd:
		return nil // fully inside the already-charged run
	case alo > r.chargedEnd || alo < r.chargedStart:
		// Discontiguous jump: new seek, new run.
		r.stats.Seeks++
		r.chargedStart = alo
		r.chargedEnd = alo
	default:
		// Contiguous extension: charge only the new tail.
		alo = r.chargedEnd
	}
	if ahi <= alo {
		return nil
	}
	if err := r.chargeBytesLocked(alo, ahi); err != nil {
		return err
	}
	r.chargedEnd = ahi
	return nil
}

// chargeBytesLocked attributes [lo, hi) to the traffic counters. Without a
// cache attached this is exactly the plain span charge; with one, the range
// is walked per transfer unit (chargeLocked always hands over unit-aligned
// ranges, so unit boundaries are stable across read patterns): resident
// units are credited to the cache counters and charge no traffic, missed
// units charge normally and become resident.
func (r *FileReader) chargeBytesLocked(lo, hi int64) error {
	if r.cache == nil {
		return r.chargeSpanLocked(lo, hi)
	}
	tu := r.fs.cfg.TransferUnit
	if tu <= 0 {
		tu = 1
	}
	for lo < hi {
		end := lo - lo%tu + tu
		if end > hi {
			end = hi
		}
		key := regionKey{path: r.meta.path, gen: r.meta.gen, off: lo - lo%tu}
		if r.cache.lookup(key) {
			if r.cacheStats != nil {
				r.cacheStats.CacheHits++
				r.cacheStats.BytesFromCache += end - lo
			}
		} else {
			if err := r.chargeSpanLocked(lo, end); err != nil {
				return err
			}
			r.cache.admit(key, end-lo)
		}
		lo = end
	}
	return nil
}

// chargeSpanLocked attributes [lo, hi) to local or remote traffic,
// block by block.
func (r *FileReader) chargeSpanLocked(lo, hi int64) error {
	bs := r.fs.cfg.BlockSize
	for lo < hi {
		idx := lo / bs
		if idx >= int64(len(r.meta.blocks)) {
			return nil
		}
		blk := r.meta.blocks[idx]
		end := (idx + 1) * bs
		if end > hi {
			end = hi
		}
		n := end - lo
		served, local := r.fs.serveFrom(blk, r.node)
		if served < 0 && len(blk.replicas) > 0 {
			return fmt.Errorf("hdfs: read %s: no live replica for block %d", r.meta.path, idx)
		}
		if local {
			r.stats.LocalBytes += n
		} else {
			r.stats.RemoteBytes += n
		}
		lo = end
	}
	return nil
}

// UnchargedReadAt reads without touching the accounting sink or the
// charged-run state. Format readers use it for tiny self-description
// metadata (file footers) that a real deployment would cache at the
// namenode or in the task's footprint, and whose cost must not be
// extrapolated linearly with dataset size.
func (r *FileReader) UnchargedReadAt(p []byte, off int64) (int, error) {
	saved := r.stats
	savedStart, savedEnd := r.chargedStart, r.chargedEnd
	r.stats = nil
	n, err := r.ReadAt(p, off)
	r.stats = saved
	r.chargedStart, r.chargedEnd = savedStart, savedEnd
	return n, err
}

// ChargeSeek records one additional disk seek. Format readers use it for
// discontiguities their own buffering hides from the per-stream accounting.
func (r *FileReader) ChargeSeek() {
	if r.stats != nil {
		r.stats.Seeks++
	}
}

// ChargeInterleaved marks n bytes as read while sibling column streams were
// active: the cost model prices them as fractional arm movement per
// readahead window (DESIGN.md, "Key design decisions"). CIF readers call
// this on buffer refills during multi-column scans.
func (r *FileReader) ChargeInterleaved(n int64) {
	if r.stats != nil {
		r.stats.InterleavedBytes += n
	}
}

// Close releases the reader. It never fails; it exists so readers satisfy
// io.Closer in format code.
func (r *FileReader) Close() error { return nil }
