package hdfs

import (
	"fmt"

	"colmr/internal/sim"
)

// FileWriter is an append-only writer, matching HDFS semantics: bytes can
// only be appended, never rewritten. This constraint is why skip-list column
// files must be double-buffered at load time (paper, Appendix B.3).
type FileWriter struct {
	fs     *FileSystem
	meta   *fileMeta
	node   NodeID
	stats  *sim.IOStats
	closed bool
}

// SetStats attaches an I/O accounting sink; written bytes are recorded in
// stats.BytesWritten.
func (w *FileWriter) SetStats(s *sim.IOStats) { w.stats = s }

// Write appends p to the file, splitting it across blocks and placing each
// new block with the filesystem's placement policy.
func (w *FileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("hdfs: write %s: writer closed", w.meta.path)
	}
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	written := 0
	for len(p) > 0 {
		blk := w.currentBlockLocked()
		room := int(w.fs.cfg.BlockSize) - len(blk.data)
		if room == 0 {
			blk = w.newBlockLocked()
			room = int(w.fs.cfg.BlockSize)
		}
		n := len(p)
		if n > room {
			n = room
		}
		blk.data = append(blk.data, p[:n]...)
		for _, node := range blk.replicas {
			w.fs.usage[node] += int64(n)
		}
		w.meta.size += int64(n)
		p = p[n:]
		written += n
	}
	if w.stats != nil {
		w.stats.BytesWritten += int64(written)
	}
	return written, nil
}

func (w *FileWriter) currentBlockLocked() *block {
	if len(w.meta.blocks) == 0 {
		return w.newBlockLocked()
	}
	return w.meta.blocks[len(w.meta.blocks)-1]
}

func (w *FileWriter) newBlockLocked() *block {
	idx := len(w.meta.blocks)
	replicas := w.fs.policy.ChooseReplicas(w.fs, w.meta.path, idx, w.node, w.fs.cfg.Replication, nil)
	blk := &block{replicas: replicas}
	w.meta.blocks = append(w.meta.blocks, blk)
	return blk
}

// Size returns the number of bytes written so far.
func (w *FileWriter) Size() int64 {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	return w.meta.size
}

// Close finalizes the file. Further writes fail.
func (w *FileWriter) Close() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.meta.closed = true
	w.closed = true
	return nil
}
