package ingest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Compact merges every fresh (seq-N) partition into large compacted
// split-directories and commits the result as a new manifest generation.
//
// The merge is a MapReduce job over the engine itself: its input is the
// ordinary merge-on-read scan of the fresh partitions (a hand-built CIF
// split carrying their delete files), and its mapper appends every surfaced
// record to a core.Writer. The scan masks superseded rows before they reach
// the mapper, so the job needs no shuffle and no key resolution — records
// never transit the shuffle (whose key encoding could not carry them
// anyway); the job is map-only with a NullOutput, and the writer is the
// side effect.
//
// Replaced directories are retired in the manifest, not removed: a scan
// planned against an older generation finishes against intact files. GC
// removes them once the caller knows no such scan is in flight.
func (ing *Ingester) Compact() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.compactLocked()
}

func (ing *Ingester) compactLocked() error {
	ing.flushes = 0
	var fresh []*part
	var keep []*part
	for _, p := range ing.parts {
		if isFresh(p.dir) {
			fresh = append(fresh, p)
		} else {
			keep = append(keep, p)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	// All fresh partitions follow all compacted ones in arrival order
	// (compaction consumes every fresh partition), so appending the new
	// output after the kept partitions preserves scan order.
	outDir := ing.opts.Dataset + "/c" + strconv.Itoa(ing.compact)
	ing.compact++

	var cstats sim.TaskStats
	load := ing.opts.Load
	w, err := core.NewWriter(ing.fs, outDir, ing.opts.Schema, load, &cstats)
	if err != nil {
		return err
	}
	dirs := make([]string, len(fresh))
	dels := make([]string, len(fresh))
	for i, p := range fresh {
		dirs[i] = p.dir
		if p.delFile != "" {
			dels[i] = p.dir + "/" + p.delFile
		}
	}
	newLoc := make(map[string]loc)
	counts := make(map[string]int64)
	mapper := func(_, v any, _ mapred.Emit) error {
		rec, ok := v.(*serde.GenericRecord)
		if !ok {
			return fmt.Errorf("ingest: compaction scan produced %T, want a record", v)
		}
		dir, ord := w.Tell()
		if err := w.Append(rec); err != nil {
			return err
		}
		newLoc[rec.GetAt(ing.keyI).(string)] = loc{dir: dir, ord: ord}
		counts[dir]++
		return nil
	}
	job := &mapred.Job{
		Conf: mapred.JobConf{InputPaths: []string{ing.opts.Dataset}},
		Input: &sealedInput{
			inner: &core.InputFormat{},
			split: &core.Split{Dirs: dirs, Dels: dels, Judged: true},
		},
		Output: mapred.NullOutput{},
		Mapper: mapred.MapperFunc(mapper),
	}
	var res *mapred.Result
	if ing.opts.Session != nil {
		res, err = ing.opts.Session.Run(job)
	} else {
		res, err = mapred.Run(ing.fs, job)
	}
	if err != nil {
		return err
	}
	ing.opts.Stats.Add(res.Total)
	if err := w.Close(); err != nil {
		return err
	}
	ing.opts.Stats.Add(cstats)
	ing.opts.Stats.CompactionBytes += cstats.IO.BytesWritten

	// The new layout: kept partitions, then the compacted output's
	// split-directories in order. The old fresh directories (and the delete
	// files inside them — the masking is now physical) are retired.
	outDirs := make([]string, 0, len(counts))
	for dir := range counts {
		outDirs = append(outDirs, dir)
	}
	sort.Slice(outDirs, func(i, j int) bool {
		return splitNum(outDirs[i]) < splitNum(outDirs[j])
	})
	ing.parts = keep
	for _, dir := range outDirs {
		ing.parts = append(ing.parts, &part{dir: dir, records: counts[dir]})
	}
	prefix := ing.opts.Dataset + "/"
	newRetired := make([]string, len(fresh))
	for i, p := range fresh {
		newRetired[i] = p.dir
		ing.retired = append(ing.retired, p.dir[len(prefix):])
		delete(ing.deletes, p.dir)
		delete(ing.dirty, p.dir)
	}
	for k, l := range newLoc {
		ing.keyLoc[k] = l
	}
	if err := ing.commitLocked(newRetired); err != nil {
		return err
	}
	if ing.opts.Session != nil {
		// Budget release only: generations already make stale hits
		// impossible, but the retired directories' cached regions and
		// vectors will never be touched again.
		for _, dir := range newRetired {
			ing.opts.Session.Invalidate(dir)
		}
	}
	return nil
}

// GC removes the retired directories and superseded manifest generations
// from disk, then commits a manifest with the retired list cleared. Call it
// only at a quiesce point: a scan still planning against an older
// generation would find its files gone. (Scans already running keep their
// open readers — removal does not affect them.)
func (ing *Ingester) GC() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if len(ing.retired) == 0 {
		return nil
	}
	for _, rel := range ing.retired {
		if err := ing.fs.RemoveAll(ing.opts.Dataset + "/" + rel); err != nil {
			return err
		}
	}
	ing.retired = nil
	return ing.commitLocked(nil)
}

// isFresh mirrors the core reader's fresh-partition test: the directory
// base is a seq-N name.
func isFresh(dir string) bool {
	base := dir
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		base = dir[i+1:]
	}
	return strings.HasPrefix(base, "seq-")
}

// splitNum extracts the numeric suffix of a split-directory name for
// ordering compaction output (s0, s1, ... s10).
func splitNum(dir string) int {
	base := dir
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		base = dir[i+1:]
	}
	n, _ := strconv.Atoi(strings.TrimPrefix(base, "s"))
	return n
}

// sealedInput is an InputFormat whose split set is fixed at construction:
// the compaction scan must read exactly the fresh partitions of the
// generation being compacted, not whatever the dataset lists when the job
// happens to plan.
type sealedInput struct {
	inner *core.InputFormat
	split *core.Split
}

func (s *sealedInput) Splits(fs *hdfs.FileSystem, conf *mapred.JobConf) ([]mapred.Split, error) {
	return []mapred.Split{s.split}, nil
}

func (s *sealedInput) Open(fs *hdfs.FileSystem, conf *mapred.JobConf, split mapred.Split, node hdfs.NodeID, stats *sim.TaskStats) (mapred.RecordReader, error) {
	return s.inner.Open(fs, conf, split, node, stats)
}
