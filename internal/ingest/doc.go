// Package ingest is the streaming write path over the CIF storage layer: a
// continuously-fed crawl dataset that stays scannable — with the full
// pruning machinery and correct upsert semantics — while it is being
// written.
//
// The paper's loader (core.Writer) assumes a finished record set: the
// dataset is immutable once loaded, and every scan capability (zone
// statistics, Bloom filters, split elision) exists because the files are
// complete before the first query. A crawler does not work that way: pages
// arrive continuously, and the same URL arrives again on every recrawl.
// This package closes that gap with an LSM-shaped arrangement built
// entirely from the repository's existing pieces:
//
//   - Appends buffer in a bounded memtable keyed by an upsert column (the
//     URL). A recrawl arriving while its predecessor is still buffered
//     tombstones the old version in place.
//   - A full memtable flushes into small time-partitioned partitions
//     (dt=<bucket>/seq-<N> split-directories) written through the ordinary
//     colfile writers, so even the freshest partition carries the complete
//     CFS3 statistics zone — Bloom filters and zone maps from birth.
//   - A recrawl whose predecessor was already flushed cannot rewrite an
//     immutable column file; the old row is marked in the partition's
//     position delete vector (an immutable, versioned _deletes.<gen> file)
//     and every scan masks it out — merge-on-read.
//   - Each flush commits a new generation of the dataset manifest
//     (core.Manifest): an immutable _manifest.<N> file listing the live
//     partitions in arrival order with their current delete files. Scans
//     plan against the highest complete generation, so a reader racing a
//     commit sees the previous layout, never a torn one.
//   - Background compaction merges the accumulated fresh partitions into
//     large statistics-rich split-directories (c<N>/s<k>) — and it is
//     itself a MapReduce job over the engine: a map-only job whose input is
//     the merge-on-read scan of the fresh partitions and whose mapper
//     appends every surfaced record to a core.Writer. Because the scan
//     already masks superseded rows, the mapper needs no key resolution;
//     compaction is an identity pass that makes the masking physical.
//
// Scans never see buffered records: the unit of visibility is the manifest
// commit. Everything a scan can observe — partitions, delete files,
// manifests — is immutable once written, which is what makes concurrent
// serving safe without any reader-side locking.
package ingest
