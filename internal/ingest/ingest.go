package ingest

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// Options configures an Ingester.
type Options struct {
	// Dataset is the dataset directory the ingester owns.
	Dataset string
	// Schema is the record schema; every appended record must match it.
	Schema *serde.Schema
	// Key names the string-typed upsert column (the crawl URL): a record
	// whose key was seen before supersedes the earlier version.
	Key string
	// TimeColumn names the int64 millisecond-timestamp column that assigns
	// records to time partitions. Arrivals are expected to be roughly
	// time-ordered; a flush cuts a new partition whenever the bucket
	// changes, so heavily out-of-order streams produce more, smaller
	// partitions (never wrong results).
	TimeColumn string
	// BucketMillis is the time-partition width (default: one hour).
	BucketMillis int64
	// MemtableRecords caps buffered arrivals before an automatic flush
	// (default 512).
	MemtableRecords int
	// CompactEvery triggers compaction after that many flushes; 0 means
	// compaction runs only when Compact is called.
	CompactEvery int
	// Load configures the column layouts of both flushed partitions and
	// compacted output (core.LoadOptions split bounds apply to compaction
	// output; flush partitions are bounded by the memtable instead).
	Load core.LoadOptions
	// Session, when set, runs compaction jobs and receives cache
	// invalidation for retired directories. Nil runs compaction through
	// the plain engine.
	Session *mapred.Session
	// Stats receives the ingester's accounting; nil allocates one
	// internally (see Ingester.Stats).
	Stats *sim.TaskStats
}

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if opts.Dataset == "" {
		return opts, fmt.Errorf("ingest: no dataset directory")
	}
	if err := opts.Load.Validate(opts.Schema); err != nil {
		return opts, err
	}
	ki := opts.Schema.FieldIndex(opts.Key)
	if ki < 0 {
		return opts, fmt.Errorf("ingest: key column %q not in schema", opts.Key)
	}
	if opts.Schema.FieldIndex(opts.TimeColumn) < 0 {
		return opts, fmt.Errorf("ingest: time column %q not in schema", opts.TimeColumn)
	}
	if opts.BucketMillis <= 0 {
		opts.BucketMillis = 3600 * 1000
	}
	if opts.MemtableRecords <= 0 {
		opts.MemtableRecords = 512
	}
	if opts.Stats == nil {
		opts.Stats = &sim.TaskStats{}
	}
	return opts, nil
}

// loc addresses one written record: its split-directory and ordinal.
type loc struct {
	dir string
	ord int64
}

// entry is one buffered arrival; rec is nil when a later arrival of the
// same key tombstoned it in place.
type entry struct {
	key    string
	bucket int64
	rec    *serde.GenericRecord
}

// part is one live partition of the dataset.
type part struct {
	dir     string // absolute
	records int64
	delFile string // current delete-file name ("" when none)
}

// Ingester is the streaming writer for one dataset. Its methods are safe
// for one writer goroutine (guarded by a mutex against Compact/GC from
// another); scans need no coordination with it at all — they read only
// committed, immutable state.
type Ingester struct {
	mu   sync.Mutex
	fs   *hdfs.FileSystem
	opts Options
	keyI int
	tmI  int

	memtable []entry
	buffered map[string]int // key -> index into memtable
	arrivals int            // arrivals since last flush

	parts   []*part
	seq     int   // next fresh-partition number
	compact int   // next compaction-output number
	gen     int64 // committed manifest generation (0 = none yet)
	flushes int   // flushes since last compaction

	keyLoc  map[string]loc            // live flushed record per key
	deletes map[string]map[int64]bool // dir -> superseded ordinals (cumulative)
	dirty   map[string]bool           // dirs whose delete file must be rewritten
	retired []string                  // dirs replaced by compaction, pending GC (relative)

	onCommit []func(gen int64, retired []string)
}

// New opens a streaming ingester over an empty dataset directory. The first
// manifest generation is committed at the first flush; until then the
// dataset is not scannable.
func New(fs *hdfs.FileSystem, o Options) (*Ingester, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	fs.MkdirAll(opts.Dataset)
	return &Ingester{
		fs:       fs,
		opts:     opts,
		keyI:     opts.Schema.FieldIndex(opts.Key),
		tmI:      opts.Schema.FieldIndex(opts.TimeColumn),
		buffered: make(map[string]int),
		keyLoc:   make(map[string]loc),
		deletes:  make(map[string]map[int64]bool),
		dirty:    make(map[string]bool),
	}, nil
}

// Stats returns the ingester's accounting (flush files, compaction bytes,
// upserts resolved, plus the IO/CPU of everything it wrote).
func (ing *Ingester) Stats() *sim.TaskStats { return ing.opts.Stats }

// Generation returns the committed manifest generation (0 before the first
// flush).
func (ing *Ingester) Generation() int64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.gen
}

// OnCommit registers a callback invoked after every manifest commit (flush
// and compaction) with the committed generation and the directories the
// commit newly retired (absolute paths; empty for flush commits). Callbacks
// run on the committing goroutine and must not call back into the ingester.
func (ing *Ingester) OnCommit(fn func(gen int64, retired []string)) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	ing.onCommit = append(ing.onCommit, fn)
}

// Append buffers one arrival, superseding any buffered record with the same
// key in place, and flushes when the memtable fills.
func (ing *Ingester) Append(rec *serde.GenericRecord) error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if !rec.Schema().Equal(ing.opts.Schema) {
		return fmt.Errorf("ingest: record schema does not match dataset schema")
	}
	key, ok := rec.GetAt(ing.keyI).(string)
	if !ok {
		return fmt.Errorf("ingest: key column %q is not a string", ing.opts.Key)
	}
	tm, ok := rec.GetAt(ing.tmI).(int64)
	if !ok {
		return fmt.Errorf("ingest: time column %q is not an int64", ing.opts.TimeColumn)
	}
	if i, seen := ing.buffered[key]; seen {
		// Recrawl of a still-buffered page: tombstone the old version in
		// place; only the latest survives to flush.
		ing.memtable[i].rec = nil
		ing.opts.Stats.UpsertsResolved++
	}
	ing.memtable = append(ing.memtable, entry{key: key, bucket: tm / ing.opts.BucketMillis, rec: rec})
	ing.buffered[key] = len(ing.memtable) - 1
	ing.arrivals++
	if ing.arrivals >= ing.opts.MemtableRecords {
		return ing.flushLocked()
	}
	return nil
}

// Flush writes the buffered records out as fresh partitions and commits a
// new manifest generation. A no-op when nothing is buffered.
func (ing *Ingester) Flush() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.flushLocked()
}

func (ing *Ingester) flushLocked() error {
	live := 0
	for i := range ing.memtable {
		if ing.memtable[i].rec != nil {
			live++
		}
	}
	if live == 0 {
		ing.memtable = ing.memtable[:0]
		ing.buffered = make(map[string]int)
		ing.arrivals = 0
		return nil
	}
	// Write the survivors in arrival order, cutting a new partition at
	// every bucket change so scan order (manifest order, then ordinal)
	// remains arrival order.
	var pw *partWriter
	curBucket := int64(0)
	closePart := func() error {
		if pw == nil {
			return nil
		}
		if err := pw.close(); err != nil {
			return err
		}
		ing.parts = append(ing.parts, &part{dir: pw.dir, records: pw.count})
		pw = nil
		return nil
	}
	for i := range ing.memtable {
		e := &ing.memtable[i]
		if e.rec == nil {
			continue
		}
		if pw == nil || e.bucket != curBucket {
			if err := closePart(); err != nil {
				return err
			}
			dir := fmt.Sprintf("%s/dt=%d/seq-%d", ing.opts.Dataset, e.bucket*ing.opts.BucketMillis/1000, ing.seq)
			ing.seq++
			curBucket = e.bucket
			var err error
			if pw, err = newPartWriter(ing.fs, dir, ing.opts.Schema, ing.opts.Load, ing.opts.Stats); err != nil {
				return err
			}
		}
		ord := pw.count
		if err := pw.append(e.rec); err != nil {
			return err
		}
		if old, ok := ing.keyLoc[e.key]; ok {
			// Recrawl of a flushed page: the old row is immutable, so it is
			// superseded by position — masked out of every scan from the
			// next commit on, removed physically at compaction.
			ing.markDeleted(old)
			ing.opts.Stats.UpsertsResolved++
		}
		ing.keyLoc[e.key] = loc{dir: pw.dir, ord: ord}
	}
	if err := closePart(); err != nil {
		return err
	}
	ing.memtable = ing.memtable[:0]
	ing.buffered = make(map[string]int)
	ing.arrivals = 0
	if err := ing.commitLocked(nil); err != nil {
		return err
	}
	ing.flushes++
	if ing.opts.CompactEvery > 0 && ing.flushes >= ing.opts.CompactEvery {
		return ing.compactLocked()
	}
	return nil
}

func (ing *Ingester) markDeleted(l loc) {
	set := ing.deletes[l.dir]
	if set == nil {
		set = make(map[int64]bool)
		ing.deletes[l.dir] = set
	}
	set[l.ord] = true
	ing.dirty[l.dir] = true
}

// commitLocked publishes the current layout: rewrite the delete file of
// every partition whose superseded set grew, then write the next manifest
// generation in one atomic step.
func (ing *Ingester) commitLocked(newRetired []string) error {
	gen := ing.gen + 1
	for _, p := range ing.parts {
		if !ing.dirty[p.dir] {
			continue
		}
		set := ing.deletes[p.dir]
		ords := make([]int64, 0, len(set))
		for o := range set {
			ords = append(ords, o)
		}
		sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
		name := "_deletes." + strconv.FormatInt(gen, 10)
		if err := core.WriteDeletes(ing.fs, p.dir+"/"+name, ords); err != nil {
			return err
		}
		p.delFile = name
		ing.opts.Stats.FlushedFiles++
	}
	ing.dirty = make(map[string]bool)
	m := &core.Manifest{Generation: gen, Retired: ing.retired}
	prefix := ing.opts.Dataset + "/"
	for _, p := range ing.parts {
		m.Partitions = append(m.Partitions, core.ManifestPartition{
			Dir:     p.dir[len(prefix):],
			Deletes: p.delFile,
			Records: p.records,
		})
	}
	if err := core.WriteManifest(ing.fs, ing.opts.Dataset, m); err != nil {
		return err
	}
	ing.gen = gen
	for _, fn := range ing.onCommit {
		fn(gen, newRetired)
	}
	return nil
}

// partWriter writes one fresh partition: a single split-directory with the
// same files, layouts, and statistics zones a bulk load would produce.
type partWriter struct {
	fs    *hdfs.FileSystem
	dir   string
	count int64
	files []*hdfs.FileWriter
	cols  []colfile.Writer
}

func newPartWriter(fs *hdfs.FileSystem, dir string, schema *serde.Schema, load core.LoadOptions, stats *sim.TaskStats) (*partWriter, error) {
	pw := &partWriter{fs: fs, dir: dir}
	sw, err := fs.Create(dir+"/"+core.SchemaFile, load.WriterNode)
	if err != nil {
		return nil, err
	}
	sw.SetStats(&stats.IO)
	if _, err := sw.Write([]byte(schema.String())); err != nil {
		return nil, err
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	stats.FlushedFiles++
	for _, f := range schema.Fields {
		fw, err := fs.Create(dir+"/"+f.Name, load.WriterNode)
		if err != nil {
			return nil, err
		}
		fw.SetStats(&stats.IO)
		layout := load.Default
		if o, ok := load.PerColumn[f.Name]; ok {
			layout = o
		}
		cw, err := colfile.NewWriter(fw, f.Type, layout, &stats.CPU)
		if err != nil {
			return nil, err
		}
		pw.files = append(pw.files, fw)
		pw.cols = append(pw.cols, cw)
		stats.FlushedFiles++
	}
	return pw, nil
}

func (pw *partWriter) append(rec *serde.GenericRecord) error {
	for i := range pw.cols {
		v := rec.GetAt(i)
		if v == nil {
			return fmt.Errorf("ingest: field %d is unset", i)
		}
		if err := pw.cols[i].Append(v); err != nil {
			return err
		}
	}
	pw.count++
	return nil
}

func (pw *partWriter) close() error {
	for i, cw := range pw.cols {
		if err := cw.Close(); err != nil {
			return err
		}
		if err := pw.files[i].Close(); err != nil {
			return err
		}
	}
	return nil
}
