package ingest_test

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/ingest"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/serve"
	"colmr/internal/sim"
	"colmr/internal/workload"
)

func testFS(nodes int) *hdfs.FileSystem {
	cfg := sim.DefaultCluster()
	cfg.Nodes = nodes
	cfg.BlockSize = 1 << 16
	cfg.TransferUnit = 1 << 12
	fs := hdfs.New(cfg, 1)
	fs.SetPlacementPolicy(hdfs.NewColumnPlacementPolicy())
	return fs
}

// arrivals replays a deterministic crawl stream: n arrivals, a recrawl
// fraction revisiting seen URLs with fresh volatile columns.
func arrivals(n int, recrawl float64, seed int64) ([]workload.Arrival, *workload.Crawl) {
	s := workload.NewArrivalStream(workload.ArrivalOptions{
		Crawl:           workload.CrawlOptions{Seed: seed, ContentBytes: 200, Inlinks: 2},
		Seed:            seed,
		RatePerSec:      50,
		RecrawlFraction: recrawl,
	})
	out := make([]workload.Arrival, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out, s.Crawl()
}

// finalSet reduces an arrival sequence to the record set a finished ingest
// holds: the latest version of each URL, ordered by last arrival — the
// ingester's upsert rule.
func finalSet(arr []workload.Arrival) []*serde.GenericRecord {
	order := make([]*serde.GenericRecord, 0, len(arr))
	byKey := make(map[int64]int)
	for _, a := range arr {
		if p, ok := byKey[a.Index]; ok {
			order[p] = nil
		}
		order = append(order, a.Rec)
		byKey[a.Index] = len(order) - 1
	}
	out := order[:0]
	for _, r := range order {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

func ingestOptions(dataset string, schema *serde.Schema, memtable int) ingest.Options {
	return ingest.Options{
		Dataset:         dataset,
		Schema:          schema,
		Key:             "url",
		TimeColumn:      "fetchTime",
		BucketMillis:    4000, // a few buckets per stream second at 50/s
		MemtableRecords: memtable,
		Load: core.LoadOptions{
			SplitRecords: 64,
			PerColumn:    map[string]colfile.Options{"metadata": {Layout: colfile.DCSL}},
		},
	}
}

func bulkLoad(t *testing.T, fs *hdfs.FileSystem, dataset string, schema *serde.Schema, recs []*serde.GenericRecord) {
	t.Helper()
	w, err := core.NewWriter(fs, dataset, schema, core.LoadOptions{
		SplitRecords: 64,
		PerColumn:    map[string]colfile.Options{"metadata": {Layout: colfile.DCSL}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// rowKey renders one record's full content deterministically (maps are
// summarized by stable fields; content by a hash), so slice equality is
// record-set-and-order equality.
func rowKey(rec *serde.GenericRecord) string {
	url, _ := rec.Get("url")
	src, _ := rec.Get("srcUrl")
	ft, _ := rec.Get("fetchTime")
	inl, _ := rec.Get("inlink")
	md, _ := rec.Get("metadata")
	content, _ := rec.Get("content")
	h := fnv.New64a()
	h.Write(content.([]byte))
	lm := md.(map[string]any)["last-modified"]
	return fmt.Sprintf("%v|%v|%v|%d|%v|%d|%x",
		url, src, ft, len(inl.([]any)), lm, len(content.([]byte)), h.Sum64())
}

// scanRows runs a full-record scan as one map task (DirsPerSplit pinned
// high so row order is the dataset's scan order).
func scanRows(t *testing.T, fs *hdfs.FileSystem, dataset string, pred scan.Predicate, vectorize bool) []string {
	t.Helper()
	var mu sync.Mutex
	var rows []string
	job := core.ScanDataset(dataset).
		Where(pred).
		Vectorize(vectorize).
		DirsPerSplit(1 << 20).
		Job(mapred.MapperFunc(func(_, v any, _ mapred.Emit) error {
			mu.Lock()
			defer mu.Unlock()
			rows = append(rows, rowKey(v.(*serde.GenericRecord)))
			return nil
		}))
	if _, err := mapred.Run(fs, job); err != nil {
		t.Fatal(err)
	}
	return rows
}

func aggRows(t *testing.T, fs *hdfs.FileSystem, dataset, spec string, pred scan.Predicate, vectorize bool) string {
	t.Helper()
	agg, err := scan.ParseAggregate(spec)
	if err != nil {
		t.Fatal(err)
	}
	job := core.ScanDataset(dataset).Where(pred).Vectorize(vectorize).Aggregate(agg).AggJob()
	res, err := mapred.Run(fs, job)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%v", res.Agg.Rows())
}

// TestIngestCompactEquivalence is the subsystem's property test: an
// ingested-then-compacted dataset answers every query — scans and
// aggregates, vectorized and scalar — identically to bulk-loading the same
// final record set, across random arrival orders, recrawl overlaps, and
// compaction points.
func TestIngestCompactEquivalence(t *testing.T) {
	trials := 5
	n := 400
	if testing.Short() {
		trials, n = 2, 220
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(900 + trial)))
			recrawl := []float64{0, 0.2, 0.45}[trial%3]
			arr, crawl := arrivals(n, recrawl, int64(7000+trial))

			fsI := testFS(3)
			opts := ingestOptions("/live/crawl", crawl.Schema(), 32+rng.Intn(64))
			ing, err := ingest.New(fsI, opts)
			if err != nil {
				t.Fatal(err)
			}
			// Random mid-stream flush/compaction points.
			flushAt := map[int]bool{}
			compactAt := map[int]bool{}
			for i := 0; i < 3; i++ {
				flushAt[rng.Intn(len(arr))] = true
				compactAt[rng.Intn(len(arr))] = true
			}
			for i, a := range arr {
				if err := ing.Append(a.Rec); err != nil {
					t.Fatal(err)
				}
				if flushAt[i] {
					if err := ing.Flush(); err != nil {
						t.Fatal(err)
					}
				}
				if compactAt[i] {
					if err := ing.Compact(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := ing.Flush(); err != nil {
				t.Fatal(err)
			}
			if trial%2 == 0 {
				if err := ing.Compact(); err != nil {
					t.Fatal(err)
				}
				if err := ing.GC(); err != nil {
					t.Fatal(err)
				}
			}

			final := finalSet(arr)
			fsB := testFS(3)
			bulkLoad(t, fsB, "/bulk/crawl", crawl.Schema(), final)

			if got := ing.Stats().UpsertsResolved; got != int64(len(arr)-len(final)) {
				t.Errorf("UpsertsResolved = %d, want %d", got, len(arr)-len(final))
			}

			mid := int64(1293840000000 + 2000)
			preds := []scan.Predicate{
				nil,
				scan.HasPrefix("url", "http://www.ibm.com"),
				scan.Gt("fetchTime", mid),
			}
			for pi, pred := range preds {
				for _, vec := range []bool{true, false} {
					got := scanRows(t, fsI, "/live/crawl", pred, vec)
					want := scanRows(t, fsB, "/bulk/crawl", pred, vec)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("pred %d vec=%v: ingest scan (%d rows) != bulk scan (%d rows)",
							pi, vec, len(got), len(want))
					}
					ga := aggRows(t, fsI, "/live/crawl", "count,count(url),min(fetchTime),max(fetchTime),sum(fetchTime),avg(fetchTime)", pred, vec)
					wa := aggRows(t, fsB, "/bulk/crawl", "count,count(url),min(fetchTime),max(fetchTime),sum(fetchTime),avg(fetchTime)", pred, vec)
					if ga != wa {
						t.Fatalf("pred %d vec=%v: ingest agg %s != bulk agg %s", pi, vec, ga, wa)
					}
				}
			}
		})
	}
}

// TestIngestSharedScanEquivalence runs a shared batch (two scans + an
// aggregate co-scheduled on one cursor set) over an ingested dataset and
// checks every member's result against solo runs on the bulk-loaded
// equivalent.
func TestIngestSharedScanEquivalence(t *testing.T) {
	arr, crawl := arrivals(300, 0.35, 4242)
	fsI := testFS(3)
	ing, err := ingest.New(fsI, ingestOptions("/live/crawl", crawl.Schema(), 48))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arr {
		if err := ing.Append(a.Rec); err != nil {
			t.Fatal(err)
		}
		if i == 150 {
			if err := ing.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	fsB := testFS(3)
	bulkLoad(t, fsB, "/bulk/crawl", crawl.Schema(), finalSet(arr))

	pred1 := scan.HasPrefix("url", "http://www.ibm.com")
	pred2 := scan.Gt("fetchTime", int64(1293840000000+3000))

	var mu sync.Mutex
	rows := map[int][]string{}
	collect := func(member int) mapred.Mapper {
		return mapred.MapperFunc(func(_, v any, _ mapred.Emit) error {
			mu.Lock()
			defer mu.Unlock()
			rows[member] = append(rows[member], rowKey(v.(*serde.GenericRecord)))
			return nil
		})
	}
	agg, err := scan.ParseAggregate("count,avg(fetchTime)")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*mapred.Job{
		core.ScanDataset("/live/crawl").Where(pred1).DirsPerSplit(1 << 20).Job(collect(0)),
		core.ScanDataset("/live/crawl").Where(pred2).DirsPerSplit(1 << 20).Job(collect(1)),
		core.ScanDataset("/live/crawl").Where(pred2).Aggregate(agg).AggJob(),
	}
	br, err := mapred.RunBatch(fsI, jobs...)
	if err != nil {
		t.Fatal(err)
	}

	want0 := scanRows(t, fsB, "/bulk/crawl", pred1, true)
	want1 := scanRows(t, fsB, "/bulk/crawl", pred2, true)
	sort.Strings(rows[0])
	sort.Strings(rows[1])
	sortedCopy := func(s []string) []string {
		c := append([]string(nil), s...)
		sort.Strings(c)
		return c
	}
	if !reflect.DeepEqual(rows[0], sortedCopy(want0)) {
		t.Errorf("shared member 0: %d rows, want %d", len(rows[0]), len(want0))
	}
	if !reflect.DeepEqual(rows[1], sortedCopy(want1)) {
		t.Errorf("shared member 1: %d rows, want %d", len(rows[1]), len(want1))
	}
	gotAgg := fmt.Sprintf("%v", br.Results[2].Agg.Rows())
	wantAgg := aggRows(t, fsB, "/bulk/crawl", "count,avg(fetchTime)", pred2, true)
	if gotAgg != wantAgg {
		t.Errorf("shared agg member: %s, want %s", gotAgg, wantAgg)
	}
}

// TestIngestConcurrentServe drives a colserve server and an ingester over
// the same dataset at once: queries race flush and compaction commits. The
// manifest protocol must keep every query answerable (no torn layouts, no
// stale caches, no vanished files), and the live row count — distinct URLs
// committed so far — must be nondecreasing across sequential queries.
func TestIngestConcurrentServe(t *testing.T) {
	n := 600
	if testing.Short() {
		n = 250
	}
	arr, crawl := arrivals(n, 0.3, 777)
	fs := testFS(3)
	srv := serve.New(fs, serve.Options{CacheBytes: 1 << 20})
	defer srv.Close()

	opts := ingestOptions("/live/crawl", crawl.Schema(), 40)
	opts.CompactEvery = 3
	opts.Session = srv.Session()
	ing, err := ingest.New(fs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.ServeLive(ing)
	var commits atomic.Int64
	ing.OnCommit(func(int64, []string) { commits.Add(1) })

	agg, err := scan.ParseAggregate("count")
	if err != nil {
		t.Fatal(err)
	}
	countQuery := func() int64 {
		t.Helper()
		tk, err := srv.Enqueue("reader", core.ScanDataset("/live/crawl").Aggregate(agg).AggJob())
		if err != nil {
			t.Fatal(err)
		}
		res, err := tk.Wait()
		if err != nil {
			t.Fatalf("query racing ingest failed: %v", err)
		}
		return res.Agg.Rows()[0].Values[0].(int64)
	}

	done := make(chan error, 1)
	go func() {
		for _, a := range arr {
			if err := ing.Append(a.Rec); err != nil {
				done <- err
				return
			}
		}
		done <- ing.Flush()
	}()

	last := int64(-1)
	queries := 0
	writing := true
	for writing {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			writing = false
		default:
			if ing.Generation() == 0 {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			n := countQuery()
			if n < last {
				t.Fatalf("live count went backwards: %d after %d", n, last)
			}
			last = n
			queries++
		}
	}
	if queries == 0 || commits.Load() == 0 {
		t.Fatalf("race never materialized: %d queries, %d commits", queries, commits.Load())
	}
	if err := ing.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := ing.GC(); err != nil {
		t.Fatal(err)
	}
	want := int64(len(finalSet(arr)))
	if got := countQuery(); got != want {
		t.Fatalf("final live count %d, want %d distinct URLs", got, want)
	}
}

// TestIngestFreshPartitionCounters checks the ingest-side accounting:
// flushes produce files and fresh partitions that scans observe via
// merge-on-read, and compaction retires them.
func TestIngestFreshPartitionCounters(t *testing.T) {
	arr, crawl := arrivals(200, 0.3, 99)
	fs := testFS(3)
	ing, err := ingest.New(fs, ingestOptions("/live/crawl", crawl.Schema(), 50))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arr {
		if err := ing.Append(a.Rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	if ing.Stats().FlushedFiles == 0 {
		t.Fatal("no flushed files counted")
	}
	if ing.Generation() == 0 {
		t.Fatal("no manifest committed")
	}

	var stats sim.TaskStats
	pre := scanRows(t, fs, "/live/crawl", nil, true)
	job := core.ScanDataset("/live/crawl").DirsPerSplit(1 << 20).
		Job(mapred.MapperFunc(func(_, _ any, _ mapred.Emit) error { return nil }))
	res, err := mapred.Run(fs, job)
	if err != nil {
		t.Fatal(err)
	}
	stats = res.Total
	if stats.FreshPartitionsScanned == 0 {
		t.Error("scan over uncompacted dataset read no fresh partitions")
	}

	if err := ing.Compact(); err != nil {
		t.Fatal(err)
	}
	if ing.Stats().CompactionBytes == 0 {
		t.Error("compaction wrote no bytes")
	}
	res, err = mapred.Run(fs, core.ScanDataset("/live/crawl").DirsPerSplit(1<<20).
		Job(mapred.MapperFunc(func(_, _ any, _ mapred.Emit) error { return nil })))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.FreshPartitionsScanned != 0 {
		t.Errorf("compacted dataset still scanned %d fresh partitions", res.Total.FreshPartitionsScanned)
	}
	post := scanRows(t, fs, "/live/crawl", nil, true)
	if !reflect.DeepEqual(pre, post) {
		t.Error("compaction changed scan results")
	}
}
