package mapred

import (
	"fmt"

	"colmr/internal/hdfs"
	"colmr/internal/scan"
	"colmr/internal/sim"
	"colmr/internal/vec"
)

// Split is a non-overlapping partition of the input assigned to one map
// task (the paper's footnote 1).
type Split interface {
	// Hosts returns candidate nodes for running the split's map task,
	// ranked best-first (typically by how many of the split's bytes are
	// local). An empty slice means no locality preference.
	Hosts(fs *hdfs.FileSystem) []hdfs.NodeID
	// String describes the split for logs and errors.
	String() string
}

// RecordReader iterates the key/value pairs of one split.
type RecordReader interface {
	// Next returns the next pair. ok is false at the end of the split.
	Next() (key, value any, ok bool, err error)
	// Close releases resources.
	Close() error
}

// AggRecordReader is implemented by readers that can answer an aggregation
// pushed into the scan (scan.Spec.Agg) without surfacing records: the
// engine calls DrainAggregate instead of the Next loop, and the split's
// contribution comes back as a partial scan.AggState to merge with the
// other tasks'. CIF readers answer from zone statistics and decoded
// vectors (core.Reader.DrainAggregate).
type AggRecordReader interface {
	RecordReader
	// DrainAggregate consumes the split and returns its aggregate state.
	DrainAggregate() (*scan.AggState, error)
}

// AggSharedRecordReader is implemented by shared readers whose aggregating
// members fold inside the scan: after the reader is exhausted, AggStates
// returns each member's folded state (nil for members that surface
// records), indexed like OpenShared's members slice.
type AggSharedRecordReader interface {
	SharedRecordReader
	AggStates() []*scan.AggState
}

// InputFormat generates splits and reads records from them — Hadoop's
// central extensibility point.
type InputFormat interface {
	// Splits lists the splits for the job's input.
	Splits(fs *hdfs.FileSystem, conf *JobConf) ([]Split, error)
	// Open returns a RecordReader for the split, reading from the given
	// node and charging work to stats. Formats read their configuration
	// (e.g. column projections) from conf.
	Open(fs *hdfs.FileSystem, conf *JobConf, split Split, node hdfs.NodeID, stats *sim.TaskStats) (RecordReader, error)
}

// PlannedInputFormat is implemented by input formats whose split generation
// is itself a planning step — CIF's scheduler-tier split elision drops
// whole split-directories from column-file footer statistics before any map
// task exists. The engine prefers PlannedSplits when available and records
// the report in Result.Plan; Splits remains the capability-free path.
type PlannedInputFormat interface {
	InputFormat
	// PlannedSplits lists the splits for the job's input along with a
	// report of the pruning decisions made while generating them.
	PlannedSplits(fs *hdfs.FileSystem, conf *JobConf) ([]Split, scan.PruneReport, error)
}

// SharedSplit is one co-scheduled map task of a batch: a split plus the
// member jobs it serves. Members are indices into the conf slice handed to
// SharedInputFormat.SharedSplits (batch-local, not global job ids).
type SharedSplit struct {
	Split   Split
	Members []int
}

// SharedInputFormat is implemented by input formats whose readers can be
// co-scheduled: one cursor set per split serves several jobs at once, each
// job receiving exactly the records (and the per-job accounting) a solo run
// would have produced. CIF implements it by reading the union of the jobs'
// columns at the union predicate's selectivity and demultiplexing with
// per-job residual predicates (Engine.RunBatch, internal/core SharedReader).
type SharedInputFormat interface {
	PlannedInputFormat
	// SharedSplits plans the jobs' splits together: per-job split planning
	// (scheduler-tier elision included) runs with each job's own predicate,
	// then split-directories surviving for more than one job are merged
	// into shared splits. The returned reports are per job, in conf order.
	SharedSplits(fs *hdfs.FileSystem, confs []*JobConf) ([]SharedSplit, []scan.PruneReport, error)
	// OpenShared opens one reader driving a single cursor set for the
	// split's member jobs. memberStats receives each member's logical
	// accounting (records pruned / filtered / materialized for that job);
	// shared receives the physical work (I/O, decode, SharedReads,
	// BytesSaved), charged exactly once for the whole member set.
	OpenShared(fs *hdfs.FileSystem, confs []*JobConf, split Split, members []int, node hdfs.NodeID, memberStats []*sim.TaskStats, shared *sim.TaskStats) (SharedRecordReader, error)
}

// SharedRecordReader iterates one shared split for several member jobs.
type SharedRecordReader interface {
	// Next returns the next record qualifying for at least one member job.
	// members lists the qualifying members as positions into the members
	// slice OpenShared received; vals[i] is the record as members[i] sees
	// it (that job's projection and materialization mode).
	Next() (key any, vals []any, members []int, ok bool, err error)
	// Close releases the cursor set and folds its physical accounting into
	// the shared stats.
	Close() error
}

// RecordWriter persists job output pairs.
type RecordWriter interface {
	Write(key, value any) error
	Close() error
}

// OutputFormat transforms job output pairs into a disk format — the dual of
// InputFormat.
type OutputFormat interface {
	// Open returns a writer for one output partition.
	Open(fs *hdfs.FileSystem, conf *JobConf, partition int, stats *sim.TaskStats) (RecordWriter, error)
}

// Emit passes a key/value pair out of a map or reduce function.
type Emit func(key, value any) error

// Mapper is a user map function.
type Mapper interface {
	Map(key, value any, emit Emit) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(key, value any, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(key, value any, emit Emit) error { return f(key, value, emit) }

// Reducer is a user reduce function. Values arrive in deterministic order.
type Reducer interface {
	Reduce(key any, values []any, emit Emit) error
}

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(key any, values []any, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key any, values []any, emit Emit) error { return f(key, values, emit) }

// JobConf carries job configuration, mirroring Hadoop's JobConf: input
// paths, output path, reducer count, the typed scan specification, and
// free-form properties that InputFormats interpret.
type JobConf struct {
	InputPaths  []string
	OutputPath  string
	NumReducers int
	Props       map[string]string
	// Scan is the typed scan specification — projection, predicate,
	// materialization mode, elision, task sizing — consumed directly by
	// CIF, never re-parsed from prop strings. The builder
	// (core.ScanDataset) and the compatibility Set* wrappers populate it.
	// The legacy props (cif.columns, scan.predicate, ...) remain as the
	// serialization format for string-typed inputs; a prop still present
	// fills its field only when the typed spec never set it (each wrapper
	// deletes its own prop when writing the typed field).
	Scan *scan.Spec
	// Cache is the cross-batch scan cache of the Session that runs the
	// job, attached by Session.Submit/Run; nil disables caching. It is
	// runtime state, not configuration: CIF readers hand it to their
	// column-file streams so regions hot from earlier batches charge no
	// I/O.
	Cache *hdfs.ScanCache
	// VecCache is the Session's decoded-vector cache, attached alongside
	// Cache; nil disables vector caching. Where Cache keeps charged byte
	// regions resident (skipping the disk), VecCache keeps decoded column
	// vectors resident (skipping the decode CPU too) — warm vectorized
	// rounds serve batches straight from memory.
	VecCache *vec.Cache
}

// Get returns a free-form property.
func (c *JobConf) Get(key string) string {
	if c.Props == nil {
		return ""
	}
	return c.Props[key]
}

// Set assigns a free-form property.
func (c *JobConf) Set(key, value string) {
	if c.Props == nil {
		c.Props = make(map[string]string)
	}
	c.Props[key] = value
}

// Del removes a free-form property (scan.Conf).
func (c *JobConf) Del(key string) {
	delete(c.Props, key)
}

// ScanSpec returns the conf's mutable typed scan spec, allocating it on
// first use (scan.Conf). Configuration-time only: job execution reads the
// possibly-nil Scan field and must not allocate through this.
func (c *JobConf) ScanSpec() *scan.Spec {
	if c.Scan == nil {
		c.Scan = &scan.Spec{}
	}
	return c.Scan
}

// Job is a configured MapReduce job.
type Job struct {
	Conf    JobConf
	Input   InputFormat
	Output  OutputFormat
	Mapper  Mapper
	Reducer Reducer // nil for map-only jobs
	// Combiner, when set, runs over each map task's output before the
	// shuffle, like Hadoop's combiner: it must be associative and emit
	// pairs of the same types it consumes.
	Combiner Reducer
}

// jobAggregate resolves a job's pushed-down aggregation: the typed spec
// wins; the legacy prop (scan.AggProp) fills in for string-typed inputs.
// Returns nil when the job is a plain map/reduce job.
func jobAggregate(conf *JobConf) (*scan.Aggregate, error) {
	if conf.Scan != nil && conf.Scan.Agg != nil {
		return conf.Scan.Agg, nil
	}
	return scan.AggFromConf(conf)
}

// Validate checks the job is runnable.
func (j *Job) Validate() error {
	if j.Input == nil {
		return fmt.Errorf("mapred: job has no InputFormat")
	}
	agg, err := jobAggregate(&j.Conf)
	if err != nil {
		return err
	}
	if agg != nil {
		// An aggregation job is answered inside the scan: no record reaches
		// a map function and no pairs are shuffled, so user functions have
		// nothing to run on — carrying them is a configuration bug, not a
		// combination to guess at.
		if err := agg.Validate(); err != nil {
			return err
		}
		if j.Mapper != nil || j.Reducer != nil || j.Combiner != nil {
			return fmt.Errorf("mapred: aggregation job carries map/reduce functions — the scan answers the aggregate; drop them or the aggregation")
		}
		return nil
	}
	if j.Mapper == nil {
		return fmt.Errorf("mapred: job has no Mapper")
	}
	if j.Output == nil {
		return fmt.Errorf("mapred: job has no OutputFormat (use NullOutput to discard output)")
	}
	if _, null := j.Output.(NullOutput); null && j.Conf.OutputPath != "" {
		return fmt.Errorf("mapred: OutputPath %q set but Output is NullOutput — output would be silently discarded", j.Conf.OutputPath)
	}
	if j.Reducer != nil && j.Conf.NumReducers < 1 {
		return fmt.Errorf("mapred: reducer set but NumReducers = %d", j.Conf.NumReducers)
	}
	if j.Combiner != nil && j.Reducer == nil {
		return fmt.Errorf("mapred: combiner set without a reducer")
	}
	return nil
}
