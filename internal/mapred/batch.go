package mapred

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"colmr/internal/hdfs"
	"colmr/internal/scan"
	"colmr/internal/sim"
)

// Shared scans: co-scheduling concurrent jobs behind one cursor set.
//
// Run charges every job a full pass over the column files it touches, so N
// concurrent jobs over the same dataset multiply I/O N-fold even when their
// surviving split sets overlap almost entirely. RunBatch lifts the job
// boundary out of the scan: co-submitted jobs whose inputs support shared
// scanning (SharedInputFormat) and name the same datasets are planned
// together, one map task runs per shared split-directory group, and a
// single cursor set drives every member job's map function — the shared
// scan pattern of interactive-scale columnar engines (Hall et al.,
// "Processing a Trillion Cells per Mouse Click").
//
// Sharing is an optimization, never a semantics change: each member job
// receives exactly the records, in the order, with the per-job accounting a
// solo Run would have produced (the sharedscan property test enforces
// byte-identical outputs). Physical work is charged once, to
// BatchResult.Shared; the per-job Results carry only logical counters for
// tasks that were shared.

// BatchResult is the outcome of a batch run.
type BatchResult struct {
	// Results holds each job's result in submission order. Jobs served by
	// shared map tasks carry their logical accounting (records processed /
	// pruned / filtered, output, plan) but no physical I/O of their own;
	// jobs that ran solo (input not shareable, or sole user of its
	// datasets) carry complete solo accounting.
	Results []*Result
	// Shared aggregates the physical work of all shared cursor sets —
	// I/O, decode CPU, SharedReads and BytesSaved — charged exactly once
	// however many jobs each cursor served.
	Shared sim.TaskStats
	// Tasks is the number of co-scheduled map tasks the batch ran (solo
	// fallback tasks not included); SharedTasks of them served more than
	// one job.
	Tasks       int
	SharedTasks int
	// Groups is the number of co-scheduled job groups.
	Groups int
	// Declined is the number of shared-scan admissions the cost model
	// declined across the batch: potential co-scan pairings whose union
	// predicate would have destroyed a member's pruning, summed over every
	// job's PruneReport.SharedDeclined.
	Declined int
}

// ChargedBytes is the batch's total charged traffic: shared cursors once,
// plus whatever the per-job results charged on their own (solo tasks,
// reduce-side writes).
func (b *BatchResult) ChargedBytes() int64 {
	total := b.Shared.IO.TotalChargedBytes()
	for _, r := range b.Results {
		if r == nil {
			continue
		}
		total += r.Total.IO.TotalChargedBytes() + r.ReduceStats.IO.TotalChargedBytes()
	}
	return total
}

// RunBatch executes the jobs as one batch, co-scheduling shared scans where
// the inputs allow it. Results are in job order.
func RunBatch(fs *hdfs.FileSystem, jobs ...*Job) (*BatchResult, error) {
	return runBatch(fs, jobs)
}

// Engine is a session-style front end to the batch scheduler: Submit
// queues jobs, Wait runs everything queued so far as one RunBatch and
// resolves the pending handles.
//
// Submit and Wait are goroutine-safe: concurrent submitters interleave
// into the pending queue (each lands in whichever Wait round swaps it out),
// and a handle's resolution is published through its done channel, so
// Result/WaitResult from any goroutine observe a fully written outcome.
// The scan server (internal/serve) leans on exactly this: many tenants
// enqueueing against one long-lived session.
type Engine struct {
	fs      *hdfs.FileSystem
	mu      sync.Mutex
	pending []*PendingJob
}

// NewEngine returns an engine over the filesystem.
func NewEngine(fs *hdfs.FileSystem) *Engine { return &Engine{fs: fs} }

// FS returns the filesystem the engine runs over, for callers (like the
// scan server's EXPLAIN path) that plan against the same data the engine
// will scan.
func (e *Engine) FS() *hdfs.FileSystem { return e.fs }

// PendingJob is a handle to a submitted job; its result becomes available
// after the Engine.Wait that ran it.
type PendingJob struct {
	job  *Job
	res  *Result
	err  error
	done chan struct{}
}

// Result returns the job's outcome. It errors until the batch has run;
// WaitResult blocks instead.
func (p *PendingJob) Result() (*Result, error) {
	select {
	case <-p.done:
		return p.res, p.err
	default:
		return nil, fmt.Errorf("mapred: job not run yet — call Engine.Wait first")
	}
}

// WaitResult blocks until some Engine.Wait has run the job's batch, then
// returns its outcome.
func (p *PendingJob) WaitResult() (*Result, error) {
	<-p.done
	return p.res, p.err
}

// Done returns a channel closed once the job's batch has run.
func (p *PendingJob) Done() <-chan struct{} { return p.done }

// Submit queues a job for the next Wait. Jobs queued together are
// co-scheduling candidates: the batch barrier is what lets the engine see
// overlapping scans before any of them starts. Safe for concurrent use.
func (e *Engine) Submit(job *Job) *PendingJob {
	p := &PendingJob{job: job, done: make(chan struct{})}
	e.mu.Lock()
	e.pending = append(e.pending, p)
	e.mu.Unlock()
	return p
}

// Wait runs every queued job as one batch, resolves their handles, and
// returns the batch outcome. A batch error resolves every handle with it.
func (e *Engine) Wait() (*BatchResult, error) {
	e.mu.Lock()
	pend := e.pending
	e.pending = nil
	e.mu.Unlock()
	if len(pend) == 0 {
		return &BatchResult{}, nil
	}
	jobs := make([]*Job, len(pend))
	for i, p := range pend {
		jobs[i] = p.job
	}
	br, err := runBatch(e.fs, jobs)
	for i, p := range pend {
		if err != nil {
			p.err = err
		} else {
			p.res = br.Results[i]
		}
		close(p.done)
	}
	return br, err
}

// RunBatch is Engine's one-shot form over its filesystem.
func (e *Engine) RunBatch(jobs ...*Job) (*BatchResult, error) {
	return runBatch(e.fs, jobs)
}

func runBatch(fs *hdfs.FileSystem, jobs []*Job) (*BatchResult, error) {
	for i, job := range jobs {
		if err := job.Validate(); err != nil {
			return nil, fmt.Errorf("mapred: batch job %d: %w", i, err)
		}
	}
	br := &BatchResult{Results: make([]*Result, len(jobs))}

	// Group co-schedulable jobs: same shared-capable input format type over
	// the same datasets. Whether their split sets actually intersect is
	// decided per split-directory by SharedSplits — disjoint predicates
	// simply yield single-member tasks.
	type group struct {
		sif SharedInputFormat
		idx []int
	}
	var groups []*group
	byKey := make(map[string]*group)
	var solo []int
	for i, job := range jobs {
		sif, ok := job.Input.(SharedInputFormat)
		if !ok || hasDuplicatePaths(job.Conf.InputPaths) {
			// A dataset listed twice means the job scans it twice; shared
			// planning keys member sets by directory and cannot represent
			// multiplicity, so such jobs keep the solo path.
			solo = append(solo, i)
			continue
		}
		// The key includes the format's printed configuration and the
		// spec's task sizing: jobs whose instances (or typed specs) size
		// tasks differently plan differently and must not be driven by one
		// another's format.
		dps := 0
		if job.Conf.Scan != nil {
			dps = job.Conf.Scan.DirsPerSplit
		}
		key := fmt.Sprintf("%T|%#v|%d|%s", job.Input, job.Input, dps, strings.Join(job.Conf.InputPaths, "\x00"))
		g, ok := byKey[key]
		if !ok {
			g = &group{sif: sif}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.idx = append(g.idx, i)
	}

	// Singleton groups gain nothing from the shared machinery; they run
	// through the unchanged solo path, so a batch of one costs exactly Run.
	for _, g := range groups {
		if len(g.idx) == 1 {
			solo = append(solo, g.idx[0])
			g.idx = nil
		}
	}
	for _, i := range solo {
		res, err := Run(fs, jobs[i])
		if err != nil {
			return nil, fmt.Errorf("mapred: batch job %d: %w", i, err)
		}
		br.Results[i] = res
	}
	for _, g := range groups {
		if len(g.idx) == 0 {
			continue
		}
		if err := runGroup(fs, jobs, g.idx, g.sif, br); err != nil {
			return nil, err
		}
		br.Groups++
	}
	return br, nil
}

// runGroup executes one co-scheduled job group: plan shared splits, run one
// map task per shared split with a worker pool, then shuffle and reduce
// each member job independently on its own map outputs.
func runGroup(fs *hdfs.FileSystem, jobs []*Job, idx []int, sif SharedInputFormat, br *BatchResult) error {
	confs := make([]*JobConf, len(idx))
	members := make([]*Job, len(idx))
	numParts := make([]int, len(idx))
	for k, i := range idx {
		confs[k] = &jobs[i].Conf
		members[k] = jobs[i]
		numParts[k] = jobs[i].Conf.NumReducers
		if jobs[i].Reducer == nil || numParts[k] < 1 {
			numParts[k] = 1
		}
	}
	shSplits, reports, err := sif.SharedSplits(fs, confs)
	if err != nil {
		return err
	}
	splits := make([]Split, len(shSplits))
	for i, sp := range shSplits {
		splits[i] = sp.Split
	}
	nodes := scheduleSplits(fs, splits)

	taskOuts := make([][]*taskOutput, len(shSplits))
	sharedStats := make([]sim.TaskStats, len(shSplits))
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	taskCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range taskCh {
				outs, shared, err := runSharedTask(fs, sif, members, confs, numParts, shSplits[t], nodes[t])
				if err != nil {
					fail(fmt.Errorf("mapred: shared task %d (%s): %w", t, shSplits[t].Split, err))
					continue
				}
				taskOuts[t] = outs
				sharedStats[t] = shared
			}
		}()
	}
	for t := range shSplits {
		taskCh <- t
	}
	close(taskCh)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	for k, i := range idx {
		res := &Result{Plan: reports[k]}
		br.Declined += reports[k].SharedDeclined
		var outs []*taskOutput
		for t, sp := range shSplits {
			pos := memberPos(sp.Members, k)
			if pos < 0 {
				continue
			}
			out := taskOuts[t][pos]
			res.MapTasks = append(res.MapTasks, TaskReport{Split: sp.Split.String(), Node: nodes[t], Stats: out.stats})
			res.Total.Add(out.stats)
			outs = append(outs, out)
		}
		// As in Run: splits the scheduler elided for this job ran no task,
		// so their pruning is credited to the job's aggregate directly.
		res.Total.SplitsPruned += int64(reports[k].SplitsPruned)
		res.Total.RecordsPruned += reports[k].RecordsPruned
		agg, err := jobAggregate(confs[k])
		if err != nil {
			return fmt.Errorf("mapred: batch job %d: %w", i, err)
		}
		if agg != nil {
			merged := scan.NewAggState(agg)
			for _, out := range outs {
				if out.agg == nil {
					continue
				}
				if err := merged.Merge(out.agg); err != nil {
					return fmt.Errorf("mapred: batch job %d: %w", i, err)
				}
			}
			res.Agg = merged
		} else if err := reducePhase(fs, jobs[i], outs, numParts[k], res); err != nil {
			return fmt.Errorf("mapred: batch job %d: %w", i, err)
		}
		br.Results[i] = res
	}
	for t := range shSplits {
		br.Shared.Add(sharedStats[t])
		if len(shSplits[t].Members) > 1 {
			br.SharedTasks++
		}
	}
	br.Tasks += len(shSplits)
	return nil
}

func hasDuplicatePaths(paths []string) bool {
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		if seen[p] {
			return true
		}
		seen[p] = true
	}
	return false
}

func memberPos(members []int, k int) int {
	for pos, m := range members {
		if m == k {
			return pos
		}
	}
	return -1
}

// runSharedTask drives one shared split: a single SharedRecordReader fans
// records out to the member jobs' map functions, each member accumulating
// its own taskOutput exactly as a solo map task would.
func runSharedTask(fs *hdfs.FileSystem, sif SharedInputFormat, members []*Job, confs []*JobConf, numParts []int, sp SharedSplit, node hdfs.NodeID) ([]*taskOutput, sim.TaskStats, error) {
	outs := make([]*taskOutput, len(sp.Members))
	memberStats := make([]*sim.TaskStats, len(sp.Members))
	emits := make([]Emit, len(sp.Members))
	for pos, k := range sp.Members {
		out := &taskOutput{partitions: make([][]shufflePair, numParts[k])}
		outs[pos] = out
		memberStats[pos] = &out.stats
		emits[pos] = emitInto(out, numParts[k])
	}
	var shared sim.TaskStats
	rr, err := sif.OpenShared(fs, confs, sp.Split, sp.Members, node, memberStats, &shared)
	if err != nil {
		return nil, shared, err
	}
	for {
		key, vals, ms, ok, err := rr.Next()
		if err != nil {
			rr.Close()
			return nil, shared, err
		}
		if !ok {
			break
		}
		for i, pos := range ms {
			k := sp.Members[pos]
			outs[pos].stats.RecordsProcessed++
			if err := members[k].Mapper.Map(key, vals[i], emits[pos]); err != nil {
				rr.Close()
				return nil, shared, err
			}
		}
	}
	// Close before reading shared: the reader folds its cursor accounting
	// (per-column I/O, SharedReads, BytesSaved) into shared on Close.
	if err := rr.Close(); err != nil {
		return nil, shared, err
	}
	if ar, ok := rr.(AggSharedRecordReader); ok {
		// Aggregating members folded inside the scan; carry their partial
		// states out with the task.
		for pos, st := range ar.AggStates() {
			outs[pos].agg = st
		}
	}
	for pos, k := range sp.Members {
		if members[k].Combiner != nil {
			if err := combine(members[k], outs[pos]); err != nil {
				return nil, shared, err
			}
		}
	}
	return outs, shared, nil
}
