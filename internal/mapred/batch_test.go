package mapred_test

import (
	"fmt"
	"testing"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// loadBatchDataset writes a small clustered CIF dataset: x is monotone in
// the load order over [0, 1000), y cycles 0..9.
func loadBatchDataset(t *testing.T, fs *hdfs.FileSystem, dataset string, records int64, splits int64) *serde.Schema {
	t.Helper()
	schema := serde.RecordOf("B",
		serde.Field{Name: "x", Type: serde.Long()},
		serde.Field{Name: "y", Type: serde.Int()},
		serde.Field{Name: "s", Type: serde.String()})
	opts := core.LoadOptions{
		Default:      colfile.Options{Layout: colfile.SkipList, Levels: []int{100, 10}, StatsEvery: 20},
		SplitRecords: (records + splits - 1) / splits,
	}
	w, err := core.NewWriter(fs, dataset, schema, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < records; i++ {
		rec := serde.NewRecord(schema)
		rec.SetAt(0, i*1000/records)
		rec.SetAt(1, int32(i%10))
		rec.SetAt(2, fmt.Sprintf("s%03d", i%50))
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return schema
}

func countJob(dataset string, pred scan.Predicate) *mapred.Job {
	conf := mapred.JobConf{InputPaths: []string{dataset}}
	core.SetColumns(&conf, "s")
	if pred != nil {
		scan.SetPredicate(&conf, pred)
	}
	return &mapred.Job{
		Conf:  conf,
		Input: &core.InputFormat{},
		Mapper: mapred.MapperFunc(func(_, v any, emit mapred.Emit) error {
			if _, err := v.(serde.Record).Get("s"); err != nil {
				return err
			}
			return nil
		}),
		Output: mapred.NullOutput{},
	}
}

func TestEngineSubmitWait(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadBatchDataset(t, fs, "/d", 800, 8)

	eng := mapred.NewEngine(fs)
	p1 := eng.Submit(countJob("/d", scan.Le("x", 250)))
	p2 := eng.Submit(countJob("/d", scan.Le("x", 300)))
	if _, err := p1.Result(); err == nil {
		t.Fatal("Result before Wait did not error")
	}
	br, err := eng.Wait()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p1.Result()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != br.Results[0] || r2 != br.Results[1] {
		t.Fatal("pending handles do not resolve to the batch results")
	}
	if br.SharedTasks == 0 {
		t.Fatalf("overlapping jobs produced no shared tasks: %+v", br)
	}
	if br.Shared.SharedReads == 0 || br.Shared.BytesSaved <= 0 {
		t.Fatalf("sharing counters not attributed: SharedReads=%d BytesSaved=%d",
			br.Shared.SharedReads, br.Shared.BytesSaved)
	}
	// Per-job results carry logical counters; solo runs must agree.
	for i, job := range []*mapred.Job{countJob("/d", scan.Le("x", 250)), countJob("/d", scan.Le("x", 300))} {
		solo, err := mapred.Run(fs, job)
		if err != nil {
			t.Fatal(err)
		}
		got := br.Results[i]
		if got.Total.RecordsProcessed != solo.Total.RecordsProcessed {
			t.Fatalf("job %d: batch processed %d records, solo %d", i, got.Total.RecordsProcessed, solo.Total.RecordsProcessed)
		}
	}
	// An empty Wait is a no-op.
	if br2, err := eng.Wait(); err != nil || len(br2.Results) != 0 {
		t.Fatalf("empty Wait: %v, %+v", err, br2)
	}
}

// TestRunBatchDisjointDatasetsRunSolo checks grouping: jobs over different
// datasets cannot share cursors and must fall back to the solo path with
// full solo accounting (physical I/O on their own Results).
func TestRunBatchDisjointDatasetsRunSolo(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadBatchDataset(t, fs, "/d1", 400, 4)
	loadBatchDataset(t, fs, "/d2", 400, 4)

	br, err := mapred.RunBatch(fs, countJob("/d1", nil), countJob("/d2", nil))
	if err != nil {
		t.Fatal(err)
	}
	if br.SharedTasks != 0 || br.Groups != 0 {
		t.Fatalf("disjoint datasets were co-scheduled: %+v", br)
	}
	for i, res := range br.Results {
		if res.Total.IO.TotalChargedBytes() == 0 {
			t.Fatalf("solo-fallback job %d has no physical accounting", i)
		}
	}
}

// TestRunBatchDisjointPredicatesNoSharing checks that jobs over the same
// dataset whose surviving split sets do not intersect produce only
// single-member tasks: co-scheduling never forces unrelated scans together.
func TestRunBatchDisjointPredicatesNoSharing(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadBatchDataset(t, fs, "/d", 800, 8)

	br, err := mapred.RunBatch(fs,
		countJob("/d", scan.Le("x", 200)),
		countJob("/d", scan.Gt("x", 800)))
	if err != nil {
		t.Fatal(err)
	}
	if br.SharedTasks != 0 {
		t.Fatalf("disjoint surviving split sets produced %d shared tasks", br.SharedTasks)
	}
	if br.Shared.SharedReads != 0 || br.Shared.BytesSaved != 0 {
		t.Fatalf("sharing counters on disjoint scans: %+v", br.Shared)
	}
}

// TestRunBatchDuplicatePathsRunSolo checks that a job listing a dataset
// twice (a solo run scans it twice) is never co-scheduled: shared planning
// keys member sets by directory and cannot represent multiplicity.
func TestRunBatchDuplicatePathsRunSolo(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadBatchDataset(t, fs, "/d", 400, 4)

	dup := countJob("/d", nil)
	dup.Conf.InputPaths = []string{"/d", "/d"}
	br, err := mapred.RunBatch(fs, dup, countJob("/d", nil))
	if err != nil {
		t.Fatal(err)
	}
	solo, err := mapred.Run(fs, dup)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := br.Results[0].Total.RecordsProcessed, solo.Total.RecordsProcessed; got != want {
		t.Fatalf("duplicate-path job processed %d records batched, %d solo", got, want)
	}
	if br.SharedTasks != 0 {
		t.Fatalf("duplicate-path job was co-scheduled: %+v", br)
	}
}

// TestRunBatchDifferentFormatConfigsNotMerged checks that jobs whose input
// format instances are configured differently (and so plan differently) are
// not driven by one another's format.
func TestRunBatchDifferentFormatConfigsNotMerged(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadBatchDataset(t, fs, "/d", 800, 8)

	a := countJob("/d", scan.Le("x", 500))
	b := countJob("/d", scan.Le("x", 500))
	b.Input = &core.InputFormat{DirsPerSplit: 2}
	br, err := mapred.RunBatch(fs, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if br.SharedTasks != 0 {
		t.Fatalf("differently configured formats were co-scheduled: %+v", br)
	}
	soloB, err := mapred.Run(fs, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(br.Results[1].MapTasks), len(soloB.MapTasks); got != want {
		t.Fatalf("job with DirsPerSplit=2 ran %d tasks batched, %d solo", got, want)
	}
}

// TestBatchChargesOnce is the headline property: N overlapping jobs batched
// charge roughly one scan's bytes, not N.
func TestBatchChargesOnce(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadBatchDataset(t, fs, "/d", 2000, 8)

	jobs := func() []*mapred.Job {
		var out []*mapred.Job
		for j := 0; j < 4; j++ {
			out = append(out, countJob("/d", scan.Le("x", int64(400+10*j))))
		}
		return out
	}

	var soloCharged int64
	for _, job := range jobs() {
		res, err := mapred.Run(fs, job)
		if err != nil {
			t.Fatal(err)
		}
		soloCharged += res.Total.IO.TotalChargedBytes()
	}
	br, err := mapred.RunBatch(fs, jobs()...)
	if err != nil {
		t.Fatal(err)
	}
	batchCharged := br.ChargedBytes()
	if batchCharged <= 0 || soloCharged <= 0 {
		t.Fatalf("degenerate measurement: solo %d, batch %d", soloCharged, batchCharged)
	}
	if ratio := float64(soloCharged) / float64(batchCharged); ratio < 2 {
		t.Fatalf("4 overlapping jobs: solo charged %d, batch %d (%.2fx, want >= 2x)",
			soloCharged, batchCharged, ratio)
	}
}
