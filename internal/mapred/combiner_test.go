package mapred

import (
	"testing"
)

func sumReducer() ReducerFunc {
	return func(key any, values []any, emit Emit) error {
		var sum int64
		for _, v := range values {
			sum += v.(int64)
		}
		return emit(key, sum)
	}
}

// A combiner must not change the job's answer, only shrink the shuffle.
func TestCombinerPreservesAnswerAndShrinksShuffle(t *testing.T) {
	words := []string{"a", "b", "a", "a", "c", "b", "a", "a", "b", "c", "a", "a"}
	build := func(withCombiner bool) (*Result, map[string]string) {
		fs := testFS()
		in := &memInput{splits: []*memSplit{
			{id: 0, words: words[:6]},
			{id: 1, words: words[6:]},
		}}
		job := &Job{
			Conf:  JobConf{NumReducers: 1, OutputPath: "/out"},
			Input: in,
			Mapper: MapperFunc(func(key, value any, emit Emit) error {
				return emit(value.(string), int64(1))
			}),
			Reducer: sumReducer(),
			Output:  TextOutput{},
		}
		if withCombiner {
			job.Combiner = sumReducer()
		}
		res, err := Run(fs, job)
		if err != nil {
			t.Fatal(err)
		}
		data, err := fs.ReadFile("/out/part-00000")
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]string{}
		for _, line := range splitLines(string(data)) {
			k, v, ok := cutTab(line)
			if ok {
				counts[k] = v
			}
		}
		return res, counts
	}

	plain, plainCounts := build(false)
	combined, combinedCounts := build(true)

	want := map[string]string{"a": "7", "b": "3", "c": "2"}
	for k, v := range want {
		if plainCounts[k] != v || combinedCounts[k] != v {
			t.Errorf("count[%s]: plain %q combined %q, want %q", k, plainCounts[k], combinedCounts[k], v)
		}
	}
	if combined.Total.OutputRecords >= plain.Total.OutputRecords {
		t.Errorf("combiner did not shrink shuffle: %d vs %d records",
			combined.Total.OutputRecords, plain.Total.OutputRecords)
	}
	if combined.Total.OutputBytes >= plain.Total.OutputBytes {
		t.Errorf("combiner did not shrink shuffle bytes: %d vs %d",
			combined.Total.OutputBytes, plain.Total.OutputBytes)
	}
	// Each split has at most 3 distinct words, 2 splits: <= 6 combined pairs.
	if combined.Total.OutputRecords > 6 {
		t.Errorf("combined output records = %d, want <= 6", combined.Total.OutputRecords)
	}
}

func TestCombinerWithoutReducerRejected(t *testing.T) {
	job := &Job{
		Input:    &memInput{},
		Mapper:   MapperFunc(func(k, v any, e Emit) error { return nil }),
		Combiner: sumReducer(),
	}
	if err := job.Validate(); err == nil {
		t.Error("combiner without reducer should fail validation")
	}
}

func TestCombinerErrorPropagates(t *testing.T) {
	fs := testFS()
	in := &memInput{splits: []*memSplit{{id: 0, words: []string{"x"}}}}
	job := &Job{
		Conf:  JobConf{NumReducers: 1},
		Input: in,
		Mapper: MapperFunc(func(key, value any, emit Emit) error {
			return emit(value.(string), int64(1))
		}),
		Reducer: sumReducer(),
		Combiner: ReducerFunc(func(key any, values []any, emit Emit) error {
			return errBoom
		}),
	}
	if _, err := Run(fs, job); err == nil {
		t.Error("combiner error not propagated")
	}
}

var errBoom = errFixed("boom")

type errFixed string

func (e errFixed) Error() string { return string(e) }

func splitLines(s string) []string {
	var out []string
	for _, l := range splitOn(s, '\n') {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

func splitOn(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func cutTab(s string) (string, string, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == '\t' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}
