package mapred

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// KeyBytes returns a canonical byte form of a shuffle key, used for
// hashing, size accounting, and as a total-order tiebreaker. Supported key
// and value types are the serde primitives: nil, bool, int32, int64,
// float64, string, and []byte.
func KeyBytes(v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return nil, nil
	case bool:
		if x {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	case int32:
		return binary.BigEndian.AppendUint32(nil, uint32(x)), nil
	case int64:
		return binary.BigEndian.AppendUint64(nil, uint64(x)), nil
	case float64:
		return binary.BigEndian.AppendUint64(nil, math.Float64bits(x)), nil
	case string:
		return []byte(x), nil
	case []byte:
		return x, nil
	default:
		return nil, fmt.Errorf("mapred: unsupported shuffle type %T", v)
	}
}

// SizeOf estimates the serialized size of a shuffle pair component for
// OutputBytes accounting.
func SizeOf(v any) int64 {
	switch x := v.(type) {
	case nil:
		return 1
	case bool:
		return 1
	case int32:
		return 4
	case int64, float64:
		return 8
	case string:
		return int64(len(x)) + 1
	case []byte:
		return int64(len(x)) + 1
	default:
		return 16
	}
}

// Partition returns the reduce partition for a key.
func Partition(key any, numReducers int) (int, error) {
	if numReducers <= 1 {
		return 0, nil
	}
	kb, err := KeyBytes(key)
	if err != nil {
		return 0, err
	}
	h := fnv.New32a()
	h.Write(kb)
	return int(h.Sum32() % uint32(numReducers)), nil
}

// Compare totally orders shuffle keys: nil first, then by type rank
// (bool, int32, int64, float64, string, []byte), then by value.
func Compare(a, b any) (int, error) {
	ra, err := typeRank(a)
	if err != nil {
		return 0, err
	}
	rb, err := typeRank(b)
	if err != nil {
		return 0, err
	}
	if ra != rb {
		return cmp(ra, rb), nil
	}
	switch x := a.(type) {
	case nil:
		return 0, nil
	case bool:
		y := b.(bool)
		switch {
		case x == y:
			return 0, nil
		case !x:
			return -1, nil
		default:
			return 1, nil
		}
	case int32:
		return cmp(x, b.(int32)), nil
	case int64:
		return cmp(x, b.(int64)), nil
	case float64:
		return cmp(x, b.(float64)), nil
	case string:
		return cmp(x, b.(string)), nil
	case []byte:
		return bytes.Compare(x, b.([]byte)), nil
	}
	return 0, fmt.Errorf("mapred: unsupported shuffle type %T", a)
}

func typeRank(v any) (int, error) {
	switch v.(type) {
	case nil:
		return 0, nil
	case bool:
		return 1, nil
	case int32:
		return 2, nil
	case int64:
		return 3, nil
	case float64:
		return 4, nil
	case string:
		return 5, nil
	case []byte:
		return 6, nil
	default:
		return 0, fmt.Errorf("mapred: unsupported shuffle type %T", v)
	}
}

func cmp[T int | int32 | int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
