package mapred

import (
	"testing"
	"testing/quick"
)

func TestCompareOrdering(t *testing.T) {
	ordered := []any{
		nil,
		false, true,
		int32(-5), int32(7),
		int64(-9), int64(100),
		float64(-1.5), float64(2.5),
		"a", "b",
		[]byte{1}, []byte{2},
	}
	for i := range ordered {
		for j := range ordered {
			c, err := Compare(ordered[i], ordered[j])
			if err != nil {
				t.Fatalf("Compare(%v, %v): %v", ordered[i], ordered[j], err)
			}
			switch {
			case i < j && c >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", ordered[i], ordered[j], c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", ordered[i], ordered[j], c)
			case i == j && c != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", ordered[i], ordered[j], c)
			}
		}
	}
}

func TestCompareUnsupported(t *testing.T) {
	if _, err := Compare(struct{}{}, 1); err == nil {
		t.Error("struct keys should be rejected")
	}
	if _, err := Compare("a", map[string]int{}); err == nil {
		t.Error("map keys should be rejected")
	}
}

func TestPartitionStableAndBounded(t *testing.T) {
	f := func(key string, n uint8) bool {
		reducers := int(n%8) + 1
		p1, err := Partition(key, reducers)
		if err != nil {
			return false
		}
		p2, _ := Partition(key, reducers)
		return p1 == p2 && p1 >= 0 && p1 < reducers
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionSingleReducer(t *testing.T) {
	if p, err := Partition("anything", 1); err != nil || p != 0 {
		t.Errorf("Partition(_, 1) = %d, %v", p, err)
	}
}

func TestKeyBytesDistinct(t *testing.T) {
	a, _ := KeyBytes(int32(1))
	b, _ := KeyBytes(int32(2))
	if string(a) == string(b) {
		t.Error("distinct int32 keys encode identically")
	}
	if kb, err := KeyBytes(nil); err != nil || kb != nil {
		t.Errorf("KeyBytes(nil) = %v, %v", kb, err)
	}
	if _, err := KeyBytes(struct{}{}); err == nil {
		t.Error("struct should be rejected")
	}
}

func TestSizeOf(t *testing.T) {
	if SizeOf("hello") != 6 {
		t.Errorf("SizeOf(hello) = %d", SizeOf("hello"))
	}
	if SizeOf(int64(1)) != 8 || SizeOf(int32(1)) != 4 || SizeOf(nil) != 1 {
		t.Error("primitive sizes wrong")
	}
	if SizeOf([]byte{1, 2, 3}) != 4 {
		t.Errorf("SizeOf([]byte) = %d", SizeOf([]byte{1, 2, 3}))
	}
}
