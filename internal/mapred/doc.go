// Package mapred implements a Hadoop-like MapReduce engine over the
// simulated HDFS: InputFormat/RecordReader/OutputFormat extension points
// (the same abstractions the paper's CIF/COF plug into, Section 2), a
// locality-aware split scheduler, parallel map execution, and a
// hash-partitioned sort-merge shuffle feeding reduce tasks.
//
// Map and reduce tasks execute for real, in-process; every task fills a
// sim.TaskStats with its I/O and CPU counters, which the benchmark
// harnesses price with the cluster cost model.
//
// Role in the scheduler→file→group→value pipeline: this package owns the
// scheduler seat. Run asks a PlannedInputFormat for its splits, which is
// where CIF's scheduler tier elides split-directories before any map task
// exists (Result.Plan records the scan.PruneReport); the reader-hosted
// tiers then run inside the map tasks this engine schedules. JobConf.Scan
// carries the typed scan.Spec — projection, predicate, laziness, elision
// and Bloom switches, task sizing — as the job's single source of truth;
// string props survive only as the serialization for string-typed inputs
// such as `colscan -where`.
//
// Beyond solo Run, the package batches and persists:
//
//   - RunBatch / Engine.Submit+Wait co-schedule jobs whose inputs support
//     shared scanning (SharedInputFormat): one map task per shared
//     split-directory group, one cursor set serving every member job,
//     physical I/O charged once to BatchResult.Shared.
//   - Session owns an LRU scan cache (hdfs.ScanCache) keyed by file
//     generation, so repeated Submit/Wait rounds reuse hot column-file
//     regions across batches without co-submission.
//
// Invariants the property tests defend:
//
//   - Shared-scan equivalence (sharedscan_property_test.go): every job of
//     a batch produces byte-identical output files and solo-equal logical
//     counters (records processed/pruned/filtered, groups and
//     bloom-pruned, splits pruned, output) versus running it alone —
//     sharing is an optimization, never a semantics change — across
//     random schemas, predicates, lazy/eager mixes, reducers, combiners,
//     and elision/bloom on/off dimensions.
//   - Session equivalence (session_test.go): cache off, ample, and
//     starved produce byte-identical outputs and identical logical
//     counters over multi-round batch sequences; file generations make
//     stale hits impossible after dataset reload.
//   - Engine/Run parity: a single-job batch is deep-equal to the solo
//     path, so callers can adopt the batch API without re-verifying
//     results.
package mapred
