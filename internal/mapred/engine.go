package mapred

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"colmr/internal/hdfs"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// TaskReport records where a map task ran and what it did.
type TaskReport struct {
	Split string
	Node  hdfs.NodeID
	Stats sim.TaskStats
}

// Result is the outcome of a job run: per-task and aggregated work
// counters, ready to be priced by a sim.CostModel.
type Result struct {
	// MapTasks reports each map task in split order.
	MapTasks []TaskReport
	// Total aggregates all map-task counters. Because the cost model is
	// linear, pricing Total equals summing per-task prices.
	Total sim.TaskStats
	// ReduceStats aggregates reduce-side work (output writing).
	ReduceStats sim.TaskStats
	// ReduceGroups is the number of distinct keys reduced.
	ReduceGroups int64
	// OutputRecords is the number of pairs written by the job.
	OutputRecords int64
	// Plan summarizes split generation when the input format plans
	// (PlannedInputFormat): how many split-directories existed and how
	// many were elided before scheduling. Zero-valued otherwise.
	Plan scan.PruneReport
	// Agg holds the aggregation result for jobs whose scan carried one
	// (scan.Spec.Agg): every map task's partial state merged. Nil for
	// plain map/reduce jobs. Agg.Rows() yields the result rows.
	Agg *scan.AggState
}

type shufflePair struct {
	key, value any
	keyBytes   []byte
	valBytes   []byte
}

type taskOutput struct {
	stats      sim.TaskStats
	partitions [][]shufflePair
	agg        *scan.AggState // aggregation jobs: the task's partial fold
}

// Run executes the job: schedule splits for locality, run map tasks in
// parallel, shuffle, sort, and reduce.
func Run(fs *hdfs.FileSystem, job *Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	var splits []Split
	var plan scan.PruneReport
	var err error
	if pf, ok := job.Input.(PlannedInputFormat); ok {
		splits, plan, err = pf.PlannedSplits(fs, &job.Conf)
	} else {
		splits, err = job.Input.Splits(fs, &job.Conf)
	}
	if err != nil {
		return nil, err
	}
	nodes := scheduleSplits(fs, splits)

	numParts := job.Conf.NumReducers
	if job.Reducer == nil || numParts < 1 {
		numParts = 1
	}

	outputs := make([]*taskOutput, len(splits))
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	taskCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range taskCh {
				out, err := runMapTask(fs, job, splits[i], nodes[i], numParts)
				if err != nil {
					fail(fmt.Errorf("mapred: map task %d (%s): %w", i, splits[i], err))
					continue
				}
				outputs[i] = out
			}
		}()
	}
	for i := range splits {
		taskCh <- i
	}
	close(taskCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &Result{Plan: plan}
	for i, out := range outputs {
		res.MapTasks = append(res.MapTasks, TaskReport{Split: splits[i].String(), Node: nodes[i], Stats: out.stats})
		res.Total.Add(out.stats)
	}
	// Elided splits ran no task, so the scheduler's pruning is credited to
	// the job's aggregate counters directly; RecordsPruned then means
	// "records proven irrelevant at any tier" regardless of where the
	// proof fired.
	res.Total.SplitsPruned += int64(plan.SplitsPruned)
	res.Total.RecordsPruned += plan.RecordsPruned

	if agg, err := jobAggregate(&job.Conf); err != nil {
		return nil, err
	} else if agg != nil {
		// Aggregation jobs have no shuffle or reduce: merge the tasks'
		// partial states into the job's answer.
		merged := scan.NewAggState(agg)
		for _, out := range outputs {
			if out.agg == nil {
				continue
			}
			if err := merged.Merge(out.agg); err != nil {
				return nil, err
			}
		}
		res.Agg = merged
		return res, nil
	}

	if err := reducePhase(fs, job, outputs, numParts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// scheduleSplits assigns each split to a node, preferring the split's
// locality candidates and balancing assignment counts — a deterministic
// stand-in for Hadoop's locality-aware task scheduler.
func scheduleSplits(fs *hdfs.FileSystem, splits []Split) []hdfs.NodeID {
	n := fs.Config().Nodes
	load := make([]int, n)
	nodes := make([]hdfs.NodeID, len(splits))
	for i, sp := range splits {
		best := hdfs.NodeID(-1)
		for _, c := range sp.Hosts(fs) {
			if int(c) < 0 || int(c) >= n {
				continue
			}
			if best < 0 || load[c] < load[best] {
				best = c
			}
		}
		if best < 0 {
			// No locality preference: least-loaded node overall.
			best = 0
			for j := 1; j < n; j++ {
				if load[j] < load[best] {
					best = hdfs.NodeID(j)
				}
			}
		}
		nodes[i] = best
		load[best]++
	}
	return nodes
}

func runMapTask(fs *hdfs.FileSystem, job *Job, split Split, node hdfs.NodeID, numParts int) (*taskOutput, error) {
	out := &taskOutput{partitions: make([][]shufflePair, numParts)}
	reader, err := job.Input.Open(fs, &job.Conf, split, node, &out.stats)
	if err != nil {
		return nil, err
	}
	defer reader.Close()

	if agg, err := jobAggregate(&job.Conf); err != nil {
		return nil, err
	} else if agg != nil {
		// The aggregation is answered inside the scan when the reader can
		// (CIF: zone stats and vectors); other formats fold record by
		// record here. Either way no record reaches a map function, so
		// RecordsProcessed stays zero.
		var st *scan.AggState
		if ar, ok := reader.(AggRecordReader); ok {
			st, err = ar.DrainAggregate()
		} else {
			st, err = drainAggRecords(reader, agg, &out.stats)
		}
		if err != nil {
			return nil, err
		}
		out.agg = st
		return out, nil
	}

	emit := emitInto(out, numParts)

	for {
		k, v, ok, err := reader.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out.stats.RecordsProcessed++
		if err := job.Mapper.Map(k, v, emit); err != nil {
			return nil, err
		}
	}
	if job.Combiner != nil {
		if err := combine(job, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// drainAggRecords is the capability-free aggregation path: the reader's
// records fold one by one through their field accessors. Formats with an
// AggRecordReader never come here; this keeps aggregation correct (if not
// fast) over any input.
func drainAggRecords(reader RecordReader, agg *scan.Aggregate, stats *sim.TaskStats) (*scan.AggState, error) {
	st := scan.NewAggState(agg)
	for {
		_, v, ok, err := reader.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return st, nil
		}
		rec, isRec := v.(serde.Record)
		if !isRec {
			return nil, fmt.Errorf("mapred: cannot aggregate over %T records (input format lacks AggRecordReader)", v)
		}
		if err := st.FoldRecord(recordEval{rec}); err != nil {
			return nil, err
		}
		stats.RowsAggregated++
	}
}

// recordEval adapts a materialized record to scan.Evaluator for the
// capability-free fold.
type recordEval struct {
	rec serde.Record
}

// Value implements scan.Evaluator.
func (e recordEval) Value(col string) (any, error) { return e.rec.Get(col) }

// HasKey implements scan.Evaluator: never answered — the fold reads values.
func (e recordEval) HasKey(string, string) (bool, bool, error) { return false, false, nil }

// emitInto returns the Emit closure appending map-output pairs to out's
// partitions with the standard shuffle accounting. Solo map tasks and each
// member sink of a shared scan build their emits here, so per-job output
// accounting is identical in both execution modes.
func emitInto(out *taskOutput, numParts int) Emit {
	return func(key, value any) error {
		kb, err := KeyBytes(key)
		if err != nil {
			return err
		}
		vb, err := KeyBytes(value)
		if err != nil {
			return err
		}
		p, err := Partition(key, numParts)
		if err != nil {
			return err
		}
		out.partitions[p] = append(out.partitions[p], shufflePair{key: key, value: value, keyBytes: kb, valBytes: vb})
		out.stats.OutputRecords++
		out.stats.OutputBytes += SizeOf(key) + SizeOf(value)
		return nil
	}
}

// combine runs the job's combiner over each partition of one map task's
// output, shrinking the shuffle. Output accounting is recomputed so
// OutputBytes reflects what actually crosses the network.
func combine(job *Job, out *taskOutput) error {
	var outBytes, outRecords int64
	for p := range out.partitions {
		pairs := out.partitions[p]
		if len(pairs) == 0 {
			continue
		}
		var combined []shufflePair
		emit := func(key, value any) error {
			kb, err := KeyBytes(key)
			if err != nil {
				return err
			}
			vb, err := KeyBytes(value)
			if err != nil {
				return err
			}
			combined = append(combined, shufflePair{key: key, value: value, keyBytes: kb, valBytes: vb})
			outRecords++
			outBytes += SizeOf(key) + SizeOf(value)
			return nil
		}
		if err := groupAndReduce(job.Combiner, pairs, emit); err != nil {
			return err
		}
		out.partitions[p] = combined
	}
	out.stats.OutputBytes = outBytes
	out.stats.OutputRecords = outRecords
	return nil
}

// reducePhase merges map outputs per partition, sorts, groups by key, and
// runs the reducer (or writes map output directly for map-only jobs).
func reducePhase(fs *hdfs.FileSystem, job *Job, outputs []*taskOutput, numParts int, res *Result) error {
	for p := 0; p < numParts; p++ {
		var pairs []shufflePair
		for _, out := range outputs {
			pairs = append(pairs, out.partitions[p]...)
		}

		var writer RecordWriter
		var err error
		if job.Output != nil {
			writer, err = job.Output.Open(fs, &job.Conf, p, &res.ReduceStats)
			if err != nil {
				return err
			}
		}
		write := func(k, v any) error {
			res.OutputRecords++
			if writer == nil {
				return nil
			}
			return writer.Write(k, v)
		}

		if job.Reducer == nil {
			for _, pr := range pairs {
				if err := write(pr.key, pr.value); err != nil {
					return err
				}
			}
		} else {
			if err := sortAndReduce(job, pairs, write, res); err != nil {
				return err
			}
		}
		if writer != nil {
			if err := writer.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortAndReduce(job *Job, pairs []shufflePair, write func(k, v any) error, res *Result) error {
	return groupAndReduceCounted(job.Reducer, pairs, Emit(write), &res.ReduceGroups)
}

// groupAndReduce sorts pairs by key (value bytes as tiebreaker, for fully
// deterministic reduce input), groups equal keys, and applies the reducer.
func groupAndReduce(r Reducer, pairs []shufflePair, emit Emit) error {
	return groupAndReduceCounted(r, pairs, emit, nil)
}

func groupAndReduceCounted(r Reducer, pairs []shufflePair, emit Emit, groups *int64) error {
	var sortErr error
	sort.SliceStable(pairs, func(i, j int) bool {
		c, err := Compare(pairs[i].key, pairs[j].key)
		if err != nil && sortErr == nil {
			sortErr = err
		}
		if c != 0 {
			return c < 0
		}
		return string(pairs[i].valBytes) < string(pairs[j].valBytes)
	})
	if sortErr != nil {
		return sortErr
	}
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) {
			c, err := Compare(pairs[i].key, pairs[j].key)
			if err != nil {
				return err
			}
			if c != 0 {
				break
			}
			j++
		}
		values := make([]any, 0, j-i)
		for _, pr := range pairs[i:j] {
			values = append(values, pr.value)
		}
		if groups != nil {
			*groups++
		}
		if err := r.Reduce(pairs[i].key, values, emit); err != nil {
			return err
		}
		i = j
	}
	return nil
}
