package mapred

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"colmr/internal/hdfs"
	"colmr/internal/sim"
)

// memSplit / memInput: a synthetic InputFormat producing n records per
// split, each (int32 index, string word).
type memSplit struct {
	id    int
	words []string
	hosts []hdfs.NodeID
}

func (s *memSplit) Hosts(fs *hdfs.FileSystem) []hdfs.NodeID { return s.hosts }
func (s *memSplit) String() string                          { return fmt.Sprintf("mem-%d", s.id) }

type memInput struct {
	splits []*memSplit
	// openNodes records which node each split was opened from. Guarded by
	// mu: Open is called from concurrent map-task workers.
	mu        sync.Mutex
	openNodes map[int]hdfs.NodeID
}

func (m *memInput) Splits(fs *hdfs.FileSystem, conf *JobConf) ([]Split, error) {
	out := make([]Split, len(m.splits))
	for i, s := range m.splits {
		out[i] = s
	}
	return out, nil
}

func (m *memInput) Open(fs *hdfs.FileSystem, conf *JobConf, split Split, node hdfs.NodeID, stats *sim.TaskStats) (RecordReader, error) {
	s := split.(*memSplit)
	if m.openNodes != nil {
		m.mu.Lock()
		m.openNodes[s.id] = node
		m.mu.Unlock()
	}
	return &memReader{words: s.words}, nil
}

type memReader struct {
	words []string
	pos   int
}

func (r *memReader) Next() (any, any, bool, error) {
	if r.pos >= len(r.words) {
		return nil, nil, false, nil
	}
	k, v := int32(r.pos), r.words[r.pos]
	r.pos++
	return k, v, true, nil
}

func (r *memReader) Close() error { return nil }

func testFS() *hdfs.FileSystem {
	cfg := sim.DefaultCluster()
	cfg.Nodes = 4
	return hdfs.New(cfg, 1)
}

func wordCountJob(in InputFormat, reducers int) *Job {
	return &Job{
		Conf:  JobConf{NumReducers: reducers, OutputPath: "/out"},
		Input: in,
		Mapper: MapperFunc(func(key, value any, emit Emit) error {
			return emit(value.(string), int64(1))
		}),
		Reducer: ReducerFunc(func(key any, values []any, emit Emit) error {
			var sum int64
			for _, v := range values {
				sum += v.(int64)
			}
			return emit(key, sum)
		}),
		Output: TextOutput{},
	}
}

func TestWordCount(t *testing.T) {
	fs := testFS()
	in := &memInput{splits: []*memSplit{
		{id: 0, words: []string{"a", "b", "a", "c"}},
		{id: 1, words: []string{"b", "a"}},
	}}
	res, err := Run(fs, wordCountJob(in, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReduceGroups != 3 {
		t.Errorf("ReduceGroups = %d, want 3", res.ReduceGroups)
	}
	if res.OutputRecords != 3 {
		t.Errorf("OutputRecords = %d, want 3", res.OutputRecords)
	}
	if res.Total.RecordsProcessed != 6 {
		t.Errorf("RecordsProcessed = %d, want 6", res.Total.RecordsProcessed)
	}
	if res.Total.OutputRecords != 6 {
		t.Errorf("map OutputRecords = %d, want 6", res.Total.OutputRecords)
	}

	// Check written output across part files.
	counts := map[string]string{}
	for p := 0; p < 2; p++ {
		data, err := fs.ReadFile(fmt.Sprintf("/out/part-%05d", p))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			parts := strings.SplitN(line, "\t", 2)
			counts[parts[0]] = parts[1]
		}
	}
	want := map[string]string{"a": "3", "b": "2", "c": "1"}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("count[%s] = %q, want %q", k, counts[k], v)
		}
	}
}

func TestMapOnlyJob(t *testing.T) {
	fs := testFS()
	in := &memInput{splits: []*memSplit{{id: 0, words: []string{"x", "y"}}}}
	job := &Job{
		Conf:  JobConf{OutputPath: "/mapout"},
		Input: in,
		Mapper: MapperFunc(func(key, value any, emit Emit) error {
			return emit(value, nil)
		}),
		Output: TextOutput{},
	}
	res, err := Run(fs, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRecords != 2 {
		t.Errorf("OutputRecords = %d, want 2", res.OutputRecords)
	}
	if res.ReduceGroups != 0 {
		t.Errorf("ReduceGroups = %d, want 0 for map-only", res.ReduceGroups)
	}
}

func TestSchedulerPrefersLocalHosts(t *testing.T) {
	fs := testFS()
	in := &memInput{
		openNodes: map[int]hdfs.NodeID{},
		splits: []*memSplit{
			{id: 0, words: []string{"a"}, hosts: []hdfs.NodeID{2}},
			{id: 1, words: []string{"b"}, hosts: []hdfs.NodeID{3}},
			{id: 2, words: []string{"c"}, hosts: nil}, // no preference
		},
	}
	job := wordCountJob(in, 1)
	if _, err := Run(fs, job); err != nil {
		t.Fatal(err)
	}
	if in.openNodes[0] != 2 {
		t.Errorf("split 0 ran on node %d, want 2", in.openNodes[0])
	}
	if in.openNodes[1] != 3 {
		t.Errorf("split 1 ran on node %d, want 3", in.openNodes[1])
	}
	if n := in.openNodes[2]; n == 2 || n == 3 {
		t.Errorf("unconstrained split ran on busy node %d, want load balancing", n)
	}
}

func TestSchedulerBalancesLoad(t *testing.T) {
	fs := testFS()
	var splits []*memSplit
	for i := 0; i < 16; i++ {
		splits = append(splits, &memSplit{id: i, words: []string{"w"}})
	}
	in := &memInput{splits: splits, openNodes: map[int]hdfs.NodeID{}}
	if _, err := Run(fs, wordCountJob(in, 1)); err != nil {
		t.Fatal(err)
	}
	load := map[hdfs.NodeID]int{}
	for _, n := range in.openNodes {
		load[n]++
	}
	for node, l := range load {
		if l != 4 {
			t.Errorf("node %d got %d tasks, want 4 (16 splits / 4 nodes)", node, l)
		}
	}
}

func TestJobValidation(t *testing.T) {
	if err := (&Job{}).Validate(); err == nil {
		t.Error("empty job should fail validation")
	}
	j := &Job{Input: &memInput{}, Mapper: MapperFunc(func(k, v any, e Emit) error { return nil })}
	if err := j.Validate(); err == nil || !strings.Contains(err.Error(), "OutputFormat") {
		t.Errorf("job without OutputFormat should fail validation, got %v", err)
	}
	j.Output = NullOutput{}
	if err := j.Validate(); err != nil {
		t.Errorf("map-only job should validate: %v", err)
	}
	j.Conf.OutputPath = "/out"
	if err := j.Validate(); err == nil {
		t.Error("OutputPath with NullOutput should fail — the output would be silently discarded")
	}
	j.Conf.OutputPath = ""
	j.Reducer = ReducerFunc(func(k any, vs []any, e Emit) error { return nil })
	if err := j.Validate(); err == nil {
		t.Error("reducer with 0 reducers should fail")
	}
}

func TestMapErrorPropagates(t *testing.T) {
	fs := testFS()
	in := &memInput{splits: []*memSplit{{id: 0, words: []string{"a"}}}}
	job := &Job{
		Conf:   JobConf{},
		Input:  in,
		Mapper: MapperFunc(func(k, v any, e Emit) error { return fmt.Errorf("boom") }),
		Output: NullOutput{},
	}
	if _, err := Run(fs, job); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("map error not propagated: %v", err)
	}
}

func TestUnsupportedKeyTypeFails(t *testing.T) {
	fs := testFS()
	in := &memInput{splits: []*memSplit{{id: 0, words: []string{"a"}}}}
	job := &Job{
		Conf:  JobConf{},
		Input: in,
		Mapper: MapperFunc(func(k, v any, e Emit) error {
			return e(struct{ X int }{1}, nil)
		}),
		Output: NullOutput{},
	}
	if _, err := Run(fs, job); err == nil {
		t.Error("emitting a struct key should fail")
	}
}

func TestReduceInputDeterminism(t *testing.T) {
	// Same inputs across two runs must give byte-identical reduce value
	// orders (the engine sorts by key then value bytes).
	run := func() []string {
		fs := testFS()
		in := &memInput{splits: []*memSplit{
			{id: 0, words: []string{"k", "k", "k"}},
			{id: 1, words: []string{"k", "k"}},
		}}
		var seen []string
		job := &Job{
			Conf:  JobConf{NumReducers: 1},
			Input: in,
			Mapper: MapperFunc(func(k, v any, e Emit) error {
				return e(v, int64(k.(int32)))
			}),
			Reducer: ReducerFunc(func(k any, vs []any, e Emit) error {
				for _, v := range vs {
					seen = append(seen, fmt.Sprint(v))
				}
				return nil
			}),
			Output: NullOutput{},
		}
		if _, err := Run(fs, job); err != nil {
			t.Fatal(err)
		}
		return seen
	}
	a := strings.Join(run(), ",")
	for i := 0; i < 5; i++ {
		if b := strings.Join(run(), ","); a != b {
			t.Fatalf("nondeterministic reduce input: %q vs %q", a, b)
		}
	}
}
