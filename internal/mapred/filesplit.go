package mapred

import (
	"fmt"
	"sort"

	"colmr/internal/hdfs"
)

// FileSplit is a byte range of one file — the split shape used by
// row-oriented formats (TXT, SEQ, RCFile). Start is inclusive, End
// exclusive; format readers align the range to record boundaries (newlines
// or sync markers) themselves.
type FileSplit struct {
	Path  string
	Start int64
	End   int64
}

// String implements Split.
func (s *FileSplit) String() string {
	return fmt.Sprintf("%s[%d:%d]", s.Path, s.Start, s.End)
}

// Hosts implements Split: nodes holding replicas of the range's blocks,
// ranked by how many of the split's bytes they store locally.
func (s *FileSplit) Hosts(fs *hdfs.FileSystem) []hdfs.NodeID {
	locs, err := fs.BlockLocations(s.Path)
	if err != nil {
		return nil
	}
	blockSize := fs.Config().BlockSize
	local := map[hdfs.NodeID]int64{}
	for i, nodes := range locs {
		bStart := int64(i) * blockSize
		bEnd := bStart + blockSize
		overlap := min64(bEnd, s.End) - max64(bStart, s.Start)
		if overlap <= 0 {
			continue
		}
		for _, n := range nodes {
			local[n] += overlap
		}
	}
	out := make([]hdfs.NodeID, 0, len(local))
	for n := range local {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if local[out[i]] != local[out[j]] {
			return local[out[i]] > local[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// SplitFiles carves every input file into FileSplits of roughly targetSize
// bytes (at least one split per non-empty file).
func SplitFiles(fs *hdfs.FileSystem, paths []string, targetSize int64) ([]Split, error) {
	if targetSize <= 0 {
		targetSize = fs.Config().BlockSize
	}
	var out []Split
	for _, p := range paths {
		files, err := expand(fs, p)
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			size := fs.TotalSize(f)
			if size == 0 {
				continue
			}
			for off := int64(0); off < size; off += targetSize {
				end := off + targetSize
				if end > size {
					end = size
				}
				out = append(out, &FileSplit{Path: f, Start: off, End: end})
			}
		}
	}
	return out, nil
}

// expand resolves a path to the regular files beneath it (one level for
// directories, matching Hadoop's input-path behaviour).
func expand(fs *hdfs.FileSystem, p string) ([]string, error) {
	fi, err := fs.Stat(p)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir {
		return []string{p}, nil
	}
	infos, err := fs.List(p)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, fi := range infos {
		if !fi.IsDir {
			out = append(out, fi.Path)
		}
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
