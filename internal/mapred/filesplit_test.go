package mapred

import (
	"testing"

	"colmr/internal/hdfs"
	"colmr/internal/sim"
)

func TestFileSplitHostsRankedByLocalBytes(t *testing.T) {
	cfg := sim.DefaultCluster()
	cfg.Nodes = 6
	cfg.BlockSize = 1 << 14
	fs := hdfs.New(cfg, 5)
	// Three blocks.
	if err := fs.WriteFile("/f", make([]byte, 3<<14), 2); err != nil {
		t.Fatal(err)
	}
	sp := &FileSplit{Path: "/f", Start: 0, End: 3 << 14}
	hosts := sp.Hosts(fs)
	if len(hosts) == 0 {
		t.Fatal("no hosts")
	}
	// The writer node holds every block's first replica: it must rank first.
	if hosts[0] != 2 {
		t.Errorf("top host = %d, want writer node 2", hosts[0])
	}
	// A sub-range split must only consider overlapped blocks.
	sub := &FileSplit{Path: "/f", Start: 0, End: 10}
	if len(sub.Hosts(fs)) == 0 {
		t.Error("sub-range split has no hosts")
	}
	// Missing file: no hosts, no panic.
	missing := &FileSplit{Path: "/nope", Start: 0, End: 10}
	if h := missing.Hosts(fs); h != nil {
		t.Errorf("missing file hosts = %v", h)
	}
}

func TestSplitFilesDirectoriesAndSizes(t *testing.T) {
	cfg := sim.DefaultCluster()
	cfg.Nodes = 4
	fs := hdfs.New(cfg, 1)
	fs.WriteFile("/in/a", make([]byte, 1000), 0)
	fs.WriteFile("/in/b", make([]byte, 2500), 0)
	fs.WriteFile("/in/empty", nil, 0)

	splits, err := SplitFiles(fs, []string{"/in"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// a: 1 split; b: 3 splits; empty: none.
	if len(splits) != 4 {
		t.Fatalf("splits = %d, want 4: %v", len(splits), splits)
	}
	var total int64
	for _, sp := range splits {
		f := sp.(*FileSplit)
		if f.End <= f.Start {
			t.Errorf("empty split %v", f)
		}
		total += f.End - f.Start
	}
	if total != 3500 {
		t.Errorf("split bytes = %d, want 3500", total)
	}

	// Single file path and default target size.
	splits, err = SplitFiles(fs, []string{"/in/a"}, 0)
	if err != nil || len(splits) != 1 {
		t.Errorf("single file: %d splits, %v", len(splits), err)
	}
	// Missing path errors.
	if _, err := SplitFiles(fs, []string{"/missing"}, 0); err == nil {
		t.Error("missing input path accepted")
	}
}

func TestTextOutputRequiresPath(t *testing.T) {
	fs := testFS()
	if _, err := (TextOutput{}).Open(fs, &JobConf{}, 0, nil); err == nil {
		t.Error("TextOutput without output path accepted")
	}
}

func TestJobConfProps(t *testing.T) {
	var conf JobConf
	if conf.Get("missing") != "" {
		t.Error("Get on empty conf should return empty")
	}
	conf.Set("k", "v")
	if conf.Get("k") != "v" {
		t.Error("Set/Get round trip failed")
	}
}
