package mapred

import (
	"fmt"

	"colmr/internal/hdfs"
	"colmr/internal/sim"
)

// NullOutput discards job output (still counting it), for jobs measured
// purely on their map/scan behaviour.
type NullOutput struct{}

// Open implements OutputFormat.
func (NullOutput) Open(fs *hdfs.FileSystem, conf *JobConf, partition int, stats *sim.TaskStats) (RecordWriter, error) {
	return nullWriter{}, nil
}

type nullWriter struct{}

func (nullWriter) Write(key, value any) error { return nil }
func (nullWriter) Close() error               { return nil }

// TextOutput writes "key<TAB>value" lines to part files under the job's
// output path — Hadoop's TextOutputFormat.
type TextOutput struct{}

// Open implements OutputFormat.
func (TextOutput) Open(fs *hdfs.FileSystem, conf *JobConf, partition int, stats *sim.TaskStats) (RecordWriter, error) {
	if conf.OutputPath == "" {
		return nil, fmt.Errorf("mapred: TextOutput requires an output path")
	}
	p := fmt.Sprintf("%s/part-%05d", conf.OutputPath, partition)
	w, err := fs.Create(p, hdfs.AnyNode)
	if err != nil {
		return nil, err
	}
	if stats != nil {
		w.SetStats(&stats.IO)
	}
	return &textWriter{w: w}, nil
}

type textWriter struct {
	w   *hdfs.FileWriter
	buf []byte
}

func (t *textWriter) Write(key, value any) error {
	t.buf = t.buf[:0]
	t.buf = appendText(t.buf, key)
	t.buf = append(t.buf, '\t')
	t.buf = appendText(t.buf, value)
	t.buf = append(t.buf, '\n')
	_, err := t.w.Write(t.buf)
	return err
}

func (t *textWriter) Close() error { return t.w.Close() }

func appendText(dst []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return dst
	case string:
		return append(dst, x...)
	case []byte:
		return append(dst, x...)
	default:
		return fmt.Appendf(dst, "%v", x)
	}
}
