package mapred

import (
	"colmr/internal/hdfs"
	"colmr/internal/vec"
)

// Cross-batch scan caching: the Engine promoted to a long-lived Session.
//
// RunBatch shares cursors inside one co-submission barrier; a Session keeps
// sharing across barriers. It owns an LRU-bounded hdfs.ScanCache of
// column-file regions keyed by (file, generation, region), attached to
// every job it runs, so a steady stream of Submit/Wait rounds — no
// co-submission required — serves repeated reads of hot columns from the
// session instead of the disks, the way PowerDrill keeps decoded column
// chunks resident between a user's successive queries.
//
// Caching is an accounting optimization, never a semantics change: with
// CacheBytes 0 a Session is byte-for-byte the Engine (the session property
// test enforces it), and with a warm cache only the local/remote byte
// charges shrink — hits are visible in sim.TaskStats.CacheHits and
// BytesFromCache. Staleness is impossible by construction: cache keys carry
// the file generation the namenode assigned at creation, so reloading a
// dataset (new generations) orphans the old entries, and AddColumn — new
// files alongside untouched ones — invalidates exactly nothing.

// SessionOptions configures a Session.
type SessionOptions struct {
	// CacheBytes bounds the cross-batch scan cache. 0 disables caching,
	// making the Session behave exactly like an Engine.
	CacheBytes int64
	// VecCacheBytes bounds the decoded-vector cache attached to the
	// session's vectorized scans. 0 disables vector caching: batches are
	// still evaluated vectorized, but every round re-decodes. Like the
	// scan cache it is an accounting optimization only — outputs are
	// identical with any budget.
	VecCacheBytes int64
}

// Session is the long-lived query front end: an Engine plus a cross-batch
// scan cache. Submit queues jobs, Wait runs a round; successive rounds
// reuse the regions earlier rounds charged.
type Session struct {
	Engine
	cache  *hdfs.ScanCache
	vcache *vec.Cache
}

// NewSession returns a session over the filesystem.
func NewSession(fs *hdfs.FileSystem, opts SessionOptions) *Session {
	return &Session{
		Engine: Engine{fs: fs},
		cache:  hdfs.NewScanCache(opts.CacheBytes),
		vcache: vec.New(opts.VecCacheBytes),
	}
}

// attach hands the session's runtime state to a job about to run.
func (s *Session) attach(job *Job) {
	job.Conf.Cache = s.cache
	job.Conf.VecCache = s.vcache
}

// Submit queues a job for the next Wait, attaching the session caches.
// Like Engine.Submit it is goroutine-safe: the cache attachment touches
// only the submitted job's own conf, so concurrent submitters of distinct
// jobs never share mutable state (one job must not be submitted twice
// concurrently — it is owned by the engine once handed over).
func (s *Session) Submit(job *Job) *PendingJob {
	s.attach(job)
	return s.Engine.Submit(job)
}

// RunBatch executes the jobs as one cache-attached batch.
func (s *Session) RunBatch(jobs ...*Job) (*BatchResult, error) {
	for _, job := range jobs {
		s.attach(job)
	}
	return s.Engine.RunBatch(jobs...)
}

// Run executes a single job through the session — one Submit/Wait round of
// one, reusing (and warming) the cache like any other round.
func (s *Session) Run(job *Job) (*Result, error) {
	s.attach(job)
	return Run(s.fs, job)
}

// Invalidate drops the cached regions and vectors of the file or dataset at
// prefix. Generations already make stale hits impossible; Invalidate
// releases the budgets eagerly when a dataset is known dead (e.g. after
// RemoveAll).
func (s *Session) Invalidate(prefix string) {
	s.cache.Invalidate(prefix)
	s.vcache.Invalidate(prefix)
}

// VecCacheUsage reports the vector cache's resident bytes and vector count.
func (s *Session) VecCacheUsage() (bytes int64, vectors int) {
	return s.vcache.Used(), s.vcache.Vectors()
}

// CacheUsage reports the cache's resident bytes and region count.
func (s *Session) CacheUsage() (bytes int64, regions int) {
	return s.cache.Used(), s.cache.Regions()
}

// CacheStats sums a batch's cache counters: hits and bytes served from the
// session cache across the jobs' tasks and the shared cursor sets.
func CacheStats(br *BatchResult) (hits, bytes int64) {
	if br == nil {
		return 0, 0
	}
	hits, bytes = br.Shared.CacheHits, br.Shared.BytesFromCache
	for _, r := range br.Results {
		if r == nil {
			continue
		}
		hits += r.Total.CacheHits
		bytes += r.Total.BytesFromCache
	}
	return hits, bytes
}

// VecStats sums a batch's vectorized-execution counters: rows evaluated
// batch-at-a-time, vector-cache hits, and decoded values those hits saved,
// across the jobs' tasks and the shared cursor sets.
func VecStats(br *BatchResult) (rows, hits, saved int64) {
	if br == nil {
		return 0, 0, 0
	}
	rows = br.Shared.RowsVectorized
	hits = br.Shared.VecCacheHits
	saved = br.Shared.DecodeSavedValues
	for _, r := range br.Results {
		if r == nil {
			continue
		}
		rows += r.Total.RowsVectorized
		hits += r.Total.VecCacheHits
		saved += r.Total.DecodeSavedValues
	}
	return rows, hits, saved
}
