package mapred_test

// Session tests: the long-lived engine with cross-batch scan caching.
//
// The contract under test is the one the API redesign promises: caching is
// pure accounting. With CacheBytes 0 a Session is the Engine, byte for
// byte; with any budget, outputs and logical counters are identical to
// cache-off runs and only the local/remote byte charges move (into
// CacheHits/BytesFromCache). The property test drives random schemas,
// predicates, and multi-round batch sequences through three sessions —
// cache off, ample cache, starved cache (eviction on every round) — and a
// solo reference run.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

// TestSessionCacheOffIsEngine: with CacheBytes 0, a session round must be
// deep-equal to the engine's batch — every counter of every task, not just
// the headline bytes.
func TestSessionCacheOffIsEngine(t *testing.T) {
	build := func(out string) []*mapred.Job {
		return []*mapred.Job{
			countJob("/d", scan.Le("x", 250)),
			countJob("/d", scan.Le("x", 300)),
		}
	}
	fs := hdfs.New(sim.SingleNode(), 1)
	loadBatchDataset(t, fs, "/d", 800, 8)

	eng := mapred.NewEngine(fs)
	for _, job := range build("e") {
		eng.Submit(job)
	}
	engRes, err := eng.Wait()
	if err != nil {
		t.Fatal(err)
	}

	sess := mapred.NewSession(fs, mapred.SessionOptions{CacheBytes: 0})
	for _, job := range build("s") {
		sess.Submit(job)
	}
	sessRes, err := sess.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(engRes, sessRes) {
		t.Errorf("CacheBytes 0 session diverged from engine:\nengine:  %+v\nsession: %+v", engRes, sessRes)
	}
	if hits, bytes := mapred.CacheStats(sessRes); hits != 0 || bytes != 0 {
		t.Errorf("cache counters fired with caching disabled: %d hits, %d bytes", hits, bytes)
	}
}

// TestSessionCacheReuseAcrossBatches: the core Submit/Wait-round promise —
// a second round over the same dataset reuses the first round's reads, with
// identical results.
func TestSessionCacheReuseAcrossBatches(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	loadBatchDataset(t, fs, "/d", 800, 8)
	sess := mapred.NewSession(fs, mapred.SessionOptions{CacheBytes: 64 << 20})

	var prev *mapred.Result
	for round := 0; round < 3; round++ {
		p := sess.Submit(countJob("/d", scan.Le("x", 250)))
		br, err := sess.Wait()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		res, err := p.Result()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		hits, fromCache := mapred.CacheStats(br)
		if round == 0 {
			if hits != 0 {
				t.Errorf("round 0 hit an empty cache %d times", hits)
			}
		} else {
			if hits == 0 || fromCache == 0 {
				t.Errorf("round %d: no cache reuse (%d hits, %d bytes)", round, hits, fromCache)
			}
			if got := res.Total.IO.TotalChargedBytes(); got != 0 {
				t.Errorf("round %d: charged %d bytes with every region hot", round, got)
			}
			if res.Total.RecordsProcessed != prev.Total.RecordsProcessed ||
				res.Total.RecordsPruned != prev.Total.RecordsPruned ||
				res.Total.RecordsFiltered != prev.Total.RecordsFiltered {
				t.Errorf("round %d: logical counters drifted: %+v vs %+v", round, res.Total, prev.Total)
			}
		}
		prev = res
	}
	if bytes, regions := sess.CacheUsage(); bytes == 0 || regions == 0 {
		t.Error("cache empty after three warm rounds")
	}
}

// TestSessionGenerationInvalidation: mutating the dataset must never serve
// stale bytes. AddColumn writes new files (nothing to invalidate — the new
// column simply isn't cached), and a full reload under the same paths gets
// fresh generations that miss the old entries.
func TestSessionGenerationInvalidation(t *testing.T) {
	fs := hdfs.New(sim.SingleNode(), 1)
	schema := loadBatchDataset(t, fs, "/d", 400, 4)
	_ = schema
	sess := mapred.NewSession(fs, mapred.SessionOptions{CacheBytes: 64 << 20})

	// Warm the cache on the base columns.
	if _, err := sess.Run(countJob("/d", scan.Le("x", 500))); err != nil {
		t.Fatal(err)
	}

	// Evolve the schema: x2 = 2*x, one new file per split-directory.
	err := core.AddColumn(fs, "/d", "x2", serde.Long(), colfile.Options{Layout: colfile.SkipList},
		[]string{"x"}, func(rec serde.Record) (any, error) {
			x, err := rec.Get("x")
			if err != nil {
				return nil, err
			}
			return x.(int64) * 2, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}

	sumX2 := func(run func(*mapred.Job) (*mapred.Result, error)) int64 {
		var sum int64
		job := core.ScanDataset("/d").Columns("x2").Where(scan.Le("x", 500)).
			Job(mapred.MapperFunc(func(_, v any, _ mapred.Emit) error {
				x2, err := v.(serde.Record).Get("x2")
				if err != nil {
					return err
				}
				sum += x2.(int64)
				return nil
			}))
		if _, err := run(job); err != nil {
			t.Fatal(err)
		}
		return sum
	}
	want := sumX2(func(j *mapred.Job) (*mapred.Result, error) { return mapred.Run(fs, j) })
	if got := sumX2(sess.Run); got != want {
		t.Errorf("warm session sum(x2) = %d after AddColumn, cacheless run %d", got, want)
	}

	// Rebuild the dataset in place with different contents: every x doubled.
	if err := fs.RemoveAll("/d"); err != nil {
		t.Fatal(err)
	}
	reload := serde.RecordOf("B",
		serde.Field{Name: "x", Type: serde.Long()},
		serde.Field{Name: "y", Type: serde.Int()},
		serde.Field{Name: "s", Type: serde.String()})
	w, err := core.NewWriter(fs, "/d", reload, core.LoadOptions{SplitRecords: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 400; i++ {
		rec := serde.NewRecord(reload)
		rec.SetAt(0, 2*(i*1000/400))
		rec.SetAt(1, int32(i%10))
		rec.SetAt(2, fmt.Sprintf("s%03d", i%50))
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	count := func(run func(*mapred.Job) (*mapred.Result, error)) int64 {
		job := countJob("/d", scan.Le("x", 500))
		res, err := run(job)
		if err != nil {
			t.Fatal(err)
		}
		return res.Total.RecordsProcessed
	}
	want2 := count(func(j *mapred.Job) (*mapred.Result, error) { return mapred.Run(fs, j) })
	if got := count(sess.Run); got != want2 {
		t.Errorf("warm session counted %d records after reload, cacheless run %d — stale cache", got, want2)
	}
}

// TestSessionCacheReuseEquivalenceProperty is the redesign's property test:
// random schemas, predicates, and multi-round batch sequences must produce
// byte-identical outputs and solo-equal logical counters whether the
// session caches nothing, everything, or thrashes a starved cache.
func TestSessionCacheReuseEquivalenceProperty(t *testing.T) {
	rounds := 8
	records := 240
	if testing.Short() {
		rounds = 3
	}
	rng := rand.New(rand.NewSource(20120530))
	var totalHits int64
	for round := 0; round < rounds; round++ {
		schema := bpSchema(rng)
		opts := bpLayouts[round%len(bpLayouts)]
		opts.SplitRecords = int64(20 + rng.Intn(100))
		fs := hdfs.New(sim.SingleNode(), int64(round))
		w, err := core.NewWriter(fs, "/d", schema, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < records; i++ {
			rec := serde.NewRecord(schema)
			for _, f := range schema.Fields {
				if f.Name == "t" {
					err = rec.Set("t", int64(i)*1000/int64(records))
				} else {
					err = rec.Set(f.Name, bpValue(rng, f.Type))
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		// One session per caching mode; each replays the same sequence of
		// batches (jobs regenerated from the same seeds, outputs separated
		// per mode).
		modes := []struct {
			name  string
			bytes int64
		}{
			{"off", 0},
			{"ample", 64 << 20},
			// A few regions' worth: admissions evict on every round.
			{"starved", 512 << 10},
		}
		sessions := make([]*mapred.Session, len(modes))
		for m, mode := range modes {
			// The vector cache rides the same budget, so warm vectorized
			// rounds (batches served from resident vectors) are checked
			// against solo runs too.
			sessions[m] = mapred.NewSession(fs, mapred.SessionOptions{CacheBytes: mode.bytes, VecCacheBytes: mode.bytes})
		}

		batches := 2 + rng.Intn(2)
		for b := 0; b < batches; b++ {
			njobs := 1 + rng.Intn(3)
			seeds := make([]int64, njobs)
			for j := range seeds {
				seeds[j] = rng.Int63()
			}
			makeJob := func(seed int64, out string) *mapred.Job {
				return bpJob(rand.New(rand.NewSource(seed)), schema, "/d", out)
			}

			// Solo reference: the accounting every mode must reproduce.
			soloRes := make([]*mapred.Result, njobs)
			for j := range seeds {
				job := makeJob(seeds[j], fmt.Sprintf("/solo/%d/%d", b, j))
				if soloRes[j], err = mapred.Run(fs, job); err != nil {
					t.Fatalf("round %d batch %d job %d solo: %v", round, b, j, err)
				}
			}

			for m, mode := range modes {
				jobs := make([]*mapred.Job, njobs)
				for j := range seeds {
					jobs[j] = makeJob(seeds[j], fmt.Sprintf("/%s/%d/%d", mode.name, b, j))
				}
				pend := make([]*mapred.PendingJob, njobs)
				for j, job := range jobs {
					pend[j] = sessions[m].Submit(job)
				}
				br, err := sessions[m].Wait()
				if err != nil {
					t.Fatalf("round %d batch %d mode %s: %v", round, b, mode.name, err)
				}
				hits, _ := mapred.CacheStats(br)
				if mode.bytes == 0 && hits != 0 {
					t.Fatalf("round %d batch %d: cache-off session reported %d hits", round, b, hits)
				}
				if mode.name == "ample" {
					totalHits += hits
				}
				for j := range jobs {
					res, err := pend[j].Result()
					if err != nil {
						t.Fatalf("round %d batch %d mode %s job %d: %v", round, b, mode.name, j, err)
					}
					ctx := fmt.Sprintf("round %d batch %d mode %s job %d", round, b, mode.name, j)
					parts := jobs[j].Conf.NumReducers
					if jobs[j].Reducer == nil || parts < 1 {
						parts = 1
					}
					soloOut := readParts(t, fs, fmt.Sprintf("/solo/%d/%d", b, j), parts)
					modeOut := readParts(t, fs, jobs[j].Conf.OutputPath, parts)
					for p := range soloOut {
						if soloOut[p] != modeOut[p] {
							t.Fatalf("%s: partition %d output differs:\nsolo: %q\nmode: %q", ctx, p, soloOut[p], modeOut[p])
						}
					}
					if got, want := logicalStats(res.Total), logicalStats(soloRes[j].Total); got != want {
						t.Fatalf("%s: logical stats differ: session %v, solo %v", ctx, got, want)
					}
				}
			}
		}
	}
	if totalHits == 0 {
		t.Error("no cache hit across all rounds — cross-batch caching never fired")
	}
}
