package mapred_test

// Property test for shared scans: for random schemas, datasets, predicates,
// and job mixes, every job's output and per-job logical accounting from
// mapred.RunBatch must be byte-identical to running the job solo through
// mapred.Run. Shared scans are an optimization — one cursor set, physical
// work charged once — never a semantics change.
//
// The external test package breaks the import cycle: core implements the
// shared input format over mapred's interfaces, and this test drives both.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"colmr/internal/colfile"
	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

var (
	bpPrefixes = []string{"alpha/", "beta/", "gamma/", "delta/"}
	bpKeys     = []string{"k0", "k1", "k2", "k3", "k4", "k5"}
)

// bpSchema builds a random record schema, always ending with a clustered
// long column "t" (set monotone in the load order) so scheduler-tier
// elision has real work, and a map column for the DCSL variant.
func bpSchema(rng *rand.Rand) *serde.Schema {
	kinds := []func() *serde.Schema{
		serde.Int, serde.Long, serde.Double, serde.String, serde.Bool,
	}
	n := 2 + rng.Intn(3)
	fields := make([]serde.Field, 0, n+2)
	for i := 0; i < n; i++ {
		fields = append(fields, serde.Field{Name: fmt.Sprintf("c%d", i), Type: kinds[rng.Intn(len(kinds))]()})
	}
	fields = append(fields,
		serde.Field{Name: "m", Type: serde.MapOf(serde.String())},
		serde.Field{Name: "t", Type: serde.Long()})
	return serde.RecordOf("Batch", fields...)
}

func bpValue(rng *rand.Rand, s *serde.Schema) any {
	switch s.Kind {
	case serde.KindBool:
		return rng.Intn(2) == 0
	case serde.KindInt:
		return int32(rng.Intn(40))
	case serde.KindLong, serde.KindTime:
		return int64(rng.Intn(1000))
	case serde.KindDouble:
		return float64(rng.Intn(100)) / 4
	case serde.KindString:
		return bpPrefixes[rng.Intn(len(bpPrefixes))] + string(rune('a'+rng.Intn(26)))
	case serde.KindMap:
		n := rng.Intn(4)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[bpKeys[rng.Intn(len(bpKeys))]] = bpValue(rng, s.Elem)
		}
		return m
	}
	panic("unhandled kind")
}

func bpLeaf(rng *rand.Rand, schema *serde.Schema) scan.Predicate {
	f := schema.Fields[rng.Intn(len(schema.Fields))]
	ops := []scan.Op{scan.OpEq, scan.OpNe, scan.OpLt, scan.OpLe, scan.OpGt, scan.OpGe}
	op := ops[rng.Intn(len(ops))]
	switch f.Type.Kind {
	case serde.KindBool:
		return scan.Cmp(f.Name, op, rng.Intn(2) == 0)
	case serde.KindInt:
		return scan.Cmp(f.Name, op, rng.Intn(40))
	case serde.KindLong, serde.KindTime:
		if rng.Intn(2) == 0 {
			lo := rng.Intn(1000)
			return scan.Between(f.Name, lo, lo+rng.Intn(400))
		}
		return scan.Cmp(f.Name, op, int64(rng.Intn(1000)))
	case serde.KindDouble:
		return scan.Cmp(f.Name, op, float64(rng.Intn(100))/4)
	case serde.KindString:
		if rng.Intn(2) == 0 {
			return scan.HasPrefix(f.Name, bpPrefixes[rng.Intn(len(bpPrefixes))])
		}
		return scan.Cmp(f.Name, op, bpPrefixes[rng.Intn(len(bpPrefixes))]+string(rune('a'+rng.Intn(26))))
	case serde.KindMap:
		return scan.KeyExists(f.Name, bpKeys[rng.Intn(len(bpKeys))])
	}
	return scan.NotNull(f.Name)
}

func bpPredicate(rng *rand.Rand, schema *serde.Schema, depth int) scan.Predicate {
	if depth <= 0 || rng.Intn(3) == 0 {
		return bpLeaf(rng, schema)
	}
	kids := make([]scan.Predicate, 2)
	for i := range kids {
		kids[i] = bpPredicate(rng, schema, depth-1)
	}
	switch rng.Intn(3) {
	case 0:
		return scan.And(kids...)
	case 1:
		return scan.Or(kids...)
	default:
		return scan.Not(kids[0])
	}
}

var bpLayouts = []core.LoadOptions{
	{Default: colfile.Options{Layout: colfile.Plain, StatsEvery: 20}},
	{Default: colfile.Options{Layout: colfile.SkipList, Levels: []int{100, 10}, StatsEvery: 20}},
	{Default: colfile.Options{Layout: colfile.Block, Codec: "zlib", BlockBytes: 2 << 10}},
}

// bpJob builds one random job over the dataset: random predicate (possibly
// none), projection, materialization mode, and reduce shape. The mapper
// renders the projected columns (fmt prints maps in sorted key order, so
// rendering is deterministic); reduce jobs count per rendered key with the
// reducer doubling as an associative combiner.
func bpJob(rng *rand.Rand, schema *serde.Schema, dataset, out string) *mapred.Job {
	names := schema.FieldNames()
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	proj := append([]string(nil), names[:1+rng.Intn(len(names))]...)

	conf := mapred.JobConf{InputPaths: []string{dataset}, OutputPath: out}
	core.SetColumns(&conf, proj...)
	core.SetLazy(&conf, rng.Intn(2) == 0)
	if rng.Intn(5) > 0 { // one in five jobs scans unfiltered
		scan.SetPredicate(&conf, bpPredicate(rng, schema, 2))
	}
	if rng.Intn(4) == 0 {
		scan.SetElision(&conf, false)
	}
	if rng.Intn(4) == 0 {
		// The bloom dimension: batches mix bloom-on and bloom-off members,
		// forcing the union tier to stay conservative for the dissenter.
		scan.SetBloom(&conf, false)
	}
	if rng.Intn(3) == 0 {
		// The vectorize dimension: scalar members in otherwise-vectorized
		// batches force the whole cursor set scalar, and a solo run in the
		// other mode must still produce identical outputs and counters.
		scan.SetVectorize(&conf, false)
	}

	job := &mapred.Job{
		Conf:  conf,
		Input: &core.InputFormat{},
		Mapper: mapred.MapperFunc(func(_, v any, emit mapred.Emit) error {
			rec := v.(serde.Record)
			var sb strings.Builder
			for _, col := range proj {
				cv, err := rec.Get(col)
				if err != nil {
					return err
				}
				fmt.Fprintf(&sb, "%s=%v;", col, cv)
			}
			return emit(sb.String(), int64(1))
		}),
		Output: mapred.TextOutput{},
	}
	if rng.Intn(2) == 0 {
		sum := mapred.ReducerFunc(func(key any, values []any, emit mapred.Emit) error {
			var n int64
			for _, v := range values {
				n += v.(int64)
			}
			return emit(key, n)
		})
		job.Reducer = sum
		job.Conf.NumReducers = 1 + rng.Intn(3)
		if rng.Intn(2) == 0 {
			job.Combiner = sum
		}
	}
	return job
}

// logicalStats projects the per-job counters that must be identical between
// solo and batched execution (physical I/O and CPU are charged to the
// batch's shared stats instead).
func logicalStats(st sim.TaskStats) [8]int64 {
	return [8]int64{
		st.RecordsProcessed, st.RecordsPruned, st.RecordsFiltered,
		st.GroupsPruned, st.BloomPruned, st.SplitsPruned, st.OutputRecords, st.OutputBytes,
	}
}

func readParts(t *testing.T, fs *hdfs.FileSystem, path string, parts int) []string {
	t.Helper()
	out := make([]string, parts)
	for p := 0; p < parts; p++ {
		name := fmt.Sprintf("%s/part-%05d", path, p)
		r, err := fs.Open(name, hdfs.AnyNode)
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		if r.Size() > 0 {
			data, err := fs.ReadFile(name)
			if err != nil {
				t.Fatalf("reading %s: %v", name, err)
			}
			out[p] = string(data)
		}
		r.Close()
	}
	return out
}

func TestSharedScanEquivalenceProperty(t *testing.T) {
	rounds := 12
	records := 240
	if testing.Short() {
		rounds = 4
	}
	rng := rand.New(rand.NewSource(20110905))
	var sharedTasks, sharedReads int64
	for round := 0; round < rounds; round++ {
		schema := bpSchema(rng)
		opts := bpLayouts[round%len(bpLayouts)]
		opts.SplitRecords = int64(20 + rng.Intn(100))
		fs := hdfs.New(sim.SingleNode(), int64(round))
		w, err := core.NewWriter(fs, "/d", schema, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < records; i++ {
			rec := serde.NewRecord(schema)
			for _, f := range schema.Fields {
				if f.Name == "t" {
					// Clustered: split-directories cover disjoint ranges, the
					// regime where per-job elision diverges between members.
					err = rec.Set("t", int64(i)*1000/int64(records))
				} else {
					err = rec.Set(f.Name, bpValue(rng, f.Type))
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		njobs := 2 + rng.Intn(3)
		soloJobs := make([]*mapred.Job, njobs)
		batchJobs := make([]*mapred.Job, njobs)
		for j := 0; j < njobs; j++ {
			save := rng.Int63()
			jr := rand.New(rand.NewSource(save))
			soloJobs[j] = bpJob(jr, schema, "/d", fmt.Sprintf("/solo/%d/%d", round, j))
			jr = rand.New(rand.NewSource(save))
			batchJobs[j] = bpJob(jr, schema, "/d", fmt.Sprintf("/batch/%d/%d", round, j))
		}

		soloRes := make([]*mapred.Result, njobs)
		for j, job := range soloJobs {
			if soloRes[j], err = mapred.Run(fs, job); err != nil {
				t.Fatalf("round %d job %d solo: %v", round, j, err)
			}
		}
		br, err := mapred.RunBatch(fs, batchJobs...)
		if err != nil {
			t.Fatalf("round %d batch: %v", round, err)
		}
		sharedTasks += int64(br.SharedTasks)
		sharedReads += br.Shared.SharedReads

		for j := 0; j < njobs; j++ {
			pred := "none"
			if p := soloJobs[j].Conf.Scan.Predicate; p != nil {
				pred = p.String()
			}
			ctx := fmt.Sprintf("round %d job %d (pred %q)", round, j, pred)
			solo, batch := soloRes[j], br.Results[j]
			parts := soloJobs[j].Conf.NumReducers
			if soloJobs[j].Reducer == nil || parts < 1 {
				parts = 1
			}
			soloOut := readParts(t, fs, soloJobs[j].Conf.OutputPath, parts)
			batchOut := readParts(t, fs, batchJobs[j].Conf.OutputPath, parts)
			for p := range soloOut {
				if soloOut[p] != batchOut[p] {
					t.Fatalf("%s: partition %d output differs:\nsolo:  %q\nbatch: %q", ctx, p, soloOut[p], batchOut[p])
				}
			}
			if got, want := logicalStats(batch.Total), logicalStats(solo.Total); got != want {
				t.Fatalf("%s: logical stats differ: batch %v, solo %v", ctx, got, want)
			}
			if batch.OutputRecords != solo.OutputRecords || batch.ReduceGroups != solo.ReduceGroups {
				t.Fatalf("%s: reduce accounting differs: batch %d/%d, solo %d/%d",
					ctx, batch.OutputRecords, batch.ReduceGroups, solo.OutputRecords, solo.ReduceGroups)
			}
			if batch.Plan.SplitsTotal != solo.Plan.SplitsTotal ||
				batch.Plan.SplitsPruned != solo.Plan.SplitsPruned ||
				batch.Plan.RecordsPruned != solo.Plan.RecordsPruned {
				t.Fatalf("%s: plan differs: batch %+v, solo %+v", ctx, batch.Plan, solo.Plan)
			}
			// The invariant every tier upholds, per job, in both modes.
			st := batch.Total
			if st.RecordsPruned+st.RecordsFiltered+st.RecordsProcessed != int64(records) {
				t.Fatalf("%s: pruned %d + filtered %d + processed %d != %d",
					ctx, st.RecordsPruned, st.RecordsFiltered, st.RecordsProcessed, records)
			}
		}
	}
	if sharedTasks == 0 {
		t.Error("no shared map task across all rounds — batching never fired")
	}
	if sharedReads == 0 {
		t.Error("no shared cursor reads across all rounds — cursor sharing never fired")
	}
}
