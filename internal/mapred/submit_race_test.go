package mapred_test

// Concurrent Submit safety: the scan server (internal/serve) funnels many
// tenants' queries into one Session, so Submit/Wait/Result must be safe
// from any goroutine. Run under -race (the CI race job does), this test
// exercises the pending-queue swap, the conf-cache attachment, and the
// handle-resolution publication concurrently.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"colmr/internal/core"
	"colmr/internal/hdfs"
	"colmr/internal/mapred"
	"colmr/internal/scan"
	"colmr/internal/serde"
	"colmr/internal/sim"
)

func TestSessionConcurrentSubmits(t *testing.T) {
	const records = 200
	fs := hdfs.New(sim.SingleNode(), 7)
	schema := serde.RecordOf("R",
		serde.Field{Name: "t", Type: serde.Long()},
		serde.Field{Name: "s", Type: serde.String()})
	w, err := core.NewWriter(fs, "/d", schema, core.LoadOptions{SplitRecords: 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		rec := serde.NewRecord(schema)
		if err := rec.Set("t", int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := rec.Set("s", fmt.Sprintf("s%03d", i)); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	job := func(hi int64) *mapred.Job {
		return core.ScanDataset("/d").
			Columns("s").
			Where(scan.Le("t", hi)).
			Job(mapred.MapperFunc(func(_, _ any, _ mapred.Emit) error { return nil }))
	}

	// Expected match counts, measured solo once per predicate shape.
	const submitters, perSubmitter = 4, 6
	want := make([]int64, perSubmitter)
	for j := 0; j < perSubmitter; j++ {
		res, err := mapred.Run(fs, job(int64(20+30*j)))
		if err != nil {
			t.Fatal(err)
		}
		want[j] = res.Total.RecordsProcessed
	}

	session := mapred.NewSession(fs, mapred.SessionOptions{CacheBytes: 1 << 20})
	var resolved atomic.Int64
	allSubmitted := make(chan struct{})

	// The waiter races Wait against in-flight Submits: each Wait swaps out
	// whatever pending jobs it observes, and stragglers land in a later
	// round. One final Wait after the last Submit flushes the tail.
	waiterDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-allSubmitted:
				_, err := session.Wait()
				waiterDone <- err
				return
			default:
				if _, err := session.Wait(); err != nil {
					waiterDone <- err
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, submitters*perSubmitter)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perSubmitter; j++ {
				pend := session.Submit(job(int64(20 + 30*j)))
				// Poll the non-blocking accessor once — it must never
				// observe a half-written outcome — then block.
				pend.Result()
				res, err := pend.WaitResult()
				if err != nil {
					errs <- err
					return
				}
				if res.Total.RecordsProcessed != want[j] {
					errs <- fmt.Errorf("predicate %d matched %d, want %d", j, res.Total.RecordsProcessed, want[j])
					return
				}
				resolved.Add(1)
			}
		}()
	}
	wg.Wait()
	close(allSubmitted)
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter: %v", err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := resolved.Load(); got != submitters*perSubmitter {
		t.Fatalf("resolved %d of %d submissions", got, submitters*perSubmitter)
	}
}
