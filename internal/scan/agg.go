package scan

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Aggregation pushdown: a typed aggregate specification carried on
// scan.Spec, answered inside the scan without materializing rows. The
// fold sites, cheapest first:
//
//   - zone stats: when a group's zone map already decides the predicate
//     (MatchAll) and every function is stats-answerable, the group folds
//     from its ColStats entries — count from row counts, MIN/MAX from the
//     recorded bounds — with zero bytes decoded (FoldStats).
//   - vectors: batches that need evaluation fold straight from the
//     selection bitmap and the decoded column vectors (FoldBatch); the
//     rows never become records.
//   - records: the scalar fallback folds materialized values (FoldRecord),
//     identical in result, used when vectorized execution is off or the
//     input format cannot push the aggregate down.
//
// All three sites produce bit-identical results: the fold order is
// commutative (count/sum additions, CompareValues min/max), so the only
// ordering that matters — the group output order — is fixed by Rows().

// AggKind names one aggregate function.
type AggKind int

// Aggregate functions. AggCount is COUNT(*): it counts selected rows and
// reads no column. AggCountCol counts non-null values of its column;
// AggMin/AggMax/AggSum/AggAvg ignore nulls, as in SQL. AggAvg derives from
// sum and non-null-count partials, so it merges across tasks exactly like
// its components (the division happens once, at output).
const (
	AggCount AggKind = iota
	AggCountCol
	AggMin
	AggMax
	AggSum
	AggAvg
)

// String returns the function name.
func (k AggKind) String() string {
	switch k {
	case AggCount, AggCountCol:
		return "count"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return "sum"
	}
}

// AggFunc is one aggregate function application.
type AggFunc struct {
	Kind AggKind
	Col  string // empty for AggCount
}

// String renders the function in the form ParseAggregate accepts.
func (f AggFunc) String() string {
	if f.Kind == AggCount {
		return "count"
	}
	return fmt.Sprintf("%s(%s)", f.Kind, f.Col)
}

// Aggregate is the typed aggregate specification: the functions to
// compute and an optional low-cardinality grouping column.
type Aggregate struct {
	Funcs   []AggFunc
	GroupBy string // empty = one global group
}

// maxAggGroups bounds the grouping hash: GROUP BY is specified for
// low-cardinality columns, and a runaway key space should fail loudly
// rather than absorb the heap.
const maxAggGroups = 1 << 16

// String renders the spec in the form ParseAggregate accepts, e.g.
// "count,min(price) group by site".
func (a *Aggregate) String() string {
	parts := make([]string, len(a.Funcs))
	for i, f := range a.Funcs {
		parts[i] = f.String()
	}
	s := strings.Join(parts, ",")
	if a.GroupBy != "" {
		s += " group by " + a.GroupBy
	}
	return s
}

// Clone returns a deep copy.
func (a *Aggregate) Clone() *Aggregate {
	if a == nil {
		return nil
	}
	return &Aggregate{Funcs: append([]AggFunc(nil), a.Funcs...), GroupBy: a.GroupBy}
}

// Equal reports whether two specs describe the same aggregation.
func (a *Aggregate) Equal(o *Aggregate) bool {
	if a == nil || o == nil {
		return a == o
	}
	if a.GroupBy != o.GroupBy || len(a.Funcs) != len(o.Funcs) {
		return false
	}
	for i := range a.Funcs {
		if a.Funcs[i] != o.Funcs[i] {
			return false
		}
	}
	return true
}

// Validate checks the spec is well formed.
func (a *Aggregate) Validate() error {
	if a == nil {
		return nil
	}
	if len(a.Funcs) == 0 {
		return fmt.Errorf("scan: aggregate with no functions")
	}
	for _, f := range a.Funcs {
		switch f.Kind {
		case AggCount:
			if f.Col != "" {
				return fmt.Errorf("scan: count takes its column via count(col)")
			}
		case AggCountCol, AggMin, AggMax, AggSum, AggAvg:
			if f.Col == "" {
				return fmt.Errorf("scan: %s requires a column", f.Kind)
			}
		default:
			return fmt.Errorf("scan: unknown aggregate kind %d", int(f.Kind))
		}
	}
	return nil
}

// Columns appends the distinct columns the aggregation reads (function
// arguments plus the grouping column), preserving first-appearance order.
func (a *Aggregate) Columns(dst []string) []string {
	if a == nil {
		return dst
	}
	for _, f := range a.Funcs {
		if f.Col != "" {
			dst = appendColumn(dst, f.Col)
		}
	}
	if a.GroupBy != "" {
		dst = appendColumn(dst, a.GroupBy)
	}
	return dst
}

// ParseAggregate reads an aggregate spec from its string form: a
// comma-separated function list — count, count(col), min(col), max(col),
// sum(col) — optionally followed by "group by col".
func ParseAggregate(src string) (*Aggregate, error) {
	s := strings.TrimSpace(src)
	if s == "" {
		return nil, fmt.Errorf("scan: empty aggregate spec")
	}
	a := &Aggregate{}
	if i := strings.Index(s, " group by "); i >= 0 {
		a.GroupBy = strings.TrimSpace(s[i+len(" group by "):])
		if a.GroupBy == "" || strings.ContainsAny(a.GroupBy, " ,()") {
			return nil, fmt.Errorf("scan: bad group-by column %q", a.GroupBy)
		}
		s = s[:i]
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "count" {
			a.Funcs = append(a.Funcs, AggFunc{Kind: AggCount})
			continue
		}
		open := strings.IndexByte(part, '(')
		if open < 0 || !strings.HasSuffix(part, ")") {
			return nil, fmt.Errorf("scan: bad aggregate function %q", part)
		}
		name, col := part[:open], strings.TrimSpace(part[open+1:len(part)-1])
		if col == "" {
			return nil, fmt.Errorf("scan: %s() requires a column", name)
		}
		var kind AggKind
		switch name {
		case "count":
			kind = AggCountCol
		case "min":
			kind = AggMin
		case "max":
			kind = AggMax
		case "sum":
			kind = AggSum
		case "avg":
			kind = AggAvg
		default:
			return nil, fmt.Errorf("scan: unknown aggregate function %q", name)
		}
		a.Funcs = append(a.Funcs, AggFunc{Kind: kind, Col: col})
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// gkey is the comparable map key for one group. Float keys store their
// bit pattern so NaN groups collapse into one key (Go map semantics would
// otherwise make every NaN insertion distinct).
type gkey struct {
	kind byte // 'n' null, 'b' bool/int, 'f' float, 's' string/bytes
	i    int64
	s    string
}

func groupKeyOf(v any) (gkey, error) {
	switch x := v.(type) {
	case nil:
		return gkey{kind: 'n'}, nil
	case bool:
		if x {
			return gkey{kind: 'b', i: 1}, nil
		}
		return gkey{kind: 'b'}, nil
	case int32:
		return gkey{kind: 'b', i: int64(x)}, nil
	case int64:
		return gkey{kind: 'b', i: x}, nil
	case float64:
		return gkey{kind: 'f', i: int64(math.Float64bits(x))}, nil
	case string:
		return gkey{kind: 's', s: x}, nil
	case []byte:
		return gkey{kind: 's', s: string(x)}, nil
	}
	return gkey{}, fmt.Errorf("scan: group by value of unsupported type %T", v)
}

// aggAcc accumulates one function over one group.
type aggAcc struct {
	count    int64
	hasVal   bool
	min, max any
	sumI     int64
	sumF     float64
	sumIsF   bool
}

// aggGroup is one group's accumulators plus the boxed group value for
// output.
type aggGroup struct {
	val  any
	accs []aggAcc
}

// AggState folds an aggregation incrementally: per batch from vectors,
// per group from zone stats, per record from materialized values, and
// across tasks via Merge. It is not goroutine-safe; each task folds its
// own state and the engine merges them.
type AggState struct {
	agg    *Aggregate
	groups map[gkey]*aggGroup
	order  []gkey // insertion order, re-sorted by Rows
	// vecScratch is FoldBatch's per-call vector table, kept on the state
	// so the steady-state batch fold loop stays allocation-free.
	vecScratch []*Vector
}

// NewAggState returns an empty fold state for the spec.
func NewAggState(a *Aggregate) *AggState {
	return &AggState{agg: a, groups: make(map[gkey]*aggGroup)}
}

// Agg returns the spec the state folds.
func (s *AggState) Agg() *Aggregate { return s.agg }

func (s *AggState) group(key gkey, val any) (*aggGroup, error) {
	g, ok := s.groups[key]
	if !ok {
		if len(s.groups) >= maxAggGroups {
			return nil, fmt.Errorf("scan: group by %q exceeds %d groups", s.agg.GroupBy, maxAggGroups)
		}
		g = &aggGroup{val: copyBoundValue(val), accs: make([]aggAcc, len(s.agg.Funcs))}
		s.groups[key] = g
		s.order = append(s.order, key)
	}
	return g, nil
}

// copyBoundValue deep-copies mutable values retained past the fold call.
func copyBoundValue(v any) any {
	if b, ok := v.([]byte); ok {
		return append([]byte(nil), b...)
	}
	return v
}

// foldValue folds one non-count value into one accumulator.
func (acc *aggAcc) foldValue(kind AggKind, col string, v any) error {
	switch kind {
	case AggCountCol:
		acc.count++
		return nil
	case AggMin, AggMax:
		if !acc.hasVal {
			acc.hasVal = true
			acc.min = copyBoundValue(v)
			return nil
		}
		c, ok := CompareValues(v, acc.min)
		if !ok {
			return fmt.Errorf("scan: cannot compare %s(%s) value %T with %T", kind, col, v, acc.min)
		}
		if (kind == AggMin && c < 0) || (kind == AggMax && c > 0) {
			acc.min = copyBoundValue(v)
		}
		return nil
	default: // AggSum, AggAvg: sum partials (avg also counts its non-nulls)
		switch x := v.(type) {
		case int32:
			acc.sumI += int64(x)
		case int64:
			acc.sumI += x
		case float64:
			acc.sumF += x
			acc.sumIsF = true
		default:
			return fmt.Errorf("scan: %s(%s) over non-numeric value %T", kind, col, v)
		}
		if kind == AggAvg {
			acc.count++
		}
		acc.hasVal = true
		return nil
	}
}

// value returns the accumulator's final value (nil for an empty MIN/MAX/
// SUM, SQL-style).
func (acc *aggAcc) value(kind AggKind) any {
	switch kind {
	case AggCount, AggCountCol:
		return acc.count
	case AggMin, AggMax:
		if !acc.hasVal {
			return nil
		}
		return acc.min
	case AggAvg:
		if !acc.hasVal {
			return nil
		}
		sum := float64(acc.sumI)
		if acc.sumIsF {
			sum = acc.sumF
		}
		return sum / float64(acc.count)
	default:
		if !acc.hasVal {
			return nil
		}
		if acc.sumIsF {
			return acc.sumF
		}
		return acc.sumI
	}
}

// FoldBatch folds every selected row of the current batch from its column
// vectors, returning the number of rows folded. Columns are resolved
// through src once per call, so the decoded-vector cache and lazy decode
// apply exactly as they do for predicate evaluation.
func (s *AggState) FoldBatch(sel *Selection, src VecSource) (int64, error) {
	if sel.Empty() {
		return 0, nil
	}
	var groupVec *Vector
	var err error
	if s.agg.GroupBy != "" {
		if groupVec, err = src.ColVec(s.agg.GroupBy); err != nil {
			return 0, err
		}
	}
	// Resolve each function's vector once; AggCount reads none.
	if cap(s.vecScratch) < len(s.agg.Funcs) {
		s.vecScratch = make([]*Vector, len(s.agg.Funcs))
	}
	vecs := s.vecScratch[:len(s.agg.Funcs)]
	for i := range vecs {
		vecs[i] = nil
	}
	for fi, f := range s.agg.Funcs {
		if f.Col == "" {
			continue
		}
		if vecs[fi], err = src.ColVec(f.Col); err != nil {
			return 0, err
		}
	}
	var rows int64
	// Resolve the group once per run of identical keys: grouped columns
	// are low-cardinality and often sorted, so the common case is one
	// lookup per batch.
	var curG *aggGroup
	var curKey gkey
	haveCur := false
	for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) {
		rows++
		g := curG
		if s.agg.GroupBy != "" {
			gv := groupVec.Value(i)
			key, err := groupKeyOf(gv)
			if err != nil {
				return rows, err
			}
			if !haveCur || key != curKey {
				if g, err = s.group(key, gv); err != nil {
					return rows, err
				}
				curG, curKey, haveCur = g, key, true
			} else {
				g = curG
			}
		} else {
			if !haveCur {
				if g, err = s.group(gkey{kind: 'n'}, nil); err != nil {
					return rows, err
				}
				curG, haveCur = g, true
			}
			g = curG
		}
		for fi, f := range s.agg.Funcs {
			acc := &g.accs[fi]
			if f.Kind == AggCount {
				acc.count++
				continue
			}
			v := vecs[fi]
			if v.IsNull(i) {
				continue
			}
			// count(col) needs only the null verdict; skip the boxing
			// Value() call for typed vectors (VecAny rows can still be a
			// nil value without a null bit, so they take the slow path).
			if f.Kind == AggCountCol && v.Kind != VecAny {
				acc.count++
				continue
			}
			val := v.Value(i)
			if val == nil {
				continue
			}
			if err := acc.foldValue(f.Kind, f.Col, val); err != nil {
				return rows, err
			}
		}
	}
	return rows, nil
}

// FoldRecord folds one record's values — the scalar site, identical in
// result to FoldBatch over a one-row selection.
func (s *AggState) FoldRecord(ev Evaluator) error {
	var g *aggGroup
	if s.agg.GroupBy != "" {
		gv, err := ev.Value(s.agg.GroupBy)
		if err != nil {
			return err
		}
		key, err := groupKeyOf(gv)
		if err != nil {
			return err
		}
		if g, err = s.group(key, gv); err != nil {
			return err
		}
	} else {
		var err error
		if g, err = s.group(gkey{kind: 'n'}, nil); err != nil {
			return err
		}
	}
	for fi, f := range s.agg.Funcs {
		acc := &g.accs[fi]
		if f.Kind == AggCount {
			acc.count++
			continue
		}
		val, err := ev.Value(f.Col)
		if err != nil {
			return err
		}
		if val == nil {
			continue
		}
		if err := acc.foldValue(f.Kind, f.Col, val); err != nil {
			return err
		}
	}
	return nil
}

// StatsAnswerable reports whether a record group whose zone map already
// proves every row matches can be folded from its ColStats alone — the
// zero-decode path. rows is the group's row extent; every consulted
// column's stats entry must cover exactly those rows (the caller aligns
// extents). The conditions, per function:
//
//   - count: always (rows is the answer).
//   - count(col): the column's stats are present (rows - nulls).
//   - min(col)/max(col): the column records bounds (HasMinMax), or is
//     entirely null (contributes nothing). The bounds are exact values
//     present in the group, not approximations, so folding them equals
//     folding every row.
//   - sum(col): only when the column is entirely null — there is no sum
//     statistic, so any non-null row forces a decode.
//
// With GROUP BY, the grouping column must additionally be constant across
// the group (Min == Max with no nulls, or all rows null): otherwise rows
// cannot be attributed to keys without decoding.
func (s *AggState) StatsAnswerable(rows int64, stats StatsFunc) bool {
	if s.agg.GroupBy != "" {
		gst := stats(s.agg.GroupBy)
		if gst == nil || gst.Rows != rows {
			return false
		}
		switch {
		case gst.Nulls == rows:
			// Constant null key.
		case gst.Nulls == 0 && gst.HasMinMax:
			c, ok := CompareValues(gst.Min, gst.Max)
			if !ok || c != 0 {
				return false
			}
		default:
			return false
		}
	}
	for _, f := range s.agg.Funcs {
		if f.Kind == AggCount {
			continue
		}
		st := stats(f.Col)
		if st == nil || st.Rows != rows {
			return false
		}
		switch f.Kind {
		case AggCountCol:
			// rows - nulls is exact.
		case AggMin, AggMax:
			if st.Nulls != rows && !st.HasMinMax {
				return false
			}
		case AggSum, AggAvg:
			if st.Nulls != rows {
				return false
			}
		}
	}
	return true
}

// FoldStats folds a MatchAll-decided group of rows records from its zone
// stats with zero bytes decoded. The caller must have checked
// StatsAnswerable with the same arguments.
func (s *AggState) FoldStats(rows int64, stats StatsFunc) error {
	var g *aggGroup
	if s.agg.GroupBy != "" {
		gst := stats(s.agg.GroupBy)
		var gv any
		if gst.Nulls != rows {
			gv = gst.Min
		}
		key, err := groupKeyOf(gv)
		if err != nil {
			return err
		}
		if g, err = s.group(key, gv); err != nil {
			return err
		}
	} else {
		var err error
		if g, err = s.group(gkey{kind: 'n'}, nil); err != nil {
			return err
		}
	}
	for fi, f := range s.agg.Funcs {
		acc := &g.accs[fi]
		switch f.Kind {
		case AggCount:
			acc.count += rows
		case AggCountCol:
			st := stats(f.Col)
			acc.count += rows - st.Nulls
		case AggMin, AggMax:
			st := stats(f.Col)
			if st.Nulls == rows {
				continue
			}
			bound := st.Min
			if f.Kind == AggMax {
				bound = st.Max
			}
			if err := acc.foldValue(f.Kind, f.Col, bound); err != nil {
				return err
			}
		case AggSum, AggAvg:
			// All null: nothing to fold (StatsAnswerable guaranteed it).
		}
	}
	return nil
}

// Merge folds another state (over disjoint rows) into s — the cross-task
// combine. Both states must fold the same spec.
func (s *AggState) Merge(o *AggState) error {
	if o == nil {
		return nil
	}
	for _, key := range o.order {
		og := o.groups[key]
		g, err := s.group(key, og.val)
		if err != nil {
			return err
		}
		for fi, f := range s.agg.Funcs {
			acc, oacc := &g.accs[fi], &og.accs[fi]
			switch f.Kind {
			case AggCount, AggCountCol:
				acc.count += oacc.count
			case AggMin, AggMax:
				if oacc.hasVal {
					if err := acc.foldValue(f.Kind, f.Col, oacc.min); err != nil {
						return err
					}
				}
			case AggSum, AggAvg:
				if oacc.hasVal {
					acc.hasVal = true
					acc.sumI += oacc.sumI
					acc.sumF += oacc.sumF
					acc.sumIsF = acc.sumIsF || oacc.sumIsF
					acc.count += oacc.count // avg's non-null count (0 for sum)
				}
			}
		}
	}
	return nil
}

// AggRow is one output row: the group value (nil for the global group of
// an ungrouped aggregation) and one value per function.
type AggRow struct {
	Group  any
	Values []any
}

// Rows returns the aggregation's output, one row per group, ordered by
// group value (nulls first) so results are deterministic across task
// scheduling and merge order. A global aggregate (no GROUP BY) over zero
// rows still yields its one row — COUNT 0, MIN/MAX/SUM null — the SQL
// convention; an empty GROUP BY result yields no rows.
func (s *AggState) Rows() []AggRow {
	if s.agg.GroupBy == "" && len(s.groups) == 0 {
		vals := make([]any, len(s.agg.Funcs))
		for i, f := range s.agg.Funcs {
			var zero aggAcc
			vals[i] = zero.value(f.Kind)
		}
		return []AggRow{{Values: vals}}
	}
	keys := append([]gkey(nil), s.order...)
	sort.Slice(keys, func(i, j int) bool { return gkeyLess(keys[i], keys[j]) })
	out := make([]AggRow, 0, len(keys))
	for _, key := range keys {
		g := s.groups[key]
		row := AggRow{Group: g.val, Values: make([]any, len(s.agg.Funcs))}
		for fi, f := range s.agg.Funcs {
			row.Values[fi] = g.accs[fi].value(f.Kind)
		}
		out = append(out, row)
	}
	return out
}

// NumGroups returns the number of groups folded so far.
func (s *AggState) NumGroups() int { return len(s.groups) }

func gkeyLess(a, b gkey) bool {
	if a.kind != b.kind {
		// One group-by column yields one value kind, so mixed kinds can
		// only be null vs value: nulls sort first.
		return a.kind == 'n'
	}
	switch a.kind {
	case 'n':
		return false
	case 'f':
		af, bf := math.Float64frombits(uint64(a.i)), math.Float64frombits(uint64(b.i))
		c := cmpFloat(af, bf)
		return c < 0
	case 's':
		return a.s < b.s
	default:
		return a.i < b.i
	}
}
