package scan_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"colmr/internal/scan"
)

// Fold-site equivalence under nulls. FoldBatch (the vectorized site),
// FoldRecord (the scalar site), and Merge (the task-combine site) must
// agree exactly on random data with null rows in every column — including
// null group keys, entirely-null columns, and empty selections.

// aggTestData builds random column vectors with nulls: "g" a
// low-cardinality string key, "a" int64, "b" float64, "s" string.
func aggTestData(rng *rand.Rand, n int) map[string]*scan.Vector {
	card := 1 + rng.Intn(5)
	nullP := func() bool { return rng.Intn(5) == 0 }
	g := scan.NewVector(scan.VecString, n)
	a := scan.NewVector(scan.VecInt64, n)
	b := scan.NewVector(scan.VecFloat64, n)
	s := scan.NewVector(scan.VecString, n)
	allNullB := rng.Intn(6) == 0 // sometimes a column is entirely null
	for i := 0; i < n; i++ {
		if nullP() {
			g.AppendNull()
		} else {
			g.AppendString(fmt.Sprintf("grp%d", rng.Intn(card)))
		}
		if nullP() {
			a.AppendNull()
		} else {
			a.AppendInt(rng.Int63n(1000))
		}
		if allNullB || nullP() {
			b.AppendNull()
		} else {
			b.AppendFloat(float64(rng.Intn(500)) / 7)
		}
		s.AppendString(fmt.Sprintf("v%02d", rng.Intn(30)))
	}
	return map[string]*scan.Vector{"g": g, "a": a, "b": b, "s": s}
}

func aggTestSpec(t *testing.T, rng *rand.Rand) *scan.Aggregate {
	t.Helper()
	pool := []string{
		"count", "count(a)", "count(b)", "count(g)",
		"min(a)", "max(a)", "sum(a)",
		"min(s)", "max(s)", "min(g)", "sum(b)", "max(b)",
	}
	k := 1 + rng.Intn(4)
	picked := make([]string, 0, k)
	for _, i := range rng.Perm(len(pool))[:k] {
		picked = append(picked, pool[i])
	}
	src := strings.Join(picked, ",")
	if rng.Intn(2) == 0 {
		src += " group by g"
	}
	a, err := scan.ParseAggregate(src)
	if err != nil {
		t.Fatalf("ParseAggregate(%q): %v", src, err)
	}
	return a
}

// rowEval adapts one vector row to the scalar Evaluator.
func rowEval(vecs map[string]*scan.Vector, i int) scan.Evaluator {
	return scan.Getter(func(col string) (any, error) {
		v, ok := vecs[col]
		if !ok {
			return nil, fmt.Errorf("no column %q", col)
		}
		if v.IsNull(i) {
			return nil, nil
		}
		return v.Value(i), nil
	})
}

func sameAggRows(a, b []scan.AggRow) bool {
	if len(a) != len(b) {
		return false
	}
	eq := func(x, y any) bool {
		if x == nil || y == nil {
			return x == nil && y == nil
		}
		// Partial-state merges reassociate float sums; everything else is
		// exact.
		if xf, ok := x.(float64); ok {
			yf, ok := y.(float64)
			if !ok {
				return false
			}
			diff := xf - yf
			if diff < 0 {
				diff = -diff
			}
			scale := 1.0
			if xf > scale || xf < -scale {
				scale = xf
				if scale < 0 {
					scale = -scale
				}
			}
			return diff <= 1e-9*scale
		}
		c, ok := scan.CompareValues(x, y)
		return ok && c == 0
	}
	for i := range a {
		if !eq(a[i].Group, b[i].Group) || len(a[i].Values) != len(b[i].Values) {
			return false
		}
		for j := range a[i].Values {
			if !eq(a[i].Values[j], b[i].Values[j]) {
				return false
			}
		}
	}
	return true
}

func TestAggFoldBatchMatchesFoldRecordWithNulls(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		n := 1 + rng.Intn(300)
		vecs := aggTestData(rng, n)
		src := &vecTestSource{vecs: vecs}
		agg := aggTestSpec(t, rng)

		// A random selection — sometimes empty, sometimes full.
		sel := scan.NewEmptySelection(n)
		keepP := rng.Intn(5)
		for i := 0; i < n; i++ {
			if rng.Intn(4) >= keepP {
				sel.Set(i)
			}
		}

		batch := scan.NewAggState(agg)
		if _, err := batch.FoldBatch(sel, src); err != nil {
			t.Fatalf("trial %d agg=%s: FoldBatch: %v", trial, agg, err)
		}
		scalar := scan.NewAggState(agg)
		for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) {
			if err := scalar.FoldRecord(rowEval(vecs, i)); err != nil {
				t.Fatalf("trial %d agg=%s: FoldRecord(%d): %v", trial, agg, i, err)
			}
		}
		if !sameAggRows(batch.Rows(), scalar.Rows()) {
			t.Fatalf("trial %d agg=%s: fold sites disagree\nbatch  %v\nscalar %v",
				trial, agg, batch.Rows(), scalar.Rows())
		}

		// Merge associativity: the same rows folded into k partial states
		// and merged must equal the single-state fold, whatever the split.
		parts := 1 + rng.Intn(3)
		states := make([]*scan.AggState, parts)
		for p := range states {
			states[p] = scan.NewAggState(agg)
		}
		for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) {
			if err := states[rng.Intn(parts)].FoldRecord(rowEval(vecs, i)); err != nil {
				t.Fatal(err)
			}
		}
		merged := scan.NewAggState(agg)
		for _, st := range states {
			if err := merged.Merge(st); err != nil {
				t.Fatalf("trial %d agg=%s: Merge: %v", trial, agg, err)
			}
		}
		if !sameAggRows(merged.Rows(), scalar.Rows()) {
			t.Fatalf("trial %d agg=%s: merged state disagrees\nmerged %v\nscalar %v",
				trial, agg, merged.Rows(), scalar.Rows())
		}
	}
}
